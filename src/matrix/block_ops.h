// Block-level compute kernels: the "BLAS" substrate of DMac's local engine.
//
// All binary kernels validate dimensions and return Status/Result. The
// multiply kernels come in two forms:
//   * Multiply()            — returns a fresh dense result,
//   * MultiplyAccumulate()  — adds A·B into an existing dense accumulator;
//     this is the primitive behind the paper's In-Place execution (§5.3),
//     which folds every block product contributing to one result block into
//     the same output buffer instead of materializing intermediates.
// MultiplySparse() is the CSC×CSC SpGEMM used when a sparse intermediate is
// worth keeping sparse (the Buffer-mode ablation of Fig. 7 relies on it).
//
// The multiply kernels are transpose-aware: the flagged overloads compute
// op(A)·op(B) where op is controlled by trans_a/trans_b, consuming each
// operand in its stored layout (see matrix/kernels.h). The planner's
// transpose-fusion pass relies on these to execute Aᵀ·B without ever
// materializing Aᵀ.
#pragma once

#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "matrix/block.h"
#include "matrix/kernels.h"
#include "matrix/unary_fn.h"

namespace dmac {

/// C = A·B as a dense block. Shapes must agree (A: m×k, B: k×n).
Result<Block> Multiply(const Block& a, const Block& b);

/// C = op(A)·op(B) as a dense block; effective shapes must agree.
/// `scratch`/`stats` may be null (local scratch, no accounting). `par`
/// enables intra-kernel tile parallelism for the dense path and `b_csr`
/// supplies a precomputed CSR form of a sparse B for the Aᵀ·B sparse
/// path — see matrix/kernels.h for both.
Result<Block> Multiply(const Block& a, const Block& b, bool trans_a,
                       bool trans_b, GemmScratch* scratch = nullptr,
                       GemmStats* stats = nullptr,
                       const GemmParallel* par = nullptr,
                       const CscBlock* b_csr = nullptr);

/// acc += A·B. `acc` must be dense with shape m×n.
Status MultiplyAccumulate(const Block& a, const Block& b, DenseBlock* acc);

/// acc += op(A)·op(B). `acc` must match the effective output shape.
/// `par`/`b_csr` as on Multiply above.
Status MultiplyAccumulate(const Block& a, const Block& b, bool trans_a,
                          bool trans_b, DenseBlock* acc,
                          GemmScratch* scratch = nullptr,
                          GemmStats* stats = nullptr,
                          const GemmParallel* par = nullptr,
                          const CscBlock* b_csr = nullptr);

/// CSC×CSC product kept sparse (Gustavson's algorithm).
Result<CscBlock> MultiplySparse(const CscBlock& a, const CscBlock& b);

/// C = Σ_k A_k·B_k over a chain of CSC pairs, computed with one shared
/// Gustavson workspace and emitted directly as CSC — the sparse In-Place
/// path: no dense m×n accumulator and no materialized partial products.
/// All pairs must agree on the output shape m×n.
Result<CscBlock> MultiplySparseChain(
    const std::vector<std::pair<const CscBlock*, const CscBlock*>>& chain,
    int64_t rows, int64_t cols);

/// Sum of blocks; stays sparse (pairwise merges) when every input is
/// sparse, otherwise accumulates densely. Used to aggregate CPMM partials
/// and Buffer-mode partial products.
Result<Block> SumBlocks(const std::vector<const Block*>& blocks,
                        double density_threshold);

/// Elementwise sum; sparse when both inputs are sparse.
Result<Block> Add(const Block& a, const Block& b);

/// Elementwise difference; sparse when both inputs are sparse.
Result<Block> Subtract(const Block& a, const Block& b);

/// Elementwise (Hadamard) product; sparse when either input is sparse.
Result<Block> CellMultiply(const Block& a, const Block& b);

/// Elementwise quotient a/b; keeps a's sparsity pattern when a is sparse
/// (0 / y == 0). Division by a zero denominator at a non-zero numerator
/// yields IEEE inf, as in R.
Result<Block> CellDivide(const Block& a, const Block& b);

/// acc += a. `acc` must be dense and shape-compatible.
Status AddAccumulate(const Block& a, DenseBlock* acc);

/// a · scalar (same representation as a).
Block ScalarMultiply(const Block& a, Scalar scalar);

/// a + scalar (densifies a sparse input when scalar != 0).
Block ScalarAdd(const Block& a, Scalar scalar);

/// Element-wise unary function. Zero-preserving functions (abs, square)
/// keep a sparse operand sparse; the others densify.
Block CellUnary(const Block& a, UnaryFnKind fn);

/// Column vector of row sums (m×1 dense).
DenseBlock RowSums(const Block& a);

/// Row vector of column sums (1×n dense).
DenseBlock ColSums(const Block& a);

/// Sum of all elements (double accumulation).
double Sum(const Block& a);

/// Sum of squared elements (double accumulation).
double SumSquares(const Block& a);

/// True when every |a(i,j) - b(i,j)| <= tol. Shapes must match exactly.
bool ApproxEqual(const Block& a, const Block& b, double tol = 1e-4);

/// Copies a dense accumulator out in its cheaper representation: CSC when
/// density < threshold, a dense copy otherwise. Single pass; used when a
/// pooled result buffer must be recycled (Fig. 4 flow).
Block CompactFromDense(const DenseBlock& acc, double density_threshold);

}  // namespace dmac
