// Gustavson-style row-major SpGEMM over CSR views of CSC blocks.
//
// DMac stores every sparse block CSC, but the stored arrays of a CscBlock
// read equally well as CSR of the *transposed* matrix: stored column i of A
// is logical row i of Aᵀ. The transposed sparse multiply cases exploit
// that — Aᵀ·B and Aᵀ·Bᵀ become plain row-major Gustavson products over CSR
// views, with per-entry work proportional to the actual flops instead of
// the O(n·nnz) gather sweeps they previously ran (the 50–60× `tn` cliff in
// BENCH_kernels.json; docs/kernels.md#sparse-kernels).
//
// The only case that needs a materialized conversion is CSR of an
// *untransposed* operand, which is exactly `CscBlock::Transposed()` — a
// one-time O(nnz) counting pass that matrix/format_cache.h memoizes when
// the plan reuses the operand.
#pragma once

#include "matrix/csc_block.h"
#include "matrix/dense_block.h"

namespace dmac {

/// acc(i, j) += Σ_l a_rows(i, l) · b_rows(l, j), where both operands are
/// *CSR views*: stored column i of `a_rows` holds row i of the logical
/// left operand, and stored column l of `b_rows` holds row l of the
/// logical right operand. Classic Gustavson: for every stored entry
/// (i, l, v) of the left operand, scale row l of the right operand by v
/// and accumulate into output row i. The dense accumulator replaces the
/// usual sparse-accumulator workspace — output blocks here are dense or
/// near-dense after a sparse×sparse product, and the engine compacts them
/// afterwards (CompactFromDense).
///
/// Shapes (of the logical product): acc is m×n with m = a_rows.cols(),
/// n = b_rows.rows(); the inner dimension is a_rows.rows() =
/// b_rows.cols(). Callers validate — this is a kernel, not an API.
void SpGemmGustavson(const CscBlock& a_rows, const CscBlock& b_rows,
                     DenseBlock* acc);

}  // namespace dmac
