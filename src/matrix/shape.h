// Matrix dimensions and block-grid arithmetic.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace dmac {

/// Element type of all matrices. Single precision matches the paper's memory
/// model (dense block = 4mn bytes, sparse = 4n + 8mns; §5.3 Eq. 2).
using Scalar = float;

/// Dimensions of a matrix or a block.
struct Shape {
  int64_t rows = 0;
  int64_t cols = 0;

  int64_t NumElements() const { return rows * cols; }
  Shape Transposed() const { return {cols, rows}; }

  bool operator==(const Shape& o) const {
    return rows == o.rows && cols == o.cols;
  }
  bool operator!=(const Shape& o) const { return !(*this == o); }

  std::string ToString() const {
    return std::to_string(rows) + "x" + std::to_string(cols);
  }
};

inline std::ostream& operator<<(std::ostream& os, const Shape& s) {
  return os << s.ToString();
}

/// Number of blocks needed to cover `extent` with blocks of `block_size`.
inline int64_t NumBlocks(int64_t extent, int64_t block_size) {
  return (extent + block_size - 1) / block_size;
}

/// Extent of block `index` when covering `extent` with `block_size` blocks
/// (the trailing block may be smaller).
inline int64_t BlockExtent(int64_t extent, int64_t block_size, int64_t index) {
  const int64_t start = index * block_size;
  const int64_t remaining = extent - start;
  return remaining < block_size ? remaining : block_size;
}

/// Describes how a matrix is cut into an (approximately) square block grid.
/// Both dimensions use the same block side, per the paper ("we use square
/// block in DMac", §5.3).
struct BlockGrid {
  Shape matrix;
  int64_t block_size = 0;

  int64_t block_rows() const { return NumBlocks(matrix.rows, block_size); }
  int64_t block_cols() const { return NumBlocks(matrix.cols, block_size); }
  int64_t num_blocks() const { return block_rows() * block_cols(); }

  Shape BlockShape(int64_t bi, int64_t bj) const {
    return {BlockExtent(matrix.rows, block_size, bi),
            BlockExtent(matrix.cols, block_size, bj)};
  }
};

}  // namespace dmac
