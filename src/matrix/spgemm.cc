// Gustavson SpGEMM kernel. Compiled -O3 with the rest of the kernel layer
// (src/matrix/CMakeLists.txt).
#include "matrix/spgemm.h"

namespace dmac {

void SpGemmGustavson(const CscBlock& a_rows, const CscBlock& b_rows,
                     DenseBlock* acc) {
  const int64_t m = a_rows.cols();  // logical output rows
  const auto& a_idx = a_rows.row_idx();
  const auto& a_vals = a_rows.values();
  const auto& b_idx = b_rows.row_idx();
  const auto& b_vals = b_rows.values();
  for (int64_t i = 0; i < m; ++i) {
    const int32_t aend = a_rows.ColEnd(i);
    for (int32_t q = a_rows.ColStart(i); q < aend; ++q) {
      const int64_t l = a_idx[q];
      const Scalar v = a_vals[q];
      const int32_t bend = b_rows.ColEnd(l);
      for (int32_t p = b_rows.ColStart(l); p < bend; ++p) {
        // Row-major walk, column-major store: each madd lands at row i of
        // a different accumulator column. Still a net win — the work is
        // O(flops), not O(n·nnz) like the gather formulation it replaced.
        acc->col(b_idx[p])[i] += v * b_vals[p];
      }
    }
  }
}

}  // namespace dmac
