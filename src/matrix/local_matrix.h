// LocalMatrix: a single-node blocked matrix.
//
// Serves two roles in the reproduction:
//  * the "R" baseline of Fig. 6 (an efficient in-memory single-machine
//    matrix engine), and
//  * the correctness oracle that distributed results are checked against.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "matrix/block.h"
#include "matrix/block_ops.h"

namespace dmac {

/// A matrix held entirely in local memory as a grid of blocks.
class LocalMatrix {
 public:
  LocalMatrix() = default;

  /// All-zero dense matrix.
  static LocalMatrix Zeros(Shape shape, int64_t block_size);

  /// Uniform [0,1) dense matrix, deterministic per seed.
  static LocalMatrix RandomDense(Shape shape, int64_t block_size,
                                 uint64_t seed);

  /// Random sparse matrix with the given expected sparsity.
  static LocalMatrix RandomSparse(Shape shape, int64_t block_size,
                                  double sparsity, uint64_t seed);

  /// Wraps a single block as a 1×1-grid matrix.
  static LocalMatrix FromBlock(Block block);

  /// Builds a matrix from explicit blocks laid out row-major on the grid.
  static LocalMatrix FromBlocks(Shape shape, int64_t block_size,
                                std::vector<Block> blocks);

  Shape shape() const { return grid_.matrix; }
  int64_t rows() const { return grid_.matrix.rows; }
  int64_t cols() const { return grid_.matrix.cols; }
  int64_t block_size() const { return grid_.block_size; }
  const BlockGrid& grid() const { return grid_; }

  const Block& BlockAt(int64_t bi, int64_t bj) const;
  Block& BlockAt(int64_t bi, int64_t bj);

  /// Element access (routes into the owning block).
  Scalar At(int64_t r, int64_t c) const;

  /// Total number of non-zero elements.
  int64_t Nnz() const;

  /// Total payload bytes over all blocks.
  int64_t MemoryBytes() const;

  /// Matrix product; block sizes must match.
  Result<LocalMatrix> Multiply(const LocalMatrix& other) const;

  Result<LocalMatrix> Add(const LocalMatrix& other) const;
  Result<LocalMatrix> Subtract(const LocalMatrix& other) const;
  Result<LocalMatrix> CellMultiply(const LocalMatrix& other) const;
  Result<LocalMatrix> CellDivide(const LocalMatrix& other) const;

  LocalMatrix Transposed() const;
  LocalMatrix ScalarMultiply(Scalar scalar) const;
  LocalMatrix ScalarAdd(Scalar scalar) const;

  /// Column vector (m×1) of row sums.
  LocalMatrix RowSums() const;
  /// Row vector (1×n) of column sums.
  LocalMatrix ColSums() const;

  /// Sum of all elements.
  double Sum() const;
  /// Sum of squares of all elements.
  double SumSquares() const;

  /// Re-encodes every block in its cheaper representation.
  LocalMatrix Compacted(double density_threshold = 0.5) const;

  /// True when all elements differ by at most `tol`.
  bool ApproxEqual(const LocalMatrix& other, double tol = 1e-3) const;

 private:
  template <typename Fn>
  Result<LocalMatrix> ZipBlocks(const LocalMatrix& other, const char* op,
                                Fn fn) const;

  BlockGrid grid_;
  std::vector<Block> blocks_;  // row-major: [bi * block_cols + bj]
};

}  // namespace dmac
