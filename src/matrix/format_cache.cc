#include "matrix/format_cache.h"

#include <utility>

namespace dmac {

Result<std::shared_ptr<const CscBlock>> FormatCache::Csr(
    const std::shared_ptr<const Block>& source) {
  if (source == nullptr || !source->IsSparse()) {
    return Status::Invalid("FormatCache::Csr needs a sparse source block");
  }
  const CscBlock* key = &source->sparse();
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.csr;
  }

  // Miss: convert under the lock so a concurrent storm over one operand
  // performs exactly one conversion (see the header for the trade-off).
  ++stats_.misses;
  auto csr = std::make_shared<const CscBlock>(key->Transposed());
  const int64_t bytes = csr->MemoryBytes();
  if (bytes > capacity_) return csr;  // uncacheable; caller keeps it alive
  EvictToFit(bytes);
  if (charge_ != nullptr) {
    Status charged = charge_(bytes);
    if (!charged.ok()) {
      // Budget refused: hand the conversion back transient (like inline
      // kernel conversions, it is working memory, not resident state).
      return csr;
    }
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{source, csr, bytes, lru_.begin()});
  stats_.bytes += bytes;
  ++stats_.entries;
  return csr;
}

void FormatCache::EvictToFit(int64_t incoming) {
  while (!lru_.empty() && stats_.bytes + incoming > capacity_) {
    const CscBlock* victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    stats_.bytes -= it->second.bytes;
    --stats_.entries;
    ++stats_.evictions;
    if (release_ != nullptr) release_(it->second.bytes);
    entries_.erase(it);
  }
}

void FormatCache::Clear() {
  MutexLock lock(&mu_);
  if (release_ != nullptr) {
    for (const auto& [key, entry] : entries_) release_(entry.bytes);
  }
  entries_.clear();
  lru_.clear();
  stats_.bytes = 0;
  stats_.entries = 0;
}

FormatCache::Stats FormatCache::GetStats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace dmac
