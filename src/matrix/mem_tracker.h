// Process-wide accounting of block memory, with a high-water mark.
//
// The paper's Fig. 7 and Fig. 8(b) report per-node memory usage of the local
// block engine; every DenseBlock/CscBlock registers its payload here so those
// experiments can read exact numbers instead of sampling the allocator.
#pragma once

#include <atomic>
#include <cstdint>

namespace dmac {

/// Global tracker of live block payload bytes.
class MemTracker {
 public:
  /// The process-wide instance.
  static MemTracker& Global();

  /// Records an allocation of `bytes` and updates the high-water mark.
  void Allocate(int64_t bytes);

  /// Records a release of `bytes`.
  void Release(int64_t bytes);

  /// Currently live payload bytes.
  int64_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }

  /// Highest value `current_bytes()` reached since the last ResetPeak().
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

  /// Resets the high-water mark to the current live total.
  void ResetPeak();

 private:
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
};

}  // namespace dmac
