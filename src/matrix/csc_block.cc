#include "matrix/csc_block.h"

#include <algorithm>

#include "matrix/mem_tracker.h"

namespace dmac {

CscBlock::CscBlock(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols), col_ptr_(static_cast<size_t>(cols + 1), 0) {
  DMAC_CHECK(rows >= 0 && cols >= 0);
  Track();
}

CscBlock::CscBlock(int64_t rows, int64_t cols, std::vector<int32_t> col_ptr,
                   std::vector<int32_t> row_idx, std::vector<Scalar> values)
    : rows_(rows),
      cols_(cols),
      col_ptr_(std::move(col_ptr)),
      row_idx_(std::move(row_idx)),
      values_(std::move(values)) {
  CheckInvariants();
  Track();
}

CscBlock::~CscBlock() { Untrack(); }

CscBlock::CscBlock(const CscBlock& other)
    : rows_(other.rows_),
      cols_(other.cols_),
      col_ptr_(other.col_ptr_),
      row_idx_(other.row_idx_),
      values_(other.values_) {
  Track();
}

CscBlock& CscBlock::operator=(const CscBlock& other) {
  if (this == &other) return *this;
  Untrack();
  rows_ = other.rows_;
  cols_ = other.cols_;
  col_ptr_ = other.col_ptr_;
  row_idx_ = other.row_idx_;
  values_ = other.values_;
  Track();
  return *this;
}

CscBlock::CscBlock(CscBlock&& other) noexcept
    : rows_(other.rows_),
      cols_(other.cols_),
      col_ptr_(std::move(other.col_ptr_)),
      row_idx_(std::move(other.row_idx_)),
      values_(std::move(other.values_)) {
  other.rows_ = 0;
  other.cols_ = 0;
  other.col_ptr_.clear();
  other.row_idx_.clear();
  other.values_.clear();
}

CscBlock& CscBlock::operator=(CscBlock&& other) noexcept {
  if (this == &other) return *this;
  Untrack();
  rows_ = other.rows_;
  cols_ = other.cols_;
  col_ptr_ = std::move(other.col_ptr_);
  row_idx_ = std::move(other.row_idx_);
  values_ = std::move(other.values_);
  other.rows_ = 0;
  other.cols_ = 0;
  other.col_ptr_.clear();
  other.row_idx_.clear();
  other.values_.clear();
  return *this;
}

Scalar CscBlock::At(int64_t r, int64_t c) const {
  DMAC_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  const int32_t* begin = row_idx_.data() + col_ptr_[c];
  const int32_t* end = row_idx_.data() + col_ptr_[c + 1];
  const int32_t* it = std::lower_bound(begin, end, static_cast<int32_t>(r));
  if (it != end && *it == r) {
    return values_[static_cast<size_t>(it - row_idx_.data())];
  }
  return Scalar{0};
}

CscBlock CscBlock::Transposed() const {
  // Counting sort by row index: the transpose's column j collects the
  // entries whose row index is j, already ordered by original column.
  std::vector<int32_t> t_col_ptr(static_cast<size_t>(rows_ + 1), 0);
  for (int32_t r : row_idx_) ++t_col_ptr[static_cast<size_t>(r) + 1];
  for (size_t i = 1; i < t_col_ptr.size(); ++i) t_col_ptr[i] += t_col_ptr[i - 1];

  std::vector<int32_t> t_row_idx(values_.size());
  std::vector<Scalar> t_values(values_.size());
  std::vector<int32_t> cursor(t_col_ptr.begin(), t_col_ptr.end() - 1);
  for (int64_t c = 0; c < cols_; ++c) {
    for (int32_t k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      const int32_t r = row_idx_[k];
      const int32_t dst = cursor[r]++;
      t_row_idx[dst] = static_cast<int32_t>(c);
      t_values[dst] = values_[k];
    }
  }
  return CscBlock(cols_, rows_, std::move(t_col_ptr), std::move(t_row_idx),
                  std::move(t_values));
}

void CscBlock::Track() {
  MemTracker::Global().Allocate(MemoryBytes());
}

void CscBlock::Untrack() {
  if (rows_ == 0 && cols_ == 0 && values_.empty() && col_ptr_.empty()) return;
  MemTracker::Global().Release(MemoryBytes());
}

void CscBlock::CheckInvariants() const {
  DMAC_CHECK_EQ(static_cast<int64_t>(col_ptr_.size()), cols_ + 1);
  DMAC_CHECK_EQ(col_ptr_.front(), 0);
  DMAC_CHECK_EQ(static_cast<size_t>(col_ptr_.back()), values_.size());
  DMAC_CHECK_EQ(row_idx_.size(), values_.size());
  for (int64_t c = 0; c < cols_; ++c) {
    DMAC_CHECK_LE(col_ptr_[c], col_ptr_[c + 1]);
  }
}

void CscBuilder::Add(int64_t row, int64_t col, Scalar value) {
  DMAC_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_);
  if (value == Scalar{0}) return;
  entries_.push_back(
      {static_cast<int32_t>(row), static_cast<int32_t>(col), value});
}

CscBlock CscBuilder::Build() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.col != b.col ? a.col < b.col : a.row < b.row;
            });

  std::vector<int32_t> col_ptr(static_cast<size_t>(cols_ + 1), 0);
  std::vector<int32_t> row_idx;
  std::vector<Scalar> values;
  row_idx.reserve(entries_.size());
  values.reserve(entries_.size());

  for (size_t i = 0; i < entries_.size();) {
    size_t j = i;
    Scalar sum = 0;
    while (j < entries_.size() && entries_[j].col == entries_[i].col &&
           entries_[j].row == entries_[i].row) {
      sum += entries_[j].value;
      ++j;
    }
    if (sum != Scalar{0}) {
      row_idx.push_back(entries_[i].row);
      values.push_back(sum);
      ++col_ptr[static_cast<size_t>(entries_[i].col) + 1];
    }
    i = j;
  }
  for (size_t c = 1; c < col_ptr.size(); ++c) col_ptr[c] += col_ptr[c - 1];

  entries_.clear();
  return CscBlock(rows_, cols_, std::move(col_ptr), std::move(row_idx),
                  std::move(values));
}

}  // namespace dmac
