#include "matrix/block_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace dmac {

namespace {

Status CheckMultiplyShapes(const Block& a, const Block& b) {
  if (a.cols() != b.rows()) {
    return Status::DimensionMismatch("multiply " + a.shape().ToString() +
                                     " by " + b.shape().ToString());
  }
  return Status::Ok();
}

Status CheckSameShape(const Block& a, const Block& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return Status::DimensionMismatch(std::string(op) + " " +
                                     a.shape().ToString() + " with " +
                                     b.shape().ToString());
  }
  return Status::Ok();
}

// acc += A_dense · B_dense; column-major ikj ordering keeps the inner loop
// a contiguous axpy over A's column.
void GemmDenseDense(const DenseBlock& a, const DenseBlock& b,
                    DenseBlock* acc) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  for (int64_t j = 0; j < n; ++j) {
    Scalar* c_col = acc->col(j);
    const Scalar* b_col = b.col(j);
    for (int64_t l = 0; l < k; ++l) {
      const Scalar t = b_col[l];
      if (t == Scalar{0}) continue;
      const Scalar* a_col = a.col(l);
      for (int64_t i = 0; i < m; ++i) c_col[i] += a_col[i] * t;
    }
  }
}

// acc += A_csc · B_dense.
void GemmSparseDense(const CscBlock& a, const DenseBlock& b,
                     DenseBlock* acc) {
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  const auto& rows = a.row_idx();
  const auto& vals = a.values();
  for (int64_t j = 0; j < n; ++j) {
    Scalar* c_col = acc->col(j);
    const Scalar* b_col = b.col(j);
    for (int64_t l = 0; l < k; ++l) {
      const Scalar t = b_col[l];
      if (t == Scalar{0}) continue;
      for (int32_t p = a.ColStart(l); p < a.ColEnd(l); ++p) {
        c_col[rows[p]] += vals[p] * t;
      }
    }
  }
}

// acc += A_dense · B_csc.
void GemmDenseSparse(const DenseBlock& a, const CscBlock& b,
                     DenseBlock* acc) {
  const int64_t m = a.rows();
  const int64_t n = b.cols();
  const auto& rows = b.row_idx();
  const auto& vals = b.values();
  for (int64_t j = 0; j < n; ++j) {
    Scalar* c_col = acc->col(j);
    for (int32_t p = b.ColStart(j); p < b.ColEnd(j); ++p) {
      const int64_t l = rows[p];
      const Scalar t = vals[p];
      const Scalar* a_col = a.col(l);
      for (int64_t i = 0; i < m; ++i) c_col[i] += a_col[i] * t;
    }
  }
}

// acc += A_csc · B_csc (dense accumulator).
void GemmSparseSparse(const CscBlock& a, const CscBlock& b,
                      DenseBlock* acc) {
  const int64_t n = b.cols();
  const auto& a_rows = a.row_idx();
  const auto& a_vals = a.values();
  const auto& b_rows = b.row_idx();
  const auto& b_vals = b.values();
  for (int64_t j = 0; j < n; ++j) {
    Scalar* c_col = acc->col(j);
    for (int32_t p = b.ColStart(j); p < b.ColEnd(j); ++p) {
      const int64_t l = b_rows[p];
      const Scalar t = b_vals[p];
      for (int32_t q = a.ColStart(l); q < a.ColEnd(l); ++q) {
        c_col[a_rows[q]] += a_vals[q] * t;
      }
    }
  }
}

template <typename Fn>
Block ElementwiseDense(const Block& a, const Block& b, Fn fn) {
  DenseBlock da = a.ToDense();
  const DenseBlock db = b.ToDense();
  Scalar* out = da.data();
  const Scalar* rhs = db.data();
  const int64_t n = da.rows() * da.cols();
  for (int64_t i = 0; i < n; ++i) out[i] = fn(out[i], rhs[i]);
  return Block(std::move(da));
}

// Merge two CSC blocks column by column: out(i,j) = fn(a(i,j), b(i,j)) over
// the union of their patterns. fn(0,0) must be 0.
template <typename Fn>
CscBlock MergeSparse(const CscBlock& a, const CscBlock& b, Fn fn) {
  CscBuilder builder(a.rows(), a.cols());
  builder.Reserve(static_cast<size_t>(a.nnz() + b.nnz()));
  for (int64_t c = 0; c < a.cols(); ++c) {
    int32_t pa = a.ColStart(c);
    int32_t pb = b.ColStart(c);
    const int32_t ea = a.ColEnd(c);
    const int32_t eb = b.ColEnd(c);
    while (pa < ea || pb < eb) {
      const int32_t ra = pa < ea ? a.row_idx()[pa] : INT32_MAX;
      const int32_t rb = pb < eb ? b.row_idx()[pb] : INT32_MAX;
      if (ra < rb) {
        builder.Add(ra, c, fn(a.values()[pa], Scalar{0}));
        ++pa;
      } else if (rb < ra) {
        builder.Add(rb, c, fn(Scalar{0}, b.values()[pb]));
        ++pb;
      } else {
        builder.Add(ra, c, fn(a.values()[pa], b.values()[pb]));
        ++pa;
        ++pb;
      }
    }
  }
  return builder.Build();
}

}  // namespace

Result<Block> Multiply(const Block& a, const Block& b) {
  DMAC_RETURN_NOT_OK(CheckMultiplyShapes(a, b));
  DenseBlock acc(a.rows(), b.cols());
  DMAC_RETURN_NOT_OK(MultiplyAccumulate(a, b, &acc));
  return Block(std::move(acc));
}

Status MultiplyAccumulate(const Block& a, const Block& b, DenseBlock* acc) {
  DMAC_RETURN_NOT_OK(CheckMultiplyShapes(a, b));
  if (acc->rows() != a.rows() || acc->cols() != b.cols()) {
    return Status::DimensionMismatch("accumulator " +
                                     acc->shape().ToString() + " for " +
                                     a.shape().ToString() + " * " +
                                     b.shape().ToString());
  }
  if (a.IsDense() && b.IsDense()) {
    GemmDenseDense(a.dense(), b.dense(), acc);
  } else if (a.IsSparse() && b.IsDense()) {
    GemmSparseDense(a.sparse(), b.dense(), acc);
  } else if (a.IsDense() && b.IsSparse()) {
    GemmDenseSparse(a.dense(), b.sparse(), acc);
  } else {
    GemmSparseSparse(a.sparse(), b.sparse(), acc);
  }
  return Status::Ok();
}

Result<CscBlock> MultiplySparse(const CscBlock& a, const CscBlock& b) {
  if (a.cols() != b.rows()) {
    return Status::DimensionMismatch("sparse multiply " +
                                     a.shape().ToString() + " by " +
                                     b.shape().ToString());
  }
  // Gustavson: accumulate each output column in a dense workspace with an
  // occupancy list, then emit its non-zeros in sorted row order.
  const int64_t m = a.rows();
  const int64_t n = b.cols();
  std::vector<Scalar> workspace(static_cast<size_t>(m), 0);
  std::vector<int32_t> occupied;
  std::vector<int32_t> col_ptr(static_cast<size_t>(n + 1), 0);
  std::vector<int32_t> row_idx;
  std::vector<Scalar> values;

  for (int64_t j = 0; j < n; ++j) {
    occupied.clear();
    for (int32_t p = b.ColStart(j); p < b.ColEnd(j); ++p) {
      const int64_t l = b.row_idx()[p];
      const Scalar t = b.values()[p];
      for (int32_t q = a.ColStart(l); q < a.ColEnd(l); ++q) {
        const int32_t r = a.row_idx()[q];
        if (workspace[r] == Scalar{0}) occupied.push_back(r);
        workspace[r] += a.values()[q] * t;
      }
    }
    std::sort(occupied.begin(), occupied.end());
    for (int32_t r : occupied) {
      if (workspace[r] != Scalar{0}) {
        row_idx.push_back(r);
        values.push_back(workspace[r]);
      }
      workspace[r] = Scalar{0};
    }
    col_ptr[j + 1] = static_cast<int32_t>(values.size());
  }
  return CscBlock(m, n, std::move(col_ptr), std::move(row_idx),
                  std::move(values));
}

Result<CscBlock> MultiplySparseChain(
    const std::vector<std::pair<const CscBlock*, const CscBlock*>>& chain,
    int64_t rows, int64_t cols) {
  for (const auto& [a, b] : chain) {
    if (a->cols() != b->rows() || a->rows() != rows || b->cols() != cols) {
      return Status::DimensionMismatch(
          "sparse chain multiply: " + a->shape().ToString() + " by " +
          b->shape().ToString() + " into " + std::to_string(rows) + "x" +
          std::to_string(cols));
    }
  }
  std::vector<Scalar> workspace(static_cast<size_t>(rows), 0);
  std::vector<int32_t> occupied;
  std::vector<int32_t> col_ptr(static_cast<size_t>(cols + 1), 0);
  std::vector<int32_t> row_idx;
  std::vector<Scalar> values;

  for (int64_t j = 0; j < cols; ++j) {
    occupied.clear();
    for (const auto& [a, b] : chain) {
      for (int32_t p = b->ColStart(j); p < b->ColEnd(j); ++p) {
        const int64_t l = b->row_idx()[p];
        const Scalar t = b->values()[p];
        for (int32_t q = a->ColStart(l); q < a->ColEnd(l); ++q) {
          const int32_t r = a->row_idx()[q];
          if (workspace[r] == Scalar{0}) occupied.push_back(r);
          workspace[r] += a->values()[q] * t;
        }
      }
    }
    std::sort(occupied.begin(), occupied.end());
    for (int32_t r : occupied) {
      if (workspace[r] != Scalar{0}) {
        row_idx.push_back(r);
        values.push_back(workspace[r]);
      }
      workspace[r] = Scalar{0};
    }
    col_ptr[j + 1] = static_cast<int32_t>(values.size());
  }
  return CscBlock(rows, cols, std::move(col_ptr), std::move(row_idx),
                  std::move(values));
}

Result<Block> SumBlocks(const std::vector<const Block*>& blocks,
                        double density_threshold) {
  if (blocks.empty()) return Status::Invalid("SumBlocks over no blocks");
  bool all_sparse = true;
  for (const Block* b : blocks) all_sparse = all_sparse && b->IsSparse();

  if (all_sparse) {
    // Pairwise union merges keep the aggregation sparse end to end.
    CscBlock acc = blocks[0]->sparse();
    for (size_t i = 1; i < blocks.size(); ++i) {
      DMAC_ASSIGN_OR_RETURN(Block merged,
                            Add(Block(std::move(acc)), *blocks[i]));
      acc = std::move(merged.sparse());
    }
    return Block(std::move(acc)).Compacted(density_threshold);
  }

  DenseBlock acc(blocks[0]->rows(), blocks[0]->cols());
  for (const Block* b : blocks) {
    DMAC_RETURN_NOT_OK(AddAccumulate(*b, &acc));
  }
  return CompactFromDense(acc, density_threshold);
}

Result<Block> Add(const Block& a, const Block& b) {
  DMAC_RETURN_NOT_OK(CheckSameShape(a, b, "add"));
  if (a.IsSparse() && b.IsSparse()) {
    return Block(MergeSparse(a.sparse(), b.sparse(),
                             [](Scalar x, Scalar y) { return x + y; }));
  }
  return ElementwiseDense(a, b, [](Scalar x, Scalar y) { return x + y; });
}

Result<Block> Subtract(const Block& a, const Block& b) {
  DMAC_RETURN_NOT_OK(CheckSameShape(a, b, "subtract"));
  if (a.IsSparse() && b.IsSparse()) {
    return Block(MergeSparse(a.sparse(), b.sparse(),
                             [](Scalar x, Scalar y) { return x - y; }));
  }
  return ElementwiseDense(a, b, [](Scalar x, Scalar y) { return x - y; });
}

Result<Block> CellMultiply(const Block& a, const Block& b) {
  DMAC_RETURN_NOT_OK(CheckSameShape(a, b, "cell-multiply"));
  // A sparse side dominates the result pattern: iterate its non-zeros only.
  if (a.IsSparse() || b.IsSparse()) {
    const CscBlock& pattern = a.IsSparse() ? a.sparse() : b.sparse();
    const Block& other = a.IsSparse() ? b : a;
    CscBuilder builder(pattern.rows(), pattern.cols());
    builder.Reserve(static_cast<size_t>(pattern.nnz()));
    for (int64_t c = 0; c < pattern.cols(); ++c) {
      for (int32_t p = pattern.ColStart(c); p < pattern.ColEnd(c); ++p) {
        const int32_t r = pattern.row_idx()[p];
        builder.Add(r, c, pattern.values()[p] * other.At(r, c));
      }
    }
    return Block(builder.Build());
  }
  return ElementwiseDense(a, b, [](Scalar x, Scalar y) { return x * y; });
}

Result<Block> CellDivide(const Block& a, const Block& b) {
  DMAC_RETURN_NOT_OK(CheckSameShape(a, b, "cell-divide"));
  if (a.IsSparse()) {
    const CscBlock& num = a.sparse();
    CscBuilder builder(num.rows(), num.cols());
    builder.Reserve(static_cast<size_t>(num.nnz()));
    for (int64_t c = 0; c < num.cols(); ++c) {
      for (int32_t p = num.ColStart(c); p < num.ColEnd(c); ++p) {
        const int32_t r = num.row_idx()[p];
        builder.Add(r, c, num.values()[p] / b.At(r, c));
      }
    }
    return Block(builder.Build());
  }
  return ElementwiseDense(a, b, [](Scalar x, Scalar y) { return x / y; });
}

Status AddAccumulate(const Block& a, DenseBlock* acc) {
  if (a.rows() != acc->rows() || a.cols() != acc->cols()) {
    return Status::DimensionMismatch("accumulate " + a.shape().ToString() +
                                     " into " + acc->shape().ToString());
  }
  if (a.IsDense()) {
    const Scalar* src = a.dense().data();
    Scalar* dst = acc->data();
    const int64_t n = a.rows() * a.cols();
    for (int64_t i = 0; i < n; ++i) dst[i] += src[i];
  } else {
    const CscBlock& s = a.sparse();
    for (int64_t c = 0; c < s.cols(); ++c) {
      for (int32_t p = s.ColStart(c); p < s.ColEnd(c); ++p) {
        acc->Accumulate(s.row_idx()[p], c, s.values()[p]);
      }
    }
  }
  return Status::Ok();
}

Block ScalarMultiply(const Block& a, Scalar scalar) {
  if (a.IsDense()) {
    DenseBlock out = a.dense();
    Scalar* data = out.data();
    const int64_t n = out.rows() * out.cols();
    for (int64_t i = 0; i < n; ++i) data[i] *= scalar;
    return Block(std::move(out));
  }
  const CscBlock& s = a.sparse();
  std::vector<Scalar> values = s.values();
  for (Scalar& v : values) v *= scalar;
  return Block(CscBlock(s.rows(), s.cols(), s.col_ptr(), s.row_idx(),
                        std::move(values)));
}

Block ScalarAdd(const Block& a, Scalar scalar) {
  if (scalar == Scalar{0}) return a;
  DenseBlock out = a.ToDense();
  Scalar* data = out.data();
  const int64_t n = out.rows() * out.cols();
  for (int64_t i = 0; i < n; ++i) data[i] += scalar;
  return Block(std::move(out));
}

const char* UnaryFnName(UnaryFnKind f) {
  switch (f) {
    case UnaryFnKind::kExp:
      return "exp";
    case UnaryFnKind::kLog:
      return "log";
    case UnaryFnKind::kAbs:
      return "abs";
    case UnaryFnKind::kSigmoid:
      return "sigmoid";
    case UnaryFnKind::kSquare:
      return "square";
  }
  return "?";
}

Block CellUnary(const Block& a, UnaryFnKind fn) {
  if (a.IsSparse() && UnaryFnPreservesZero(fn)) {
    const CscBlock& s = a.sparse();
    std::vector<Scalar> values = s.values();
    for (Scalar& v : values) v = ApplyUnaryFn(fn, v);
    return Block(CscBlock(s.rows(), s.cols(), s.col_ptr(), s.row_idx(),
                          std::move(values)));
  }
  DenseBlock out = a.ToDense();
  Scalar* data = out.data();
  const int64_t n = out.rows() * out.cols();
  for (int64_t i = 0; i < n; ++i) data[i] = ApplyUnaryFn(fn, data[i]);
  return Block(std::move(out));
}

DenseBlock RowSums(const Block& a) {
  DenseBlock out(a.rows(), 1);
  Scalar* sums = out.data();
  if (a.IsDense()) {
    const DenseBlock& d = a.dense();
    for (int64_t c = 0; c < d.cols(); ++c) {
      const Scalar* col = d.col(c);
      for (int64_t r = 0; r < d.rows(); ++r) sums[r] += col[r];
    }
  } else {
    const CscBlock& s = a.sparse();
    for (size_t p = 0; p < s.values().size(); ++p) {
      sums[s.row_idx()[p]] += s.values()[p];
    }
  }
  return out;
}

DenseBlock ColSums(const Block& a) {
  DenseBlock out(1, a.cols());
  Scalar* sums = out.data();
  if (a.IsDense()) {
    const DenseBlock& d = a.dense();
    for (int64_t c = 0; c < d.cols(); ++c) {
      const Scalar* col = d.col(c);
      Scalar total = 0;
      for (int64_t r = 0; r < d.rows(); ++r) total += col[r];
      sums[c] = total;
    }
  } else {
    const CscBlock& s = a.sparse();
    for (int64_t c = 0; c < s.cols(); ++c) {
      Scalar total = 0;
      for (int32_t p = s.ColStart(c); p < s.ColEnd(c); ++p) {
        total += s.values()[p];
      }
      sums[c] = total;
    }
  }
  return out;
}

double Sum(const Block& a) {
  double total = 0;
  if (a.IsDense()) {
    const Scalar* data = a.dense().data();
    const int64_t n = a.rows() * a.cols();
    for (int64_t i = 0; i < n; ++i) total += data[i];
  } else {
    for (Scalar v : a.sparse().values()) total += v;
  }
  return total;
}

double SumSquares(const Block& a) {
  double total = 0;
  if (a.IsDense()) {
    const Scalar* data = a.dense().data();
    const int64_t n = a.rows() * a.cols();
    for (int64_t i = 0; i < n; ++i) {
      total += static_cast<double>(data[i]) * data[i];
    }
  } else {
    for (Scalar v : a.sparse().values()) {
      total += static_cast<double>(v) * v;
    }
  }
  return total;
}

Block CompactFromDense(const DenseBlock& acc, double density_threshold) {
  const int64_t total = acc.rows() * acc.cols();
  const int64_t nnz = acc.CountNonZeros();
  if (total > 0 &&
      static_cast<double>(nnz) < density_threshold * total) {
    CscBuilder builder(acc.rows(), acc.cols());
    builder.Reserve(static_cast<size_t>(nnz));
    for (int64_t c = 0; c < acc.cols(); ++c) {
      const Scalar* col = acc.col(c);
      for (int64_t r = 0; r < acc.rows(); ++r) {
        if (col[r] != Scalar{0}) builder.Add(r, c, col[r]);
      }
    }
    return Block(builder.Build());
  }
  return Block(acc);  // dense copy
}

bool ApproxEqual(const Block& a, const Block& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int64_t c = 0; c < a.cols(); ++c) {
    for (int64_t r = 0; r < a.rows(); ++r) {
      if (std::abs(static_cast<double>(a.At(r, c)) - b.At(r, c)) > tol) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace dmac
