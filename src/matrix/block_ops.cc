#include "matrix/block_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "matrix/kernels.h"

namespace dmac {

namespace {

int64_t EffRows(const Block& x, bool trans) {
  return trans ? x.cols() : x.rows();
}
int64_t EffCols(const Block& x, bool trans) {
  return trans ? x.rows() : x.cols();
}

std::string FlaggedShape(const Block& x, bool trans) {
  return x.shape().ToString() + (trans ? "ᵀ" : "");
}

Status CheckMultiplyShapes(const Block& a, const Block& b, bool trans_a,
                           bool trans_b) {
  if (EffCols(a, trans_a) != EffRows(b, trans_b)) {
    return Status::DimensionMismatch("multiply " + FlaggedShape(a, trans_a) +
                                     " by " + FlaggedShape(b, trans_b));
  }
  return Status::Ok();
}

Status CheckSameShape(const Block& a, const Block& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return Status::DimensionMismatch(std::string(op) + " " +
                                     a.shape().ToString() + " with " +
                                     b.shape().ToString());
  }
  return Status::Ok();
}

template <typename Fn>
Block ElementwiseDense(const Block& a, const Block& b, Fn fn) {
  DenseBlock da = a.ToDense();
  const DenseBlock db = b.ToDense();
  Scalar* out = da.data();
  const Scalar* rhs = db.data();
  const int64_t n = da.rows() * da.cols();
  for (int64_t i = 0; i < n; ++i) out[i] = fn(out[i], rhs[i]);
  return Block(std::move(da));
}

// Merge two CSC blocks column by column: out(i,j) = fn(a(i,j), b(i,j)) over
// the union of their patterns. fn(0,0) must be 0.
template <typename Fn>
CscBlock MergeSparse(const CscBlock& a, const CscBlock& b, Fn fn) {
  CscBuilder builder(a.rows(), a.cols());
  builder.Reserve(static_cast<size_t>(a.nnz() + b.nnz()));
  for (int64_t c = 0; c < a.cols(); ++c) {
    int32_t pa = a.ColStart(c);
    int32_t pb = b.ColStart(c);
    const int32_t ea = a.ColEnd(c);
    const int32_t eb = b.ColEnd(c);
    while (pa < ea || pb < eb) {
      const int32_t ra = pa < ea ? a.row_idx()[pa] : INT32_MAX;
      const int32_t rb = pb < eb ? b.row_idx()[pb] : INT32_MAX;
      if (ra < rb) {
        builder.Add(ra, c, fn(a.values()[pa], Scalar{0}));
        ++pa;
      } else if (rb < ra) {
        builder.Add(rb, c, fn(Scalar{0}, b.values()[pb]));
        ++pb;
      } else {
        builder.Add(ra, c, fn(a.values()[pa], b.values()[pb]));
        ++pa;
        ++pb;
      }
    }
  }
  return builder.Build();
}

}  // namespace

Result<Block> Multiply(const Block& a, const Block& b) {
  return Multiply(a, b, /*trans_a=*/false, /*trans_b=*/false);
}

Result<Block> Multiply(const Block& a, const Block& b, bool trans_a,
                       bool trans_b, GemmScratch* scratch, GemmStats* stats,
                       const GemmParallel* par, const CscBlock* b_csr) {
  DMAC_RETURN_NOT_OK(CheckMultiplyShapes(a, b, trans_a, trans_b));
  DenseBlock acc(EffRows(a, trans_a), EffCols(b, trans_b));
  DMAC_RETURN_NOT_OK(MultiplyAccumulate(a, b, trans_a, trans_b, &acc, scratch,
                                        stats, par, b_csr));
  return Block(std::move(acc));
}

Status MultiplyAccumulate(const Block& a, const Block& b, DenseBlock* acc) {
  return MultiplyAccumulate(a, b, /*trans_a=*/false, /*trans_b=*/false, acc);
}

Status MultiplyAccumulate(const Block& a, const Block& b, bool trans_a,
                          bool trans_b, DenseBlock* acc, GemmScratch* scratch,
                          GemmStats* stats, const GemmParallel* par,
                          const CscBlock* b_csr) {
  DMAC_RETURN_NOT_OK(CheckMultiplyShapes(a, b, trans_a, trans_b));
  if (acc->rows() != EffRows(a, trans_a) ||
      acc->cols() != EffCols(b, trans_b)) {
    return Status::DimensionMismatch(
        "accumulator " + acc->shape().ToString() + " for " +
        FlaggedShape(a, trans_a) + " * " + FlaggedShape(b, trans_b));
  }
  if (a.IsDense() && b.IsDense()) {
    return GemmDense(a.dense(), b.dense(), trans_a, trans_b, acc, scratch,
                     stats, par);
  }
  if (a.IsSparse() && b.IsDense()) {
    return GemmSparseDense(a.sparse(), b.dense(), trans_a, trans_b, acc,
                           scratch, stats);
  }
  if (a.IsDense() && b.IsSparse()) {
    return GemmDenseSparse(a.dense(), b.sparse(), trans_a, trans_b, acc,
                           scratch, stats);
  }
  return GemmSparseSparse(a.sparse(), b.sparse(), trans_a, trans_b, acc,
                          scratch, stats, b_csr);
}

Result<CscBlock> MultiplySparse(const CscBlock& a, const CscBlock& b) {
  if (a.cols() != b.rows()) {
    return Status::DimensionMismatch("sparse multiply " +
                                     a.shape().ToString() + " by " +
                                     b.shape().ToString());
  }
  // Gustavson: accumulate each output column in a dense workspace with an
  // occupancy list, then emit its non-zeros in sorted row order.
  const int64_t m = a.rows();
  const int64_t n = b.cols();
  std::vector<Scalar> workspace(static_cast<size_t>(m), 0);
  std::vector<int32_t> occupied;
  std::vector<int32_t> col_ptr(static_cast<size_t>(n + 1), 0);
  std::vector<int32_t> row_idx;
  std::vector<Scalar> values;

  for (int64_t j = 0; j < n; ++j) {
    occupied.clear();
    for (int32_t p = b.ColStart(j); p < b.ColEnd(j); ++p) {
      const int64_t l = b.row_idx()[p];
      const Scalar t = b.values()[p];
      for (int32_t q = a.ColStart(l); q < a.ColEnd(l); ++q) {
        const int32_t r = a.row_idx()[q];
        if (workspace[r] == Scalar{0}) occupied.push_back(r);
        workspace[r] += a.values()[q] * t;
      }
    }
    std::sort(occupied.begin(), occupied.end());
    for (int32_t r : occupied) {
      if (workspace[r] != Scalar{0}) {
        row_idx.push_back(r);
        values.push_back(workspace[r]);
      }
      workspace[r] = Scalar{0};
    }
    col_ptr[j + 1] = static_cast<int32_t>(values.size());
  }
  return CscBlock(m, n, std::move(col_ptr), std::move(row_idx),
                  std::move(values));
}

Result<CscBlock> MultiplySparseChain(
    const std::vector<std::pair<const CscBlock*, const CscBlock*>>& chain,
    int64_t rows, int64_t cols) {
  for (const auto& [a, b] : chain) {
    if (a->cols() != b->rows() || a->rows() != rows || b->cols() != cols) {
      return Status::DimensionMismatch(
          "sparse chain multiply: " + a->shape().ToString() + " by " +
          b->shape().ToString() + " into " + std::to_string(rows) + "x" +
          std::to_string(cols));
    }
  }
  std::vector<Scalar> workspace(static_cast<size_t>(rows), 0);
  std::vector<int32_t> occupied;
  std::vector<int32_t> col_ptr(static_cast<size_t>(cols + 1), 0);
  std::vector<int32_t> row_idx;
  std::vector<Scalar> values;

  for (int64_t j = 0; j < cols; ++j) {
    occupied.clear();
    for (const auto& [a, b] : chain) {
      for (int32_t p = b->ColStart(j); p < b->ColEnd(j); ++p) {
        const int64_t l = b->row_idx()[p];
        const Scalar t = b->values()[p];
        for (int32_t q = a->ColStart(l); q < a->ColEnd(l); ++q) {
          const int32_t r = a->row_idx()[q];
          if (workspace[r] == Scalar{0}) occupied.push_back(r);
          workspace[r] += a->values()[q] * t;
        }
      }
    }
    std::sort(occupied.begin(), occupied.end());
    for (int32_t r : occupied) {
      if (workspace[r] != Scalar{0}) {
        row_idx.push_back(r);
        values.push_back(workspace[r]);
      }
      workspace[r] = Scalar{0};
    }
    col_ptr[j + 1] = static_cast<int32_t>(values.size());
  }
  return CscBlock(rows, cols, std::move(col_ptr), std::move(row_idx),
                  std::move(values));
}

Result<Block> SumBlocks(const std::vector<const Block*>& blocks,
                        double density_threshold) {
  if (blocks.empty()) return Status::Invalid("SumBlocks over no blocks");
  bool all_sparse = true;
  for (const Block* b : blocks) all_sparse = all_sparse && b->IsSparse();

  if (all_sparse && blocks.size() == 2) {
    // One union merge is already optimal for a pair.
    DMAC_ASSIGN_OR_RETURN(Block merged, Add(*blocks[0], *blocks[1]));
    return merged.Compacted(density_threshold);
  }

  if (all_sparse && blocks.size() > 2) {
    // Dense-workspace scatter: one m-sized column workspace shared across
    // all inputs replaces the pairwise merges (which re-copied the growing
    // accumulator once per input — O(n·nnz) on the CPMM aggregation path).
    // Scattering inputs in order per column keeps the FP addition order
    // identical to the pairwise merges.
    const int64_t m = blocks[0]->rows();
    const int64_t n = blocks[0]->cols();
    for (const Block* blk : blocks) {
      if (blk->rows() != m || blk->cols() != n) {
        return Status::DimensionMismatch("sum " + blk->shape().ToString() +
                                         " with " +
                                         blocks[0]->shape().ToString());
      }
    }
    size_t nnz_bound = 0;
    for (const Block* blk : blocks) {
      nnz_bound += static_cast<size_t>(blk->sparse().nnz());
    }
    std::vector<Scalar> workspace(static_cast<size_t>(m), 0);
    std::vector<int32_t> occupied;
    std::vector<int32_t> col_ptr(static_cast<size_t>(n + 1), 0);
    std::vector<int32_t> row_idx;
    std::vector<Scalar> values;
    row_idx.reserve(std::min(nnz_bound, static_cast<size_t>(m) *
                                            static_cast<size_t>(n)));
    values.reserve(row_idx.capacity());
    for (int64_t j = 0; j < n; ++j) {
      occupied.clear();
      for (const Block* blk : blocks) {
        const CscBlock& s = blk->sparse();
        const auto& rows = s.row_idx();
        const auto& vals = s.values();
        const int32_t end = s.ColEnd(j);
        for (int32_t p = s.ColStart(j); p < end; ++p) {
          const int32_t r = rows[p];
          if (workspace[r] == Scalar{0}) occupied.push_back(r);
          workspace[r] += vals[p];
        }
      }
      std::sort(occupied.begin(), occupied.end());
      for (int32_t r : occupied) {
        // The occupancy list can hold duplicates when a partial sum passes
        // through zero; zeroing after emit dedups exactly like
        // MultiplySparse's workspace.
        if (workspace[r] != Scalar{0}) {
          row_idx.push_back(r);
          values.push_back(workspace[r]);
        }
        workspace[r] = Scalar{0};
      }
      col_ptr[j + 1] = static_cast<int32_t>(values.size());
    }
    return Block(CscBlock(m, n, std::move(col_ptr), std::move(row_idx),
                          std::move(values)))
        .Compacted(density_threshold);
  }

  if (all_sparse) {  // single sparse input
    return Block(blocks[0]->sparse()).Compacted(density_threshold);
  }

  DenseBlock acc(blocks[0]->rows(), blocks[0]->cols());
  for (const Block* b : blocks) {
    DMAC_RETURN_NOT_OK(AddAccumulate(*b, &acc));
  }
  return CompactFromDense(acc, density_threshold);
}

Result<Block> Add(const Block& a, const Block& b) {
  DMAC_RETURN_NOT_OK(CheckSameShape(a, b, "add"));
  if (a.IsSparse() && b.IsSparse()) {
    return Block(MergeSparse(a.sparse(), b.sparse(),
                             [](Scalar x, Scalar y) { return x + y; }));
  }
  return ElementwiseDense(a, b, [](Scalar x, Scalar y) { return x + y; });
}

Result<Block> Subtract(const Block& a, const Block& b) {
  DMAC_RETURN_NOT_OK(CheckSameShape(a, b, "subtract"));
  if (a.IsSparse() && b.IsSparse()) {
    return Block(MergeSparse(a.sparse(), b.sparse(),
                             [](Scalar x, Scalar y) { return x - y; }));
  }
  return ElementwiseDense(a, b, [](Scalar x, Scalar y) { return x - y; });
}

Result<Block> CellMultiply(const Block& a, const Block& b) {
  DMAC_RETURN_NOT_OK(CheckSameShape(a, b, "cell-multiply"));
  // A sparse side dominates the result pattern: iterate its non-zeros only.
  if (a.IsSparse() || b.IsSparse()) {
    const CscBlock& pattern = a.IsSparse() ? a.sparse() : b.sparse();
    const Block& other = a.IsSparse() ? b : a;
    CscBuilder builder(pattern.rows(), pattern.cols());
    builder.Reserve(static_cast<size_t>(pattern.nnz()));
    for (int64_t c = 0; c < pattern.cols(); ++c) {
      for (int32_t p = pattern.ColStart(c); p < pattern.ColEnd(c); ++p) {
        const int32_t r = pattern.row_idx()[p];
        builder.Add(r, c, pattern.values()[p] * other.At(r, c));
      }
    }
    return Block(builder.Build());
  }
  return ElementwiseDense(a, b, [](Scalar x, Scalar y) { return x * y; });
}

Result<Block> CellDivide(const Block& a, const Block& b) {
  DMAC_RETURN_NOT_OK(CheckSameShape(a, b, "cell-divide"));
  if (a.IsSparse()) {
    const CscBlock& num = a.sparse();
    CscBuilder builder(num.rows(), num.cols());
    builder.Reserve(static_cast<size_t>(num.nnz()));
    for (int64_t c = 0; c < num.cols(); ++c) {
      for (int32_t p = num.ColStart(c); p < num.ColEnd(c); ++p) {
        const int32_t r = num.row_idx()[p];
        builder.Add(r, c, num.values()[p] / b.At(r, c));
      }
    }
    return Block(builder.Build());
  }
  return ElementwiseDense(a, b, [](Scalar x, Scalar y) { return x / y; });
}

Status AddAccumulate(const Block& a, DenseBlock* acc) {
  if (a.rows() != acc->rows() || a.cols() != acc->cols()) {
    return Status::DimensionMismatch("accumulate " + a.shape().ToString() +
                                     " into " + acc->shape().ToString());
  }
  if (a.IsDense()) {
    VecAccumulate(acc->data(), a.dense().data(), a.rows() * a.cols());
  } else {
    const CscBlock& s = a.sparse();
    for (int64_t c = 0; c < s.cols(); ++c) {
      for (int32_t p = s.ColStart(c); p < s.ColEnd(c); ++p) {
        acc->Accumulate(s.row_idx()[p], c, s.values()[p]);
      }
    }
  }
  return Status::Ok();
}

Block ScalarMultiply(const Block& a, Scalar scalar) {
  if (a.IsDense()) {
    DenseBlock out = a.dense();
    Scalar* data = out.data();
    const int64_t n = out.rows() * out.cols();
    for (int64_t i = 0; i < n; ++i) data[i] *= scalar;
    return Block(std::move(out));
  }
  const CscBlock& s = a.sparse();
  std::vector<Scalar> values = s.values();
  for (Scalar& v : values) v *= scalar;
  return Block(CscBlock(s.rows(), s.cols(), s.col_ptr(), s.row_idx(),
                        std::move(values)));
}

Block ScalarAdd(const Block& a, Scalar scalar) {
  if (scalar == Scalar{0}) return a;
  DenseBlock out = a.ToDense();
  Scalar* data = out.data();
  const int64_t n = out.rows() * out.cols();
  for (int64_t i = 0; i < n; ++i) data[i] += scalar;
  return Block(std::move(out));
}

const char* UnaryFnName(UnaryFnKind f) {
  switch (f) {
    case UnaryFnKind::kExp:
      return "exp";
    case UnaryFnKind::kLog:
      return "log";
    case UnaryFnKind::kAbs:
      return "abs";
    case UnaryFnKind::kSigmoid:
      return "sigmoid";
    case UnaryFnKind::kSquare:
      return "square";
  }
  return "?";
}

Block CellUnary(const Block& a, UnaryFnKind fn) {
  if (a.IsSparse() && UnaryFnPreservesZero(fn)) {
    const CscBlock& s = a.sparse();
    std::vector<Scalar> values = s.values();
    VecUnary(values.data(), static_cast<int64_t>(values.size()), fn);
    return Block(CscBlock(s.rows(), s.cols(), s.col_ptr(), s.row_idx(),
                          std::move(values)));
  }
  DenseBlock out = a.ToDense();
  VecUnary(out.data(), out.rows() * out.cols(), fn);
  return Block(std::move(out));
}

DenseBlock RowSums(const Block& a) {
  DenseBlock out(a.rows(), 1);
  Scalar* sums = out.data();
  if (a.IsDense()) {
    const DenseBlock& d = a.dense();
    for (int64_t c = 0; c < d.cols(); ++c) {
      VecRowAccumulate(sums, d.col(c), d.rows());
    }
  } else {
    const CscBlock& s = a.sparse();
    for (size_t p = 0; p < s.values().size(); ++p) {
      sums[s.row_idx()[p]] += s.values()[p];
    }
  }
  return out;
}

DenseBlock ColSums(const Block& a) {
  DenseBlock out(1, a.cols());
  Scalar* sums = out.data();
  if (a.IsDense()) {
    const DenseBlock& d = a.dense();
    for (int64_t c = 0; c < d.cols(); ++c) {
      sums[c] = VecColSum(d.col(c), d.rows());
    }
  } else {
    const CscBlock& s = a.sparse();
    for (int64_t c = 0; c < s.cols(); ++c) {
      Scalar total = 0;
      for (int32_t p = s.ColStart(c); p < s.ColEnd(c); ++p) {
        total += s.values()[p];
      }
      sums[c] = total;
    }
  }
  return out;
}

double Sum(const Block& a) {
  if (a.IsDense()) {
    return VecSum(a.dense().data(), a.rows() * a.cols());
  }
  const auto& values = a.sparse().values();
  return VecSum(values.data(), static_cast<int64_t>(values.size()));
}

double SumSquares(const Block& a) {
  if (a.IsDense()) {
    return VecSumSquares(a.dense().data(), a.rows() * a.cols());
  }
  const auto& values = a.sparse().values();
  return VecSumSquares(values.data(), static_cast<int64_t>(values.size()));
}

Block CompactFromDense(const DenseBlock& acc, double density_threshold) {
  const int64_t total = acc.rows() * acc.cols();
  const int64_t nnz = acc.CountNonZeros();
  if (total > 0 &&
      static_cast<double>(nnz) < density_threshold * total) {
    CscBuilder builder(acc.rows(), acc.cols());
    builder.Reserve(static_cast<size_t>(nnz));
    for (int64_t c = 0; c < acc.cols(); ++c) {
      const Scalar* col = acc.col(c);
      for (int64_t r = 0; r < acc.rows(); ++r) {
        if (col[r] != Scalar{0}) builder.Add(r, c, col[r]);
      }
    }
    return Block(builder.Build());
  }
  return Block(acc);  // dense copy
}

namespace {

bool WithinTol(Scalar x, Scalar y, double tol) {
  return std::abs(static_cast<double>(x) - y) <= tol;
}

/// Sparse-vs-dense column walk: advance the sparse pointer alongside the
/// dense rows so each stored entry is visited once (no At() column scans).
bool ApproxEqualSparseDense(const CscBlock& s, const DenseBlock& d,
                            double tol) {
  const auto& rows = s.row_idx();
  const auto& vals = s.values();
  for (int64_t c = 0; c < s.cols(); ++c) {
    const Scalar* col = d.col(c);
    int32_t p = s.ColStart(c);
    const int32_t end = s.ColEnd(c);
    for (int64_t r = 0; r < s.rows(); ++r) {
      const Scalar sv =
          (p < end && rows[p] == r) ? vals[p++] : Scalar{0};
      if (!WithinTol(sv, col[r], tol)) return false;
    }
  }
  return true;
}

/// Two-pointer union walk per column over both sparse patterns.
bool ApproxEqualSparseSparse(const CscBlock& a, const CscBlock& b,
                             double tol) {
  for (int64_t c = 0; c < a.cols(); ++c) {
    int32_t pa = a.ColStart(c);
    int32_t pb = b.ColStart(c);
    const int32_t ea = a.ColEnd(c);
    const int32_t eb = b.ColEnd(c);
    while (pa < ea || pb < eb) {
      const int32_t ra = pa < ea ? a.row_idx()[pa] : INT32_MAX;
      const int32_t rb = pb < eb ? b.row_idx()[pb] : INT32_MAX;
      if (ra < rb) {
        if (!WithinTol(a.values()[pa], Scalar{0}, tol)) return false;
        ++pa;
      } else if (rb < ra) {
        if (!WithinTol(Scalar{0}, b.values()[pb], tol)) return false;
        ++pb;
      } else {
        if (!WithinTol(a.values()[pa], b.values()[pb], tol)) return false;
        ++pa;
        ++pb;
      }
    }
  }
  return true;
}

}  // namespace

bool ApproxEqual(const Block& a, const Block& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  if (a.IsDense() && b.IsDense()) {
    const Scalar* x = a.dense().data();
    const Scalar* y = b.dense().data();
    const int64_t n = a.rows() * a.cols();
    for (int64_t i = 0; i < n; ++i) {
      if (!WithinTol(x[i], y[i], tol)) return false;
    }
    return true;
  }
  if (a.IsSparse() && b.IsSparse()) {
    return ApproxEqualSparseSparse(a.sparse(), b.sparse(), tol);
  }
  if (a.IsSparse()) return ApproxEqualSparseDense(a.sparse(), b.dense(), tol);
  return ApproxEqualSparseDense(b.sparse(), a.dense(), tol);
}

}  // namespace dmac
