#include "matrix/dense_block.h"

#include <algorithm>

#include "matrix/mem_tracker.h"

namespace dmac {

DenseBlock::DenseBlock(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols), 0) {
  DMAC_CHECK(rows >= 0 && cols >= 0);
  Track();
}

DenseBlock::~DenseBlock() { Untrack(); }

DenseBlock::DenseBlock(const DenseBlock& other)
    : rows_(other.rows_), cols_(other.cols_), data_(other.data_) {
  Track();
}

DenseBlock& DenseBlock::operator=(const DenseBlock& other) {
  if (this == &other) return *this;
  Untrack();
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = other.data_;
  Track();
  return *this;
}

DenseBlock::DenseBlock(DenseBlock&& other) noexcept
    : rows_(other.rows_), cols_(other.cols_), data_(std::move(other.data_)) {
  other.rows_ = 0;
  other.cols_ = 0;
  other.data_.clear();
}

DenseBlock& DenseBlock::operator=(DenseBlock&& other) noexcept {
  if (this == &other) return *this;
  Untrack();
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = std::move(other.data_);
  other.rows_ = 0;
  other.cols_ = 0;
  other.data_.clear();
  return *this;
}

void DenseBlock::Clear() { std::fill(data_.begin(), data_.end(), Scalar{0}); }

int64_t DenseBlock::CountNonZeros() const {
  int64_t nnz = 0;
  for (Scalar v : data_) nnz += (v != Scalar{0});
  return nnz;
}

void DenseBlock::Track() {
  if (!data_.empty()) MemTracker::Global().Allocate(MemoryBytes());
}

void DenseBlock::Untrack() {
  if (!data_.empty()) MemTracker::Global().Release(MemoryBytes());
}

}  // namespace dmac
