// Block: the unit of computation and distribution in DMac (paper §5.3).
// A block is either dense (column-major array) or sparse (CSC).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/logging.h"
#include "matrix/csc_block.h"
#include "matrix/dense_block.h"
#include "matrix/shape.h"

namespace dmac {

/// Storage format of a block.
enum class BlockKind { kDense, kSparse };

/// Tagged union of DenseBlock and CscBlock with format-generic accessors.
class Block {
 public:
  /// An empty 0x0 dense block.
  Block() : storage_(DenseBlock()) {}
  Block(DenseBlock dense) : storage_(std::move(dense)) {}  // NOLINT
  Block(CscBlock sparse) : storage_(std::move(sparse)) {}  // NOLINT

  BlockKind kind() const {
    return std::holds_alternative<DenseBlock>(storage_) ? BlockKind::kDense
                                                        : BlockKind::kSparse;
  }
  bool IsDense() const { return kind() == BlockKind::kDense; }
  bool IsSparse() const { return kind() == BlockKind::kSparse; }

  const DenseBlock& dense() const {
    DMAC_CHECK(IsDense());
    return std::get<DenseBlock>(storage_);
  }
  DenseBlock& dense() {
    DMAC_CHECK(IsDense());
    return std::get<DenseBlock>(storage_);
  }
  const CscBlock& sparse() const {
    DMAC_CHECK(IsSparse());
    return std::get<CscBlock>(storage_);
  }
  CscBlock& sparse() {
    DMAC_CHECK(IsSparse());
    return std::get<CscBlock>(storage_);
  }

  int64_t rows() const {
    return IsDense() ? dense().rows() : sparse().rows();
  }
  int64_t cols() const {
    return IsDense() ? dense().cols() : sparse().cols();
  }
  Shape shape() const { return {rows(), cols()}; }

  Scalar At(int64_t r, int64_t c) const {
    return IsDense() ? dense().At(r, c) : sparse().At(r, c);
  }

  int64_t nnz() const {
    return IsDense() ? dense().CountNonZeros() : sparse().nnz();
  }

  /// Payload bytes in the current representation.
  int64_t MemoryBytes() const {
    return IsDense() ? dense().MemoryBytes() : sparse().MemoryBytes();
  }

  /// Converts to a dense copy (identity if already dense).
  DenseBlock ToDense() const;

  /// Converts to a CSC copy (identity if already sparse).
  CscBlock ToSparse() const;

  /// Transposed copy in the same representation.
  Block Transposed() const;

  /// Re-encodes in the cheaper representation: sparse when the density is
  /// below `density_threshold`, dense otherwise.
  Block Compacted(double density_threshold = 0.5) const;

 private:
  std::variant<DenseBlock, CscBlock> storage_;
};

/// Generates a dense block with i.i.d. uniform values in [0, 1).
Block RandomDenseBlock(int64_t rows, int64_t cols, uint64_t seed);

/// Generates a CSC block with ~`sparsity`·rows·cols uniform non-zeros.
Block RandomSparseBlock(int64_t rows, int64_t cols, double sparsity,
                        uint64_t seed);

/// Deterministic per-block seed for a named random matrix: identical on
/// every worker (and in the single-machine interpreter), which is what lets
/// a Broadcast-scheme random matrix cost zero communication.
uint64_t RandomBlockSeed(uint64_t base_seed, const std::string& name,
                         int64_t bi, int64_t bj);

}  // namespace dmac
