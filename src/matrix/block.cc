#include "matrix/block.h"

#include "common/rng.h"

namespace dmac {

DenseBlock Block::ToDense() const {
  if (IsDense()) return dense();
  const CscBlock& s = sparse();
  DenseBlock d(s.rows(), s.cols());
  for (int64_t c = 0; c < s.cols(); ++c) {
    for (int32_t k = s.ColStart(c); k < s.ColEnd(c); ++k) {
      d.Set(s.row_idx()[k], c, s.values()[k]);
    }
  }
  return d;
}

CscBlock Block::ToSparse() const {
  if (IsSparse()) return sparse();
  const DenseBlock& d = dense();
  CscBuilder builder(d.rows(), d.cols());
  for (int64_t c = 0; c < d.cols(); ++c) {
    const Scalar* col = d.col(c);
    for (int64_t r = 0; r < d.rows(); ++r) {
      if (col[r] != Scalar{0}) builder.Add(r, c, col[r]);
    }
  }
  return builder.Build();
}

Block Block::Transposed() const {
  if (IsSparse()) return Block(sparse().Transposed());
  const DenseBlock& d = dense();
  DenseBlock t(d.cols(), d.rows());
  for (int64_t c = 0; c < d.cols(); ++c) {
    const Scalar* col = d.col(c);
    for (int64_t r = 0; r < d.rows(); ++r) t.Set(c, r, col[r]);
  }
  return Block(std::move(t));
}

Block Block::Compacted(double density_threshold) const {
  const int64_t total = rows() * cols();
  if (total == 0) return *this;
  const double density = static_cast<double>(nnz()) / total;
  if (density < density_threshold) {
    return IsSparse() ? *this : Block(ToSparse());
  }
  return IsDense() ? *this : Block(ToDense());
}

Block RandomDenseBlock(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  DenseBlock d(rows, cols);
  Scalar* data = d.data();
  const int64_t n = rows * cols;
  for (int64_t i = 0; i < n; ++i) {
    data[i] = static_cast<Scalar>(rng.NextDouble());
  }
  return Block(std::move(d));
}

uint64_t RandomBlockSeed(uint64_t base_seed, const std::string& name,
                         int64_t bi, int64_t bj) {
  uint64_t seed = base_seed;
  for (char c : name) seed = seed * 131 + static_cast<unsigned char>(c);
  seed = seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(bi);
  seed = seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(bj);
  return seed;
}

Block RandomSparseBlock(int64_t rows, int64_t cols, double sparsity,
                        uint64_t seed) {
  Rng rng(seed);
  CscBuilder builder(rows, cols);
  const int64_t target =
      static_cast<int64_t>(sparsity * static_cast<double>(rows) *
                           static_cast<double>(cols));
  builder.Reserve(static_cast<size_t>(target));
  for (int64_t i = 0; i < target; ++i) {
    const int64_t r = static_cast<int64_t>(rng.NextBounded(rows));
    const int64_t c = static_cast<int64_t>(rng.NextBounded(cols));
    builder.Add(r, c, static_cast<Scalar>(rng.NextDouble() + 0.01));
  }
  return Block(builder.Build());
}

}  // namespace dmac
