// Compressed Sparse Column block (paper §5.3, Fig. 5).
//
// Three arrays: `values` (non-zero items), `row_idx` (row index per item),
// and `col_ptr` (start offset of each column). Memory = 4n + 8·m·n·s bytes,
// matching the paper's Eq. 2 (4-byte column pointers, 4-byte row indices and
// 4-byte float values, so 8 bytes per non-zero).
#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "matrix/shape.h"

namespace dmac {

/// A sparse block in CSC format. Immutable after construction; build with
/// CscBuilder or the static factories.
class CscBlock {
 public:
  CscBlock() = default;

  /// Creates an empty (all-zero) m×n sparse block.
  CscBlock(int64_t rows, int64_t cols);

  /// Takes ownership of pre-built CSC arrays. `col_ptr` must have
  /// `cols + 1` entries with col_ptr[0] == 0 and col_ptr[cols] == nnz; row
  /// indices must be strictly increasing within each column.
  CscBlock(int64_t rows, int64_t cols, std::vector<int32_t> col_ptr,
           std::vector<int32_t> row_idx, std::vector<Scalar> values);

  ~CscBlock();
  CscBlock(const CscBlock& other);
  CscBlock& operator=(const CscBlock& other);
  CscBlock(CscBlock&& other) noexcept;
  CscBlock& operator=(CscBlock&& other) noexcept;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  Shape shape() const { return {rows_, cols_}; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  /// Fraction of non-zero elements.
  double Sparsity() const {
    const int64_t total = rows_ * cols_;
    return total == 0 ? 0.0 : static_cast<double>(nnz()) / total;
  }

  /// Element lookup by binary search within the column. O(log nnz_col).
  Scalar At(int64_t r, int64_t c) const;

  /// [start, end) offsets of column `c` in row_idx()/values().
  int32_t ColStart(int64_t c) const { return col_ptr_[c]; }
  int32_t ColEnd(int64_t c) const { return col_ptr_[c + 1]; }

  const std::vector<int32_t>& col_ptr() const { return col_ptr_; }
  const std::vector<int32_t>& row_idx() const { return row_idx_; }
  const std::vector<Scalar>& values() const { return values_; }

  /// Payload bytes: 4·(cols+1) + 8·nnz.
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(sizeof(int32_t)) * (cols_ + 1) +
           static_cast<int64_t>(sizeof(int32_t) + sizeof(Scalar)) * nnz();
  }

  /// Structural transpose (CSC of the transposed block). O(nnz + m + n).
  CscBlock Transposed() const;

 private:
  void Track();
  void Untrack();
  void CheckInvariants() const;

  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int32_t> col_ptr_;  // size cols_ + 1
  std::vector<int32_t> row_idx_;  // size nnz
  std::vector<Scalar> values_;    // size nnz
};

/// Accumulates (row, col, value) triplets, then emits a CscBlock.
/// Duplicate coordinates are summed. Not thread-safe.
class CscBuilder {
 public:
  CscBuilder(int64_t rows, int64_t cols) : rows_(rows), cols_(cols) {}

  /// Appends one entry. Zero values are kept out of the structure.
  void Add(int64_t row, int64_t col, Scalar value);

  void Reserve(size_t n) { entries_.reserve(n); }
  size_t size() const { return entries_.size(); }

  /// Sorts, deduplicates (summing), and builds the block. The builder is
  /// left empty and reusable.
  CscBlock Build();

 private:
  struct Entry {
    int32_t row;
    int32_t col;
    Scalar value;
  };
  int64_t rows_;
  int64_t cols_;
  std::vector<Entry> entries_;
};

}  // namespace dmac
