#include "matrix/mem_tracker.h"

namespace dmac {

MemTracker& MemTracker::Global() {
  static MemTracker tracker;
  return tracker;
}

void MemTracker::Allocate(int64_t bytes) {
  const int64_t now =
      current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void MemTracker::Release(int64_t bytes) {
  current_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemTracker::ResetPeak() {
  peak_.store(current_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
}

}  // namespace dmac
