// Memoized CSC→CSR format conversions for reused sparse operands.
//
// The Gustavson Aᵀ·B path (matrix/spgemm.h) consumes the right-hand
// operand row-major, i.e. as the structural transpose of its stored CSC
// form. Converting costs one O(nnz) counting pass — cheap once, wasteful
// when the same operand block is multiplied many times: every block-row of
// the output re-reads the same B block within one step, and iterative
// programs (GNMF, PageRank) re-read it every iteration. The planner marks
// such reused operands (plan/reuse.h, PlanStep.cache_csr_b) and the engine
// routes their conversions through this cache.
//
// Keying and lifetime: entries are keyed by the *address* of the stored
// CscBlock payload and hold a shared_ptr to the owning Block, so a key can
// never be freed and reallocated while its entry lives (no ABA). The
// cache is byte-capped with LRU eviction; when the governor supplies
// charge hooks, cached conversion bytes are charged against the query's
// MemoryBudget like any pooled buffer (docs/governance.md).
//
// Thread-safe. A miss converts while holding the cache lock: concurrent
// first readers of one operand serialize and every later reader reuses the
// single conversion — the storm case the TSan suite exercises. The
// conversion itself is O(nnz); callers that cannot tolerate the
// serialization should convert inline instead (GemmSparseSparse does so
// whenever no cache is supplied).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "matrix/block.h"

namespace dmac {

/// Thread-safe LRU cache of CSC→CSR conversions.
class FormatCache {
 public:
  /// Charges `bytes` against an external account (the governor's
  /// MemoryBudget); a non-OK return makes the cache hand the conversion
  /// back uncached instead of holding unaccounted memory.
  using ChargeFn = std::function<Status(int64_t)>;
  /// Returns previously charged bytes on eviction, Clear, or destruction.
  using ReleaseFn = std::function<void(int64_t)>;

  /// Counters for tests and the engine's metrics; a snapshot, not live.
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;      // conversions performed (cached or bypassed)
    int64_t evictions = 0;   // entries dropped to make room
    int64_t entries = 0;     // current resident entries
    int64_t bytes = 0;       // current resident conversion bytes
  };

  /// Cache holding at most `capacity_bytes` of converted payloads.
  /// Conversions larger than the capacity are handed back uncached.
  explicit FormatCache(int64_t capacity_bytes)
      : FormatCache(capacity_bytes, nullptr, nullptr) {}

  /// Same, with governor accounting hooks (both may be null).
  FormatCache(int64_t capacity_bytes, ChargeFn charge, ReleaseFn release)
      : capacity_(capacity_bytes),
        charge_(std::move(charge)),
        release_(std::move(release)) {}

  ~FormatCache() { Clear(); }

  FormatCache(const FormatCache&) = delete;
  FormatCache& operator=(const FormatCache&) = delete;

  /// Returns the CSR form of `source`'s sparse payload — a CscBlock
  /// holding the structural transpose, exactly
  /// `source->sparse().Transposed()` — converting on first use and
  /// serving the shared conversion afterwards. `source` must be sparse
  /// (kInvalidArgument otherwise) and non-null. The returned pointer
  /// stays valid for the caller's lifetime even if the entry is evicted.
  Result<std::shared_ptr<const CscBlock>> Csr(
      const std::shared_ptr<const Block>& source) DMAC_EXCLUDES(mu_);

  /// Drops every entry and returns all charged bytes.
  void Clear() DMAC_EXCLUDES(mu_);

  Stats GetStats() const DMAC_EXCLUDES(mu_);

 private:
  struct Entry {
    std::shared_ptr<const Block> source;  // pins the key's storage
    std::shared_ptr<const CscBlock> csr;
    int64_t bytes = 0;
    std::list<const CscBlock*>::iterator lru_pos;
  };

  /// Evicts least-recently-used entries until `incoming` more bytes fit.
  void EvictToFit(int64_t incoming) DMAC_REQUIRES(mu_);

  const int64_t capacity_;
  const ChargeFn charge_;
  const ReleaseFn release_;

  mutable Mutex mu_;
  std::unordered_map<const CscBlock*, Entry> entries_ DMAC_GUARDED_BY(mu_);
  std::list<const CscBlock*> lru_ DMAC_GUARDED_BY(mu_);  // front = hottest
  Stats stats_ DMAC_GUARDED_BY(mu_);
};

}  // namespace dmac
