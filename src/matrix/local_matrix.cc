#include "matrix/local_matrix.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/rng.h"

namespace dmac {

LocalMatrix LocalMatrix::Zeros(Shape shape, int64_t block_size) {
  LocalMatrix m;
  m.grid_ = {shape, block_size};
  m.blocks_.reserve(static_cast<size_t>(m.grid_.num_blocks()));
  for (int64_t bi = 0; bi < m.grid_.block_rows(); ++bi) {
    for (int64_t bj = 0; bj < m.grid_.block_cols(); ++bj) {
      const Shape s = m.grid_.BlockShape(bi, bj);
      m.blocks_.emplace_back(DenseBlock(s.rows, s.cols));
    }
  }
  return m;
}

LocalMatrix LocalMatrix::RandomDense(Shape shape, int64_t block_size,
                                     uint64_t seed) {
  LocalMatrix m;
  m.grid_ = {shape, block_size};
  m.blocks_.reserve(static_cast<size_t>(m.grid_.num_blocks()));
  uint64_t stream = seed;
  for (int64_t bi = 0; bi < m.grid_.block_rows(); ++bi) {
    for (int64_t bj = 0; bj < m.grid_.block_cols(); ++bj) {
      const Shape s = m.grid_.BlockShape(bi, bj);
      m.blocks_.push_back(
          RandomDenseBlock(s.rows, s.cols, SplitMix64(stream)));
    }
  }
  return m;
}

LocalMatrix LocalMatrix::RandomSparse(Shape shape, int64_t block_size,
                                      double sparsity, uint64_t seed) {
  LocalMatrix m;
  m.grid_ = {shape, block_size};
  m.blocks_.reserve(static_cast<size_t>(m.grid_.num_blocks()));
  uint64_t stream = seed;
  for (int64_t bi = 0; bi < m.grid_.block_rows(); ++bi) {
    for (int64_t bj = 0; bj < m.grid_.block_cols(); ++bj) {
      const Shape s = m.grid_.BlockShape(bi, bj);
      m.blocks_.push_back(
          RandomSparseBlock(s.rows, s.cols, sparsity, SplitMix64(stream)));
    }
  }
  return m;
}

LocalMatrix LocalMatrix::FromBlock(Block block) {
  LocalMatrix m;
  const Shape s = block.shape();
  m.grid_ = {s, std::max<int64_t>(std::max(s.rows, s.cols), 1)};
  m.blocks_.push_back(std::move(block));
  return m;
}

LocalMatrix LocalMatrix::FromBlocks(Shape shape, int64_t block_size,
                                    std::vector<Block> blocks) {
  LocalMatrix m;
  m.grid_ = {shape, block_size};
  DMAC_CHECK_EQ(static_cast<int64_t>(blocks.size()), m.grid_.num_blocks());
  m.blocks_ = std::move(blocks);
  return m;
}

const Block& LocalMatrix::BlockAt(int64_t bi, int64_t bj) const {
  DMAC_CHECK(bi >= 0 && bi < grid_.block_rows());
  DMAC_CHECK(bj >= 0 && bj < grid_.block_cols());
  return blocks_[static_cast<size_t>(bi * grid_.block_cols() + bj)];
}

Block& LocalMatrix::BlockAt(int64_t bi, int64_t bj) {
  return const_cast<Block&>(
      static_cast<const LocalMatrix*>(this)->BlockAt(bi, bj));
}

Scalar LocalMatrix::At(int64_t r, int64_t c) const {
  const int64_t bs = grid_.block_size;
  return BlockAt(r / bs, c / bs).At(r % bs, c % bs);
}

int64_t LocalMatrix::Nnz() const {
  int64_t total = 0;
  for (const Block& b : blocks_) total += b.nnz();
  return total;
}

int64_t LocalMatrix::MemoryBytes() const {
  int64_t total = 0;
  for (const Block& b : blocks_) total += b.MemoryBytes();
  return total;
}

Result<LocalMatrix> LocalMatrix::Multiply(const LocalMatrix& other) const {
  if (cols() != other.rows()) {
    return Status::DimensionMismatch("multiply " + shape().ToString() +
                                     " by " + other.shape().ToString());
  }
  if (block_size() != other.block_size()) {
    return Status::Invalid("multiply requires equal block sizes: " +
                           std::to_string(block_size()) + " vs " +
                           std::to_string(other.block_size()));
  }
  LocalMatrix out = Zeros({rows(), other.cols()}, block_size());
  for (int64_t bi = 0; bi < grid_.block_rows(); ++bi) {
    for (int64_t bj = 0; bj < other.grid_.block_cols(); ++bj) {
      DenseBlock& acc = out.BlockAt(bi, bj).dense();
      for (int64_t bk = 0; bk < grid_.block_cols(); ++bk) {
        DMAC_RETURN_NOT_OK(
            MultiplyAccumulate(BlockAt(bi, bk), other.BlockAt(bk, bj), &acc));
      }
    }
  }
  return out;
}

template <typename Fn>
Result<LocalMatrix> LocalMatrix::ZipBlocks(const LocalMatrix& other,
                                           const char* op, Fn fn) const {
  if (shape() != other.shape() || block_size() != other.block_size()) {
    return Status::DimensionMismatch(std::string(op) + " " +
                                     shape().ToString() + " with " +
                                     other.shape().ToString());
  }
  std::vector<Block> out_blocks;
  out_blocks.reserve(blocks_.size());
  for (size_t i = 0; i < blocks_.size(); ++i) {
    DMAC_ASSIGN_OR_RETURN(Block b, fn(blocks_[i], other.blocks_[i]));
    out_blocks.push_back(std::move(b));
  }
  return FromBlocks(shape(), block_size(), std::move(out_blocks));
}

Result<LocalMatrix> LocalMatrix::Add(const LocalMatrix& other) const {
  return ZipBlocks(other, "add", [](const Block& a, const Block& b) {
    return dmac::Add(a, b);
  });
}

Result<LocalMatrix> LocalMatrix::Subtract(const LocalMatrix& other) const {
  return ZipBlocks(other, "subtract", [](const Block& a, const Block& b) {
    return dmac::Subtract(a, b);
  });
}

Result<LocalMatrix> LocalMatrix::CellMultiply(const LocalMatrix& other) const {
  return ZipBlocks(other, "cell-multiply",
                   [](const Block& a, const Block& b) {
                     return dmac::CellMultiply(a, b);
                   });
}

Result<LocalMatrix> LocalMatrix::CellDivide(const LocalMatrix& other) const {
  return ZipBlocks(other, "cell-divide", [](const Block& a, const Block& b) {
    return dmac::CellDivide(a, b);
  });
}

LocalMatrix LocalMatrix::Transposed() const {
  LocalMatrix out;
  out.grid_ = {shape().Transposed(), block_size()};
  out.blocks_.resize(blocks_.size());
  for (int64_t bi = 0; bi < grid_.block_rows(); ++bi) {
    for (int64_t bj = 0; bj < grid_.block_cols(); ++bj) {
      out.blocks_[static_cast<size_t>(bj * out.grid_.block_cols() + bi)] =
          BlockAt(bi, bj).Transposed();
    }
  }
  return out;
}

LocalMatrix LocalMatrix::ScalarMultiply(Scalar scalar) const {
  std::vector<Block> out_blocks;
  out_blocks.reserve(blocks_.size());
  for (const Block& b : blocks_) {
    out_blocks.push_back(dmac::ScalarMultiply(b, scalar));
  }
  return FromBlocks(shape(), block_size(), std::move(out_blocks));
}

LocalMatrix LocalMatrix::ScalarAdd(Scalar scalar) const {
  std::vector<Block> out_blocks;
  out_blocks.reserve(blocks_.size());
  for (const Block& b : blocks_) {
    out_blocks.push_back(dmac::ScalarAdd(b, scalar));
  }
  return FromBlocks(shape(), block_size(), std::move(out_blocks));
}

LocalMatrix LocalMatrix::RowSums() const {
  LocalMatrix out = Zeros({rows(), 1}, block_size());
  for (int64_t bi = 0; bi < grid_.block_rows(); ++bi) {
    DenseBlock& acc = out.BlockAt(bi, 0).dense();
    for (int64_t bj = 0; bj < grid_.block_cols(); ++bj) {
      const DenseBlock partial = dmac::RowSums(BlockAt(bi, bj));
      for (int64_t r = 0; r < partial.rows(); ++r) {
        acc.Accumulate(r, 0, partial.At(r, 0));
      }
    }
  }
  return out;
}

LocalMatrix LocalMatrix::ColSums() const {
  LocalMatrix out = Zeros({1, cols()}, block_size());
  for (int64_t bj = 0; bj < grid_.block_cols(); ++bj) {
    DenseBlock& acc = out.BlockAt(0, bj).dense();
    for (int64_t bi = 0; bi < grid_.block_rows(); ++bi) {
      const DenseBlock partial = dmac::ColSums(BlockAt(bi, bj));
      for (int64_t c = 0; c < partial.cols(); ++c) {
        acc.Accumulate(0, c, partial.At(0, c));
      }
    }
  }
  return out;
}

double LocalMatrix::Sum() const {
  double total = 0;
  for (const Block& b : blocks_) total += dmac::Sum(b);
  return total;
}

double LocalMatrix::SumSquares() const {
  double total = 0;
  for (const Block& b : blocks_) total += dmac::SumSquares(b);
  return total;
}

LocalMatrix LocalMatrix::Compacted(double density_threshold) const {
  std::vector<Block> out_blocks;
  out_blocks.reserve(blocks_.size());
  for (const Block& b : blocks_) {
    out_blocks.push_back(b.Compacted(density_threshold));
  }
  return FromBlocks(shape(), block_size(), std::move(out_blocks));
}

bool LocalMatrix::ApproxEqual(const LocalMatrix& other, double tol) const {
  if (shape() != other.shape()) return false;
  for (int64_t c = 0; c < cols(); ++c) {
    for (int64_t r = 0; r < rows(); ++r) {
      if (std::abs(static_cast<double>(At(r, c)) - other.At(r, c)) > tol) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace dmac
