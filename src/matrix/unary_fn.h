// Element-wise unary functions applied to every matrix entry.
#pragma once

#include <cmath>

#include "matrix/shape.h"

namespace dmac {

/// The supported element-wise unary functions.
enum class UnaryFnKind {
  kExp,      // e^x            (densifies: e^0 = 1)
  kLog,      // ln(x)          (densifies: ln(0) = -inf)
  kAbs,      // |x|            (zero-preserving)
  kSigmoid,  // 1/(1+e^-x)     (densifies: σ(0) = 0.5)
  kSquare,   // x²             (zero-preserving)
};

const char* UnaryFnName(UnaryFnKind f);

/// True when f(0) == 0, so a sparse operand stays sparse.
inline bool UnaryFnPreservesZero(UnaryFnKind f) {
  return f == UnaryFnKind::kAbs || f == UnaryFnKind::kSquare;
}

/// Applies the function to one value.
inline Scalar ApplyUnaryFn(UnaryFnKind f, Scalar x) {
  switch (f) {
    case UnaryFnKind::kExp:
      return std::exp(x);
    case UnaryFnKind::kLog:
      return std::log(x);
    case UnaryFnKind::kAbs:
      return std::abs(x);
    case UnaryFnKind::kSigmoid:
      return 1.0f / (1.0f + std::exp(-x));
    case UnaryFnKind::kSquare:
      return x * x;
  }
  return x;
}

}  // namespace dmac
