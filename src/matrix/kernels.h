// High-performance block kernels: the compute core under block_ops.h.
//
// The dense GEMM is a cache-blocked, register-tiled micro-kernel design
// (GotoBLAS-style): operand panels are packed into contiguous scratch
// buffers sized for the cache hierarchy, and an 8x16 register tile with a
// fixed trip count lets the compiler auto-vectorize the inner product (this
// translation unit is compiled -O3, optionally -march=native; see
// src/matrix/CMakeLists.txt and docs/kernels.md).
//
// Transpose-awareness: every multiply kernel takes TransA/TransB flags so a
// transposed operand is consumed in its *stored* layout — the packing
// routines absorb a dense transpose (no materialized copy), and a CSC block
// under TransA is simply reinterpreted as CSR of the logical operand. The
// planner's fusion pass (plan/fusion.h) relies on this to delete
// materialized kTranspose steps.
//
// Packing scratch comes from a caller-supplied allocator — the local engine
// installs a BufferPool-backed one so the governor's memory accounting sees
// packing buffers like any other pooled block. Without an allocator the
// scratch falls back to plain heap blocks (tests, benchmarks).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "matrix/csc_block.h"
#include "matrix/dense_block.h"
#include "matrix/unary_fn.h"

namespace dmac {

class ThreadPool;

// ---- tiling parameters ---------------------------------------------------
// Register tile: kMr x kNr accumulators (8x16 floats = 8 AVX-512 lanes'
// worth, still sensible on AVX2). Cache blocking: a kMc x kKc packed A
// panel (~128 KB, L2-resident) against kKc x kNr B micro-panels (~16 KB,
// L1-resident) swept over kNc output columns.
inline constexpr int64_t kGemmMr = 8;
inline constexpr int64_t kGemmNr = 16;
inline constexpr int64_t kGemmKc = 256;
inline constexpr int64_t kGemmMc = 128;
inline constexpr int64_t kGemmNc = 1024;

/// Dense multiplies below this flop count (2·m·n·k) always run the serial
/// macro-kernel: tile-task dispatch costs more than it buys on small
/// blocks (docs/performance.md).
inline constexpr int64_t kGemmParallelMinFlops = 4'000'000;

/// Per-call kernel accounting, surfaced as engine.gemm_flops,
/// engine.gemm.pack.seconds and engine.gemm.tasks (docs/observability.md).
struct GemmStats {
  double flops = 0;         // 2*m*n*k per dense GEMM, 2 per sparse madd
  double pack_seconds = 0;  // wall time spent packing/staging/converting
  double tasks = 0;         // parallel tile tasks run (0 on the serial path)

  void Merge(const GemmStats& o) {
    flops += o.flops;
    pack_seconds += o.pack_seconds;
    tasks += o.tasks;
  }
};

/// Intra-kernel parallelism context for the dense GEMM macro-kernel.
///
/// The dense kernel decomposes each Kc slice into independent
/// (Mc-row-panel × column-chunk) tile tasks that all read the same packed
/// operand panels and write disjoint accumulator tiles, then runs them via
/// ParallelFor (common/parallel_for.h): the calling thread participates, so
/// sharing `pool` with the engine's own block tasks cannot deadlock. The
/// Kc accumulation loop stays serial, which keeps the threaded path
/// bit-identical to the serial one.
struct GemmParallel {
  /// Pool the tile tasks fan out over; null runs the serial kernel.
  ThreadPool* pool = nullptr;
  /// Cooperative cancel flag polled at every tile-task boundary (may be
  /// null). Once it reads true the kernel stops claiming tiles and returns
  /// kCancelled.
  const std::atomic<bool>* abandon = nullptr;
  /// Upper bound on concurrent tile workers *including* the calling
  /// thread; values <= 1 run the serial kernel. The engine passes the pool
  /// width + 1.
  int max_workers = 0;
  /// Optional per-tile-task wrapper (must invoke `body` exactly once); the
  /// engine installs one that records a "gemm-tile" trace span so the
  /// matrix layer stays free of an obs dependency. Called concurrently.
  std::function<void(const std::function<void()>&)> wrap_task;

  /// True when the configuration can actually fan out.
  bool Enabled() const { return pool != nullptr && max_workers > 1; }
};

/// Reusable packing/staging scratch for the multiply kernels. One instance
/// serves one task (any number of sequential kernel calls); not
/// thread-safe. Buffers are acquired lazily and returned on destruction.
class GemmScratch {
 public:
  using AcquireFn = std::function<Result<DenseBlock>(int64_t, int64_t)>;
  using ReleaseFn = std::function<void(DenseBlock)>;

  /// Heap-backed scratch (tests, benchmarks, standalone kernel use).
  GemmScratch() = default;

  /// Scratch drawing from an external pool (the engine passes
  /// BufferPool::Acquire/Release so packing memory is budget-charged).
  GemmScratch(AcquireFn acquire, ReleaseFn release)
      : acquire_(std::move(acquire)), release_(std::move(release)) {}

  ~GemmScratch();

  GemmScratch(const GemmScratch&) = delete;
  GemmScratch& operator=(const GemmScratch&) = delete;

  /// Movable so factories can hand out configured scratches; the source is
  /// left empty (its destructor releases nothing).
  GemmScratch(GemmScratch&& other) noexcept
      : acquire_(std::move(other.acquire_)),
        release_(std::move(other.release_)),
        panel_a_(std::move(other.panel_a_)),
        panel_b_(std::move(other.panel_b_)),
        staging_(std::move(other.staging_)),
        has_a_(std::exchange(other.has_a_, false)),
        has_b_(std::exchange(other.has_b_, false)),
        has_staging_(std::exchange(other.has_staging_, false)) {}

  /// Packed A panel of at least `elems` floats (≤ kGemmMc·kGemmKc; sized to
  /// the operands so small multiplies charge small buffers against a
  /// governed budget). Grows on demand, never shrinks.
  Result<Scalar*> PanelA(int64_t elems);
  /// Packed B panel of at least `elems` floats (≤ kGemmKc·kGemmNc).
  Result<Scalar*> PanelB(int64_t elems);
  /// Transpose staging for mixed dense/sparse flagged multiplies: a dense
  /// rows x cols buffer. Contents are overwritten by the caller; reacquired
  /// when the requested shape grows.
  Result<DenseBlock*> Staging(int64_t rows, int64_t cols);

 private:
  Result<DenseBlock> AcquireBlock(int64_t rows, int64_t cols);
  void ReleaseBlock(DenseBlock block);

  AcquireFn acquire_;
  ReleaseFn release_;
  DenseBlock panel_a_;
  DenseBlock panel_b_;
  DenseBlock staging_;
  bool has_a_ = false;
  bool has_b_ = false;
  bool has_staging_ = false;
};

// ---- multiply kernels ----------------------------------------------------
// All kernels accumulate op(A)·op(B) into a dense accumulator whose shape
// must match the *effective* (post-transpose) operand shapes; dimension
// checking lives in block_ops.cc. `scratch` may be null (a local heap
// scratch is used); `stats` may be null (no accounting). The only failure
// mode is scratch acquisition (kResourceExhausted under a governed memory
// budget).

/// acc += op(A)·op(B) over dense blocks: packed panels + micro-kernel. The
/// packing stage absorbs the transposes, so all four flag combinations run
/// the same micro-kernel and produce bit-identical results. Entirely-zero
/// packed micro-panels are skipped (the column-skip prefilter for
/// dense-but-sparse-ish operands); zero terms never change a finite sum.
///
/// When `par` is enabled and the multiply is at least
/// kGemmParallelMinFlops, each Kc slice's tile tasks fan out over
/// `par->pool` — bit-identical to the serial path (see GemmParallel). A
/// fired `par->abandon` flag returns kCancelled, possibly mid-product.
[[nodiscard]] Status GemmDense(const DenseBlock& a, const DenseBlock& b, bool trans_a,
                 bool trans_b, DenseBlock* acc, GemmScratch* scratch,
                 GemmStats* stats, const GemmParallel* par = nullptr);

/// acc += op(A_csc)·op(B_dense). TransA reinterprets the CSC arrays as CSR
/// of the logical A (a per-output-element gather dot product); TransB
/// stages Bᵀ once through the scratch.
[[nodiscard]] Status GemmSparseDense(const CscBlock& a, const DenseBlock& b, bool trans_a,
                       bool trans_b, DenseBlock* acc, GemmScratch* scratch,
                       GemmStats* stats);

/// acc += op(A_dense)·op(B_csc). TransB walks B's stored columns as the
/// logical B's rows (contiguous axpy per stored entry); TransA stages Aᵀ
/// through the scratch when B carries enough non-zeros to amortize the
/// transpose (then runs the contiguous axpy kernel), falling back to a
/// per-element gather dot for very sparse B.
[[nodiscard]] Status GemmDenseSparse(const DenseBlock& a, const CscBlock& b, bool trans_a,
                       bool trans_b, DenseBlock* acc, GemmScratch* scratch,
                       GemmStats* stats);

/// acc += op(A_csc)·op(B_csc) with a dense accumulator. The transposed
/// cases run Gustavson row-major SpGEMM over CSR views (matrix/spgemm.h):
/// a CSC block under TransA *is* a CSR view for free, and the TransA-only
/// case needs CSR of B — pass a precomputed `b_csr` (the structural
/// transpose of `b`, e.g. from a FormatCache) to skip the one-time CSC→CSR
/// conversion this kernel otherwise performs inline (the conversion is
/// counted as pack time). `b_csr` is ignored by the other flag cases.
[[nodiscard]] Status GemmSparseSparse(const CscBlock& a, const CscBlock& b, bool trans_a,
                        bool trans_b, DenseBlock* acc, GemmScratch* scratch,
                        GemmStats* stats, const CscBlock* b_csr = nullptr);

// ---- vectorized elementwise / reduction primitives -----------------------
// Plain loops with compiler-friendly shapes (contiguous, fixed-stride,
// multiple accumulators), compiled -O3 in this TU.

/// dst[i] += src[i] for i in [0, n).
void VecAccumulate(Scalar* dst, const Scalar* src, int64_t n);

/// Σ data[i] with double accumulation (8-way partial sums).
double VecSum(const Scalar* data, int64_t n);

/// Σ data[i]² with double accumulation (8-way partial sums).
double VecSumSquares(const Scalar* data, int64_t n);

/// sums[r] += col[r] for r in [0, rows) — the RowSums inner loop.
void VecRowAccumulate(Scalar* sums, const Scalar* col, int64_t rows);

/// Σ col[r] as Scalar (4-way partial sums) — the ColSums inner loop.
Scalar VecColSum(const Scalar* col, int64_t rows);

/// data[i] = fn(data[i]); per-function loops so abs/square vectorize.
void VecUnary(Scalar* data, int64_t n, UnaryFnKind fn);

}  // namespace dmac
