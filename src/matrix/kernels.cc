// Kernel implementations. This TU is compiled -O3 (plus -march=native when
// DMAC_NATIVE_ARCH is on) so the fixed-trip-count loops below vectorize;
// see docs/kernels.md for the design and how it was verified with
// -fopt-info-vec.
#include "matrix/kernels.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/parallel_for.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "matrix/spgemm.h"

namespace dmac {

namespace {

// ---- packing -------------------------------------------------------------
// A is packed into row micro-panels of kGemmMr rows: within a panel the
// element order is (l, i) — the kGemmMr values of one k-slice are
// contiguous, which is exactly the broadcast order the micro-kernel reads.
// B is packed into column micro-panels of kGemmNr columns in (l, j) order.
// Ragged edges are zero-padded so the micro-kernel always runs full tiles;
// the zero lanes fold into local accumulators that are never written back.
//
// Each packer returns true when the packed micro-panel contains at least
// one non-zero — the cheap column/row-skip prefilter: an all-zero panel
// contributes nothing, and skipping exact zeros never changes a finite sum.

/// Any-nonzero scan over a packed panel (contiguous, vectorizes).
bool AnyNonZero(const Scalar* p, int64_t n) {
  // Branch-free accumulation of the "some bit set" predicate.
  Scalar acc = 0;
  for (int64_t i = 0; i < n; ++i) acc += p[i] != Scalar{0} ? Scalar{1} : Scalar{0};
  return acc != Scalar{0};
}

/// Packs rows [i0, i0+mc) x cols [l0, l0+kc) of the effective A (m x k)
/// into `pack`. `a` is the stored block; when `trans` is set the effective
/// A(i, l) is stored at a(l, i).
void PackA(const DenseBlock& a, bool trans, int64_t i0, int64_t mc,
           int64_t l0, int64_t kc, Scalar* pack) {
  const int64_t panels = (mc + kGemmMr - 1) / kGemmMr;
  for (int64_t p = 0; p < panels; ++p) {
    Scalar* dst = pack + p * kGemmMr * kc;
    const int64_t ibase = i0 + p * kGemmMr;
    const int64_t mr = std::min<int64_t>(kGemmMr, i0 + mc - ibase);
    if (!trans) {
      // Stored column-major m x k: a column of A holds consecutive i.
      for (int64_t l = 0; l < kc; ++l) {
        const Scalar* src = a.col(l0 + l) + ibase;
        for (int64_t i = 0; i < mr; ++i) dst[l * kGemmMr + i] = src[i];
        for (int64_t i = mr; i < kGemmMr; ++i) dst[l * kGemmMr + i] = 0;
      }
    } else {
      // Stored k x m: effective row i of A is stored column i — packing a
      // transposed operand reads contiguously, no transposed copy needed.
      for (int64_t i = 0; i < mr; ++i) {
        const Scalar* src = a.col(ibase + i) + l0;
        for (int64_t l = 0; l < kc; ++l) dst[l * kGemmMr + i] = src[l];
      }
      for (int64_t i = mr; i < kGemmMr; ++i) {
        for (int64_t l = 0; l < kc; ++l) dst[l * kGemmMr + i] = 0;
      }
    }
  }
}

/// Packs rows [l0, l0+kc) x cols [j0, j0+nc) of the effective B (k x n)
/// into `pack`, and records per-micro-panel nonzero flags in `live`.
void PackB(const DenseBlock& b, bool trans, int64_t l0, int64_t kc,
           int64_t j0, int64_t nc, Scalar* pack, std::vector<char>* live) {
  const int64_t panels = (nc + kGemmNr - 1) / kGemmNr;
  live->assign(static_cast<size_t>(panels), 0);
  for (int64_t p = 0; p < panels; ++p) {
    Scalar* dst = pack + p * kGemmNr * kc;
    const int64_t jbase = j0 + p * kGemmNr;
    const int64_t nr = std::min<int64_t>(kGemmNr, j0 + nc - jbase);
    if (!trans) {
      // Stored k x n: effective column j is stored column j.
      for (int64_t j = 0; j < nr; ++j) {
        const Scalar* src = b.col(jbase + j) + l0;
        for (int64_t l = 0; l < kc; ++l) dst[l * kGemmNr + j] = src[l];
      }
      for (int64_t j = nr; j < kGemmNr; ++j) {
        for (int64_t l = 0; l < kc; ++l) dst[l * kGemmNr + j] = 0;
      }
    } else {
      // Stored n x k: effective B(l, j) is stored at b(j, l); one k-slice
      // of the panel is a contiguous run of the stored column l.
      for (int64_t l = 0; l < kc; ++l) {
        const Scalar* src = b.col(l0 + l) + jbase;
        for (int64_t j = 0; j < nr; ++j) dst[l * kGemmNr + j] = src[j];
        for (int64_t j = nr; j < kGemmNr; ++j) dst[l * kGemmNr + j] = 0;
      }
    }
    (*live)[static_cast<size_t>(p)] = AnyNonZero(dst, kc * kGemmNr) ? 1 : 0;
  }
}

// ---- micro-kernel --------------------------------------------------------

/// acc(kGemmMr x kGemmNr tile at (i, j)) += packed_a · packed_b over kc.
/// Fixed trip counts over the register tile let the compiler keep the
/// accumulators in vector registers and fuse the multiply-adds — but only
/// if the tile loops are actually flattened: without the explicit unroll
/// pragmas gcc vectorizes the j loop yet leaves `acc` addressable on the
/// stack, reloading and respilling the whole tile every k step (measured
/// ~12x slower than the fully unrolled form on AVX-512, ~5x on baseline
/// SSE2). Only the first mr x nr elements are written back (edge tiles).
void MicroKernel(int64_t kc, const Scalar* __restrict a,
                 const Scalar* __restrict b, Scalar* c, int64_t ldc,
                 int64_t mr, int64_t nr) {
  // The unroll factors below must match the tile; update them together.
  static_assert(kGemmMr == 8 && kGemmNr == 16);
  Scalar acc[kGemmMr][kGemmNr] = {};
  for (int64_t l = 0; l < kc; ++l) {
    const Scalar* al = a + l * kGemmMr;
    const Scalar* bl = b + l * kGemmNr;
#pragma GCC unroll 8
    for (int64_t i = 0; i < kGemmMr; ++i) {
      const Scalar ai = al[i];
#pragma GCC unroll 16
      for (int64_t j = 0; j < kGemmNr; ++j) acc[i][j] += ai * bl[j];
    }
  }
  for (int64_t j = 0; j < nr; ++j) {
    Scalar* col = c + j * ldc;
    for (int64_t i = 0; i < mr; ++i) col[i] += acc[i][j];
  }
}

/// Effective dimensions of a possibly-flagged operand.
int64_t EffRows(const DenseBlock& x, bool trans) {
  return trans ? x.cols() : x.rows();
}
int64_t EffCols(const DenseBlock& x, bool trans) {
  return trans ? x.rows() : x.cols();
}

/// Stages the dense transpose of `x` into scratch and returns the staged
/// block (used by the mixed dense/sparse flagged kernels, where packing
/// cannot absorb the transpose). Counted as packing time.
Result<const DenseBlock*> StageTranspose(const DenseBlock& x,
                                         GemmScratch* scratch,
                                         GemmStats* stats) {
  Timer timer;
  DMAC_ASSIGN_OR_RETURN(DenseBlock * staged,
                        scratch->Staging(x.cols(), x.rows()));
  const int64_t rows = x.rows();
  const int64_t cols = x.cols();
  // Tiled transpose to keep both sides cache-resident.
  constexpr int64_t kTile = 32;
  for (int64_t c0 = 0; c0 < cols; c0 += kTile) {
    const int64_t c1 = std::min(cols, c0 + kTile);
    for (int64_t r0 = 0; r0 < rows; r0 += kTile) {
      const int64_t r1 = std::min(rows, r0 + kTile);
      for (int64_t c = c0; c < c1; ++c) {
        const Scalar* src = x.col(c);
        for (int64_t r = r0; r < r1; ++r) {
          staged->col(r)[c] = src[r];
        }
      }
    }
  }
  if (stats != nullptr) stats->pack_seconds += timer.ElapsedSeconds();
  return staged;
}

}  // namespace

// ---- GemmScratch ---------------------------------------------------------

GemmScratch::~GemmScratch() {
  if (has_a_) ReleaseBlock(std::move(panel_a_));
  if (has_b_) ReleaseBlock(std::move(panel_b_));
  if (has_staging_) ReleaseBlock(std::move(staging_));
}

Result<DenseBlock> GemmScratch::AcquireBlock(int64_t rows, int64_t cols) {
  if (acquire_) return acquire_(rows, cols);
  return DenseBlock(rows, cols);
}

void GemmScratch::ReleaseBlock(DenseBlock block) {
  if (release_) release_(std::move(block));
}

Result<Scalar*> GemmScratch::PanelA(int64_t elems) {
  if (has_a_ && panel_a_.rows() * panel_a_.cols() < elems) {
    ReleaseBlock(std::move(panel_a_));
    has_a_ = false;
  }
  if (!has_a_) {
    DMAC_ASSIGN_OR_RETURN(panel_a_, AcquireBlock(elems, 1));
    has_a_ = true;
  }
  return panel_a_.data();
}

Result<Scalar*> GemmScratch::PanelB(int64_t elems) {
  if (has_b_ && panel_b_.rows() * panel_b_.cols() < elems) {
    ReleaseBlock(std::move(panel_b_));
    has_b_ = false;
  }
  if (!has_b_) {
    DMAC_ASSIGN_OR_RETURN(panel_b_, AcquireBlock(elems, 1));
    has_b_ = true;
  }
  return panel_b_.data();
}

Result<DenseBlock*> GemmScratch::Staging(int64_t rows, int64_t cols) {
  if (has_staging_ &&
      (staging_.rows() != rows || staging_.cols() != cols)) {
    ReleaseBlock(std::move(staging_));
    has_staging_ = false;
  }
  if (!has_staging_) {
    DMAC_ASSIGN_OR_RETURN(staging_, AcquireBlock(rows, cols));
    has_staging_ = true;
  }
  return &staging_;
}

// ---- dense GEMM ----------------------------------------------------------

namespace {

/// Column width of one parallel tile task: 8 Nr panels. Wide enough that
/// the task body dwarfs the ParallelFor claim (an Mc×128×Kc tile is ~8.4
/// MFLOP), narrow enough that a 256-column block still yields 2 chunks per
/// Mc panel for load balancing. A multiple of kGemmNr so chunk boundaries
/// align with packed micro-panels.
constexpr int64_t kGemmParColChunk = 8 * kGemmNr;

int64_t RoundUp(int64_t v, int64_t unit) { return (v + unit - 1) / unit * unit; }

/// Threaded macro-kernel: per Kc slice, pack the *full* m-height A panel
/// and n-width B panel serially, then fan the (Mc-row-panel ×
/// column-chunk) tile tasks out over the pool. Every tile task reads the
/// shared packed panels and writes a disjoint set of accumulator tiles,
/// and the Kc loop stays serial, so each C element sees the same packed
/// values added in the same order as the serial path — bit-identical.
Status GemmDenseThreaded(const DenseBlock& a, const DenseBlock& b,
                         bool trans_a, bool trans_b, DenseBlock* acc,
                         GemmScratch* scratch, GemmStats* stats,
                         const GemmParallel& par, int64_t m, int64_t n,
                         int64_t k) {
  const int64_t kc_max = std::min(k, kGemmKc);
  DMAC_ASSIGN_OR_RETURN(Scalar * pack_a,
                        scratch->PanelA(RoundUp(m, kGemmMr) * kc_max));
  DMAC_ASSIGN_OR_RETURN(Scalar * pack_b,
                        scratch->PanelB(kc_max * RoundUp(n, kGemmNr)));
  std::vector<char> b_live;

  const int64_t row_panels = (m + kGemmMc - 1) / kGemmMc;
  const int64_t col_chunks = (n + kGemmParColChunk - 1) / kGemmParColChunk;
  const int64_t tiles = row_panels * col_chunks;

  for (int64_t l0 = 0; l0 < k; l0 += kGemmKc) {
    const int64_t kc = std::min(kGemmKc, k - l0);
    Timer pack_timer;
    PackB(b, trans_b, l0, kc, 0, n, pack_b, &b_live);
    PackA(a, trans_a, 0, m, l0, kc, pack_a);
    if (stats != nullptr) stats->pack_seconds += pack_timer.ElapsedSeconds();

    auto tile = [&](int64_t t) {
      const int64_t i0 = (t / col_chunks) * kGemmMc;
      const int64_t mc = std::min(kGemmMc, m - i0);
      const int64_t j0 = (t % col_chunks) * kGemmParColChunk;
      const int64_t nc = std::min(kGemmParColChunk, n - j0);
      // Mc and the chunk width are multiples of Mr/Nr, so this tile's
      // micro-panels index cleanly into the full packed panels.
      const int64_t ip0 = i0 / kGemmMr;
      const int64_t jp0 = j0 / kGemmNr;
      const int64_t jpanels = (nc + kGemmNr - 1) / kGemmNr;
      const int64_t ipanels = (mc + kGemmMr - 1) / kGemmMr;
      for (int64_t jp = 0; jp < jpanels; ++jp) {
        if (!b_live[static_cast<size_t>(jp0 + jp)]) continue;
        const int64_t j = j0 + jp * kGemmNr;
        const int64_t nr = std::min<int64_t>(kGemmNr, n - j);
        for (int64_t ip = 0; ip < ipanels; ++ip) {
          const int64_t i = i0 + ip * kGemmMr;
          const int64_t mr = std::min<int64_t>(kGemmMr, m - i);
          MicroKernel(kc, pack_a + (ip0 + ip) * kGemmMr * kc,
                      pack_b + (jp0 + jp) * kGemmNr * kc, acc->col(j) + i,
                      acc->rows(), mr, nr);
        }
      }
    };
    std::function<void(int64_t)> run = tile;
    if (par.wrap_task) {
      run = [&par, &tile](int64_t t) {
        par.wrap_task([&tile, t] { tile(t); });
      };
    }
    const int64_t ran =
        ParallelFor(par.pool, tiles, par.max_workers - 1, par.abandon, run);
    if (stats != nullptr) stats->tasks += static_cast<double>(ran);
    if (ran < tiles) {
      // The abandon flag fired mid-product; the accumulator holds a
      // partial sum. The engine discards it and reports the governor's
      // precise cancel reason over this generic one.
      return Status::Cancelled("dense GEMM abandoned at tile-task boundary");
    }
  }
  return Status::Ok();
}

}  // namespace

Status GemmDense(const DenseBlock& a, const DenseBlock& b, bool trans_a,
                 bool trans_b, DenseBlock* acc, GemmScratch* scratch,
                 GemmStats* stats, const GemmParallel* par) {
  const int64_t m = EffRows(a, trans_a);
  const int64_t k = EffCols(a, trans_a);
  const int64_t n = EffCols(b, trans_b);
  if (m == 0 || n == 0 || k == 0) return Status::Ok();
  if (stats != nullptr) stats->flops += 2.0 * m * n * k;

  GemmScratch local;
  if (scratch == nullptr) scratch = &local;
  if (par != nullptr && par->Enabled() &&
      2.0 * m * n * k >= static_cast<double>(kGemmParallelMinFlops)) {
    return GemmDenseThreaded(a, b, trans_a, trans_b, acc, scratch, stats,
                             *par, m, n, k);
  }
  // Panels are sized to the actual blocking this call uses (capped at the
  // full cache-block panels) so small multiplies charge small buffers
  // against a governed budget; exhaustion propagates as a Status.
  const auto round_up = [](int64_t v, int64_t unit) {
    return (v + unit - 1) / unit * unit;
  };
  const int64_t kc_max = std::min(k, kGemmKc);
  const int64_t a_elems = round_up(std::min(m, kGemmMc), kGemmMr) * kc_max;
  const int64_t b_elems = kc_max * round_up(std::min(n, kGemmNc), kGemmNr);
  DMAC_ASSIGN_OR_RETURN(Scalar * pack_a, scratch->PanelA(a_elems));
  DMAC_ASSIGN_OR_RETURN(Scalar * pack_b, scratch->PanelB(b_elems));
  std::vector<char> b_live;

  for (int64_t j0 = 0; j0 < n; j0 += kGemmNc) {
    const int64_t nc = std::min(kGemmNc, n - j0);
    for (int64_t l0 = 0; l0 < k; l0 += kGemmKc) {
      const int64_t kc = std::min(kGemmKc, k - l0);
      Timer pack_timer;
      PackB(b, trans_b, l0, kc, j0, nc, pack_b, &b_live);
      if (stats != nullptr) {
        stats->pack_seconds += pack_timer.ElapsedSeconds();
      }
      for (int64_t i0 = 0; i0 < m; i0 += kGemmMc) {
        const int64_t mc = std::min(kGemmMc, m - i0);
        pack_timer.Reset();
        PackA(a, trans_a, i0, mc, l0, kc, pack_a);
        if (stats != nullptr) {
          stats->pack_seconds += pack_timer.ElapsedSeconds();
        }
        const int64_t jpanels = (nc + kGemmNr - 1) / kGemmNr;
        const int64_t ipanels = (mc + kGemmMr - 1) / kGemmMr;
        for (int64_t jp = 0; jp < jpanels; ++jp) {
          if (!b_live[static_cast<size_t>(jp)]) continue;  // zero columns
          const int64_t j = j0 + jp * kGemmNr;
          const int64_t nr = std::min<int64_t>(kGemmNr, n - j);
          for (int64_t ip = 0; ip < ipanels; ++ip) {
            const int64_t i = i0 + ip * kGemmMr;
            const int64_t mr = std::min<int64_t>(kGemmMr, m - i);
            MicroKernel(kc, pack_a + ip * kGemmMr * kc,
                        pack_b + jp * kGemmNr * kc, acc->col(j) + i,
                        acc->rows(), mr, nr);
          }
        }
      }
    }
  }
  return Status::Ok();
}

// ---- sparse x dense ------------------------------------------------------

namespace {

/// acc += A_csc · B_dense, both untransposed: scatter A's column l scaled
/// by B(l, j) — the seed formulation with the zero test hoisted to the
/// sparse structure (no per-element branch; B's zeros cost one madd each
/// inside the axpy, A's zeros are absent from the structure).
void SpDnPlain(const CscBlock& a, const DenseBlock& b, DenseBlock* acc) {
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  const auto& rows = a.row_idx();
  const auto& vals = a.values();
  for (int64_t j = 0; j < n; ++j) {
    Scalar* c_col = acc->col(j);
    const Scalar* b_col = b.col(j);
    for (int64_t l = 0; l < k; ++l) {
      const Scalar t = b_col[l];
      if (t == Scalar{0}) continue;  // column-skip over B's zero entries
      const int32_t end = a.ColEnd(l);
      for (int32_t p = a.ColStart(l); p < end; ++p) {
        c_col[rows[p]] += vals[p] * t;
      }
    }
  }
}

/// acc += Aᵀ · B with A stored CSC: the stored arrays read as CSR of the
/// logical A, so C(i, j) is a gather dot product of stored column i against
/// B's column j. No sparse transpose is built.
void SpDnTransA(const CscBlock& a, const DenseBlock& b, DenseBlock* acc) {
  const int64_t m = a.cols();  // effective rows of Aᵀ
  const int64_t n = b.cols();
  const auto& rows = a.row_idx();
  const auto& vals = a.values();
  for (int64_t j = 0; j < n; ++j) {
    Scalar* c_col = acc->col(j);
    const Scalar* b_col = b.col(j);
    for (int64_t i = 0; i < m; ++i) {
      const int32_t end = a.ColEnd(i);
      Scalar sum = 0;
      for (int32_t p = a.ColStart(i); p < end; ++p) {
        sum += vals[p] * b_col[rows[p]];
      }
      c_col[i] += sum;
    }
  }
}

}  // namespace

Status GemmSparseDense(const CscBlock& a, const DenseBlock& b, bool trans_a,
                       bool trans_b, DenseBlock* acc, GemmScratch* scratch,
                       GemmStats* stats) {
  GemmScratch local;
  if (scratch == nullptr) scratch = &local;
  const DenseBlock* beff = &b;
  if (trans_b) {
    DMAC_ASSIGN_OR_RETURN(beff, StageTranspose(b, scratch, stats));
  }
  if (stats != nullptr) {
    stats->flops += 2.0 * static_cast<double>(a.nnz()) * beff->cols();
  }
  if (trans_a) {
    SpDnTransA(a, *beff, acc);
  } else {
    SpDnPlain(a, *beff, acc);
  }
  return Status::Ok();
}

// ---- dense x sparse ------------------------------------------------------

namespace {

/// acc += A_dense · B_csc: contiguous axpy of A's column l per stored
/// non-zero B(l, j).
void DnSpPlain(const DenseBlock& a, const CscBlock& b, DenseBlock* acc) {
  const int64_t m = a.rows();
  const int64_t n = b.cols();
  const auto& rows = b.row_idx();
  const auto& vals = b.values();
  for (int64_t j = 0; j < n; ++j) {
    Scalar* c_col = acc->col(j);
    for (int32_t p = b.ColStart(j); p < b.ColEnd(j); ++p) {
      const Scalar* a_col = a.col(rows[p]);
      const Scalar t = vals[p];
      for (int64_t i = 0; i < m; ++i) c_col[i] += a_col[i] * t;
    }
  }
}

/// acc += Aᵀ · B_csc with A stored dense k x m: C(i, j) gathers stored
/// column i of A at B's column-j row indices.
void DnSpTransA(const DenseBlock& a, const CscBlock& b, DenseBlock* acc) {
  const int64_t m = a.cols();  // effective rows of Aᵀ
  const int64_t n = b.cols();
  const auto& rows = b.row_idx();
  const auto& vals = b.values();
  for (int64_t j = 0; j < n; ++j) {
    Scalar* c_col = acc->col(j);
    const int32_t start = b.ColStart(j);
    const int32_t end = b.ColEnd(j);
    if (start == end) continue;
    for (int64_t i = 0; i < m; ++i) {
      const Scalar* a_col = a.col(i);
      Scalar sum = 0;
      for (int32_t p = start; p < end; ++p) {
        sum += vals[p] * a_col[rows[p]];
      }
      c_col[i] += sum;
    }
  }
}

/// acc += A · Bᵀ with B stored CSC n x k: stored column l of B is row l of
/// the logical Bᵀ... i.e. each stored entry (j, t) in column l contributes
/// t · A(:, l) to C(:, j) — a contiguous axpy per non-zero, no transpose
/// copy.
void DnSpTransB(const DenseBlock& a, const CscBlock& b, DenseBlock* acc) {
  const int64_t m = a.rows();
  const int64_t k = b.cols();  // stored columns = effective inner dim
  const auto& rows = b.row_idx();
  const auto& vals = b.values();
  for (int64_t l = 0; l < k; ++l) {
    const Scalar* a_col = a.col(l);
    for (int32_t p = b.ColStart(l); p < b.ColEnd(l); ++p) {
      Scalar* c_col = acc->col(rows[p]);
      const Scalar t = vals[p];
      for (int64_t i = 0; i < m; ++i) c_col[i] += a_col[i] * t;
    }
  }
}

}  // namespace

Status GemmDenseSparse(const DenseBlock& a, const CscBlock& b, bool trans_a,
                       bool trans_b, DenseBlock* acc, GemmScratch* scratch,
                       GemmStats* stats) {
  GemmScratch local;
  if (scratch == nullptr) scratch = &local;
  if (stats != nullptr) {
    stats->flops +=
        2.0 * static_cast<double>(b.nnz()) * (trans_a ? a.cols() : a.rows());
  }
  if (!trans_a && !trans_b) {
    DnSpPlain(a, b, acc);
  } else if (trans_a && !trans_b) {
    // Aᵀ·B_csc: the gather dot strides A once per stored entry of B, so
    // once B carries at least one entry per inner row it is cheaper to pay
    // the one-pass dense transpose and run the contiguous axpy kernel
    // (the ~7× dense_sparse `tn` cliff in BENCH_kernels.json). Very
    // sparse B keeps the gather path: its total work is below one
    // transpose pass over A.
    if (b.nnz() >= a.rows()) {
      DMAC_ASSIGN_OR_RETURN(const DenseBlock* staged,
                            StageTranspose(a, scratch, stats));
      DnSpPlain(*staged, b, acc);
    } else {
      DnSpTransA(a, b, acc);
    }
  } else if (!trans_a && trans_b) {
    DnSpTransB(a, b, acc);
  } else {
    // Aᵀ·Bᵀ: stage Aᵀ once, then the TransB axpy kernel.
    DMAC_ASSIGN_OR_RETURN(const DenseBlock* staged,
                          StageTranspose(a, scratch, stats));
    DnSpTransB(*staged, b, acc);
  }
  return Status::Ok();
}

// ---- sparse x sparse -----------------------------------------------------

namespace {

/// acc += A_csc · B_csc, untransposed (seed scatter formulation).
void SpSpPlain(const CscBlock& a, const CscBlock& b, DenseBlock* acc) {
  const int64_t n = b.cols();
  const auto& a_rows = a.row_idx();
  const auto& a_vals = a.values();
  const auto& b_rows = b.row_idx();
  const auto& b_vals = b.values();
  for (int64_t j = 0; j < n; ++j) {
    Scalar* c_col = acc->col(j);
    for (int32_t p = b.ColStart(j); p < b.ColEnd(j); ++p) {
      const int64_t l = b_rows[p];
      const Scalar t = b_vals[p];
      for (int32_t q = a.ColStart(l); q < a.ColEnd(l); ++q) {
        c_col[a_rows[q]] += a_vals[q] * t;
      }
    }
  }
}

/// acc += A · Bᵀ, both CSC: stored entry (j, t) in B's column l pairs with
/// A's column l — scatter a_col(l) · t into C's column j.
void SpSpTransB(const CscBlock& a, const CscBlock& b, DenseBlock* acc) {
  const int64_t k = b.cols();  // stored columns = inner dim
  const auto& a_rows = a.row_idx();
  const auto& a_vals = a.values();
  const auto& b_rows = b.row_idx();
  const auto& b_vals = b.values();
  for (int64_t l = 0; l < k; ++l) {
    const int32_t astart = a.ColStart(l);
    const int32_t aend = a.ColEnd(l);
    if (astart == aend) continue;
    for (int32_t p = b.ColStart(l); p < b.ColEnd(l); ++p) {
      Scalar* c_col = acc->col(b_rows[p]);
      const Scalar t = b_vals[p];
      for (int32_t q = astart; q < aend; ++q) {
        c_col[a_rows[q]] += a_vals[q] * t;
      }
    }
  }
}

double SpSpFlops(const CscBlock& a, const CscBlock& b, bool trans_a,
                 bool trans_b) {
  // Exact madd count: Σ over inner index l of nnz(a slice l)·nnz(b slice l)
  // would need per-slice counts; approximate with the scatter work bound
  // actually performed by each formulation.
  if (!trans_a && trans_b) return 2.0 * b.nnz() * (a.nnz() / std::max<int64_t>(a.cols(), 1));
  return 2.0 * static_cast<double>(a.nnz()) *
         (static_cast<double>(b.nnz()) /
          std::max<int64_t>(trans_b ? b.cols() : b.rows(), 1));
}

}  // namespace

Status GemmSparseSparse(const CscBlock& a, const CscBlock& b, bool trans_a,
                        bool trans_b, DenseBlock* acc, GemmScratch* scratch,
                        GemmStats* stats, const CscBlock* b_csr) {
  GemmScratch local;
  if (scratch == nullptr) scratch = &local;
  if (stats != nullptr) stats->flops += SpSpFlops(a, b, trans_a, trans_b);
  if (!trans_a && !trans_b) {
    SpSpPlain(a, b, acc);
  } else if (trans_a && !trans_b) {
    // Aᵀ·B via Gustavson: A's stored arrays already read as CSR of Aᵀ;
    // row-major access to B needs its CSR form — the one conversion the
    // kernel layer ever materializes. A FormatCache-supplied `b_csr`
    // skips it; otherwise convert inline and count it as pack time.
    if (b_csr != nullptr) {
      SpGemmGustavson(a, *b_csr, acc);
    } else {
      Timer timer;
      const CscBlock converted = b.Transposed();
      if (stats != nullptr) stats->pack_seconds += timer.ElapsedSeconds();
      SpGemmGustavson(a, converted, acc);
    }
  } else if (!trans_a && trans_b) {
    SpSpTransB(a, b, acc);
  } else {
    // Aᵀ·Bᵀ is Gustavson for free: stored A is CSR of Aᵀ and stored B's
    // column l is row l of the logical Bᵀ.
    SpGemmGustavson(a, b, acc);
  }
  return Status::Ok();
}

// ---- vectorized elementwise / reductions ---------------------------------

void VecAccumulate(Scalar* dst, const Scalar* src, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

double VecSum(const Scalar* data, int64_t n) {
  // Eight independent chains so the reduction vectorizes without
  // -ffast-math; double accumulators match the seed's precision.
  double acc[8] = {};
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    for (int64_t u = 0; u < 8; ++u) acc[u] += data[i + u];
  }
  for (int64_t i = n8; i < n; ++i) acc[i - n8] += data[i];
  return ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
         ((acc[4] + acc[5]) + (acc[6] + acc[7]));
}

double VecSumSquares(const Scalar* data, int64_t n) {
  double acc[8] = {};
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    for (int64_t u = 0; u < 8; ++u) {
      const double v = data[i + u];
      acc[u] += v * v;
    }
  }
  for (int64_t i = n8; i < n; ++i) {
    const double v = data[i];
    acc[i - n8] += v * v;
  }
  return ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
         ((acc[4] + acc[5]) + (acc[6] + acc[7]));
}

void VecRowAccumulate(Scalar* sums, const Scalar* col, int64_t rows) {
  for (int64_t r = 0; r < rows; ++r) sums[r] += col[r];
}

Scalar VecColSum(const Scalar* col, int64_t rows) {
  Scalar acc[4] = {};
  const int64_t n4 = rows & ~int64_t{3};
  for (int64_t r = 0; r < n4; r += 4) {
    for (int64_t u = 0; u < 4; ++u) acc[u] += col[r + u];
  }
  for (int64_t r = n4; r < rows; ++r) acc[r - n4] += col[r];
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

void VecUnary(Scalar* data, int64_t n, UnaryFnKind fn) {
  // One loop per function: abs and square vectorize; the transcendental
  // loops stay scalar but avoid the per-element switch of the seed.
  switch (fn) {
    case UnaryFnKind::kAbs:
      for (int64_t i = 0; i < n; ++i) data[i] = std::abs(data[i]);
      return;
    case UnaryFnKind::kSquare:
      for (int64_t i = 0; i < n; ++i) data[i] = data[i] * data[i];
      return;
    case UnaryFnKind::kExp:
      for (int64_t i = 0; i < n; ++i) data[i] = std::exp(data[i]);
      return;
    case UnaryFnKind::kLog:
      for (int64_t i = 0; i < n; ++i) data[i] = std::log(data[i]);
      return;
    case UnaryFnKind::kSigmoid:
      for (int64_t i = 0; i < n; ++i) {
        data[i] = 1.0f / (1.0f + std::exp(-data[i]));
      }
      return;
  }
}

}  // namespace dmac
