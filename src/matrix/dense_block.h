// Dense matrix block: column-major one-dimensional array (paper §5.3).
#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "matrix/shape.h"

namespace dmac {

/// A dense block stored column-major. Memory = 4·m·n bytes (Eq. 2).
class DenseBlock {
 public:
  DenseBlock() = default;

  /// Creates an m×n block initialized to zero.
  DenseBlock(int64_t rows, int64_t cols);
  ~DenseBlock();

  DenseBlock(const DenseBlock& other);
  DenseBlock& operator=(const DenseBlock& other);
  DenseBlock(DenseBlock&& other) noexcept;
  DenseBlock& operator=(DenseBlock&& other) noexcept;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  Shape shape() const { return {rows_, cols_}; }

  Scalar At(int64_t r, int64_t c) const {
    DMAC_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[c * rows_ + r];
  }
  void Set(int64_t r, int64_t c, Scalar v) {
    DMAC_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    data_[c * rows_ + r] = v;
  }
  void Accumulate(int64_t r, int64_t c, Scalar v) {
    data_[c * rows_ + r] += v;
  }

  /// Raw column-major payload.
  const Scalar* data() const { return data_.data(); }
  Scalar* data() { return data_.data(); }
  /// Pointer to the first element of column `c`.
  const Scalar* col(int64_t c) const { return data_.data() + c * rows_; }
  Scalar* col(int64_t c) { return data_.data() + c * rows_; }

  /// Sets every element to zero (keeps the allocation; used when a block is
  /// recycled through the result buffer pool).
  void Clear();

  /// Number of non-zero elements (exact scan).
  int64_t CountNonZeros() const;

  /// Payload bytes (4·m·n).
  int64_t MemoryBytes() const { return MemoryBytesFor(rows_, cols_); }

  /// Payload bytes a block of the given shape would occupy.
  static int64_t MemoryBytesFor(int64_t rows, int64_t cols) {
    return static_cast<int64_t>(sizeof(Scalar)) * rows * cols;
  }

 private:
  void Track();
  void Untrack();

  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<Scalar> data_;
};

}  // namespace dmac
