// Deterministic pseudo-random number generation for reproducible workloads.
#pragma once

#include <cstdint>

namespace dmac {

/// SplitMix64: used to seed Xoshiro and for cheap independent streams.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Xoshiro256** — fast, high-quality, deterministic PRNG. Every random
/// matrix/graph in DMac is generated from an explicit seed so that plans,
/// results, and benchmarks are reproducible run to run.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64(sm);
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless method would be overkill here; modulo bias
    // is negligible for bounds far below 2^64.
    return Next() % bound;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace dmac
