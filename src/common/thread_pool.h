// Fixed-size thread pool used by the worker-local block engine (paper §5.3,
// Fig. 4: multiple threads draining a task queue).
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace dmac {

/// A fixed pool of worker threads draining a FIFO task queue.
///
/// Semantics match the paper's worker model: tasks are independent (each
/// produces one result block), so there is no inter-task ordering beyond
/// FIFO dispatch. `WaitIdle()` blocks until every submitted task completed.
///
/// Cooperative cancellation (docs/governance.md): a task submitted with an
/// abandon flag is *skipped* — popped and discarded without running — when
/// the flag is set by the time a thread picks it up. The same rule applies
/// to the destructor's drain, so after a query's CancelToken fires none of
/// its still-queued tasks ever runs, deterministically. A task already
/// running is cooperative and finishes on its own.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task) DMAC_EXCLUDES(mu_);

  /// Enqueues a task that is skipped (never run) if `*abandon_if` is true
  /// when a thread would start it. `abandon_if` may be null (plain submit)
  /// and must outlive the task.
  void Submit(const std::atomic<bool>* abandon_if,
              std::function<void()> task) DMAC_EXCLUDES(mu_);

  /// Blocks until the queue is empty and no task is running (skipped tasks
  /// count as completed).
  void WaitIdle() DMAC_EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

 private:
  struct Task {
    std::function<void()> fn;
    const std::atomic<bool>* abandon_if = nullptr;
  };

  void WorkerLoop() DMAC_EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_cv_;
  CondVar idle_cv_;
  std::deque<Task> queue_ DMAC_GUARDED_BY(mu_);
  size_t in_flight_ DMAC_GUARDED_BY(mu_) = 0;
  bool shutdown_ DMAC_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace dmac
