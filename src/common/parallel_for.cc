#include "common/parallel_for.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/sync.h"
#include "common/thread_pool.h"

namespace dmac {

namespace {

/// State shared between the caller and its pool helpers. Heap-held through
/// a shared_ptr so a helper scheduled after the caller returned still finds
/// valid (terminal) state: it observes next_ >= n (or the abandon flag) and
/// exits without touching the user function.
struct LoopState {
  LoopState(int64_t n, const std::atomic<bool>* abandon,
            std::function<void(int64_t)> fn)
      : n(n), abandon(abandon), fn(std::move(fn)) {}

  const int64_t n;
  const std::atomic<bool>* abandon;
  const std::function<void(int64_t)> fn;

  Mutex mu;
  CondVar cv;
  int64_t next DMAC_GUARDED_BY(mu) = 0;
  int64_t running DMAC_GUARDED_BY(mu) = 0;
  int64_t ran DMAC_GUARDED_BY(mu) = 0;

  bool Abandoned() const {
    return abandon != nullptr && abandon->load(std::memory_order_acquire);
  }

  /// Claims and runs indices until none are left (or the flag fires). The
  /// claim and the running-count increment happen under one lock so a
  /// waiter can never observe "nothing running" while a claimed index has
  /// yet to start.
  void Drain() DMAC_EXCLUDES(mu) {
    for (;;) {
      int64_t i;
      {
        MutexLock lock(&mu);
        if (next >= n || Abandoned()) return;
        i = next++;
        ++running;
      }
      fn(i);
      MutexLock lock(&mu);
      ++ran;
      if (--running == 0) cv.NotifyAll();
    }
  }

  /// Blocks until no claimed index is still executing; only meaningful
  /// after the caller's own Drain() returned (so no new claims by *this*
  /// thread). Helpers that drained past the end stop claiming too.
  int64_t AwaitQuiescent() DMAC_EXCLUDES(mu) {
    MutexLock lock(&mu);
    while (running > 0) cv.Wait(mu);
    // Late claims are impossible: Drain() only returns here once next >= n
    // or the abandon flag fired, and both conditions are sticky.
    return ran;
  }
};

}  // namespace

int64_t ParallelFor(ThreadPool* pool, int64_t n, int max_helpers,
                    const std::atomic<bool>* abandon,
                    std::function<void(int64_t)> fn) {
  if (n <= 0) return 0;
  const int64_t helpers =
      pool == nullptr
          ? 0
          : std::min<int64_t>(std::max(max_helpers, 0), n - 1);
  auto state = std::make_shared<LoopState>(n, abandon, std::move(fn));
  for (int64_t h = 0; h < helpers; ++h) {
    // The pool-level abandon flag is only an early-skip optimization; the
    // helper body re-checks the same flag before every claim.
    pool->Submit(abandon, [state] { state->Drain(); });
  }
  state->Drain();
  return state->AwaitQuiescent();
}

}  // namespace dmac
