// Annotated synchronization primitives (docs/static_analysis.md).
//
// Every mutex and condition variable in DMac lives behind these wrappers so
// clang's thread-safety analysis (-Wthread-safety -Wthread-safety-beta,
// gated by CI) can prove at compile time which lock protects which field.
// The discipline:
//
//   * declare locks as `Mutex` and annotate every protected member with
//     `DMAC_GUARDED_BY(mu_)` (or `DMAC_PT_GUARDED_BY` for pointees);
//   * hold locks through `MutexLock` scopes; functions that run with a lock
//     already held say so with `DMAC_REQUIRES(mu_)`;
//   * public entry points that take the lock themselves carry
//     `DMAC_EXCLUDES(mu_)` so re-entrant callers are rejected;
//   * condition waits use `CondVar` with an *explicit* `while` loop in the
//     caller — not a predicate lambda — so the analysis sees the guarded
//     reads under the capability (lambdas are analyzed as separate
//     functions and lose it);
//   * `DMAC_NO_THREAD_SAFETY_ANALYSIS` is the greppable last resort; every
//     use needs a comment saying why the analysis cannot see the invariant.
//
// A grep guard (scripts/check_sync_discipline.sh, run as a ctest and in CI)
// fails the build on any new raw std::mutex / std::lock_guard /
// std::condition_variable outside this header.
//
// The annotation macros follow the clang documentation's reference
// mutex.h; under compilers without the attributes (gcc) they expand to
// nothing and the wrappers cost exactly what the raw primitives cost.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---- Clang capability-annotation macros ----------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DMAC_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef DMAC_THREAD_ANNOTATION_
#define DMAC_THREAD_ANNOTATION_(x)  // not clang: attributes compile away
#endif

/// Marks a type as a capability ("mutex") the analysis tracks.
#define DMAC_CAPABILITY(x) DMAC_THREAD_ANNOTATION_(capability(x))
/// Marks an RAII type that acquires in its ctor and releases in its dtor.
#define DMAC_SCOPED_CAPABILITY DMAC_THREAD_ANNOTATION_(scoped_lockable)
/// The member may only be touched while `x` is held.
#define DMAC_GUARDED_BY(x) DMAC_THREAD_ANNOTATION_(guarded_by(x))
/// The pointee may only be touched while `x` is held.
#define DMAC_PT_GUARDED_BY(x) DMAC_THREAD_ANNOTATION_(pt_guarded_by(x))
/// The function acquires the capability (and must not already hold it).
#define DMAC_ACQUIRE(...) \
  DMAC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
/// The function releases the capability (and must hold it on entry).
#define DMAC_RELEASE(...) \
  DMAC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
/// The function acquires the capability iff it returns the given value
/// (first argument), e.g. `DMAC_TRY_ACQUIRE(true)`.
#define DMAC_TRY_ACQUIRE(...) \
  DMAC_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
/// The caller must hold the capability for the duration of the call.
#define DMAC_REQUIRES(...) \
  DMAC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// The caller must NOT hold the capability (the function takes it itself).
#define DMAC_EXCLUDES(...) DMAC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Asserts at runtime that the capability is held (trusted by the analysis).
#define DMAC_ASSERT_CAPABILITY(x) \
  DMAC_THREAD_ANNOTATION_(assert_capability(x))
/// The function returns a reference to the given capability.
#define DMAC_RETURN_CAPABILITY(x) DMAC_THREAD_ANNOTATION_(lock_returned(x))
/// Last resort: disables the analysis for one function. Greppable; every
/// use must carry a justifying comment (docs/static_analysis.md).
#define DMAC_NO_THREAD_SAFETY_ANALYSIS \
  DMAC_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace dmac {

/// Annotated exclusive mutex. Same cost and semantics as std::mutex; the
/// annotations exist so `-Wthread-safety` can check the locking discipline.
class DMAC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DMAC_ACQUIRE() { mu_.lock(); }
  void Unlock() DMAC_RELEASE() { mu_.unlock(); }
  bool TryLock() DMAC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock scope over a Mutex (the std::lock_guard replacement).
class DMAC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DMAC_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() DMAC_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable bound to Mutex. Waits require the caller to hold the
/// mutex and re-hold it on return, which is exactly what the `DMAC_REQUIRES`
/// annotation states; write the predicate as an explicit `while` loop around
/// `Wait` so guarded reads stay visible to the analysis:
///
///   MutexLock lock(&mu_);
///   while (!done_) cv_.Wait(mu_);   // done_ is DMAC_GUARDED_BY(mu_)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before return.
  void Wait(Mutex& mu) DMAC_REQUIRES(mu) {
    // Adopt the already-held native handle so the std wait can release and
    // reacquire it, then detach again: ownership stays with the caller's
    // MutexLock for the whole scope.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Like Wait, but returns false when `timeout` elapsed first (spurious
  /// wakeups still return true; callers loop on their predicate anyway).
  template <class Rep, class Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      DMAC_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status st = cv_.wait_for(native, timeout);
    native.release();
    return st == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dmac
