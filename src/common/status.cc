#include "common/status.h"

namespace dmac {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kDimensionMismatch:
      return "DimensionMismatch";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace dmac
