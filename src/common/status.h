// Status: error-handling primitive used across DMac (no exceptions on core
// paths, following the Arrow/RocksDB idiom).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>

namespace dmac {

/// Machine-readable category of a failure.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kDimensionMismatch,
  kUnsupported,
  kInternal,
  /// Transient inability to run (a worker failed mid-step); retryable.
  kUnavailable,
  /// A stored block is missing or failed checksum verification; retryable
  /// after lineage recovery (docs/fault_tolerance.md).
  kDataLoss,
  /// The query was cancelled cooperatively via its CancelToken; terminal,
  /// never retried (docs/governance.md).
  kCancelled,
  /// The query's deadline elapsed before it finished; terminal.
  kDeadlineExceeded,
  /// A memory budget or admission quota was exceeded and spilling could not
  /// help; terminal (docs/governance.md).
  kResourceExhausted,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail. A `Status` is either OK (carries no
/// payload) or an error with a code and a message.
///
/// Functions that can fail return `Status` (or `Result<T>`); callers must
/// check with `ok()` before relying on side effects. The class is
/// `[[nodiscard]]`: silently dropping a returned Status is a compile
/// warning repo-wide (docs/static_analysis.md) — that is exactly how
/// kResourceExhausted/kDataLoss get lost. The rare intentional drop must
/// be spelled `(void)expr; // why` so it stays greppable.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status DimensionMismatch(std::string msg) {
    return Status(StatusCode::kDimensionMismatch, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define DMAC_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::dmac::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

}  // namespace dmac
