// Result<T>: value-or-Status, the return type of fallible producers.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dmac {

/// Holds either a value of type `T` or an error `Status`.
///
/// Use `ok()` to branch; `ValueOrDie()`/`operator*` assert success. This is a
/// deliberately small subset of absl::StatusOr sufficient for DMac.
/// `[[nodiscard]]` like Status: a dropped Result is a dropped error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result-producing expression to `lhs`, or returns
/// the error to the caller.
#define DMAC_ASSIGN_OR_RETURN(lhs, expr)          \
  auto DMAC_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!DMAC_CONCAT_(_res_, __LINE__).ok())        \
    return DMAC_CONCAT_(_res_, __LINE__).status();\
  lhs = std::move(DMAC_CONCAT_(_res_, __LINE__)).ValueOrDie()

#define DMAC_CONCAT_INNER_(a, b) a##b
#define DMAC_CONCAT_(a, b) DMAC_CONCAT_INNER_(a, b)

}  // namespace dmac
