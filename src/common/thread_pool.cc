#include "common/thread_pool.h"

namespace dmac {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  Submit(nullptr, std::move(task));
}

void ThreadPool::Submit(const std::atomic<bool>* abandon_if,
                        std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.push_back({std::move(task), abandon_if});
  }
  work_cv_.NotifyOne();
}

void ThreadPool::WaitIdle() {
  MutexLock lock(&mu_);
  while (!(queue_.empty() && in_flight_ == 0)) idle_cv_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) work_cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown_ with drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    // Abandoned task: once its flag fires it must never run — the check
    // happens after the pop so the decision is made exactly once per task.
    if (task.abandon_if == nullptr ||
        !task.abandon_if->load(std::memory_order_acquire)) {
      task.fn();
    }
    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace dmac
