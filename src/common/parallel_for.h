// Cooperative parallel-for over a shared ThreadPool.
//
// The kernel layer parallelizes one GEMM's macro-kernel loop over the same
// pool that already runs the engine's block tasks, so a naive
// submit-and-WaitIdle would deadlock: every pool thread can be inside a
// block task that is itself waiting for its GEMM sub-tasks. ParallelFor
// avoids this by making the *calling* thread a full participant — it claims
// and runs indices exactly like the pool helpers do, so forward progress
// never depends on a pool thread being free. Helper closures that only get
// scheduled after the loop finished find no indices left and return
// immediately.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

namespace dmac {

class ThreadPool;

/// Runs `fn(i)` exactly once for every i in [0, n), on the calling thread
/// plus up to `max_helpers` tasks submitted to `pool`. Blocks until every
/// *claimed* index has finished running (so `fn` may reference stack state
/// of the caller), but never waits for helpers that have not started.
///
/// Cooperative cancellation: when `abandon` (may be null) reads true, no
/// further indices are claimed — indices already running complete, and the
/// call returns the number of indices that actually ran (< n). With a null
/// or never-fired flag the return value is always n.
///
/// `pool` may be null and `max_helpers` 0 or negative; both degrade to a
/// plain serial loop on the calling thread (still honoring `abandon`).
int64_t ParallelFor(ThreadPool* pool, int64_t n, int max_helpers,
                    const std::atomic<bool>* abandon,
                    std::function<void(int64_t)> fn);

}  // namespace dmac
