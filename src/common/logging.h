// Minimal leveled logging and invariant checks.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dmac {
namespace internal {

/// Formats and prints one log line; aborts if `fatal`.
inline void LogLine(const char* level, const std::string& msg, bool fatal) {
  std::fprintf(stderr, "[%s] %s\n", level, msg.c_str());
  if (fatal) std::abort();
}

class LogMessage {
 public:
  LogMessage(const char* level, bool fatal) : level_(level), fatal_(fatal) {}
  ~LogMessage() { LogLine(level_, stream_.str(), fatal_); }
  std::ostream& stream() { return stream_; }

 private:
  const char* level_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dmac

#define DMAC_LOG_INFO ::dmac::internal::LogMessage("INFO", false).stream()
#define DMAC_LOG_WARN ::dmac::internal::LogMessage("WARN", false).stream()
#define DMAC_LOG_FATAL ::dmac::internal::LogMessage("FATAL", true).stream()

/// Process-fatal invariant check. Active in all build types: these guard
/// internal consistency of the engine, not user input (user input errors are
/// reported via Status).
#define DMAC_CHECK(cond)                                                   \
  if (!(cond))                                                             \
  DMAC_LOG_FATAL << "Check failed: " #cond " at " << __FILE__ << ":"       \
                 << __LINE__ << " "

#define DMAC_CHECK_EQ(a, b) DMAC_CHECK((a) == (b))
#define DMAC_CHECK_NE(a, b) DMAC_CHECK((a) != (b))
#define DMAC_CHECK_LT(a, b) DMAC_CHECK((a) < (b))
#define DMAC_CHECK_LE(a, b) DMAC_CHECK((a) <= (b))
#define DMAC_CHECK_GT(a, b) DMAC_CHECK((a) > (b))
#define DMAC_CHECK_GE(a, b) DMAC_CHECK((a) >= (b))
