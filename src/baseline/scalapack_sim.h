// ScaLAPACK-style distributed matrix multiplication (paper §6.6, Table 4).
//
// Models the two properties the paper measures ScaLAPACK by:
//  * two-dimensional block-cyclic distribution with a SUMMA multiplication
//    (broadcast of A panels along process rows and B panels along process
//    columns each round), and
//  * dense-only arithmetic — sparse inputs are handled "the way on dense
//    one" (densified), so MM-Sparse and MM-Dense cost the same.
//
// Processes are simulated: each process's compute is run (and timed)
// sequentially with real dense kernels; message traffic is counted
// per-panel, MPI-style (many small messages instead of bulk shuffles).
#pragma once

#include <vector>

#include "common/result.h"
#include "matrix/local_matrix.h"
#include "runtime/exec_stats.h"

namespace dmac {

/// A pr × pc process grid.
struct ProcessGrid {
  int rows = 2;
  int cols = 2;
  int size() const { return rows * cols; }
};

/// Outcome of a simulated distributed multiplication.
struct MmSimResult {
  LocalMatrix c;
  double comm_bytes = 0;
  int64_t comm_messages = 0;
  std::vector<double> proc_seconds;  // measured compute per process
  /// Extra fixed overhead (SciDB chunk management); zero for ScaLAPACK.
  double overhead_seconds = 0;

  double MaxProcSeconds() const {
    double mx = 0;
    for (double s : proc_seconds) mx = std::max(mx, s);
    return mx;
  }
  /// Modeled end-to-end seconds under `net`.
  double SimulatedSeconds(const NetworkModel& net) const {
    return MaxProcSeconds() + overhead_seconds +
           comm_bytes / net.bandwidth_bytes_per_sec +
           static_cast<double>(comm_messages) * net.latency_sec;
  }
};

/// SUMMA on a block-cyclic grid; inputs are densified first.
class ScalapackSim {
 public:
  explicit ScalapackSim(ProcessGrid grid) : grid_(grid) {}

  /// C = A · B. Block sizes of A and B must match.
  Result<MmSimResult> Multiply(const LocalMatrix& a,
                               const LocalMatrix& b) const;

  const ProcessGrid& grid() const { return grid_; }

 private:
  ProcessGrid grid_;
};

}  // namespace dmac
