#include "baseline/scalapack_sim.h"

#include "common/timer.h"

namespace dmac {

Result<MmSimResult> ScalapackSim::Multiply(const LocalMatrix& a,
                                           const LocalMatrix& b) const {
  if (a.cols() != b.rows()) {
    return Status::DimensionMismatch("SUMMA multiply " +
                                     a.shape().ToString() + " by " +
                                     b.shape().ToString());
  }
  if (a.block_size() != b.block_size()) {
    return Status::Invalid("SUMMA requires equal block sizes");
  }

  // ScaLAPACK handles the sparse matrix the way on a dense one: densify.
  const LocalMatrix ad = [&] {
    LocalMatrix m = a;
    for (int64_t bi = 0; bi < m.grid().block_rows(); ++bi) {
      for (int64_t bj = 0; bj < m.grid().block_cols(); ++bj) {
        m.BlockAt(bi, bj) = Block(m.BlockAt(bi, bj).ToDense());
      }
    }
    return m;
  }();
  const LocalMatrix bd = [&] {
    LocalMatrix m = b;
    for (int64_t bi = 0; bi < m.grid().block_rows(); ++bi) {
      for (int64_t bj = 0; bj < m.grid().block_cols(); ++bj) {
        m.BlockAt(bi, bj) = Block(m.BlockAt(bi, bj).ToDense());
      }
    }
    return m;
  }();

  MmSimResult out;
  out.c = LocalMatrix::Zeros({a.rows(), b.cols()}, a.block_size());
  out.proc_seconds.assign(static_cast<size_t>(grid_.size()), 0.0);

  const int64_t mb = out.c.grid().block_rows();
  const int64_t nb = out.c.grid().block_cols();
  const int64_t kb = ad.grid().block_cols();

  // Block-cyclic owner of C(bi, bj): process (bi mod pr, bj mod pc).
  auto proc_of = [&](int64_t bi, int64_t bj) {
    return static_cast<int>((bi % grid_.rows) * grid_.cols + bj % grid_.cols);
  };

  // SUMMA: one round per k panel. The owners of A(:,k) broadcast their
  // blocks along their process row (pc − 1 messages each); the owners of
  // B(k,:) broadcast down their process column (pr − 1 each). Every process
  // then accumulates into its C blocks.
  for (int64_t k = 0; k < kb; ++k) {
    for (int64_t bi = 0; bi < mb; ++bi) {
      out.comm_bytes += static_cast<double>(
                            ad.BlockAt(bi, k).MemoryBytes()) *
                        (grid_.cols - 1);
      out.comm_messages += grid_.cols - 1;
    }
    for (int64_t bj = 0; bj < nb; ++bj) {
      out.comm_bytes += static_cast<double>(
                            bd.BlockAt(k, bj).MemoryBytes()) *
                        (grid_.rows - 1);
      out.comm_messages += grid_.rows - 1;
    }
  }

  // Compute phase, process by process (each ScaLAPACK process is a
  // single-threaded MPI rank).
  for (int p = 0; p < grid_.size(); ++p) {
    Timer timer;
    for (int64_t bi = 0; bi < mb; ++bi) {
      for (int64_t bj = 0; bj < nb; ++bj) {
        if (proc_of(bi, bj) != p) continue;
        DenseBlock& acc = out.c.BlockAt(bi, bj).dense();
        for (int64_t k = 0; k < kb; ++k) {
          DMAC_RETURN_NOT_OK(
              MultiplyAccumulate(ad.BlockAt(bi, k), bd.BlockAt(k, bj), &acc));
        }
      }
    }
    out.proc_seconds[static_cast<size_t>(p)] = timer.ElapsedSeconds();
  }
  return out;
}

}  // namespace dmac
