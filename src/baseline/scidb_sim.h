// SciDB-style array engine for matrix multiplication (paper §6.6, Table 4).
//
// Models the costs the paper attributes to SciDB:
//  * chunked array storage whose layout does not match the linear-algebra
//    library's block-cyclic requirement — every chunk of both operands is
//    redistributed before the multiply;
//  * the multiply itself delegates to the ScaLAPACK-style SUMMA kernel
//    (SciDB's linear algebra is backed by ScaLAPACK), dense-only;
//  * per-chunk query processing and failure-handling bookkeeping, modeled
//    as a fixed cost per chunk touched.
#pragma once

#include "baseline/scalapack_sim.h"

namespace dmac {

/// SciDB simulation parameters.
struct ScidbOptions {
  ProcessGrid grid;
  /// Fixed bookkeeping cost per chunk touched (query processing, chunk-map
  /// updates, replication for failure handling). Default calibrated so the
  /// SciDB/ScaLAPACK ratio lands in the region Table 4 reports (~6×).
  double per_chunk_overhead_sec = 2e-3;
  /// Fixed per-query overhead (parsing, planning, cluster coordination).
  double fixed_overhead_sec = 0.5;
};

/// Chunk-store + redistribute + SUMMA pipeline.
class ScidbSim {
 public:
  explicit ScidbSim(ScidbOptions options) : options_(options) {}

  /// C = A · B with redistribution and chunk overheads included.
  Result<MmSimResult> Multiply(const LocalMatrix& a,
                               const LocalMatrix& b) const;

 private:
  ScidbOptions options_;
};

}  // namespace dmac
