#include "baseline/scidb_sim.h"

namespace dmac {

Result<MmSimResult> ScidbSim::Multiply(const LocalMatrix& a,
                                       const LocalMatrix& b) const {
  ScalapackSim summa(options_.grid);
  DMAC_ASSIGN_OR_RETURN(MmSimResult result, summa.Multiply(a, b));

  // Redistribution of every chunk of both operands into the block-cyclic
  // layout ScaLAPACK requires (dense encoding — SciDB's dense chunks).
  const double a_dense = 4.0 * static_cast<double>(a.rows()) * a.cols();
  const double b_dense = 4.0 * static_cast<double>(b.rows()) * b.cols();
  result.comm_bytes += a_dense + b_dense;

  const int64_t chunks = a.grid().num_blocks() + b.grid().num_blocks() +
                         result.c.grid().num_blocks();
  result.comm_messages += chunks;
  result.overhead_seconds += options_.fixed_overhead_sec +
                             options_.per_chunk_overhead_sec *
                                 static_cast<double>(chunks);
  return result;
}

}  // namespace dmac
