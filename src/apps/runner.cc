#include "apps/runner.h"

#include <algorithm>
#include <limits>

#include "common/timer.h"
#include "lang/decompose.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/size_estimator.h"
#include "runtime/block_size.h"

namespace dmac {

namespace {

PlannerOptions ToPlannerOptions(const RunConfig& config) {
  PlannerOptions opts;
  opts.num_workers = config.num_workers;
  opts.exploit_dependencies = config.exploit_dependencies;
  opts.pull_up_broadcast = config.pull_up_broadcast;
  opts.reassignment = config.reassignment;
  opts.fuse_transposes = config.fuse_transposes;
  opts.verify_plan = config.verify_plan;
  opts.min_workers = config.min_workers;
  opts.resume = config.resume || !config.checkpoint_dir.empty();
  return opts;
}

/// Decompose() with a plan-phase trace span and a planning-time gauge.
Result<OperatorList> TimedDecompose(const Program& program) {
  TraceSpan span(kTracePlan, "decompose");
  Timer timer;
  Result<OperatorList> ops = Decompose(program);
  static Gauge* decompose_seconds =
      MetricRegistry::Global().gauge(kMetricPlanDecomposeSeconds);
  decompose_seconds->Set(timer.ElapsedSeconds());
  return ops;
}

/// GeneratePlan() with a plan-phase trace span and a planning-time gauge.
Result<Plan> TimedGeneratePlan(const OperatorList& ops,
                               const PlannerOptions& opts) {
  TraceSpan span(kTracePlan, "generate-plan");
  Timer timer;
  Result<Plan> plan = GeneratePlan(ops, opts);
  static Gauge* generate_seconds =
      MetricRegistry::Global().gauge(kMetricPlanGenerateSeconds);
  generate_seconds->Set(timer.ElapsedSeconds());
  return plan;
}

}  // namespace

Result<Plan> PlanProgram(const Program& program, const RunConfig& config) {
  DMAC_ASSIGN_OR_RETURN(OperatorList ops, TimedDecompose(program));
  return TimedGeneratePlan(ops, ToPlannerOptions(config));
}

Result<int64_t> ChooseProgramBlockSize(const Program& program, int workers,
                                       int threads_per_worker) {
  DMAC_ASSIGN_OR_RETURN(OperatorList ops, Decompose(program));
  DMAC_ASSIGN_OR_RETURN(StatsMap stats, EstimateSizes(ops));

  int64_t largest_extent = 1;
  int64_t largest_elements = 1;
  for (const auto& [name, s] : stats) {
    largest_extent = std::max({largest_extent, s.shape.rows, s.shape.cols});
    largest_elements = std::max(largest_elements, s.shape.NumElements());
  }

  int64_t bound = std::numeric_limits<int64_t>::max();
  for (const auto& [name, s] : stats) {
    if (s.shape.rows <= 1 || s.shape.cols <= 1) continue;  // vectors exempt
    // Matrices far smaller than the dominant one compute trivially; letting
    // a k×k factor dictate the block side would shred the big operands.
    if (s.shape.NumElements() * 1000 < largest_elements) continue;
    bound = std::min(bound,
                     BlockSizeUpperBound(s.shape, workers,
                                         threads_per_worker));
  }
  if (bound == std::numeric_limits<int64_t>::max()) bound = largest_extent;
  return std::clamp<int64_t>(bound, std::min<int64_t>(32, largest_extent),
                             largest_extent);
}

Result<RunOutcome> RunProgram(const Program& program, const Bindings& bindings,
                              const RunConfig& config) {
  Timer plan_timer;
  DMAC_ASSIGN_OR_RETURN(OperatorList ops, TimedDecompose(program));
  DMAC_ASSIGN_OR_RETURN(Plan plan,
                        TimedGeneratePlan(ops, ToPlannerOptions(config)));
  const double plan_seconds = plan_timer.ElapsedSeconds();

  ExecutorOptions eopts;
  eopts.num_workers = config.num_workers;
  eopts.threads_per_worker = config.threads_per_worker;
  eopts.block_size = config.block_size;
  eopts.local_mode = config.local_mode;
  eopts.task_scheduling = config.task_scheduling;
  eopts.seed = config.seed;
  eopts.fault = config.fault;
  eopts.checkpoint_every = config.checkpoint_every;
  eopts.checkpoint_dir = config.checkpoint_dir;
  eopts.resume = config.resume;
  eopts.min_workers = config.min_workers;
  eopts.governor = config.governor;
  Executor executor(eopts);

  Timer exec_timer;
  DMAC_ASSIGN_OR_RETURN(ExecutionResult result,
                        executor.Execute(plan, bindings));
  RunOutcome outcome;
  outcome.execute_seconds = exec_timer.ElapsedSeconds();
  outcome.plan = std::move(plan);
  outcome.result = std::move(result);
  outcome.plan_seconds = plan_seconds;
  return outcome;
}

}  // namespace dmac
