#include "apps/runner.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <utility>

#include "common/timer.h"
#include "lang/decompose.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/size_estimator.h"
#include "runtime/block_size.h"

namespace dmac {

namespace {

PlannerOptions ToPlannerOptions(const RunConfig& config) {
  PlannerOptions opts;
  opts.num_workers = config.num_workers;
  opts.exploit_dependencies = config.exploit_dependencies;
  opts.pull_up_broadcast = config.pull_up_broadcast;
  opts.reassignment = config.reassignment;
  opts.fuse_transposes = config.fuse_transposes;
  opts.verify_plan = config.verify_plan;
  opts.min_workers = config.min_workers;
  opts.resume = config.resume || !config.checkpoint_dir.empty();
  return opts;
}

/// Decompose() with a plan-phase trace span and a planning-time gauge.
Result<OperatorList> TimedDecompose(const Program& program) {
  TraceSpan span(kTracePlan, "decompose");
  Timer timer;
  Result<OperatorList> ops = Decompose(program);
  static Gauge* decompose_seconds =
      MetricRegistry::Global().gauge(kMetricPlanDecomposeSeconds);
  decompose_seconds->Set(timer.ElapsedSeconds());
  return ops;
}

/// GeneratePlan() with a plan-phase trace span and a planning-time gauge.
Result<Plan> TimedGeneratePlan(const OperatorList& ops,
                               const PlannerOptions& opts) {
  TraceSpan span(kTracePlan, "generate-plan");
  Timer timer;
  Result<Plan> plan = GeneratePlan(ops, opts);
  static Gauge* generate_seconds =
      MetricRegistry::Global().gauge(kMetricPlanGenerateSeconds);
  generate_seconds->Set(timer.ElapsedSeconds());
  return plan;
}

/// Cost model for the search: calibrated from `calibration_path` when
/// given (unreadable files degrade to byte costs inside Load), built-in
/// rates otherwise.
Result<CostModel> BuildCostModel(const RunConfig& config) {
  CalibrationTable table = CalibrationTable::Builtin();
  if (!config.calibration_path.empty()) {
    DMAC_ASSIGN_OR_RETURN(table,
                          CalibrationTable::Load(config.calibration_path));
  }
  CostModelOptions mopts;
  mopts.num_workers = config.num_workers;
  mopts.threads_per_worker = config.threads_per_worker;
  mopts.block_size = config.block_size;
  return CostModel(std::move(table), mopts);
}

Result<SearchResult> RunSearch(const OperatorList& ops,
                               const RunConfig& config) {
  DMAC_ASSIGN_OR_RETURN(CostModel model, BuildCostModel(config));
  SearchOptions sopts;
  sopts.mode = config.plan_search;
  sopts.beam_width = config.beam_width;
  PlannerOptions popts = ToPlannerOptions(config);
  return SearchPlans(ops, popts, sopts, model);
}

/// One-iteration probe plan of an unrolled iterative program: the step
/// prefix through the producer of every "#1" SSA version (iteration 1's
/// state), with the output gathers dropped. NotFound when the program has
/// no iteration structure.
Result<Plan> OneIterationProbe(const Plan& full) {
  std::unordered_map<int, size_t> step_index;
  for (size_t i = 0; i < full.steps.size(); ++i) {
    step_index.emplace(full.steps[i].id, i);
  }
  ptrdiff_t boundary = -1;
  for (const PlanNode& node : full.nodes) {
    const size_t hash = node.matrix.rfind('#');
    if (hash == std::string::npos ||
        node.matrix.substr(hash) != "#1") {
      continue;  // not an iteration-1 version
    }
    if (node.producer_step < 0) continue;
    const auto it = step_index.find(node.producer_step);
    if (it != step_index.end()) {
      boundary = std::max(boundary, static_cast<ptrdiff_t>(it->second));
    }
  }
  if (boundary < 0) {
    return Status::NotFound("program has no iteration structure to probe");
  }
  Plan probe;
  probe.nodes = full.nodes;
  // Steps are topologically ordered after Finalize(), so the prefix is
  // closed under dependencies.
  probe.steps.assign(full.steps.begin(),
                     full.steps.begin() + boundary + 1);
  for (const PlanStep& step : probe.steps) {
    probe.num_stages = std::max(probe.num_stages, step.stage);
    probe.total_comm_bytes += step.comm_bytes;
  }
  return probe;
}

/// Races the top two finalists for one probe iteration each and returns
/// the index of the measured winner (0 when racing is not applicable:
/// fewer than two candidates, a non-iterative program, or failed probes).
size_t RaceTop2(const SearchResult& sres, const Bindings& bindings,
                const RunConfig& config, RunSearchInfo* info) {
  if (sres.candidates.size() < 2) return 0;
  TraceSpan span(kTraceSearch, "race-top2");
  Timer timer;
  double probe_seconds[2];
  for (size_t i = 0; i < 2; ++i) {
    Result<Plan> probe = OneIterationProbe(sres.candidates[i].plan);
    if (!probe.ok()) return 0;  // non-iterative: nothing to race
    ExecutorOptions eopts;
    eopts.num_workers = config.num_workers;
    eopts.threads_per_worker = config.threads_per_worker;
    eopts.block_size = config.block_size;
    eopts.local_mode = config.local_mode;
    eopts.task_scheduling = config.task_scheduling;
    eopts.seed = config.seed;
    // Probes measure the steady-state iteration only: no fault injection,
    // checkpoints, or governance — the real run pays those afterwards.
    Executor executor(eopts);
    Timer probe_timer;
    Result<ExecutionResult> r = executor.Execute(*probe, bindings);
    if (!r.ok()) return 0;  // a probe that cannot run decides nothing
    probe_seconds[i] = probe_timer.ElapsedSeconds();
  }
  const size_t winner = probe_seconds[1] < probe_seconds[0] ? 1 : 0;
  info->raced = true;
  info->race_winner = static_cast<int>(winner);
  info->race_probe_seconds = timer.ElapsedSeconds();
  auto& registry = MetricRegistry::Global();
  static Gauge* winner_gauge = registry.gauge(kMetricPlanRaceWinner);
  static Gauge* probe_gauge = registry.gauge(kMetricPlanRaceProbeSeconds);
  winner_gauge->Set(static_cast<double>(winner));
  probe_gauge->Set(info->race_probe_seconds);
  return winner;
}

/// Search + optional race; fills `info` and returns the plan to execute.
Result<Plan> SearchedPlan(const OperatorList& ops, const Bindings& bindings,
                          const RunConfig& config, RunSearchInfo* info) {
  DMAC_ASSIGN_OR_RETURN(SearchResult sres, RunSearch(ops, config));
  info->ran = true;
  info->candidates = static_cast<int64_t>(sres.candidates.size());
  info->rejected = sres.stats.rejected;
  info->seconds = sres.stats.seconds;
  for (const PlanCandidate& cand : sres.candidates) {
    if (cand.greedy) {
      info->greedy_seconds = cand.cost.seconds();
      info->greedy_comm_bytes = cand.cost.comm_bytes;
      break;
    }
  }
  size_t chosen = 0;
  if (config.race_top2) {
    chosen = RaceTop2(sres, bindings, config, info);
  }
  info->best_seconds = sres.candidates[chosen].cost.seconds();
  info->best_comm_bytes = sres.candidates[chosen].cost.comm_bytes;
  info->best_decisions = sres.candidates[chosen].decisions;
  return std::move(sres.candidates[chosen].plan);
}

}  // namespace

Result<Plan> PlanProgram(const Program& program, const RunConfig& config) {
  DMAC_ASSIGN_OR_RETURN(OperatorList ops, TimedDecompose(program));
  if (config.plan_search != PlanSearchMode::kOff) {
    DMAC_ASSIGN_OR_RETURN(SearchResult sres, RunSearch(ops, config));
    return std::move(sres.candidates[0].plan);
  }
  return TimedGeneratePlan(ops, ToPlannerOptions(config));
}

Result<SearchResult> SearchProgram(const Program& program,
                                   const RunConfig& config) {
  DMAC_ASSIGN_OR_RETURN(OperatorList ops, TimedDecompose(program));
  return RunSearch(ops, config);
}

Result<int64_t> ChooseProgramBlockSize(const Program& program, int workers,
                                       int threads_per_worker) {
  DMAC_ASSIGN_OR_RETURN(OperatorList ops, Decompose(program));
  DMAC_ASSIGN_OR_RETURN(StatsMap stats, EstimateSizes(ops));

  int64_t largest_extent = 1;
  int64_t largest_elements = 1;
  for (const auto& [name, s] : stats) {
    largest_extent = std::max({largest_extent, s.shape.rows, s.shape.cols});
    largest_elements = std::max(largest_elements, s.shape.NumElements());
  }

  int64_t bound = std::numeric_limits<int64_t>::max();
  for (const auto& [name, s] : stats) {
    if (s.shape.rows <= 1 || s.shape.cols <= 1) continue;  // vectors exempt
    // Matrices far smaller than the dominant one compute trivially; letting
    // a k×k factor dictate the block side would shred the big operands.
    if (s.shape.NumElements() * 1000 < largest_elements) continue;
    bound = std::min(bound,
                     BlockSizeUpperBound(s.shape, workers,
                                         threads_per_worker));
  }
  if (bound == std::numeric_limits<int64_t>::max()) bound = largest_extent;
  return std::clamp<int64_t>(bound, std::min<int64_t>(32, largest_extent),
                             largest_extent);
}

Result<RunOutcome> RunProgram(const Program& program, const Bindings& bindings,
                              const RunConfig& config) {
  if (config.race_top2 && config.plan_search == PlanSearchMode::kOff) {
    return Status::Invalid(
        "race_top2 requires plan_search != off: racing picks between the "
        "search's top two finalists");
  }
  Timer plan_timer;
  DMAC_ASSIGN_OR_RETURN(OperatorList ops, TimedDecompose(program));
  RunSearchInfo search_info;
  Plan plan;
  if (config.plan_search != PlanSearchMode::kOff) {
    DMAC_ASSIGN_OR_RETURN(
        plan, SearchedPlan(ops, bindings, config, &search_info));
  } else {
    DMAC_ASSIGN_OR_RETURN(plan,
                          TimedGeneratePlan(ops, ToPlannerOptions(config)));
  }
  const double plan_seconds = plan_timer.ElapsedSeconds();

  ExecutorOptions eopts;
  eopts.num_workers = config.num_workers;
  eopts.threads_per_worker = config.threads_per_worker;
  eopts.block_size = config.block_size;
  eopts.local_mode = config.local_mode;
  eopts.task_scheduling = config.task_scheduling;
  eopts.seed = config.seed;
  eopts.fault = config.fault;
  eopts.checkpoint_every = config.checkpoint_every;
  eopts.checkpoint_dir = config.checkpoint_dir;
  eopts.resume = config.resume;
  eopts.min_workers = config.min_workers;
  eopts.governor = config.governor;
  Executor executor(eopts);

  Timer exec_timer;
  DMAC_ASSIGN_OR_RETURN(ExecutionResult result,
                        executor.Execute(plan, bindings));
  RunOutcome outcome;
  outcome.execute_seconds = exec_timer.ElapsedSeconds();
  outcome.plan = std::move(plan);
  outcome.result = std::move(result);
  outcome.plan_seconds = plan_seconds;
  outcome.search = std::move(search_info);
  return outcome;
}

}  // namespace dmac
