// Conjugate-gradient Linear Regression (paper Code 4).
//
// Solves (VᵀV + λI)·w = Vᵀy by CG. Each row of V is a training point in a
// sparse feature space; y holds the target labels.
#pragma once

#include <cstdint>

#include "lang/program.h"

namespace dmac {

/// Linear regression workload parameters.
struct LinRegConfig {
  int64_t examples = 0;      // rows of V
  int64_t features = 0;      // columns of V
  double sparsity = 0.0;     // sparsity of V
  int iterations = 10;
  double lambda = 1e-6;
};

/// Builds the CG linear-regression program. Bindings: "V" (examples ×
/// features) and "y" (examples × 1). Outputs: "w_model" plus the scalar
/// "norm_r2" (final squared residual norm).
Program BuildLinearRegressionProgram(const LinRegConfig& config);

}  // namespace dmac
