// Singular Value Decomposition via the Lanczos algorithm (paper Code 5).
//
// Runs `rank` Lanczos iterations on the implicit operator VᵀV, collecting
// the tridiagonal coefficients (alpha_i, beta_i) as driver-side scalars.
// The singular values of V are the square roots of the eigenvalues of the
// resulting tridiagonal matrix, computed locally with an implicit-shift QL
// solver (the paper's triDiag.computeSingularValue()).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "lang/program.h"

namespace dmac {

/// SVD workload parameters.
struct SvdConfig {
  int64_t rows = 0;   // rows of V
  int64_t cols = 0;   // columns of V (the Lanczos space dimension)
  double sparsity = 0.0;
  int rank = 20;      // number of Lanczos steps / approximated values
};

/// Builds the Lanczos program. Binding: "V". Scalar outputs: "alpha_<i>"
/// and "beta_<i>" for i in [0, rank).
Program BuildSvdLanczosProgram(const SvdConfig& config);

/// Eigenvalues of the symmetric tridiagonal matrix with diagonal `alpha`
/// and off-diagonal `beta` (beta[i] couples i and i+1), ascending order.
/// Implicit-shift QL iteration; fails only if it does not converge.
Result<std::vector<double>> TridiagonalEigenvalues(
    std::vector<double> alpha, std::vector<double> beta);

/// Extracts approximated singular values from an executed Lanczos run's
/// scalar outputs (sqrt of the positive tridiagonal eigenvalues, descending).
Result<std::vector<double>> SingularValuesFromScalars(
    const SvdConfig& config,
    const std::unordered_map<std::string, double>& scalars);

}  // namespace dmac
