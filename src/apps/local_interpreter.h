// Single-machine interpreter for matrix programs.
//
// Plays two roles:
//  * the "R" baseline of Fig. 6 — an efficient in-memory single-node matrix
//    engine running the same program, and
//  * the correctness oracle the distributed executor is tested against.
//
// Random leaves use the same deterministic per-block seeds as the executor,
// so distributed and local runs compute on identical inputs and results are
// comparable up to floating-point reassociation.
#pragma once

#include <unordered_map>

#include "common/result.h"
#include "lang/program.h"
#include "matrix/local_matrix.h"
#include "runtime/executor.h"

namespace dmac {

/// Result of interpreting a program locally.
struct LocalRunResult {
  std::unordered_map<std::string, LocalMatrix> matrices;
  std::unordered_map<std::string, double> scalars;
  double seconds = 0;
};

/// Interprets `program` directly over LocalMatrix. `block_size` and `seed`
/// must match the executor's options for bit-compatible random leaves.
Result<LocalRunResult> InterpretLocally(const Program& program,
                                        const Bindings& bindings,
                                        int64_t block_size, uint64_t seed);

}  // namespace dmac
