// Gaussian Non-Negative Matrix Factorization (paper Code 1).
//
// Finds W (d×k) and H (k×w) with V ≈ W·H via the multiplicative update
// rules of Lee & Seung:
//   H ← H ∘ (WᵀV) ⊘ (WᵀW H)
//   W ← W ∘ (V Hᵀ) ⊘ (W H Hᵀ)
#pragma once

#include <cstdint>

#include "lang/program.h"

namespace dmac {

/// GNMF workload parameters.
struct GnmfConfig {
  int64_t rows = 0;          // d: rows of V
  int64_t cols = 0;          // w: columns of V
  double sparsity = 1.0;     // sparsity of V
  int64_t factors = 200;     // k (the paper uses 200 for Netflix)
  int iterations = 10;
};

/// Builds the GNMF matrix program. The input matrix must be bound under
/// the name "V"; outputs are "W" and "H".
Program BuildGnmfProgram(const GnmfConfig& config);

}  // namespace dmac
