#include "apps/logistic_regression.h"

namespace dmac {

Program BuildLogisticRegressionProgram(const LogRegConfig& config) {
  ProgramBuilder pb;
  Mat V = pb.Load("V", {config.examples, config.features}, config.sparsity);
  Mat y = pb.Load("y", {config.examples, 1}, 1.0);
  Mat w = pb.Random("w_model", {config.features, 1});
  // Start near zero so the sigmoid is unsaturated.
  pb.Assign(w, w * 0.01);

  Mat p = pb.Var("p");
  Mat diff = pb.Var("diff");
  const double step = config.learning_rate /
                      static_cast<double>(config.examples);
  for (int i = 0; i < config.iterations; ++i) {
    pb.Assign(p, (V.mm(w)).Sigmoid());
    pb.Assign(diff, p - y);
    pb.Assign(w, w - (V.t().mm(diff)) * step);
  }
  Scl loss = pb.ScalarVar("train_loss", 0.0);
  pb.Assign(loss, (diff * diff).Sum());
  pb.Output(w);
  pb.OutputScalar(loss);
  return pb.Build();
}

}  // namespace dmac
