#include "apps/pagerank.h"

namespace dmac {

Program BuildPageRankProgram(const PageRankConfig& config) {
  ProgramBuilder pb;
  Mat link = pb.Load("link", {config.nodes, config.nodes},
                     config.link_sparsity);
  Mat D = pb.Load("D", {1, config.nodes}, 1.0);
  Mat rank = pb.Random("rank", {1, config.nodes});
  for (int i = 0; i < config.iterations; ++i) {
    pb.Assign(rank, (rank.mm(link)) * config.damping +
                        D * (1.0 - config.damping));
  }
  pb.Output(rank);
  // The rank vector is the iteration state; checkpoints cut its lineage.
  pb.CheckpointHint(rank);
  return pb.Build();
}

}  // namespace dmac
