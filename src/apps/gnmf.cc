#include "apps/gnmf.h"

namespace dmac {

Program BuildGnmfProgram(const GnmfConfig& config) {
  ProgramBuilder pb;
  Mat V = pb.Load("V", {config.rows, config.cols}, config.sparsity);
  Mat W = pb.Random("W", {config.rows, config.factors});
  Mat H = pb.Random("H", {config.factors, config.cols});
  for (int i = 0; i < config.iterations; ++i) {
    pb.Assign(H, H * (W.t().mm(V)) / (W.t().mm(W).mm(H)));
    pb.Assign(W, W * (V.mm(H.t())) / (W.mm(H).mm(H.t())));
  }
  pb.Output(W);
  pb.Output(H);
  // The factors are the iteration state: checkpointing them bounds how far
  // back lineage recovery must recompute after a fault.
  pb.CheckpointHint(W);
  pb.CheckpointHint(H);
  return pb.Build();
}

}  // namespace dmac
