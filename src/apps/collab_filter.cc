#include "apps/collab_filter.h"

namespace dmac {

Program BuildCollabFilterProgram(const CollabFilterConfig& config) {
  ProgramBuilder pb;
  Mat R = pb.Load("R", {config.items, config.users}, config.sparsity);
  Mat predict = pb.Var("predict");
  pb.Assign(predict, R.mm(R.t()).mm(R));
  // Normalization: scale predictions into rating range (a cheap stand-in
  // for the paper's result.normalize).
  pb.Assign(predict, predict * (1.0 / static_cast<double>(config.items)));
  pb.Output(predict);
  return pb.Build();
}

}  // namespace dmac
