#include "apps/local_interpreter.h"

#include <cmath>

#include "common/timer.h"

namespace dmac {

namespace {

class Interpreter {
 public:
  Interpreter(const Bindings& bindings, int64_t block_size, uint64_t seed)
      : bindings_(bindings), block_size_(block_size), seed_(seed) {}

  Result<LocalRunResult> Run(const Program& program) {
    Timer timer;
    for (const Statement& st : program.statements) {
      if (st.kind == Statement::Kind::kAssignMatrix) {
        DMAC_ASSIGN_OR_RETURN(LocalMatrix m, EvalMatrix(*st.matrix));
        matrices_[st.target] = std::move(m);
      } else {
        DMAC_ASSIGN_OR_RETURN(double v, EvalScalar(*st.scalar));
        scalars_[st.target] = v;
      }
    }
    LocalRunResult result;
    for (const std::string& out : program.outputs) {
      auto it = matrices_.find(out);
      if (it == matrices_.end()) {
        return Status::NotFound("output matrix " + out + " never assigned");
      }
      result.matrices.emplace(out, it->second);
    }
    for (const std::string& out : program.scalar_outputs) {
      auto it = scalars_.find(out);
      if (it == scalars_.end()) {
        return Status::NotFound("output scalar " + out + " never assigned");
      }
      result.scalars.emplace(out, it->second);
    }
    result.seconds = timer.ElapsedSeconds();
    return result;
  }

 private:
  Result<LocalMatrix> EvalMatrix(const MatrixExpr& e) {
    switch (e.kind) {
      case MatrixExpr::Kind::kLoad: {
        auto it = bindings_.find(e.name);
        if (it == bindings_.end()) {
          return Status::NotFound("no binding for input matrix " + e.name);
        }
        if (it->second->shape() != e.shape) {
          return Status::DimensionMismatch(
              "binding " + e.name + " is " + it->second->shape().ToString() +
              ", declared " + e.shape.ToString());
        }
        return *it->second;
      }
      case MatrixExpr::Kind::kRandom: {
        const BlockGrid grid{e.shape, block_size_};
        std::vector<Block> blocks;
        blocks.reserve(static_cast<size_t>(grid.num_blocks()));
        for (int64_t bi = 0; bi < grid.block_rows(); ++bi) {
          for (int64_t bj = 0; bj < grid.block_cols(); ++bj) {
            const Shape s = grid.BlockShape(bi, bj);
            blocks.push_back(RandomDenseBlock(
                s.rows, s.cols, RandomBlockSeed(seed_, e.name, bi, bj)));
          }
        }
        return LocalMatrix::FromBlocks(e.shape, block_size_,
                                       std::move(blocks));
      }
      case MatrixExpr::Kind::kVarRef: {
        auto it = matrices_.find(e.name);
        if (it == matrices_.end()) {
          return Status::NotFound("matrix variable " + e.name +
                                  " used before assignment");
        }
        return it->second;
      }
      case MatrixExpr::Kind::kTranspose: {
        DMAC_ASSIGN_OR_RETURN(LocalMatrix m, EvalMatrix(*e.lhs));
        return m.Transposed();
      }
      case MatrixExpr::Kind::kRowSums: {
        DMAC_ASSIGN_OR_RETURN(LocalMatrix m, EvalMatrix(*e.lhs));
        return m.RowSums();
      }
      case MatrixExpr::Kind::kColSums: {
        DMAC_ASSIGN_OR_RETURN(LocalMatrix m, EvalMatrix(*e.lhs));
        return m.ColSums();
      }
      case MatrixExpr::Kind::kCellUnary: {
        DMAC_ASSIGN_OR_RETURN(LocalMatrix m, EvalMatrix(*e.lhs));
        std::vector<Block> blocks;
        blocks.reserve(
            static_cast<size_t>(m.grid().num_blocks()));
        for (int64_t bi = 0; bi < m.grid().block_rows(); ++bi) {
          for (int64_t bj = 0; bj < m.grid().block_cols(); ++bj) {
            blocks.push_back(CellUnary(m.BlockAt(bi, bj), e.unary_fn));
          }
        }
        return LocalMatrix::FromBlocks(m.shape(), m.block_size(),
                                       std::move(blocks));
      }
      case MatrixExpr::Kind::kBinary: {
        DMAC_ASSIGN_OR_RETURN(LocalMatrix l, EvalMatrix(*e.lhs));
        DMAC_ASSIGN_OR_RETURN(LocalMatrix r, EvalMatrix(*e.rhs));
        switch (e.bin_op) {
          case BinOpKind::kMultiply:
            return l.Multiply(r);
          case BinOpKind::kAdd:
            return l.Add(r);
          case BinOpKind::kSubtract:
            return l.Subtract(r);
          case BinOpKind::kCellMultiply:
            return l.CellMultiply(r);
          case BinOpKind::kCellDivide:
            return l.CellDivide(r);
        }
        return Status::Internal("unreachable binary op");
      }
      case MatrixExpr::Kind::kScalarMul:
      case MatrixExpr::Kind::kScalarAdd: {
        DMAC_ASSIGN_OR_RETURN(LocalMatrix m, EvalMatrix(*e.lhs));
        DMAC_ASSIGN_OR_RETURN(double s, EvalScalar(*e.scalar));
        return e.kind == MatrixExpr::Kind::kScalarMul
                   ? m.ScalarMultiply(static_cast<Scalar>(s))
                   : m.ScalarAdd(static_cast<Scalar>(s));
      }
    }
    return Status::Internal("unreachable MatrixExpr kind");
  }

  Result<double> EvalScalar(const ScalarExpr& e) {
    switch (e.kind) {
      case ScalarExpr::Kind::kLiteral:
        return e.literal;
      case ScalarExpr::Kind::kVarRef: {
        auto it = scalars_.find(e.name);
        if (it == scalars_.end()) {
          return Status::NotFound("scalar variable " + e.name +
                                  " used before assignment");
        }
        return it->second;
      }
      case ScalarExpr::Kind::kReduce: {
        DMAC_ASSIGN_OR_RETURN(LocalMatrix m, EvalMatrix(*e.matrix));
        switch (e.reduce) {
          case ReduceKind::kSum:
            return m.Sum();
          case ReduceKind::kNorm2:
            return std::sqrt(m.SumSquares());
          case ReduceKind::kValue:
            if (m.rows() != 1 || m.cols() != 1) {
              return Status::DimensionMismatch(
                  ".value requires a 1x1 matrix, got " +
                  m.shape().ToString());
            }
            return m.Sum();
        }
        return Status::Internal("unreachable reduce kind");
      }
      case ScalarExpr::Kind::kBinary: {
        DMAC_ASSIGN_OR_RETURN(double l, EvalScalar(*e.lhs));
        DMAC_ASSIGN_OR_RETURN(double r, EvalScalar(*e.rhs));
        switch (e.op) {
          case '+':
            return l + r;
          case '-':
            return l - r;
          case '*':
            return l * r;
          case '/':
            return l / r;
        }
        return Status::Invalid(std::string("unknown scalar op ") + e.op);
      }
      case ScalarExpr::Kind::kSqrt: {
        DMAC_ASSIGN_OR_RETURN(double l, EvalScalar(*e.lhs));
        return std::sqrt(l);
      }
    }
    return Status::Internal("unreachable ScalarExpr kind");
  }

  const Bindings& bindings_;
  int64_t block_size_;
  uint64_t seed_;
  std::unordered_map<std::string, LocalMatrix> matrices_;
  std::unordered_map<std::string, double> scalars_;
};

}  // namespace

Result<LocalRunResult> InterpretLocally(const Program& program,
                                        const Bindings& bindings,
                                        int64_t block_size, uint64_t seed) {
  Interpreter interp(bindings, block_size, seed);
  return interp.Run(program);
}

}  // namespace dmac
