#include "apps/svd_lanczos.h"

#include <algorithm>
#include <cmath>

namespace dmac {

Program BuildSvdLanczosProgram(const SvdConfig& config) {
  ProgramBuilder pb;
  Mat V = pb.Load("V", {config.rows, config.cols}, config.sparsity);
  // vc: current Lanczos vector (unit), vp: previous vector.
  Mat vc = pb.Var("vc");
  Mat vp = pb.Var("vp");
  Mat w = pb.Var("w_lanczos");
  Mat vc0 = pb.Random("vc0", {config.cols, 1});
  // Normalize the start vector: vc = vc0 / ||vc0||.
  Scl inv_n0 = pb.ScalarVar("inv_n0", 0.0);
  pb.Assign(inv_n0, Scl(1.0) / (vc0 * vc0).Sum().Sqrt());
  pb.Assign(vc, inv_n0 * vc0);
  pb.Assign(vp, vc * 0.0);
  Scl beta = pb.ScalarVar("beta", 0.0);

  for (int i = 0; i < config.rank; ++i) {
    const std::string suffix = "_" + std::to_string(i);
    // w = V.t %*% (V %*% vc)
    pb.Assign(w, V.t().mm(V.mm(vc)));
    // alpha_i = (vc.t %*% w).value
    Scl alpha_i = pb.ScalarVar("alpha" + suffix, 0.0);
    pb.Assign(alpha_i, (vc.t().mm(w)).Value());
    // w = w - vp * beta - vc * alpha
    pb.Assign(w, w - beta * vp - alpha_i * vc);
    // beta_i = ||w||
    Scl beta_i = pb.ScalarVar("beta" + suffix, 0.0);
    pb.Assign(beta_i, (w * w).Sum().Sqrt());
    pb.Assign(beta, beta_i);
    // vp = vc; vc = w / beta
    pb.Assign(vp, vc);
    Scl inv_beta = pb.ScalarVar("inv_beta" + suffix, 0.0);
    pb.Assign(inv_beta, Scl(1.0) / beta_i);
    pb.Assign(vc, inv_beta * w);
    pb.OutputScalar(alpha_i);
    pb.OutputScalar(beta_i);
  }
  pb.Output(vc);
  return pb.Build();
}

Result<std::vector<double>> TridiagonalEigenvalues(std::vector<double> alpha,
                                                   std::vector<double> beta) {
  // Implicit-shift QL iteration (Numerical-Recipes style tqli, eigenvalues
  // only). alpha: diagonal (n), beta: sub-diagonal (n-1 used).
  const size_t n = alpha.size();
  if (n == 0) return std::vector<double>{};
  std::vector<double>& d = alpha;
  std::vector<double> e(n, 0.0);
  for (size_t i = 0; i + 1 < n; ++i) e[i] = i < beta.size() ? beta[i] : 0.0;

  for (size_t l = 0; l < n; ++l) {
    int iterations = 0;
    size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= 1e-14 * dd) break;
      }
      if (m != l) {
        if (++iterations == 50) {
          return Status::Internal("tridiagonal QL failed to converge");
        }
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0, c = 1.0, p = 0.0;
        for (size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
        }
        if (r == 0.0 && m >= l + 2) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  std::sort(d.begin(), d.end());
  return d;
}

Result<std::vector<double>> SingularValuesFromScalars(
    const SvdConfig& config,
    const std::unordered_map<std::string, double>& scalars) {
  std::vector<double> alpha, beta;
  for (int i = 0; i < config.rank; ++i) {
    auto a = scalars.find("alpha_" + std::to_string(i));
    auto b = scalars.find("beta_" + std::to_string(i));
    if (a == scalars.end() || b == scalars.end()) {
      return Status::NotFound("missing Lanczos scalar for step " +
                              std::to_string(i));
    }
    alpha.push_back(a->second);
    if (i + 1 < config.rank) beta.push_back(b->second);
  }
  DMAC_ASSIGN_OR_RETURN(std::vector<double> eig,
                        TridiagonalEigenvalues(std::move(alpha),
                                               std::move(beta)));
  std::vector<double> singular;
  for (double v : eig) {
    if (v > 0) singular.push_back(std::sqrt(v));
  }
  std::sort(singular.rbegin(), singular.rend());
  return singular;
}

}  // namespace dmac
