#include "apps/linear_regression.h"

namespace dmac {

Program BuildLinearRegressionProgram(const LinRegConfig& config) {
  ProgramBuilder pb;
  Mat V = pb.Load("V", {config.examples, config.features}, config.sparsity);
  Mat y = pb.Load("y", {config.examples, 1}, 1.0);
  Mat w = pb.Random("w_model", {config.features, 1});

  // r = (V.t %*% y) * -1;  p = r * -1;  norm_r2 = (r * r).sum
  Mat r = pb.Var("r");
  pb.Assign(r, (V.t().mm(y)) * -1.0);
  Mat p = pb.Var("p");
  pb.Assign(p, r * -1.0);
  Scl norm_r2 = pb.ScalarVar("norm_r2", 0.0);
  pb.Assign(norm_r2, (r * r).Sum());
  Mat q = pb.Var("q");
  Scl alpha = pb.ScalarVar("alpha", 0.0);
  Scl beta = pb.ScalarVar("beta", 0.0);
  Scl old_norm_r2 = pb.ScalarVar("old_norm_r2", 0.0);

  for (int i = 0; i < config.iterations; ++i) {
    // q = V.t %*% (V %*% p) + p * lambda
    pb.Assign(q, V.t().mm(V.mm(p)) + p * config.lambda);
    // alpha = norm_r2 / (p.t %*% q).value
    pb.Assign(alpha, norm_r2 / (p.t().mm(q)).Value());
    // w = w + p * alpha
    pb.Assign(w, w + alpha * p);
    // r = r + q * alpha
    pb.Assign(old_norm_r2, norm_r2);
    pb.Assign(r, r + alpha * q);
    pb.Assign(norm_r2, (r * r).Sum());
    // beta = norm_r2 / old_norm_r2;  p = r * -1 + p * beta
    pb.Assign(beta, norm_r2 / old_norm_r2);
    pb.Assign(p, r * -1.0 + beta * p);
  }
  pb.Output(w);
  pb.OutputScalar(norm_r2);
  return pb.Build();
}

}  // namespace dmac
