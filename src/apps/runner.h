// One-call pipeline: program → decompose → plan → distributed execution.
//
// This is the main entry point applications use; benchmarks toggle
// `exploit_dependencies` to switch between DMac and the SystemML-S
// baseline (§6.1: the only difference between the two systems).
#pragma once

#include "common/result.h"
#include "lang/program.h"
#include "plan/planner.h"
#include "plan/search.h"
#include "runtime/executor.h"

namespace dmac {

/// Configuration of a full program run.
struct RunConfig {
  int num_workers = 4;
  int threads_per_worker = 2;
  /// 0 = adopt the block size of the first binding.
  int64_t block_size = 0;
  /// true = DMac planner; false = SystemML-S baseline planner.
  bool exploit_dependencies = true;
  /// Planner heuristics (for ablations).
  bool pull_up_broadcast = true;
  bool reassignment = true;
  /// Fold zero-comm transposes feeding multiplies into kernel flags
  /// (docs/kernels.md); off re-materializes every transpose.
  bool fuse_transposes = true;
  /// In-place vs buffered local multiplication (Fig. 7 ablation).
  LocalMode local_mode = LocalMode::kInPlace;
  /// Task-queue vs static local scheduling (Fig. 4 ablation).
  TaskScheduling task_scheduling = TaskScheduling::kQueue;
  /// Run the static plan verifier (src/analysis) after planning; planning
  /// fails on any error diagnostic. Defaults on in debug builds.
  bool verify_plan = kVerifyPlanDefault;
  uint64_t seed = 42;
  /// Fault injection and lineage recovery (docs/fault_tolerance.md).
  /// Disabled by default: the fault machinery then costs one branch per
  /// step and results are unchanged.
  FaultSpec fault;
  /// Checkpoint hinted matrices every K producing steps (0 = never).
  int checkpoint_every = 0;
  /// Durable checkpoint directory (docs/fault_tolerance.md, "Durability &
  /// restart"). Non-empty = every in-memory checkpoint is also committed to
  /// disk as a crash-consistent epoch; an unset `checkpoint_every` then
  /// defaults to 1.
  std::string checkpoint_dir;
  /// Restore the last committed snapshot from `checkpoint_dir` before
  /// executing; the resumed run is bit-identical to an uninterrupted one.
  bool resume = false;
  /// Degraded-mode quorum: fail clean with kUnavailable once permanent
  /// worker deaths leave fewer than this many survivors (clamped to
  /// [1, num_workers]).
  int min_workers = 1;
  /// Resource governance (docs/governance.md): deadline/cancel token,
  /// memory budget and spill store. Default = ungoverned.
  GovernorContext governor;
  /// Cost-based plan search (plan/search.h, docs/planner.md). kOff = the
  /// greedy Algorithm 1 plan, exactly as before.
  PlanSearchMode plan_search = PlanSearchMode::kOff;
  /// Beam width of the search (and the finalist cap in both modes).
  int beam_width = 8;
  /// Kernel-rate calibration file for the cost model (CALIBRATION.json or
  /// BENCH_kernels.json); empty = built-in default rates.
  std::string calibration_path;
  /// Race the search's top two finalists for one probe iteration and
  /// execute whichever measured faster (docs/planner.md, "Racing").
  /// Requires plan_search != kOff.
  bool race_top2 = false;
};

/// Search/race summary of one run (RunOutcome::search; all-default when
/// RunConfig::plan_search == kOff).
struct RunSearchInfo {
  bool ran = false;
  int64_t candidates = 0;    // verified candidates ranked
  int64_t rejected = 0;      // dropped by planning/verify failure
  double seconds = 0;        // search wall time
  double best_seconds = 0;   // winner's estimated seconds
  double best_comm_bytes = 0;
  double greedy_seconds = 0;  // greedy plan's estimated seconds
  double greedy_comm_bytes = 0;
  std::string best_decisions;  // winner's decision vector ("greedy" = none)
  bool raced = false;
  int race_winner = 0;           // finalist index that measured faster
  double race_probe_seconds = 0;  // wall time of both probe runs
};

/// Outcome of a run: results, runtime statistics, and the plan that ran.
struct RunOutcome {
  Plan plan;
  ExecutionResult result;
  double plan_seconds = 0;     // planning (driver) time
  double execute_seconds = 0;  // measured wall time of the whole execution
  RunSearchInfo search;
};

/// Decomposes, plans, and executes `program` with `bindings`.
Result<RunOutcome> RunProgram(const Program& program, const Bindings& bindings,
                              const RunConfig& config);

/// Plans only (no execution); useful for plan-quality experiments. With
/// plan_search enabled this returns the search winner's plan.
Result<Plan> PlanProgram(const Program& program, const RunConfig& config);

/// Runs the cost-based plan search (plan/search.h) over the decomposed
/// program and returns the ranked candidates. `config.plan_search` must
/// not be kOff. dmac_lint --plan-search prints the resulting table.
Result<SearchResult> SearchProgram(const Program& program,
                                   const RunConfig& config);

/// Chooses one square block side for the whole program: the Eq. 3 bound
/// must hold for every (estimated) matrix the program touches, or some
/// operator ends up with fewer result blocks than workers·threads and
/// loses its parallelism. Vectors (a dimension of 1) are exempt — they
/// would otherwise shred every block grid — and the result is floored at
/// 32.
Result<int64_t> ChooseProgramBlockSize(const Program& program, int workers,
                                       int threads_per_worker);

}  // namespace dmac
