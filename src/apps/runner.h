// One-call pipeline: program → decompose → plan → distributed execution.
//
// This is the main entry point applications use; benchmarks toggle
// `exploit_dependencies` to switch between DMac and the SystemML-S
// baseline (§6.1: the only difference between the two systems).
#pragma once

#include "common/result.h"
#include "lang/program.h"
#include "plan/planner.h"
#include "runtime/executor.h"

namespace dmac {

/// Configuration of a full program run.
struct RunConfig {
  int num_workers = 4;
  int threads_per_worker = 2;
  /// 0 = adopt the block size of the first binding.
  int64_t block_size = 0;
  /// true = DMac planner; false = SystemML-S baseline planner.
  bool exploit_dependencies = true;
  /// Planner heuristics (for ablations).
  bool pull_up_broadcast = true;
  bool reassignment = true;
  /// Fold zero-comm transposes feeding multiplies into kernel flags
  /// (docs/kernels.md); off re-materializes every transpose.
  bool fuse_transposes = true;
  /// In-place vs buffered local multiplication (Fig. 7 ablation).
  LocalMode local_mode = LocalMode::kInPlace;
  /// Task-queue vs static local scheduling (Fig. 4 ablation).
  TaskScheduling task_scheduling = TaskScheduling::kQueue;
  /// Run the static plan verifier (src/analysis) after planning; planning
  /// fails on any error diagnostic. Defaults on in debug builds.
  bool verify_plan = kVerifyPlanDefault;
  uint64_t seed = 42;
  /// Fault injection and lineage recovery (docs/fault_tolerance.md).
  /// Disabled by default: the fault machinery then costs one branch per
  /// step and results are unchanged.
  FaultSpec fault;
  /// Checkpoint hinted matrices every K producing steps (0 = never).
  int checkpoint_every = 0;
  /// Durable checkpoint directory (docs/fault_tolerance.md, "Durability &
  /// restart"). Non-empty = every in-memory checkpoint is also committed to
  /// disk as a crash-consistent epoch; an unset `checkpoint_every` then
  /// defaults to 1.
  std::string checkpoint_dir;
  /// Restore the last committed snapshot from `checkpoint_dir` before
  /// executing; the resumed run is bit-identical to an uninterrupted one.
  bool resume = false;
  /// Degraded-mode quorum: fail clean with kUnavailable once permanent
  /// worker deaths leave fewer than this many survivors (clamped to
  /// [1, num_workers]).
  int min_workers = 1;
  /// Resource governance (docs/governance.md): deadline/cancel token,
  /// memory budget and spill store. Default = ungoverned.
  GovernorContext governor;
};

/// Outcome of a run: results, runtime statistics, and the plan that ran.
struct RunOutcome {
  Plan plan;
  ExecutionResult result;
  double plan_seconds = 0;     // planning (driver) time
  double execute_seconds = 0;  // measured wall time of the whole execution
};

/// Decomposes, plans, and executes `program` with `bindings`.
Result<RunOutcome> RunProgram(const Program& program, const Bindings& bindings,
                              const RunConfig& config);

/// Plans only (no execution); useful for plan-quality experiments.
Result<Plan> PlanProgram(const Program& program, const RunConfig& config);

/// Chooses one square block side for the whole program: the Eq. 3 bound
/// must hold for every (estimated) matrix the program touches, or some
/// operator ends up with fewer result blocks than workers·threads and
/// loses its parallelism. Vectors (a dimension of 1) are exempt — they
/// would otherwise shred every block grid — and the result is floored at
/// 32.
Result<int64_t> ChooseProgramBlockSize(const Program& program, int workers,
                                       int threads_per_worker);

}  // namespace dmac
