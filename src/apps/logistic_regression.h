// Logistic regression by batch gradient descent.
//
// An extension application beyond the paper's five: exercises the
// element-wise unary operators (sigmoid) together with the same V / Vᵀ
// dependency pattern as the paper's linear regression —
//
//   p = sigmoid(V %*% w)
//   g = Vᵀ %*% (p - y)
//   w = w - (alpha / n) * g
//
// so the planner must again keep V partitioned once and derive Vᵀ locally.
#pragma once

#include <cstdint>

#include "lang/program.h"

namespace dmac {

/// Logistic regression workload parameters.
struct LogRegConfig {
  int64_t examples = 0;   // rows of V
  int64_t features = 0;   // columns of V
  double sparsity = 0.0;  // sparsity of V
  int iterations = 10;
  double learning_rate = 1.0;
};

/// Builds the program. Bindings: "V" (examples × features) and "y"
/// (examples × 1, labels in {0,1}). Outputs: "w_model" and the scalar
/// "train_loss" (final logistic loss numerator Σ(p−y)²; monotone proxy).
Program BuildLogisticRegressionProgram(const LogRegConfig& config);

}  // namespace dmac
