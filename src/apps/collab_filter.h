// Item-based Collaborative Filtering (paper Code 3).
//
//   result = R %*% R.t %*% R
//
// R[i, j] is the rating of item i by user j; R·Rᵀ is the item-item
// similarity matrix and its product with R the predicted ratings. The
// paper's final normalization is a driver-side constant scale here.
#pragma once

#include <cstdint>

#include "lang/program.h"

namespace dmac {

/// Collaborative filtering workload parameters.
struct CollabFilterConfig {
  int64_t items = 0;
  int64_t users = 0;
  double sparsity = 0.0;
};

/// Builds the CF program. Binding: "R" (items × users). Output: "predict".
Program BuildCollabFilterProgram(const CollabFilterConfig& config);

}  // namespace dmac
