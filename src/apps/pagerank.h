// PageRank (paper Code 2).
//
//   rank = (rank %*% link) * 0.85 + D * 0.15
//
// `link` is the row-normalized N×N adjacency matrix, `rank` a 1×N vector,
// and D the uniform teleport vector (all 1/N).
#pragma once

#include <cstdint>

#include "lang/program.h"

namespace dmac {

/// PageRank workload parameters.
struct PageRankConfig {
  int64_t nodes = 0;
  double link_sparsity = 0.0;  // nnz(link) / N^2
  int iterations = 10;
  double damping = 0.85;
};

/// Builds the PageRank program. Bindings: "link" (N×N row-normalized) and
/// "D" (1×N teleport vector). Output: "rank".
Program BuildPageRankProgram(const PageRankConfig& config);

}  // namespace dmac
