// Deterministic fault drawing (docs/fault_tolerance.md).
//
// The injector owns the only RNG in the fault framework. Every decision —
// whether a boundary crashes a worker, which block vanishes, whether a task
// launch fails — is a draw against the FaultSpec's probabilities, consumed
// in the executor's deterministic iteration order, so one (spec.seed,
// program) pair replays the identical fault schedule on every run. The
// injector holds no cluster state; the executor applies its verdicts to the
// partition stores.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/rng.h"
#include "fault/fault_spec.h"
#include "matrix/block.h"

namespace dmac {

class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec)
      : spec_(spec), rng_(spec.seed) {}

  const FaultSpec& spec() const { return spec_; }

  /// Step boundary: does one worker crash, and which one.
  bool DrawCrash(int num_workers, int* worker);

  /// Step boundary, per stored block: does this entry vanish.
  bool DrawLostBlock() { return Draw(spec_.lost_block_prob); }

  /// Step boundary, per stored block: is this entry silently corrupted.
  bool DrawCorruptBlock() { return Draw(spec_.corrupt_prob); }

  /// Task launch: does this worker's execution of `step_id` fail
  /// transiently. Internally budgeted to `max_retries` injected failures
  /// per step so transient faults always resolve within the retry bound;
  /// `permanent_fail_step` bypasses the budget.
  bool DrawTransientFailure(int step_id);

  /// Task launch: injected straggler latency in simulated seconds (0 = not
  /// a straggler).
  double DrawStragglerDelay();

  /// Step boundary: does one worker die permanently. The caller gates the
  /// draw on the quorum budget (no draw when another death would drop
  /// survivors below min_workers) and picks the victim via DrawVictim, so
  /// the schedule stays a pure function of (seed, program).
  bool DrawWorkerDeath() { return Draw(spec_.death_prob); }

  /// Uniform index in [0, bound) for victim selection among live workers.
  int DrawVictim(int bound) {
    return static_cast<int>(rng_.NextBounded(
        static_cast<uint64_t>(bound < 1 ? 1 : bound)));
  }

  /// Message send: is this transfer dropped (then retransmitted).
  bool DrawNetDrop() { return Draw(spec_.net.drop_prob); }
  /// Message send: is a duplicate copy also delivered.
  bool DrawNetDup() { return Draw(spec_.net.dup_prob); }
  /// Message send: does this transfer arrive out of order.
  bool DrawNetReorder() { return Draw(spec_.net.reorder_prob); }
  /// Message send: is this transfer delayed by `net.delay_seconds`.
  bool DrawNetDelay() { return Draw(spec_.net.delay_prob); }
  /// Message send: does a transient partition open around the sender.
  bool DrawNetPartition() { return Draw(spec_.net.partition_prob); }

  /// Fresh seed for corrupted-copy generation.
  uint64_t DrawSeed() { return rng_.Next(); }

  /// Faults this injector has decided so far (schedule size).
  int64_t faults_drawn() const { return faults_drawn_; }

 private:
  bool Draw(double prob) {
    if (prob <= 0) return false;
    const bool hit = rng_.NextDouble() < prob;
    if (hit) ++faults_drawn_;
    return hit;
  }

  FaultSpec spec_;
  Rng rng_;
  int64_t faults_drawn_ = 0;
  // Transient failures injected per step id (budget bookkeeping).
  std::unordered_map<int, int> transient_injected_;
};

/// Deep, silently corrupted copy of `block`: one payload value is perturbed
/// (position and delta drawn from `seed`), dimensions and representation
/// kept, so only a checksum can tell it from the original.
Block CorruptedCopy(const Block& block, uint64_t seed);

}  // namespace dmac
