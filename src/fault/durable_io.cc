#include "fault/durable_io.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "fault/checksum.h"

namespace dmac {

namespace {

constexpr char kMagic[8] = {'D', 'M', 'A', 'C', 'S', 'P', 'L', '1'};
constexpr uint32_t kKindDense = 0;
constexpr uint32_t kKindSparse = 1;

/// Exit code of a hard injected crash; scripts/crash_loop.sh keys on it to
/// distinguish "crashed as scheduled" from a real failure.
constexpr int kCrashExitCode = 42;

void Append(std::string* out, const void* data, size_t len) {
  out->append(static_cast<const char*>(data), len);
}

template <typename T>
void AppendOne(std::string* out, T v) {
  Append(out, &v, sizeof(T));
}

/// Sequential reader over a serialized block buffer.
class Cursor {
 public:
  explicit Cursor(const std::string& data) : data_(data) {}

  bool Read(void* out, size_t len) {
    if (len > data_.size() - pos_) return false;
    std::memcpy(out, data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  template <typename T>
  bool ReadOne(T* out) {
    return Read(out, sizeof(T));
  }

  size_t remaining() const { return data_.size() - pos_; }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

Status MapWriteErrno(int err, const std::string& path) {
  if (err == ENOSPC) {
    return Status::ResourceExhausted("disk: out of space writing " + path);
  }
  return Status::Unavailable("disk: short write to " + path);
}

}  // namespace

std::string SerializeBlock(const Block& block) {
  std::string out;
  Append(&out, kMagic, sizeof(kMagic));
  AppendOne<uint32_t>(&out, block.IsDense() ? kKindDense : kKindSparse);
  AppendOne<int64_t>(&out, block.rows());
  AppendOne<int64_t>(&out, block.cols());
  if (block.IsDense()) {
    const DenseBlock& d = block.dense();
    Append(&out, d.data(),
           sizeof(Scalar) * static_cast<size_t>(d.rows() * d.cols()));
  } else {
    const CscBlock& s = block.sparse();
    AppendOne<int64_t>(&out, s.nnz());
    Append(&out, s.col_ptr().data(), sizeof(int32_t) * s.col_ptr().size());
    Append(&out, s.row_idx().data(), sizeof(int32_t) * s.row_idx().size());
    Append(&out, s.values().data(), sizeof(Scalar) * s.values().size());
  }
  AppendOne<uint64_t>(&out, BlockChecksum(block));
  return out;
}

Result<Block> DeserializeBlock(const std::string& data,
                               const std::string& context) {
  const auto corrupt = [&context]() {
    return Status::DataLoss(context + ": corrupt or truncated block data");
  };
  Cursor cur(data);
  char magic[8];
  uint32_t kind = 0;
  int64_t rows = 0, cols = 0;
  if (!cur.Read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0 ||
      !cur.ReadOne(&kind) || !cur.ReadOne(&rows) || !cur.ReadOne(&cols) ||
      rows < 0 || cols < 0) {
    return corrupt();
  }
  // Every size below is guarded against the buffer length before it drives
  // an allocation: a corrupt header must fail clean, not OOM. The products
  // are computed division-side so they cannot themselves overflow.
  Block block;
  if (kind == kKindDense) {
    if (cols > 0 &&
        static_cast<uint64_t>(rows) >
            cur.remaining() / (sizeof(Scalar) * static_cast<uint64_t>(cols))) {
      return corrupt();
    }
    DenseBlock d(rows, cols);
    if (!cur.Read(d.data(), sizeof(Scalar) * static_cast<size_t>(rows * cols))) {
      return corrupt();
    }
    block = Block(std::move(d));
  } else if (kind == kKindSparse) {
    int64_t nnz = 0;
    if (!cur.ReadOne(&nnz) || nnz < 0 ||
        static_cast<uint64_t>(nnz) >
            cur.remaining() / (sizeof(int32_t) + sizeof(Scalar)) ||
        static_cast<uint64_t>(cols) >= cur.remaining() / sizeof(int32_t)) {
      return corrupt();
    }
    std::vector<int32_t> col_ptr(static_cast<size_t>(cols) + 1);
    std::vector<int32_t> row_idx(static_cast<size_t>(nnz));
    std::vector<Scalar> values(static_cast<size_t>(nnz));
    if (!cur.Read(col_ptr.data(), sizeof(int32_t) * col_ptr.size()) ||
        !cur.Read(row_idx.data(), sizeof(int32_t) * row_idx.size()) ||
        !cur.Read(values.data(), sizeof(Scalar) * values.size())) {
      return corrupt();
    }
    // Validate the CSC structure softly before handing the arrays to the
    // checking constructor, so a corrupt buffer surfaces as kDataLoss
    // instead of an invariant abort.
    bool ok = col_ptr.front() == 0 && col_ptr.back() == nnz;
    for (size_t c = 0; ok && c + 1 < col_ptr.size(); ++c) {
      ok = col_ptr[c] <= col_ptr[c + 1];
      for (int32_t i = col_ptr[c]; ok && i < col_ptr[c + 1]; ++i) {
        ok = row_idx[i] >= 0 && row_idx[i] < rows &&
             (i == col_ptr[c] || row_idx[i - 1] < row_idx[i]);
      }
    }
    if (!ok) return corrupt();
    block = Block(CscBlock(rows, cols, std::move(col_ptr), std::move(row_idx),
                           std::move(values)));
  } else {
    return corrupt();
  }
  uint64_t stored_checksum = kNoChecksum;
  if (!cur.ReadOne(&stored_checksum)) return corrupt();
  if (BlockChecksum(block) != stored_checksum) {
    return Status::DataLoss(context + ": checksum mismatch");
  }
  return block;
}

StorageIO::StorageIO() : StorageIO(DiskFaultSpec{}, 1) {}

StorageIO::StorageIO(const DiskFaultSpec& spec, uint64_t seed, CrashMode mode)
    : spec_(spec), mode_(mode), rng_(seed) {}

Status StorageIO::DeadCheck() const {
  MutexLock lock(&mu_);
  if (dead_) {
    return Status::Internal("storage io refused: dead after injected crash");
  }
  return Status::Ok();
}

bool StorageIO::Draw(double prob) {
  if (prob <= 0) return false;
  bool fired;
  {
    MutexLock lock(&mu_);
    fired = rng_.NextDouble() < prob;
    if (fired) ++faults_injected_;
  }
  return fired;
}

int64_t StorageIO::AdvanceWritePoint() {
  MutexLock lock(&mu_);
  const int64_t point = ++write_points_;
  return (spec_.crash_at >= 1 && point == spec_.crash_at) ? point : 0;
}

Status StorageIO::Crash(int64_t point) {
  if (mode_ == CrashMode::kHard) std::_Exit(kCrashExitCode);
  {
    MutexLock lock(&mu_);
    dead_ = true;
  }
  return Status::Internal("injected crash at write point " +
                          std::to_string(point));
}

Status StorageIO::CreateDir(const std::string& dir) {
  DMAC_RETURN_NOT_OK(DeadCheck());
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Unavailable("disk: cannot create directory " + dir + ": " +
                               ec.message());
  }
  return Status::Ok();
}

Status StorageIO::WriteFileAtomic(const std::string& path,
                                  const std::string& data) {
  DMAC_RETURN_NOT_OK(DeadCheck());
  const std::string tmp = path + ".tmp";
  const auto rollback = [&tmp]() {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
  };
  if (Draw(spec_.enospc_prob)) {
    rollback();
    return Status::ResourceExhausted("disk: out of space writing " + path +
                                     " (injected)");
  }
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return MapWriteErrno(errno, tmp);

  // Write point 1: crash mid-write, leaving a torn temp file behind. The
  // final path is untouched — that is the whole point of the protocol.
  if (const int64_t point = AdvanceWritePoint()) {
    (void)std::fwrite(data.data(), 1, data.size() / 2, f);
    std::fclose(f);  // flushes the torn prefix so the "crash" leaves it
    return Crash(point);
  }
  if (Draw(spec_.short_write_prob)) {
    (void)std::fwrite(data.data(), 1, data.size() / 2, f);
    std::fclose(f);
    rollback();
    return Status::Unavailable("disk: short write to " + path + " (injected)");
  }
  if (std::fwrite(data.data(), 1, data.size(), f) != data.size()) {
    const int err = errno;
    std::fclose(f);
    rollback();
    return MapWriteErrno(err, path);
  }
  std::fflush(f);
  if (Draw(spec_.fsync_fail_prob)) {
    std::fclose(f);
    rollback();
    return Status::Unavailable("disk: fsync failed for " + path +
                               " (injected)");
  }
  if (::fsync(fileno(f)) != 0) {
    const int err = errno;
    std::fclose(f);
    rollback();
    return err == ENOSPC
               ? Status::ResourceExhausted("disk: out of space syncing " + path)
               : Status::Unavailable("disk: fsync failed for " + path);
  }
  // Write point 2: crash with a complete, synced temp — still not renamed,
  // so readers never see it.
  if (const int64_t point = AdvanceWritePoint()) {
    std::fclose(f);
    return Crash(point);
  }
  std::fclose(f);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    rollback();
    return Status::Unavailable("disk: cannot rename " + tmp + " to " + path +
                               ": " + ec.message());
  }
  // Write point 3: crash after the rename — the file is durable and a
  // restart must observe it.
  if (const int64_t point = AdvanceWritePoint()) return Crash(point);
  return Status::Ok();
}

Result<std::string> StorageIO::ReadFile(const std::string& path) {
  DMAC_RETURN_NOT_OK(DeadCheck());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return errno == ENOENT
               ? Status::NotFound("disk: no such file " + path)
               : Status::Unavailable("disk: cannot open " + path);
  }
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) return Status::Unavailable("disk: read error on " + path);
  if (!data.empty() && Draw(spec_.read_flip_prob)) {
    uint64_t bit;
    {
      MutexLock lock(&mu_);
      bit = rng_.NextBounded(static_cast<uint64_t>(data.size()) * 8);
    }
    data[static_cast<size_t>(bit / 8)] ^=
        static_cast<char>(1u << (bit % 8));
  }
  return data;
}

void StorageIO::Remove(const std::string& path) {
  {
    MutexLock lock(&mu_);
    if (dead_) return;  // a dead process cleans nothing up
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

Result<std::vector<std::string>> StorageIO::List(const std::string& dir) const {
  std::vector<std::string> names;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return names;  // missing directory = empty listing
  for (const auto& entry : it) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

int64_t StorageIO::write_points() const {
  MutexLock lock(&mu_);
  return write_points_;
}

int64_t StorageIO::faults_injected() const {
  MutexLock lock(&mu_);
  return faults_injected_;
}

bool StorageIO::dead() const {
  MutexLock lock(&mu_);
  return dead_;
}

}  // namespace dmac
