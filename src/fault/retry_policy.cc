#include "fault/retry_policy.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace dmac {

double RetryPolicy::BackoffSeconds(int attempt) const {
  if (attempt < 0) attempt = 0;
  // Clamp the exponent so a pathological retry budget cannot overflow the
  // simulated clock (2^40 · base is already ~35 years at the default base).
  const int exponent = std::min(attempt, 40);
  double backoff;
  if (multiplier == 2.0) {
    // Exact power-of-two scaling — the legacy executor arithmetic.
    backoff = base_seconds * std::ldexp(1.0, exponent);
  } else {
    backoff = base_seconds * std::pow(multiplier, exponent);
  }
  if (cap_seconds > 0) backoff = std::min(backoff, cap_seconds);
  if (jitter_fraction > 0) {
    // One SplitMix64 evaluation keyed on (seed, attempt): deterministic,
    // stateless, and independent across attempts.
    uint64_t state = jitter_seed + 0x9e3779b97f4a7c15ULL *
                                       (static_cast<uint64_t>(attempt) + 1);
    const double unit = (SplitMix64(state) >> 11) * 0x1.0p-53;  // [0, 1)
    backoff += jitter_fraction * backoff * unit;
  }
  return backoff;
}

}  // namespace dmac
