// Fault-injection configuration (docs/fault_tolerance.md).
//
// A FaultSpec describes a *distribution* of faults; the concrete schedule
// is drawn deterministically from `seed` by the FaultInjector, so a (spec,
// seed, program) triple always injects exactly the same faults at exactly
// the same points. Specs are built in code or parsed from the simple
// `key = value` file format accepted by `dmac_run --fault-spec`.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

namespace dmac {

/// Message-level network faults, applied inside the accounting network
/// layer (docs/fault_tolerance.md). Every knob is a per-message seeded
/// probability drawn by the FaultInjector at send time; delivery semantics
/// (retransmit-until-acked, sequence-numbered dedup, sorted commit) absorb
/// every fault without changing results — only `fault.net.*` accounting.
struct NetFaultSpec {
  /// Per message: probability the transfer is dropped and retransmitted
  /// after a RetryPolicy backoff.
  double drop_prob = 0;
  /// Per message: probability a duplicate copy (same sequence number) is
  /// also delivered; the receiver dedups it.
  double dup_prob = 0;
  /// Per message: probability the message arrives out of order; sorted
  /// sequence-number delivery absorbs it.
  double reorder_prob = 0;
  /// Per message: probability the message is delayed by `delay_seconds`.
  double delay_prob = 0;
  /// Extra simulated latency of a delayed message.
  double delay_seconds = 0.005;
  /// Per message: probability a transient bidirectional partition opens
  /// around the sender, force-dropping the next `partition_drops` messages
  /// that involve it before healing.
  double partition_prob = 0;
  /// Messages a partition eats before it heals.
  int partition_drops = 8;

  /// True when any network fault can ever fire.
  [[nodiscard]] bool Any() const {
    return drop_prob > 0 || dup_prob > 0 || reorder_prob > 0 ||
           delay_prob > 0 || partition_prob > 0;
  }

  /// Rejects probabilities outside [0, 1] and nonsensical knobs.
  [[nodiscard]] Status Validate() const;
};

/// Disk faults, injected inside the StorageIO layer (fault/durable_io.h)
/// that the durable checkpoint store and the spill store write through.
/// Drawn from StorageIO's private RNG (seeded from `FaultSpec::seed`), not
/// the FaultInjector, so disk schedules never perturb the injector's draw
/// sequence — see the durable_io.h header comment.
struct DiskFaultSpec {
  /// Per atomic file write: probability the write is torn short and fails
  /// (surfaced as kUnavailable; the temp file is rolled back).
  double short_write_prob = 0;
  /// Per file read: probability one bit of the returned buffer is flipped.
  /// Detection is the caller's checksum's job.
  double read_flip_prob = 0;
  /// Per atomic file write: probability the disk is "full" (ENOSPC,
  /// surfaced as kResourceExhausted — disk-full is not corruption).
  double enospc_prob = 0;
  /// Per fsync: probability the sync fails (surfaced as kUnavailable).
  double fsync_fail_prob = 0;
  /// Deterministic crash: kill the process at the Nth enumerated write
  /// point (1-based; each atomic write enumerates three — torn temp,
  /// synced temp, after rename). -1 disables. The crash-loop harness
  /// (scripts/crash_loop.sh) sweeps N until the job completes.
  int crash_at = -1;
  /// Crash in-process (return kInternal and refuse further I/O) instead of
  /// std::_Exit(42). For tests and the soak driver; the crash-loop harness
  /// keys on the hard exit code.
  bool crash_soft = false;

  /// True when any disk fault (or the crash) can ever fire.
  [[nodiscard]] bool Any() const {
    return short_write_prob > 0 || read_flip_prob > 0 || enospc_prob > 0 ||
           fsync_fail_prob > 0 || crash_at >= 1;
  }

  /// Rejects probabilities outside [0, 1] and nonsensical knobs.
  [[nodiscard]] Status Validate() const;
};

/// Probabilities and policy knobs of the simulated failure model.
///
/// Injection points:
///  * step boundaries — worker crashes (a worker loses every block it
///    holds), permanent worker deaths (the worker leaves the membership
///    for the rest of the query), lost blocks (one store entry dropped),
///    corrupted blocks (one store entry silently replaced by a bit-flipped
///    copy);
///  * worker task launches — transient execution failures (retried with
///    exponential backoff) and stragglers (injected extra latency, subject
///    to speculative re-execution);
///  * message sends — the NetFaultSpec drop/duplicate/reorder/delay/
///    partition knobs, applied inside the accounting network layer.
struct FaultSpec {
  /// Master switch. When false the executor's fault path is a single
  /// branch and nothing below is consulted.
  bool enabled = false;

  /// Seed of the injector's private RNG (independent of the data seed, so
  /// fault schedules never perturb generated inputs).
  uint64_t seed = 1;

  /// Per step boundary: probability that one worker crashes and loses its
  /// entire partition store.
  double crash_prob = 0;
  /// Per stored block per step boundary: probability the entry vanishes.
  double lost_block_prob = 0;
  /// Per stored block per step boundary: probability the payload is
  /// silently corrupted (checksum left stale, detection is the store's
  /// job).
  double corrupt_prob = 0;

  /// Per worker task launch: probability of a transient failure. The
  /// injector stops failing a given step once `max_retries` failures have
  /// been injected for it, so transient faults always resolve.
  double transient_prob = 0;

  /// Per worker task launch: probability the worker straggles.
  double straggler_prob = 0;
  /// Injected extra latency of a straggler (simulated seconds).
  double straggler_delay_seconds = 0.05;
  /// Re-execute straggler work on a backup worker and take the faster copy
  /// (Spark-style speculation). The abandoned attempt is accounted as
  /// recovery work, not useful compute.
  bool speculate = true;

  /// Attempts per step beyond the first before the executor gives up and
  /// surfaces a clean error.
  int max_retries = 4;
  /// Simulated backoff before retry r is `backoff_base_seconds * 2^r`.
  double backoff_base_seconds = 0.01;

  /// Test hook: a step id that fails on every attempt (a *permanent*
  /// fault), regardless of `transient_prob` and the injector's budget.
  /// -1 disables.
  int permanent_fail_step = -1;

  /// Per step boundary: probability one live worker dies *permanently* —
  /// it leaves the membership, its blocks are re-derived through lineage,
  /// and survivors host its partition slot for the rest of the query.
  /// Draws are budgeted against the quorum: once another death would drop
  /// survivors below `ExecutorOptions::min_workers`, no further draw is
  /// consumed.
  double death_prob = 0;
  /// Deterministic death hook: kill `death_worker` at step `death_step`
  /// (-1 disables). With `death_in_flight` the death lands mid-CPMM, after
  /// the shuffle sends but before delivery, so the epoch fence — not the
  /// boundary path — has to catch the stale transfers.
  int death_step = -1;
  int death_worker = 0;
  bool death_in_flight = false;

  /// Message-level network faults.
  NetFaultSpec net;

  /// Disk faults, applied by the StorageIO layer (not the injector). They
  /// do not feed AnyFaultPossible(): disk faults bypass the step-boundary
  /// recovery machinery entirely and are absorbed (or surfaced) by the
  /// durable stores themselves.
  DiskFaultSpec disk;

  /// True when any probability is positive (the spec can ever fire).
  bool AnyFaultPossible() const {
    return crash_prob > 0 || lost_block_prob > 0 || corrupt_prob > 0 ||
           transient_prob > 0 || straggler_prob > 0 ||
           permanent_fail_step >= 0 || death_prob > 0 || death_step >= 0 ||
           net.Any();
  }

  /// Rejects probabilities outside [0, 1] and nonsensical knobs.
  Status Validate() const;
};

/// Parses the `key = value` spec format: one assignment per line, `#`
/// comments, unknown keys rejected. Keys match the field names above
/// (e.g. `crash_prob = 0.05`). `enabled` defaults to true in parsed specs —
/// writing a spec file is the opt-in.
Result<FaultSpec> ParseFaultSpec(const std::string& text);

/// Reads and parses a spec file.
Result<FaultSpec> LoadFaultSpecFile(const std::string& path);

}  // namespace dmac
