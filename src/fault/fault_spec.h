// Fault-injection configuration (docs/fault_tolerance.md).
//
// A FaultSpec describes a *distribution* of faults; the concrete schedule
// is drawn deterministically from `seed` by the FaultInjector, so a (spec,
// seed, program) triple always injects exactly the same faults at exactly
// the same points. Specs are built in code or parsed from the simple
// `key = value` file format accepted by `dmac_run --fault-spec`.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

namespace dmac {

/// Probabilities and policy knobs of the simulated failure model.
///
/// Injection points:
///  * step boundaries — worker crashes (a worker loses every block it
///    holds), lost blocks (one store entry dropped), corrupted blocks (one
///    store entry silently replaced by a bit-flipped copy);
///  * worker task launches — transient execution failures (retried with
///    exponential backoff) and stragglers (injected extra latency, subject
///    to speculative re-execution).
struct FaultSpec {
  /// Master switch. When false the executor's fault path is a single
  /// branch and nothing below is consulted.
  bool enabled = false;

  /// Seed of the injector's private RNG (independent of the data seed, so
  /// fault schedules never perturb generated inputs).
  uint64_t seed = 1;

  /// Per step boundary: probability that one worker crashes and loses its
  /// entire partition store.
  double crash_prob = 0;
  /// Per stored block per step boundary: probability the entry vanishes.
  double lost_block_prob = 0;
  /// Per stored block per step boundary: probability the payload is
  /// silently corrupted (checksum left stale, detection is the store's
  /// job).
  double corrupt_prob = 0;

  /// Per worker task launch: probability of a transient failure. The
  /// injector stops failing a given step once `max_retries` failures have
  /// been injected for it, so transient faults always resolve.
  double transient_prob = 0;

  /// Per worker task launch: probability the worker straggles.
  double straggler_prob = 0;
  /// Injected extra latency of a straggler (simulated seconds).
  double straggler_delay_seconds = 0.05;
  /// Re-execute straggler work on a backup worker and take the faster copy
  /// (Spark-style speculation). The abandoned attempt is accounted as
  /// recovery work, not useful compute.
  bool speculate = true;

  /// Attempts per step beyond the first before the executor gives up and
  /// surfaces a clean error.
  int max_retries = 4;
  /// Simulated backoff before retry r is `backoff_base_seconds * 2^r`.
  double backoff_base_seconds = 0.01;

  /// Test hook: a step id that fails on every attempt (a *permanent*
  /// fault), regardless of `transient_prob` and the injector's budget.
  /// -1 disables.
  int permanent_fail_step = -1;

  /// True when any probability is positive (the spec can ever fire).
  bool AnyFaultPossible() const {
    return crash_prob > 0 || lost_block_prob > 0 || corrupt_prob > 0 ||
           transient_prob > 0 || straggler_prob > 0 ||
           permanent_fail_step >= 0;
  }

  /// Rejects probabilities outside [0, 1] and nonsensical knobs.
  Status Validate() const;
};

/// Parses the `key = value` spec format: one assignment per line, `#`
/// comments, unknown keys rejected. Keys match the field names above
/// (e.g. `crash_prob = 0.05`). `enabled` defaults to true in parsed specs —
/// writing a spec file is the opt-in.
Result<FaultSpec> ParseFaultSpec(const std::string& text);

/// Reads and parses a spec file.
Result<FaultSpec> LoadFaultSpecFile(const std::string& path);

}  // namespace dmac
