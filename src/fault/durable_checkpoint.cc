#include "fault/durable_checkpoint.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <sstream>
#include <unordered_map>

#include "fault/checksum.h"

namespace dmac {

namespace {

constexpr char kManifestHeader[] = "DMACCKPT1";
constexpr char kManifestPrefix[] = "manifest-";

std::string Hex64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

bool ParseHex64(const std::string& s, uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  char* end = nullptr;
  errno = 0;
  const uint64_t v = std::strtoull(s.c_str(), &end, 16);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

/// Parses the decimal epoch out of a `manifest-<epoch>` file name; -1 when
/// the name is not a manifest.
int64_t ManifestEpoch(const std::string& name) {
  const size_t prefix = sizeof(kManifestPrefix) - 1;
  if (name.rfind(kManifestPrefix, 0) != 0 || name.size() == prefix) return -1;
  char* end = nullptr;
  const long long epoch = std::strtoll(name.c_str() + prefix, &end, 10);
  if (end != name.c_str() + name.size() || epoch < 1) return -1;
  return epoch;
}

/// Serializes a snapshot as the text manifest: header, body lines, and the
/// `end <fnv64>` footer over every body byte. The footer is what makes a
/// manifest *committed* — a file that fails the footer check is treated as
/// corruption (an atomically-renamed manifest can never be torn).
std::string BuildManifest(const DurableSnapshot& snap) {
  std::ostringstream body;
  body << kManifestHeader << "\n";
  body << "epoch " << snap.epoch << "\n";
  body << "resume_step " << snap.resume_step << "\n";
  body << "counter " << snap.checkpoint_counter << "\n";
  for (const auto& [name, bits] : snap.scalars) {
    body << "scalar " << name << " " << Hex64(bits) << "\n";
  }
  for (const int node : snap.reload_nodes) {
    body << "reload " << node << "\n";
  }
  for (const DurableBlock& b : snap.blocks) {
    body << "block " << b.node_id << " " << b.worker << " " << b.key << " "
         << Hex64(b.checksum) << " " << b.file << "\n";
  }
  std::string out = body.str();
  out += "end " + Hex64(Fnv1a(out.data(), out.size(), 0)) + "\n";
  return out;
}

/// Parses and verifies a manifest read back from disk. False on any
/// structural or checksum problem; `expected_epoch` guards against a
/// manifest file renamed to the wrong epoch.
bool ParseManifest(const std::string& data, int64_t expected_epoch,
                   DurableSnapshot* out) {
  if (data.empty() || data.back() != '\n') return false;
  size_t footer_start = data.rfind('\n', data.size() - 2);
  footer_start = footer_start == std::string::npos ? 0 : footer_start + 1;
  std::istringstream footer(
      data.substr(footer_start, data.size() - 1 - footer_start));
  std::string tag, hex;
  uint64_t want = 0;
  if (!(footer >> tag >> hex) || tag != "end" || !ParseHex64(hex, &want)) {
    return false;
  }
  const std::string body = data.substr(0, footer_start);
  if (Fnv1a(body.data(), body.size(), 0) != want) return false;

  *out = DurableSnapshot{};
  std::istringstream lines(body);
  std::string line;
  int lineno = 0;
  bool saw_epoch = false, saw_step = false, saw_counter = false;
  while (std::getline(lines, line)) {
    ++lineno;
    if (lineno == 1) {
      if (line != kManifestHeader) return false;
      continue;
    }
    std::istringstream ls(line);
    if (!(ls >> tag)) return false;
    if (tag == "epoch") {
      if (!(ls >> out->epoch)) return false;
      saw_epoch = true;
    } else if (tag == "resume_step") {
      if (!(ls >> out->resume_step)) return false;
      saw_step = true;
    } else if (tag == "counter") {
      if (!(ls >> out->checkpoint_counter)) return false;
      saw_counter = true;
    } else if (tag == "scalar") {
      std::string name;
      if (!(ls >> name >> hex)) return false;
      uint64_t bits = 0;
      if (!ParseHex64(hex, &bits)) return false;
      out->scalars.emplace_back(std::move(name), bits);
    } else if (tag == "reload") {
      int node = -1;
      if (!(ls >> node)) return false;
      out->reload_nodes.push_back(node);
    } else if (tag == "block") {
      DurableBlock b;
      if (!(ls >> b.node_id >> b.worker >> b.key >> hex >> b.file)) {
        return false;
      }
      if (!ParseHex64(hex, &b.checksum)) return false;
      out->blocks.push_back(std::move(b));
    } else {
      return false;
    }
  }
  return saw_epoch && saw_step && saw_counter &&
         out->epoch == expected_epoch;
}

}  // namespace

Result<std::unique_ptr<DurableCheckpointStore>> DurableCheckpointStore::Open(
    std::string dir, std::shared_ptr<StorageIO> io) {
  std::unique_ptr<DurableCheckpointStore> store(
      new DurableCheckpointStore(std::move(dir), std::move(io)));
  DMAC_RETURN_NOT_OK(store->io_->CreateDir(store->dir_));
  DMAC_ASSIGN_OR_RETURN(const std::vector<std::string> names,
                        store->io_->List(store->dir_));

  std::vector<int64_t> epochs;
  for (const std::string& name : names) {
    const int64_t epoch = ManifestEpoch(name);
    if (epoch >= 1) epochs.push_back(epoch);
  }
  std::sort(epochs.rbegin(), epochs.rend());

  // Recover the newest fully-verifiable epoch. A manifest at its final name
  // that fails verification is corruption (atomic rename means it cannot be
  // torn), so a lower committed epoch — if one verifies — is the truth;
  // with no verifiable fallback the store is lost, and that must surface as
  // a clean error rather than a silent fresh start.
  bool saw_corrupt = false;
  for (const int64_t epoch : epochs) {
    auto data = store->io_->ReadFile(
        store->PathFor(kManifestPrefix + std::to_string(epoch)));
    if (!data.ok()) {
      saw_corrupt = true;
      continue;
    }
    DurableSnapshot snap;
    if (!ParseManifest(*data, epoch, &snap)) {
      saw_corrupt = true;
      continue;
    }
    // Fully verify every referenced block now: resume must never start
    // restoring and then hit a corrupt block halfway through.
    bool blocks_ok = true;
    for (const DurableBlock& b : snap.blocks) {
      if (!store->ReadBlock(b).ok()) {
        blocks_ok = false;
        break;
      }
    }
    if (!blocks_ok) {
      saw_corrupt = true;
      continue;
    }
    store->committed_ = std::move(snap);
    break;
  }
  if (!store->committed_.has_value() && saw_corrupt) {
    return Status::DataLoss("checkpoint dir " + store->dir_ +
                            ": no committed epoch survives verification");
  }

  // Garbage-collect everything the chosen epoch does not own: older and
  // partially-written epochs, unreferenced block files, and `*.tmp` crash
  // debris. After Open the directory holds exactly one committed snapshot
  // (or nothing).
  std::set<std::string> keep;
  if (store->committed_.has_value()) {
    keep.insert(kManifestPrefix + std::to_string(store->committed_->epoch));
    for (const DurableBlock& b : store->committed_->blocks) {
      keep.insert(b.file);
    }
  }
  for (const std::string& name : names) {
    if (keep.count(name) == 0) store->io_->Remove(store->PathFor(name));
  }

  // Epochs count monotonically past everything ever seen in the directory,
  // so a GC'd (corrupt or stale) epoch number is never reused even if its
  // removal failed.
  store->next_epoch_ =
      1 + std::max<int64_t>(epochs.empty() ? 0 : epochs.front(),
                            store->committed_.has_value()
                                ? store->committed_->epoch
                                : 0);
  return store;
}

Result<Block> DurableCheckpointStore::ReadBlock(const DurableBlock& ref) const {
  const std::string context = "checkpoint block " + ref.file;
  auto data = io_->ReadFile(PathFor(ref.file));
  if (!data.ok()) {
    if (data.status().code() == StatusCode::kNotFound) {
      return Status::DataLoss(context + ": missing block file");
    }
    return data.status();
  }
  DMAC_ASSIGN_OR_RETURN(Block block, DeserializeBlock(*data, context));
  if (BlockChecksum(block) != ref.checksum) {
    return Status::DataLoss(context + ": does not match manifest checksum");
  }
  return block;
}

Status DurableCheckpointStore::Commit(
    int resume_step, int64_t checkpoint_counter,
    const std::vector<std::pair<std::string, double>>& scalars,
    const std::vector<int>& reload_nodes,
    const std::vector<PendingDurableBlock>& blocks) {
  DurableSnapshot snap;
  snap.epoch = next_epoch_;
  snap.resume_step = resume_step;
  snap.checkpoint_counter = checkpoint_counter;
  for (const auto& [name, value] : scalars) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    snap.scalars.emplace_back(name, bits);
  }
  snap.reload_nodes = reload_nodes;

  // Write the (payload-deduplicated) block files first, then the manifest:
  // its atomic rename is the commit point. On any failure, roll this
  // epoch's files back — when the failure is an injected crash the Remove
  // calls are no-ops (a dead process cleans nothing up) and the debris is
  // left for the next Open's GC, exactly like a real crash.
  std::vector<std::string> written;
  const auto rollback = [this, &written]() {
    for (const std::string& name : written) io_->Remove(PathFor(name));
  };
  std::unordered_map<const Block*, std::string> file_of;
  int64_t pending_bytes = 0;
  int seq = 0;
  for (const PendingDurableBlock& pb : blocks) {
    auto [it, inserted] = file_of.try_emplace(pb.block.get());
    if (inserted) {
      it->second = "blk-" + std::to_string(snap.epoch) + "-" +
                   std::to_string(seq++) + ".bin";
      const std::string data = SerializeBlock(*pb.block);
      const Status st = io_->WriteFileAtomic(PathFor(it->second), data);
      if (!st.ok()) {
        rollback();
        return st;
      }
      written.push_back(it->second);
      pending_bytes += static_cast<int64_t>(data.size());
    }
    snap.blocks.push_back(
        DurableBlock{pb.node_id, pb.worker, pb.key, pb.checksum, it->second});
  }
  const std::string manifest = BuildManifest(snap);
  const Status st = io_->WriteFileAtomic(
      PathFor(kManifestPrefix + std::to_string(snap.epoch)), manifest);
  if (!st.ok()) {
    rollback();
    return st;
  }
  pending_bytes += static_cast<int64_t>(manifest.size());

  // Committed: the previous epoch's files are now garbage.
  if (committed_.has_value()) {
    io_->Remove(PathFor(kManifestPrefix + std::to_string(committed_->epoch)));
    std::set<std::string> old_files;
    for (const DurableBlock& b : committed_->blocks) old_files.insert(b.file);
    for (const std::string& name : old_files) io_->Remove(PathFor(name));
  }
  committed_ = std::move(snap);
  next_epoch_ = committed_->epoch + 1;
  bytes_written_ += pending_bytes;
  ++epochs_committed_;
  return Status::Ok();
}

}  // namespace dmac
