#include "fault/injector.h"

#include <cstring>

namespace dmac {

bool FaultInjector::DrawCrash(int num_workers, int* worker) {
  if (!Draw(spec_.crash_prob)) return false;
  *worker = static_cast<int>(
      rng_.NextBounded(static_cast<uint64_t>(num_workers)));
  return true;
}

bool FaultInjector::DrawTransientFailure(int step_id) {
  if (step_id == spec_.permanent_fail_step) {
    ++faults_drawn_;
    return true;
  }
  if (spec_.transient_prob <= 0) return false;
  int& injected = transient_injected_[step_id];
  if (injected >= spec_.max_retries) return false;
  if (!Draw(spec_.transient_prob)) return false;
  ++injected;
  return true;
}

double FaultInjector::DrawStragglerDelay() {
  if (!Draw(spec_.straggler_prob)) return 0;
  return spec_.straggler_delay_seconds;
}

namespace {

/// Flips one bit of a Scalar. A bit flip always changes the stored bytes
/// (unlike adding a delta, which can round away), so the checksum is
/// guaranteed to diverge.
Scalar FlipBit(Scalar v, uint64_t seed) {
  static_assert(sizeof(Scalar) == sizeof(uint32_t),
                "bit-flip corruption assumes 4-byte scalars");
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  bits ^= 1u << (seed % 32);
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

Block CorruptedCopy(const Block& block, uint64_t seed) {
  if (block.IsDense()) {
    DenseBlock d = block.dense();
    const int64_t n = d.rows() * d.cols();
    if (n == 0) return Block(std::move(d));
    Scalar* data = d.data();
    const uint64_t pos = seed % static_cast<uint64_t>(n);
    data[pos] = FlipBit(data[pos], seed / 32);
    return Block(std::move(d));
  }
  const CscBlock& s = block.sparse();
  if (s.nnz() == 0) {
    // No payload values to flip: materialize one spurious non-zero.
    CscBuilder builder(s.rows(), s.cols());
    if (s.rows() > 0 && s.cols() > 0) {
      builder.Add(static_cast<int64_t>(seed % static_cast<uint64_t>(s.rows())),
                  static_cast<int64_t>((seed / 7) %
                                       static_cast<uint64_t>(s.cols())),
                  Scalar(1));
    }
    return Block(builder.Build());
  }
  std::vector<Scalar> values = s.values();
  const uint64_t pos = seed % values.size();
  values[pos] = FlipBit(values[pos], seed / 32);
  // Flipping can produce an exact zero, which CSC may not store; nudge to a
  // representable non-zero instead so the structure stays valid.
  if (values[pos] == Scalar(0)) values[pos] = Scalar(-1);
  return Block(CscBlock(s.rows(), s.cols(), s.col_ptr(), s.row_idx(),
                        std::move(values)));
}

}  // namespace dmac
