// Driver-side checkpoint store (docs/fault_tolerance.md).
//
// Checkpointing a node deep-copies its owner blocks out of the simulated
// cluster into this store. A checkpointed node can be restored directly
// instead of re-running its producer chain, which is what keeps recovery
// cost bounded in iterative apps (GNMF, PageRank) whose lineage otherwise
// grows with the iteration count.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "matrix/block.h"

namespace dmac {

/// One checkpointed block: where it lived and an immutable deep copy.
struct CheckpointBlock {
  int worker = 0;
  int64_t key = 0;
  uint64_t checksum = 0;
  std::shared_ptr<const Block> block;
};

/// Immutable snapshots of designated nodes. Checkpointing the same node
/// again (a later iteration) replaces the previous snapshot.
class CheckpointStore {
 public:
  /// Stores (or replaces) a node's snapshot. Counts payload bytes.
  void Put(int node_id, std::vector<CheckpointBlock> blocks);

  /// The snapshot for `node_id`, or nullptr if never checkpointed.
  const std::vector<CheckpointBlock>* Find(int node_id) const;

  /// Drops a node's snapshot.
  void Forget(int node_id);

  /// Payload bytes currently held (latest snapshot of each node).
  int64_t total_bytes() const { return total_bytes_; }

  /// Payload bytes written over the store's lifetime (metric source).
  int64_t bytes_written() const { return bytes_written_; }

  size_t size() const { return snapshots_.size(); }

 private:
  std::unordered_map<int, std::vector<CheckpointBlock>> snapshots_;
  int64_t total_bytes_ = 0;
  int64_t bytes_written_ = 0;
};

}  // namespace dmac
