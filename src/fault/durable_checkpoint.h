// Durable, crash-consistent checkpoint store (docs/fault_tolerance.md,
// "Durability & restart").
//
// A checkpoint directory holds per-block files in the shared serialized
// block format (fault/durable_io.h) plus versioned manifests:
//
//   blk-<epoch>-<seq>.bin   one serialized block payload (deduplicated:
//                           Broadcast replicas share one file)
//   manifest-<epoch>        text manifest naming every block of the epoch,
//                           the scalar environment, and the resume step,
//                           ending in a line `end <fnv64>` over the body
//
// Commit protocol: write every block file, then the manifest, each by
// write-temp → fsync → atomic-rename. The manifest rename *is* the commit
// point — a crash anywhere earlier leaves the previous epoch intact and
// only `*.tmp` / unreferenced debris behind, which Open() garbage-collects.
// Open() scans manifests newest-first: a manifest without a valid footer is
// crash debris and is skipped (rolled back); a footer-valid manifest whose
// body or block files fail verification is *corruption* — Open falls back
// to the previous committed epoch if one verifies, and otherwise fails with
// a clean kDataLoss. It never yields a partially-restorable snapshot.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "fault/durable_io.h"
#include "matrix/block.h"

namespace dmac {

/// One block of a committed snapshot: where it lived in the cluster, its
/// content checksum, and the (directory-relative) file holding its bytes.
struct DurableBlock {
  int node_id = -1;
  int worker = 0;
  int64_t key = 0;
  uint64_t checksum = 0;
  std::string file;
};

/// A committed consistent cut of one execution: every live node's blocks,
/// the scalar environment (bit-exact), and the plan step the cut covers.
struct DurableSnapshot {
  int64_t epoch = 0;
  /// Last plan step id whose effects the snapshot covers; resume skips
  /// every step with id <= resume_step.
  int resume_step = -1;
  /// Checkpoint-cadence counter at commit time, restored on resume so the
  /// resumed run checkpoints at the same steps the clean run would.
  int64_t checkpoint_counter = 0;
  /// Scalar environment as (name, IEEE-754 bit pattern) — doubles round-
  /// trip bit-exactly, which text formatting would not guarantee.
  std::vector<std::pair<std::string, uint64_t>> scalars;
  /// Nodes produced by kLoad steps: they alias caller-owned bindings and
  /// are not serialized; resume re-executes their load steps instead.
  std::vector<int> reload_nodes;
  std::vector<DurableBlock> blocks;
};

/// A block queued for Commit(): the cluster position plus a reference to
/// the (immutable) payload. Entries sharing a payload pointer share one
/// block file.
struct PendingDurableBlock {
  int node_id = -1;
  int worker = 0;
  int64_t key = 0;
  uint64_t checksum = 0;
  std::shared_ptr<const Block> block;
};

/// Driver-side durable checkpoint store. Not thread-safe: only the driver
/// thread checkpoints and resumes, at step boundaries.
class DurableCheckpointStore {
 public:
  /// Opens (creating if needed) the store at `dir`, recovering the last
  /// committed epoch: partial manifests roll back, corrupt committed state
  /// falls back to the previous epoch or fails kDataLoss, and stale /
  /// partial files are garbage-collected. `io` is the fault-injection
  /// choke point every byte moves through.
  static Result<std::unique_ptr<DurableCheckpointStore>> Open(
      std::string dir, std::shared_ptr<StorageIO> io);

  /// The last committed snapshot, or nullptr if the store is fresh.
  const DurableSnapshot* committed() const {
    return committed_.has_value() ? &*committed_ : nullptr;
  }

  /// Reads one block of the committed snapshot and verifies its checksum.
  /// kDataLoss on a missing, corrupt, or mismatching file.
  [[nodiscard]] Result<Block> ReadBlock(const DurableBlock& ref) const;

  /// Commits a new epoch: writes every (deduplicated) block file, then the
  /// manifest — the atomic rename of which is the commit point. On any
  /// disk error this epoch's files are rolled back, the previous committed
  /// epoch stays intact, and the error is returned. On success the
  /// previous epoch's files are garbage-collected.
  [[nodiscard]] Status Commit(
      int resume_step, int64_t checkpoint_counter,
      const std::vector<std::pair<std::string, double>>& scalars,
      const std::vector<int>& reload_nodes,
      const std::vector<PendingDurableBlock>& blocks);

  /// Bytes successfully committed (block files + manifests) so far.
  int64_t bytes_written() const { return bytes_written_; }

  /// Epochs committed by this instance (not counting the one recovered by
  /// Open).
  int64_t epochs_committed() const { return epochs_committed_; }

  const std::string& dir() const { return dir_; }

 private:
  DurableCheckpointStore(std::string dir, std::shared_ptr<StorageIO> io)
      : dir_(std::move(dir)), io_(std::move(io)) {}

  std::string PathFor(const std::string& name) const {
    return dir_ + "/" + name;
  }

  const std::string dir_;
  const std::shared_ptr<StorageIO> io_;
  std::optional<DurableSnapshot> committed_;
  int64_t next_epoch_ = 1;
  int64_t bytes_written_ = 0;
  int64_t epochs_committed_ = 0;
};

}  // namespace dmac
