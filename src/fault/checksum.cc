#include "fault/checksum.h"

namespace dmac {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t HashInt(uint64_t v, uint64_t h) {
  return Fnv1a(&v, sizeof(v), h);
}

}  // namespace

uint64_t Fnv1a(const void* data, size_t len, uint64_t seed) {
  uint64_t h = seed == 0 ? kFnvOffset : seed;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t BlockChecksum(const Block& block) {
  uint64_t h = kFnvOffset;
  h = HashInt(block.IsDense() ? 1 : 2, h);
  h = HashInt(static_cast<uint64_t>(block.rows()), h);
  h = HashInt(static_cast<uint64_t>(block.cols()), h);
  if (block.IsDense()) {
    const DenseBlock& d = block.dense();
    h = Fnv1a(d.data(),
              sizeof(Scalar) * static_cast<size_t>(d.rows() * d.cols()), h);
  } else {
    const CscBlock& s = block.sparse();
    h = Fnv1a(s.col_ptr().data(), sizeof(int32_t) * s.col_ptr().size(), h);
    h = Fnv1a(s.row_idx().data(), sizeof(int32_t) * s.row_idx().size(), h);
    h = Fnv1a(s.values().data(), sizeof(Scalar) * s.values().size(), h);
  }
  return h;
}

}  // namespace dmac
