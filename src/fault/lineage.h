// Per-node lineage manifests for lost-partition recovery
// (docs/fault_tolerance.md).
//
// After each successful producing step the executor records, per plan node,
// which step produced it, which nodes it consumed, and the exact (worker,
// block key, checksum) layout of its partition store. The manifest is the
// ground truth the recovery path compares the cluster against: a store
// entry that is missing or hashes differently from its manifest record is
// damage, and the producer-step chain recorded here is the recipe for
// rebuilding it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dmac {

/// One block of a node's partition store at record time.
struct LineageBlockRecord {
  int worker = 0;
  int64_t key = 0;
  uint64_t checksum = 0;
};

/// A node's recorded provenance and healthy store layout.
struct NodeLineage {
  int node_id = -1;
  /// Plan step whose re-execution rebuilds this node.
  int producer_step = -1;
  /// Node ids the producer step consumed (recovery recurses through these).
  std::vector<int> inputs;
  /// Healthy layout, sorted by (worker, key) for deterministic comparison.
  std::vector<LineageBlockRecord> blocks;
};

/// Driver-side registry of NodeLineage records, keyed by node id. Recording
/// a node again (an iterative app rebinding a variable, or a recovery
/// rebuild) replaces the previous manifest.
class LineageTracker {
 public:
  /// Records (or replaces) a node's manifest. `blocks` is sorted here.
  void Record(NodeLineage lineage);

  /// The manifest for `node_id`, or nullptr if never recorded.
  const NodeLineage* Find(int node_id) const;

  /// Drops the manifest for `node_id` (node freed by the executor).
  void Forget(int node_id);

  size_t size() const { return records_.size(); }

 private:
  std::unordered_map<int, NodeLineage> records_;
};

}  // namespace dmac
