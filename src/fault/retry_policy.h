// Reusable retry/backoff policy (docs/fault_tolerance.md).
//
// Extracted from the executor's inline retry loop so that task retries and
// transfer retries share one arithmetic: capped exponential backoff with
// optional deterministic jitter. All delays are *simulated* seconds charged
// to recovery accounting — nothing here sleeps.
#pragma once

#include <cstdint>

#include "common/status.h"

namespace dmac {

/// Backoff schedule + retryability predicate for a bounded retry loop.
///
/// The zero-jitter, zero-cap, multiplier-2 configuration reproduces the
/// legacy executor arithmetic bit for bit:
/// `base_seconds * 2^min(attempt, 40)` — the exponent clamp keeps the
/// simulated delay finite for pathological retry budgets.
struct RetryPolicy {
  /// Attempts beyond the first before the caller gives up.
  int max_retries = 4;
  /// Backoff before retry 0 (simulated seconds).
  double base_seconds = 0.01;
  /// Per-attempt growth factor.
  double multiplier = 2.0;
  /// Upper bound on a single backoff; 0 = uncapped.
  double cap_seconds = 0;
  /// Additive jitter as a fraction of the (capped) backoff: the delay for
  /// attempt `a` gains a deterministic value in [0, jitter_fraction · b).
  /// 0 disables jitter entirely (and draws nothing).
  double jitter_fraction = 0;
  /// Seed of the jitter hash. Two policies with equal seeds produce equal
  /// jitter for equal attempts — determinism is what makes bit-identity
  /// sweeps possible with jitter on.
  uint64_t jitter_seed = 0;

  /// Simulated delay before retry `attempt` (0-based).
  [[nodiscard]] double BackoffSeconds(int attempt) const;

  /// True when `attempt` (0-based, counting retries already spent) is still
  /// within budget for a retryable status.
  [[nodiscard]] bool ShouldRetry(const Status& st, int attempt) const {
    return attempt < max_retries && Retryable(st);
  }

  /// The retryable set: transient unavailability and detected data loss
  /// (both recoverable through lineage). Everything else is terminal.
  [[nodiscard]] static bool Retryable(const Status& st) {
    return st.code() == StatusCode::kUnavailable ||
           st.code() == StatusCode::kDataLoss;
  }
};

}  // namespace dmac
