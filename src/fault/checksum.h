// Block payload checksums for corruption detection (docs/fault_tolerance.md).
//
// The partition stores attach an FNV-1a hash to every block they hold so
// that silent payload corruption (injected by the fault framework, or on a
// real cluster a flipped bit on disk or the wire) is *detected* rather than
// computed through. The hash covers the storage kind, the dimensions, and
// every payload array, so dense/sparse re-encodings of the same values hash
// differently — a block must round-trip bit-identically to verify.
#pragma once

#include <cstdint>

#include "matrix/block.h"

namespace dmac {

/// FNV-1a offset basis — the checksum of zero bytes. Never the checksum of
/// any real block (blocks always contribute their header fields).
inline constexpr uint64_t kNoChecksum = 0;

/// 64-bit FNV-1a over `len` bytes, continuing from `seed`.
uint64_t Fnv1a(const void* data, size_t len, uint64_t seed);

/// Checksum of a block: kind tag, dimensions, and payload arrays.
uint64_t BlockChecksum(const Block& block);

}  // namespace dmac
