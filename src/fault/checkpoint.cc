#include "fault/checkpoint.h"

#include <unordered_set>

namespace dmac {

namespace {

/// Payload bytes of a snapshot. Entries sharing one deep copy (replicas of
/// a Broadcast matrix) are counted once — that is what was actually copied.
int64_t PayloadBytes(const std::vector<CheckpointBlock>& blocks) {
  int64_t bytes = 0;
  std::unordered_set<const Block*> seen;
  for (const CheckpointBlock& b : blocks) {
    if (b.block && seen.insert(b.block.get()).second) {
      bytes += b.block->MemoryBytes();
    }
  }
  return bytes;
}

}  // namespace

void CheckpointStore::Put(int node_id, std::vector<CheckpointBlock> blocks) {
  const int64_t bytes = PayloadBytes(blocks);
  auto it = snapshots_.find(node_id);
  if (it != snapshots_.end()) total_bytes_ -= PayloadBytes(it->second);
  total_bytes_ += bytes;
  bytes_written_ += bytes;
  snapshots_[node_id] = std::move(blocks);
}

const std::vector<CheckpointBlock>* CheckpointStore::Find(int node_id) const {
  auto it = snapshots_.find(node_id);
  return it == snapshots_.end() ? nullptr : &it->second;
}

void CheckpointStore::Forget(int node_id) {
  auto it = snapshots_.find(node_id);
  if (it == snapshots_.end()) return;
  total_bytes_ -= PayloadBytes(it->second);
  snapshots_.erase(it);
}

}  // namespace dmac
