// Durable storage abstraction + disk-fault injection (docs/fault_tolerance.md).
//
// StorageIO is the single choke point through which the durable layers
// (DurableCheckpointStore, SpillStore) touch the filesystem, and therefore
// the single place disk faults are injected: short/torn writes, read-side
// bit flips, ENOSPC, fsync failure, and deterministic crash points. Every
// atomic write follows the write-temp → fsync → atomic-rename protocol, so
// a file named by its final path is always complete — torn writes can only
// ever leave `*.tmp` debris behind, which readers ignore and Open-time GC
// removes.
//
// Crash points: each WriteFileAtomic enumerates three deterministic write
// points (torn temp, synced temp before rename, after rename). The
// `DiskFaultSpec::crash_at` knob kills the process at the Nth point — by
// `std::_Exit(42)` in kHard mode (the crash-loop harness keys on that exit
// code), or by returning kInternal and refusing all further I/O in kSoft
// mode (so in-process tests can simulate the death without dying).
//
// Determinism note: StorageIO draws its probabilistic faults from a private
// RNG rather than the FaultInjector, deviating from the injector-owns-the-
// only-RNG rule (fault/injector.h) because spill stores exist before an
// injector does and must not perturb its draw sequence. The stream is
// seeded from `FaultSpec::seed` xor a fixed salt, so a (spec, seed) pair
// still yields exactly one disk-fault schedule.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/sync.h"
#include "fault/fault_spec.h"
#include "matrix/block.h"

namespace dmac {

/// Serializes `block` in the self-describing spill format (the byte layout
/// documented in governor/spill_store.h — magic "DMACSPL1", kind, dims,
/// payload, trailing FNV-1a checksum). SpillStore files and durable
/// checkpoint block files share this format bit-for-bit.
std::string SerializeBlock(const Block& block);

/// Parses a serialized block. `kDataLoss` on a corrupt or truncated buffer
/// or a checksum mismatch; a corrupt header is size-guarded against the
/// buffer length so it can never drive a giant allocation.
Result<Block> DeserializeBlock(const std::string& data, const std::string& context);

/// Filesystem facade with deterministic fault injection. Thread-safe (the
/// fault-draw state is mutex-guarded); in practice only the driver thread
/// writes. One instance per store keeps the write-point enumeration and
/// fault schedule independent of unrelated stores.
class StorageIO {
 public:
  /// What an injected `crash_at` does when it fires.
  enum class CrashMode {
    kHard,  // std::_Exit(42): the crash-loop harness's contract
    kSoft,  // return kInternal and fail all subsequent ops (for tests)
  };

  /// Fault-free storage.
  StorageIO();

  /// Storage with the given fault distribution. `seed` fixes the fault
  /// schedule (pass FaultSpec::seed xor a salt, see the header comment).
  StorageIO(const DiskFaultSpec& spec, uint64_t seed,
            CrashMode mode = CrashMode::kHard);

  /// Creates `dir` (and parents). Idempotent.
  [[nodiscard]] Status CreateDir(const std::string& dir) DMAC_EXCLUDES(mu_);

  /// Atomically replaces `path` with `data`: write `path.tmp`, fsync,
  /// rename. On any failure the temp file is removed and `path` is
  /// untouched (except after an injected crash, which by design leaves the
  /// torn temp behind). Error codes follow the disk-fault taxonomy:
  /// kResourceExhausted for ENOSPC, kUnavailable for short writes and
  /// fsync failures, kInternal after an injected (soft) crash.
  [[nodiscard]] Status WriteFileAtomic(const std::string& path,
                                       const std::string& data)
      DMAC_EXCLUDES(mu_);

  /// Reads the whole file. kNotFound if missing, kUnavailable on a read
  /// error. A drawn read-side bit flip corrupts one bit of the returned
  /// buffer — detection is the caller's checksum's job.
  [[nodiscard]] Result<std::string> ReadFile(const std::string& path)
      DMAC_EXCLUDES(mu_);

  /// Removes a file if it exists (best-effort, never fails).
  void Remove(const std::string& path);

  /// Sorted file names (not paths) directly under `dir`; empty if the
  /// directory does not exist.
  [[nodiscard]] Result<std::vector<std::string>> List(
      const std::string& dir) const;

  /// Write points enumerated so far (the domain of `crash_at`).
  int64_t write_points() const DMAC_EXCLUDES(mu_);

  /// Probabilistic disk faults drawn so far (not counting the crash).
  int64_t faults_injected() const DMAC_EXCLUDES(mu_);

  /// True after a soft injected crash: every further op fails kInternal,
  /// modeling that the process died at the crash point — nothing may be
  /// written (or cleaned up) after it.
  bool dead() const DMAC_EXCLUDES(mu_);

 private:
  /// Advances the write-point counter; returns the point number when the
  /// crash fires at this site (0 otherwise). The call site prepares the
  /// on-disk state the crash should leave behind, then calls Crash().
  [[nodiscard]] int64_t AdvanceWritePoint() DMAC_EXCLUDES(mu_);

  /// Fires the injected crash: std::_Exit(42) in kHard mode, or marks the
  /// instance dead and returns kInternal in kSoft mode.
  [[nodiscard]] Status Crash(int64_t point) DMAC_EXCLUDES(mu_);

  [[nodiscard]] bool Draw(double prob) DMAC_EXCLUDES(mu_);
  [[nodiscard]] Status DeadCheck() const DMAC_EXCLUDES(mu_);

  const DiskFaultSpec spec_;
  const CrashMode mode_;

  mutable Mutex mu_;
  Rng rng_ DMAC_GUARDED_BY(mu_);
  int64_t write_points_ DMAC_GUARDED_BY(mu_) = 0;
  int64_t faults_injected_ DMAC_GUARDED_BY(mu_) = 0;
  bool dead_ DMAC_GUARDED_BY(mu_) = false;
};

}  // namespace dmac
