#include "fault/fault_spec.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace dmac {

namespace {

Status CheckProb(const char* name, double v) {
  if (v < 0 || v > 1) {
    return Status::Invalid(std::string(name) + " must be in [0, 1], got " +
                           std::to_string(v));
  }
  return Status::Ok();
}

/// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

Status ParseBool(const std::string& key, const std::string& value,
                 bool* out) {
  if (value == "true" || value == "1") {
    *out = true;
    return Status::Ok();
  }
  if (value == "false" || value == "0") {
    *out = false;
    return Status::Ok();
  }
  return Status::Invalid(key + ": expected true/false, got '" + value + "'");
}

Status ParseDouble(const std::string& key, const std::string& value,
                   double* out) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::Invalid(key + ": expected a number, got '" + value + "'");
  }
  *out = v;
  return Status::Ok();
}

}  // namespace

Status FaultSpec::Validate() const {
  DMAC_RETURN_NOT_OK(CheckProb("crash_prob", crash_prob));
  DMAC_RETURN_NOT_OK(CheckProb("lost_block_prob", lost_block_prob));
  DMAC_RETURN_NOT_OK(CheckProb("corrupt_prob", corrupt_prob));
  DMAC_RETURN_NOT_OK(CheckProb("transient_prob", transient_prob));
  DMAC_RETURN_NOT_OK(CheckProb("straggler_prob", straggler_prob));
  if (straggler_delay_seconds < 0) {
    return Status::Invalid("straggler_delay_seconds must be >= 0");
  }
  if (max_retries < 0) {
    return Status::Invalid("max_retries must be >= 0");
  }
  if (backoff_base_seconds < 0) {
    return Status::Invalid("backoff_base_seconds must be >= 0");
  }
  return Status::Ok();
}

Result<FaultSpec> ParseFaultSpec(const std::string& text) {
  FaultSpec spec;
  spec.enabled = true;
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::Invalid("fault spec line " + std::to_string(lineno) +
                             ": expected 'key = value', got '" + line + "'");
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (key == "enabled") {
      DMAC_RETURN_NOT_OK(ParseBool(key, value, &spec.enabled));
    } else if (key == "seed") {
      spec.seed = static_cast<uint64_t>(std::strtoull(value.c_str(),
                                                      nullptr, 10));
    } else if (key == "crash_prob") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.crash_prob));
    } else if (key == "lost_block_prob") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.lost_block_prob));
    } else if (key == "corrupt_prob") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.corrupt_prob));
    } else if (key == "transient_prob") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.transient_prob));
    } else if (key == "straggler_prob") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.straggler_prob));
    } else if (key == "straggler_delay_seconds") {
      DMAC_RETURN_NOT_OK(
          ParseDouble(key, value, &spec.straggler_delay_seconds));
    } else if (key == "speculate") {
      DMAC_RETURN_NOT_OK(ParseBool(key, value, &spec.speculate));
    } else if (key == "max_retries") {
      spec.max_retries = std::atoi(value.c_str());
    } else if (key == "backoff_base_seconds") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.backoff_base_seconds));
    } else if (key == "permanent_fail_step") {
      spec.permanent_fail_step = std::atoi(value.c_str());
    } else {
      return Status::Invalid("fault spec line " + std::to_string(lineno) +
                             ": unknown key '" + key + "'");
    }
  }
  DMAC_RETURN_NOT_OK(spec.Validate());
  return spec;
}

Result<FaultSpec> LoadFaultSpecFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open fault spec " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ParseFaultSpec(buffer.str());
}

}  // namespace dmac
