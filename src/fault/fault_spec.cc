#include "fault/fault_spec.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace dmac {

namespace {

Status CheckProb(const char* name, double v) {
  if (v < 0 || v > 1) {
    return Status::Invalid(std::string(name) + " must be in [0, 1], got " +
                           std::to_string(v));
  }
  return Status::Ok();
}

/// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

Status ParseBool(const std::string& key, const std::string& value,
                 bool* out) {
  if (value == "true" || value == "1") {
    *out = true;
    return Status::Ok();
  }
  if (value == "false" || value == "0") {
    *out = false;
    return Status::Ok();
  }
  return Status::Invalid(key + ": expected true/false, got '" + value + "'");
}

Status ParseDouble(const std::string& key, const std::string& value,
                   double* out) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::Invalid(key + ": expected a number, got '" + value + "'");
  }
  *out = v;
  return Status::Ok();
}

}  // namespace

Status NetFaultSpec::Validate() const {
  DMAC_RETURN_NOT_OK(CheckProb("net_drop_prob", drop_prob));
  DMAC_RETURN_NOT_OK(CheckProb("net_dup_prob", dup_prob));
  DMAC_RETURN_NOT_OK(CheckProb("net_reorder_prob", reorder_prob));
  DMAC_RETURN_NOT_OK(CheckProb("net_delay_prob", delay_prob));
  DMAC_RETURN_NOT_OK(CheckProb("net_partition_prob", partition_prob));
  if (delay_seconds < 0) {
    return Status::Invalid("net_delay_seconds must be >= 0");
  }
  if (partition_drops < 1) {
    return Status::Invalid("net_partition_drops must be >= 1");
  }
  return Status::Ok();
}

Status DiskFaultSpec::Validate() const {
  DMAC_RETURN_NOT_OK(CheckProb("disk_short_write_prob", short_write_prob));
  DMAC_RETURN_NOT_OK(CheckProb("disk_read_flip_prob", read_flip_prob));
  DMAC_RETURN_NOT_OK(CheckProb("disk_enospc_prob", enospc_prob));
  DMAC_RETURN_NOT_OK(CheckProb("disk_fsync_fail_prob", fsync_fail_prob));
  if (crash_at != -1 && crash_at < 1) {
    return Status::Invalid("crash_at must be >= 1 (write points are "
                           "1-based) or -1 to disable, got " +
                           std::to_string(crash_at));
  }
  return Status::Ok();
}

Status FaultSpec::Validate() const {
  DMAC_RETURN_NOT_OK(CheckProb("crash_prob", crash_prob));
  DMAC_RETURN_NOT_OK(CheckProb("lost_block_prob", lost_block_prob));
  DMAC_RETURN_NOT_OK(CheckProb("corrupt_prob", corrupt_prob));
  DMAC_RETURN_NOT_OK(CheckProb("transient_prob", transient_prob));
  DMAC_RETURN_NOT_OK(CheckProb("straggler_prob", straggler_prob));
  if (straggler_delay_seconds < 0) {
    return Status::Invalid("straggler_delay_seconds must be >= 0");
  }
  if (max_retries < 0) {
    return Status::Invalid("max_retries must be >= 0");
  }
  if (backoff_base_seconds < 0) {
    return Status::Invalid("backoff_base_seconds must be >= 0");
  }
  DMAC_RETURN_NOT_OK(CheckProb("death_prob", death_prob));
  if (death_step >= 0 && death_worker < 0) {
    return Status::Invalid("death_worker must be >= 0");
  }
  DMAC_RETURN_NOT_OK(disk.Validate());
  return net.Validate();
}

Result<FaultSpec> ParseFaultSpec(const std::string& text) {
  FaultSpec spec;
  spec.enabled = true;
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::Invalid("fault spec line " + std::to_string(lineno) +
                             ": expected 'key = value', got '" + line + "'");
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (key == "enabled") {
      DMAC_RETURN_NOT_OK(ParseBool(key, value, &spec.enabled));
    } else if (key == "seed") {
      spec.seed = static_cast<uint64_t>(std::strtoull(value.c_str(),
                                                      nullptr, 10));
    } else if (key == "crash_prob") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.crash_prob));
    } else if (key == "lost_block_prob") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.lost_block_prob));
    } else if (key == "corrupt_prob") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.corrupt_prob));
    } else if (key == "transient_prob") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.transient_prob));
    } else if (key == "straggler_prob") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.straggler_prob));
    } else if (key == "straggler_delay_seconds") {
      DMAC_RETURN_NOT_OK(
          ParseDouble(key, value, &spec.straggler_delay_seconds));
    } else if (key == "speculate") {
      DMAC_RETURN_NOT_OK(ParseBool(key, value, &spec.speculate));
    } else if (key == "max_retries") {
      spec.max_retries = std::atoi(value.c_str());
    } else if (key == "backoff_base_seconds") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.backoff_base_seconds));
    } else if (key == "permanent_fail_step") {
      spec.permanent_fail_step = std::atoi(value.c_str());
    } else if (key == "death_prob") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.death_prob));
    } else if (key == "death_step") {
      spec.death_step = std::atoi(value.c_str());
    } else if (key == "death_worker") {
      spec.death_worker = std::atoi(value.c_str());
    } else if (key == "death_in_flight") {
      DMAC_RETURN_NOT_OK(ParseBool(key, value, &spec.death_in_flight));
    } else if (key == "net_drop_prob") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.net.drop_prob));
    } else if (key == "net_dup_prob") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.net.dup_prob));
    } else if (key == "net_reorder_prob") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.net.reorder_prob));
    } else if (key == "net_delay_prob") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.net.delay_prob));
    } else if (key == "net_delay_seconds") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.net.delay_seconds));
    } else if (key == "net_partition_prob") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.net.partition_prob));
    } else if (key == "net_partition_drops") {
      spec.net.partition_drops = std::atoi(value.c_str());
    } else if (key == "disk_short_write_prob") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.disk.short_write_prob));
    } else if (key == "disk_read_flip_prob") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.disk.read_flip_prob));
    } else if (key == "disk_enospc_prob") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.disk.enospc_prob));
    } else if (key == "disk_fsync_fail_prob") {
      DMAC_RETURN_NOT_OK(ParseDouble(key, value, &spec.disk.fsync_fail_prob));
    } else if (key == "crash_at") {
      spec.disk.crash_at = std::atoi(value.c_str());
    } else if (key == "crash_soft") {
      DMAC_RETURN_NOT_OK(ParseBool(key, value, &spec.disk.crash_soft));
    } else {
      return Status::Invalid("fault spec line " + std::to_string(lineno) +
                             ": unknown key '" + key + "'");
    }
  }
  DMAC_RETURN_NOT_OK(spec.Validate());
  return spec;
}

Result<FaultSpec> LoadFaultSpecFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open fault spec " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ParseFaultSpec(buffer.str());
}

}  // namespace dmac
