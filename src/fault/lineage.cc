#include "fault/lineage.h"

#include <algorithm>

namespace dmac {

void LineageTracker::Record(NodeLineage lineage) {
  std::sort(lineage.blocks.begin(), lineage.blocks.end(),
            [](const LineageBlockRecord& a, const LineageBlockRecord& b) {
              return a.worker != b.worker ? a.worker < b.worker
                                          : a.key < b.key;
            });
  records_[lineage.node_id] = std::move(lineage);
}

const NodeLineage* LineageTracker::Find(int node_id) const {
  auto it = records_.find(node_id);
  return it == records_.end() ? nullptr : &it->second;
}

void LineageTracker::Forget(int node_id) { records_.erase(node_id); }

}  // namespace dmac
