// Named runtime metrics (docs/observability.md).
//
// A MetricRegistry holds one instrument per entry of the static metric
// catalog: monotonic counters, last-value gauges, and log-bucketed
// histograms. Instruments are plain atomics, safe to update from any worker
// thread, and permanently addressable — call-sites cache the pointer once
// and Reset() only zeroes values. While the registry is disabled every
// update is one relaxed atomic load and an early return.
//
// Every metric name that can ever appear in a dump is listed in
// MetricCatalog() and documented in docs/observability.md; a unit test
// enforces catalog <-> documentation parity.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace dmac {

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Catalog entry: the single source of truth for a metric's identity.
struct MetricSpec {
  const char* name;  // dotted, e.g. "exec.shuffle.bytes"
  MetricKind kind;
  const char* unit;  // "bytes", "rounds", "seconds", "tasks", "blocks"
  const char* help;  // one-line meaning, mirrored in the docs
};

/// Every metric this build can emit, in dump order.
const std::vector<MetricSpec>& MetricCatalog();

class MetricRegistry;

/// Monotonic counter (doubles, so byte totals beyond 2^53 are the caller's
/// problem — the simulator never gets close).
class Counter {
 public:
  void Add(double delta);
  void Increment() { Add(1.0); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
};

/// Last-written-value gauge.
class Gauge {
 public:
  void Set(double value);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
};

/// Histogram over positive values with power-of-two buckets spanning
/// [1 ns, ~4.4 s] when observing seconds (values outside clamp to the first
/// or last bucket). Tracks count, sum, and max exactly; quantiles are
/// bucket-resolution estimates.
class Histogram {
 public:
  static constexpr int kNumBuckets = 32;
  /// Smallest distinguishable value; bucket i covers
  /// [kMinValue·2^i, kMinValue·2^(i+1)).
  static constexpr double kMinValue = 1e-9;

  void Observe(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const int64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  /// Upper edge of the bucket holding quantile `q` in [0,1]; 0 when empty.
  double Quantile(double q) const;

 private:
  friend class MetricRegistry;
  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void Reset();

  const std::atomic<bool>* enabled_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
};

/// One exported metric value (flattened for the JSON/CSV dumps).
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::string unit;
  double value = 0;      // counter/gauge value; histogram sum
  int64_t count = 0;     // histogram only
  double mean = 0;       // histogram only
  double p50 = 0;        // histogram only
  double p99 = 0;        // histogram only
  double max = 0;        // histogram only
};

/// Process-wide registry; instruments are created up front from the
/// catalog. All methods are thread-safe.
class MetricRegistry {
 public:
  static MetricRegistry& Global();

  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Instrument lookup by catalog name. The name must exist in the catalog
  /// with the matching kind; unknown names abort (they indicate a call-site
  /// out of sync with the catalog). Pointers stay valid forever.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Zeroes every instrument (pointers stay valid).
  void Reset();

  /// Snapshot of every instrument with a non-zero footprint (counters with
  /// value 0 and never-observed histograms are skipped so dumps only show
  /// what the run actually touched). Catalog order.
  std::vector<MetricValue> Collect() const;

  /// Full dumps of Collect() — `{"metrics":[...]}` / CSV with header.
  std::string ToJson() const;
  std::string ToCsv() const;

  MetricRegistry();
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

 private:
  struct Instrument;
  const Instrument* Find(const std::string& name, MetricKind kind) const;

  std::atomic<bool> enabled_{false};
  std::vector<Instrument*> instruments_;  // catalog order, never freed
};

// ---- catalog names -------------------------------------------------------
// Use these constants at call sites; each must appear in MetricCatalog().

inline constexpr const char* kMetricShuffleBytes = "exec.shuffle.bytes";
inline constexpr const char* kMetricBroadcastBytes = "exec.broadcast.bytes";
inline constexpr const char* kMetricShuffleRounds = "exec.shuffle.rounds";
inline constexpr const char* kMetricBroadcastRounds = "exec.broadcast.rounds";
inline constexpr const char* kMetricStepsExecuted = "exec.steps";
inline constexpr const char* kMetricStages = "exec.stages";
inline constexpr const char* kMetricPeakMemoryBytes = "exec.peak_memory.bytes";
inline constexpr const char* kMetricEngineTasks = "engine.tasks";
inline constexpr const char* kMetricQueueWaitSeconds =
    "engine.queue_wait.seconds";
inline constexpr const char* kMetricTaskSecondsMultiply =
    "engine.task.seconds.multiply";
inline constexpr const char* kMetricTaskSecondsTranspose =
    "engine.task.seconds.transpose";
inline constexpr const char* kMetricTaskSecondsElementwise =
    "engine.task.seconds.elementwise";
inline constexpr const char* kMetricTaskSecondsAggregate =
    "engine.task.seconds.aggregate";
inline constexpr const char* kMetricGemmFlops = "engine.gemm_flops";
inline constexpr const char* kMetricGemmPackSeconds =
    "engine.gemm.pack.seconds";
inline constexpr const char* kMetricGemmTasks = "engine.gemm.tasks";
inline constexpr const char* kMetricPoolAcquires = "pool.acquires";
inline constexpr const char* kMetricPoolReuses = "pool.reuses";
inline constexpr const char* kMetricPoolDiscards = "pool.discards";
inline constexpr const char* kMetricPoolOutstanding = "pool.outstanding";
inline constexpr const char* kMetricPoolPeakBytes = "pool.peak.bytes";
inline constexpr const char* kMetricPlanDecomposeSeconds =
    "plan.decompose.seconds";
inline constexpr const char* kMetricPlanGenerateSeconds =
    "plan.generate.seconds";
inline constexpr const char* kMetricPlanVerifySeconds = "plan.verify.seconds";
inline constexpr const char* kMetricPlanSearchCandidates =
    "planner.search.candidates";
inline constexpr const char* kMetricPlanSearchPlanned =
    "planner.search.planned";
inline constexpr const char* kMetricPlanSearchRejected =
    "planner.search.rejected";
inline constexpr const char* kMetricPlanSearchSeconds =
    "planner.search.seconds";
inline constexpr const char* kMetricPlanEstimateDrift =
    "planner.estimate.drift";
inline constexpr const char* kMetricPlanEstimateDriftEvents =
    "planner.estimate.drift.events";
inline constexpr const char* kMetricPlanRaceWinner = "planner.race.winner";
inline constexpr const char* kMetricPlanRaceProbeSeconds =
    "planner.race.probe.seconds";
inline constexpr const char* kMetricFaultInjected = "fault.injected";
inline constexpr const char* kMetricFaultRetries = "fault.retries";
inline constexpr const char* kMetricFaultRecomputedBlocks =
    "fault.recomputed.blocks";
inline constexpr const char* kMetricFaultRestoredBlocks =
    "fault.restored.blocks";
inline constexpr const char* kMetricFaultSpeculatedTasks =
    "fault.speculated.tasks";
inline constexpr const char* kMetricFaultCheckpointBytes =
    "fault.checkpoint.bytes";
inline constexpr const char* kMetricFaultRecoverySeconds =
    "fault.recovery.seconds";
inline constexpr const char* kMetricFaultCheckpointDurableBytes =
    "fault.checkpoint.durable.bytes";
inline constexpr const char* kMetricFaultCheckpointEpochs =
    "fault.checkpoint.epochs";
inline constexpr const char* kMetricFaultCheckpointFailures =
    "fault.checkpoint.failures";
inline constexpr const char* kMetricFaultResumeRestoredBlocks =
    "fault.resume.restored.blocks";
inline constexpr const char* kMetricFaultResumeSeconds =
    "fault.resume.seconds";
inline constexpr const char* kMetricFaultDiskFaults = "fault.disk.faults";
inline constexpr const char* kMetricNetMessages = "fault.net.messages";
inline constexpr const char* kMetricNetRetransmits = "fault.net.retransmits";
inline constexpr const char* kMetricNetRetransBytes =
    "fault.net.retrans.bytes";
inline constexpr const char* kMetricNetDuplicates = "fault.net.duplicates";
inline constexpr const char* kMetricNetReordered = "fault.net.reordered";
inline constexpr const char* kMetricNetDelaySeconds =
    "fault.net.delay.seconds";
inline constexpr const char* kMetricNetPartitions = "fault.net.partitions";
inline constexpr const char* kMetricNetStaleFenced = "fault.net.stale.fenced";
inline constexpr const char* kMetricNetStaleApplied =
    "fault.net.stale.applied";
inline constexpr const char* kMetricMembershipEpoch = "membership.epoch";
inline constexpr const char* kMetricMembershipWorkersDead =
    "membership.workers.dead";
inline constexpr const char* kMetricMembershipDetectionSeconds =
    "membership.detection.seconds";
inline constexpr const char* kMetricGovernorSpillBytes = "governor.spill.bytes";
inline constexpr const char* kMetricGovernorSpillBlocks =
    "governor.spill.blocks";
inline constexpr const char* kMetricGovernorRestoreBytes =
    "governor.restore.bytes";
inline constexpr const char* kMetricGovernorRestoreBlocks =
    "governor.restore.blocks";
inline constexpr const char* kMetricGovernorBudgetPeakBytes =
    "governor.budget.peak.bytes";
inline constexpr const char* kMetricGovernorAdmitted =
    "governor.admission.admitted";
inline constexpr const char* kMetricGovernorRejected =
    "governor.admission.rejected";
inline constexpr const char* kMetricGovernorQueueDepth =
    "governor.admission.queue_depth";
inline constexpr const char* kMetricGovernorCancelLatencySeconds =
    "governor.cancel.latency.seconds";

}  // namespace dmac
