#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace dmac {

namespace {

/// Lock-free add for atomic doubles (no fetch_add before C++20 on all
/// toolchains; the CAS loop is equivalent).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (current < value &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

const std::vector<MetricSpec>& MetricCatalog() {
  static const std::vector<MetricSpec>* catalog = new std::vector<MetricSpec>{
      {kMetricShuffleBytes, MetricKind::kCounter, "bytes",
       "bytes moved between distinct workers by shuffles (partition, CPMM "
       "aggregation, crossed row/col sums, reduce)"},
      {kMetricBroadcastBytes, MetricKind::kCounter, "bytes",
       "bytes replicated to all workers by broadcasts (incl. broadcast "
       "loads)"},
      {kMetricShuffleRounds, MetricKind::kCounter, "rounds",
       "shuffle communication rounds (one per shuffling step)"},
      {kMetricBroadcastRounds, MetricKind::kCounter, "rounds",
       "broadcast communication rounds"},
      {kMetricStepsExecuted, MetricKind::kCounter, "steps",
       "plan steps executed"},
      {kMetricStages, MetricKind::kGauge, "stages",
       "barrier stages of the last executed plan"},
      {kMetricPeakMemoryBytes, MetricKind::kGauge, "bytes",
       "peak tracked block memory over the last execution"},
      {kMetricEngineTasks, MetricKind::kCounter, "tasks",
       "block tasks run by the worker-local engine"},
      {kMetricQueueWaitSeconds, MetricKind::kHistogram, "seconds",
       "time a block task waited in the worker task queue before a thread "
       "picked it up"},
      {kMetricTaskSecondsMultiply, MetricKind::kHistogram, "seconds",
       "per-task kernel time of block-multiply tasks"},
      {kMetricTaskSecondsTranspose, MetricKind::kHistogram, "seconds",
       "per-task kernel time of block-transpose tasks"},
      {kMetricTaskSecondsElementwise, MetricKind::kHistogram, "seconds",
       "per-task kernel time of cell-wise, scalar, and unary tasks"},
      {kMetricTaskSecondsAggregate, MetricKind::kHistogram, "seconds",
       "per-task kernel time of partial-sum aggregation tasks (CPMM phase "
       "2, row/col-sum merges)"},
      {kMetricGemmFlops, MetricKind::kCounter, "flops",
       "floating-point operations executed by the multiply kernels (2mnk "
       "per dense GEMM, 2 per sparse multiply-add)"},
      {kMetricGemmPackSeconds, MetricKind::kHistogram, "seconds",
       "per-multiply-task time spent packing/staging GEMM operand panels "
       "and converting sparse formats (the pack-vs-compute split of "
       "docs/kernels.md)"},
      {kMetricGemmTasks, MetricKind::kCounter, "tasks",
       "parallel GEMM tile tasks run by the threaded dense macro-kernel "
       "(0 while every multiply takes the serial path)"},
      {kMetricPoolAcquires, MetricKind::kCounter, "blocks",
       "dense accumulator blocks acquired from the result buffer pool"},
      {kMetricPoolReuses, MetricKind::kCounter, "blocks",
       "acquires satisfied by a recycled block instead of an allocation"},
      {kMetricPoolDiscards, MetricKind::kCounter, "blocks",
       "released blocks dropped because the shape's idle slot was full"},
      {kMetricPlanDecomposeSeconds, MetricKind::kGauge, "seconds",
       "driver time of the last program decomposition"},
      {kMetricPlanGenerateSeconds, MetricKind::kGauge, "seconds",
       "driver time of the last plan generation (Algorithm 1, incl. the "
       "verifier when enabled)"},
      {kMetricPlanVerifySeconds, MetricKind::kGauge, "seconds",
       "driver time of the last static plan verification (all analysis "
       "passes)"},
      {kMetricPlanSearchCandidates, MetricKind::kCounter, "plans",
       "complete candidate plans costed and ranked by the plan search"},
      {kMetricPlanSearchPlanned, MetricKind::kCounter, "plans",
       "GeneratePlan invocations made by the plan search (window scoring "
       "plus full-program finalists)"},
      {kMetricPlanSearchRejected, MetricKind::kCounter, "plans",
       "search candidates dropped by a planning or verification failure"},
      {kMetricPlanSearchSeconds, MetricKind::kGauge, "seconds",
       "driver time of the last cost-based plan search"},
      {kMetricPlanEstimateDrift, MetricKind::kGauge, "ratio",
       "estimated-vs-measured communication ratio of the last run "
       "(max/min, so always >= 1; 1 = perfect estimate)"},
      {kMetricPlanEstimateDriftEvents, MetricKind::kCounter, "events",
       "runs whose measured communication diverged more than 4x from the "
       "plan-time estimate (worst-case sparsity pessimism made visible)"},
      {kMetricPlanRaceWinner, MetricKind::kGauge, "index",
       "finalist index that won the last top-2 plan race (0 = the "
       "search's best estimate also measured fastest)"},
      {kMetricPlanRaceProbeSeconds, MetricKind::kGauge, "seconds",
       "wall time of the last race's one-iteration probe runs (both "
       "finalists)"},
      {kMetricFaultInjected, MetricKind::kCounter, "faults",
       "faults injected by the fault framework (crashes, lost blocks, "
       "corruptions, transient failures, stragglers)"},
      {kMetricFaultRetries, MetricKind::kCounter, "retries",
       "plan-step attempts repeated after a retryable failure"},
      {kMetricFaultRecomputedBlocks, MetricKind::kCounter, "blocks",
       "damaged blocks rebuilt by re-running their lineage producer steps"},
      {kMetricFaultRestoredBlocks, MetricKind::kCounter, "blocks",
       "damaged blocks restored from a checkpoint or a surviving broadcast "
       "replica instead of recomputation"},
      {kMetricFaultSpeculatedTasks, MetricKind::kCounter, "tasks",
       "straggler worker tasks re-executed speculatively on a backup "
       "worker"},
      {kMetricFaultCheckpointBytes, MetricKind::kCounter, "bytes",
       "block payload bytes deep-copied into the driver checkpoint store"},
      {kMetricFaultRecoverySeconds, MetricKind::kCounter, "seconds",
       "simulated worker time spent on recovery instead of useful compute "
       "(retried attempts, backoff waits, abandoned straggler attempts)"},
      {kMetricFaultCheckpointDurableBytes, MetricKind::kCounter, "bytes",
       "bytes committed to durable checkpoint storage (block files plus "
       "manifests)"},
      {kMetricFaultCheckpointEpochs, MetricKind::kCounter, "epochs",
       "durable checkpoint epochs committed (manifest atomically renamed)"},
      {kMetricFaultCheckpointFailures, MetricKind::kCounter, "failures",
       "durable checkpoint commits that failed on a disk fault (the run "
       "continued on the previous epoch)"},
      {kMetricFaultResumeRestoredBlocks, MetricKind::kCounter, "blocks",
       "blocks read back from a durable checkpoint on crash-restart resume"},
      {kMetricFaultResumeSeconds, MetricKind::kCounter, "seconds",
       "wall time spent restoring a durable snapshot on resume"},
      {kMetricFaultDiskFaults, MetricKind::kCounter, "faults",
       "disk faults drawn by the StorageIO layer (short writes, bit flips, "
       "ENOSPC, fsync failures)"},
      {kMetricPoolOutstanding, MetricKind::kGauge, "blocks",
       "buffer-pool blocks currently acquired and not yet released, across "
       "all live pools (must drain to zero after every query)"},
      {kMetricPoolPeakBytes, MetricKind::kGauge, "bytes",
       "high-water mark of bytes held by buffer pools (outstanding plus "
       "idle blocks) since the last reset"},
      {kMetricGovernorSpillBytes, MetricKind::kCounter, "bytes",
       "block payload bytes written to spill files under memory pressure"},
      {kMetricGovernorSpillBlocks, MetricKind::kCounter, "blocks",
       "blocks spilled to disk under memory pressure"},
      {kMetricGovernorRestoreBytes, MetricKind::kCounter, "bytes",
       "block payload bytes read back (checksum-verified) from spill files"},
      {kMetricGovernorRestoreBlocks, MetricKind::kCounter, "blocks",
       "blocks restored from spill files"},
      {kMetricGovernorBudgetPeakBytes, MetricKind::kGauge, "bytes",
       "peak bytes charged against the last query's memory budget (stores "
       "plus pool accumulators)"},
      {kMetricGovernorAdmitted, MetricKind::kCounter, "queries",
       "queries admitted by the session's admission controller"},
      {kMetricGovernorRejected, MetricKind::kCounter, "queries",
       "queries rejected at admission (estimate over quota or queue full)"},
      {kMetricGovernorQueueDepth, MetricKind::kGauge, "queries",
       "queries waiting in the admission queue right now"},
      {kMetricGovernorCancelLatencySeconds, MetricKind::kHistogram, "seconds",
       "wall time from a cancel/deadline firing to the query's terminal "
       "status"},
      {kMetricNetMessages, MetricKind::kCounter, "messages",
       "transfers routed through the fault-injecting network layer"},
      {kMetricNetRetransmits, MetricKind::kCounter, "messages",
       "dropped transfers retransmitted until delivered"},
      {kMetricNetRetransBytes, MetricKind::kCounter, "bytes",
       "bytes moved again by network retransmits (recovery-side, never in "
       "the useful-comm totals)"},
      {kMetricNetDuplicates, MetricKind::kCounter, "messages",
       "duplicate deliveries absorbed by sequence-number dedup"},
      {kMetricNetReordered, MetricKind::kCounter, "messages",
       "out-of-order arrivals absorbed by sorted (sender, sequence) "
       "delivery"},
      {kMetricNetDelaySeconds, MetricKind::kCounter, "seconds",
       "simulated latency added by injected delays and retransmit backoff"},
      {kMetricNetPartitions, MetricKind::kCounter, "partitions",
       "transient bidirectional network partitions opened"},
      {kMetricNetStaleFenced, MetricKind::kCounter, "messages",
       "dead-sender transfers fenced by the membership epoch (the "
       "zombie-straggler double-write, prevented)"},
      {kMetricNetStaleApplied, MetricKind::kCounter, "messages",
       "audit counter: dead-sender transfers applied anyway (must stay 0)"},
      {kMetricMembershipEpoch, MetricKind::kGauge, "epoch",
       "membership epoch after the last run (1 = no membership changes)"},
      {kMetricMembershipWorkersDead, MetricKind::kGauge, "workers",
       "workers permanently dead at the end of the last run"},
      {kMetricMembershipDetectionSeconds, MetricKind::kCounter, "seconds",
       "simulated heartbeat-detector latency from death to declaration"},
  };
  return *catalog;
}

// ---- instruments ---------------------------------------------------------

void Counter::Add(double delta) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  AtomicAdd(&value_, delta);
}

void Gauge::Set(double value) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  value_.store(value, std::memory_order_relaxed);
}

void Histogram::Observe(double value) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  int bucket = 0;
  if (value >= kMinValue) {
    bucket = static_cast<int>(std::floor(std::log2(value / kMinValue)));
    if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
  }
  buckets_[static_cast<size_t>(bucket)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMax(&max_, value);
}

double Histogram::Quantile(double q) const {
  const int64_t n = count();
  if (n == 0) return 0;
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(n - 1));
  for (int i = 0; i < kNumBuckets; ++i) {
    rank -= buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (rank < 0) return kMinValue * std::pow(2.0, i + 1);  // bucket's edge
  }
  return max();
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// ---- registry ------------------------------------------------------------

struct MetricRegistry::Instrument {
  const MetricSpec* spec;
  // Exactly one of these is non-null, matching spec->kind.
  Counter* counter = nullptr;
  Gauge* gauge = nullptr;
  Histogram* histogram = nullptr;
};

MetricRegistry::MetricRegistry() {
  for (const MetricSpec& spec : MetricCatalog()) {
    auto* inst = new Instrument{&spec};
    switch (spec.kind) {
      case MetricKind::kCounter:
        inst->counter = new Counter(&enabled_);
        break;
      case MetricKind::kGauge:
        inst->gauge = new Gauge(&enabled_);
        break;
      case MetricKind::kHistogram:
        inst->histogram = new Histogram(&enabled_);
        break;
    }
    instruments_.push_back(inst);
  }
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

const MetricRegistry::Instrument* MetricRegistry::Find(
    const std::string& name, MetricKind kind) const {
  for (const Instrument* inst : instruments_) {
    if (name == inst->spec->name) {
      DMAC_CHECK(inst->spec->kind == kind)
          << "metric " << name << " is a " << KindName(inst->spec->kind)
          << ", requested as " << KindName(kind);
      return inst;
    }
  }
  DMAC_CHECK(false) << "metric " << name
                    << " is not in the catalog (obs/metrics.cc)";
  return nullptr;
}

Counter* MetricRegistry::counter(const std::string& name) {
  return Find(name, MetricKind::kCounter)->counter;
}

Gauge* MetricRegistry::gauge(const std::string& name) {
  return Find(name, MetricKind::kGauge)->gauge;
}

Histogram* MetricRegistry::histogram(const std::string& name) {
  return Find(name, MetricKind::kHistogram)->histogram;
}

void MetricRegistry::Reset() {
  for (Instrument* inst : instruments_) {
    switch (inst->spec->kind) {
      case MetricKind::kCounter:
        inst->counter->Reset();
        break;
      case MetricKind::kGauge:
        inst->gauge->Reset();
        break;
      case MetricKind::kHistogram:
        inst->histogram->Reset();
        break;
    }
  }
}

std::vector<MetricValue> MetricRegistry::Collect() const {
  std::vector<MetricValue> out;
  for (const Instrument* inst : instruments_) {
    MetricValue v;
    v.name = inst->spec->name;
    v.kind = inst->spec->kind;
    v.unit = inst->spec->unit;
    switch (inst->spec->kind) {
      case MetricKind::kCounter:
        v.value = inst->counter->value();
        if (v.value == 0) continue;
        break;
      case MetricKind::kGauge:
        v.value = inst->gauge->value();
        if (v.value == 0) continue;
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *inst->histogram;
        if (h.count() == 0) continue;
        v.value = h.sum();
        v.count = h.count();
        v.mean = h.mean();
        v.p50 = h.Quantile(0.5);
        v.p99 = h.Quantile(0.99);
        v.max = h.max();
        break;
      }
    }
    out.push_back(std::move(v));
  }
  return out;
}

std::string MetricRegistry::ToJson() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricValue& v : Collect()) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + v.name + "\",\"kind\":\"" + KindName(v.kind) +
           "\",\"unit\":\"" + v.unit + "\",\"value\":" + FormatDouble(v.value);
    if (v.kind == MetricKind::kHistogram) {
      out += ",\"count\":" + std::to_string(v.count) +
             ",\"mean\":" + FormatDouble(v.mean) +
             ",\"p50\":" + FormatDouble(v.p50) +
             ",\"p99\":" + FormatDouble(v.p99) +
             ",\"max\":" + FormatDouble(v.max);
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

std::string MetricRegistry::ToCsv() const {
  std::string out = "name,kind,unit,value,count,mean,p50,p99,max\n";
  for (const MetricValue& v : Collect()) {
    out += v.name;
    out += ",";
    out += KindName(v.kind);
    out += ",";
    out += v.unit;
    out += "," + FormatDouble(v.value);
    if (v.kind == MetricKind::kHistogram) {
      out += "," + std::to_string(v.count) + "," + FormatDouble(v.mean) +
             "," + FormatDouble(v.p50) + "," + FormatDouble(v.p99) + "," +
             FormatDouble(v.max);
    } else {
      out += ",,,,,";
    }
    out += "\n";
  }
  return out;
}

}  // namespace dmac
