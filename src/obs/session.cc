#include "obs/session.h"

#include <fstream>

#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmac {

void EnableObservability() {
  TraceRecorder::Global().Clear();
  TraceRecorder::Global().SetEnabled(true);
  MetricRegistry::Global().Reset();
  MetricRegistry::Global().SetEnabled(true);
}

void DisableObservability() {
  TraceRecorder::Global().SetEnabled(false);
  MetricRegistry::Global().SetEnabled(false);
}

Status WriteTraceFile(const std::string& path) {
  return WriteChromeTraceFile(path, TraceRecorder::Global().Snapshot());
}

Status WriteMetricsFile(const std::string& path) {
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::Invalid("cannot open metrics output file " + path);
  }
  file << (csv ? MetricRegistry::Global().ToCsv()
               : MetricRegistry::Global().ToJson());
  file.flush();
  if (!file) {
    return Status::Invalid("failed writing metrics output file " + path);
  }
  return Status::Ok();
}

}  // namespace dmac
