// Structural validator for emitted Chrome-trace JSON.
//
// Used by tools/dmac_trace_check (the CI smoke checker) and the obs tests.
// It re-parses the emitted document with a small self-contained JSON parser
// — deliberately not the exporter's own code — and checks the Trace Event
// Format contract plus this repo's span-model guarantees.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

namespace dmac {

/// What the validator found in a well-formed trace.
struct TraceCheckSummary {
  int64_t total_events = 0;     // "X" (complete) events
  int64_t metadata_events = 0;  // "M" events
  int64_t stage_spans = 0;      // cat == "stage"
  int64_t comm_spans = 0;       // cat == "comm"
  int64_t task_spans = 0;       // cat == "task"
  int64_t worker_spans = 0;     // cat == "worker"
  int64_t plan_spans = 0;       // cat == "plan"
  int64_t recovery_spans = 0;   // cat == "recovery"
  int64_t spill_spans = 0;      // cat == "spill"
  int64_t cancel_spans = 0;     // cat == "cancel"
  int64_t worker_attributed = 0;  // events with pid > 0 (a worker process)
  int max_pid = 0;

  std::string ToString() const;
};

/// Validates `json` as a Chrome-trace document: parseable JSON, a
/// `traceEvents` array, every event an object with the fields its phase
/// requires (`X` events: name, cat, numeric ts/dur/pid/tid). Returns the
/// summary, or an error Status naming the first violation.
Result<TraceCheckSummary> CheckChromeTrace(const std::string& json);

/// CheckChromeTrace over a file's contents.
Result<TraceCheckSummary> CheckChromeTraceFile(const std::string& path);

}  // namespace dmac
