#include "obs/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>

namespace dmac {

namespace {

/// JSON string literal with escapes.
std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out += "\"";
  return out;
}

/// Microseconds with nanosecond precision (the format's `ts`/`dur` unit).
std::string Micros(int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e3);
  return buf;
}

int PidOf(const TraceEvent& e) { return e.worker < 0 ? 0 : e.worker + 1; }

}  // namespace

std::string ChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto append = [&](const std::string& obj) {
    if (!first) out += ",\n";
    first = false;
    out += obj;
  };

  // Metadata: name the driver and worker "processes" so Perfetto's track
  // labels read "driver" / "worker 3" instead of bare pids, and sort the
  // driver first.
  std::set<int> pids;
  for (const TraceEvent& e : events) pids.insert(PidOf(e));
  for (int pid : pids) {
    const std::string name =
        pid == 0 ? std::string("driver")
                 : "worker " + std::to_string(pid - 1);
    append("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":" +
           JsonString(name) + "}}");
    append("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":0,\"name\":\"process_sort_index\",\"args\":{"
           "\"sort_index\":" +
           std::to_string(pid) + "}}");
  }

  for (const TraceEvent& e : events) {
    std::string obj = "{\"ph\":\"X\",\"pid\":" + std::to_string(PidOf(e)) +
                      ",\"tid\":" + std::to_string(e.tid) +
                      ",\"ts\":" + Micros(e.start_ns) +
                      ",\"dur\":" + Micros(e.dur_ns) +
                      ",\"cat\":" + JsonString(e.category) +
                      ",\"name\":" + JsonString(e.name);
    if (!e.args.empty()) obj += ",\"args\":{" + e.args + "}";
    obj += "}";
    append(obj);
  }
  out += "]}\n";
  return out;
}

Status WriteChromeTraceFile(const std::string& path,
                            const std::vector<TraceEvent>& events) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::Invalid("cannot open trace output file " + path);
  }
  file << ChromeTraceJson(events);
  file.flush();
  if (!file) {
    return Status::Invalid("failed writing trace output file " + path);
  }
  return Status::Ok();
}

}  // namespace dmac
