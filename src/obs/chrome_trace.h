// Chrome-trace JSON exporter (docs/observability.md).
//
// Renders TraceEvents in the Trace Event Format's "JSON object" flavor,
// loadable by chrome://tracing and https://ui.perfetto.dev. The simulated
// cluster maps onto the format's process/thread grid:
//
//   pid 0    = the driver (plan, stage, step, comm spans)
//   pid w+1  = simulated worker w (its compute spans and block tasks)
//   tid      = the recording OS thread (driver or pool thread)
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace dmac {

/// Renders `events` as a complete Chrome-trace JSON document.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

/// Writes ChromeTraceJson(events) to `path` (overwrites).
Status WriteChromeTraceFile(const std::string& path,
                            const std::vector<TraceEvent>& events);

}  // namespace dmac
