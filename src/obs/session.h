// Convenience wiring of the observability layer for CLIs and benchmarks.
//
// `dmac_run --trace-out/--metrics-out` and the bench binaries' ObsSession
// hook both go through these helpers: enable the recorder + registry with a
// clean slate, run, then write the Chrome-trace and metrics files.
#pragma once

#include <string>

#include "common/status.h"

namespace dmac {

/// Enables (and clears) the global trace recorder and metric registry.
void EnableObservability();

/// Disables both; buffered data stays readable until the next Enable.
void DisableObservability();

/// Writes the recorder's current snapshot as Chrome-trace JSON.
Status WriteTraceFile(const std::string& path);

/// Writes the registry's current values; a path ending in ".csv" selects
/// CSV, anything else the JSON dump.
Status WriteMetricsFile(const std::string& path);

}  // namespace dmac
