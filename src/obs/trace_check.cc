#include "obs/trace_check.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

namespace dmac {

namespace {

// ---- minimal JSON parser -------------------------------------------------
// Recursive descent over the full JSON grammar (objects, arrays, strings,
// numbers, true/false/null). Values are held in a small variant tree; the
// validator only ever walks two levels deep, so no effort is spent on
// performance.

struct JsonValue;
using JsonValuePtr = std::unique_ptr<JsonValue>;

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValuePtr> array;
  std::map<std::string, JsonValuePtr> object;

  const JsonValue* Get(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : it->second.get();
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValuePtr> Parse() {
    DMAC_ASSIGN_OR_RETURN(JsonValuePtr value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after top-level value");
    }
    return value;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::Invalid("JSON parse error at offset " +
                           std::to_string(pos_) + ": " + msg);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(
                                      static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValuePtr> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValuePtr> ParseObject() {
    ++pos_;  // '{'
    auto value = std::make_unique<JsonValue>();
    value->type = JsonValue::Type::kObject;
    if (Consume('}')) return value;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      DMAC_ASSIGN_OR_RETURN(JsonValuePtr key, ParseString());
      if (!Consume(':')) return Error("expected ':' after object key");
      DMAC_ASSIGN_OR_RETURN(JsonValuePtr member, ParseValue());
      value->object[key->string] = std::move(member);
      if (Consume(',')) continue;
      if (Consume('}')) return value;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValuePtr> ParseArray() {
    ++pos_;  // '['
    auto value = std::make_unique<JsonValue>();
    value->type = JsonValue::Type::kArray;
    if (Consume(']')) return value;
    while (true) {
      DMAC_ASSIGN_OR_RETURN(JsonValuePtr element, ParseValue());
      value->array.push_back(std::move(element));
      if (Consume(',')) continue;
      if (Consume(']')) return value;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValuePtr> ParseString() {
    ++pos_;  // '"'
    auto value = std::make_unique<JsonValue>();
    value->type = JsonValue::Type::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            value->string.push_back('"');
            break;
          case '\\':
            value->string.push_back('\\');
            break;
          case '/':
            value->string.push_back('/');
            break;
          case 'b':
            value->string.push_back('\b');
            break;
          case 'f':
            value->string.push_back('\f');
            break;
          case 'n':
            value->string.push_back('\n');
            break;
          case 'r':
            value->string.push_back('\r');
            break;
          case 't':
            value->string.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(
                      static_cast<unsigned char>(text_[pos_ + i]))) {
                return Error("bad \\u escape");
              }
            }
            // The validator never inspects escaped content; keep it verbatim.
            value->string += "\\u" + text_.substr(pos_, 4);
            pos_ += 4;
            break;
          }
          default:
            return Error(std::string("bad escape '\\") + esc + "'");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      } else {
        value->string.push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValuePtr> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || token.empty()) {
      return Error("malformed number '" + token + "'");
    }
    auto value = std::make_unique<JsonValue>();
    value->type = JsonValue::Type::kNumber;
    value->number = parsed;
    return value;
  }

  Result<JsonValuePtr> ParseBool() {
    auto value = std::make_unique<JsonValue>();
    value->type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value->boolean = true;
      pos_ += 4;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      value->boolean = false;
      pos_ += 5;
      return value;
    }
    return Error("bad literal");
  }

  Result<JsonValuePtr> ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return std::make_unique<JsonValue>();
    }
    return Error("bad literal");
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Status EventError(size_t index, const std::string& msg) {
  return Status::Invalid("traceEvents[" + std::to_string(index) + "]: " +
                         msg);
}

bool IsNumber(const JsonValue* v) {
  return v != nullptr && v->type == JsonValue::Type::kNumber;
}

bool IsString(const JsonValue* v) {
  return v != nullptr && v->type == JsonValue::Type::kString;
}

}  // namespace

std::string TraceCheckSummary::ToString() const {
  std::ostringstream out;
  out << total_events << " events (" << metadata_events << " metadata), "
      << stage_spans << " stage, " << comm_spans << " comm, " << task_spans
      << " task, " << worker_spans << " worker, " << plan_spans
      << " plan, " << recovery_spans << " recovery, " << spill_spans
      << " spill, " << cancel_spans << " cancel spans; "
      << worker_attributed
      << " events attributed to workers (max pid " << max_pid << ")";
  return out.str();
}

Result<TraceCheckSummary> CheckChromeTrace(const std::string& json) {
  DMAC_ASSIGN_OR_RETURN(JsonValuePtr root, JsonParser(json).Parse());
  if (root->type != JsonValue::Type::kObject) {
    return Status::Invalid("top-level value is not an object");
  }
  const JsonValue* events = root->Get("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    return Status::Invalid("missing traceEvents array");
  }

  TraceCheckSummary summary;
  for (size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = *events->array[i];
    if (e.type != JsonValue::Type::kObject) {
      return EventError(i, "not an object");
    }
    const JsonValue* ph = e.Get("ph");
    if (!IsString(ph)) return EventError(i, "missing string 'ph'");
    if (!IsNumber(e.Get("pid"))) return EventError(i, "missing number 'pid'");
    const int pid = static_cast<int>(e.Get("pid")->number);
    if (pid < 0) return EventError(i, "negative pid");
    summary.max_pid = std::max(summary.max_pid, pid);

    if (ph->string == "M") {
      ++summary.metadata_events;
      continue;
    }
    if (ph->string != "X") {
      return EventError(i, "unexpected phase '" + ph->string + "'");
    }
    if (!IsString(e.Get("name"))) {
      return EventError(i, "missing string 'name'");
    }
    if (!IsString(e.Get("cat"))) return EventError(i, "missing string 'cat'");
    if (!IsNumber(e.Get("tid"))) return EventError(i, "missing number 'tid'");
    if (!IsNumber(e.Get("ts"))) return EventError(i, "missing number 'ts'");
    if (!IsNumber(e.Get("dur"))) return EventError(i, "missing number 'dur'");
    if (e.Get("ts")->number < 0) return EventError(i, "negative ts");
    if (e.Get("dur")->number < 0) return EventError(i, "negative dur");
    const JsonValue* args = e.Get("args");
    if (args != nullptr && args->type != JsonValue::Type::kObject) {
      return EventError(i, "'args' is not an object");
    }

    ++summary.total_events;
    const std::string& cat = e.Get("cat")->string;
    if (cat == "stage") ++summary.stage_spans;
    if (cat == "comm") ++summary.comm_spans;
    if (cat == "task") ++summary.task_spans;
    if (cat == "worker") ++summary.worker_spans;
    if (cat == "plan") ++summary.plan_spans;
    if (cat == "recovery") ++summary.recovery_spans;
    if (cat == "spill") ++summary.spill_spans;
    if (cat == "cancel") ++summary.cancel_spans;
    if (pid > 0) ++summary.worker_attributed;
  }
  return summary;
}

Result<TraceCheckSummary> CheckChromeTraceFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::Invalid("cannot open " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return CheckChromeTrace(buffer.str());
}

}  // namespace dmac
