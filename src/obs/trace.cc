#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace dmac {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Renders a JSON string literal (with escapes) into `out`.
void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

TraceRecorder::TraceRecorder() : epoch_ns_(SteadyNowNs()) {}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

int64_t TraceRecorder::NowNs() const { return SteadyNowNs() - epoch_ns_; }

TraceRecorder::ThreadBuffer* TraceRecorder::LocalBuffer() {
  // One buffer per (thread, process lifetime); the registry keeps it alive
  // past thread exit so Snapshot() still sees short-lived pool threads.
  thread_local std::shared_ptr<ThreadBuffer> local;
  if (local == nullptr) {
    MutexLock lock(&registry_mu_);
    local = std::make_shared<ThreadBuffer>(next_tid_++);
    buffers_.push_back(local);
  }
  return local.get();
}

void TraceRecorder::Record(TraceEvent event) {
  if (!enabled()) return;
  ThreadBuffer* buf = LocalBuffer();
  MutexLock lock(&buf->mu);
  if (buf->events.size() >= kMaxEventsPerThread) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  event.tid = buf->tid;
  buf->events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> out;
  {
    MutexLock registry_lock(&registry_mu_);
    for (const auto& buf : buffers_) {
      MutexLock lock(&buf->mu);
      out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

void TraceRecorder::Clear() {
  MutexLock registry_lock(&registry_mu_);
  for (const auto& buf : buffers_) {
    MutexLock lock(&buf->mu);
    buf->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

std::string TraceArg(const std::string& key, const std::string& value) {
  std::string out;
  AppendJsonString(key, &out);
  out.push_back(':');
  AppendJsonString(value, &out);
  return out;
}

std::string TraceArg(const std::string& key, double value) {
  std::string out;
  AppendJsonString(key, &out);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out.push_back(':');
  out += buf;
  return out;
}

std::string TraceArg(const std::string& key, int64_t value) {
  std::string out;
  AppendJsonString(key, &out);
  out.push_back(':');
  out += std::to_string(value);
  return out;
}

}  // namespace dmac
