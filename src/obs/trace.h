// Execution tracing (docs/observability.md).
//
// A TraceRecorder collects timestamped spans — plan passes, stages, steps,
// communication events, worker compute, block tasks — into per-thread
// buffers. The hot path touches only the calling thread's own buffer (its
// mutex is uncontended except during Snapshot/Clear), so recording costs a
// clock read plus a vector push. When the recorder is disabled, TraceSpan
// reduces to one relaxed atomic load and records nothing at all.
//
// Spans are exported to Chrome-trace JSON (chrome_trace.h), loadable in
// chrome://tracing and Perfetto, with one process per simulated worker.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace dmac {

// Span categories. Use these constants (the exporters and tests match on
// the exact strings; docs/observability.md documents each).
inline constexpr const char* kTracePlan = "plan";    // planner / analysis pass
inline constexpr const char* kTraceStage = "stage";  // one barrier stage
inline constexpr const char* kTraceStep = "step";    // one plan step
inline constexpr const char* kTraceComm = "comm";    // shuffle / broadcast
inline constexpr const char* kTraceWorker = "worker";  // one worker's compute
inline constexpr const char* kTraceTask = "task";    // one block task
inline constexpr const char* kTraceRecovery = "recovery";  // fault recovery
inline constexpr const char* kTraceSpill = "spill";    // budget spill/restore
inline constexpr const char* kTraceCancel = "cancel";  // cancellation observed
inline constexpr const char* kTraceMembership =
    "membership";  // epoch bumps / worker death / degraded rebalance
inline constexpr const char* kTraceCheckpoint =
    "checkpoint";  // durable checkpoint commit / crash-restart resume
inline constexpr const char* kTraceSearch =
    "search";  // cost-based plan search / top-2 plan race

/// One completed span. `worker` is -1 for driver-side work.
struct TraceEvent {
  const char* category = "";  // one of the kTrace* constants (static storage)
  std::string name;
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  int worker = -1;
  uint32_t tid = 0;  // recorder-assigned stable thread id
  /// Extra key/values, pre-rendered as the *body* of a JSON object
  /// (`"bytes":12,"kind":"shuffle"`), or empty.
  std::string args;
};

/// Process-wide span collector. All methods are thread-safe.
class TraceRecorder {
 public:
  /// The recorder every TraceSpan and exporter uses.
  static TraceRecorder& Global();

  /// Enabling clears nothing; pair with Clear() for a fresh capture.
  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since the recorder's epoch (its construction).
  int64_t NowNs() const;

  /// Appends `event` to the calling thread's buffer. Ignored while
  /// disabled; drops (and counts) events beyond the per-thread cap.
  void Record(TraceEvent event);

  /// Merged copy of every thread's events, ordered by start time.
  std::vector<TraceEvent> Snapshot() const;

  /// Discards all buffered events (buffers stay registered).
  void Clear();

  /// Events dropped because a thread buffer hit its cap.
  int64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Per-thread buffer cap; beyond it new events are dropped, not resized,
  /// so a runaway trace cannot exhaust memory.
  static constexpr size_t kMaxEventsPerThread = 1u << 22;

  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

 private:
  struct ThreadBuffer {
    /// The stable id is fixed at registration, before any other thread can
    /// see the buffer, so it needs no lock.
    explicit ThreadBuffer(uint32_t id) : tid(id) {}

    Mutex mu;
    std::vector<TraceEvent> events DMAC_GUARDED_BY(mu);
    const uint32_t tid;
  };

  ThreadBuffer* LocalBuffer() DMAC_EXCLUDES(registry_mu_);

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> dropped_{0};
  int64_t epoch_ns_ = 0;

  mutable Mutex registry_mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_
      DMAC_GUARDED_BY(registry_mu_);
  uint32_t next_tid_ DMAC_GUARDED_BY(registry_mu_) = 0;
};

/// RAII span: records [construction, destruction) under the global
/// recorder. When tracing is disabled at construction the object is inert.
class TraceSpan {
 public:
  /// Inert span that never records. Hot call sites whose name/args are
  /// expensive to build use `enabled() ? TraceSpan(...) : TraceSpan()` so
  /// the strings are not constructed while tracing is off (constructor
  /// arguments are evaluated before the ctor's own enabled check).
  TraceSpan() : active_(false) {}

  TraceSpan(const char* category, std::string name, int worker = -1,
            std::string args = "")
      : active_(TraceRecorder::Global().enabled()) {
    if (!active_) return;
    event_.category = category;
    event_.name = std::move(name);
    event_.worker = worker;
    event_.args = std::move(args);
    event_.start_ns = TraceRecorder::Global().NowNs();
  }

  TraceSpan(TraceSpan&& other) noexcept
      : active_(other.active_), event_(std::move(other.event_)) {
    other.active_ = false;
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  TraceSpan& operator=(TraceSpan&&) = delete;

  ~TraceSpan() { Close(); }

  /// True while the span will record on Close(). Callers guard expensive
  /// set_args() argument construction on this.
  bool active() const { return active_; }

  /// Replaces the span's args (e.g. byte counts known only at the end).
  void set_args(std::string args) {
    if (active_) event_.args = std::move(args);
  }

  /// Ends the span now (idempotent; the destructor is then a no-op).
  void Close() {
    if (!active_) return;
    active_ = false;
    event_.dur_ns = TraceRecorder::Global().NowNs() - event_.start_ns;
    TraceRecorder::Global().Record(std::move(event_));
  }

 private:
  bool active_;
  TraceEvent event_;
};

/// Renders one JSON key/value pair for TraceEvent::args, escaping string
/// values. Join multiple pairs with commas.
std::string TraceArg(const std::string& key, const std::string& value);
std::string TraceArg(const std::string& key, double value);
std::string TraceArg(const std::string& key, int64_t value);

}  // namespace dmac
