// Matrix programs and the R-like DSL front end (paper §5.4).
//
// Usage mirrors the paper's Scala codes:
//
//   ProgramBuilder pb;
//   Mat V = pb.Load("V", {d, w}, 0.01);
//   Mat W = pb.Random("W", {d, k});
//   Mat H = pb.Random("H", {k, w});
//   for (int i = 0; i < 10; ++i) {                      // unrolled
//     pb.Assign(H, H * (W.t().mm(V)) / (W.t().mm(W).mm(H)));
//     pb.Assign(W, W * (V.mm(H.t())) / (W.mm(H).mm(H.t())));
//   }
//   pb.Output(W); pb.Output(H);
//   Program p = pb.Build();
#pragma once

#include <string>
#include <vector>

#include "lang/expr.h"

namespace dmac {

class ProgramBuilder;

/// DSL handle for a matrix-valued expression (or variable).
class Mat {
 public:
  Mat() = default;

  const MatrixExprPtr& expr() const { return expr_; }

  /// Matrix multiplication (the paper's %*%).
  Mat mm(const Mat& other) const;
  /// Transpose (the paper's .t / W.t).
  Mat t() const;
  /// m×1 vector of row sums.
  Mat RowSums() const;
  /// 1×n vector of column sums.
  Mat ColSums() const;

  /// Element-wise unary functions.
  Mat Exp() const;
  Mat Log() const;
  Mat Abs() const;
  Mat Sigmoid() const;
  Mat Square() const;

  Mat operator+(const Mat& other) const;
  Mat operator-(const Mat& other) const;
  /// Cell-wise multiplication (the paper's *).
  Mat operator*(const Mat& other) const;
  /// Cell-wise division (the paper's /).
  Mat operator/(const Mat& other) const;

  Mat operator*(double scalar) const;
  Mat operator+(double scalar) const;
  Mat operator-(double scalar) const;

  class Scl Sum() const;
  class Scl Norm2() const;
  /// Scalar value of a 1×1 matrix (the paper's .value).
  class Scl Value() const;

 private:
  friend class ProgramBuilder;
  friend class Scl;
  explicit Mat(MatrixExprPtr expr) : expr_(std::move(expr)) {}
  MatrixExprPtr expr_;
};

Mat operator*(double scalar, const Mat& m);

/// DSL handle for a scalar-valued expression (or scalar variable).
class Scl {
 public:
  Scl() = default;
  /// Implicit from literal.
  Scl(double v) : expr_(ScalarExpr::Literal(v)) {}  // NOLINT

  const ScalarExprPtr& expr() const { return expr_; }

  Scl operator+(const Scl& o) const;
  Scl operator-(const Scl& o) const;
  Scl operator*(const Scl& o) const;
  Scl operator/(const Scl& o) const;
  Scl Sqrt() const;

  /// Scales a matrix by this scalar.
  Mat operator*(const Mat& m) const;

 private:
  friend class ProgramBuilder;
  friend class Mat;
  explicit Scl(ScalarExprPtr expr) : expr_(std::move(expr)) {}
  ScalarExprPtr expr_;
};

/// One program statement.
struct Statement {
  enum class Kind { kAssignMatrix, kAssignScalar };
  Kind kind;
  std::string target;      // variable name
  MatrixExprPtr matrix;    // kAssignMatrix
  ScalarExprPtr scalar;    // kAssignScalar
};

/// A complete matrix program: declarations, statements, and the variables
/// whose final values the caller wants back.
struct Program {
  std::vector<Statement> statements;
  std::vector<std::string> outputs;         // matrix variables to fetch
  std::vector<std::string> scalar_outputs;  // scalar variables to fetch
  /// Matrix variables hinted for fault-tolerance checkpointing
  /// (docs/fault_tolerance.md) — typically the iteration state of an
  /// iterative app, whose lineage chain otherwise grows unboundedly.
  std::vector<std::string> checkpoint_hints;
};

/// Builds a Program from DSL expressions; loops are unrolled by executing
/// the host-language loop against the builder.
class ProgramBuilder {
 public:
  /// Declares an input matrix with known shape and sparsity (paper §5.1:
  /// sparsity is pre-computed or user-specified).
  Mat Load(const std::string& name, Shape shape, double sparsity = 1.0);

  /// Declares a random dense matrix generated on the workers.
  Mat Random(const std::string& name, Shape shape);

  /// Declares an uninitialized matrix variable (assign before use).
  Mat Var(const std::string& name);

  /// Declares a scalar variable initialized to a literal.
  Scl ScalarVar(const std::string& name, double initial);

  /// Appends `target = expr`. `target` must be a variable handle (from
  /// Load/Random/Var), not a compound expression.
  void Assign(const Mat& target, const Mat& expr);

  /// Appends `target = expr` for scalars.
  void Assign(const Scl& target, const Scl& expr);

  /// Marks a matrix variable as a program output.
  void Output(const Mat& var);

  /// Marks a scalar variable as a program output.
  void OutputScalar(const Scl& var);

  /// Hints that a matrix variable is worth checkpointing under fault
  /// tolerance (cuts its lineage chain in iterative programs).
  void CheckpointHint(const Mat& var);

  /// Finalizes and returns the program.
  Program Build();

 private:
  Program program_;
  int next_random_id_ = 0;
};

}  // namespace dmac
