// Script front end: parses the R-like matrix language into a Program.
//
// The paper expresses its workloads (Codes 1–5) in an R-like surface
// syntax; this parser accepts that syntax as standalone scripts so programs
// can be run without recompiling (see tools/dmac_run):
//
//   V = load("V", 480189, 17770, 0.011)
//   W = random(480189, 200)
//   H = random(200, 17770)
//   for i in 0:10 {
//     H = H * (t(W) %*% V) / (t(W) %*% W %*% H)
//     W = W * (V %*% t(H)) / (W %*% H %*% t(H))
//   }
//   output(W)
//   output(H)
//
// Language summary:
//   * `%*%` matrix multiplication; `*` `/` `+` `-` cell-wise / scalar ops
//   * `t(X)` transpose; `load("name", rows, cols, sparsity)`;
//     `random(rows, cols)`
//   * `sum(X)`, `norm2(X)`, `value(X)` matrix→scalar; `sqrt(s)` on scalars
//   * `for i in a:b { ... }` counted loops (unrolled; bounds are integer
//     literals or previously assigned integer constants)
//   * `output(X)` / `output_scalar(s)` declare program results
//   * `#` or `//` start comments; statements are newline- or `;`-separated
#pragma once

#include <string>

#include "common/result.h"
#include "lang/program.h"

namespace dmac {

/// Parses a script into a Program. Errors carry line/column context.
Result<Program> ParseProgram(const std::string& source);

}  // namespace dmac
