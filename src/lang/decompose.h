// Decomposition of a Program into an ordered operator list (paper §4.2.3).
#pragma once

#include "common/result.h"
#include "lang/op.h"
#include "lang/program.h"

namespace dmac {

/// Flattens the program into SSA operators, resolving variable versions.
///
/// Within each statement, independent operators are reordered so that
/// multiplications come first (paper §4.2.3: "we put the operators with
/// multiplication ahead of the other operators because matrices will
/// probably be broadcasted by multiplication", enabling Pull-Up Broadcast).
///
/// Pure aliasing statements (`a = b`, `a = b.t`) emit no operator; the alias
/// is tracked in the variable environment.
Result<OperatorList> Decompose(const Program& program);

}  // namespace dmac
