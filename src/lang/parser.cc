#include "lang/parser.h"

#include <cctype>
#include <cmath>
#include <set>
#include <unordered_map>
#include <vector>

namespace dmac {

namespace {

// ---- lexer -----------------------------------------------------------------

enum class TokKind {
  kIdent,
  kNumber,
  kString,
  kMatMul,  // %*%
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kAssign,  // =
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kColon,
  kFor,
  kIn,
  kEnd,  // end of input
};

struct Token {
  TokKind kind;
  std::string text;
  double number = 0;
  int line = 1;
  int col = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= src_.size()) break;
      const int line = line_, col = col_;
      const char c = src_[pos_];
      Token tok;
      tok.line = line;
      tok.col = col;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tok.text = LexIdent();
        tok.kind = tok.text == "for" ? TokKind::kFor
                   : tok.text == "in" ? TokKind::kIn
                                      : TokKind::kIdent;
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
        DMAC_ASSIGN_OR_RETURN(tok.number, LexNumber());
        tok.kind = TokKind::kNumber;
      } else if (c == '"') {
        DMAC_ASSIGN_OR_RETURN(tok.text, LexString());
        tok.kind = TokKind::kString;
      } else if (c == '%') {
        if (src_.compare(pos_, 3, "%*%") != 0) {
          return Error("expected %*%");
        }
        Advance(3);
        tok.kind = TokKind::kMatMul;
      } else {
        Advance(1);
        switch (c) {
          case '+':
            tok.kind = TokKind::kPlus;
            break;
          case '-':
            tok.kind = TokKind::kMinus;
            break;
          case '*':
            tok.kind = TokKind::kStar;
            break;
          case '/':
            tok.kind = TokKind::kSlash;
            break;
          case '=':
            tok.kind = TokKind::kAssign;
            break;
          case '(':
            tok.kind = TokKind::kLParen;
            break;
          case ')':
            tok.kind = TokKind::kRParen;
            break;
          case '{':
            tok.kind = TokKind::kLBrace;
            break;
          case '}':
            tok.kind = TokKind::kRBrace;
            break;
          case ',':
            tok.kind = TokKind::kComma;
            break;
          case ':':
            tok.kind = TokKind::kColon;
            break;
          case ';':
            continue;  // statement separator: ignored by the grammar
          default:
            return Error(std::string("unexpected character '") + c + "'");
        }
      }
      out.push_back(std::move(tok));
    }
    Token end;
    end.kind = TokKind::kEnd;
    end.line = line_;
    end.col = col_;
    out.push_back(end);
    return out;
  }

 private:
  void Advance(size_t n) {
    for (size_t i = 0; i < n && pos_ < src_.size(); ++i) {
      if (src_[pos_] == '\n') {
        ++line_;
        col_ = 1;
      } else {
        ++col_;
      }
      ++pos_;
    }
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance(1);
      } else if (c == '#' ||
                 (c == '/' && pos_ + 1 < src_.size() &&
                  src_[pos_ + 1] == '/')) {
        while (pos_ < src_.size() && src_[pos_] != '\n') Advance(1);
      } else {
        break;
      }
    }
  }

  std::string LexIdent() {
    const size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '_')) {
      Advance(1);
    }
    return src_.substr(start, pos_ - start);
  }

  Result<double> LexNumber() {
    const size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '.' || src_[pos_] == 'e' || src_[pos_] == 'E' ||
            ((src_[pos_] == '+' || src_[pos_] == '-') && pos_ > start &&
             (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E')))) {
      Advance(1);
    }
    try {
      return std::stod(src_.substr(start, pos_ - start));
    } catch (...) {
      return Error("malformed number");
    }
  }

  Result<std::string> LexString() {
    Advance(1);  // opening quote
    const size_t start = pos_;
    while (pos_ < src_.size() && src_[pos_] != '"') Advance(1);
    if (pos_ >= src_.size()) return Error("unterminated string literal");
    std::string value = src_.substr(start, pos_ - start);
    Advance(1);  // closing quote
    return value;
  }

  Status Error(const std::string& message) const {
    return Status::Invalid(message + " at line " + std::to_string(line_) +
                           ":" + std::to_string(col_));
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

// ---- parser ----------------------------------------------------------------

/// A parsed expression is either matrix- or scalar-valued.
struct Value {
  bool is_matrix = false;
  MatrixExprPtr matrix;
  ScalarExprPtr scalar;

  static Value Matrix(MatrixExprPtr m) { return {true, std::move(m), nullptr}; }
  static Value Scalar(ScalarExprPtr s) { return {false, nullptr, std::move(s)}; }
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> Run() {
    while (Peek().kind != TokKind::kEnd) {
      DMAC_RETURN_NOT_OK(ParseStatement());
    }
    return std::move(program_);
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() {
    const Token& t = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool Accept(TokKind kind) {
    if (Peek().kind != kind) return false;
    Next();
    return true;
  }
  Status Expect(TokKind kind, const char* what) {
    if (Accept(kind)) return Status::Ok();
    return ErrorAt(Peek(), std::string("expected ") + what);
  }
  static Status ErrorAt(const Token& tok, const std::string& message) {
    return Status::Invalid(message + " at line " + std::to_string(tok.line) +
                           ":" + std::to_string(tok.col));
  }

  // ---- statements ---------------------------------------------------------

  Status ParseStatement() {
    const Token& tok = Peek();
    if (tok.kind == TokKind::kFor) return ParseFor();
    if (tok.kind != TokKind::kIdent) {
      return ErrorAt(tok, "expected statement");
    }
    if (tok.text == "output" || tok.text == "output_scalar") {
      const bool scalar = tok.text == "output_scalar";
      Next();
      DMAC_RETURN_NOT_OK(Expect(TokKind::kLParen, "'('"));
      const Token& name = Peek();
      DMAC_RETURN_NOT_OK(Expect(TokKind::kIdent, "identifier"));
      DMAC_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
      if (scalar) {
        if (matrix_vars_.count(name.text)) {
          return ErrorAt(name, name.text + " is a matrix, not a scalar");
        }
        program_.scalar_outputs.push_back(name.text);
      } else {
        if (!matrix_vars_.count(name.text)) {
          return ErrorAt(name, "unknown matrix variable " + name.text);
        }
        program_.outputs.push_back(name.text);
      }
      return Status::Ok();
    }

    // Assignment: ident = expr.
    const std::string target = Next().text;
    DMAC_RETURN_NOT_OK(Expect(TokKind::kAssign, "'='"));
    DMAC_ASSIGN_OR_RETURN(Value value, ParseExpr());
    Statement st;
    st.target = target;
    if (value.is_matrix) {
      st.kind = Statement::Kind::kAssignMatrix;
      st.matrix = std::move(value.matrix);
      matrix_vars_.insert(target);
      int_constants_.erase(target);
    } else {
      st.kind = Statement::Kind::kAssignScalar;
      st.scalar = value.scalar;
      if (matrix_vars_.count(target)) {
        return Status::Invalid("variable " + target +
                               " changes type from matrix to scalar");
      }
      scalar_vars_.insert(target);
      // Track integer-literal constants for loop bounds.
      if (value.scalar->kind == ScalarExpr::Kind::kLiteral &&
          value.scalar->literal == std::floor(value.scalar->literal)) {
        int_constants_[target] = static_cast<int64_t>(value.scalar->literal);
      } else {
        int_constants_.erase(target);
      }
    }
    program_.statements.push_back(std::move(st));
    return Status::Ok();
  }

  Status ParseFor() {
    Next();  // 'for'
    const Token& var = Peek();
    DMAC_RETURN_NOT_OK(Expect(TokKind::kIdent, "loop variable"));
    DMAC_RETURN_NOT_OK(Expect(TokKind::kIn, "'in'"));
    DMAC_ASSIGN_OR_RETURN(int64_t begin, ParseLoopBound());
    DMAC_RETURN_NOT_OK(Expect(TokKind::kColon, "':'"));
    DMAC_ASSIGN_OR_RETURN(int64_t end, ParseLoopBound());
    DMAC_RETURN_NOT_OK(Expect(TokKind::kLBrace, "'{'"));
    if (end < begin) return ErrorAt(var, "empty loop range");
    if (end - begin > 100000) return ErrorAt(var, "loop too large to unroll");

    // Record the body's token range, then replay it per iteration.
    const size_t body_start = pos_;
    int depth = 1;
    while (depth > 0) {
      const Token& t = Next();
      if (t.kind == TokKind::kEnd) return ErrorAt(t, "unterminated loop");
      if (t.kind == TokKind::kLBrace) ++depth;
      if (t.kind == TokKind::kRBrace) --depth;
    }
    const size_t after_body = pos_;

    for (int64_t i = begin; i < end; ++i) {
      int_constants_[var.text] = i;
      pos_ = body_start;
      while (Peek().kind != TokKind::kRBrace) {
        DMAC_RETURN_NOT_OK(ParseStatement());
      }
    }
    int_constants_.erase(var.text);
    pos_ = after_body;
    return Status::Ok();
  }

  Result<int64_t> ParseLoopBound() {
    const Token& tok = Next();
    if (tok.kind == TokKind::kNumber) {
      if (tok.number != std::floor(tok.number)) {
        return ErrorAt(tok, "loop bound must be an integer");
      }
      return static_cast<int64_t>(tok.number);
    }
    if (tok.kind == TokKind::kIdent) {
      auto it = int_constants_.find(tok.text);
      if (it == int_constants_.end()) {
        return ErrorAt(tok, tok.text + " is not an integer constant");
      }
      return it->second;
    }
    return ErrorAt(tok, "expected loop bound");
  }

  // ---- expressions (precedence climbing) -----------------------------------

  // expr     := term (('+'|'-') term)*
  // term     := factor (('*'|'/') factor)*
  // factor   := unary ('%*%' unary)*          (via the chain flattener)
  // unary    := '-' unary | primary
  Result<Value> ParseExpr() {
    DMAC_ASSIGN_OR_RETURN(Value lhs, ParseTerm());
    while (Peek().kind == TokKind::kPlus || Peek().kind == TokKind::kMinus) {
      const bool add = Next().kind == TokKind::kPlus;
      DMAC_ASSIGN_OR_RETURN(Value rhs, ParseTerm());
      DMAC_ASSIGN_OR_RETURN(
          lhs, Combine(std::move(lhs), std::move(rhs), add ? '+' : '-'));
    }
    return lhs;
  }

  Result<Value> ParseTerm() {
    DMAC_ASSIGN_OR_RETURN(Value lhs, ParseMatMul());
    while (Peek().kind == TokKind::kStar || Peek().kind == TokKind::kSlash) {
      const bool mul = Next().kind == TokKind::kStar;
      DMAC_ASSIGN_OR_RETURN(Value rhs, ParseMatMul());
      DMAC_ASSIGN_OR_RETURN(
          lhs, Combine(std::move(lhs), std::move(rhs), mul ? '*' : '/'));
    }
    return lhs;
  }

  Result<Value> ParseMatMul() {
    DMAC_ASSIGN_OR_RETURN(Value lhs, ParseUnary());
    while (Peek().kind == TokKind::kMatMul) {
      const Token& op = Next();
      DMAC_ASSIGN_OR_RETURN(Value rhs, ParseUnary());
      if (!lhs.is_matrix || !rhs.is_matrix) {
        return ErrorAt(op, "%*% requires matrix operands");
      }
      lhs = Value::Matrix(MatrixExpr::Binary(BinOpKind::kMultiply,
                                             std::move(lhs.matrix),
                                             std::move(rhs.matrix)));
    }
    return lhs;
  }

  Result<Value> ParseUnary() {
    if (Peek().kind == TokKind::kMinus) {
      const Token& op = Next();
      DMAC_ASSIGN_OR_RETURN(Value v, ParseUnary());
      if (v.is_matrix) {
        return Value::Matrix(
            MatrixExpr::ScalarMul(std::move(v.matrix),
                                  ScalarExpr::Literal(-1.0)));
      }
      (void)op;
      return Value::Scalar(ScalarExpr::Binary('-', ScalarExpr::Literal(0.0),
                                              std::move(v.scalar)));
    }
    return ParsePrimary();
  }

  Result<Value> ParsePrimary() {
    const Token& tok = Next();
    switch (tok.kind) {
      case TokKind::kNumber:
        return Value::Scalar(ScalarExpr::Literal(tok.number));
      case TokKind::kLParen: {
        DMAC_ASSIGN_OR_RETURN(Value v, ParseExpr());
        DMAC_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
        return v;
      }
      case TokKind::kIdent: {
        if (Peek().kind == TokKind::kLParen) return ParseCall(tok);
        if (matrix_vars_.count(tok.text)) {
          return Value::Matrix(MatrixExpr::VarRef(tok.text));
        }
        // Loop variables read as literals; other scalars as var refs.
        auto it = int_constants_.find(tok.text);
        if (it != int_constants_.end() && !scalar_vars_.count(tok.text)) {
          return Value::Scalar(
              ScalarExpr::Literal(static_cast<double>(it->second)));
        }
        if (scalar_vars_.count(tok.text) || int_constants_.count(tok.text)) {
          return Value::Scalar(ScalarExpr::VarRef(tok.text));
        }
        return ErrorAt(tok, "unknown variable " + tok.text);
      }
      default:
        return ErrorAt(tok, "expected expression");
    }
  }

  Result<Value> ParseCall(const Token& name) {
    DMAC_RETURN_NOT_OK(Expect(TokKind::kLParen, "'('"));
    std::vector<Value> args;
    std::vector<Token> arg_tokens;
    if (Peek().kind != TokKind::kRParen) {
      do {
        arg_tokens.push_back(Peek());
        if (Peek().kind == TokKind::kString) {
          Next();
          args.push_back(Value{});  // placeholder; text kept in arg_tokens
        } else {
          DMAC_ASSIGN_OR_RETURN(Value v, ParseExpr());
          args.push_back(std::move(v));
        }
      } while (Accept(TokKind::kComma));
    }
    DMAC_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));

    auto literal_arg = [&](size_t i) -> Result<double> {
      if (i >= args.size() || args[i].is_matrix ||
          args[i].scalar == nullptr ||
          args[i].scalar->kind != ScalarExpr::Kind::kLiteral) {
        return ErrorAt(name, name.text + ": argument " + std::to_string(i) +
                                 " must be a numeric literal");
      }
      return args[i].scalar->literal;
    };
    auto matrix_arg = [&](size_t i) -> Result<MatrixExprPtr> {
      if (i >= args.size() || !args[i].is_matrix) {
        return ErrorAt(name, name.text + ": argument " + std::to_string(i) +
                                 " must be a matrix");
      }
      return args[i].matrix;
    };

    if (name.text == "load") {
      if (args.size() != 4 || arg_tokens.empty() ||
          arg_tokens[0].kind != TokKind::kString) {
        return ErrorAt(name,
                       "load(\"name\", rows, cols, sparsity) expected");
      }
      DMAC_ASSIGN_OR_RETURN(double rows, literal_arg(1));
      DMAC_ASSIGN_OR_RETURN(double cols, literal_arg(2));
      DMAC_ASSIGN_OR_RETURN(double sparsity, literal_arg(3));
      return Value::Matrix(MatrixExpr::Load(
          arg_tokens[0].text,
          {static_cast<int64_t>(rows), static_cast<int64_t>(cols)},
          sparsity));
    }
    if (name.text == "random") {
      if (args.size() != 2) {
        return ErrorAt(name, "random(rows, cols) expected");
      }
      DMAC_ASSIGN_OR_RETURN(double rows, literal_arg(0));
      DMAC_ASSIGN_OR_RETURN(double cols, literal_arg(1));
      return Value::Matrix(MatrixExpr::Random(
          "rand" + std::to_string(next_random_++),
          {static_cast<int64_t>(rows), static_cast<int64_t>(cols)}));
    }
    if (name.text == "t") {
      DMAC_ASSIGN_OR_RETURN(MatrixExprPtr m, matrix_arg(0));
      if (args.size() != 1) return ErrorAt(name, "t(X) expects one matrix");
      return Value::Matrix(MatrixExpr::Transpose(std::move(m)));
    }
    if (name.text == "exp" || name.text == "log" || name.text == "abs" ||
        name.text == "sigmoid" || name.text == "square") {
      DMAC_ASSIGN_OR_RETURN(MatrixExprPtr m, matrix_arg(0));
      if (args.size() != 1) {
        return ErrorAt(name, name.text + "(X) expects one matrix");
      }
      const UnaryFnKind fn = name.text == "exp"     ? UnaryFnKind::kExp
                             : name.text == "log"   ? UnaryFnKind::kLog
                             : name.text == "abs"   ? UnaryFnKind::kAbs
                             : name.text == "sigmoid"
                                 ? UnaryFnKind::kSigmoid
                                 : UnaryFnKind::kSquare;
      return Value::Matrix(MatrixExpr::CellUnary(fn, std::move(m)));
    }
    if (name.text == "rowsums" || name.text == "colsums") {
      DMAC_ASSIGN_OR_RETURN(MatrixExprPtr m, matrix_arg(0));
      if (args.size() != 1) {
        return ErrorAt(name, name.text + "(X) expects one matrix");
      }
      return Value::Matrix(name.text == "rowsums"
                               ? MatrixExpr::RowSums(std::move(m))
                               : MatrixExpr::ColSums(std::move(m)));
    }
    if (name.text == "sum" || name.text == "norm2" || name.text == "value") {
      DMAC_ASSIGN_OR_RETURN(MatrixExprPtr m, matrix_arg(0));
      if (args.size() != 1) {
        return ErrorAt(name, name.text + "(X) expects one matrix");
      }
      const ReduceKind kind = name.text == "sum"     ? ReduceKind::kSum
                              : name.text == "norm2" ? ReduceKind::kNorm2
                                                     : ReduceKind::kValue;
      return Value::Scalar(ScalarExpr::Reduce(kind, std::move(m)));
    }
    if (name.text == "sqrt") {
      if (args.size() != 1 || args[0].is_matrix) {
        return ErrorAt(name, "sqrt(s) expects one scalar");
      }
      return Value::Scalar(ScalarExpr::Sqrt(args[0].scalar));
    }
    return ErrorAt(name, "unknown function " + name.text);
  }

  /// Combines two values under + - * /, resolving matrix/scalar typing.
  Result<Value> Combine(Value lhs, Value rhs, char op) {
    if (lhs.is_matrix && rhs.is_matrix) {
      BinOpKind kind;
      switch (op) {
        case '+':
          kind = BinOpKind::kAdd;
          break;
        case '-':
          kind = BinOpKind::kSubtract;
          break;
        case '*':
          kind = BinOpKind::kCellMultiply;
          break;
        default:
          kind = BinOpKind::kCellDivide;
          break;
      }
      return Value::Matrix(MatrixExpr::Binary(kind, std::move(lhs.matrix),
                                              std::move(rhs.matrix)));
    }
    if (!lhs.is_matrix && !rhs.is_matrix) {
      return Value::Scalar(ScalarExpr::Binary(op, std::move(lhs.scalar),
                                              std::move(rhs.scalar)));
    }
    // Mixed matrix/scalar.
    const bool matrix_left = lhs.is_matrix;
    MatrixExprPtr m = matrix_left ? std::move(lhs.matrix)
                                  : std::move(rhs.matrix);
    ScalarExprPtr s = matrix_left ? std::move(rhs.scalar)
                                  : std::move(lhs.scalar);
    switch (op) {
      case '*':
        return Value::Matrix(MatrixExpr::ScalarMul(std::move(m),
                                                   std::move(s)));
      case '+':
        return Value::Matrix(MatrixExpr::ScalarAdd(std::move(m),
                                                   std::move(s)));
      case '-':
        if (matrix_left) {  // X - s == X + (-s)
          return Value::Matrix(MatrixExpr::ScalarAdd(
              std::move(m), ScalarExpr::Binary('-', ScalarExpr::Literal(0.0),
                                               std::move(s))));
        }
        // s - X == (X * -1) + s
        return Value::Matrix(MatrixExpr::ScalarAdd(
            MatrixExpr::ScalarMul(std::move(m), ScalarExpr::Literal(-1.0)),
            std::move(s)));
      case '/':
        if (matrix_left) {  // X / s == X * (1/s)
          return Value::Matrix(MatrixExpr::ScalarMul(
              std::move(m), ScalarExpr::Binary('/', ScalarExpr::Literal(1.0),
                                               std::move(s))));
        }
        return Status::Unsupported("scalar / matrix is not supported");
      default:
        return Status::Internal("bad operator");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Program program_;
  std::unordered_map<std::string, int64_t> int_constants_;
  std::set<std::string> matrix_vars_;
  std::set<std::string> scalar_vars_;
  int next_random_ = 0;
};

}  // namespace

Result<Program> ParseProgram(const std::string& source) {
  Lexer lexer(source);
  DMAC_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Run());
  return Parser(std::move(tokens)).Run();
}

}  // namespace dmac
