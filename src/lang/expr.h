// Expression IR for matrix programs (paper Codes 1–5).
//
// A matrix program is a sequence of assignments whose right-hand sides are
// trees of MatrixExpr / ScalarExpr. Loops in the source program are unrolled
// by the builder (the paper likewise decomposes the whole program into one
// operator sequence). The IR is deliberately small: the five binary
// operators DMac supports, scalar ops, transpose, leaves, and scalar
// reductions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "matrix/shape.h"
#include "matrix/unary_fn.h"

namespace dmac {

/// The five binary matrix operators supported by DMac (paper §3.1).
enum class BinOpKind {
  kMultiply,      // %*%
  kAdd,           // +
  kSubtract,      // -
  kCellMultiply,  // *
  kCellDivide,    // /
};

const char* BinOpName(BinOpKind op);

/// Scalar reductions of a matrix.
enum class ReduceKind {
  kSum,    // sum of elements
  kNorm2,  // sqrt(sum of squares)
  kValue,  // the single element of a 1x1 matrix
};

const char* ReduceName(ReduceKind r);

struct MatrixExpr;
struct ScalarExpr;
using MatrixExprPtr = std::shared_ptr<const MatrixExpr>;
using ScalarExprPtr = std::shared_ptr<const ScalarExpr>;

/// A scalar-valued expression evaluated at the driver during execution.
struct ScalarExpr {
  enum class Kind { kLiteral, kVarRef, kReduce, kBinary, kSqrt };

  Kind kind;
  double literal = 0;        // kLiteral
  std::string name;          // kVarRef: scalar variable
  ReduceKind reduce = ReduceKind::kSum;  // kReduce
  MatrixExprPtr matrix;      // kReduce operand
  char op = '+';             // kBinary: one of + - * /
  ScalarExprPtr lhs, rhs;    // kBinary (lhs only for kSqrt)

  static ScalarExprPtr Literal(double v);
  static ScalarExprPtr VarRef(std::string name);
  static ScalarExprPtr Reduce(ReduceKind r, MatrixExprPtr m);
  static ScalarExprPtr Binary(char op, ScalarExprPtr l, ScalarExprPtr r);
  static ScalarExprPtr Sqrt(ScalarExprPtr v);
};

/// A matrix-valued expression node.
struct MatrixExpr {
  enum class Kind {
    kLoad,       // named input matrix
    kRandom,     // random dense matrix (generated in place on workers)
    kVarRef,     // reference to a program variable
    kBinary,     // one of the five binary operators
    kScalarMul,  // matrix * scalar-expression
    kScalarAdd,  // matrix + scalar-expression
    kTranspose,  // matrix transpose
    kRowSums,    // m×n → m×1 row aggregation
    kColSums,    // m×n → 1×n column aggregation
    kCellUnary,  // element-wise unary function
  };

  Kind kind;
  // kLoad / kVarRef: variable or input name. kRandom: generated name.
  std::string name;
  // kLoad / kRandom: declared shape and sparsity (1.0 = dense).
  Shape shape;
  double sparsity = 1.0;
  // kBinary
  BinOpKind bin_op = BinOpKind::kAdd;
  MatrixExprPtr lhs, rhs;
  // kScalarMul / kScalarAdd: lhs is the matrix operand.
  ScalarExprPtr scalar;
  // kCellUnary
  UnaryFnKind unary_fn = UnaryFnKind::kAbs;

  static MatrixExprPtr Load(std::string name, Shape shape, double sparsity);
  static MatrixExprPtr Random(std::string name, Shape shape);
  static MatrixExprPtr VarRef(std::string name);
  static MatrixExprPtr Binary(BinOpKind op, MatrixExprPtr l, MatrixExprPtr r);
  static MatrixExprPtr ScalarMul(MatrixExprPtr m, ScalarExprPtr s);
  static MatrixExprPtr ScalarAdd(MatrixExprPtr m, ScalarExprPtr s);
  static MatrixExprPtr Transpose(MatrixExprPtr m);
  static MatrixExprPtr RowSums(MatrixExprPtr m);
  static MatrixExprPtr ColSums(MatrixExprPtr m);
  static MatrixExprPtr CellUnary(UnaryFnKind fn, MatrixExprPtr m);
};

}  // namespace dmac
