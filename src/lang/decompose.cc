#include "lang/decompose.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/logging.h"

namespace dmac {

const char* OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kLoad:
      return "load";
    case OpKind::kRandom:
      return "random";
    case OpKind::kMultiply:
      return "multiply";
    case OpKind::kAdd:
      return "add";
    case OpKind::kSubtract:
      return "subtract";
    case OpKind::kCellMultiply:
      return "cell-multiply";
    case OpKind::kCellDivide:
      return "cell-divide";
    case OpKind::kScalarMultiply:
      return "scalar-multiply";
    case OpKind::kScalarAdd:
      return "scalar-add";
    case OpKind::kRowSums:
      return "row-sums";
    case OpKind::kColSums:
      return "col-sums";
    case OpKind::kCellUnary:
      return "cell-unary";
    case OpKind::kReduce:
      return "reduce";
    case OpKind::kScalarAssign:
      return "scalar-assign";
  }
  return "?";
}

std::string Operator::ToString() const {
  std::string s = "op" + std::to_string(id) + ": ";
  if (!output.empty()) s += output + " = ";
  if (!scalar_out.empty()) s += scalar_out + " = ";
  s += OpKindName(kind);
  if (kind == OpKind::kReduce) {
    s += std::string("(") + ReduceName(reduce) + ")";
  }
  for (size_t i = 0; i < inputs.size(); ++i) {
    s += (i == 0 ? " " : ", ") + inputs[i].ToString();
  }
  if (kind == OpKind::kLoad || kind == OpKind::kRandom) {
    s += " " + source + " " + decl_shape.ToString();
  }
  return s;
}

std::string OperatorList::ToString() const {
  std::string s;
  for (const Operator& op : ops) {
    s += op.ToString();
    s += "\n";
  }
  return s;
}

namespace {

OpKind BinOpToOpKind(BinOpKind op) {
  switch (op) {
    case BinOpKind::kMultiply:
      return OpKind::kMultiply;
    case BinOpKind::kAdd:
      return OpKind::kAdd;
    case BinOpKind::kSubtract:
      return OpKind::kSubtract;
    case BinOpKind::kCellMultiply:
      return OpKind::kCellMultiply;
    case BinOpKind::kCellDivide:
      return OpKind::kCellDivide;
  }
  return OpKind::kAdd;
}

/// Decomposition context: variable environments and emission buffers.
class Decomposer {
 public:
  Result<OperatorList> Run(const Program& program) {
    for (const Statement& st : program.statements) {
      stmt_ops_.clear();
      Status s = st.kind == Statement::Kind::kAssignMatrix
                     ? HandleMatrixStatement(st)
                     : HandleScalarStatement(st);
      DMAC_RETURN_NOT_OK(s);
      ReorderMultiplicationsFirst();
      for (Operator& op : stmt_ops_) {
        op.id = static_cast<int>(result_.ops.size());
        result_.ops.push_back(std::move(op));
      }
    }
    for (const std::string& out : program.outputs) {
      auto it = matrix_env_.find(out);
      if (it == matrix_env_.end()) {
        return Status::NotFound("output matrix variable never assigned: " +
                                out);
      }
      result_.output_bindings[out] = it->second;
    }
    for (const std::string& out : program.scalar_outputs) {
      auto it = scalar_env_.find(out);
      if (it == scalar_env_.end()) {
        return Status::NotFound("output scalar variable never assigned: " +
                                out);
      }
      result_.scalar_output_bindings[out] = it->second;
    }
    result_.checkpoint_vars = program.checkpoint_hints;
    EliminateDeadOperators();
    return std::move(result_);
  }

 private:
  Status HandleMatrixStatement(const Statement& st) {
    // Pure aliasing (`a = b` or `a = b.t`) introduces no operator.
    const MatrixExpr* e = st.matrix.get();
    bool alias_transposed = false;
    while (e->kind == MatrixExpr::Kind::kTranspose) {
      alias_transposed = !alias_transposed;
      e = e->lhs.get();
    }
    if (e->kind == MatrixExpr::Kind::kVarRef) {
      auto it = matrix_env_.find(e->name);
      if (it == matrix_env_.end()) {
        return Status::NotFound("matrix variable used before assignment: " +
                                e->name);
      }
      MatrixRef ref = it->second;
      ref.transposed = ref.transposed != alias_transposed;
      matrix_env_[st.target] = ref;
      return Status::Ok();
    }

    MatrixRef ref;
    DMAC_RETURN_NOT_OK(EmitMatrix(*st.matrix, &ref));
    // Rename the temp produced by the statement's root operator to the
    // versioned target, unless the root is an alias (handled above) —
    // compound roots always end in a fresh temp produced by the last op.
    const std::string ssa = NewVersion(st.target);
    if (!ref.transposed && !stmt_ops_.empty() &&
        stmt_ops_.back().output == ref.name) {
      stmt_ops_.back().output = ssa;
      RecordShape(ssa, ShapeOf(ref));
    } else {
      // Root was transposed or refers to an earlier op: keep the alias in
      // the environment instead of copying.
      matrix_env_[st.target] = ref;
      return Status::Ok();
    }
    matrix_env_[st.target] = MatrixRef{ssa, false};
    return Status::Ok();
  }

  Status HandleScalarStatement(const Statement& st) {
    ScalarExprPtr resolved;
    DMAC_RETURN_NOT_OK(EmitScalar(st.scalar, &resolved));
    const std::string ssa = NewVersion(st.target);
    Operator op;
    op.kind = OpKind::kScalarAssign;
    op.scalar = std::move(resolved);
    op.scalar_out = ssa;
    stmt_ops_.push_back(std::move(op));
    scalar_env_[st.target] = ssa;
    return Status::Ok();
  }

  Status EmitMatrix(const MatrixExpr& e, MatrixRef* out) {
    switch (e.kind) {
      case MatrixExpr::Kind::kVarRef: {
        auto it = matrix_env_.find(e.name);
        if (it == matrix_env_.end()) {
          return Status::NotFound("matrix variable used before assignment: " +
                                  e.name);
        }
        *out = it->second;
        return Status::Ok();
      }
      case MatrixExpr::Kind::kTranspose: {
        DMAC_RETURN_NOT_OK(EmitMatrix(*e.lhs, out));
        out->transposed = !out->transposed;
        return Status::Ok();
      }
      case MatrixExpr::Kind::kLoad:
      case MatrixExpr::Kind::kRandom: {
        Operator op;
        op.kind = e.kind == MatrixExpr::Kind::kLoad ? OpKind::kLoad
                                                    : OpKind::kRandom;
        op.decl_shape = e.shape;
        op.decl_sparsity = e.sparsity;
        op.source = e.name;
        op.output = NewTemp();
        RecordShape(op.output, e.shape);
        *out = MatrixRef{op.output, false};
        stmt_ops_.push_back(std::move(op));
        return Status::Ok();
      }
      case MatrixExpr::Kind::kBinary: {
        if (e.bin_op == BinOpKind::kMultiply) return EmitMultiplyChain(e, out);
        MatrixRef l, r;
        DMAC_RETURN_NOT_OK(EmitMatrix(*e.lhs, &l));
        DMAC_RETURN_NOT_OK(EmitMatrix(*e.rhs, &r));
        Operator op;
        op.kind = BinOpToOpKind(e.bin_op);
        op.inputs = {l, r};
        op.output = NewTemp();
        RecordShape(op.output, ShapeOf(l));
        *out = MatrixRef{op.output, false};
        stmt_ops_.push_back(std::move(op));
        return Status::Ok();
      }
      case MatrixExpr::Kind::kCellUnary: {
        MatrixRef operand;
        DMAC_RETURN_NOT_OK(EmitMatrix(*e.lhs, &operand));
        Operator op;
        op.kind = OpKind::kCellUnary;
        op.unary_fn = e.unary_fn;
        op.inputs = {operand};
        op.output = NewTemp();
        RecordShape(op.output, ShapeOf(operand));
        *out = MatrixRef{op.output, false};
        stmt_ops_.push_back(std::move(op));
        return Status::Ok();
      }
      case MatrixExpr::Kind::kRowSums:
      case MatrixExpr::Kind::kColSums: {
        MatrixRef operand;
        DMAC_RETURN_NOT_OK(EmitMatrix(*e.lhs, &operand));
        const bool rows = e.kind == MatrixExpr::Kind::kRowSums;
        Operator op;
        op.kind = rows ? OpKind::kRowSums : OpKind::kColSums;
        op.inputs = {operand};
        op.output = NewTemp();
        const Shape in_shape = ShapeOf(operand);
        RecordShape(op.output, rows ? Shape{in_shape.rows, 1}
                                    : Shape{1, in_shape.cols});
        *out = MatrixRef{op.output, false};
        stmt_ops_.push_back(std::move(op));
        return Status::Ok();
      }
      case MatrixExpr::Kind::kScalarMul:
      case MatrixExpr::Kind::kScalarAdd: {
        MatrixRef operand;
        DMAC_RETURN_NOT_OK(EmitMatrix(*e.lhs, &operand));
        ScalarExprPtr resolved;
        DMAC_RETURN_NOT_OK(EmitScalar(e.scalar, &resolved));
        Operator op;
        op.kind = e.kind == MatrixExpr::Kind::kScalarMul
                      ? OpKind::kScalarMultiply
                      : OpKind::kScalarAdd;
        op.inputs = {operand};
        op.scalar = std::move(resolved);
        op.output = NewTemp();
        RecordShape(op.output, ShapeOf(operand));
        *out = MatrixRef{op.output, false};
        stmt_ops_.push_back(std::move(op));
        return Status::Ok();
      }
    }
    return Status::Internal("unreachable MatrixExpr kind");
  }

  Status EmitScalar(const ScalarExprPtr& e, ScalarExprPtr* out) {
    switch (e->kind) {
      case ScalarExpr::Kind::kLiteral:
        *out = e;
        return Status::Ok();
      case ScalarExpr::Kind::kVarRef: {
        auto it = scalar_env_.find(e->name);
        if (it == scalar_env_.end()) {
          return Status::NotFound("scalar variable used before assignment: " +
                                  e->name);
        }
        *out = ScalarExpr::VarRef(it->second);
        return Status::Ok();
      }
      case ScalarExpr::Kind::kReduce: {
        MatrixRef operand;
        DMAC_RETURN_NOT_OK(EmitMatrix(*e->matrix, &operand));
        Operator op;
        op.kind = OpKind::kReduce;
        op.reduce = e->reduce;
        op.inputs = {operand};
        op.scalar_out = NewScalarTemp();
        *out = ScalarExpr::VarRef(op.scalar_out);
        stmt_ops_.push_back(std::move(op));
        return Status::Ok();
      }
      case ScalarExpr::Kind::kBinary: {
        ScalarExprPtr l, r;
        DMAC_RETURN_NOT_OK(EmitScalar(e->lhs, &l));
        DMAC_RETURN_NOT_OK(EmitScalar(e->rhs, &r));
        *out = ScalarExpr::Binary(e->op, std::move(l), std::move(r));
        return Status::Ok();
      }
      case ScalarExpr::Kind::kSqrt: {
        ScalarExprPtr l;
        DMAC_RETURN_NOT_OK(EmitScalar(e->lhs, &l));
        *out = ScalarExpr::Sqrt(std::move(l));
        return Status::Ok();
      }
    }
    return Status::Internal("unreachable ScalarExpr kind");
  }

  // ---- multiplication chain reassociation -------------------------------

  /// Flattens a tree of nested %*% nodes into its in-order factor list.
  static void FlattenMultiplyChain(const MatrixExpr& e,
                                   std::vector<const MatrixExpr*>* chain) {
    if (e.kind == MatrixExpr::Kind::kBinary &&
        e.bin_op == BinOpKind::kMultiply) {
      FlattenMultiplyChain(*e.lhs, chain);
      FlattenMultiplyChain(*e.rhs, chain);
    } else {
      chain->push_back(&e);
    }
  }

  /// Emits a multiplication chain with the parenthesization that minimizes
  /// scalar multiplications (classic matrix-chain DP). The paper's Fig. 3
  /// relies on this: `W %*% H %*% H.t` is evaluated as `W %*% (H %*% H.t)`,
  /// avoiding the huge dense W·H intermediate.
  Status EmitMultiplyChain(const MatrixExpr& root, MatrixRef* out) {
    std::vector<const MatrixExpr*> factors;
    FlattenMultiplyChain(root, &factors);
    const size_t n = factors.size();

    std::vector<MatrixRef> refs(n);
    std::vector<Shape> shapes(n);
    for (size_t i = 0; i < n; ++i) {
      DMAC_RETURN_NOT_OK(EmitMatrix(*factors[i], &refs[i]));
      shapes[i] = ShapeOf(refs[i]);
    }
    for (size_t i = 0; i + 1 < n; ++i) {
      if (shapes[i].cols != shapes[i + 1].rows) {
        return Status::DimensionMismatch(
            "multiply chain: " + shapes[i].ToString() + " %*% " +
            shapes[i + 1].ToString());
      }
    }

    if (n == 2) {
      *out = EmitMultiplyOp(refs[0], refs[1], shapes[0], shapes[1]);
      return Status::Ok();
    }

    // cost[i][j] = min scalar multiplications for factors i..j.
    std::vector<std::vector<double>> cost(n, std::vector<double>(n, 0));
    std::vector<std::vector<size_t>> split(n, std::vector<size_t>(n, 0));
    for (size_t len = 2; len <= n; ++len) {
      for (size_t i = 0; i + len <= n; ++i) {
        const size_t j = i + len - 1;
        cost[i][j] = std::numeric_limits<double>::infinity();
        for (size_t k = i; k < j; ++k) {
          const double c =
              cost[i][k] + cost[k + 1][j] +
              static_cast<double>(shapes[i].rows) *
                  static_cast<double>(shapes[k].cols) *
                  static_cast<double>(shapes[j].cols);
          if (c < cost[i][j]) {
            cost[i][j] = c;
            split[i][j] = k;
          }
        }
      }
    }
    *out = EmitChainRange(refs, shapes, split, 0, n - 1);
    return Status::Ok();
  }

  MatrixRef EmitChainRange(const std::vector<MatrixRef>& refs,
                           const std::vector<Shape>& shapes,
                           const std::vector<std::vector<size_t>>& split,
                           size_t i, size_t j) {
    if (i == j) return refs[i];
    const size_t k = split[i][j];
    const MatrixRef l = EmitChainRange(refs, shapes, split, i, k);
    const MatrixRef r = EmitChainRange(refs, shapes, split, k + 1, j);
    return EmitMultiplyOp(l, r, ShapeOf(l), ShapeOf(r));
  }

  MatrixRef EmitMultiplyOp(const MatrixRef& l, const MatrixRef& r,
                           const Shape& ls, const Shape& rs) {
    Operator op;
    op.kind = OpKind::kMultiply;
    op.inputs = {l, r};
    op.output = NewTemp();
    RecordShape(op.output, {ls.rows, rs.cols});
    MatrixRef out{op.output, false};
    stmt_ops_.push_back(std::move(op));
    return out;
  }

  void RecordShape(const std::string& ssa, Shape shape) {
    shapes_[ssa] = shape;
  }

  Shape ShapeOf(const MatrixRef& ref) const {
    auto it = shapes_.find(ref.name);
    DMAC_CHECK(it != shapes_.end()) << "no shape recorded for " << ref.name;
    return ref.transposed ? it->second.Transposed() : it->second;
  }

  /// Collects the scalar variable names a resolved ScalarExpr reads.
  static void CollectScalarRefs(const ScalarExprPtr& e,
                                std::unordered_set<std::string>* refs) {
    if (e == nullptr) return;
    if (e->kind == ScalarExpr::Kind::kVarRef) refs->insert(e->name);
    CollectScalarRefs(e->lhs, refs);
    CollectScalarRefs(e->rhs, refs);
  }

  /// Stable topological reorder of the statement's operators preferring
  /// multiplications among ready operators (paper §4.2.3).
  void ReorderMultiplicationsFirst() {
    const size_t n = stmt_ops_.size();
    if (n < 2) return;

    // Build intra-statement dependency edges via produced names.
    std::unordered_map<std::string, size_t> producer;
    for (size_t i = 0; i < n; ++i) {
      if (!stmt_ops_[i].output.empty()) producer[stmt_ops_[i].output] = i;
      if (!stmt_ops_[i].scalar_out.empty()) {
        producer[stmt_ops_[i].scalar_out] = i;
      }
    }
    std::vector<std::vector<size_t>> consumers(n);
    std::vector<int> pending(n, 0);
    for (size_t i = 0; i < n; ++i) {
      std::unordered_set<std::string> deps;
      for (const MatrixRef& ref : stmt_ops_[i].inputs) deps.insert(ref.name);
      CollectScalarRefs(stmt_ops_[i].scalar, &deps);
      for (const std::string& d : deps) {
        auto it = producer.find(d);
        if (it != producer.end() && it->second != i) {
          consumers[it->second].push_back(i);
          ++pending[i];
        }
      }
    }

    std::vector<Operator> ordered;
    ordered.reserve(n);
    std::vector<bool> emitted(n, false);
    for (size_t step = 0; step < n; ++step) {
      // Among ready ops, pick the first multiplication, else the first op.
      size_t pick = n;
      for (size_t i = 0; i < n; ++i) {
        if (emitted[i] || pending[i] > 0) continue;
        if (stmt_ops_[i].kind == OpKind::kMultiply) {
          pick = i;
          break;
        }
        if (pick == n) pick = i;
      }
      DMAC_CHECK_LT(pick, n) << "cycle in statement operator graph";
      emitted[pick] = true;
      for (size_t c : consumers[pick]) --pending[c];
      ordered.push_back(std::move(stmt_ops_[pick]));
    }
    stmt_ops_ = std::move(ordered);
  }

  /// Dead-code elimination: drops operators whose results can never reach a
  /// program output. Iterates a backward liveness pass over the SSA list —
  /// an operator is live iff its matrix output or scalar output is read by
  /// a live operator or is itself a program output.
  void EliminateDeadOperators() {
    std::unordered_set<std::string> live_names;
    for (const auto& [var, ref] : result_.output_bindings) {
      live_names.insert(ref.name);
    }
    for (const auto& [var, ssa] : result_.scalar_output_bindings) {
      live_names.insert(ssa);
    }

    std::vector<bool> live(result_.ops.size(), false);
    for (size_t i = result_.ops.size(); i-- > 0;) {
      const Operator& op = result_.ops[i];
      const bool needed =
          (!op.output.empty() && live_names.count(op.output)) ||
          (!op.scalar_out.empty() && live_names.count(op.scalar_out));
      if (!needed) continue;
      live[i] = true;
      for (const MatrixRef& ref : op.inputs) live_names.insert(ref.name);
      CollectScalarRefs(op.scalar, &live_names);
    }

    std::vector<Operator> kept;
    kept.reserve(result_.ops.size());
    for (size_t i = 0; i < result_.ops.size(); ++i) {
      if (!live[i]) continue;
      Operator op = std::move(result_.ops[i]);
      op.id = static_cast<int>(kept.size());
      kept.push_back(std::move(op));
    }
    result_.ops = std::move(kept);
  }

  std::string NewVersion(const std::string& var) {
    const int v = ++matrix_version_[var];
    return var + "#" + std::to_string(v);
  }
  std::string NewTemp() { return "_t" + std::to_string(next_temp_++); }
  std::string NewScalarTemp() { return "_s" + std::to_string(next_stemp_++); }

  OperatorList result_;
  std::vector<Operator> stmt_ops_;
  std::unordered_map<std::string, MatrixRef> matrix_env_;
  std::unordered_map<std::string, std::string> scalar_env_;
  std::unordered_map<std::string, Shape> shapes_;
  std::unordered_map<std::string, int> matrix_version_;
  int next_temp_ = 0;
  int next_stemp_ = 0;
};

}  // namespace

Result<OperatorList> Decompose(const Program& program) {
  return Decomposer().Run(program);
}

}  // namespace dmac
