#include "lang/expr.h"

namespace dmac {

const char* BinOpName(BinOpKind op) {
  switch (op) {
    case BinOpKind::kMultiply:
      return "%*%";
    case BinOpKind::kAdd:
      return "+";
    case BinOpKind::kSubtract:
      return "-";
    case BinOpKind::kCellMultiply:
      return "*";
    case BinOpKind::kCellDivide:
      return "/";
  }
  return "?";
}

const char* ReduceName(ReduceKind r) {
  switch (r) {
    case ReduceKind::kSum:
      return "sum";
    case ReduceKind::kNorm2:
      return "norm2";
    case ReduceKind::kValue:
      return "value";
  }
  return "?";
}

ScalarExprPtr ScalarExpr::Literal(double v) {
  auto e = std::make_shared<ScalarExpr>();
  e->kind = Kind::kLiteral;
  e->literal = v;
  return e;
}

ScalarExprPtr ScalarExpr::VarRef(std::string name) {
  auto e = std::make_shared<ScalarExpr>();
  e->kind = Kind::kVarRef;
  e->name = std::move(name);
  return e;
}

ScalarExprPtr ScalarExpr::Reduce(ReduceKind r, MatrixExprPtr m) {
  auto e = std::make_shared<ScalarExpr>();
  e->kind = Kind::kReduce;
  e->reduce = r;
  e->matrix = std::move(m);
  return e;
}

ScalarExprPtr ScalarExpr::Binary(char op, ScalarExprPtr l, ScalarExprPtr r) {
  auto e = std::make_shared<ScalarExpr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

ScalarExprPtr ScalarExpr::Sqrt(ScalarExprPtr v) {
  auto e = std::make_shared<ScalarExpr>();
  e->kind = Kind::kSqrt;
  e->lhs = std::move(v);
  return e;
}

MatrixExprPtr MatrixExpr::Load(std::string name, Shape shape,
                               double sparsity) {
  auto e = std::make_shared<MatrixExpr>();
  e->kind = Kind::kLoad;
  e->name = std::move(name);
  e->shape = shape;
  e->sparsity = sparsity;
  return e;
}

MatrixExprPtr MatrixExpr::Random(std::string name, Shape shape) {
  auto e = std::make_shared<MatrixExpr>();
  e->kind = Kind::kRandom;
  e->name = std::move(name);
  e->shape = shape;
  e->sparsity = 1.0;
  return e;
}

MatrixExprPtr MatrixExpr::VarRef(std::string name) {
  auto e = std::make_shared<MatrixExpr>();
  e->kind = Kind::kVarRef;
  e->name = std::move(name);
  return e;
}

MatrixExprPtr MatrixExpr::Binary(BinOpKind op, MatrixExprPtr l,
                                 MatrixExprPtr r) {
  auto e = std::make_shared<MatrixExpr>();
  e->kind = Kind::kBinary;
  e->bin_op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

MatrixExprPtr MatrixExpr::ScalarMul(MatrixExprPtr m, ScalarExprPtr s) {
  auto e = std::make_shared<MatrixExpr>();
  e->kind = Kind::kScalarMul;
  e->lhs = std::move(m);
  e->scalar = std::move(s);
  return e;
}

MatrixExprPtr MatrixExpr::ScalarAdd(MatrixExprPtr m, ScalarExprPtr s) {
  auto e = std::make_shared<MatrixExpr>();
  e->kind = Kind::kScalarAdd;
  e->lhs = std::move(m);
  e->scalar = std::move(s);
  return e;
}

MatrixExprPtr MatrixExpr::Transpose(MatrixExprPtr m) {
  auto e = std::make_shared<MatrixExpr>();
  e->kind = Kind::kTranspose;
  e->lhs = std::move(m);
  return e;
}

MatrixExprPtr MatrixExpr::RowSums(MatrixExprPtr m) {
  auto e = std::make_shared<MatrixExpr>();
  e->kind = Kind::kRowSums;
  e->lhs = std::move(m);
  return e;
}

MatrixExprPtr MatrixExpr::ColSums(MatrixExprPtr m) {
  auto e = std::make_shared<MatrixExpr>();
  e->kind = Kind::kColSums;
  e->lhs = std::move(m);
  return e;
}

MatrixExprPtr MatrixExpr::CellUnary(UnaryFnKind fn, MatrixExprPtr m) {
  auto e = std::make_shared<MatrixExpr>();
  e->kind = Kind::kCellUnary;
  e->unary_fn = fn;
  e->lhs = std::move(m);
  return e;
}


}  // namespace dmac
