// The decomposed form of a matrix program: an ordered list of matrix
// operators in SSA form. This is the input of the planners (paper §4:
// "DMac decomposes the program into a sequence of matrix operators").
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "lang/expr.h"

namespace dmac {

/// Reference to a (possibly transposed) materialized matrix. Transposition
/// is not an operator in DMac — it is part of the dependency between the
/// consuming operator and the producer (paper Table 2, B = Aᵀ cases).
struct MatrixRef {
  std::string name;        // SSA name, e.g. "H#2" or "_t14"
  bool transposed = false;

  std::string ToString() const { return transposed ? name + "^T" : name; }
  bool operator==(const MatrixRef& o) const {
    return name == o.name && transposed == o.transposed;
  }
};

/// Kinds of decomposed operators.
enum class OpKind {
  kLoad,            // read an input matrix from storage
  kRandom,          // generate a random dense matrix in place
  kMultiply,        // %*%
  kAdd,             // +
  kSubtract,        // -
  kCellMultiply,    // *
  kCellDivide,      // /
  kScalarMultiply,  // matrix · scalar
  kScalarAdd,       // matrix + scalar
  kRowSums,         // m×n → m×1
  kColSums,         // m×n → 1×n
  kCellUnary,       // element-wise unary function
  kReduce,          // matrix → scalar (sum / norm2 / value)
  kScalarAssign,    // driver-side scalar assignment (no matrix events)
};

const char* OpKindName(OpKind k);

/// True for the five matrix-valued binary operators.
inline bool IsBinaryMatrixOp(OpKind k) {
  return k == OpKind::kMultiply || k == OpKind::kAdd ||
         k == OpKind::kSubtract || k == OpKind::kCellMultiply ||
         k == OpKind::kCellDivide;
}

/// One decomposed operator.
struct Operator {
  int id = -1;
  OpKind kind = OpKind::kLoad;

  std::vector<MatrixRef> inputs;  // 0, 1, or 2 matrix inputs
  std::string output;             // SSA name of the produced matrix, or ""

  // kLoad / kRandom: declared metadata. `source` is the binding key for
  // kLoad and the generator seed name for kRandom.
  Shape decl_shape;
  double decl_sparsity = 1.0;
  std::string source;

  // kScalarMultiply / kScalarAdd / kScalarAssign: scalar operand with all
  // variable references resolved to SSA scalar names.
  ScalarExprPtr scalar;

  // kReduce / kScalarAssign: SSA name of the produced scalar.
  ReduceKind reduce = ReduceKind::kSum;
  std::string scalar_out;

  // kCellUnary: the function applied.
  UnaryFnKind unary_fn = UnaryFnKind::kAbs;

  std::string ToString() const;
};

/// The full decomposition of a program.
struct OperatorList {
  std::vector<Operator> ops;
  /// program output variable → SSA name holding its final value
  /// (second = transposed flag of the final binding).
  std::unordered_map<std::string, MatrixRef> output_bindings;
  /// program scalar output → SSA scalar name.
  std::unordered_map<std::string, std::string> scalar_output_bindings;
  /// Program variables hinted for checkpointing (every SSA version of a
  /// hinted variable inherits the hint when the plan is generated).
  std::vector<std::string> checkpoint_vars;

  std::string ToString() const;
};

}  // namespace dmac
