#include "lang/program.h"

#include "common/logging.h"

namespace dmac {

Mat Mat::mm(const Mat& other) const {
  return Mat(MatrixExpr::Binary(BinOpKind::kMultiply, expr_, other.expr_));
}

Mat Mat::t() const { return Mat(MatrixExpr::Transpose(expr_)); }

Mat Mat::RowSums() const { return Mat(MatrixExpr::RowSums(expr_)); }

Mat Mat::ColSums() const { return Mat(MatrixExpr::ColSums(expr_)); }

Mat Mat::Exp() const {
  return Mat(MatrixExpr::CellUnary(UnaryFnKind::kExp, expr_));
}
Mat Mat::Log() const {
  return Mat(MatrixExpr::CellUnary(UnaryFnKind::kLog, expr_));
}
Mat Mat::Abs() const {
  return Mat(MatrixExpr::CellUnary(UnaryFnKind::kAbs, expr_));
}
Mat Mat::Sigmoid() const {
  return Mat(MatrixExpr::CellUnary(UnaryFnKind::kSigmoid, expr_));
}
Mat Mat::Square() const {
  return Mat(MatrixExpr::CellUnary(UnaryFnKind::kSquare, expr_));
}

Mat Mat::operator+(const Mat& other) const {
  return Mat(MatrixExpr::Binary(BinOpKind::kAdd, expr_, other.expr_));
}

Mat Mat::operator-(const Mat& other) const {
  return Mat(MatrixExpr::Binary(BinOpKind::kSubtract, expr_, other.expr_));
}

Mat Mat::operator*(const Mat& other) const {
  return Mat(MatrixExpr::Binary(BinOpKind::kCellMultiply, expr_, other.expr_));
}

Mat Mat::operator/(const Mat& other) const {
  return Mat(MatrixExpr::Binary(BinOpKind::kCellDivide, expr_, other.expr_));
}

Mat Mat::operator*(double scalar) const {
  return Mat(MatrixExpr::ScalarMul(expr_, ScalarExpr::Literal(scalar)));
}

Mat Mat::operator+(double scalar) const {
  return Mat(MatrixExpr::ScalarAdd(expr_, ScalarExpr::Literal(scalar)));
}

Mat Mat::operator-(double scalar) const {
  return Mat(MatrixExpr::ScalarAdd(expr_, ScalarExpr::Literal(-scalar)));
}

Scl Mat::Sum() const { return Scl(ScalarExpr::Reduce(ReduceKind::kSum, expr_)); }

Scl Mat::Norm2() const {
  return Scl(ScalarExpr::Reduce(ReduceKind::kNorm2, expr_));
}

Scl Mat::Value() const {
  return Scl(ScalarExpr::Reduce(ReduceKind::kValue, expr_));
}

Mat operator*(double scalar, const Mat& m) { return m * scalar; }

Scl Scl::operator+(const Scl& o) const {
  return Scl(ScalarExpr::Binary('+', expr_, o.expr_));
}
Scl Scl::operator-(const Scl& o) const {
  return Scl(ScalarExpr::Binary('-', expr_, o.expr_));
}
Scl Scl::operator*(const Scl& o) const {
  return Scl(ScalarExpr::Binary('*', expr_, o.expr_));
}
Scl Scl::operator/(const Scl& o) const {
  return Scl(ScalarExpr::Binary('/', expr_, o.expr_));
}
Scl Scl::Sqrt() const { return Scl(ScalarExpr::Sqrt(expr_)); }

Mat Scl::operator*(const Mat& m) const {
  return Mat(MatrixExpr::ScalarMul(m.expr(), expr_));
}

Mat ProgramBuilder::Load(const std::string& name, Shape shape,
                         double sparsity) {
  Statement st;
  st.kind = Statement::Kind::kAssignMatrix;
  st.target = name;
  st.matrix = MatrixExpr::Load(name, shape, sparsity);
  program_.statements.push_back(std::move(st));
  return Mat(MatrixExpr::VarRef(name));
}

Mat ProgramBuilder::Random(const std::string& name, Shape shape) {
  Statement st;
  st.kind = Statement::Kind::kAssignMatrix;
  st.target = name;
  st.matrix = MatrixExpr::Random(name, shape);
  program_.statements.push_back(std::move(st));
  return Mat(MatrixExpr::VarRef(name));
}

Mat ProgramBuilder::Var(const std::string& name) {
  return Mat(MatrixExpr::VarRef(name));
}

Scl ProgramBuilder::ScalarVar(const std::string& name, double initial) {
  Statement st;
  st.kind = Statement::Kind::kAssignScalar;
  st.target = name;
  st.scalar = ScalarExpr::Literal(initial);
  program_.statements.push_back(std::move(st));
  return Scl(ScalarExpr::VarRef(name));
}

void ProgramBuilder::Assign(const Mat& target, const Mat& expr) {
  DMAC_CHECK(target.expr() != nullptr &&
             target.expr()->kind == MatrixExpr::Kind::kVarRef)
      << "Assign target must be a matrix variable";
  Statement st;
  st.kind = Statement::Kind::kAssignMatrix;
  st.target = target.expr()->name;
  st.matrix = expr.expr();
  program_.statements.push_back(std::move(st));
}

void ProgramBuilder::Assign(const Scl& target, const Scl& expr) {
  DMAC_CHECK(target.expr() != nullptr &&
             target.expr()->kind == ScalarExpr::Kind::kVarRef)
      << "Assign target must be a scalar variable";
  Statement st;
  st.kind = Statement::Kind::kAssignScalar;
  st.target = target.expr()->name;
  st.scalar = expr.expr();
  program_.statements.push_back(std::move(st));
}

void ProgramBuilder::Output(const Mat& var) {
  DMAC_CHECK(var.expr() != nullptr &&
             var.expr()->kind == MatrixExpr::Kind::kVarRef)
      << "Output must be a matrix variable";
  program_.outputs.push_back(var.expr()->name);
}

void ProgramBuilder::OutputScalar(const Scl& var) {
  DMAC_CHECK(var.expr() != nullptr &&
             var.expr()->kind == ScalarExpr::Kind::kVarRef)
      << "OutputScalar must be a scalar variable";
  program_.scalar_outputs.push_back(var.expr()->name);
}

void ProgramBuilder::CheckpointHint(const Mat& var) {
  DMAC_CHECK(var.expr() != nullptr &&
             var.expr()->kind == MatrixExpr::Kind::kVarRef)
      << "CheckpointHint must name a matrix variable";
  program_.checkpoint_hints.push_back(var.expr()->name);
}

Program ProgramBuilder::Build() { return std::move(program_); }

}  // namespace dmac
