// Shape inference & conformance (pass 1).
//
// Operator level: recomputes every operator's output shape from the load /
// random leaves with its own walk (tolerating malformed arity, unknown
// names, and other corruption the SizeEstimator would crash on), flags any
// multiply / cell-wise operator whose operand shapes do not conform, and
// cross-checks the recomputed shapes against the planner's SizeEstimator.
//
// Plan level: recomputes every step's output shape from its input nodes and
// flags steps whose recorded node stats disagree.
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/passes.h"

namespace dmac {

namespace {

constexpr char kPass[] = "shape-inference";

class ShapeInferencePass final : public AnalysisPass {
 public:
  const char* name() const override { return kPass; }

  void Run(const AnalysisContext& ctx,
           std::vector<Diagnostic>* out) const override {
    if (ctx.ops != nullptr) CheckOperators(ctx, out);
    if (ctx.plan != nullptr) CheckPlan(*ctx.plan, out);
  }

 private:
  static void Report(std::vector<Diagnostic>* out, Severity sev, int op_id,
                     std::string message, std::string fixit = "") {
    out->push_back(
        {sev, kPass, op_id, std::move(message), std::move(fixit)});
  }

  void CheckOperators(const AnalysisContext& ctx,
                      std::vector<Diagnostic>* out) const {
    const OperatorList& ops = *ctx.ops;
    std::unordered_map<std::string, Shape> shapes;

    for (const Operator& op : ops.ops) {
      const int arity = ExpectedOperandCount(op.kind);
      if (static_cast<int>(op.inputs.size()) != arity) {
        Report(out, Severity::kError, op.id,
               std::string(OpKindName(op.kind)) + " operator has " +
                   std::to_string(op.inputs.size()) + " inputs, expected " +
                   std::to_string(arity),
               "re-run the decomposer; the operator list is corrupted");
        continue;  // operand accesses below would be meaningless
      }

      // Resolve input shapes; skip inference when any operand is unknown
      // (the dependency-graph pass reports undefined names).
      std::vector<Shape> in;
      bool known = true;
      for (const MatrixRef& ref : op.inputs) {
        auto it = shapes.find(ref.name);
        if (it == shapes.end()) {
          known = false;
          break;
        }
        in.push_back(ref.transposed ? it->second.Transposed() : it->second);
      }
      if (!known) continue;

      Shape result{0, 0};
      bool produces = !op.output.empty();
      switch (op.kind) {
        case OpKind::kLoad:
        case OpKind::kRandom:
          result = op.decl_shape;
          if (result.rows <= 0 || result.cols <= 0) {
            Report(out, Severity::kError, op.id,
                   op.ToString() + ": declared shape " + result.ToString() +
                       " is not positive",
                   "declare the input with its true dimensions");
            produces = false;
          }
          break;
        case OpKind::kMultiply:
          if (in[0].cols != in[1].rows) {
            Report(out, Severity::kError, op.id,
                   op.ToString() + ": operand shapes do not conform, " +
                       in[0].ToString() + " %*% " + in[1].ToString(),
                   "inner dimensions must match; check transposes");
            produces = false;
          } else {
            result = {in[0].rows, in[1].cols};
          }
          break;
        case OpKind::kAdd:
        case OpKind::kSubtract:
        case OpKind::kCellMultiply:
        case OpKind::kCellDivide:
          if (in[0] != in[1]) {
            Report(out, Severity::kError, op.id,
                   op.ToString() + ": operand shapes differ, " +
                       in[0].ToString() + " vs " + in[1].ToString(),
                   "cell-wise operands must have identical shapes");
            produces = false;
          } else {
            result = in[0];
          }
          break;
        case OpKind::kScalarMultiply:
        case OpKind::kScalarAdd:
        case OpKind::kCellUnary:
          result = in[0];
          break;
        case OpKind::kRowSums:
          result = {in[0].rows, 1};
          break;
        case OpKind::kColSums:
          result = {1, in[0].cols};
          break;
        case OpKind::kReduce:
          if (op.reduce == ReduceKind::kValue &&
              (in[0].rows != 1 || in[0].cols != 1)) {
            Report(out, Severity::kError, op.id,
                   op.ToString() + ": .value requires a 1x1 matrix, got " +
                       in[0].ToString(),
                   "reduce with sum()/norm2(), or slice to a 1x1 matrix");
          }
          produces = false;
          break;
        case OpKind::kScalarAssign:
          produces = false;
          break;
      }
      if (!produces || op.output.empty()) continue;
      shapes[op.output] = result;

      // Cross-check against the planner's SizeEstimator (ctx.stats).
      auto st = ctx.stats.find(op.output);
      if (st != ctx.stats.end() && st->second.shape != result) {
        Report(out, Severity::kError, op.id,
               op.ToString() + ": SizeEstimator recorded shape " +
                   st->second.shape.ToString() +
                   " but shape inference derives " + result.ToString(),
               "planner size estimation diverged; fix EstimateSizes");
      }
    }
  }

  void CheckPlan(const Plan& plan, std::vector<Diagnostic>* out) const {
    for (const PlanStep& step : plan.steps) {
      // Resolve input node shapes; skip corrupt references (graph pass).
      std::vector<Shape> in;
      bool known = true;
      for (int id : step.inputs) {
        if (!ValidNode(plan, id)) {
          known = false;
          break;
        }
        in.push_back(plan.nodes[static_cast<size_t>(id)].stats.shape);
      }
      if (!known || !ValidNode(plan, step.output)) continue;
      const Shape got = plan.nodes[static_cast<size_t>(step.output)].stats.shape;

      bool has_expected = true;
      Shape expected{0, 0};
      switch (step.kind) {
        case StepKind::kLoad:
        case StepKind::kRandom:
          expected = step.decl_shape;
          break;
        case StepKind::kPartition:
        case StepKind::kBroadcast:
        case StepKind::kExtract:
          if (in.size() != 1) continue;
          expected = in[0];
          break;
        case StepKind::kTranspose:
          if (in.size() != 1) continue;
          expected = in[0].Transposed();
          break;
        case StepKind::kCompute:
          switch (step.op_kind) {
            case OpKind::kMultiply: {
              if (in.size() != 2) continue;
              // Transpose-fused operands are stored untransposed; the
              // kernel reads them through the step's flags, so conformance
              // is over the *effective* shapes.
              const Shape eff_a = step.trans_a ? in[0].Transposed() : in[0];
              const Shape eff_b = step.trans_b ? in[1].Transposed() : in[1];
              if (eff_a.cols != eff_b.rows) {
                Report(out, Severity::kError, step.id,
                       StepLabel(step) + ": operand shapes do not conform, " +
                           eff_a.ToString() + " %*% " + eff_b.ToString(),
                       "re-run the planner on a conforming operator list");
                continue;
              }
              expected = {eff_a.rows, eff_b.cols};
              break;
            }
            case OpKind::kAdd:
            case OpKind::kSubtract:
            case OpKind::kCellMultiply:
            case OpKind::kCellDivide:
              if (in.size() != 2) continue;
              if (in[0] != in[1]) {
                Report(out, Severity::kError, step.id,
                       StepLabel(step) + ": operand shapes differ, " +
                           in[0].ToString() + " vs " + in[1].ToString(),
                       "cell-wise operands must have identical shapes");
                continue;
              }
              expected = in[0];
              break;
            case OpKind::kRowSums:
              if (in.size() != 1) continue;
              expected = {in[0].rows, 1};
              break;
            case OpKind::kColSums:
              if (in.size() != 1) continue;
              expected = {1, in[0].cols};
              break;
            default:
              if (in.size() != 1) continue;
              expected = in[0];
              break;
          }
          break;
        case StepKind::kReduce:
        case StepKind::kScalarAssign:
          has_expected = false;
          break;
      }
      if (has_expected && expected != got) {
        Report(out, Severity::kError, step.id,
               StepLabel(step) + ": output node " +
                   NodeLabel(plan, step.output) + " records shape " +
                   got.ToString() + ", inputs imply " + expected.ToString(),
               "the plan's node stats are stale or corrupted");
      }
    }
  }
};

}  // namespace

AnalysisPassPtr MakeShapeInferencePass() {
  return std::make_unique<ShapeInferencePass>();
}

}  // namespace dmac
