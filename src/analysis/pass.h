// The AnalysisPass interface and the context passes run against.
//
// A pass is a stateless checker over the decomposed operator list and/or the
// finalized physical plan. Passes never mutate anything; they append
// Diagnostics. Either input may be absent: `dmac_lint` runs the
// operator-level checks before a plan exists, and a corrupted-plan check may
// run with a plan alone.
#pragma once

#include <memory>
#include <vector>

#include "analysis/diagnostic.h"
#include "lang/op.h"
#include "plan/plan.h"
#include "plan/size_estimator.h"

namespace dmac {

/// Everything a pass may inspect. Non-owning; the caller keeps the operator
/// list and plan alive for the duration of the run.
struct AnalysisContext {
  /// Decomposed program, or nullptr for plan-only analysis.
  const OperatorList* ops = nullptr;
  /// Finalized plan, or nullptr for operator-level linting.
  const Plan* plan = nullptr;
  /// Worst-case stats per SSA matrix, recomputed from `ops` by the analyzer
  /// (empty when `ops` is null or size estimation itself failed).
  StatsMap stats;
  /// N in the cost model; must match the planner's setting for the
  /// communication cross-check to be meaningful.
  int num_workers = 4;
  /// Degraded-mode quorum the run will enforce (executor min_workers). The
  /// lineage pass flags an infeasible quorum — one the cluster cannot
  /// satisfy even before any death.
  int min_workers = 1;
  /// Memory budget the plan must run under, in bytes; 0 = unlimited. The
  /// memory-footprint pass errors when a single step's pinned working set
  /// cannot fit (docs/governance.md).
  int64_t memory_budget_bytes = 0;
  /// The run will restore / maintain durable checkpoints (--resume). The
  /// lineage pass warns when the plan carries no checkpoint hints — the
  /// durable cadence then snapshots every producing step, which is correct
  /// but can dominate the run's I/O (docs/fault_tolerance.md).
  bool resume = false;
};

/// One static check. Implementations live in the *_pass.cc files and are
/// instantiated through the factories in passes.h.
class AnalysisPass {
 public:
  virtual ~AnalysisPass() = default;

  /// Stable pass name used in diagnostics, e.g. "scheme-consistency".
  virtual const char* name() const = 0;

  /// Appends findings to `out`. Must tolerate any malformed input without
  /// crashing — the whole point is to diagnose corrupted IR.
  virtual void Run(const AnalysisContext& ctx,
                   std::vector<Diagnostic>* out) const = 0;
};

using AnalysisPassPtr = std::unique_ptr<AnalysisPass>;

// ---- helpers shared by the pass implementations (analyzer.cc) ------------

/// True when `id` indexes a node of `plan`.
bool ValidNode(const Plan& plan, int id);

/// "step s3 (compute[multiply:RMM1])" — stable label for diagnostics.
std::string StepLabel(const PlanStep& step);

/// "W#1(r)" — node rendering guarded against out-of-range ids.
std::string NodeLabel(const Plan& plan, int id);

/// Number of matrix operands an operator of `kind` must carry.
int ExpectedOperandCount(OpKind kind);

}  // namespace dmac
