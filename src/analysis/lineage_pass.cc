// Lineage completeness (pass 6).
//
// Fault recovery (docs/fault_tolerance.md) rebuilds a lost partition by
// re-running the producer step recorded in the node's lineage, recursing
// through that step's inputs. That only terminates — and only rebuilds the
// right data — when the plan itself is recoverable: every materialized
// node's `producer_step` annotation points at the step that actually writes
// it, every node a step consumes is producible, and walking producers
// backwards from every program output bottoms out at regenerable sources
// (load / random) without revisiting a node (a lineage cycle would make
// recovery recurse forever).
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/passes.h"

namespace dmac {

namespace {

constexpr char kPass[] = "lineage-completeness";

class LineageCompletenessPass final : public AnalysisPass {
 public:
  const char* name() const override { return kPass; }

  void Run(const AnalysisContext& ctx,
           std::vector<Diagnostic>* out) const override {
    if (ctx.plan == nullptr) return;  // plan-level pass only
    const Plan& plan = *ctx.plan;
    const int num_nodes = static_cast<int>(plan.nodes.size());

    // 0. Degraded-mode quorum feasibility: a quorum larger than the cluster
    //    can never be met, so the very first permanent worker death — or,
    //    for min_workers > num_workers, even a fault-free run's first
    //    quorum check — fails the query.
    if (ctx.min_workers > ctx.num_workers) {
      out->push_back(
          {Severity::kError, kPass, -1,
           "degraded-mode quorum of " + std::to_string(ctx.min_workers) +
               " workers exceeds the " + std::to_string(ctx.num_workers) +
               "-worker cluster",
           "any permanent worker death fails the query immediately"});
    } else if (ctx.min_workers == ctx.num_workers && ctx.num_workers > 1) {
      out->push_back(
          {Severity::kWarning, kPass, -1,
           "degraded-mode quorum of " + std::to_string(ctx.min_workers) +
               " equals the cluster size",
           "the run cannot tolerate a single permanent worker loss"});
    }

    // 0b. Durable-restart cadence: with --resume (or any durable checkpoint
    //     dir) and no checkpoint hints in the plan, the durable layer
    //     defaults to snapshotting after every producing step. Correct, but
    //     worth a heads-up — epoch commit I/O can dominate the run.
    if (ctx.resume) {
      bool any_hint = false;
      for (const PlanNode& node : plan.nodes) {
        if (node.checkpoint_hint) any_hint = true;
      }
      if (!any_hint) {
        out->push_back(
            {Severity::kWarning, kPass, -1,
             "resume requested but the plan carries no checkpoint hints; "
             "every producing step commits a durable epoch",
             "checkpoint I/O may dominate the run (docs/fault_tolerance.md)"});
      }
    }

    // The actual producer of each node, from the step table.
    std::vector<int> producer(static_cast<size_t>(num_nodes), -1);
    for (const PlanStep& step : plan.steps) {
      if (step.output >= 0 && step.output < num_nodes) {
        producer[static_cast<size_t>(step.output)] = step.id;
      }
    }

    // 1. The node table's producer_step annotations must agree with the
    //    step table — recovery re-runs plan.steps[producer_step] and would
    //    rebuild the wrong matrix (or crash) on a stale annotation.
    for (const PlanNode& node : plan.nodes) {
      const int actual = ValidNode(plan, node.id)
                             ? producer[static_cast<size_t>(node.id)]
                             : -1;
      if (node.producer_step == actual) continue;
      if (node.producer_step < 0 ||
          static_cast<size_t>(node.producer_step) >= plan.steps.size()) {
        out->push_back({Severity::kError, kPass, actual,
                        "node " + node.ToString() + " (id " +
                            std::to_string(node.id) +
                            ") records producer_step " +
                            std::to_string(node.producer_step) +
                            " outside the step table",
                        "lineage recovery cannot rebuild this node"});
      } else {
        out->push_back({Severity::kError, kPass, node.producer_step,
                        "node " + node.ToString() + " (id " +
                            std::to_string(node.id) +
                            ") records producer_step " +
                            std::to_string(node.producer_step) +
                            " but is written by step s" +
                            std::to_string(actual),
                        "lineage recovery would re-run the wrong step"});
      }
    }

    // 2. Every node any step consumes must be producible.
    for (const PlanStep& step : plan.steps) {
      for (int id : step.inputs) {
        if (id < 0 || id >= num_nodes) continue;  // graph pass reports these
        if (producer[static_cast<size_t>(id)] < 0) {
          out->push_back({Severity::kError, kPass, step.id,
                          StepLabel(step) + " consumes node " +
                              NodeLabel(plan, id) + " (id " +
                              std::to_string(id) + ") that no step produces",
                          "the node is unrecoverable after a fault"});
        }
      }
    }

    // 3. The lineage closure of every program output must terminate at
    //    load / random sources without cycles.
    for (const PlanOutput& po : plan.outputs) {
      std::unordered_set<int> on_path;
      std::unordered_set<int> done;
      WalkLineage(plan, producer, po.node, po.variable, &on_path, &done,
                  out);
    }
  }

 private:
  /// DFS over producer edges. `on_path` holds the current chain for cycle
  /// detection; `done` memoizes fully-walked nodes so shared sub-lineages
  /// are walked (and reported) once per output — iterative plans share
  /// almost every sub-lineage, so without the memo the walk is exponential
  /// in the iteration count.
  void WalkLineage(const Plan& plan, const std::vector<int>& producer,
                   int id, const std::string& output_var,
                   std::unordered_set<int>* on_path,
                   std::unordered_set<int>* done,
                   std::vector<Diagnostic>* out) const {
    if (!ValidNode(plan, id)) {
      out->push_back({Severity::kError, kPass, -1,
                      "output " + output_var + " binds node id " +
                          std::to_string(id) + " outside the node table",
                      "the output is unrecoverable after a fault"});
      return;
    }
    if (done->count(id) != 0) return;
    if (!on_path->insert(id).second) {
      out->push_back({Severity::kError, kPass,
                      producer[static_cast<size_t>(id)],
                      "lineage of output " + output_var +
                          " cycles through node " + NodeLabel(plan, id) +
                          " (id " + std::to_string(id) + ")",
                      "recovery recursion would never terminate"});
      return;
    }
    const int step_id = producer[static_cast<size_t>(id)];
    if (step_id < 0) {
      out->push_back({Severity::kError, kPass, -1,
                      "lineage of output " + output_var +
                          " dead-ends at node " + NodeLabel(plan, id) +
                          " (id " + std::to_string(id) +
                          ") that no step produces",
                      "the output is unrecoverable after a fault"});
      on_path->erase(id);
      done->insert(id);
      return;
    }
    const PlanStep& step = plan.steps[static_cast<size_t>(step_id)];
    // Load and random steps regenerate from bindings / seeds: lineage roots.
    if (step.kind != StepKind::kLoad && step.kind != StepKind::kRandom) {
      for (int input : step.inputs) {
        WalkLineage(plan, producer, input, output_var, on_path, done, out);
      }
    }
    on_path->erase(id);
    done->insert(id);
  }
};

}  // namespace

AnalysisPassPtr MakeLineageCompletenessPass() {
  return std::make_unique<LineageCompletenessPass>();
}

}  // namespace dmac
