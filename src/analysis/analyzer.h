// The analyzer: a pass pipeline over (OperatorList, Plan) pairs.
//
// Three entry points, matching the three places the verifier is wired:
//   * Analyzer::Default().Run(ctx)      — full report (dmac_lint)
//   * AnalyzeProgram(ops, plan, n)      — convenience wrapper building the
//                                         context (stats recomputation)
//   * VerifyPlan(ops, plan, n)          — Status-returning form used by the
//                                         GeneratePlan debug post-pass and
//                                         dmac_run --verify-plan
#pragma once

#include <vector>

#include "analysis/pass.h"

namespace dmac {

/// An ordered pipeline of analysis passes.
class Analyzer {
 public:
  Analyzer() = default;

  /// The seven built-in passes, in dependency order (structural checks
  /// before the checks that assume structure).
  static Analyzer Default();

  void AddPass(AnalysisPassPtr pass) { passes_.push_back(std::move(pass)); }
  size_t num_passes() const { return passes_.size(); }

  /// Runs every pass over `ctx` and aggregates the findings.
  AnalysisReport Run(const AnalysisContext& ctx) const;

 private:
  std::vector<AnalysisPassPtr> passes_;
};

/// Builds an AnalysisContext (recomputing worst-case stats from `ops` when
/// possible) and runs the default pipeline. Either of `ops` / `plan` may be
/// null for operator-only or plan-only analysis. `min_workers` is the
/// degraded-mode quorum the run will enforce; the lineage pass checks its
/// feasibility against the cluster size.
AnalysisReport AnalyzeProgram(const OperatorList* ops, const Plan* plan,
                              int num_workers, int min_workers = 1,
                              bool resume = false);

/// OK when the default pipeline reports no error on (ops, plan); otherwise
/// an error Status listing every error diagnostic.
Status VerifyPlan(const OperatorList& ops, const Plan& plan, int num_workers,
                  int min_workers = 1, bool resume = false);

/// Operator-level well-formedness gate used by GeneratePlan before it runs
/// Algorithm 1: arity, def-before-use, conformance, aliasing. Guarantees the
/// planner can index operand arrays without UB.
Status CheckOperators(const OperatorList& ops);

}  // namespace dmac
