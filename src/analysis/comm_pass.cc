// Communication lower-bound cross-check (pass 4).
//
// Recomputes every step's communication bytes from the matrix shapes and
// partition schemes with the §4.1 cost situations — 0 for local
// dependencies, |A| for a repartition, N·|A| for a broadcast (and N·|C| for
// a strategy that shuffles its own output) — and flags any step whose
// recorded estimate diverges from the recomputation, plus plans whose total
// does not equal the per-step sum. A divergence means the executor-visible
// cost can drift arbitrarily far from what the cost model claimed when it
// chose the strategy, i.e. the planner optimized the wrong objective.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "analysis/passes.h"

namespace dmac {

namespace {

constexpr char kPass[] = "comm-cost";

/// Relative tolerance: the recomputation uses the same double arithmetic as
/// the planner, so anything beyond rounding noise is a genuine divergence.
constexpr double kRelTol = 1e-9;

bool Close(double a, double b) {
  return std::abs(a - b) <= kRelTol * std::max({std::abs(a), std::abs(b), 1.0});
}

class CommCostPass final : public AnalysisPass {
 public:
  const char* name() const override { return kPass; }

  void Run(const AnalysisContext& ctx,
           std::vector<Diagnostic>* out) const override {
    if (ctx.plan == nullptr) return;
    const Plan& plan = *ctx.plan;
    const double n = static_cast<double>(ctx.num_workers);

    double total = 0;
    for (const PlanStep& step : plan.steps) {
      total += step.comm_bytes;
      double expected = 0;
      switch (step.kind) {
        case StepKind::kLoad: {
          if (!ValidNode(plan, step.output)) continue;
          const double bytes = BaseBytes(ctx, plan, step.output);
          const PlanNode& node = plan.nodes[static_cast<size_t>(step.output)];
          const bool broadcast =
              SchemeSetContains(node.schemes, Scheme::kBroadcast);
          expected = (broadcast ? n : 1.0) * bytes;
          break;
        }
        case StepKind::kPartition: {
          // Situation 2: the repartitioned matrix crosses the network once.
          if (!ValidNode(plan, step.output)) continue;
          expected = BaseBytes(ctx, plan, step.output);
          break;
        }
        case StepKind::kBroadcast: {
          // Situation 3: every worker receives a full copy.
          if (!ValidNode(plan, step.output)) continue;
          expected = n * BaseBytes(ctx, plan, step.output);
          break;
        }
        case StepKind::kCompute: {
          if (step.output_comm) {
            // CPMM cross-product aggregation / crossed row- or column-sum:
            // N partial results of the output's size are shuffled.
            if (!ValidNode(plan, step.output)) continue;
            expected = n * BaseBytes(ctx, plan, step.output);
          }
          break;
        }
        case StepKind::kRandom:
        case StepKind::kTranspose:
        case StepKind::kExtract:
        case StepKind::kReduce:
        case StepKind::kScalarAssign:
          expected = 0;  // worker-local (Situation 1) or driver-side
          break;
      }
      if (!Close(step.comm_bytes, expected)) {
        out->push_back(
            {Severity::kError, kPass, step.id,
             StepLabel(step) + " claims " + FormatBytes(step.comm_bytes) +
                 " of communication; shapes and schemes imply " +
                 FormatBytes(expected),
             "the cost model and the plan diverged; re-run the planner"});
      }
    }
    if (!Close(plan.total_comm_bytes, total)) {
      out->push_back({Severity::kError, kPass, -1,
                      "plan total_comm_bytes is " +
                          FormatBytes(plan.total_comm_bytes) +
                          " but the steps sum to " + FormatBytes(total),
                      "Finalize() must re-accumulate the total"});
    }
  }

 private:
  /// Cost-model bytes of the node's base (untransposed) matrix — the same
  /// quantity the planner prices. Prefers the SizeEstimator stats map; falls
  /// back to the node's own stats (transposed back when needed).
  static double BaseBytes(const AnalysisContext& ctx, const Plan& plan,
                          int node_id) {
    const PlanNode& node = plan.nodes[static_cast<size_t>(node_id)];
    auto it = ctx.stats.find(node.matrix);
    if (it != ctx.stats.end()) return it->second.EstimatedBytes();
    const MatrixStats base =
        node.transposed ? node.stats.Transposed() : node.stats;
    return base.EstimatedBytes();
  }

  static std::string FormatBytes(double bytes) {
    return std::to_string(static_cast<int64_t>(bytes)) + " bytes";
  }
};

}  // namespace

AnalysisPassPtr MakeCommCostPass() {
  return std::make_unique<CommCostPass>();
}

}  // namespace dmac
