// In-place / aliasing safety (pass 5).
//
// The §5 in-place optimization folds results into live buffers, which is
// only sound when nothing else still reads them. In SSA form that hazard
// shows up as a definition overwriting a name that a later operator still
// consumes. Checks:
//
//   operator level: an operator must not list its own output among its
//   inputs (self-aliasing update), and must not redefine an SSA name while
//   an earlier definition of it is still live (read by a later operator) —
//   redefinitions themselves are the dependency-graph pass's finding; this
//   pass reports the liveness overlap that makes them unsafe to execute.
//
//   plan level: a step must not read its own output node, and two steps must
//   not write materializations with identical (matrix, orientation, scheme)
//   while the first is still live — the executor would not be able to tell
//   the two buffers apart, and an in-place engine would clobber the live one.
#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "analysis/passes.h"

namespace dmac {

namespace {

constexpr char kPass[] = "alias-safety";

class AliasSafetyPass final : public AnalysisPass {
 public:
  const char* name() const override { return kPass; }

  void Run(const AnalysisContext& ctx,
           std::vector<Diagnostic>* out) const override {
    if (ctx.ops != nullptr) CheckOperators(*ctx.ops, out);
    if (ctx.plan != nullptr) CheckPlan(*ctx.plan, out);
  }

 private:
  void CheckOperators(const OperatorList& ops,
                      std::vector<Diagnostic>* out) const {
    // Last operator reading each SSA name (and export liveness).
    std::unordered_map<std::string, int> last_use;
    for (const Operator& op : ops.ops) {
      for (const MatrixRef& ref : op.inputs) last_use[ref.name] = op.id;
    }
    const int end_of_program = static_cast<int>(ops.ops.size());
    for (const auto& [var, ref] : ops.output_bindings) {
      last_use[ref.name] = end_of_program;
    }

    std::unordered_map<std::string, int> defined;  // name -> def op id
    for (const Operator& op : ops.ops) {
      if (op.output.empty()) continue;
      for (const MatrixRef& ref : op.inputs) {
        if (ref.name == op.output) {
          out->push_back({Severity::kError, kPass, op.id,
                          op.ToString() + ": updates " + op.output +
                              " in place while reading it",
                          "give the result a fresh SSA name"});
        }
      }
      auto it = defined.find(op.output);
      if (it != defined.end()) {
        auto use = last_use.find(op.output);
        if (use != last_use.end() && use->second > op.id) {
          out->push_back(
              {Severity::kError, kPass, op.id,
               op.ToString() + ": overwrites " + op.output +
                   " (defined by op " + std::to_string(it->second) +
                   ") while it is still live at op " +
                   std::to_string(use->second),
               "an in-place update of a live matrix loses its readers' "
               "data; rename the result"});
        }
      } else {
        defined.emplace(op.output, op.id);
      }
    }
  }

  void CheckPlan(const Plan& plan, std::vector<Diagnostic>* out) const {
    const int num_steps = static_cast<int>(plan.steps.size());

    // Last step reading each node (outputs stay live to the end).
    std::unordered_map<int, int> last_use;
    for (const PlanStep& step : plan.steps) {
      for (int id : step.inputs) last_use[id] = step.id;
    }
    for (const PlanOutput& po : plan.outputs) last_use[po.node] = num_steps;

    // Self-aliasing steps.
    for (const PlanStep& step : plan.steps) {
      for (int id : step.inputs) {
        if (id == step.output) {
          out->push_back({Severity::kError, kPass, step.id,
                          StepLabel(step) + " reads and writes node " +
                              NodeLabel(plan, id) + " (id " +
                              std::to_string(id) + ")",
                          "materialize the result as a new node"});
        }
      }
    }

    // Identical (matrix, orientation, scheme) materializations with
    // overlapping live ranges. The planner's availability map replaces the
    // old node on Register(), so a well-formed plan never re-materializes a
    // tuple whose previous instance is still read later.
    std::map<std::tuple<std::string, bool, SchemeSet>, int> live;  // -> node
    for (const PlanStep& step : plan.steps) {
      if (!ValidNode(plan, step.output)) continue;
      const PlanNode& node = plan.nodes[static_cast<size_t>(step.output)];
      const auto key = std::make_tuple(node.matrix, node.transposed,
                                       node.schemes);
      auto it = live.find(key);
      if (it != live.end() && it->second != node.id) {
        auto use = last_use.find(it->second);
        if (use != last_use.end() && use->second > step.id) {
          out->push_back(
              {Severity::kWarning, kPass, step.id,
               StepLabel(step) + " re-materializes " + node.ToString() +
                   " while node id " + std::to_string(it->second) +
                   " (same matrix, orientation, and scheme) is still "
                   "read at step s" +
                   std::to_string(use->second),
               "an in-place executor would clobber the live copy; reuse "
               "the existing node or let the first die before rewriting"});
        }
      }
      live[key] = node.id;
    }
  }
};

}  // namespace

AnalysisPassPtr MakeAliasSafetyPass() {
  return std::make_unique<AliasSafetyPass>();
}

}  // namespace dmac
