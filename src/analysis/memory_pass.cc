// Memory footprint (pass 7).
//
// Resource governance (docs/governance.md) admits queries against a
// pre-execution footprint estimate, and the executor enforces the budget at
// run time with spill. This pass makes the estimate a static artifact: it
// recomputes the plan's peak live set from the size annotations and — when
// the analysis context carries a budget — rejects plans whose *pinned*
// requirement could never fit, so an execution that is doomed to
// kResourceExhausted fails before it starts.
#include <algorithm>
#include <string>
#include <vector>

#include "analysis/passes.h"
#include "plan/footprint.h"

namespace dmac {

namespace {

constexpr char kPass[] = "memory-footprint";

class MemoryFootprintPass final : public AnalysisPass {
 public:
  const char* name() const override { return kPass; }

  void Run(const AnalysisContext& ctx,
           std::vector<Diagnostic>* out) const override {
    if (ctx.plan == nullptr) return;  // plan-level pass only
    const Plan& plan = *ctx.plan;
    const int64_t peak = EstimatePlanFootprintBytes(plan, ctx.num_workers);
    out->push_back({Severity::kNote, kPass, -1,
                    "estimated peak footprint " + std::to_string(peak) +
                        " bytes on " + std::to_string(ctx.num_workers) +
                        " workers",
                    ""});
    if (ctx.memory_budget_bytes <= 0) return;

    // A step's inputs are pinned — all resident at once while it runs — so
    // a step whose pinned set alone exceeds the budget cannot be saved by
    // spilling and the run is statically doomed.
    const int64_t budget = ctx.memory_budget_bytes;
    for (const PlanStep& step : plan.steps) {
      int64_t pinned = 0;
      for (int input : step.inputs) {
        if (!ValidNode(plan, input)) continue;
        const PlanNode& node = plan.nodes[static_cast<size_t>(input)];
        const int64_t replicas =
            node.scheme() == Scheme::kBroadcast ? ctx.num_workers : 1;
        pinned += static_cast<int64_t>(node.stats.EstimatedBytes()) *
                  replicas;
      }
      if (pinned > budget) {
        out->push_back(
            {Severity::kError, kPass, step.id,
             StepLabel(step) + " pins an estimated " +
                 std::to_string(pinned) + " bytes of inputs, above the " +
                 std::to_string(budget) + "-byte memory budget",
             "raise --mem-budget-mb or shrink the operands; spilling "
             "cannot reduce a single step's working set"});
      }
    }
    if (peak > budget) {
      out->push_back(
          {Severity::kWarning, kPass, -1,
           "estimated peak footprint " + std::to_string(peak) +
               " bytes exceeds the " + std::to_string(budget) +
               "-byte memory budget",
           "the run will spill cold partitions to disk"});
    }
  }
};

}  // namespace

AnalysisPassPtr MakeMemoryFootprintPass() {
  return std::make_unique<MemoryFootprintPass>();
}

}  // namespace dmac
