// Factories for the built-in analysis passes.
//
// The six passes mirror the invariants the planner (paper §4, Algorithm 1)
// is supposed to establish:
//
//  shape-inference      operator arity, def-before-use of names, dimension
//                       conformance, and agreement with the SizeEstimator;
//                       at the plan level, every step's output shape is
//                       recomputed from its inputs.
//  scheme-consistency   every step's input partition schemes satisfy the
//                       chosen strategy (RMM1/RMM2/CPMM operand schemes,
//                       aligned cell-wise operands, broadcast-only extract
//                       sources, ...) and its output scheme is the one the
//                       strategy produces.
//  dependency-graph     SSA single definition, def-before-use, topological
//                       step order, single producer per node, acyclicity,
//                       and dead-operator/-node detection.
//  comm-cost            each communicating step's byte estimate is
//                       recomputed from shapes + schemes (§4.1: 0 / |A| /
//                       N·|A|) and compared against the planner's claim;
//                       the plan total must equal the per-step sum.
//  alias-safety         no operator updates a matrix that is still live as
//                       another operator's input (the §5 in-place hazard),
//                       no step reads its own output node.
//  lineage-completeness every node's producer_step annotation names the
//                       step that writes it, every consumed node is
//                       producible, and the producer closure of each
//                       program output terminates at load/random sources
//                       without cycles — the static precondition of
//                       lineage-based fault recovery.
//  memory-footprint     the plan's estimated peak live set is recomputed
//                       from the size annotations; under a configured
//                       memory budget, any step whose pinned inputs alone
//                       exceed it (spill cannot help) is an error and an
//                       over-budget peak (the run will spill) a warning.
#pragma once

#include "analysis/pass.h"

namespace dmac {

AnalysisPassPtr MakeShapeInferencePass();
AnalysisPassPtr MakeSchemeConsistencyPass();
AnalysisPassPtr MakeDependencyGraphPass();
AnalysisPassPtr MakeCommCostPass();
AnalysisPassPtr MakeAliasSafetyPass();
AnalysisPassPtr MakeLineageCompletenessPass();
AnalysisPassPtr MakeMemoryFootprintPass();

}  // namespace dmac
