#include "analysis/analyzer.h"

#include "analysis/passes.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmac {

// ---- shared helpers ------------------------------------------------------

bool ValidNode(const Plan& plan, int id) {
  return id >= 0 && static_cast<size_t>(id) < plan.nodes.size();
}

std::string StepLabel(const PlanStep& step) {
  std::string out = "step s" + std::to_string(step.id) + " (";
  out += StepKindName(step.kind);
  if (step.kind == StepKind::kCompute) {
    out += "[";
    out += OpKindName(step.op_kind);
    if (step.mult_algo != MultAlgo::kNone) {
      out += ":";
      out += MultAlgoName(step.mult_algo);
    }
    out += "]";
  }
  out += ")";
  return out;
}

std::string NodeLabel(const Plan& plan, int id) {
  if (!ValidNode(plan, id)) {
    return "<invalid node " + std::to_string(id) + ">";
  }
  return plan.nodes[static_cast<size_t>(id)].ToString();
}

int ExpectedOperandCount(OpKind kind) {
  switch (kind) {
    case OpKind::kLoad:
    case OpKind::kRandom:
    case OpKind::kScalarAssign:
      return 0;
    case OpKind::kScalarMultiply:
    case OpKind::kScalarAdd:
    case OpKind::kRowSums:
    case OpKind::kColSums:
    case OpKind::kCellUnary:
    case OpKind::kReduce:
      return 1;
    case OpKind::kMultiply:
    case OpKind::kAdd:
    case OpKind::kSubtract:
    case OpKind::kCellMultiply:
    case OpKind::kCellDivide:
      return 2;
  }
  return 0;
}

// ---- analyzer ------------------------------------------------------------

Analyzer Analyzer::Default() {
  Analyzer a;
  a.AddPass(MakeDependencyGraphPass());
  a.AddPass(MakeShapeInferencePass());
  a.AddPass(MakeSchemeConsistencyPass());
  a.AddPass(MakeCommCostPass());
  a.AddPass(MakeAliasSafetyPass());
  a.AddPass(MakeLineageCompletenessPass());
  a.AddPass(MakeMemoryFootprintPass());
  return a;
}

AnalysisReport Analyzer::Run(const AnalysisContext& ctx) const {
  AnalysisReport report;
  for (const AnalysisPassPtr& pass : passes_) {
    TraceSpan span =
        TraceRecorder::Global().enabled()
            ? TraceSpan(kTracePlan, std::string("pass ") + pass->name())
            : TraceSpan();
    pass->Run(ctx, &report.diagnostics);
  }
  return report;
}

AnalysisReport AnalyzeProgram(const OperatorList* ops, const Plan* plan,
                              int num_workers, int min_workers, bool resume) {
  AnalysisContext ctx;
  ctx.ops = ops;
  ctx.plan = plan;
  ctx.num_workers = num_workers;
  ctx.min_workers = min_workers;
  ctx.resume = resume;
  if (ops != nullptr) {
    // Only feed the stats cross-check when the list is structurally sound —
    // EstimateSizes indexes operand arrays without arity guards.
    bool arity_ok = true;
    for (const Operator& op : ops->ops) {
      if (static_cast<int>(op.inputs.size()) !=
          ExpectedOperandCount(op.kind)) {
        arity_ok = false;
      }
    }
    if (arity_ok) {
      Result<StatsMap> stats = EstimateSizes(*ops);
      if (stats.ok()) ctx.stats = std::move(*stats);
    }
  }
  return Analyzer::Default().Run(ctx);
}

Status VerifyPlan(const OperatorList& ops, const Plan& plan, int num_workers,
                  int min_workers, bool resume) {
  TraceSpan span(kTracePlan, "verify-plan");
  Timer timer;
  Status st =
      AnalyzeProgram(&ops, &plan, num_workers, min_workers, resume).ToStatus();
  static Gauge* verify_seconds =
      MetricRegistry::Global().gauge(kMetricPlanVerifySeconds);
  verify_seconds->Set(timer.ElapsedSeconds());
  return st;
}

Status CheckOperators(const OperatorList& ops) {
  return AnalyzeProgram(&ops, nullptr, /*num_workers=*/1).ToStatus();
}

}  // namespace dmac
