// Dependency-graph validation (pass 3).
//
// Operator level: SSA single definition, def-before-use of matrix and
// scalar names, and dead-operator detection (an operator whose output no
// later operator consumes and that is not bound to a program output).
//
// Plan level: every referenced node id is valid, every consumed node has
// exactly one producer step, steps are topologically ordered (a producer
// precedes all of its consumers — which also proves acyclicity of the step
// graph), and nodes no step or output binding consumes are flagged.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/passes.h"

namespace dmac {

namespace {

constexpr char kPass[] = "dependency-graph";

void CollectScalarRefs(const ScalarExprPtr& e,
                       std::unordered_set<std::string>* refs,
                       std::unordered_set<std::string>* matrix_refs) {
  if (e == nullptr) return;
  if (e->kind == ScalarExpr::Kind::kVarRef) refs->insert(e->name);
  if (e->matrix != nullptr && matrix_refs != nullptr &&
      e->matrix->kind == MatrixExpr::Kind::kVarRef) {
    matrix_refs->insert(e->matrix->name);
  }
  CollectScalarRefs(e->lhs, refs, matrix_refs);
  CollectScalarRefs(e->rhs, refs, matrix_refs);
}

class DependencyGraphPass final : public AnalysisPass {
 public:
  const char* name() const override { return kPass; }

  void Run(const AnalysisContext& ctx,
           std::vector<Diagnostic>* out) const override {
    if (ctx.ops != nullptr) CheckOperators(*ctx.ops, out);
    if (ctx.plan != nullptr) CheckPlan(*ctx.plan, out);
  }

 private:
  void CheckOperators(const OperatorList& ops,
                      std::vector<Diagnostic>* out) const {
    std::unordered_map<std::string, int> def_site;     // matrix SSA -> op id
    std::unordered_map<std::string, int> scalar_site;  // scalar SSA -> op id
    std::unordered_set<std::string> consumed;
    std::unordered_set<std::string> scalar_consumed;

    for (const Operator& op : ops.ops) {
      for (const MatrixRef& ref : op.inputs) {
        if (def_site.find(ref.name) == def_site.end()) {
          out->push_back({Severity::kError, kPass, op.id,
                          op.ToString() + ": input " + ref.ToString() +
                              " is not defined by any earlier operator",
                          "the operator list violates def-before-use"});
        }
        consumed.insert(ref.name);
      }
      std::unordered_set<std::string> scalar_refs;
      CollectScalarRefs(op.scalar, &scalar_refs, nullptr);
      for (const std::string& s : scalar_refs) {
        if (scalar_site.find(s) == scalar_site.end()) {
          out->push_back({Severity::kError, kPass, op.id,
                          op.ToString() + ": scalar " + s +
                              " is not defined by any earlier operator",
                          "the operator list violates def-before-use"});
        }
        scalar_consumed.insert(s);
      }
      if (!op.output.empty()) {
        auto [it, inserted] = def_site.emplace(op.output, op.id);
        if (!inserted) {
          out->push_back({Severity::kError, kPass, op.id,
                          op.ToString() + ": redefines SSA matrix " +
                              op.output + " (first defined by op " +
                              std::to_string(it->second) + ")",
                          "SSA names must be defined exactly once"});
        }
      }
      if (!op.scalar_out.empty()) {
        auto [it, inserted] = scalar_site.emplace(op.scalar_out, op.id);
        if (!inserted) {
          out->push_back({Severity::kError, kPass, op.id,
                          op.ToString() + ": redefines SSA scalar " +
                              op.scalar_out + " (first defined by op " +
                              std::to_string(it->second) + ")",
                          "SSA names must be defined exactly once"});
        }
      }
    }

    // Dead operators: outputs nobody consumes and no binding exports.
    std::unordered_set<std::string> exported;
    for (const auto& [var, ref] : ops.output_bindings) exported.insert(ref.name);
    for (const auto& [var, ssa] : ops.scalar_output_bindings) {
      scalar_consumed.insert(ssa);
    }
    for (const Operator& op : ops.ops) {
      const bool dead_matrix = !op.output.empty() &&
                               consumed.find(op.output) == consumed.end() &&
                               exported.find(op.output) == exported.end();
      const bool dead_scalar =
          !op.scalar_out.empty() &&
          scalar_consumed.find(op.scalar_out) == scalar_consumed.end();
      if (dead_matrix || (op.output.empty() && dead_scalar)) {
        out->push_back({Severity::kWarning, kPass, op.id,
                        op.ToString() + ": result " +
                            (dead_matrix ? op.output : op.scalar_out) +
                            " is never consumed",
                        "dead operator; drop it from the program"});
      }
    }
  }

  void CheckPlan(const Plan& plan, std::vector<Diagnostic>* out) const {
    const int num_nodes = static_cast<int>(plan.nodes.size());
    std::unordered_map<int, int> producer;  // node id -> producing step id
    std::unordered_set<int> consumed;

    // Pass A: producers, valid ids, single-producer.
    for (const PlanStep& step : plan.steps) {
      if (step.output >= 0) {
        if (step.output >= num_nodes) {
          out->push_back({Severity::kError, kPass, step.id,
                          StepLabel(step) + " writes node id " +
                              std::to_string(step.output) +
                              " outside the node table (size " +
                              std::to_string(num_nodes) + ")",
                          "the plan's node table is corrupted"});
        } else {
          auto [it, inserted] = producer.emplace(step.output, step.id);
          if (!inserted) {
            out->push_back({Severity::kError, kPass, step.id,
                            StepLabel(step) + " writes node " +
                                NodeLabel(plan, step.output) + " (id " +
                                std::to_string(step.output) +
                                ") already produced by step s" +
                                std::to_string(it->second),
                            "every node must have exactly one producer"});
          }
        }
      }
    }

    // Pass B: def-before-use in step order (topological order implies an
    // acyclic step graph).
    std::unordered_set<int> materialized;
    for (const PlanStep& step : plan.steps) {
      for (int id : step.inputs) {
        if (id < 0 || id >= num_nodes) {
          out->push_back({Severity::kError, kPass, step.id,
                          StepLabel(step) + " reads node id " +
                              std::to_string(id) +
                              " outside the node table (size " +
                              std::to_string(num_nodes) + ")",
                          "the plan's node table is corrupted"});
          continue;
        }
        consumed.insert(id);
        if (producer.find(id) == producer.end()) {
          out->push_back({Severity::kError, kPass, step.id,
                          StepLabel(step) + " reads node " +
                              NodeLabel(plan, id) + " (id " +
                              std::to_string(id) + ") that no step produces",
                          "a producer step is missing or was deleted"});
        } else if (materialized.find(id) == materialized.end()) {
          out->push_back({Severity::kError, kPass, step.id,
                          StepLabel(step) + " reads node " +
                              NodeLabel(plan, id) + " (id " +
                              std::to_string(id) +
                              ") before its producer step s" +
                              std::to_string(producer[id]) + " ran",
                          "steps are not topologically ordered; re-run "
                          "Finalize()"});
        }
      }
      if (step.output >= 0 && step.output < num_nodes) {
        materialized.insert(step.output);
      }
    }

    // Pass C: dead nodes. Output bindings keep their node alive.
    for (const PlanOutput& po : plan.outputs) consumed.insert(po.node);
    for (const PlanNode& node : plan.nodes) {
      if (producer.find(node.id) != producer.end() &&
          consumed.find(node.id) == consumed.end()) {
        out->push_back({Severity::kNote, kPass,
                        producer.find(node.id)->second,
                        "node " + node.ToString() + " (id " +
                            std::to_string(node.id) +
                            ") is materialized but never consumed",
                        "dead materialization; the planner left it behind"});
      }
    }
  }
};

}  // namespace

AnalysisPassPtr MakeDependencyGraphPass() {
  return std::make_unique<DependencyGraphPass>();
}

}  // namespace dmac
