// Diagnostic model of the static plan verifier (src/analysis).
//
// Every analysis pass reports findings as Diagnostics; an AnalysisReport
// aggregates them across passes. Severities follow the compiler convention:
// an error means the plan (or operator list) violates an invariant the
// executor relies on, a warning flags something suspicious but runnable,
// and a note carries supplementary context.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace dmac {

/// Severity of one finding.
enum class Severity : uint8_t { kNote = 0, kWarning = 1, kError = 2 };

const char* SeverityName(Severity s);

/// One finding of an analysis pass.
struct Diagnostic {
  Severity severity = Severity::kError;
  /// Name of the producing pass, e.g. "scheme-consistency".
  std::string pass;
  /// Operator id (operator-list findings) or plan step id (plan findings);
  /// -1 when the finding is not tied to one operator.
  int op_id = -1;
  /// What is wrong.
  std::string message;
  /// How to fix it (may be empty).
  std::string fixit_hint;

  /// Renders "error: [pass] (op 3) message (fix: hint)".
  std::string ToString() const;
};

/// All findings of one analyzer run, in pass order.
struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;

  int ErrorCount() const;
  int WarningCount() const;
  bool HasErrors() const { return ErrorCount() > 0; }

  /// Diagnostics emitted by the pass named `pass`.
  std::vector<Diagnostic> FromPass(const std::string& pass) const;

  /// One line per diagnostic plus a summary line.
  std::string ToString() const;

  /// OK when no error-severity diagnostic exists; otherwise an error Status
  /// whose message lists every error (shape findings map to
  /// kDimensionMismatch, everything else to kInvalidArgument).
  Status ToStatus() const;
};

}  // namespace dmac
