#include "analysis/diagnostic.h"

namespace dmac {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string out = SeverityName(severity);
  out += ": [" + pass + "]";
  if (op_id >= 0) out += " (op " + std::to_string(op_id) + ")";
  out += " " + message;
  if (!fixit_hint.empty()) out += " (fix: " + fixit_hint + ")";
  return out;
}

int AnalysisReport::ErrorCount() const {
  int n = 0;
  for (const Diagnostic& d : diagnostics) n += d.severity == Severity::kError;
  return n;
}

int AnalysisReport::WarningCount() const {
  int n = 0;
  for (const Diagnostic& d : diagnostics) {
    n += d.severity == Severity::kWarning;
  }
  return n;
}

std::vector<Diagnostic> AnalysisReport::FromPass(
    const std::string& pass) const {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diagnostics) {
    if (d.pass == pass) out.push_back(d);
  }
  return out;
}

std::string AnalysisReport::ToString() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) out += d.ToString() + "\n";
  out += std::to_string(ErrorCount()) + " error(s), " +
         std::to_string(WarningCount()) + " warning(s)\n";
  return out;
}

Status AnalysisReport::ToStatus() const {
  if (!HasErrors()) return Status::Ok();
  std::string msg = "plan verification failed:";
  bool shape_error = false;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity != Severity::kError) continue;
    msg += "\n  " + d.ToString();
    if (d.pass == "shape-inference") shape_error = true;
  }
  return shape_error ? Status::DimensionMismatch(std::move(msg))
                     : Status::Invalid(std::move(msg));
}

}  // namespace dmac
