// Scheme consistency (pass 2).
//
// Verifies the invariant Algorithm 1 is supposed to guarantee: every input
// of every step is materialized under exactly the partition scheme the
// step's strategy requires, either because the producer emitted that scheme
// or because an explicit partition / broadcast / transpose / extract step
// reconciles the two. Concretely, per step kind:
//
//   compute multiply   RMM1 {b,c}→c, RMM2 {r,b}→r, CPMM {c,r}→r or c
//   compute cell-wise  both operands and the output share one scheme
//   compute unary      output scheme equals the input scheme
//   row/col sums       aligned input → aligned output (local); broadcast →
//                      broadcast; crossed input requires output_comm
//   partition          output is Row or Column
//   broadcast          output is Broadcast; a Broadcast source is redundant
//   extract            input is Broadcast, output is Row or Column
//   transpose          output scheme is the input's opposite (b stays b)
//
// Every node of a finalized plan must also carry exactly one scheme.
#include <string>
#include <vector>

#include "analysis/passes.h"

namespace dmac {

namespace {

constexpr char kPass[] = "scheme-consistency";

class SchemeConsistencyPass final : public AnalysisPass {
 public:
  const char* name() const override { return kPass; }

  void Run(const AnalysisContext& ctx,
           std::vector<Diagnostic>* out) const override {
    if (ctx.plan == nullptr) return;
    const Plan& plan = *ctx.plan;

    for (const PlanNode& node : plan.nodes) {
      if (!SchemeSetIsSingle(node.schemes)) {
        out->push_back({Severity::kError, kPass, -1,
                        "node " + node.ToString() + " (id " +
                            std::to_string(node.id) +
                            ") does not carry exactly one scheme",
                        "Finalize() must collapse flexible schemes"});
      }
    }

    for (const PlanStep& step : plan.steps) {
      CheckStep(plan, step, out);
    }
  }

 private:
  static void Require(const Plan& plan, const PlanStep& step, int input_pos,
                      Scheme required, std::vector<Diagnostic>* out) {
    const int id = step.inputs[static_cast<size_t>(input_pos)];
    if (!ValidNode(plan, id)) return;  // graph pass reports bad ids
    const PlanNode& node = plan.nodes[static_cast<size_t>(id)];
    if (!SchemeSetIsSingle(node.schemes)) return;  // reported above
    if (node.scheme() == required) return;
    out->push_back(
        {Severity::kError, kPass, step.id,
         StepLabel(step) + " requires " + std::string(1, SchemeChar(required)) +
             " on input " + std::to_string(input_pos) + ", but node " +
             node.ToString() + " (id " + std::to_string(id) + ") is " +
             SchemeSetToString(node.schemes),
         "insert a partition/broadcast step or re-run the planner"});
  }

  static void RequireOut(const Plan& plan, const PlanStep& step,
                         SchemeSet allowed, std::vector<Diagnostic>* out) {
    if (!ValidNode(plan, step.output)) return;
    const PlanNode& node = plan.nodes[static_cast<size_t>(step.output)];
    if (!SchemeSetIsSingle(node.schemes)) return;
    if (SchemeSetContains(allowed, node.scheme())) return;
    out->push_back({Severity::kError, kPass, step.id,
                    StepLabel(step) + " must produce a node with scheme " +
                        SchemeSetToString(allowed) + ", but node " +
                        node.ToString() + " (id " +
                        std::to_string(step.output) + ") is " +
                        SchemeSetToString(node.schemes),
                    "the strategy's output scheme was altered after planning"});
  }

  /// Scheme of input `pos`, or Broadcast if unavailable (other passes report
  /// the structural problem).
  static Scheme InputScheme(const Plan& plan, const PlanStep& step,
                            size_t pos, bool* ok) {
    if (pos >= step.inputs.size() ||
        !ValidNode(plan, step.inputs[pos])) {
      *ok = false;
      return Scheme::kBroadcast;
    }
    const PlanNode& node =
        plan.nodes[static_cast<size_t>(step.inputs[pos])];
    if (!SchemeSetIsSingle(node.schemes)) {
      *ok = false;
      return Scheme::kBroadcast;
    }
    *ok = true;
    return node.scheme();
  }

  void CheckStep(const Plan& plan, const PlanStep& step,
                 std::vector<Diagnostic>* out) const {
    switch (step.kind) {
      case StepKind::kLoad:
      case StepKind::kRandom:
      case StepKind::kScalarAssign:
      case StepKind::kReduce:
        return;  // any single scheme is acceptable

      case StepKind::kPartition:
        RequireOut(plan, step,
                   SchemeBit(Scheme::kRow) | SchemeBit(Scheme::kCol), out);
        return;

      case StepKind::kBroadcast: {
        RequireOut(plan, step, SchemeBit(Scheme::kBroadcast), out);
        bool ok = false;
        const Scheme in = InputScheme(plan, step, 0, &ok);
        if (ok && in == Scheme::kBroadcast) {
          out->push_back({Severity::kWarning, kPass, step.id,
                          StepLabel(step) +
                              " re-broadcasts an already-Broadcast node",
                          "reference the existing replica instead"});
        }
        return;
      }

      case StepKind::kExtract: {
        if (!step.inputs.empty()) {
          Require(plan, step, 0, Scheme::kBroadcast, out);
        }
        RequireOut(plan, step,
                   SchemeBit(Scheme::kRow) | SchemeBit(Scheme::kCol), out);
        return;
      }

      case StepKind::kTranspose: {
        bool ok = false;
        const Scheme in = InputScheme(plan, step, 0, &ok);
        if (!ok) return;
        RequireOut(plan, step, SchemeBit(OppositeScheme(in)), out);
        return;
      }

      case StepKind::kCompute:
        break;
    }

    // Compute steps: the chosen strategy dictates the operand schemes.
    switch (step.op_kind) {
      case OpKind::kMultiply: {
        if (step.inputs.size() != 2) return;  // shape pass / graph pass
        // A transpose-fused operand (trans_a/trans_b) is stored as the
        // *untransposed* source matrix, so the stored scheme satisfying the
        // strategy is the opposite of the effective requirement (Row↔Col;
        // Broadcast is its own opposite). Ownership ranges still line up:
        // the stored matrix partitions the transposed axis into the same
        // block count the strategy expects of the effective operand.
        const auto eff_require = [&](int pos, Scheme required) {
          const bool flagged = pos == 0 ? step.trans_a : step.trans_b;
          Require(plan, step, pos,
                  flagged ? OppositeScheme(required) : required, out);
        };
        switch (step.mult_algo) {
          case MultAlgo::kRMM1:
            eff_require(0, Scheme::kBroadcast);
            eff_require(1, Scheme::kCol);
            RequireOut(plan, step, SchemeBit(Scheme::kCol), out);
            break;
          case MultAlgo::kRMM2:
            eff_require(0, Scheme::kRow);
            eff_require(1, Scheme::kBroadcast);
            RequireOut(plan, step, SchemeBit(Scheme::kRow), out);
            break;
          case MultAlgo::kCPMM:
            eff_require(0, Scheme::kCol);
            eff_require(1, Scheme::kRow);
            RequireOut(plan, step,
                       SchemeBit(Scheme::kRow) | SchemeBit(Scheme::kCol),
                       out);
            if (!step.output_comm) {
              out->push_back({Severity::kError, kPass, step.id,
                              StepLabel(step) +
                                  ": CPMM must mark output_comm (its "
                                  "cross-product aggregation shuffles)",
                              "set output_comm on the step"});
            }
            break;
          case MultAlgo::kNone:
            out->push_back({Severity::kError, kPass, step.id,
                            StepLabel(step) +
                                ": multiply step carries no algorithm",
                            "assign RMM1, RMM2, or CPMM"});
            break;
        }
        return;
      }

      case OpKind::kAdd:
      case OpKind::kSubtract:
      case OpKind::kCellMultiply:
      case OpKind::kCellDivide: {
        if (step.inputs.size() != 2) return;
        bool ok0 = false, ok1 = false;
        const Scheme a = InputScheme(plan, step, 0, &ok0);
        const Scheme b = InputScheme(plan, step, 1, &ok1);
        if (ok0 && ok1 && a != b) {
          out->push_back(
              {Severity::kError, kPass, step.id,
               StepLabel(step) + " requires aligned operand schemes, got " +
                   NodeLabel(plan, step.inputs[0]) + " and " +
                   NodeLabel(plan, step.inputs[1]),
               "repartition one operand or re-run the planner"});
        } else if (ok0) {
          RequireOut(plan, step, SchemeBit(a), out);
        }
        return;
      }

      case OpKind::kScalarMultiply:
      case OpKind::kScalarAdd:
      case OpKind::kCellUnary: {
        bool ok = false;
        const Scheme in = InputScheme(plan, step, 0, &ok);
        if (ok) RequireOut(plan, step, SchemeBit(in), out);
        return;
      }

      case OpKind::kRowSums:
      case OpKind::kColSums: {
        bool ok = false;
        const Scheme in = InputScheme(plan, step, 0, &ok);
        if (!ok) return;
        const bool rows = step.op_kind == OpKind::kRowSums;
        const Scheme aligned = rows ? Scheme::kRow : Scheme::kCol;
        if (in == aligned) {
          RequireOut(plan, step, SchemeBit(aligned), out);
        } else if (in == Scheme::kBroadcast) {
          RequireOut(plan, step, SchemeBit(Scheme::kBroadcast), out);
        } else {
          // Crossed aggregation shuffles per-worker partials.
          RequireOut(plan, step,
                     SchemeBit(Scheme::kRow) | SchemeBit(Scheme::kCol), out);
          if (!step.output_comm) {
            out->push_back({Severity::kError, kPass, step.id,
                            StepLabel(step) +
                                ": aggregation across the partitioned axis "
                                "must mark output_comm",
                            "set output_comm on the step"});
          }
        }
        return;
      }

      default:
        out->push_back({Severity::kError, kPass, step.id,
                        StepLabel(step) +
                            " is a compute step with non-compute op kind",
                        "the plan step kinds are corrupted"});
        return;
    }
  }
};

}  // namespace

AnalysisPassPtr MakeSchemeConsistencyPass() {
  return std::make_unique<SchemeConsistencyPass>();
}

}  // namespace dmac
