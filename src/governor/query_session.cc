#include "governor/query_session.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "analysis/pass.h"
#include "analysis/passes.h"
#include "obs/metrics.h"
#include "plan/footprint.h"

namespace dmac {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

struct QuerySession::Query {
  int64_t id = 0;
  Program program;
  Bindings bindings;
  QueryOptions opts;
  CancelToken token;
  /// Guarded by the *session's* mu_ (started in Submit, reaped in Wait and
  /// the destructor) — not expressible as DMAC_GUARDED_BY from a nested
  /// struct, so the discipline is documented here and enforced by review.
  std::thread thread;

  Mutex mu;
  CondVar cv;
  bool done DMAC_GUARDED_BY(mu) = false;
  QueryOutcome outcome DMAC_GUARDED_BY(mu);
};

QuerySession::QuerySession(AdmissionQuota quota, RunConfig base)
    : base_(std::move(base)), admission_(quota) {}

QuerySession::~QuerySession() {
  std::unordered_map<int64_t, std::shared_ptr<Query>> queries;
  {
    MutexLock lock(&mu_);
    queries = queries_;
  }
  for (auto& [id, q] : queries) q->token.Cancel();
  // Joining under mu_ serializes against Wait's reap; RunQuery never takes
  // the session lock, so holding it across the joins cannot deadlock.
  MutexLock lock(&mu_);
  for (auto& [id, q] : queries) {
    if (q->thread.joinable()) q->thread.join();
  }
}

int64_t QuerySession::Submit(Program program, Bindings bindings,
                             QueryOptions opts) {
  auto q = std::make_shared<Query>();
  q->program = std::move(program);
  q->bindings = std::move(bindings);
  q->opts = std::move(opts);
  q->token = q->opts.deadline_seconds > 0
                 ? CancelToken::WithDeadline(q->opts.deadline_seconds)
                 : CancelToken::Cancellable();
  Query* raw = q.get();
  int64_t id;
  {
    MutexLock lock(&mu_);
    q->id = next_id_++;
    id = q->id;
    queries_[q->id] = q;
    // The thread must start inside the lock: the query is already visible
    // in queries_, so a concurrent Wait could otherwise touch q->thread
    // (joinable/join) while this assignment is still in flight.
    // The map's shared_ptr keeps the Query alive for the session's
    // lifetime, so the thread may safely outlive local scopes.
    q->thread = std::thread([this, raw] { RunQuery(raw); });
  }
  return id;
}

void QuerySession::Cancel(int64_t id) {
  std::shared_ptr<Query> q;
  {
    MutexLock lock(&mu_);
    auto it = queries_.find(id);
    if (it == queries_.end()) return;
    q = it->second;
  }
  q->token.Cancel();
}

QueryOutcome QuerySession::Wait(int64_t id) {
  std::shared_ptr<Query> q;
  {
    MutexLock lock(&mu_);
    auto it = queries_.find(id);
    if (it == queries_.end()) {
      QueryOutcome out;
      out.status =
          Status::Invalid("unknown query id " + std::to_string(id));
      return out;
    }
    q = it->second;
  }
  {
    MutexLock lock(&q->mu);
    while (!q->done) q->cv.Wait(q->mu);
  }
  {
    // Exactly one caller reaps the thread; later Waits see it unjoinable.
    MutexLock lock(&mu_);
    if (q->thread.joinable()) q->thread.join();
  }
  MutexLock lock(&q->mu);
  return q->outcome;
}

void QuerySession::RunQuery(Query* q) {
  QueryOutcome out;
  out.status = [&]() -> Status {
    // ---- plan + pre-execution footprint estimate ----
    RunConfig config = base_;
    if (q->opts.fault.has_value()) config.fault = *q->opts.fault;
    if (!q->opts.checkpoint_dir.empty()) {
      config.checkpoint_dir = q->opts.checkpoint_dir;
      config.resume = q->opts.resume;
    }
    Result<Plan> plan = PlanProgram(q->program, config);
    DMAC_RETURN_NOT_OK(plan.status());
    out.footprint_estimate_bytes =
        EstimatePlanFootprintBytes(*plan, config.num_workers);

    if (q->opts.memory_budget_bytes > 0) {
      // The static check: a budget the plan can never fit under (a single
      // step's pinned working set over the limit) fails before admission,
      // executing nothing.
      AnalysisContext ctx;
      ctx.plan = &*plan;
      ctx.num_workers = config.num_workers;
      ctx.memory_budget_bytes = q->opts.memory_budget_bytes;
      std::vector<Diagnostic> diags;
      MakeMemoryFootprintPass()->Run(ctx, &diags);
      for (const Diagnostic& d : diags) {
        if (d.severity == Severity::kError) {
          return Status::ResourceExhausted(d.message);
        }
      }
    }

    // ---- admission ----
    // Under a budget the resident set is capped near the budget (the
    // executor spills past it), so reserve the smaller of the two.
    int64_t estimate = out.footprint_estimate_bytes;
    if (q->opts.memory_budget_bytes > 0) {
      estimate = std::min(estimate, q->opts.memory_budget_bytes);
    }
    DMAC_RETURN_NOT_OK(admission_.Admit(estimate, q->token));

    // ---- governed execution ----
    Status run_status = [&]() -> Status {
      config.governor.token = q->token;
      if (q->opts.memory_budget_bytes > 0) {
        config.governor.budget =
            std::make_shared<MemoryBudget>(q->opts.memory_budget_bytes);
        DMAC_ASSIGN_OR_RETURN(config.governor.spill,
                              SpillStore::Create(q->opts.spill_dir));
      }
      DMAC_ASSIGN_OR_RETURN(out.run,
                            RunProgram(q->program, q->bindings, config));
      return Status::Ok();
    }();
    admission_.Release(estimate);
    return run_status;
  }();

  if (q->token.Fired()) {
    out.cancel_latency_seconds = NowSeconds() - q->token.fired_at_seconds();
    MetricRegistry::Global()
        .histogram(kMetricGovernorCancelLatencySeconds)
        ->Observe(out.cancel_latency_seconds);
  }

  MutexLock lock(&q->mu);
  q->outcome = std::move(out);
  q->done = true;
  q->cv.NotifyAll();
}

}  // namespace dmac
