// Estimate-based admission control for concurrent queries
// (docs/governance.md).
//
// The controller guards two global quotas: a concurrency cap and a total
// memory quota. A query asks for admission with its pre-execution footprint
// estimate (plan/size_estimator.h); it is admitted when both quotas have
// room, waits in a bounded queue when they don't, and is rejected with
// `kResourceExhausted` backpressure when the queue is full or the estimate
// alone can never fit. Release() returns the reservation when the query
// terminates — by any status.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "common/sync.h"
#include "governor/cancel_token.h"

namespace dmac {

/// Global admission quotas for one QuerySession.
struct AdmissionQuota {
  /// Queries running at once. Minimum 1.
  int max_concurrent = 2;
  /// Queries allowed to wait for a slot before Admit rejects. 0 disables
  /// queueing (immediate reject when busy).
  int max_queued = 16;
  /// Sum of admitted footprint estimates allowed in flight; 0 = unlimited.
  int64_t total_memory_bytes = 0;
};

/// Thread-safe admission gate. All methods may be called from any thread.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionQuota quota);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Blocks until `estimate_bytes` is reserved, the token fires, or the
  /// request is rejected. OK means admitted — the caller must eventually
  /// call `Release(estimate_bytes)`. `kResourceExhausted` means rejected
  /// (estimate over quota, or queue full); `kCancelled`/`kDeadlineExceeded`
  /// mean the query's token fired while waiting.
  Status Admit(int64_t estimate_bytes, const CancelToken& token)
      DMAC_EXCLUDES(mu_);

  /// Returns a reservation made by a successful Admit.
  void Release(int64_t estimate_bytes) DMAC_EXCLUDES(mu_);

  int queue_depth() const DMAC_EXCLUDES(mu_);
  int running() const DMAC_EXCLUDES(mu_);
  int64_t reserved_bytes() const DMAC_EXCLUDES(mu_);

 private:
  /// True when both quotas have room for `estimate_bytes` right now.
  bool HasRoom(int64_t estimate_bytes) const DMAC_REQUIRES(mu_);

  const AdmissionQuota quota_;

  mutable Mutex mu_;
  CondVar cv_;
  int running_ DMAC_GUARDED_BY(mu_) = 0;
  int queued_ DMAC_GUARDED_BY(mu_) = 0;
  int64_t reserved_ DMAC_GUARDED_BY(mu_) = 0;
};

}  // namespace dmac
