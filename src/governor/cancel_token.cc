#include "governor/cancel_token.h"

namespace dmac {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

CancelToken CancelToken::Cancellable() {
  return CancelToken(std::make_shared<State>());
}

CancelToken CancelToken::WithDeadline(double deadline_seconds) {
  auto state = std::make_shared<State>();
  state->has_deadline = true;
  state->deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(deadline_seconds));
  return CancelToken(std::move(state));
}

void CancelToken::Fire(StatusCode reason) const {
  bool expected = false;
  if (state_->fired.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
    state_->reason.store(static_cast<uint8_t>(reason),
                         std::memory_order_release);
    state_->fired_at_ns.store(NowNs(), std::memory_order_release);
  }
}

void CancelToken::Cancel() {
  if (state_ != nullptr) Fire(StatusCode::kCancelled);
}

Status CancelToken::Check() const {
  if (state_ == nullptr) return Status::Ok();
  if (!state_->fired.load(std::memory_order_acquire)) {
    if (!state_->has_deadline ||
        std::chrono::steady_clock::now() < state_->deadline) {
      return Status::Ok();
    }
    Fire(StatusCode::kDeadlineExceeded);
  }
  // Fired. The reason may still be in flight on another thread for one
  // instant after the flag flips; spin until it is published.
  StatusCode reason;
  do {
    reason = static_cast<StatusCode>(
        state_->reason.load(std::memory_order_acquire));
  } while (reason == StatusCode::kOk);
  if (reason == StatusCode::kDeadlineExceeded) {
    return Status::DeadlineExceeded("query deadline elapsed");
  }
  return Status::Cancelled("query cancelled");
}

const std::atomic<bool>* CancelToken::fired_flag() const {
  return state_ == nullptr ? nullptr : &state_->fired;
}

double CancelToken::fired_at_seconds() const {
  if (state_ == nullptr) return 0.0;
  return static_cast<double>(
             state_->fired_at_ns.load(std::memory_order_acquire)) *
         1e-9;
}

}  // namespace dmac
