// Disk spill store for cold blocks (docs/governance.md).
//
// When a query's resident set exceeds its MemoryBudget, the executor spills
// least-recently-used blocks here and drops the in-memory payload. A spill
// file is a self-describing snapshot of one block in the shared serialized
// block format (fault/durable_io.h):
//
//   magic "DMACSPL1" | kind u32 | rows i64 | cols i64
//   dense:  scalar payload (rows*cols floats, column-major)
//   sparse: nnz i64 | col_ptr i32[cols+1] | row_idx i32[nnz] | values f32[nnz]
//   checksum u64   — FNV-1a BlockChecksum of the block (fault/checksum.h)
//
// Every byte moves through a StorageIO, so disk faults (short writes,
// ENOSPC, read-side bit flips, crash points) inject here too, and error
// codes follow the disk-fault taxonomy: kResourceExhausted when the disk is
// full, kUnavailable for short writes and fsync failures — resource
// pressure and flaky storage are not corruption. Restore rebuilds the
// block, recomputes the checksum, and fails with `kDataLoss` on mismatch —
// a spilled block must round-trip bit-identically, the same contract the
// partition stores enforce in memory. Restore consumes the file, so
// `live_files()` counts exactly the blocks currently on disk; the
// destructor removes any remaining files and the store directory, which is
// how "no leaked spill files" is guaranteed on every exit path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "common/sync.h"
#include "fault/durable_io.h"
#include "matrix/block.h"

namespace dmac {

/// One query's spill directory. Thread-safe; in practice only the driver
/// thread spills/restores (at step boundaries).
class SpillStore {
 public:
  /// Invalid spill handle.
  static constexpr int64_t kNoHandle = -1;

  /// Opens a store rooted at `dir`, or at a fresh unique directory under the
  /// system temp path when `dir` is empty. `io` is the storage layer every
  /// byte moves through (fault injection included); fault-free by default.
  static Result<std::shared_ptr<SpillStore>> Create(
      std::string dir = "", std::shared_ptr<StorageIO> io = nullptr);

  ~SpillStore();

  SpillStore(const SpillStore&) = delete;
  SpillStore& operator=(const SpillStore&) = delete;

  /// Writes `block` to a new spill file. Returns its handle. Error codes
  /// follow the disk-fault taxonomy (kResourceExhausted on a full disk,
  /// kUnavailable on a short write or fsync failure).
  [[nodiscard]] Result<int64_t> Spill(const Block& block) DMAC_EXCLUDES(mu_);

  /// Reads the block back, verifies its checksum, and deletes the file.
  /// `kDataLoss` on corruption or a missing/truncated file (the file is
  /// still consumed, so a damaged block never leaks).
  [[nodiscard]] Result<Block> Restore(int64_t handle) DMAC_EXCLUDES(mu_);

  /// Deletes a spilled file without reading it (its owner was dropped).
  void Remove(int64_t handle) DMAC_EXCLUDES(mu_);

  /// Number of spill files currently on disk.
  int64_t live_files() const DMAC_EXCLUDES(mu_);

  /// Total payload bytes written / read back over the store's lifetime.
  int64_t spilled_bytes() const DMAC_EXCLUDES(mu_);
  int64_t restored_bytes() const DMAC_EXCLUDES(mu_);

  const std::string& dir() const { return dir_; }

 private:
  SpillStore(std::string dir, bool owns_dir, std::shared_ptr<StorageIO> io);

  std::string PathFor(int64_t handle) const;

  const std::string dir_;
  const bool owns_dir_;
  const std::shared_ptr<StorageIO> io_;

  mutable Mutex mu_;
  int64_t next_handle_ DMAC_GUARDED_BY(mu_) = 0;
  /// handle -> payload bytes of the file (for accounting on Remove).
  std::unordered_map<int64_t, int64_t> live_ DMAC_GUARDED_BY(mu_);
  int64_t spilled_bytes_ DMAC_GUARDED_BY(mu_) = 0;
  int64_t restored_bytes_ DMAC_GUARDED_BY(mu_) = 0;
};

}  // namespace dmac
