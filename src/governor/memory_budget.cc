#include "governor/memory_budget.h"

namespace dmac {

void MemoryBudget::Charge(int64_t bytes) {
  if (bytes == 0) return;
  const int64_t now =
      used_.fetch_add(bytes, std::memory_order_acq_rel) + bytes;
  int64_t peak = peak_.load(std::memory_order_acquire);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_acq_rel)) {
  }
}

void MemoryBudget::Release(int64_t bytes) {
  if (bytes == 0) return;
  used_.fetch_sub(bytes, std::memory_order_acq_rel);
}

}  // namespace dmac
