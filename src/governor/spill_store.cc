#include "governor/spill_store.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include "fault/checksum.h"
#include "obs/metrics.h"

namespace dmac {

namespace {

constexpr char kMagic[8] = {'D', 'M', 'A', 'C', 'S', 'P', 'L', '1'};
constexpr uint32_t kKindDense = 0;
constexpr uint32_t kKindSparse = 1;

bool WriteRaw(std::FILE* f, const void* data, size_t len) {
  return len == 0 || std::fwrite(data, 1, len, f) == len;
}

bool ReadRaw(std::FILE* f, void* data, size_t len) {
  return len == 0 || std::fread(data, 1, len, f) == len;
}

template <typename T>
bool WriteOne(std::FILE* f, T v) {
  return WriteRaw(f, &v, sizeof(T));
}

template <typename T>
bool ReadOne(std::FILE* f, T* v) {
  return ReadRaw(f, v, sizeof(T));
}

/// Process-unique suffix for auto-created spill directories.
std::atomic<int64_t> g_spill_dir_counter{0};

}  // namespace

SpillStore::SpillStore(std::string dir, bool owns_dir)
    : dir_(std::move(dir)), owns_dir_(owns_dir) {}

Result<std::shared_ptr<SpillStore>> SpillStore::Create(std::string dir) {
  std::error_code ec;
  bool owns_dir = false;
  if (dir.empty()) {
    const int64_t n =
        g_spill_dir_counter.fetch_add(1, std::memory_order_relaxed);
    dir = (std::filesystem::temp_directory_path(ec) /
           ("dmac-spill-" + std::to_string(::getpid()) + "-" +
            std::to_string(n)))
              .string();
    if (ec) return Status::Internal("spill: no temp directory: " + ec.message());
    owns_dir = true;
  }
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("spill: cannot create directory " + dir + ": " +
                            ec.message());
  }
  return std::shared_ptr<SpillStore>(new SpillStore(std::move(dir), owns_dir));
}

SpillStore::~SpillStore() {
  MutexLock lock(&mu_);
  std::error_code ec;
  for (const auto& [handle, bytes] : live_) {
    std::filesystem::remove(PathFor(handle), ec);
  }
  live_.clear();
  if (owns_dir_) std::filesystem::remove(dir_, ec);  // only removes if empty
}

std::string SpillStore::PathFor(int64_t handle) const {
  return dir_ + "/block-" + std::to_string(handle) + ".spill";
}

Result<int64_t> SpillStore::Spill(const Block& block) {
  int64_t handle;
  {
    MutexLock lock(&mu_);
    handle = next_handle_++;
  }
  const std::string path = PathFor(handle);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::Internal("spill: cannot open " + path);

  const uint64_t checksum = BlockChecksum(block);
  bool ok = WriteRaw(f, kMagic, sizeof(kMagic)) &&
            WriteOne<uint32_t>(f, block.IsDense() ? kKindDense : kKindSparse) &&
            WriteOne<int64_t>(f, block.rows()) &&
            WriteOne<int64_t>(f, block.cols());
  if (ok) {
    if (block.IsDense()) {
      const DenseBlock& d = block.dense();
      ok = WriteRaw(f, d.data(),
                    sizeof(Scalar) * static_cast<size_t>(d.rows() * d.cols()));
    } else {
      const CscBlock& s = block.sparse();
      ok = WriteOne<int64_t>(f, s.nnz()) &&
           WriteRaw(f, s.col_ptr().data(),
                    sizeof(int32_t) * s.col_ptr().size()) &&
           WriteRaw(f, s.row_idx().data(),
                    sizeof(int32_t) * s.row_idx().size()) &&
           WriteRaw(f, s.values().data(), sizeof(Scalar) * s.values().size());
    }
  }
  ok = ok && WriteOne<uint64_t>(f, checksum);
  std::fclose(f);
  if (!ok) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return Status::Internal("spill: short write to " + path);
  }

  const int64_t bytes = block.MemoryBytes();
  {
    MutexLock lock(&mu_);
    live_[handle] = bytes;
    spilled_bytes_ += bytes;
  }
  auto& reg = MetricRegistry::Global();
  reg.counter(kMetricGovernorSpillBytes)->Add(static_cast<double>(bytes));
  reg.counter(kMetricGovernorSpillBlocks)->Increment();
  return handle;
}

Result<Block> SpillStore::Restore(int64_t handle) {
  const std::string path = PathFor(handle);
  {
    MutexLock lock(&mu_);
    if (live_.erase(handle) == 0) {
      return Status::DataLoss("spill: unknown handle " +
                              std::to_string(handle));
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  // Whatever happens below, the file is consumed.
  auto consume = [&path]() {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  };
  if (f == nullptr) {
    consume();
    return Status::DataLoss("spill: missing file " + path);
  }

  std::error_code size_ec;
  const uint64_t file_size = std::filesystem::file_size(path, size_ec);
  char magic[8];
  uint32_t kind = 0;
  int64_t rows = 0, cols = 0;
  bool ok = !size_ec && ReadRaw(f, magic, sizeof(magic)) &&
            std::memcmp(magic, kMagic, sizeof(kMagic)) == 0 &&
            ReadOne(f, &kind) && ReadOne(f, &rows) && ReadOne(f, &cols) &&
            rows >= 0 && cols >= 0;
  Block block;
  if (ok && kind == kKindDense) {
    // A corrupt header must not drive a giant allocation: the payload can
    // never be larger than the file itself.
    ok = static_cast<uint64_t>(rows) * static_cast<uint64_t>(cols) *
             sizeof(Scalar) <=
         file_size;
    if (ok) {
      DenseBlock d(rows, cols);
      ok = ReadRaw(f, d.data(),
                   sizeof(Scalar) * static_cast<size_t>(rows * cols));
      if (ok) block = Block(std::move(d));
    }
  } else if (ok && kind == kKindSparse) {
    int64_t nnz = 0;
    ok = ReadOne(f, &nnz) && nnz >= 0 &&
         static_cast<uint64_t>(nnz) * (sizeof(int32_t) + sizeof(Scalar)) <=
             file_size;
    if (ok) {
      std::vector<int32_t> col_ptr(static_cast<size_t>(cols) + 1);
      std::vector<int32_t> row_idx(static_cast<size_t>(nnz));
      std::vector<Scalar> values(static_cast<size_t>(nnz));
      ok = ReadRaw(f, col_ptr.data(), sizeof(int32_t) * col_ptr.size()) &&
           ReadRaw(f, row_idx.data(), sizeof(int32_t) * row_idx.size()) &&
           ReadRaw(f, values.data(), sizeof(Scalar) * values.size());
      // Validate the CSC structure softly before handing the arrays to the
      // checking constructor, so a corrupt file surfaces as kDataLoss
      // instead of an invariant abort.
      if (ok) {
        ok = col_ptr.front() == 0 && col_ptr.back() == nnz;
        for (size_t c = 0; ok && c + 1 < col_ptr.size(); ++c) {
          ok = col_ptr[c] <= col_ptr[c + 1];
          for (int32_t i = col_ptr[c]; ok && i < col_ptr[c + 1]; ++i) {
            ok = row_idx[i] >= 0 && row_idx[i] < rows &&
                 (i == col_ptr[c] || row_idx[i - 1] < row_idx[i]);
          }
        }
      }
      if (ok) {
        block = Block(CscBlock(rows, cols, std::move(col_ptr),
                               std::move(row_idx), std::move(values)));
      }
    }
  } else {
    ok = false;
  }
  uint64_t stored_checksum = kNoChecksum;
  ok = ok && ReadOne(f, &stored_checksum);
  std::fclose(f);
  consume();
  if (!ok) return Status::DataLoss("spill: corrupt or truncated " + path);
  if (BlockChecksum(block) != stored_checksum) {
    return Status::DataLoss("spill: checksum mismatch restoring " + path);
  }

  const int64_t bytes = block.MemoryBytes();
  {
    MutexLock lock(&mu_);
    restored_bytes_ += bytes;
  }
  auto& reg = MetricRegistry::Global();
  reg.counter(kMetricGovernorRestoreBytes)->Add(static_cast<double>(bytes));
  reg.counter(kMetricGovernorRestoreBlocks)->Increment();
  return block;
}

void SpillStore::Remove(int64_t handle) {
  {
    MutexLock lock(&mu_);
    if (live_.erase(handle) == 0) return;
  }
  std::error_code ec;
  std::filesystem::remove(PathFor(handle), ec);
}

int64_t SpillStore::live_files() const {
  MutexLock lock(&mu_);
  return static_cast<int64_t>(live_.size());
}

int64_t SpillStore::spilled_bytes() const {
  MutexLock lock(&mu_);
  return spilled_bytes_;
}

int64_t SpillStore::restored_bytes() const {
  MutexLock lock(&mu_);
  return restored_bytes_;
}

}  // namespace dmac
