#include "governor/spill_store.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>

#include "fault/checksum.h"
#include "obs/metrics.h"

namespace dmac {

namespace {

/// Process-unique suffix for auto-created spill directories.
std::atomic<int64_t> g_spill_dir_counter{0};

}  // namespace

SpillStore::SpillStore(std::string dir, bool owns_dir,
                       std::shared_ptr<StorageIO> io)
    : dir_(std::move(dir)), owns_dir_(owns_dir), io_(std::move(io)) {}

Result<std::shared_ptr<SpillStore>> SpillStore::Create(
    std::string dir, std::shared_ptr<StorageIO> io) {
  if (io == nullptr) io = std::make_shared<StorageIO>();
  bool owns_dir = false;
  if (dir.empty()) {
    std::error_code ec;
    const int64_t n =
        g_spill_dir_counter.fetch_add(1, std::memory_order_relaxed);
    dir = (std::filesystem::temp_directory_path(ec) /
           ("dmac-spill-" + std::to_string(::getpid()) + "-" +
            std::to_string(n)))
              .string();
    if (ec) return Status::Internal("spill: no temp directory: " + ec.message());
    owns_dir = true;
  }
  DMAC_RETURN_NOT_OK(io->CreateDir(dir));
  return std::shared_ptr<SpillStore>(
      new SpillStore(std::move(dir), owns_dir, std::move(io)));
}

SpillStore::~SpillStore() {
  // Host-process cleanup, deliberately *not* through io_: even after a
  // simulated crash killed the storage layer, the real process still owns
  // its temp files and must not leak them.
  MutexLock lock(&mu_);
  std::error_code ec;
  for (const auto& [handle, bytes] : live_) {
    std::filesystem::remove(PathFor(handle), ec);
  }
  live_.clear();
  if (owns_dir_) std::filesystem::remove(dir_, ec);  // only removes if empty
}

std::string SpillStore::PathFor(int64_t handle) const {
  return dir_ + "/block-" + std::to_string(handle) + ".spill";
}

Result<int64_t> SpillStore::Spill(const Block& block) {
  int64_t handle;
  {
    MutexLock lock(&mu_);
    handle = next_handle_++;
  }
  // On any write failure the StorageIO rolls its temp file back and the
  // status flows through untranslated: kResourceExhausted for a full disk,
  // kUnavailable for a short write or fsync failure.
  DMAC_RETURN_NOT_OK(io_->WriteFileAtomic(PathFor(handle),
                                          SerializeBlock(block)));

  const int64_t bytes = block.MemoryBytes();
  {
    MutexLock lock(&mu_);
    live_[handle] = bytes;
    spilled_bytes_ += bytes;
  }
  auto& reg = MetricRegistry::Global();
  reg.counter(kMetricGovernorSpillBytes)->Add(static_cast<double>(bytes));
  reg.counter(kMetricGovernorSpillBlocks)->Increment();
  return handle;
}

Result<Block> SpillStore::Restore(int64_t handle) {
  const std::string path = PathFor(handle);
  {
    MutexLock lock(&mu_);
    if (live_.erase(handle) == 0) {
      return Status::DataLoss("spill: unknown handle " +
                              std::to_string(handle));
    }
  }
  // Whatever happens below, the file is consumed — directly, not through
  // io_, so a damaged block never leaks even once the storage layer is dead.
  const auto consume = [&path]() {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  };
  auto data = io_->ReadFile(path);
  if (!data.ok()) {
    consume();
    return data.status().code() == StatusCode::kNotFound
               ? Status::DataLoss("spill: missing file " + path)
               : data.status();
  }
  auto restored = DeserializeBlock(*data, "spill: restoring " + path);
  consume();
  if (!restored.ok()) return restored.status();
  Block block = std::move(restored).ValueOrDie();

  const int64_t bytes = block.MemoryBytes();
  {
    MutexLock lock(&mu_);
    restored_bytes_ += bytes;
  }
  auto& reg = MetricRegistry::Global();
  reg.counter(kMetricGovernorRestoreBytes)->Add(static_cast<double>(bytes));
  reg.counter(kMetricGovernorRestoreBlocks)->Increment();
  return block;
}

void SpillStore::Remove(int64_t handle) {
  {
    MutexLock lock(&mu_);
    if (live_.erase(handle) == 0) return;
  }
  std::error_code ec;
  std::filesystem::remove(PathFor(handle), ec);
}

int64_t SpillStore::live_files() const {
  MutexLock lock(&mu_);
  return static_cast<int64_t>(live_.size());
}

int64_t SpillStore::spilled_bytes() const {
  MutexLock lock(&mu_);
  return spilled_bytes_;
}

int64_t SpillStore::restored_bytes() const {
  MutexLock lock(&mu_);
  return restored_bytes_;
}

}  // namespace dmac
