// Cooperative cancellation and deadlines (docs/governance.md).
//
// A CancelToken is a copyable handle onto shared cancellation state carried
// in the execution context. The runtime never preempts work: the executor,
// the local engine, and the fault-layer retry loop *poll* the token at
// stage, step, comm-round, kernel-task, and retry boundaries, and unwind
// with `kCancelled` or `kDeadlineExceeded` when it has fired. Once fired a
// token stays fired (sticky) and every poll returns the same code, so a
// query terminates with exactly one governance status.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace dmac {

/// Copyable cancellation/deadline handle. A default-constructed token is
/// inert: it never fires, `Check()` is a single null test, and it costs
/// nothing to carry — ungoverned runs pass one around for free.
class CancelToken {
 public:
  CancelToken() = default;

  /// A token that can only be cancelled manually via `Cancel()`.
  static CancelToken Cancellable();

  /// A token that fires `kDeadlineExceeded` once `deadline_seconds` of wall
  /// clock have elapsed from now (and can still be cancelled manually
  /// before that). A zero or negative deadline is already expired.
  static CancelToken WithDeadline(double deadline_seconds);

  /// True when this handle is attached to real state (non-default).
  bool active() const { return state_ != nullptr; }

  /// Fires the token with `kCancelled`. First caller wins; later calls and
  /// a later deadline expiry do not change the reason. No-op on an inert
  /// token.
  void Cancel();

  /// True once the token has fired (manually or by deadline). Polling this
  /// may itself detect deadline expiry.
  bool Fired() const { return !Check().ok(); }

  /// OK while the query may continue; `Status::Cancelled` or
  /// `Status::DeadlineExceeded` once it must unwind. Sticky.
  [[nodiscard]] Status Check() const;

  /// Raw fired flag for lock-free task skipping (ThreadPool abandons queued
  /// tasks whose flag is set). Null for an inert token. The flag is set by
  /// `Cancel()` and by the first `Check()` that observes deadline expiry.
  const std::atomic<bool>* fired_flag() const;

  /// Wall-clock time at which the token fired, as seconds since the steady
  /// epoch; 0 while not fired. Used to measure cancel latency.
  double fired_at_seconds() const;

 private:
  struct State {
    std::atomic<bool> fired{false};
    /// StatusCode of the firing reason, valid once `fired` is true.
    std::atomic<uint8_t> reason{0};
    std::atomic<int64_t> fired_at_ns{0};
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
  };

  explicit CancelToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  void Fire(StatusCode reason) const;

  std::shared_ptr<State> state_;
};

}  // namespace dmac
