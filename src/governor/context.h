// The per-query governance context threaded through the runtime
// (docs/governance.md).
#pragma once

#include <cstdint>
#include <memory>

#include "governor/cancel_token.h"
#include "governor/memory_budget.h"
#include "governor/spill_store.h"

namespace dmac {

/// Everything the runtime needs to govern one query: the cancellation
/// token, the memory budget, and the spill store that backs it. Cheap to
/// copy (three shared handles); a default-constructed context is inert and
/// the runtime takes its fast ungoverned paths.
struct GovernorContext {
  CancelToken token;
  std::shared_ptr<MemoryBudget> budget;
  std::shared_ptr<SpillStore> spill;

  /// True when any governance is attached.
  bool governed() const { return token.active() || budget != nullptr; }

  /// True when block stores must charge (and possibly spill) memory.
  bool budgeted() const { return budget != nullptr; }
};

}  // namespace dmac
