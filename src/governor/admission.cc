#include "governor/admission.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace dmac {

AdmissionController::AdmissionController(AdmissionQuota quota)
    : quota_([&quota] {
        quota.max_concurrent = std::max(1, quota.max_concurrent);
        quota.max_queued = std::max(0, quota.max_queued);
        return quota;
      }()) {}

bool AdmissionController::HasRoom(int64_t estimate_bytes) const {
  return running_ < quota_.max_concurrent &&
         (quota_.total_memory_bytes <= 0 ||
          reserved_ + estimate_bytes <= quota_.total_memory_bytes);
}

Status AdmissionController::Admit(int64_t estimate_bytes,
                                  const CancelToken& token) {
  auto& reg = MetricRegistry::Global();
  if (quota_.total_memory_bytes > 0 &&
      estimate_bytes > quota_.total_memory_bytes) {
    reg.counter(kMetricGovernorRejected)->Increment();
    return Status::ResourceExhausted(
        "admission: footprint estimate " + std::to_string(estimate_bytes) +
        " bytes exceeds session quota " +
        std::to_string(quota_.total_memory_bytes) + " bytes");
  }

  MutexLock lock(&mu_);
  if (!HasRoom(estimate_bytes)) {
    if (queued_ >= quota_.max_queued) {
      reg.counter(kMetricGovernorRejected)->Increment();
      return Status::ResourceExhausted(
          "admission: queue full (" + std::to_string(queued_) + " waiting, " +
          std::to_string(quota_.max_queued) + " allowed)");
    }
    ++queued_;
    reg.gauge(kMetricGovernorQueueDepth)->Set(static_cast<double>(queued_));
    // Wait in short slices so a fired CancelToken is noticed promptly even
    // though the token has no condition variable of its own.
    while (!HasRoom(estimate_bytes)) {
      Status cancelled = token.Check();
      if (!cancelled.ok()) {
        --queued_;
        reg.gauge(kMetricGovernorQueueDepth)->Set(static_cast<double>(queued_));
        cv_.NotifyAll();
        return cancelled;
      }
      cv_.WaitFor(mu_, std::chrono::milliseconds(5));
    }
    --queued_;
    reg.gauge(kMetricGovernorQueueDepth)->Set(static_cast<double>(queued_));
  }
  ++running_;
  reserved_ += estimate_bytes;
  reg.counter(kMetricGovernorAdmitted)->Increment();
  return Status::Ok();
}

void AdmissionController::Release(int64_t estimate_bytes) {
  {
    MutexLock lock(&mu_);
    --running_;
    reserved_ -= estimate_bytes;
  }
  cv_.NotifyAll();
}

int AdmissionController::queue_depth() const {
  MutexLock lock(&mu_);
  return queued_;
}

int AdmissionController::running() const {
  MutexLock lock(&mu_);
  return running_;
}

int64_t AdmissionController::reserved_bytes() const {
  MutexLock lock(&mu_);
  return reserved_;
}

}  // namespace dmac
