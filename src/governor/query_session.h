// Admission-controlled multi-query driver (docs/governance.md).
//
// A QuerySession is the front end that owns the global quotas. Each
// Submit() plans the program, estimates its peak memory footprint
// (plan/footprint.h), and asks the AdmissionController for a reservation;
// admitted queries run on their own thread with a per-query
// GovernorContext (deadline token, memory budget, spill store), queued
// queries wait for a slot, and over-quota queries are rejected with
// `kResourceExhausted` backpressure. Every query terminates with exactly
// one Status, and all of its resources — budget charges, pool buffers,
// spill files, admission reservation — are released on every exit path.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "apps/runner.h"
#include "common/sync.h"
#include "governor/admission.h"
#include "governor/cancel_token.h"

namespace dmac {

/// Per-query governance knobs layered on top of the session's RunConfig.
struct QueryOptions {
  /// Wall-clock deadline; 0 = none. A 0 is "no deadline", use a tiny
  /// positive value (or Cancel) to expire a query immediately.
  double deadline_seconds = 0;
  /// Per-query memory budget; 0 = unlimited (no spill store attached).
  int64_t memory_budget_bytes = 0;
  /// Spill directory; empty = fresh unique dir under the system temp path.
  std::string spill_dir;
  /// Per-query fault-injection override; unset = the session's base spec.
  /// Lets a soak mix fault-free queries with worker-death and network-fault
  /// scenarios inside one session.
  std::optional<FaultSpec> fault;
  /// Durable checkpoint directory for this query; empty = in-memory
  /// checkpoints only (docs/fault_tolerance.md, "Durability & restart").
  std::string checkpoint_dir;
  /// Restore the last committed epoch from `checkpoint_dir` before
  /// executing. A fresh/empty directory is a plain full run.
  bool resume = false;
};

/// Terminal record of one query.
struct QueryOutcome {
  /// Exactly one terminal status: OK, or one of the governance /
  /// fault-layer codes (kCancelled, kDeadlineExceeded, kResourceExhausted,
  /// kUnavailable, kDataLoss, ...).
  Status status;
  /// Valid iff `status.ok()`.
  RunOutcome run;
  /// The pre-execution estimate the query was admitted against.
  int64_t footprint_estimate_bytes = 0;
  /// Seconds from the token firing to the query unwinding; negative when
  /// the token never fired.
  double cancel_latency_seconds = -1;
};

/// Multi-query driver. Thread-safe; queries run on dedicated threads.
class QuerySession {
 public:
  /// `base` supplies planner/executor configuration shared by every query
  /// (its `governor` field is ignored — the session builds a fresh context
  /// per query).
  QuerySession(AdmissionQuota quota, RunConfig base);

  /// Cancels every in-flight query and waits for all of them.
  ~QuerySession();

  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  /// Launches `program` asynchronously and returns its query id. The
  /// caller owns the LocalMatrix payloads behind `bindings` and must keep
  /// them alive until Wait(id) returns. Admission (and queueing) happens on
  /// the query's thread, so Submit never blocks.
  int64_t Submit(Program program, Bindings bindings, QueryOptions opts)
      DMAC_EXCLUDES(mu_);

  /// Fires the query's cancel token. No-op for unknown / finished ids.
  void Cancel(int64_t id) DMAC_EXCLUDES(mu_);

  /// Blocks until the query is terminal and returns its outcome.
  /// Idempotent. An unknown id yields kInvalidArgument.
  QueryOutcome Wait(int64_t id) DMAC_EXCLUDES(mu_);

  int queue_depth() const { return admission_.queue_depth(); }
  int running() const { return admission_.running(); }

 private:
  struct Query;

  /// Runs one query end to end: plan → estimate → admit → execute.
  void RunQuery(Query* q);

  const RunConfig base_;
  AdmissionController admission_;

  mutable Mutex mu_;
  int64_t next_id_ DMAC_GUARDED_BY(mu_) = 0;
  std::unordered_map<int64_t, std::shared_ptr<Query>> queries_
      DMAC_GUARDED_BY(mu_);
};

}  // namespace dmac
