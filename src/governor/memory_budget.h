// Per-query memory budget (docs/governance.md).
//
// A MemoryBudget is a thread-safe byte account charged by everything that
// holds simulated cluster memory on behalf of one query: the per-worker
// partition stores (`runtime/dist_matrix.h`) and the result buffer pool
// (`runtime/buffer_pool.h`). The budget models the *cluster's* aggregate
// memory, so a block broadcast to N workers is charged N times, matching
// `DistMatrix::TotalStoredBytes`.
//
// Charging never blocks and is allowed to overshoot: the executor enforces
// the limit at step boundaries by spilling cold blocks to disk and fails
// the query with `kResourceExhausted` only when spilling cannot get the
// resident set back under the limit.
#pragma once

#include <atomic>
#include <cstdint>

namespace dmac {

/// Thread-safe byte account with a soft limit. `limit_bytes == 0` means
/// unlimited (accounting still runs so peak usage is observable).
class MemoryBudget {
 public:
  explicit MemoryBudget(int64_t limit_bytes = 0) : limit_(limit_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Adds `bytes` to the account and updates the peak high-water mark.
  void Charge(int64_t bytes);

  /// Removes `bytes` from the account.
  void Release(int64_t bytes);

  int64_t limit_bytes() const { return limit_; }
  int64_t used_bytes() const { return used_.load(std::memory_order_acquire); }
  int64_t peak_bytes() const { return peak_.load(std::memory_order_acquire); }

  /// Bytes above the limit right now; 0 when under budget or unlimited.
  int64_t OverBudgetBytes() const {
    if (limit_ <= 0) return 0;
    const int64_t over = used_bytes() - limit_;
    return over > 0 ? over : 0;
  }

  /// True when a single allocation of `bytes` could never fit, even with
  /// everything else spilled. Always false when unlimited.
  bool ExceedsWholeBudget(int64_t bytes) const {
    return limit_ > 0 && bytes > limit_;
  }

 private:
  const int64_t limit_;
  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};
};

}  // namespace dmac
