// Result buffer pool (paper §5.3, Fig. 4).
//
// Worker threads acquire a clean dense block at the start of each task,
// accumulate the task's result into it in place, and return it when done.
// The pool keeps a bounded number of blocks per shape so inter-thread
// memory is reused instead of reallocated.
#pragma once

#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "matrix/dense_block.h"

namespace dmac {

/// Thread-safe pool of reusable dense result blocks.
class BufferPool {
 public:
  /// `max_per_shape` bounds how many idle blocks of one shape are retained.
  explicit BufferPool(size_t max_per_shape = 8)
      : max_per_shape_(max_per_shape) {}

  /// Returns a zeroed block of the given shape (recycled when available).
  DenseBlock Acquire(int64_t rows, int64_t cols);

  /// Returns a block to the pool; dropped if the shape's slot is full.
  void Release(DenseBlock block);

  /// Number of idle blocks currently held.
  size_t IdleBlocks() const;

 private:
  mutable std::mutex mu_;
  size_t max_per_shape_;
  std::map<std::pair<int64_t, int64_t>, std::vector<DenseBlock>> free_;
};

}  // namespace dmac
