// Result buffer pool (paper §5.3, Fig. 4).
//
// Worker threads acquire a clean dense block at the start of each task,
// accumulate the task's result into it in place, and return it when done.
// The pool keeps a bounded number of blocks per shape so inter-thread
// memory is reused instead of reallocated.
//
// Governance (docs/governance.md): a pool may be attached to a query's
// MemoryBudget. Freshly allocated blocks are charged to the budget and stay
// charged while they circulate (outstanding or idle); the charge is dropped
// when a block is discarded or the pool is destroyed. Acquire fails with
// kResourceExhausted — instead of silently growing — when a single block
// alone exceeds the whole budget, since spilling elsewhere cannot help.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/sync.h"
#include "governor/memory_budget.h"
#include "matrix/dense_block.h"

namespace dmac {

/// Thread-safe pool of reusable dense result blocks.
class BufferPool {
 public:
  /// `max_per_shape` bounds how many idle blocks of one shape are retained.
  explicit BufferPool(size_t max_per_shape = 8)
      : max_per_shape_(max_per_shape) {}
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Attaches a per-query budget. Call before the first Acquire; blocks
  /// acquired earlier are not retroactively charged. Safe to call while
  /// worker threads are acquiring (the pointer swap is under the pool lock).
  void SetBudget(std::shared_ptr<MemoryBudget> budget) DMAC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    budget_ = std::move(budget);
  }

  /// Returns a zeroed block of the given shape (recycled when available).
  /// Fails with kResourceExhausted when the block alone exceeds the whole
  /// attached budget.
  Result<DenseBlock> Acquire(int64_t rows, int64_t cols) DMAC_EXCLUDES(mu_);

  /// Returns a block to the pool; dropped if the shape's slot is full.
  /// Only pass blocks obtained from this pool's Acquire.
  void Release(DenseBlock block) DMAC_EXCLUDES(mu_);

  /// Number of idle blocks currently held.
  size_t IdleBlocks() const DMAC_EXCLUDES(mu_);

  /// Process-wide count of acquired-but-not-released blocks across all
  /// pools. Zero when no kernel is mid-flight; the soak harness asserts
  /// this to catch leaked accumulators.
  static int64_t GlobalOutstandingBlocks();

  /// Process-wide bytes currently held by pools (outstanding + idle).
  static int64_t GlobalHeldBytes();

 private:
  mutable Mutex mu_;
  const size_t max_per_shape_;
  std::shared_ptr<MemoryBudget> budget_ DMAC_GUARDED_BY(mu_);
  std::map<std::pair<int64_t, int64_t>, std::vector<DenseBlock>> free_
      DMAC_GUARDED_BY(mu_);
};

}  // namespace dmac
