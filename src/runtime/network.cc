#include "runtime/network.h"

#include <algorithm>
#include <utility>

namespace dmac {

int64_t SimNetwork::NextSeq(int from, int to) {
  const int n = membership_ != nullptr ? membership_->num_workers() : 0;
  const int need = std::max({from, to, n - 1}) + 1;
  if (need > seq_stride_) {
    // Grow the dense channel table, remapping existing counters.
    std::vector<int64_t> grown(static_cast<size_t>(need) * need, 0);
    for (int f = 0; f < seq_stride_; ++f) {
      for (int t = 0; t < seq_stride_; ++t) {
        grown[static_cast<size_t>(f) * need + t] =
            next_seq_[static_cast<size_t>(f) * seq_stride_ + t];
      }
    }
    next_seq_ = std::move(grown);
    seq_stride_ = need;
  }
  return next_seq_[static_cast<size_t>(from) * seq_stride_ + to]++;
}

void SimNetwork::Send(int from, int to, double bytes,
                      std::function<void()> commit) {
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.seq = NextSeq(from, to);
  msg.epoch = membership_ != nullptr ? membership_->epoch() : 1;
  msg.commit = std::move(commit);
  ++stats_.messages;

  if (injector_ != nullptr) {
    // Partition activation: drawn only while no partition is open, so an
    // open partition never consumes activation draws (schedule stability).
    if (partition_budget_ <= 0 && injector_->DrawNetPartition()) {
      partition_victim_ = from;
      partition_budget_ = injector_->spec().net.partition_drops;
      ++stats_.partitions;
    }
    bool forced_drop = false;
    if (partition_budget_ > 0 &&
        (from == partition_victim_ || to == partition_victim_)) {
      forced_drop = true;  // bidirectional: either endpoint loses the send
      if (--partition_budget_ == 0) partition_victim_ = -1;  // healed
    }
    // Drop → retransmit under the retry policy. The loop is bounded by the
    // retry budget; the attempt after the last injected drop goes through,
    // so delivery is guaranteed (simulated ack + timeout).
    int attempt = 0;
    while (attempt < policy_.max_retries &&
           (forced_drop || injector_->DrawNetDrop())) {
      forced_drop = false;  // only the first send is partition-forced
      ++stats_.retransmits;
      stats_.retrans_bytes += bytes;
      stats_.delay_seconds += policy_.BackoffSeconds(attempt);
      ++attempt;
    }
    if (injector_->DrawNetDup()) {
      // A literal second delivery with the original's sequence number;
      // Flush's dedup must absorb it before the commit runs twice.
      Message dup = msg;
      dup.duplicate = true;
      dup.commit = msg.commit;
      ++stats_.duplicates;
      messages_.push_back(std::move(dup));
    }
    if (injector_->DrawNetReorder()) {
      // Arrival order is scrambled on the wire; sorted delivery re-imposes
      // (sender, sequence) order, so this is pure accounting.
      ++stats_.reordered;
    }
    if (injector_->DrawNetDelay()) {
      stats_.delay_seconds += injector_->spec().net.delay_seconds;
    }
  }
  messages_.push_back(std::move(msg));
}

Status SimNetwork::Flush(const char* what) {
  // Deliver in (from, to, seq) order — the direct path's sender-ascending
  // commit order, which pins the floating-point summation order and makes
  // reordering invisible. stable_sort keeps a duplicate adjacent to (after
  // or before) its original; adjacency is all dedup needs.
  std::stable_sort(messages_.begin(), messages_.end(),
                   [](const Message& a, const Message& b) {
                     if (a.from != b.from) return a.from < b.from;
                     if (a.to != b.to) return a.to < b.to;
                     return a.seq < b.seq;
                   });
  int64_t fenced = 0;
  for (size_t i = 0; i < messages_.size(); ++i) {
    const Message& msg = messages_[i];
    if (i > 0) {
      const Message& prev = messages_[i - 1];
      if (prev.from == msg.from && prev.to == msg.to && prev.seq == msg.seq) {
        continue;  // duplicate delivery: ack again, commit nothing
      }
    }
    if (membership_ != nullptr && membership_->IsDead(msg.from) &&
        msg.epoch < membership_->epoch()) {
      // The zombie write: sent before the sender's death was declared. A
      // dead `from` at the *current* epoch is not fenced — after
      // rebalancing the slot is virtual, hosted by a survivor, and its
      // sends are legitimate degraded-mode traffic.
      ++stats_.stale_fenced;
      ++fenced;
      continue;
    }
    // Independent re-check at the commit point: a stale-epoch write from
    // a dead sender reaching here means the fence above grew a hole.
    // Tests assert this audit counter never moves.
    if (membership_ != nullptr && msg.epoch < membership_->epoch() &&
        membership_->IsDead(msg.from)) {
      ++stats_.stale_applied;
    }
    if (msg.commit) msg.commit();
  }
  messages_.clear();
  if (fenced > 0) {
    return Status::DataLoss(std::string(what) + ": " +
                            std::to_string(fenced) +
                            " stale-epoch transfers fenced");
  }
  return Status::Ok();
}

}  // namespace dmac
