// Distributed plan execution on the simulated cluster (paper §5).
//
// The executor walks a finalized plan stage by stage. Communication steps
// (load, partition, broadcast, CPMM aggregation) move shared block pointers
// between per-worker stores and count every byte crossing a worker
// boundary; everything else runs worker-local through the block engine.
// Workers are simulated: their local work runs one worker at a time on a
// shared thread pool (L threads, the paper's local parallelism), and each
// worker's busy time is recorded per stage so that cluster wall time can be
// derived as Σ_stage max_worker(compute) + network model.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "fault/fault_spec.h"
#include "governor/context.h"
#include "matrix/local_matrix.h"
#include "plan/plan.h"
#include "runtime/dist_matrix.h"
#include "runtime/exec_stats.h"
#include "runtime/local_engine.h"

namespace dmac {

/// Named input matrices for a plan's load steps.
using Bindings = std::unordered_map<std::string, const LocalMatrix*>;

/// Executor configuration.
struct ExecutorOptions {
  /// Number of simulated workers (must match the planner's num_workers for
  /// the cost model to be meaningful).
  int num_workers = 4;
  /// Local parallelism L per worker.
  int threads_per_worker = 2;
  /// Square block side. 0 = adopt the block size of the first binding.
  int64_t block_size = 0;
  /// In-place (DMac) or buffered (ablation) local multiplication.
  LocalMode local_mode = LocalMode::kInPlace;
  /// Shared task queue (Fig. 4) or static per-thread chunks (ablation).
  TaskScheduling task_scheduling = TaskScheduling::kQueue;
  /// Blocks denser than this are stored dense.
  double density_threshold = 0.5;
  /// Seed for `random` leaves.
  uint64_t seed = 42;
  /// Fault injection and recovery (docs/fault_tolerance.md). While
  /// `fault.enabled` is false the fault machinery costs one branch per
  /// step and nothing else.
  FaultSpec fault;
  /// Checkpoint designated matrices every K producing steps (0 = never).
  /// When the plan carries checkpoint hints only hinted nodes count toward
  /// K and are snapshotted; without hints every producing step does.
  int checkpoint_every = 0;
  /// Durable checkpoint directory (docs/fault_tolerance.md, "Durability &
  /// restart"). Non-empty = every in-memory checkpoint is also committed to
  /// disk as a crash-consistent epoch; if `checkpoint_every` is 0 it
  /// defaults to 1 (every producing step). `fault.disk` faults inject into
  /// this path.
  std::string checkpoint_dir;
  /// Restore the last committed snapshot from `checkpoint_dir` before
  /// executing, skipping every step the snapshot covers. The resumed run is
  /// bit-identical to an uninterrupted one. A fresh/empty directory resumes
  /// from nothing (a plain full run), which is what a crash-restart loop
  /// needs on its first iteration.
  bool resume = false;
  /// Quorum: the run fails clean with kUnavailable once permanent worker
  /// deaths leave fewer than this many survivors. Clamped to
  /// [1, num_workers]; the default 1 means "degrade all the way down to a
  /// single worker before giving up".
  int min_workers = 1;
  /// Resource governance (docs/governance.md): cancel token / deadline,
  /// memory budget with spill store. Default-constructed = ungoverned, and
  /// the hot paths cost one branch per step.
  GovernorContext governor;
};

/// Result of executing a plan.
struct ExecutionResult {
  std::unordered_map<std::string, LocalMatrix> matrices;
  std::unordered_map<std::string, double> scalars;
  ExecStats stats;
};

/// Executes finalized plans. Reusable across plans with the same options.
class Executor {
 public:
  explicit Executor(ExecutorOptions options);

  /// Runs `plan` with the given input bindings.
  Result<ExecutionResult> Execute(const Plan& plan, const Bindings& bindings);

  const ExecutorOptions& options() const { return options_; }

 private:
  class Impl;
  ExecutorOptions options_;
};

}  // namespace dmac
