// Execution statistics: communication accounting and timing.
//
// Communication bytes are counted exactly as blocks cross worker stores —
// this is the metric of the paper's Fig. 6(b). Wall-clock time on a real
// cluster is modeled as measured compute (max over workers per stage, since
// stages are barriers) plus simulated network transfer time.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace dmac {

/// Network cost model of the simulated cluster.
struct NetworkModel {
  /// Effective per-link bandwidth (bytes/second). Default ~1 Gbit/s, the
  /// class of interconnect used in the paper's cluster.
  double bandwidth_bytes_per_sec = 125e6;
  /// Fixed startup cost per communication event (one shuffle or broadcast
  /// round — roughly a Spark stage boundary).
  double latency_sec = 0.01;
};

/// Statistics of one plan execution.
struct ExecStats {
  double shuffle_bytes = 0;
  double broadcast_bytes = 0;
  int64_t shuffle_events = 0;
  int64_t broadcast_events = 0;

  /// Measured local compute seconds, per stage and per worker. Stages are
  /// numbered 1-based everywhere they are user-visible (plans, --stats
  /// output, AddWorkerSeconds), but this vector is 0-indexed:
  /// stage_worker_seconds[s][w] is worker w's busy time in stage number
  /// s + 1. See docs/runtime.md.
  std::vector<std::vector<double>> stage_worker_seconds;

  /// Peak tracked block memory over the run (process-wide).
  int64_t peak_memory_bytes = 0;

  double comm_bytes() const { return shuffle_bytes + broadcast_bytes; }
  int64_t comm_events() const { return shuffle_events + broadcast_events; }

  /// Adds `seconds` of busy time for `worker` in stage number `stage`
  /// (1-based, i.e. stored at stage_worker_seconds[stage - 1]).
  void AddWorkerSeconds(int stage, int worker, double seconds) {
    if (stage < 1) stage = 1;
    if (static_cast<size_t>(stage) > stage_worker_seconds.size()) {
      stage_worker_seconds.resize(static_cast<size_t>(stage));
    }
    auto& per_worker = stage_worker_seconds[static_cast<size_t>(stage - 1)];
    if (static_cast<size_t>(worker) >= per_worker.size()) {
      per_worker.resize(static_cast<size_t>(worker) + 1, 0.0);
    }
    per_worker[static_cast<size_t>(worker)] += seconds;
  }

  /// Cluster-equivalent compute wall time: stages are barriers, so each
  /// stage costs its slowest worker.
  double ComputeWallSeconds() const {
    double total = 0;
    for (const auto& per_worker : stage_worker_seconds) {
      double mx = 0;
      for (double s : per_worker) mx = std::max(mx, s);
      total += mx;
    }
    return total;
  }

  /// Total busy CPU time across all stages and workers — the cluster's
  /// aggregate compute, as opposed to ComputeWallSeconds()' critical path.
  /// Their ratio is a direct read on per-worker skew.
  double TotalComputeSeconds() const {
    double total = 0;
    for (const auto& per_worker : stage_worker_seconds) {
      for (double s : per_worker) total += s;
    }
    return total;
  }

  /// Modeled network transfer time under `net`.
  double CommSeconds(const NetworkModel& net) const {
    return comm_bytes() / net.bandwidth_bytes_per_sec +
           static_cast<double>(comm_events()) * net.latency_sec;
  }

  /// Modeled end-to-end time: compute + network.
  double SimulatedSeconds(const NetworkModel& net) const {
    return ComputeWallSeconds() + CommSeconds(net);
  }

  /// Merges another run's statistics (for accumulating over iterations).
  void Merge(const ExecStats& other) {
    shuffle_bytes += other.shuffle_bytes;
    broadcast_bytes += other.broadcast_bytes;
    shuffle_events += other.shuffle_events;
    broadcast_events += other.broadcast_events;
    for (size_t s = 0; s < other.stage_worker_seconds.size(); ++s) {
      for (size_t w = 0; w < other.stage_worker_seconds[s].size(); ++w) {
        AddWorkerSeconds(static_cast<int>(s) + 1, static_cast<int>(w),
                         other.stage_worker_seconds[s][w]);
      }
    }
    peak_memory_bytes = std::max(peak_memory_bytes, other.peak_memory_bytes);
  }
};

}  // namespace dmac
