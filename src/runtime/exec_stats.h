// Execution statistics: communication accounting and timing.
//
// Communication bytes are counted exactly as blocks cross worker stores —
// this is the metric of the paper's Fig. 6(b). Wall-clock time on a real
// cluster is modeled as measured compute (max over workers per stage, since
// stages are barriers) plus simulated network transfer time.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dmac {

/// Network cost model of the simulated cluster.
struct NetworkModel {
  /// Effective per-link bandwidth (bytes/second). Default ~1 Gbit/s, the
  /// class of interconnect used in the paper's cluster.
  double bandwidth_bytes_per_sec = 125e6;
  /// Fixed startup cost per communication event (one shuffle or broadcast
  /// round — roughly a Spark stage boundary).
  double latency_sec = 0.01;
};

/// Statistics of one plan execution.
struct ExecStats {
  double shuffle_bytes = 0;
  double broadcast_bytes = 0;
  int64_t shuffle_events = 0;
  int64_t broadcast_events = 0;

  /// Measured local compute seconds, per stage and per worker. Stages are
  /// numbered 1-based everywhere they are user-visible (plans, --stats
  /// output, AddWorkerSeconds), but this vector is 0-indexed:
  /// stage_worker_seconds[s][w] is worker w's busy time in stage number
  /// s + 1. See docs/runtime.md.
  std::vector<std::vector<double>> stage_worker_seconds;

  /// Peak tracked block memory over the run (process-wide).
  int64_t peak_memory_bytes = 0;

  // --- Fault tolerance (docs/fault_tolerance.md). All zero in a fault-free
  // run. Recovery work is kept out of the useful-compute and useful-comm
  // totals above so TotalComputeSeconds()/comm_bytes() still measure the
  // algorithm, not the failure handling; the recovery side is accounted
  // separately below.
  int64_t faults_injected = 0;
  int64_t retries = 0;            // step attempts repeated after a failure
  int64_t recomputed_blocks = 0;  // rebuilt by re-running lineage producers
  int64_t restored_blocks = 0;    // restored from checkpoint / replica
  int64_t speculated_tasks = 0;   // straggler tasks re-run on a backup
  int64_t checkpoint_bytes = 0;   // deep-copied into the checkpoint store
  double recovery_bytes = 0;      // comm bytes moved by retried/recovery work
  int64_t recovery_events = 0;    // comm rounds of retried/recovery work
  /// Worker busy seconds attributed to recovery per stage (1-based stages
  /// stored 0-indexed like stage_worker_seconds, but summed over workers).
  std::vector<double> stage_recovery_seconds;
  /// Step attempts repeated, per stage (same indexing).
  std::vector<int64_t> stage_retries;
  /// Blocks rebuilt from lineage, per stage (same indexing).
  std::vector<int64_t> stage_recomputed_blocks;

  // --- Membership / permanent worker loss (docs/fault_tolerance.md).
  int64_t workers_dead = 0;        // permanent deaths over the run
  int64_t membership_epoch = 0;    // final epoch (0 = membership not built)
  double detection_seconds = 0;    // simulated failure-detection latency

  // --- Message-level network faults. All zero when the network layer is
  // off; none of them perturb the useful-comm totals above — drop /
  // duplicate / reorder / delay only ever add *recovery-side* accounting.
  int64_t net_messages = 0;      // transfers routed through the layer
  int64_t net_retransmits = 0;   // dropped sends retried to delivery
  double net_retrans_bytes = 0;  // bytes moved again by retransmits
  int64_t net_duplicates = 0;    // duplicate deliveries absorbed
  int64_t net_reordered = 0;     // out-of-order arrivals absorbed
  double net_delay_seconds = 0;  // simulated latency from delays + backoff
  int64_t net_partitions = 0;    // transient partitions opened
  int64_t net_stale_fenced = 0;  // dead-sender transfers fenced by epoch
  int64_t net_stale_applied = 0;  // audit: fenced-class transfers applied

  // --- Durable checkpoints & crash restart (docs/fault_tolerance.md,
  // "Durability & restart"). All zero without --checkpoint-dir.
  int64_t durable_checkpoint_bytes = 0;  // committed to disk (blocks+manifests)
  int64_t durable_epochs = 0;            // checkpoint epochs committed
  int64_t checkpoint_failures = 0;       // durable commits that failed (run continued)
  int64_t disk_faults_injected = 0;      // faults drawn by the StorageIO layer
  bool resumed = false;                  // this run restored a durable snapshot
  int64_t resume_step = -1;              // last step the snapshot covered
  int64_t resume_restored_blocks = 0;    // blocks read back from disk on resume

  // --- Plan-estimate drift (docs/planner.md). The §5.1 size estimator is
  // deliberately worst-case (s_C = 1 after every multiply), which makes
  // chained-multiply estimates wildly pessimistic; these fields record what
  // actually happened so the planner.estimate.drift metric can surface it.
  /// Measured nonzeros of every plan matrix still resident when the run
  /// finished, keyed by its plan rendering ("W#3", "V^T", ...).
  std::map<std::string, int64_t> matrix_nnz;
  /// The §4.1 communication estimate the executed plan carried.
  double estimated_comm_bytes = 0;
  /// max(estimated, measured) / min(estimated, measured) communication
  /// bytes: always >= 1 once both sides are nonzero; 0 = not computed.
  double estimate_drift = 0;

  double comm_bytes() const { return shuffle_bytes + broadcast_bytes; }
  int64_t comm_events() const { return shuffle_events + broadcast_events; }

  /// Adds `seconds` of busy time for `worker` in stage number `stage`
  /// (1-based, i.e. stored at stage_worker_seconds[stage - 1]).
  void AddWorkerSeconds(int stage, int worker, double seconds) {
    if (stage < 1) stage = 1;
    if (static_cast<size_t>(stage) > stage_worker_seconds.size()) {
      stage_worker_seconds.resize(static_cast<size_t>(stage));
    }
    auto& per_worker = stage_worker_seconds[static_cast<size_t>(stage - 1)];
    if (static_cast<size_t>(worker) >= per_worker.size()) {
      per_worker.resize(static_cast<size_t>(worker) + 1, 0.0);
    }
    per_worker[static_cast<size_t>(worker)] += seconds;
  }

  /// Cluster-equivalent compute wall time: stages are barriers, so each
  /// stage costs its slowest worker.
  double ComputeWallSeconds() const {
    double total = 0;
    for (const auto& per_worker : stage_worker_seconds) {
      double mx = 0;
      for (double s : per_worker) mx = std::max(mx, s);
      total += mx;
    }
    return total;
  }

  /// Total busy CPU time across all stages and workers — the cluster's
  /// aggregate compute, as opposed to ComputeWallSeconds()' critical path.
  /// Their ratio is a direct read on per-worker skew.
  double TotalComputeSeconds() const {
    double total = 0;
    for (const auto& per_worker : stage_worker_seconds) {
      for (double s : per_worker) total += s;
    }
    return total;
  }

  /// Adds recovery-attributed busy time in stage number `stage` (1-based).
  void AddRecoverySeconds(int stage, double seconds) {
    GrowStage(&stage_recovery_seconds, stage) += seconds;
  }

  /// Counts one repeated attempt of a step in stage number `stage`.
  void AddRetry(int stage) {
    ++retries;
    ++GrowStage(&stage_retries, stage);
  }

  /// Counts blocks rebuilt from lineage while recovering in `stage`.
  void AddRecomputed(int stage, int64_t blocks) {
    recomputed_blocks += blocks;
    GrowStage(&stage_recomputed_blocks, stage) += blocks;
  }

  /// Aggregate worker time spent on recovery instead of useful compute.
  double TotalRecoverySeconds() const {
    double total = 0;
    for (double s : stage_recovery_seconds) total += s;
    return total;
  }

  /// Modeled network transfer time under `net`.
  double CommSeconds(const NetworkModel& net) const {
    return comm_bytes() / net.bandwidth_bytes_per_sec +
           static_cast<double>(comm_events()) * net.latency_sec;
  }

  /// Modeled end-to-end time: compute + network.
  double SimulatedSeconds(const NetworkModel& net) const {
    return ComputeWallSeconds() + CommSeconds(net);
  }

  /// Merges another run's statistics (for accumulating over iterations).
  void Merge(const ExecStats& other) {
    shuffle_bytes += other.shuffle_bytes;
    broadcast_bytes += other.broadcast_bytes;
    shuffle_events += other.shuffle_events;
    broadcast_events += other.broadcast_events;
    for (size_t s = 0; s < other.stage_worker_seconds.size(); ++s) {
      for (size_t w = 0; w < other.stage_worker_seconds[s].size(); ++w) {
        AddWorkerSeconds(static_cast<int>(s) + 1, static_cast<int>(w),
                         other.stage_worker_seconds[s][w]);
      }
    }
    peak_memory_bytes = std::max(peak_memory_bytes, other.peak_memory_bytes);
    faults_injected += other.faults_injected;
    retries += other.retries;
    recomputed_blocks += other.recomputed_blocks;
    restored_blocks += other.restored_blocks;
    speculated_tasks += other.speculated_tasks;
    checkpoint_bytes += other.checkpoint_bytes;
    recovery_bytes += other.recovery_bytes;
    recovery_events += other.recovery_events;
    MergeStage(&stage_recovery_seconds, other.stage_recovery_seconds);
    MergeStage(&stage_retries, other.stage_retries);
    MergeStage(&stage_recomputed_blocks, other.stage_recomputed_blocks);
    workers_dead += other.workers_dead;
    // Epochs are monotone counters, not additive quantities.
    membership_epoch = std::max(membership_epoch, other.membership_epoch);
    detection_seconds += other.detection_seconds;
    net_messages += other.net_messages;
    net_retransmits += other.net_retransmits;
    net_retrans_bytes += other.net_retrans_bytes;
    net_duplicates += other.net_duplicates;
    net_reordered += other.net_reordered;
    net_delay_seconds += other.net_delay_seconds;
    net_partitions += other.net_partitions;
    net_stale_fenced += other.net_stale_fenced;
    net_stale_applied += other.net_stale_applied;
    durable_checkpoint_bytes += other.durable_checkpoint_bytes;
    durable_epochs += other.durable_epochs;
    checkpoint_failures += other.checkpoint_failures;
    disk_faults_injected += other.disk_faults_injected;
    for (const auto& [name, nnz] : other.matrix_nnz) matrix_nnz[name] = nnz;
    estimated_comm_bytes += other.estimated_comm_bytes;
    // Drift is a ratio, not an additive quantity; keep the worst seen.
    estimate_drift = std::max(estimate_drift, other.estimate_drift);
    resumed = resumed || other.resumed;
    // A resume point is a position, not a quantity.
    resume_step = std::max(resume_step, other.resume_step);
    resume_restored_blocks += other.resume_restored_blocks;
  }

 private:
  /// Element for 1-based stage number `stage`, growing the vector as needed.
  template <typename T>
  static T& GrowStage(std::vector<T>* v, int stage) {
    if (stage < 1) stage = 1;
    if (static_cast<size_t>(stage) > v->size()) {
      v->resize(static_cast<size_t>(stage), T(0));
    }
    return (*v)[static_cast<size_t>(stage - 1)];
  }

  template <typename T>
  static void MergeStage(std::vector<T>* into, const std::vector<T>& from) {
    for (size_t s = 0; s < from.size(); ++s) {
      GrowStage(into, static_cast<int>(s) + 1) += from[s];
    }
  }
};

}  // namespace dmac
