#include "runtime/executor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/sync.h"
#include "common/timer.h"
#include "common/thread_pool.h"
#include "fault/checkpoint.h"
#include "fault/durable_checkpoint.h"
#include "fault/durable_io.h"
#include "fault/injector.h"
#include "fault/lineage.h"
#include "fault/retry_policy.h"
#include "matrix/mem_tracker.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/buffer_pool.h"
#include "runtime/membership.h"
#include "runtime/network.h"

namespace dmac {

namespace {

/// FormatCache capacity when no memory budget bounds the run: large enough
/// for a handful of converted operand grids, small enough that an unbounded
/// workload cannot pin the heap with stale conversions.
constexpr int64_t kFormatCacheDefaultBytes = int64_t{256} << 20;

/// Evaluates a resolved scalar expression against the scalar environment.
Result<double> EvalScalar(const ScalarExprPtr& e,
                          const std::unordered_map<std::string, double>& env) {
  switch (e->kind) {
    case ScalarExpr::Kind::kLiteral:
      return e->literal;
    case ScalarExpr::Kind::kVarRef: {
      auto it = env.find(e->name);
      if (it == env.end()) {
        return Status::NotFound("scalar " + e->name + " not yet computed");
      }
      return it->second;
    }
    case ScalarExpr::Kind::kBinary: {
      DMAC_ASSIGN_OR_RETURN(double l, EvalScalar(e->lhs, env));
      DMAC_ASSIGN_OR_RETURN(double r, EvalScalar(e->rhs, env));
      switch (e->op) {
        case '+':
          return l + r;
        case '-':
          return l - r;
        case '*':
          return l * r;
        case '/':
          return l / r;
      }
      return Status::Invalid(std::string("unknown scalar operator ") + e->op);
    }
    case ScalarExpr::Kind::kSqrt: {
      DMAC_ASSIGN_OR_RETURN(double l, EvalScalar(e->lhs, env));
      return std::sqrt(l);
    }
    case ScalarExpr::Kind::kReduce:
      return Status::Internal(
          "unresolved reduce in scalar expression (decompose bug)");
  }
  return Status::Internal("unreachable ScalarExpr kind");
}

/// Thread-safe sink writing result blocks into one worker's store.
class StoreSink {
 public:
  StoreSink(DistMatrix* target, int worker) : target_(target), worker_(worker) {}

  void operator()(int64_t bi, int64_t bj, Block block) DMAC_EXCLUDES(mu_) {
    auto ptr = std::make_shared<const Block>(std::move(block));
    MutexLock lock(&mu_);
    target_->Put(worker_, bi, bj, std::move(ptr));
  }

 private:
  Mutex mu_;
  DistMatrix* DMAC_PT_GUARDED_BY(mu_) target_;
  int worker_;
};

/// Trace-span name of a step: "compute[multiply:RMM1]", "broadcast", ...
std::string StepSpanName(const PlanStep& step) {
  std::string name = StepKindName(step.kind);
  if (step.kind == StepKind::kCompute) {
    name += "[";
    name += OpKindName(step.op_kind);
    if (step.mult_algo != MultAlgo::kNone) {
      name += ":";
      name += MultAlgoName(step.mult_algo);
    }
    name += "]";
  }
  if (!step.source.empty()) name += " " + step.source;
  return name;
}

}  // namespace

class Executor::Impl {
 public:
  Impl(const ExecutorOptions& opts, const Plan& plan, const Bindings& bindings)
      : opts_(opts),
        plan_(plan),
        bindings_(bindings),
        pool_(static_cast<size_t>(opts.threads_per_worker)),
        buffers_(static_cast<size_t>(opts.threads_per_worker) * 2),
        engine_(&pool_, &buffers_, opts.local_mode, opts.density_threshold,
                opts.task_scheduling),
        node_data_(plan.nodes.size()),
        gov_(opts.governor),
        node_last_use_(plan.nodes.size(), -1) {
    if (gov_.token.active()) engine_.SetCancelToken(&gov_.token);
    if (gov_.budget != nullptr) buffers_.SetBudget(gov_.budget);
    // CSC→CSR conversion cache for plan steps marked by MarkOperandReuse
    // (plan/reuse.h). Under a governed budget the cache charges the shared
    // MemoryBudget (Charge never blocks; overshoot is reconciled at step
    // boundaries like every other allocation) and caps itself at a quarter
    // of the limit so evictions kick in before conversions crowd out
    // operand blocks.
    int64_t cache_capacity = kFormatCacheDefaultBytes;
    if (gov_.budget != nullptr && gov_.budget->limit_bytes() > 0) {
      cache_capacity =
          std::min<int64_t>(cache_capacity, gov_.budget->limit_bytes() / 4);
      std::shared_ptr<MemoryBudget> budget = gov_.budget;
      format_cache_ = std::make_unique<FormatCache>(
          cache_capacity,
          [budget](int64_t bytes) {
            budget->Charge(bytes);
            return Status::Ok();
          },
          [budget](int64_t bytes) { budget->Release(bytes); });
    } else {
      format_cache_ = std::make_unique<FormatCache>(cache_capacity);
    }
    engine_.SetFormatCache(format_cache_.get());
  }

  Result<ExecutionResult> Run() {
    DMAC_RETURN_NOT_OK(CheckCancel());  // a 0 ms deadline fails before work
    DMAC_RETURN_NOT_OK(PickBlockSize());
    DMAC_RETURN_NOT_OK(SetUpFaultTolerance());
    DMAC_RETURN_NOT_OK(MaybeResume());
    MemTracker::Global().ResetPeak();
    const int64_t mem_before_peak = MemTracker::Global().peak_bytes();

    // Steps run in dependency order, so stage numbers may interleave; each
    // contiguous run of same-stage steps becomes one stage span (the same
    // grouping Plan::ToString uses for its "=== Stage" headers).
    int current_stage = std::numeric_limits<int>::min();
    std::optional<TraceSpan> stage_span;
    for (const PlanStep& step : plan_.steps) {
      if (step.id <= resume_skip_step_) {
        // The restored snapshot covers this step. Bump the LRU clock the
        // way an uninterrupted run would (spill ordering parity), then
        // either skip it or — for the load steps of reload-marked nodes —
        // re-execute it against the caller's bindings.
        ++step_clock_;
        for (int input : step.inputs) {
          node_last_use_[static_cast<size_t>(input)] = step_clock_;
        }
        if (step.output >= 0) {
          node_last_use_[static_cast<size_t>(step.output)] = step_clock_;
        }
        if (reload_step_ids_.count(step.id) != 0) {
          DMAC_RETURN_NOT_OK(ExecuteStep(step));
          // Lineage only: the snapshot's checkpoint counter already
          // includes this step's contribution from the original run.
          RecordLineage(step);
        }
        continue;
      }
      const bool tracing = TraceRecorder::Global().enabled();
      if (step.stage != current_stage) {
        stage_span.reset();
        current_stage = step.stage;
        if (tracing) {
          stage_span.emplace(kTraceStage,
                             "stage " + std::to_string(current_stage), -1,
                             TraceArg("stage", int64_t{current_stage}));
        }
      }
      TraceSpan step_span =
          tracing ? TraceSpan(kTraceStep, StepSpanName(step), -1,
                              TraceArg("stage", int64_t{step.stage}) + "," +
                                  TraceArg("step", int64_t{step.id}))
                  : TraceSpan();
      DMAC_RETURN_NOT_OK(GovernStep(step));
      Status step_status = ft_ ? RunStepWithRecovery(step) : ExecuteStep(step);
      if (!step_status.ok() && gov_.token.active() && gov_.token.Fired()) {
        // The engine observed the token mid-kernel; surface the governance
        // status (and its one cancel span), not the kernel's unwind error.
        if (step.output >= 0) {
          node_data_[static_cast<size_t>(step.output)] = nullptr;
        }
        DMAC_RETURN_NOT_OK(CheckCancel());
      }
      DMAC_RETURN_NOT_OK(step_status);
      metric_steps_->Increment();
    }
    stage_span.reset();
    metric_stages_->Set(plan_.num_stages);

    if (injector_ != nullptr) {
      // Boundary faults injected after the last consumer of a node can
      // linger into the gather; one final recovery sweep repairs them.
      DMAC_RETURN_NOT_OK(RecoverAll());
      stats_.faults_injected = injector_->faults_drawn();
      metric_fault_injected_->Add(
          static_cast<double>(stats_.faults_injected));
    }
    ExportFaultNetworkStats();

    ExecutionResult result;
    for (const PlanOutput& out : plan_.outputs) {
      DMAC_ASSIGN_OR_RETURN(LocalMatrix m, Gather(out.node));
      if (out.transposed) m = m.Transposed();
      result.matrices.emplace(out.variable, std::move(m));
    }
    for (const auto& [var, ssa] : plan_.scalar_outputs) {
      auto it = scalars_.find(ssa);
      if (it == scalars_.end()) {
        return Status::NotFound("scalar output " + ssa + " never computed");
      }
      result.scalars.emplace(var, it->second);
    }
    stats_.peak_memory_bytes =
        std::max(MemTracker::Global().peak_bytes(), mem_before_peak);
    metric_peak_memory_->Set(static_cast<double>(stats_.peak_memory_bytes));
    RecordEstimateDrift();
    result.stats = std::move(stats_);
    return result;
  }

  /// Fills ExecStats::matrix_nnz from the nodes still resident and compares
  /// the plan's §4.1 communication estimate against what actually moved.
  /// The §5.1 worst-case sparsity rule (s_C = 1 after every multiply) can
  /// overestimate chained-multiply traffic by orders of magnitude; the
  /// planner.estimate.drift gauge makes that visible, and the .events
  /// counter fires when the divergence exceeds 4x (docs/planner.md).
  void RecordEstimateDrift() {
    for (size_t i = 0; i < node_data_.size(); ++i) {
      const auto& dm = node_data_[i];
      if (dm == nullptr) continue;
      int64_t nnz = 0;
      bool complete = true;
      for (int64_t bi = 0; complete && bi < dm->grid().block_rows(); ++bi) {
        for (int64_t bj = 0; bj < dm->grid().block_cols(); ++bj) {
          const auto block = dm->GetOwned(bi, bj);
          if (block == nullptr) {  // spilled or dropped; don't guess
            complete = false;
            break;
          }
          nnz += block->nnz();
        }
      }
      if (complete) {
        const PlanNode& node = plan_.nodes[i];
        stats_.matrix_nnz[node.transposed ? node.matrix + "^T"
                                          : node.matrix] = nnz;
      }
    }
    stats_.estimated_comm_bytes = plan_.total_comm_bytes;
    const double estimated = plan_.total_comm_bytes;
    const double measured = stats_.comm_bytes();
    if (estimated > 0 && measured > 0) {
      stats_.estimate_drift =
          std::max(estimated, measured) / std::min(estimated, measured);
    } else if (estimated == measured) {
      stats_.estimate_drift = 1;  // both zero: a comm-free plan, no drift
    }
    metric_estimate_drift_->Set(stats_.estimate_drift);
    if (stats_.estimate_drift > 4.0) {
      metric_estimate_drift_events_->Increment();
    }
  }

 private:
  // ---- setup -------------------------------------------------------------

  Status PickBlockSize() {
    block_size_ = opts_.block_size;
    if (block_size_ == 0) {
      for (const auto& [name, matrix] : bindings_) {
        block_size_ = matrix->block_size();
        break;
      }
    }
    if (block_size_ <= 0) block_size_ = 1024;
    for (const auto& [name, matrix] : bindings_) {
      if (matrix->block_size() != block_size_) {
        return Status::Invalid(
            "binding " + name + " uses block size " +
            std::to_string(matrix->block_size()) + ", executor uses " +
            std::to_string(block_size_));
      }
    }
    return Status::Ok();
  }

  const PlanNode& NodeOf(int id) const {
    return plan_.nodes[static_cast<size_t>(id)];
  }

  DistMatrix& Data(int node_id) {
    DMAC_CHECK(node_data_[static_cast<size_t>(node_id)] != nullptr)
        << "node " << node_id << " has no materialized data";
    return *node_data_[static_cast<size_t>(node_id)];
  }

  std::shared_ptr<DistMatrix> NewData(int node_id, Shape shape) {
    const PlanNode& node = NodeOf(node_id);
    auto dm = std::make_shared<DistMatrix>(BlockGrid{shape, block_size_},
                                           node.scheme(), opts_.num_workers);
    if (gov_.budget != nullptr || gov_.spill != nullptr) {
      dm->SetGovernor(gov_.budget, gov_.spill);
    }
    if (!host_map_.empty()) dm->SetRebalanceMap(host_map_);
    node_data_[static_cast<size_t>(node_id)] = dm;
    return dm;
  }

  /// Times `fn` and attributes the elapsed seconds to (step.stage, worker),
  /// both in ExecStats and as a worker-attributed trace span. Block tasks
  /// the engine runs inside `fn` inherit the worker id for their spans.
  ///
  /// This is also the task-launch fault-injection point: with an active
  /// injector (and outside recovery) the launch can fail transiently or
  /// straggle. `idempotent` marks whether running `fn` twice yields the
  /// same state — true for the sink-writing sites (a second run overwrites
  /// the same store keys with identical blocks), false for the accumulating
  /// closures (CPMM phase 1, reduce) — and gates straggler speculation.
  template <typename Fn>
  Status TimedWorker(const PlanStep& step, int worker, Fn&& fn,
                     bool idempotent = true) {
    // Recovery attempts are not re-injected — except a permanent fault,
    // which by definition fails every attempt until retries exhaust.
    if (injector_ != nullptr &&
        (!recovering_ ||
         step.id == injector_->spec().permanent_fail_step)) {
      if (injector_->DrawTransientFailure(step.id)) {
        return Status::Unavailable("injected transient failure on worker " +
                                   std::to_string(worker) + " in step " +
                                   std::to_string(step.id));
      }
      const double delay = injector_->DrawStragglerDelay();
      if (delay > 0) {
        return StraggledWorker(step, worker, std::forward<Fn>(fn), idempotent,
                               delay);
      }
    }
    // Logical slot `worker` may be hosted by a survivor after a permanent
    // death; timing and spans attribute to the physical host while the
    // block layout stays keyed by the logical slot (bit identity).
    const int host = Host(worker);
    TraceSpan span =
        TraceRecorder::Global().enabled()
            ? TraceSpan(recovering_ ? kTraceRecovery : kTraceWorker,
                        StepSpanName(step), host,
                        TraceArg("stage", int64_t{step.stage}))
            : TraceSpan();
    engine_.SetWorkerContext(host);
    Timer timer;
    Status st = fn();
    if (recovering_) {
      AddRecoverySeconds(step.stage, timer.ElapsedSeconds());
    } else {
      stats_.AddWorkerSeconds(step.stage, host, timer.ElapsedSeconds());
    }
    return st;
  }

  /// Runs a worker task whose launch drew an injected straggler delay
  /// (simulated seconds — nothing sleeps). With speculation the backup
  /// worker's re-execution is the useful copy and the straggler attempt is
  /// charged to recovery; without it the stage just absorbs the delay.
  template <typename Fn>
  Status StraggledWorker(const PlanStep& step, int worker, Fn&& fn,
                         bool idempotent, double delay) {
    const int host = Host(worker);
    TraceSpan span =
        TraceRecorder::Global().enabled()
            ? TraceSpan(kTraceRecovery, "straggler " + StepSpanName(step),
                        host, TraceArg("delay_s", delay))
            : TraceSpan();
    engine_.SetWorkerContext(host);
    Timer timer;
    Status st = fn();
    const double measured = timer.ElapsedSeconds();
    if (st.ok() && opts_.fault.speculate && idempotent &&
        opts_.num_workers > 1) {
      AddRecoverySeconds(step.stage, measured + delay);
      ++stats_.speculated_tasks;
      metric_fault_speculated_->Increment();
      const int backup = Host((worker + 1) % opts_.num_workers);
      engine_.SetWorkerContext(backup);
      Timer backup_timer;
      st = fn();
      stats_.AddWorkerSeconds(step.stage, backup,
                              backup_timer.ElapsedSeconds());
      return st;
    }
    stats_.AddWorkerSeconds(step.stage, host, measured + delay);
    return st;
  }

  /// Counts one shuffle round of `bytes` (stats + metrics). Bytes moved by
  /// recovery work are kept out of the useful-communication totals.
  void CountShuffle(double bytes) {
    if (recovering_) {
      stats_.recovery_bytes += bytes;
      ++stats_.recovery_events;
      return;
    }
    stats_.shuffle_bytes += bytes;
    ++stats_.shuffle_events;
    metric_shuffle_bytes_->Add(bytes);
    metric_shuffle_rounds_->Increment();
  }

  /// Counts one broadcast round of `bytes` (stats + metrics).
  void CountBroadcast(double bytes) {
    if (recovering_) {
      stats_.recovery_bytes += bytes;
      ++stats_.recovery_events;
      return;
    }
    stats_.broadcast_bytes += bytes;
    ++stats_.broadcast_events;
    metric_broadcast_bytes_->Add(bytes);
    metric_broadcast_rounds_->Increment();
  }

  void AddRecoverySeconds(int stage, double seconds) {
    stats_.AddRecoverySeconds(stage, seconds);
    metric_fault_recovery_seconds_->Add(seconds);
  }

  /// Reads a block for a cross-worker transfer, verifying integrity in
  /// fault-tolerant runs. Missing blocks are DataLoss (retryable after
  /// recovery) rather than an internal error.
  Result<DistMatrix::BlockPtr> VerifiedGet(const DistMatrix& src, int worker,
                                           int64_t bi, int64_t bj,
                                           const char* what) {
    auto ptr = src.Get(worker, bi, bj);
    if (ptr == nullptr) {
      return Status::DataLoss(std::string(what) + ": block (" +
                              std::to_string(bi) + ", " + std::to_string(bj) +
                              ") missing on worker " + std::to_string(worker));
    }
    if (ft_) DMAC_RETURN_NOT_OK(src.VerifyAt(worker, bi, bj));
    return ptr;
  }

  // ---- governance (docs/governance.md) ------------------------------------

  /// Cooperative cancellation poll. The first failed check emits one
  /// `cancel` trace span recording how the query ended.
  Status CheckCancel() {
    if (!gov_.token.active()) return Status::Ok();
    Status st = gov_.token.Check();
    if (!st.ok() && !cancel_span_emitted_) {
      cancel_span_emitted_ = true;
      TraceSpan span(kTraceCancel,
                     st.code() == StatusCode::kDeadlineExceeded
                         ? "deadline-exceeded"
                         : "cancelled");
    }
    return st;
  }

  /// Pre-step governance: poll the token, bump the LRU clock, and make room
  /// under the budget for the step's working set.
  Status GovernStep(const PlanStep& step) {
    DMAC_RETURN_NOT_OK(CheckCancel());
    ++step_clock_;
    for (int input : step.inputs) {
      node_last_use_[static_cast<size_t>(input)] = step_clock_;
    }
    if (step.output >= 0) {
      node_last_use_[static_cast<size_t>(step.output)] = step_clock_;
    }
    if (!gov_.budgeted()) return Status::Ok();
    return RebalanceBudget(step);
  }

  /// Spills cold nodes (LRU by last-touching step, ids ascending as the
  /// tiebreak) until the budget has room for the step's pinned working set
  /// — its inputs, all of which must be resident at once. Fails with
  /// kResourceExhausted when the pinned set alone exceeds the budget or no
  /// spill candidate remains.
  Status RebalanceBudget(const PlanStep& step) {
    int64_t pinned = 0;
    int64_t spilled_inputs = 0;
    for (int input : step.inputs) {
      const auto& dm = node_data_[static_cast<size_t>(input)];
      if (dm == nullptr) continue;
      pinned += dm->OwnedBytes();
      spilled_inputs += dm->SpilledBytes();
    }
    if (gov_.budget->ExceedsWholeBudget(pinned)) {
      return Status::ResourceExhausted(
          "step " + std::to_string(step.id) + ": working set of " +
          std::to_string(pinned) + " bytes exceeds the memory budget of " +
          std::to_string(gov_.budget->limit_bytes()) +
          " bytes; spilling cannot help");
    }
    // Free the current overage plus what restoring spilled inputs will
    // re-charge, by spilling nodes no later step has touched more recently.
    int64_t need = gov_.budget->OverBudgetBytes() + spilled_inputs;
    if (need <= 0) return Status::Ok();

    std::vector<std::pair<int, int>> candidates;  // (last_use, node id)
    for (size_t id = 0; id < node_data_.size(); ++id) {
      if (node_data_[id] == nullptr) continue;
      const int node = static_cast<int>(id);
      if (node == step.output ||
          std::find(step.inputs.begin(), step.inputs.end(), node) !=
              step.inputs.end()) {
        continue;  // pinned
      }
      candidates.emplace_back(node_last_use_[id], node);
    }
    std::sort(candidates.begin(), candidates.end());

    int64_t freed = 0;
    for (const auto& [last_use, node] : candidates) {
      if (freed >= need) break;
      auto& dm = node_data_[static_cast<size_t>(node)];
      TraceSpan span(kTraceSpill, "spill node " + std::to_string(node), -1,
                     TraceArg("node", int64_t{node}));
      DMAC_ASSIGN_OR_RETURN(int64_t f, dm->SpillColdBlocks(need - freed));
      freed += f;
    }
    if (gov_.budget->OverBudgetBytes() > 0) {
      return Status::ResourceExhausted(
          "memory budget of " + std::to_string(gov_.budget->limit_bytes()) +
          " bytes still exceeded by " +
          std::to_string(gov_.budget->OverBudgetBytes()) +
          " bytes after spilling every cold block");
    }
    return Status::Ok();
  }

  /// Restores any spilled input of `step` (recovery re-runs and retries hit
  /// this too, not just the main loop). No-op without a spill store.
  Status EnsureInputsResident(const PlanStep& step) {
    for (int input : step.inputs) {
      auto& dm = node_data_[static_cast<size_t>(input)];
      if (dm == nullptr || dm->SpilledEntries() == 0) continue;
      TraceSpan span(kTraceSpill, "restore node " + std::to_string(input),
                     -1, TraceArg("node", int64_t{input}));
      DMAC_RETURN_NOT_OK(dm->EnsureResident().status());
    }
    return Status::Ok();
  }

  // ---- fault tolerance (docs/fault_tolerance.md) --------------------------

  Status SetUpFaultTolerance() {
    const bool durable = !opts_.checkpoint_dir.empty();
    // A durable directory implies checkpointing: default the cadence to
    // every producing step so a bare --checkpoint-dir is crash-safe.
    effective_checkpoint_every_ =
        opts_.checkpoint_every > 0 ? opts_.checkpoint_every : (durable ? 1 : 0);
    ft_ = opts_.fault.enabled || effective_checkpoint_every_ > 0;
    min_workers_ = std::min(std::max(opts_.min_workers, 1), opts_.num_workers);
    if (durable) {
      DMAC_RETURN_NOT_OK(opts_.fault.disk.Validate());
      // Salted so the disk schedule is independent of the injector's and
      // the data seed's streams (durable_io.h header comment).
      storage_io_ = std::make_shared<StorageIO>(
          opts_.fault.disk, opts_.fault.seed ^ 0x5d15c0de5d15c0deULL,
          opts_.fault.disk.crash_soft ? StorageIO::CrashMode::kSoft
                                      : StorageIO::CrashMode::kHard);
      DMAC_ASSIGN_OR_RETURN(
          durable_store_,
          DurableCheckpointStore::Open(opts_.checkpoint_dir, storage_io_));
    }
    if (!ft_) return Status::Ok();
    retry_policy_ = RetryPolicy{opts_.fault.max_retries,
                                opts_.fault.backoff_base_seconds,
                                /*multiplier=*/2.0, /*cap_seconds=*/0,
                                /*jitter_fraction=*/0, opts_.fault.seed};
    if (opts_.fault.enabled) {
      DMAC_RETURN_NOT_OK(opts_.fault.Validate());
      injector_ = std::make_unique<FaultInjector>(opts_.fault);
      const bool death_possible =
          opts_.fault.death_prob > 0 || opts_.fault.death_step >= 0;
      if (death_possible || opts_.fault.net.Any()) {
        membership_ = std::make_unique<ClusterMembership>(opts_.num_workers);
        net_ = std::make_unique<SimNetwork>(injector_.get(), membership_.get(),
                                            retry_policy_);
      }
    }
    plan_has_hints_ = false;
    for (const PlanNode& node : plan_.nodes) {
      plan_has_hints_ = plan_has_hints_ || node.checkpoint_hint;
    }
    return Status::Ok();
  }

  /// Physical host of logical slot `w` (identity until a death rebalances).
  int Host(int w) const {
    return membership_ != nullptr ? membership_->HostOf(w) : w;
  }

  /// Copies membership and network-fault accounting into ExecStats and the
  /// metric registry at the end of a run.
  void ExportFaultNetworkStats() {
    if (storage_io_ != nullptr) {
      stats_.disk_faults_injected = storage_io_->faults_injected();
      metric_fault_disk_faults_->Add(
          static_cast<double>(stats_.disk_faults_injected));
    }
    if (membership_ != nullptr) {
      stats_.membership_epoch = membership_->epoch();
      metric_membership_epoch_->Set(
          static_cast<double>(membership_->epoch()));
      metric_membership_dead_->Set(
          static_cast<double>(membership_->dead_workers()));
      metric_membership_detection_->Add(stats_.detection_seconds);
    }
    if (net_ == nullptr) return;
    const NetFaultStats& ns = net_->stats();
    stats_.net_messages = ns.messages;
    stats_.net_retransmits = ns.retransmits;
    stats_.net_retrans_bytes = ns.retrans_bytes;
    stats_.net_duplicates = ns.duplicates;
    stats_.net_reordered = ns.reordered;
    stats_.net_delay_seconds = ns.delay_seconds;
    stats_.net_partitions = ns.partitions;
    stats_.net_stale_fenced = ns.stale_fenced;
    stats_.net_stale_applied = ns.stale_applied;
    metric_net_messages_->Add(static_cast<double>(ns.messages));
    metric_net_retransmits_->Add(static_cast<double>(ns.retransmits));
    metric_net_retrans_bytes_->Add(ns.retrans_bytes);
    metric_net_duplicates_->Add(static_cast<double>(ns.duplicates));
    metric_net_reordered_->Add(static_cast<double>(ns.reordered));
    metric_net_delay_seconds_->Add(ns.delay_seconds);
    metric_net_partitions_->Add(static_cast<double>(ns.partitions));
    metric_net_stale_fenced_->Add(static_cast<double>(ns.stale_fenced));
    metric_net_stale_applied_->Add(static_cast<double>(ns.stale_applied));
  }

  /// Transfers route through the fault-injecting network layer only on the
  /// useful (first) attempt; retries and lineage recovery use the direct
  /// path so that a bounded retry budget is guaranteed to converge.
  bool UseNetwork() const { return net_ != nullptr && !recovering_; }

  /// Fault-tolerant step execution: inject boundary faults, then attempt
  /// the step up to 1 + max_retries times. A retryable failure (transient
  /// Unavailable, detected DataLoss) triggers exponential backoff and full
  /// lineage recovery before the next attempt; retried attempts run as
  /// recovery work so the useful-compute totals stay clean. On success the
  /// output's lineage manifest is recorded and checkpointing may trigger.
  Status RunStepWithRecovery(const PlanStep& step) {
    if (injector_ != nullptr) InjectBoundaryFaults(step);
    // Below quorum the run fails clean — no retries burned, no recovery
    // attempted, no partial output left behind.
    if (!quorum_status_.ok()) {
      if (step.output >= 0) {
        node_data_[static_cast<size_t>(step.output)] = nullptr;
      }
      return quorum_status_;
    }
    Status st;
    for (int attempt = 0;; ++attempt) {
      st = AttemptStep(step, attempt);
      if (st.ok()) break;
      // An in-flight death during the attempt may have dropped the cluster
      // below quorum; give up before the retry machinery spends anything.
      if (!quorum_status_.ok()) {
        if (step.output >= 0) {
          node_data_[static_cast<size_t>(step.output)] = nullptr;
        }
        return quorum_status_;
      }
      // A fired token preempts the retry path: the query exits promptly —
      // no retry counted, no simulated backoff, no recovery sweep — and no
      // partial output survives.
      if (gov_.token.active()) {
        Status cancelled = gov_.token.Check();
        if (!cancelled.ok()) {
          if (step.output >= 0) {
            node_data_[static_cast<size_t>(step.output)] = nullptr;
          }
          DMAC_RETURN_NOT_OK(CheckCancel());  // emits the cancel span
        }
      }
      const bool retryable = RetryPolicy::Retryable(st);
      if (!retryable || attempt >= retry_policy_.max_retries) {
        // Give up cleanly: no partial output may survive in the stores.
        if (step.output >= 0) {
          node_data_[static_cast<size_t>(step.output)] = nullptr;
        }
        if (retryable) {
          const std::string msg = "step " + std::to_string(step.id) +
                                  " failed after " +
                                  std::to_string(attempt + 1) +
                                  " attempts: " + st.message();
          return st.code() == StatusCode::kUnavailable
                     ? Status::Unavailable(msg)
                     : Status::DataLoss(msg);
        }
        return st;
      }
      TraceSpan span(kTraceRecovery, "retry " + StepSpanName(step), -1,
                     TraceArg("step", int64_t{step.id}) + "," +
                         TraceArg("attempt", int64_t{attempt + 1}));
      stats_.AddRetry(step.stage);
      metric_fault_retries_->Increment();
      // Simulated exponential backoff; transient faults clear with time.
      AddRecoverySeconds(step.stage, retry_policy_.BackoffSeconds(attempt));
      DMAC_RETURN_NOT_OK(RecoverAll());
    }
    DMAC_RETURN_NOT_OK(AfterStepSuccess(step));
    return st;
  }

  Status AttemptStep(const PlanStep& step, int attempt) {
    // The first attempt is the useful one; repeats are recovery work (no
    // further injection, seconds and bytes attributed to recovery).
    recovering_ = attempt > 0;
    // A failed attempt may have left undelivered sends queued (e.g. a
    // missing block detected mid-shuffle); they must never leak into a
    // later flush.
    if (net_ != nullptr) net_->Clear();
    Status st = PreflightStepInputs(step);
    if (st.ok()) st = ExecuteStep(step);
    recovering_ = false;
    return st;
  }

  /// Verifies every input node of `step` against its lineage manifest:
  /// all recorded blocks present and hashing to their recorded checksums.
  Status PreflightStepInputs(const PlanStep& step) {
    for (int input : step.inputs) {
      const NodeLineage* lin = lineage_.Find(input);
      if (lin == nullptr) continue;  // produced before fault mode engaged
      const auto& dm = node_data_[static_cast<size_t>(input)];
      if (dm == nullptr) {
        return Status::DataLoss("input node " + std::to_string(input) +
                                " has no materialized data");
      }
      const int64_t bcols = dm->grid().block_cols();
      for (const LineageBlockRecord& rec : lin->blocks) {
        DMAC_RETURN_NOT_OK(
            dm->VerifyAt(rec.worker, rec.key / bcols, rec.key % bcols));
      }
    }
    return Status::Ok();
  }

  /// Step-boundary injection: worker crashes, permanent worker deaths, and
  /// per-entry lost/corrupted blocks, applied to every live node in a
  /// deterministic sweep (nodes by id, workers ascending, store keys
  /// ascending) so a seed always yields the same schedule.
  void InjectBoundaryFaults(const PlanStep& step) {
    int victim = -1;
    if (injector_->DrawCrash(opts_.num_workers, &victim)) {
      TraceSpan span(kTraceRecovery, "inject-crash", victim);
      for (auto& dm : node_data_) {
        if (dm != nullptr) dm->ClearWorker(victim);
      }
    }
    if (membership_ != nullptr) {
      // Forced death at a chosen step boundary (death_in_flight instead
      // fires mid-CPMM, at the communication-round boundary).
      if (opts_.fault.death_step == step.id && !opts_.fault.death_in_flight &&
          !forced_death_applied_) {
        forced_death_applied_ = true;
        ApplyDeath(opts_.fault.death_worker, step.stage);
      }
      // Probabilistic deaths are quorum-budgeted: once one more death would
      // drop the cluster below min_workers, no further draw is consumed —
      // the fault schedule of the surviving spec stays deterministic.
      if (opts_.fault.death_prob > 0 &&
          membership_->live_workers() - 1 >= min_workers_ &&
          injector_->DrawWorkerDeath()) {
        const int k = injector_->DrawVictim(membership_->live_workers());
        int seen = 0;
        for (int w = 0; w < opts_.num_workers; ++w) {
          if (membership_->IsDead(w)) continue;
          if (seen++ == k) {
            ApplyDeath(w, step.stage);
            break;
          }
        }
      }
    }
    const bool per_entry = opts_.fault.lost_block_prob > 0 ||
                           opts_.fault.corrupt_prob > 0;
    if (!per_entry) return;
    for (auto& dm : node_data_) {
      if (dm == nullptr) continue;
      const int64_t bcols = dm->grid().block_cols();
      for (int w = 0; w < opts_.num_workers; ++w) {
        for (int64_t key : dm->SortedWorkerKeys(w)) {
          const int64_t bi = key / bcols;
          const int64_t bj = key % bcols;
          if (injector_->DrawLostBlock()) {
            dm->Drop(w, bi, bj);
            continue;
          }
          if (injector_->DrawCorruptBlock()) {
            auto ptr = dm->Get(w, bi, bj);
            if (ptr == nullptr) continue;  // spilled: no payload in memory
            dm->ReplacePayload(w, bi, bj,
                               std::make_shared<const Block>(CorruptedCopy(
                                   *ptr, injector_->DrawSeed())));
          }
        }
      }
    }
  }

  /// Permanently kills logical worker `victim`: the failure detector
  /// declares it dead (bumping the membership epoch, which fences any
  /// in-flight transfer it sent), its blocks vanish from every store, and
  /// its logical slot is rebalanced onto a deterministic survivor. The
  /// lost blocks are re-derived through the ordinary lineage machinery
  /// (checkpoint → replica → recompute) on the next recovery sweep. Below
  /// quorum this arms `quorum_status_` instead of attempting recovery.
  void ApplyDeath(int victim, int stage) {
    if (victim < 0 || victim >= opts_.num_workers) return;
    if (membership_->IsDead(victim)) return;  // death is permanent
    const double detection = membership_->DeclareDead(victim);
    stats_.detection_seconds += detection;
    AddRecoverySeconds(stage, detection);
    ++stats_.workers_dead;
    for (auto& dm : node_data_) {
      if (dm != nullptr) dm->ClearWorker(victim);
    }
    host_map_ = membership_->HostMap();
    for (auto& dm : node_data_) {
      if (dm != nullptr) dm->SetRebalanceMap(host_map_);
    }
    TraceSpan span(kTraceMembership, "worker-death", victim,
                   TraceArg("epoch", membership_->epoch()) + "," +
                       TraceArg("live", int64_t{membership_->live_workers()}));
    if (membership_->live_workers() < min_workers_) {
      quorum_status_ = Status::Unavailable(
          "worker " + std::to_string(victim) + " died permanently, leaving " +
          std::to_string(membership_->live_workers()) +
          " live workers below the quorum of " + std::to_string(min_workers_));
    }
  }

  /// Repairs every damaged node, cheapest source first: checkpoint restore,
  /// then a surviving Broadcast replica, then recomputation by re-running
  /// the lineage producer step. Walks nodes in producer-step order, so a
  /// recomputed step always reads already-repaired inputs. All repaired
  /// state is re-verified against the lineage manifests — recovery is only
  /// allowed to reproduce the run bit-identically.
  [[nodiscard]] Status RecoverAll() {
    TraceSpan span(kTraceRecovery, "recover-all");
    recovering_ = true;
    Status st = RecoverAllImpl();
    recovering_ = false;
    return st;
  }

  [[nodiscard]] Status RecoverAllImpl() {
    for (const PlanStep& step : plan_.steps) {
      if (step.output < 0) continue;
      const NodeLineage* lin = lineage_.Find(step.output);
      if (lin == nullptr) continue;  // not (successfully) produced yet
      DMAC_RETURN_NOT_OK(RecoverNode(step.output, *lin));
    }
    return Status::Ok();
  }

  [[nodiscard]] Status RecoverNode(int node_id, const NodeLineage& lin) {
    auto& dm = node_data_[static_cast<size_t>(node_id)];
    std::vector<LineageBlockRecord> dirty;
    if (dm == nullptr) {
      dirty = lin.blocks;
    } else {
      const int64_t bcols = dm->grid().block_cols();
      for (const LineageBlockRecord& rec : lin.blocks) {
        if (!dm->VerifyAt(rec.worker, rec.key / bcols, rec.key % bcols)
                 .ok()) {
          dirty.push_back(rec);
        }
      }
    }
    if (dirty.empty()) return Status::Ok();

    TraceSpan span =
        TraceRecorder::Global().enabled()
            ? TraceSpan(kTraceRecovery, "recover node " + NodeOf(node_id).ToString(),
                        -1, TraceArg("node", int64_t{node_id}) + "," +
                                TraceArg("dirty",
                                         static_cast<int64_t>(dirty.size())))
            : TraceSpan();

    // 1. Checkpoint restore: exact deep copies taken at record time.
    if (dm != nullptr) {
      if (const auto* snap = checkpoints_.Find(node_id)) {
        std::vector<LineageBlockRecord> remaining;
        const int64_t bcols = dm->grid().block_cols();
        for (const LineageBlockRecord& rec : dirty) {
          const CheckpointBlock* found = nullptr;
          for (const CheckpointBlock& cb : *snap) {
            if (cb.worker == rec.worker && cb.key == rec.key &&
                cb.checksum == rec.checksum) {
              found = &cb;
              break;
            }
          }
          if (found != nullptr) {
            dm->Put(rec.worker, rec.key / bcols, rec.key % bcols,
                    found->block);
            ++stats_.restored_blocks;
            metric_fault_restored_->Increment();
          } else {
            remaining.push_back(rec);
          }
        }
        dirty = std::move(remaining);
      }
    }

    // 2. Broadcast replica repair: copy a surviving, verifying replica.
    if (dm != nullptr && !dirty.empty() &&
        dm->scheme() == Scheme::kBroadcast) {
      std::vector<LineageBlockRecord> remaining;
      const int64_t bcols = dm->grid().block_cols();
      for (const LineageBlockRecord& rec : dirty) {
        const int64_t bi = rec.key / bcols;
        const int64_t bj = rec.key % bcols;
        bool repaired = false;
        for (int w = 0; w < opts_.num_workers && !repaired; ++w) {
          if (w == rec.worker) continue;
          // The replica must be resident, not just verifiable: VerifyAt
          // passes spilled entries (their file carries the checksum), but
          // Get on one yields null and a null Put would tombstone the slot.
          DistMatrix::BlockPtr replica = dm->Get(w, bi, bj);
          if (replica != nullptr && dm->VerifyAt(w, bi, bj).ok()) {
            dm->Put(rec.worker, bi, bj, std::move(replica));
            ++stats_.restored_blocks;
            metric_fault_restored_->Increment();
            repaired = true;
          }
        }
        if (!repaired) remaining.push_back(rec);
      }
      dirty = std::move(remaining);
    }

    // 3. Recompute from lineage: re-run the producer step (deterministic,
    //    so the rebuilt matrix is bit-identical). Inputs were repaired by
    //    earlier iterations of the producer-order walk.
    if (!dirty.empty()) {
      const PlanStep& producer =
          plan_.steps[static_cast<size_t>(lin.producer_step)];
      DMAC_RETURN_NOT_OK(ExecuteStep(producer));
      stats_.AddRecomputed(producer.stage,
                           static_cast<int64_t>(dirty.size()));
      metric_fault_recomputed_->Add(static_cast<double>(dirty.size()));
    }

    // Re-stamp and enforce bit-identity with the recorded manifest.
    auto& repaired = node_data_[static_cast<size_t>(node_id)];
    if (repaired == nullptr) {
      return Status::Internal("recovery left node " +
                              std::to_string(node_id) + " unmaterialized");
    }
    repaired->SetChecksums();
    const int64_t bcols = repaired->grid().block_cols();
    for (const LineageBlockRecord& rec : lin.blocks) {
      if (repaired->ChecksumAt(rec.worker, rec.key / bcols,
                               rec.key % bcols) != rec.checksum) {
        return Status::Internal(
            "recovery of node " + std::to_string(node_id) +
            " diverged from its lineage manifest at block key " +
            std::to_string(rec.key) + " on worker " +
            std::to_string(rec.worker));
      }
    }
    return Status::Ok();
  }

  /// Post-success bookkeeping of a fault-tolerant step: stamp checksums,
  /// record the output's lineage manifest, and checkpoint when due.
  Status AfterStepSuccess(const PlanStep& step) {
    if (step.output < 0) return Status::Ok();
    RecordLineage(step);
    return MaybeCheckpoint(step);
  }

  /// Stamps the output's checksums and records its lineage manifest.
  void RecordLineage(const PlanStep& step) {
    DistMatrix& dm = Data(step.output);
    dm.SetChecksums();
    NodeLineage lin;
    lin.node_id = step.output;
    lin.producer_step = step.id;
    lin.inputs = step.inputs;
    const int64_t bcols = dm.grid().block_cols();
    for (int w = 0; w < opts_.num_workers; ++w) {
      for (int64_t key : dm.SortedWorkerKeys(w)) {
        lin.blocks.push_back(
            {w, key, dm.ChecksumAt(w, key / bcols, key % bcols)});
      }
    }
    lineage_.Record(std::move(lin));
  }

  [[nodiscard]] Status MaybeCheckpoint(const PlanStep& step) {
    if (effective_checkpoint_every_ <= 0) return Status::Ok();
    const PlanNode& node = NodeOf(step.output);
    if (plan_has_hints_ && !node.checkpoint_hint) return Status::Ok();
    if (++checkpoint_counter_ % effective_checkpoint_every_ != 0) {
      return Status::Ok();
    }
    TraceSpan span(kTraceCheckpoint, "checkpoint " + node.ToString(), -1,
                   TraceArg("node", int64_t{node.id}));
    const DistMatrix& dm = Data(step.output);
    const int64_t bcols = dm.grid().block_cols();
    // Deep copies, deduplicated per payload so Broadcast replicas (shared
    // pointers) are copied — and billed — once.
    std::unordered_map<const Block*, std::shared_ptr<const Block>> copies;
    std::vector<CheckpointBlock> blocks;
    for (int w = 0; w < opts_.num_workers; ++w) {
      for (int64_t key : dm.SortedWorkerKeys(w)) {
        auto ptr = dm.Get(w, key / bcols, key % bcols);
        auto [it, inserted] = copies.try_emplace(ptr.get(), nullptr);
        if (inserted) it->second = std::make_shared<const Block>(*ptr);
        blocks.push_back({w, key, dm.ChecksumAt(w, key / bcols, key % bcols),
                          it->second});
      }
    }
    const int64_t before = checkpoints_.bytes_written();
    checkpoints_.Put(step.output, std::move(blocks));
    const int64_t written = checkpoints_.bytes_written() - before;
    stats_.checkpoint_bytes += written;
    metric_fault_checkpoint_bytes_->Add(static_cast<double>(written));
    if (durable_store_ == nullptr) return Status::Ok();
    return CommitDurable(step);
  }

  /// Commits a durable epoch covering everything a restart needs to resume
  /// after `step`: the scalar environment, reload markers for the nodes
  /// produced by kLoad steps (their blocks alias caller-owned bindings and
  /// are re-loaded instead of serialized), and every block of every other
  /// live node — the inputs of later steps plus the plan outputs.
  [[nodiscard]] Status CommitDurable(const PlanStep& step) {
    TraceSpan span(kTraceCheckpoint,
                   "commit epoch after step " + std::to_string(step.id), -1,
                   TraceArg("step", int64_t{step.id}));
    std::set<int> live;  // ordered: the manifest layout is deterministic
    for (const PlanStep& later : plan_.steps) {
      if (later.id <= step.id) continue;
      for (int input : later.inputs) live.insert(input);
    }
    for (const PlanOutput& out : plan_.outputs) live.insert(out.node);

    std::vector<int> reload_nodes;
    std::vector<PendingDurableBlock> pending;
    for (const int node_id : live) {
      auto& dm = node_data_[static_cast<size_t>(node_id)];
      if (dm == nullptr) continue;  // not produced yet
      const PlanNode& node = NodeOf(node_id);
      if (node.producer_step >= 0 &&
          plan_.steps[static_cast<size_t>(node.producer_step)].kind ==
              StepKind::kLoad) {
        reload_nodes.push_back(node_id);
        continue;
      }
      if (dm->SpilledEntries() > 0) {
        DMAC_RETURN_NOT_OK(dm->EnsureResident().status());
      }
      // Snapshot the *recorded* checksums, deliberately not re-stamping:
      // re-hashing here would launder a boundary-injected corruption into
      // the manifest. A payload that disagrees with its recorded checksum
      // fails verification at Open and the epoch falls back — conservative
      // and safe.
      const int64_t bcols = dm->grid().block_cols();
      for (int w = 0; w < opts_.num_workers; ++w) {
        for (int64_t key : dm->SortedWorkerKeys(w)) {
          auto ptr = dm->Get(w, key / bcols, key % bcols);
          if (ptr == nullptr) continue;
          pending.push_back(PendingDurableBlock{
              node_id, w, key, dm->ChecksumAt(w, key / bcols, key % bcols),
              std::move(ptr)});
        }
      }
    }
    std::vector<std::pair<std::string, double>> scalar_env(scalars_.begin(),
                                                           scalars_.end());
    std::sort(scalar_env.begin(), scalar_env.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    const int64_t before = durable_store_->bytes_written();
    const Status st = durable_store_->Commit(step.id, checkpoint_counter_,
                                             scalar_env, reload_nodes,
                                             pending);
    if (!st.ok()) {
      // A simulated process death must propagate (in hard mode the crash
      // never returns; soft mode surfaces kInternal and refuses further
      // I/O). Any other disk fault is absorbed: the run continues, covered
      // by the previous committed epoch.
      if (storage_io_->dead() || st.code() == StatusCode::kInternal) return st;
      ++stats_.checkpoint_failures;
      metric_fault_checkpoint_failures_->Increment();
      return Status::Ok();
    }
    const int64_t written = durable_store_->bytes_written() - before;
    stats_.durable_checkpoint_bytes += written;
    ++stats_.durable_epochs;
    metric_fault_durable_bytes_->Add(static_cast<double>(written));
    metric_fault_epochs_->Increment();
    return Status::Ok();
  }

  /// Restores the last committed durable snapshot when `--resume` asked for
  /// it: scalars bit-exactly, every snapshotted node's blocks (checksum-
  /// verified), lineage manifests, and the in-memory checkpoint cache (hot
  /// in-process recovery never re-reads disk). Steps the snapshot covers
  /// are skipped by the main loop, except the kLoad steps of reload-marked
  /// nodes, which re-execute against the caller's bindings. A fresh store
  /// (no committed epoch) resumes from nothing — a plain full run.
  Status MaybeResume() {
    if (!opts_.resume || durable_store_ == nullptr) return Status::Ok();
    const DurableSnapshot* snap = durable_store_->committed();
    if (snap == nullptr) return Status::Ok();
    Timer timer;
    TraceSpan span(kTraceCheckpoint,
                   "resume epoch " + std::to_string(snap->epoch), -1,
                   TraceArg("epoch", snap->epoch) + "," +
                       TraceArg("step", int64_t{snap->resume_step}));

    // The snapshot must describe *this* plan; a stale directory from a
    // different program or config must fail loudly, not half-restore.
    const auto bad = [&](const std::string& why) {
      return Status::Invalid("resume: checkpoint dir " +
                             durable_store_->dir() +
                             " does not match this plan (" + why + ")");
    };
    if (snap->resume_step < 0 ||
        static_cast<size_t>(snap->resume_step) >= plan_.steps.size()) {
      return bad("resume step " + std::to_string(snap->resume_step) +
                 " out of range");
    }
    for (const int node_id : snap->reload_nodes) {
      if (node_id < 0 || static_cast<size_t>(node_id) >= plan_.nodes.size()) {
        return bad("reload node " + std::to_string(node_id) + " out of range");
      }
      const int producer = NodeOf(node_id).producer_step;
      if (producer < 0 ||
          plan_.steps[static_cast<size_t>(producer)].kind != StepKind::kLoad) {
        return bad("reload node " + std::to_string(node_id) +
                   " is not load-produced");
      }
      reload_step_ids_.insert(producer);
    }

    for (const auto& [name, bits] : snap->scalars) {
      double value = 0;
      static_assert(sizeof(value) == sizeof(bits));
      std::memcpy(&value, &bits, sizeof(value));
      scalars_[name] = value;
    }
    checkpoint_counter_ = snap->checkpoint_counter;
    resume_skip_step_ = snap->resume_step;

    // Group the snapshot's blocks per node and rebuild each DistMatrix.
    std::map<int, std::vector<const DurableBlock*>> per_node;
    for (const DurableBlock& b : snap->blocks) {
      if (b.node_id < 0 ||
          static_cast<size_t>(b.node_id) >= plan_.nodes.size()) {
        return bad("block node " + std::to_string(b.node_id) +
                   " out of range");
      }
      if (b.worker < 0 || b.worker >= opts_.num_workers) {
        return bad("block worker " + std::to_string(b.worker) +
                   " out of range — was the snapshot taken with a different "
                   "--workers?");
      }
      per_node[b.node_id].push_back(&b);
    }
    for (const auto& [node_id, refs] : per_node) {
      const PlanNode& node = NodeOf(node_id);
      auto dm = NewData(node_id, node.stats.shape);
      const int64_t bcols = dm->grid().block_cols();
      NodeLineage lin;
      lin.node_id = node_id;
      lin.producer_step = node.producer_step;
      if (node.producer_step >= 0) {
        lin.inputs =
            plan_.steps[static_cast<size_t>(node.producer_step)].inputs;
      }
      std::vector<CheckpointBlock> cache_blocks;
      // One read per distinct file: Broadcast replicas share a payload on
      // disk exactly as they do in memory.
      std::unordered_map<std::string, std::shared_ptr<const Block>> loaded;
      for (const DurableBlock* ref : refs) {
        const int64_t bi = ref->key / bcols;
        const int64_t bj = ref->key % bcols;
        if (bi >= dm->grid().block_rows() || bj >= dm->grid().block_cols()) {
          return bad("block key " + std::to_string(ref->key) +
                     " outside node " + std::to_string(node_id) + "'s grid");
        }
        auto [it, inserted] = loaded.try_emplace(ref->file);
        if (inserted) {
          DMAC_ASSIGN_OR_RETURN(Block block, durable_store_->ReadBlock(*ref));
          it->second = std::make_shared<const Block>(std::move(block));
          ++stats_.resume_restored_blocks;
          metric_fault_resume_restored_->Increment();
        }
        dm->Put(ref->worker, bi, bj, it->second);
        lin.blocks.push_back({ref->worker, ref->key, ref->checksum});
        cache_blocks.push_back(
            {ref->worker, ref->key, ref->checksum, it->second});
      }
      dm->SetChecksums();
      lineage_.Record(std::move(lin));
      // Write-through cache hydration: post-resume in-process recovery hits
      // memory first, like it would in an uninterrupted run.
      checkpoints_.Put(node_id, std::move(cache_blocks));
    }
    stats_.resumed = true;
    stats_.resume_step = snap->resume_step;
    metric_fault_resume_seconds_->Add(timer.ElapsedSeconds());
    return Status::Ok();
  }

  // ---- step dispatch ------------------------------------------------------

  Status ExecuteStep(const PlanStep& step) {
    DMAC_RETURN_NOT_OK(CheckCancel());
    if (gov_.spill != nullptr) {
      DMAC_RETURN_NOT_OK(EnsureInputsResident(step));
    }
    switch (step.kind) {
      case StepKind::kLoad:
        return ExecLoad(step);
      case StepKind::kRandom:
        return ExecRandom(step);
      case StepKind::kPartition:
        return ExecPartition(step);
      case StepKind::kBroadcast:
        return ExecBroadcast(step);
      case StepKind::kTranspose:
        return ExecTranspose(step);
      case StepKind::kExtract:
        return ExecExtract(step);
      case StepKind::kCompute:
        return ExecCompute(step);
      case StepKind::kReduce:
        return ExecReduce(step);
      case StepKind::kScalarAssign: {
        DMAC_ASSIGN_OR_RETURN(double v, EvalScalar(step.scalar, scalars_));
        scalars_[step.scalar_out] = v;
        return Status::Ok();
      }
    }
    return Status::Internal("unknown step kind");
  }

  Status ExecLoad(const PlanStep& step) {
    auto it = bindings_.find(step.source);
    if (it == bindings_.end()) {
      return Status::NotFound("no binding for input matrix " + step.source);
    }
    const LocalMatrix& src = *it->second;
    if (src.shape() != step.decl_shape) {
      return Status::DimensionMismatch(
          "binding " + step.source + " is " + src.shape().ToString() +
          ", declared " + step.decl_shape.ToString());
    }
    auto dm = NewData(step.output, src.shape());
    const bool broadcast = dm->scheme() == Scheme::kBroadcast;
    TraceSpan span = TraceRecorder::Global().enabled()
                         ? TraceSpan(kTraceComm, "load " + step.source)
                         : TraceSpan();
    double bytes = 0;
    for (int64_t bi = 0; bi < dm->grid().block_rows(); ++bi) {
      for (int64_t bj = 0; bj < dm->grid().block_cols(); ++bj) {
        // Non-owning pointer into the binding: the caller keeps inputs
        // alive for the duration of Execute().
        DistMatrix::BlockPtr ptr(std::shared_ptr<void>(),
                                 &src.BlockAt(bi, bj));
        const double block_bytes =
            static_cast<double>(ptr->MemoryBytes());
        if (broadcast) {
          for (int w = 0; w < opts_.num_workers; ++w) dm->Put(w, bi, bj, ptr);
          bytes += block_bytes * opts_.num_workers;
        } else {
          dm->Put(dm->OwnerOf(bi, bj), bi, bj, ptr);
          bytes += block_bytes;
        }
      }
    }
    if (broadcast) {
      CountBroadcast(bytes);
    } else {
      CountShuffle(bytes);
    }
    if (span.active()) {
      span.set_args(TraceArg("bytes", bytes) + "," +
                    TraceArg("kind", broadcast ? "broadcast" : "shuffle"));
    }
    return Status::Ok();
  }

  Status ExecRandom(const PlanStep& step) {
    auto dm = NewData(step.output, step.decl_shape);
    const BlockGrid& grid = dm->grid();

    // Deterministic per-block seeds make every replica identical, so a
    // Broadcast-scheme random matrix costs no communication.
    const bool broadcast = dm->scheme() == Scheme::kBroadcast;
    for (int64_t bi = 0; bi < grid.block_rows(); ++bi) {
      for (int64_t bj = 0; bj < grid.block_cols(); ++bj) {
        const uint64_t seed =
            RandomBlockSeed(opts_.seed, step.source, bi, bj);
        const Shape s = grid.BlockShape(bi, bj);
        const int owner = broadcast ? 0 : dm->OwnerOf(bi, bj);
        Status st = TimedWorker(step, owner, [&] {
          auto ptr = std::make_shared<const Block>(
              RandomDenseBlock(s.rows, s.cols, seed));
          if (broadcast) {
            for (int w = 0; w < opts_.num_workers; ++w) {
              dm->Put(w, bi, bj, ptr);
            }
          } else {
            dm->Put(owner, bi, bj, ptr);
          }
          return Status::Ok();
        });
        DMAC_RETURN_NOT_OK(st);
      }
    }
    return Status::Ok();
  }

  Status ExecPartition(const PlanStep& step) {
    const DistMatrix& src = Data(step.inputs[0]);
    auto dst = NewData(step.output, src.grid().matrix);
    DMAC_CHECK(dst->scheme() != Scheme::kBroadcast);
    // A repartition onto the *same* scheme (SystemML-S's hash shuffle of an
    // already-aligned matrix) keeps block placement in our simulator, but on
    // a real cluster the hash shuffle still pushes an expected (N-1)/N of
    // the data across the network; charge that fraction.
    const bool same_scheme = src.scheme() == dst->scheme();
    const double hash_fraction =
        static_cast<double>(opts_.num_workers - 1) / opts_.num_workers;
    TraceSpan span(kTraceComm, "partition");
    double bytes = 0;
    for (int64_t bi = 0; bi < src.grid().block_rows(); ++bi) {
      for (int64_t bj = 0; bj < src.grid().block_cols(); ++bj) {
        const int to = dst->OwnerOf(bi, bj);
        // Under a Broadcast source every worker already holds the block.
        const int from = src.scheme() == Scheme::kBroadcast
                             ? to
                             : src.OwnerOf(bi, bj);
        DMAC_ASSIGN_OR_RETURN(auto ptr,
                              VerifiedGet(src, from, bi, bj, "partition"));
        if (same_scheme) {
          bytes += static_cast<double>(ptr->MemoryBytes()) * hash_fraction;
        } else if (Host(from) != Host(to)) {
          bytes += static_cast<double>(ptr->MemoryBytes());
        }
        if (UseNetwork() && from != to) {
          DistMatrix* d = dst.get();
          net_->Send(from, to, static_cast<double>(ptr->MemoryBytes()),
                     [d, to, bi, bj, ptr] { d->Put(to, bi, bj, ptr); });
        } else {
          dst->Put(to, bi, bj, std::move(ptr));
        }
      }
    }
    CountShuffle(bytes);
    if (span.active()) {
      span.set_args(TraceArg("bytes", bytes) + "," +
                    TraceArg("kind", "shuffle"));
    }
    if (UseNetwork()) DMAC_RETURN_NOT_OK(net_->Flush("partition"));
    return Status::Ok();
  }

  Status ExecBroadcast(const PlanStep& step) {
    const DistMatrix& src = Data(step.inputs[0]);
    auto dst = NewData(step.output, src.grid().matrix);
    DMAC_CHECK(dst->scheme() == Scheme::kBroadcast);
    TraceSpan span(kTraceComm, "broadcast");
    double bytes = 0;
    for (int64_t bi = 0; bi < src.grid().block_rows(); ++bi) {
      for (int64_t bj = 0; bj < src.grid().block_cols(); ++bj) {
        const int from = src.OwnerOf(bi, bj);
        DMAC_ASSIGN_OR_RETURN(auto ptr,
                              VerifiedGet(src, from, bi, bj, "broadcast"));
        for (int w = 0; w < opts_.num_workers; ++w) {
          if (w != from && Host(w) != Host(from)) {
            bytes += static_cast<double>(ptr->MemoryBytes());
          }
          if (UseNetwork() && w != from) {
            DistMatrix* d = dst.get();
            net_->Send(from, w, static_cast<double>(ptr->MemoryBytes()),
                       [d, w, bi, bj, ptr] { d->Put(w, bi, bj, ptr); });
          } else {
            dst->Put(w, bi, bj, ptr);
          }
        }
      }
    }
    CountBroadcast(bytes);
    if (span.active()) {
      span.set_args(TraceArg("bytes", bytes) + "," +
                    TraceArg("kind", "broadcast"));
    }
    if (UseNetwork()) DMAC_RETURN_NOT_OK(net_->Flush("broadcast"));
    return Status::Ok();
  }

  Status ExecTranspose(const PlanStep& step) {
    const DistMatrix& src = Data(step.inputs[0]);
    auto dst = NewData(step.output, src.grid().matrix.Transposed());
    const bool broadcast = src.scheme() == Scheme::kBroadcast;
    const int workers = broadcast ? 1 : opts_.num_workers;
    for (int w = 0; w < workers; ++w) {
      auto blocks = src.WorkerBlocks(w);
      StoreSink sink(dst.get(), w);
      Status st = TimedWorker(step, w, [&] {
        std::vector<std::function<Status()>> tasks;
        tasks.reserve(blocks.size());
        for (auto& [bi, bj, ptr] : blocks) {
          const int64_t tbi = bj;
          const int64_t tbj = bi;
          const Block* block = ptr.get();
          tasks.push_back([&sink, tbi, tbj, block] {
            sink(tbi, tbj, block->Transposed());
            return Status::Ok();
          });
        }
        return engine_.RunTasks(tasks, TaskKind::kTranspose);
      });
      DMAC_RETURN_NOT_OK(st);
    }
    if (broadcast) {
      // Replicas are identical: share worker 0's transposed blocks.
      for (int64_t bi = 0; bi < dst->grid().block_rows(); ++bi) {
        for (int64_t bj = 0; bj < dst->grid().block_cols(); ++bj) {
          auto ptr = dst->Get(0, bi, bj);
          if (ptr == nullptr) {
            return Status::Internal("transpose: missing block");
          }
          for (int w = 1; w < opts_.num_workers; ++w) {
            dst->Put(w, bi, bj, ptr);
          }
        }
      }
    }
    return Status::Ok();
  }

  Status ExecExtract(const PlanStep& step) {
    const DistMatrix& src = Data(step.inputs[0]);
    if (src.scheme() != Scheme::kBroadcast) {
      return Status::Internal("extract requires a Broadcast source");
    }
    auto dst = NewData(step.output, src.grid().matrix);
    // Each worker filters its owned range out of its local replica — a
    // pointer copy per block, no data movement.
    for (int64_t bi = 0; bi < dst->grid().block_rows(); ++bi) {
      for (int64_t bj = 0; bj < dst->grid().block_cols(); ++bj) {
        const int w = dst->OwnerOf(bi, bj);
        DMAC_ASSIGN_OR_RETURN(auto ptr,
                              VerifiedGet(src, w, bi, bj, "extract"));
        dst->Put(w, bi, bj, std::move(ptr));
      }
    }
    return Status::Ok();
  }

  // ---- compute steps ------------------------------------------------------

  Status ExecCompute(const PlanStep& step) {
    switch (step.op_kind) {
      case OpKind::kMultiply:
        return ExecMultiply(step);
      case OpKind::kAdd:
      case OpKind::kSubtract:
      case OpKind::kCellMultiply:
      case OpKind::kCellDivide:
        return ExecCellwise(step);
      case OpKind::kScalarMultiply:
      case OpKind::kScalarAdd:
        return ExecScalarOp(step);
      case OpKind::kRowSums:
      case OpKind::kColSums:
        return ExecAggregate(step);
      case OpKind::kCellUnary:
        return ExecCellUnary(step);
      default:
        return Status::Internal("unexpected compute op kind");
    }
  }

  Status ExecMultiply(const PlanStep& step) {
    const DistMatrix& a = Data(step.inputs[0]);
    const DistMatrix& b = Data(step.inputs[1]);
    // A transpose-fused operand is stored untransposed: its *effective*
    // shape is the stored shape flipped, its stored scheme is the opposite
    // of what the strategy requires of the effective operand, and logical
    // block (i, j) lives at stored (j, i). Block boundaries line up because
    // both grids cut every dimension with the same block side.
    const bool ta = step.trans_a;
    const bool tb = step.trans_b;
    const Shape eff_a =
        ta ? a.grid().matrix.Transposed() : a.grid().matrix;
    const Shape eff_b =
        tb ? b.grid().matrix.Transposed() : b.grid().matrix;
    if (eff_a.cols != eff_b.rows) {
      return Status::DimensionMismatch("distributed multiply " +
                                       eff_a.ToString() + " by " +
                                       eff_b.ToString());
    }
    const Shape out_shape{eff_a.rows, eff_b.cols};
    auto c = NewData(step.output, out_shape);
    const BlockGrid& out_grid = c->grid();
    const int64_t kb = ta ? a.grid().block_rows() : a.grid().block_cols();

    switch (step.mult_algo) {
      case MultAlgo::kRMM1: {
        // A broadcast, B column-partitioned: worker w computes the output
        // block-columns it owns.
        DMAC_CHECK(a.scheme() == Scheme::kBroadcast);
        DMAC_CHECK(b.scheme() == (tb ? Scheme::kRow : Scheme::kCol));
        for (int w = 0; w < opts_.num_workers; ++w) {
          std::vector<MultiplyTask> tasks;
          int64_t lo, hi;
          OwnedRange(w, out_grid.block_cols(), opts_.num_workers, &lo, &hi);
          for (int64_t bj = lo; bj < hi; ++bj) {
            for (int64_t bi = 0; bi < out_grid.block_rows(); ++bi) {
              tasks.push_back({bi, bj, 0, kb});
            }
          }
          DMAC_RETURN_NOT_OK(RunMultiplyOnWorker(step, w, out_grid, tasks,
                                                 a, b, c.get()));
        }
        return Status::Ok();
      }
      case MultAlgo::kRMM2: {
        DMAC_CHECK(a.scheme() == (ta ? Scheme::kCol : Scheme::kRow));
        DMAC_CHECK(b.scheme() == Scheme::kBroadcast);
        for (int w = 0; w < opts_.num_workers; ++w) {
          std::vector<MultiplyTask> tasks;
          int64_t lo, hi;
          OwnedRange(w, out_grid.block_rows(), opts_.num_workers, &lo, &hi);
          for (int64_t bi = lo; bi < hi; ++bi) {
            for (int64_t bj = 0; bj < out_grid.block_cols(); ++bj) {
              tasks.push_back({bi, bj, 0, kb});
            }
          }
          DMAC_RETURN_NOT_OK(RunMultiplyOnWorker(step, w, out_grid, tasks,
                                                 a, b, c.get()));
        }
        return Status::Ok();
      }
      case MultAlgo::kCPMM:
        return ExecCpmm(step, a, b, c.get());
      case MultAlgo::kNone:
        break;
    }
    return Status::Internal("multiply step without an algorithm");
  }

  Status RunMultiplyOnWorker(const PlanStep& step, int worker,
                             const BlockGrid& out_grid,
                             const std::vector<MultiplyTask>& tasks,
                             const DistMatrix& a, const DistMatrix& b,
                             DistMatrix* c) {
    StoreSink sink(c, worker);
    const bool ta = step.trans_a;
    const bool tb = step.trans_b;
    const MultiplyOptions mopts{ta, tb, step.cache_csr_b};
    return TimedWorker(step, worker, [&] {
      return engine_.MultiplyBlocks(
          out_grid, tasks,
          [&a, worker, ta](int64_t bi, int64_t k) {
            return ta ? a.Get(worker, k, bi) : a.Get(worker, bi, k);
          },
          [&b, worker, tb](int64_t k, int64_t bj) {
            return tb ? b.Get(worker, bj, k) : b.Get(worker, k, bj);
          },
          [&sink](int64_t bi, int64_t bj, Block blk) {
            sink(bi, bj, std::move(blk));
          },
          mopts);
    });
  }

  Status ExecCpmm(const PlanStep& step, const DistMatrix& a,
                  const DistMatrix& b, DistMatrix* c) {
    const bool ta = step.trans_a;
    const bool tb = step.trans_b;
    DMAC_CHECK(a.scheme() == (ta ? Scheme::kRow : Scheme::kCol));
    DMAC_CHECK(b.scheme() == (tb ? Scheme::kCol : Scheme::kRow));
    const BlockGrid& out_grid = c->grid();
    const int64_t kb = ta ? a.grid().block_rows() : a.grid().block_cols();

    // Phase 1: every worker forms its partial C over its own k-range.
    // Phase 2: partial blocks are shuffled to their final owner and summed
    // (the cross-product aggregation whose cost is N·|C|, §4.1).
    struct Partial {
      int64_t bi;
      int64_t bj;
      DistMatrix::BlockPtr block;
      int from;
    };
    std::vector<std::vector<Partial>> incoming(
        static_cast<size_t>(opts_.num_workers));
    double bytes = 0;

    for (int w = 0; w < opts_.num_workers; ++w) {
      int64_t klo, khi;
      OwnedRange(w, kb, opts_.num_workers, &klo, &khi);
      if (klo >= khi) continue;
      std::vector<MultiplyTask> tasks;
      for (int64_t bi = 0; bi < out_grid.block_rows(); ++bi) {
        for (int64_t bj = 0; bj < out_grid.block_cols(); ++bj) {
          tasks.push_back({bi, bj, klo, khi});
        }
      }
      Mutex mu;
      std::vector<Partial> local;  // guarded by mu while workers run
      Status st = TimedWorker(step, w, [&] {
        return engine_.MultiplyBlocks(
            out_grid, tasks,
            [&a, w, ta](int64_t bi, int64_t k) {
              return ta ? a.Get(w, k, bi) : a.Get(w, bi, k);
            },
            [&b, w, tb](int64_t k, int64_t bj) {
              return tb ? b.Get(w, bj, k) : b.Get(w, k, bj);
            },
            [&](int64_t bi, int64_t bj, Block blk) {
              if (blk.nnz() == 0) return;  // nothing to ship
              auto ptr = std::make_shared<const Block>(std::move(blk));
              MutexLock lock(&mu);
              local.push_back({bi, bj, std::move(ptr), w});
            },
            MultiplyOptions{ta, tb, step.cache_csr_b});
      },
      /*idempotent=*/false);  // a second run would duplicate `local`
      DMAC_RETURN_NOT_OK(st);
      // Pool threads complete tasks in nondeterministic order; sort by
      // output block so the send order — and with it the network layer's
      // fault-draw schedule — is a pure function of the plan and seed.
      std::sort(local.begin(), local.end(),
                [&out_grid](const Partial& x, const Partial& y) {
                  return x.bi * out_grid.block_cols() + x.bj <
                         y.bi * out_grid.block_cols() + y.bj;
                });
      for (Partial& p : local) {
        const int dst = c->OwnerOf(p.bi, p.bj);
        if (Host(dst) != Host(p.from)) {
          bytes += static_cast<double>(p.block->MemoryBytes());
        }
        if (UseNetwork() && dst != p.from) {
          const double block_bytes =
              static_cast<double>(p.block->MemoryBytes());
          auto carried = std::make_shared<Partial>(std::move(p));
          net_->Send(carried->from, dst, block_bytes,
                     [&incoming, dst, carried] {
                       incoming[static_cast<size_t>(dst)].push_back(
                           std::move(*carried));
                     });
        } else {
          incoming[static_cast<size_t>(dst)].push_back(std::move(p));
        }
      }
    }
    CountShuffle(bytes);
    if (TraceRecorder::Global().enabled()) {
      TraceSpan span(kTraceComm, "cpmm-shuffle");
      span.set_args(TraceArg("bytes", bytes) + "," +
                    TraceArg("kind", "shuffle"));
    }
    // Comm-round boundary: partials are in flight. A death forced here
    // (death_in_flight) bumps the epoch while the victim's sends sit
    // queued, so the flush below fences them — the stale-epoch path the
    // degraded-mode tests audit.
    if (membership_ != nullptr && opts_.fault.death_in_flight &&
        opts_.fault.death_step == step.id && !forced_death_applied_ &&
        !recovering_) {
      forced_death_applied_ = true;
      ApplyDeath(opts_.fault.death_worker, step.stage);
    }
    // Comm-round boundary: the cheapest place to notice a mid-CPMM cancel.
    DMAC_RETURN_NOT_OK(CheckCancel());
    if (UseNetwork()) DMAC_RETURN_NOT_OK(net_->Flush("cpmm-shuffle"));

    // Phase 2: aggregation at the owners (next stage's beginning; we account
    // its compute into the step's stage for simplicity).
    for (int w = 0; w < opts_.num_workers; ++w) {
      auto& parts = incoming[static_cast<size_t>(w)];
      if (parts.empty()) continue;
      std::unordered_map<int64_t, std::vector<Partial>> grouped;
      for (Partial& p : parts) {
        grouped[p.bi * out_grid.block_cols() + p.bj].push_back(std::move(p));
      }
      // Sum each output block's partials in sender order, regardless of
      // arrival order: locally-kept and network-delivered partials may
      // interleave differently, and floating-point addition is not
      // associative — the summation order must be canonical for the run to
      // stay bit-identical under reordering faults.
      for (auto& [key, blocks] : grouped) {
        std::sort(blocks.begin(), blocks.end(),
                  [](const Partial& x, const Partial& y) {
                    return x.from < y.from;
                  });
      }
      StoreSink sink(c, w);
      Status st = TimedWorker(step, w, [&] {
        std::vector<std::function<Status()>> tasks;
        tasks.reserve(grouped.size());
        for (auto& [key, blocks] : grouped) {
          const int64_t bi = key / out_grid.block_cols();
          const int64_t bj = key % out_grid.block_cols();
          auto* blocks_ptr = &blocks;
          tasks.push_back([this, &sink, bi, bj, blocks_ptr] {
            std::vector<const Block*> parts;
            parts.reserve(blocks_ptr->size());
            for (const auto& p : *blocks_ptr) parts.push_back(p.block.get());
            auto result = SumBlocks(parts, opts_.density_threshold);
            if (!result.ok()) return result.status();
            sink(bi, bj, std::move(*result));
            return Status::Ok();
          });
        }
        return engine_.RunTasks(tasks, TaskKind::kAggregate);
      });
      DMAC_RETURN_NOT_OK(st);
    }

    // Output blocks with no partials anywhere are zero blocks.
    for (int64_t bi = 0; bi < out_grid.block_rows(); ++bi) {
      for (int64_t bj = 0; bj < out_grid.block_cols(); ++bj) {
        const int w = c->OwnerOf(bi, bj);
        if (c->Get(w, bi, bj) == nullptr) {
          const Shape shape = out_grid.BlockShape(bi, bj);
          c->Put(w, bi, bj,
                 std::make_shared<const Block>(
                     CscBlock(shape.rows, shape.cols)));
        }
      }
    }
    return Status::Ok();
  }

  Status ExecCellwise(const PlanStep& step) {
    const DistMatrix& a = Data(step.inputs[0]);
    const DistMatrix& b = Data(step.inputs[1]);
    if (a.grid().matrix != b.grid().matrix) {
      return Status::DimensionMismatch("distributed cell-wise op " +
                                       a.grid().matrix.ToString() + " vs " +
                                       b.grid().matrix.ToString());
    }
    DMAC_CHECK(a.scheme() == b.scheme());
    auto c = NewData(step.output, a.grid().matrix);
    const OpKind kind = step.op_kind;

    const bool broadcast = a.scheme() == Scheme::kBroadcast;
    const int workers = broadcast ? 1 : opts_.num_workers;
    for (int w = 0; w < workers; ++w) {
      auto blocks = a.WorkerBlocks(w);
      StoreSink sink(c.get(), w);
      Status st = TimedWorker(step, w, [&] {
        std::vector<std::function<Status()>> tasks;
        tasks.reserve(blocks.size());
        for (auto& [bi, bj, aptr] : blocks) {
          auto bptr = b.Get(w, bi, bj);
          if (bptr == nullptr) {
            return Status::Internal("cell-wise op: operand block missing");
          }
          tasks.push_back([&sink, kind, bi = bi, bj = bj, ablk = aptr,
                           bblk = std::move(bptr)] {
            Result<Block> res = [&]() -> Result<Block> {
              switch (kind) {
                case OpKind::kAdd:
                  return Add(*ablk, *bblk);
                case OpKind::kSubtract:
                  return Subtract(*ablk, *bblk);
                case OpKind::kCellMultiply:
                  return CellMultiply(*ablk, *bblk);
                case OpKind::kCellDivide:
                  return CellDivide(*ablk, *bblk);
                default:
                  return Status::Internal("bad cell-wise kind");
              }
            }();
            if (!res.ok()) return res.status();
            sink(bi, bj, std::move(*res));
            return Status::Ok();
          });
        }
        return engine_.RunTasks(tasks, TaskKind::kElementwise);
      });
      DMAC_RETURN_NOT_OK(st);
    }
    if (broadcast) DMAC_RETURN_NOT_OK(ReplicateFromWorkerZero(c.get()));
    return Status::Ok();
  }

  Status ExecScalarOp(const PlanStep& step) {
    const DistMatrix& a = Data(step.inputs[0]);
    DMAC_ASSIGN_OR_RETURN(double scalar, EvalScalar(step.scalar, scalars_));
    auto c = NewData(step.output, a.grid().matrix);
    const bool add = step.op_kind == OpKind::kScalarAdd;

    const bool broadcast = a.scheme() == Scheme::kBroadcast;
    const int workers = broadcast ? 1 : opts_.num_workers;
    for (int w = 0; w < workers; ++w) {
      auto blocks = a.WorkerBlocks(w);
      StoreSink sink(c.get(), w);
      Status st = TimedWorker(step, w, [&] {
        std::vector<std::function<Status()>> tasks;
        tasks.reserve(blocks.size());
        for (auto& [bi, bj, ptr] : blocks) {
          tasks.push_back([&sink, add, scalar, bi = bi, bj = bj, blk = ptr] {
            sink(bi, bj,
                 add ? ScalarAdd(*blk, static_cast<Scalar>(scalar))
                     : ScalarMultiply(*blk, static_cast<Scalar>(scalar)));
            return Status::Ok();
          });
        }
        return engine_.RunTasks(tasks, TaskKind::kElementwise);
      });
      DMAC_RETURN_NOT_OK(st);
    }
    if (broadcast) DMAC_RETURN_NOT_OK(ReplicateFromWorkerZero(c.get()));
    return Status::Ok();
  }

  Status ExecCellUnary(const PlanStep& step) {
    const DistMatrix& a = Data(step.inputs[0]);
    auto c = NewData(step.output, a.grid().matrix);
    const UnaryFnKind fn = step.unary_fn;

    const bool broadcast = a.scheme() == Scheme::kBroadcast;
    const int workers = broadcast ? 1 : opts_.num_workers;
    for (int w = 0; w < workers; ++w) {
      auto blocks = a.WorkerBlocks(w);
      StoreSink sink(c.get(), w);
      Status st = TimedWorker(step, w, [&] {
        std::vector<std::function<Status()>> tasks;
        tasks.reserve(blocks.size());
        for (auto& [bi, bj, ptr] : blocks) {
          tasks.push_back([&sink, fn, bi = bi, bj = bj, blk = ptr] {
            sink(bi, bj, CellUnary(*blk, fn));
            return Status::Ok();
          });
        }
        return engine_.RunTasks(tasks, TaskKind::kElementwise);
      });
      DMAC_RETURN_NOT_OK(st);
    }
    if (broadcast) DMAC_RETURN_NOT_OK(ReplicateFromWorkerZero(c.get()));
    return Status::Ok();
  }

  /// Row/column sums. Three layouts (mirroring the strategy set): summing
  /// along the partitioned axis is per-worker local; a Broadcast input is
  /// reduced once and re-shared; summing across the partitioned axis leaves
  /// per-worker partial vectors that are shuffled to their owners and added
  /// (the aggregation whose plan cost is N·|out|).
  Status ExecAggregate(const PlanStep& step) {
    const DistMatrix& a = Data(step.inputs[0]);
    const bool rows = step.op_kind == OpKind::kRowSums;
    const Shape out_shape =
        rows ? Shape{a.grid().matrix.rows, 1} : Shape{1, a.grid().matrix.cols};
    auto c = NewData(step.output, out_shape);
    const BlockGrid& out_grid = c->grid();

    // Sums one worker's blocks into per-output-block dense accumulators.
    auto local_partials =
        [&](int w) -> std::unordered_map<int64_t, DenseBlock> {
      std::unordered_map<int64_t, DenseBlock> acc;
      for (auto& [bi, bj, ptr] : a.WorkerBlocks(w)) {
        const int64_t out_idx = rows ? bi : bj;
        auto it = acc.find(out_idx);
        if (it == acc.end()) {
          const Shape s = rows ? out_grid.BlockShape(out_idx, 0)
                               : out_grid.BlockShape(0, out_idx);
          it = acc.emplace(out_idx, DenseBlock(s.rows, s.cols)).first;
        }
        const DenseBlock partial = rows ? RowSums(*ptr) : ColSums(*ptr);
        Status st = AddAccumulate(Block(partial), &it->second);
        DMAC_CHECK(st.ok()) << st;
      }
      return acc;
    };

    const Scheme aligned = rows ? Scheme::kRow : Scheme::kCol;
    if (a.scheme() == aligned) {
      // Local: the worker owning a row (column) range owns every block that
      // contributes to its slice of the result.
      for (int w = 0; w < opts_.num_workers; ++w) {
        Status st = TimedWorker(step, w, [&] {
          for (auto& [idx, acc] : local_partials(w)) {
            auto block = std::make_shared<const Block>(
                CompactFromDense(acc, opts_.density_threshold));
            if (rows) {
              c->Put(w, idx, 0, std::move(block));
            } else {
              c->Put(w, 0, idx, std::move(block));
            }
          }
          return Status::Ok();
        });
        DMAC_RETURN_NOT_OK(st);
      }
      return Status::Ok();
    }

    if (a.scheme() == Scheme::kBroadcast) {
      Status st = TimedWorker(step, 0, [&] {
        for (auto& [idx, acc] : local_partials(0)) {
          auto block = std::make_shared<const Block>(
              CompactFromDense(acc, opts_.density_threshold));
          if (rows) {
            c->Put(0, idx, 0, std::move(block));
          } else {
            c->Put(0, 0, idx, std::move(block));
          }
        }
        return Status::Ok();
      });
      DMAC_RETURN_NOT_OK(st);
      return ReplicateFromWorkerZero(c.get());
    }

    // Crossed: every worker holds a partial over the full output; shuffle
    // partials to their owners and sum.
    struct Partial {
      int64_t idx;
      DistMatrix::BlockPtr block;
      int from;
    };
    std::vector<std::vector<Partial>> incoming(
        static_cast<size_t>(opts_.num_workers));
    double bytes = 0;
    for (int w = 0; w < opts_.num_workers; ++w) {
      std::unordered_map<int64_t, DenseBlock> partials;
      Status st = TimedWorker(step, w, [&] {
        partials = local_partials(w);
        return Status::Ok();
      });
      DMAC_RETURN_NOT_OK(st);
      // Send in ascending output-index order: the hash map's iteration
      // order is unspecified, and the network layer's fault-draw schedule
      // must be a pure function of the plan and seed.
      std::vector<int64_t> idxs;
      idxs.reserve(partials.size());
      for (const auto& [idx, acc] : partials) idxs.push_back(idx);
      std::sort(idxs.begin(), idxs.end());
      for (int64_t idx : idxs) {
        auto block = std::make_shared<const Block>(CompactFromDense(
            partials.at(idx), opts_.density_threshold));
        const int dst = rows ? c->OwnerOf(idx, 0) : c->OwnerOf(0, idx);
        if (Host(dst) != Host(w)) {
          bytes += static_cast<double>(block->MemoryBytes());
        }
        if (UseNetwork() && dst != w) {
          const double block_bytes =
              static_cast<double>(block->MemoryBytes());
          net_->Send(w, dst, block_bytes,
                     [&incoming, dst, idx, block, w] {
                       incoming[static_cast<size_t>(dst)].push_back(
                           {idx, block, w});
                     });
        } else {
          incoming[static_cast<size_t>(dst)].push_back(
              {idx, std::move(block), w});
        }
      }
    }
    CountShuffle(bytes);
    if (TraceRecorder::Global().enabled()) {
      TraceSpan span(kTraceComm, "aggregate-shuffle");
      span.set_args(TraceArg("bytes", bytes) + "," +
                    TraceArg("kind", "shuffle"));
    }
    if (UseNetwork()) DMAC_RETURN_NOT_OK(net_->Flush("aggregate-shuffle"));

    for (int w = 0; w < opts_.num_workers; ++w) {
      std::unordered_map<int64_t, std::vector<Partial>> grouped;
      for (Partial& p : incoming[static_cast<size_t>(w)]) {
        grouped[p.idx].push_back(std::move(p));
      }
      // Canonical sender-order summation, as in ExecCpmm phase 2.
      for (auto& [idx, ps] : grouped) {
        std::sort(ps.begin(), ps.end(),
                  [](const Partial& x, const Partial& y) {
                    return x.from < y.from;
                  });
      }
      Status st = TimedWorker(step, w, [&] {
        for (auto& [idx, ps] : grouped) {
          std::vector<const Block*> parts;
          parts.reserve(ps.size());
          for (const auto& p : ps) parts.push_back(p.block.get());
          auto sum = SumBlocks(parts, opts_.density_threshold);
          if (!sum.ok()) return sum.status();
          auto block = std::make_shared<const Block>(std::move(*sum));
          if (rows) {
            c->Put(w, idx, 0, std::move(block));
          } else {
            c->Put(w, 0, idx, std::move(block));
          }
        }
        return Status::Ok();
      });
      DMAC_RETURN_NOT_OK(st);
    }
    // Contributions exist for every output block (inputs cover the grid),
    // but guard against fully-empty worker shares.
    for (int64_t bi = 0; bi < out_grid.block_rows(); ++bi) {
      for (int64_t bj = 0; bj < out_grid.block_cols(); ++bj) {
        const int w = c->OwnerOf(bi, bj);
        if (c->Get(w, bi, bj) == nullptr) {
          const Shape s = out_grid.BlockShape(bi, bj);
          c->Put(w, bi, bj,
                 std::make_shared<const Block>(CscBlock(s.rows, s.cols)));
        }
      }
    }
    return Status::Ok();
  }

  /// Shares worker 0's blocks with every other replica of a Broadcast
  /// matrix (all replicas are identical by construction).
  Status ReplicateFromWorkerZero(DistMatrix* dm) {
    for (int64_t bi = 0; bi < dm->grid().block_rows(); ++bi) {
      for (int64_t bj = 0; bj < dm->grid().block_cols(); ++bj) {
        auto ptr = dm->Get(0, bi, bj);
        if (ptr == nullptr) {
          return Status::Internal("broadcast result missing block");
        }
        for (int w = 1; w < opts_.num_workers; ++w) dm->Put(w, bi, bj, ptr);
      }
    }
    return Status::Ok();
  }

  Status ExecReduce(const PlanStep& step) {
    const DistMatrix& a = Data(step.inputs[0]);
    const bool broadcast = a.scheme() == Scheme::kBroadcast;
    const int workers = broadcast ? 1 : opts_.num_workers;
    double total = 0;
    for (int w = 0; w < workers; ++w) {
      double partial = 0;
      Status st = TimedWorker(step, w, [&] {
        for (auto& [bi, bj, ptr] : a.WorkerBlocks(w)) {
          partial += step.reduce == ReduceKind::kNorm2 ? SumSquares(*ptr)
                                                       : Sum(*ptr);
        }
        return Status::Ok();
      },
      /*idempotent=*/false);  // a second run would double `partial`
      DMAC_RETURN_NOT_OK(st);
      total += partial;
    }
    if (step.reduce == ReduceKind::kNorm2) total = std::sqrt(total);
    scalars_[step.scalar_out] = total;
    // Driver aggregation: N partial doubles cross the network (bytes only,
    // no extra round — the reduce piggybacks on the stage boundary).
    if (recovering_) {
      stats_.recovery_bytes += 8.0 * opts_.num_workers;
    } else {
      stats_.shuffle_bytes += 8.0 * opts_.num_workers;
      metric_shuffle_bytes_->Add(8.0 * opts_.num_workers);
    }
    if (TraceRecorder::Global().enabled()) {
      TraceSpan span(kTraceComm, "reduce");
      span.set_args(TraceArg("bytes", 8.0 * opts_.num_workers) + "," +
                    TraceArg("kind", "shuffle"));
    }
    return Status::Ok();
  }

  // ---- gather -------------------------------------------------------------

  Result<LocalMatrix> Gather(int node_id) {
    DistMatrix& dm = Data(node_id);
    if (gov_.spill != nullptr && dm.SpilledEntries() > 0) {
      TraceSpan span(kTraceSpill, "restore node " + std::to_string(node_id),
                     -1, TraceArg("node", int64_t{node_id}));
      DMAC_RETURN_NOT_OK(dm.EnsureResident().status());
    }
    const BlockGrid& grid = dm.grid();
    std::vector<Block> blocks;
    blocks.reserve(static_cast<size_t>(grid.num_blocks()));
    for (int64_t bi = 0; bi < grid.block_rows(); ++bi) {
      for (int64_t bj = 0; bj < grid.block_cols(); ++bj) {
        auto ptr = dm.GetOwned(bi, bj);
        if (ptr == nullptr) {
          return Status::Internal("gather: missing block (" +
                                  std::to_string(bi) + "," +
                                  std::to_string(bj) + ")");
        }
        blocks.push_back(*ptr);
      }
    }
    return LocalMatrix::FromBlocks(grid.matrix, grid.block_size,
                                   std::move(blocks));
  }

  ExecutorOptions opts_;
  const Plan& plan_;
  const Bindings& bindings_;
  ThreadPool pool_;
  BufferPool buffers_;
  LocalEngine engine_;
  int64_t block_size_ = 0;
  std::vector<std::shared_ptr<DistMatrix>> node_data_;
  std::unordered_map<std::string, double> scalars_;
  ExecStats stats_;

  // Governance (docs/governance.md). The token is a value sharing state
  // with the caller's copy; budget and spill store are shared with every
  // node's DistMatrix. `node_last_use_` drives LRU spill ordering.
  GovernorContext gov_;
  std::unique_ptr<FormatCache> format_cache_;  // not movable: holds a Mutex
  std::vector<int> node_last_use_;
  int step_clock_ = 0;
  bool cancel_span_emitted_ = false;

  // Fault tolerance (docs/fault_tolerance.md). `ft_` is the master switch
  // the hot paths branch on; `injector_` is non-null only when injection is
  // configured; `recovering_` marks work that must be attributed to
  // recovery (and must not be re-injected).
  bool ft_ = false;
  bool recovering_ = false;
  bool plan_has_hints_ = false;
  int64_t checkpoint_counter_ = 0;
  std::unique_ptr<FaultInjector> injector_;
  LineageTracker lineage_;
  CheckpointStore checkpoints_;

  // Durable checkpoints & crash restart (docs/fault_tolerance.md,
  // "Durability & restart"). Both pointers are null without a
  // --checkpoint-dir; `effective_checkpoint_every_` is checkpoint_every
  // defaulted to 1 when only the directory was given. Steps with
  // id <= resume_skip_step_ are covered by the restored snapshot; the ids
  // in `reload_step_ids_` are the load steps re-executed anyway.
  std::shared_ptr<StorageIO> storage_io_;
  std::unique_ptr<DurableCheckpointStore> durable_store_;
  int effective_checkpoint_every_ = 0;
  int resume_skip_step_ = -1;
  std::set<int> reload_step_ids_;

  // Membership, degraded mode, and the fault-injecting network layer
  // (docs/fault_tolerance.md). Both pointers are null unless the spec can
  // kill workers or perturb messages, so clean runs pay one branch per
  // transfer. `retry_policy_` also drives the step retry loop (it encodes
  // the same exponential backoff the executor always used).
  std::unique_ptr<ClusterMembership> membership_;
  std::unique_ptr<SimNetwork> net_;
  RetryPolicy retry_policy_;
  Status quorum_status_ = Status::Ok();
  std::vector<int> host_map_;  // cached HostMap; applied to new matrices
  bool forced_death_applied_ = false;
  int min_workers_ = 1;

  // Cached metric instruments (stable pointers; no-ops while the registry
  // is disabled).
  Counter* metric_shuffle_bytes_ =
      MetricRegistry::Global().counter(kMetricShuffleBytes);
  Counter* metric_broadcast_bytes_ =
      MetricRegistry::Global().counter(kMetricBroadcastBytes);
  Counter* metric_shuffle_rounds_ =
      MetricRegistry::Global().counter(kMetricShuffleRounds);
  Counter* metric_broadcast_rounds_ =
      MetricRegistry::Global().counter(kMetricBroadcastRounds);
  Counter* metric_steps_ = MetricRegistry::Global().counter(kMetricStepsExecuted);
  Gauge* metric_stages_ = MetricRegistry::Global().gauge(kMetricStages);
  Gauge* metric_peak_memory_ =
      MetricRegistry::Global().gauge(kMetricPeakMemoryBytes);
  Gauge* metric_estimate_drift_ =
      MetricRegistry::Global().gauge(kMetricPlanEstimateDrift);
  Counter* metric_estimate_drift_events_ =
      MetricRegistry::Global().counter(kMetricPlanEstimateDriftEvents);
  Counter* metric_fault_injected_ =
      MetricRegistry::Global().counter(kMetricFaultInjected);
  Counter* metric_fault_retries_ =
      MetricRegistry::Global().counter(kMetricFaultRetries);
  Counter* metric_fault_recomputed_ =
      MetricRegistry::Global().counter(kMetricFaultRecomputedBlocks);
  Counter* metric_fault_restored_ =
      MetricRegistry::Global().counter(kMetricFaultRestoredBlocks);
  Counter* metric_fault_speculated_ =
      MetricRegistry::Global().counter(kMetricFaultSpeculatedTasks);
  Counter* metric_fault_checkpoint_bytes_ =
      MetricRegistry::Global().counter(kMetricFaultCheckpointBytes);
  Counter* metric_fault_recovery_seconds_ =
      MetricRegistry::Global().counter(kMetricFaultRecoverySeconds);
  Counter* metric_fault_durable_bytes_ =
      MetricRegistry::Global().counter(kMetricFaultCheckpointDurableBytes);
  Counter* metric_fault_epochs_ =
      MetricRegistry::Global().counter(kMetricFaultCheckpointEpochs);
  Counter* metric_fault_checkpoint_failures_ =
      MetricRegistry::Global().counter(kMetricFaultCheckpointFailures);
  Counter* metric_fault_resume_restored_ =
      MetricRegistry::Global().counter(kMetricFaultResumeRestoredBlocks);
  Counter* metric_fault_resume_seconds_ =
      MetricRegistry::Global().counter(kMetricFaultResumeSeconds);
  Counter* metric_fault_disk_faults_ =
      MetricRegistry::Global().counter(kMetricFaultDiskFaults);
  Counter* metric_net_messages_ =
      MetricRegistry::Global().counter(kMetricNetMessages);
  Counter* metric_net_retransmits_ =
      MetricRegistry::Global().counter(kMetricNetRetransmits);
  Counter* metric_net_retrans_bytes_ =
      MetricRegistry::Global().counter(kMetricNetRetransBytes);
  Counter* metric_net_duplicates_ =
      MetricRegistry::Global().counter(kMetricNetDuplicates);
  Counter* metric_net_reordered_ =
      MetricRegistry::Global().counter(kMetricNetReordered);
  Counter* metric_net_delay_seconds_ =
      MetricRegistry::Global().counter(kMetricNetDelaySeconds);
  Counter* metric_net_partitions_ =
      MetricRegistry::Global().counter(kMetricNetPartitions);
  Counter* metric_net_stale_fenced_ =
      MetricRegistry::Global().counter(kMetricNetStaleFenced);
  Counter* metric_net_stale_applied_ =
      MetricRegistry::Global().counter(kMetricNetStaleApplied);
  Gauge* metric_membership_epoch_ =
      MetricRegistry::Global().gauge(kMetricMembershipEpoch);
  Gauge* metric_membership_dead_ =
      MetricRegistry::Global().gauge(kMetricMembershipWorkersDead);
  Counter* metric_membership_detection_ =
      MetricRegistry::Global().counter(kMetricMembershipDetectionSeconds);
};

Executor::Executor(ExecutorOptions options) : options_(options) {}

Result<ExecutionResult> Executor::Execute(const Plan& plan,
                                          const Bindings& bindings) {
  Result<ExecutionResult> result = [&] {
    Impl impl(options_, plan, bindings);
    return impl.Run();
  }();  // Impl destroyed here: buffers, stores, and spill charges released
  if (options_.governor.budget != nullptr) {
    MetricRegistry::Global()
        .gauge(kMetricGovernorBudgetPeakBytes)
        ->Set(static_cast<double>(options_.governor.budget->peak_bytes()));
  }
  return result;
}

}  // namespace dmac
