#include "runtime/executor.h"

#include <cmath>
#include <limits>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "common/thread_pool.h"
#include "matrix/mem_tracker.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/buffer_pool.h"

namespace dmac {

namespace {

/// Evaluates a resolved scalar expression against the scalar environment.
Result<double> EvalScalar(const ScalarExprPtr& e,
                          const std::unordered_map<std::string, double>& env) {
  switch (e->kind) {
    case ScalarExpr::Kind::kLiteral:
      return e->literal;
    case ScalarExpr::Kind::kVarRef: {
      auto it = env.find(e->name);
      if (it == env.end()) {
        return Status::NotFound("scalar " + e->name + " not yet computed");
      }
      return it->second;
    }
    case ScalarExpr::Kind::kBinary: {
      DMAC_ASSIGN_OR_RETURN(double l, EvalScalar(e->lhs, env));
      DMAC_ASSIGN_OR_RETURN(double r, EvalScalar(e->rhs, env));
      switch (e->op) {
        case '+':
          return l + r;
        case '-':
          return l - r;
        case '*':
          return l * r;
        case '/':
          return l / r;
      }
      return Status::Invalid(std::string("unknown scalar operator ") + e->op);
    }
    case ScalarExpr::Kind::kSqrt: {
      DMAC_ASSIGN_OR_RETURN(double l, EvalScalar(e->lhs, env));
      return std::sqrt(l);
    }
    case ScalarExpr::Kind::kReduce:
      return Status::Internal(
          "unresolved reduce in scalar expression (decompose bug)");
  }
  return Status::Internal("unreachable ScalarExpr kind");
}

/// Thread-safe sink writing result blocks into one worker's store.
class StoreSink {
 public:
  StoreSink(DistMatrix* target, int worker) : target_(target), worker_(worker) {}

  void operator()(int64_t bi, int64_t bj, Block block) {
    auto ptr = std::make_shared<const Block>(std::move(block));
    std::lock_guard<std::mutex> lock(mu_);
    target_->Put(worker_, bi, bj, std::move(ptr));
  }

 private:
  std::mutex mu_;
  DistMatrix* target_;
  int worker_;
};

/// Trace-span name of a step: "compute[multiply:RMM1]", "broadcast", ...
std::string StepSpanName(const PlanStep& step) {
  std::string name = StepKindName(step.kind);
  if (step.kind == StepKind::kCompute) {
    name += "[";
    name += OpKindName(step.op_kind);
    if (step.mult_algo != MultAlgo::kNone) {
      name += ":";
      name += MultAlgoName(step.mult_algo);
    }
    name += "]";
  }
  if (!step.source.empty()) name += " " + step.source;
  return name;
}

}  // namespace

class Executor::Impl {
 public:
  Impl(const ExecutorOptions& opts, const Plan& plan, const Bindings& bindings)
      : opts_(opts),
        plan_(plan),
        bindings_(bindings),
        pool_(static_cast<size_t>(opts.threads_per_worker)),
        buffers_(static_cast<size_t>(opts.threads_per_worker) * 2),
        engine_(&pool_, &buffers_, opts.local_mode, opts.density_threshold,
                opts.task_scheduling),
        node_data_(plan.nodes.size()) {}

  Result<ExecutionResult> Run() {
    DMAC_RETURN_NOT_OK(PickBlockSize());
    MemTracker::Global().ResetPeak();
    const int64_t mem_before_peak = MemTracker::Global().peak_bytes();

    // Steps run in dependency order, so stage numbers may interleave; each
    // contiguous run of same-stage steps becomes one stage span (the same
    // grouping Plan::ToString uses for its "=== Stage" headers).
    int current_stage = std::numeric_limits<int>::min();
    std::optional<TraceSpan> stage_span;
    for (const PlanStep& step : plan_.steps) {
      const bool tracing = TraceRecorder::Global().enabled();
      if (step.stage != current_stage) {
        stage_span.reset();
        current_stage = step.stage;
        if (tracing) {
          stage_span.emplace(kTraceStage,
                             "stage " + std::to_string(current_stage), -1,
                             TraceArg("stage", int64_t{current_stage}));
        }
      }
      TraceSpan step_span =
          tracing ? TraceSpan(kTraceStep, StepSpanName(step), -1,
                              TraceArg("stage", int64_t{step.stage}) + "," +
                                  TraceArg("step", int64_t{step.id}))
                  : TraceSpan();
      DMAC_RETURN_NOT_OK(ExecuteStep(step));
      metric_steps_->Increment();
    }
    stage_span.reset();
    metric_stages_->Set(plan_.num_stages);

    ExecutionResult result;
    for (const PlanOutput& out : plan_.outputs) {
      DMAC_ASSIGN_OR_RETURN(LocalMatrix m, Gather(out.node));
      if (out.transposed) m = m.Transposed();
      result.matrices.emplace(out.variable, std::move(m));
    }
    for (const auto& [var, ssa] : plan_.scalar_outputs) {
      auto it = scalars_.find(ssa);
      if (it == scalars_.end()) {
        return Status::NotFound("scalar output " + ssa + " never computed");
      }
      result.scalars.emplace(var, it->second);
    }
    stats_.peak_memory_bytes =
        std::max(MemTracker::Global().peak_bytes(), mem_before_peak);
    metric_peak_memory_->Set(static_cast<double>(stats_.peak_memory_bytes));
    result.stats = std::move(stats_);
    return result;
  }

 private:
  // ---- setup -------------------------------------------------------------

  Status PickBlockSize() {
    block_size_ = opts_.block_size;
    if (block_size_ == 0) {
      for (const auto& [name, matrix] : bindings_) {
        block_size_ = matrix->block_size();
        break;
      }
    }
    if (block_size_ <= 0) block_size_ = 1024;
    for (const auto& [name, matrix] : bindings_) {
      if (matrix->block_size() != block_size_) {
        return Status::Invalid(
            "binding " + name + " uses block size " +
            std::to_string(matrix->block_size()) + ", executor uses " +
            std::to_string(block_size_));
      }
    }
    return Status::Ok();
  }

  const PlanNode& NodeOf(int id) const {
    return plan_.nodes[static_cast<size_t>(id)];
  }

  DistMatrix& Data(int node_id) {
    DMAC_CHECK(node_data_[static_cast<size_t>(node_id)] != nullptr)
        << "node " << node_id << " has no materialized data";
    return *node_data_[static_cast<size_t>(node_id)];
  }

  std::shared_ptr<DistMatrix> NewData(int node_id, Shape shape) {
    const PlanNode& node = NodeOf(node_id);
    auto dm = std::make_shared<DistMatrix>(BlockGrid{shape, block_size_},
                                           node.scheme(), opts_.num_workers);
    node_data_[static_cast<size_t>(node_id)] = dm;
    return dm;
  }

  /// Times `fn` and attributes the elapsed seconds to (step.stage, worker),
  /// both in ExecStats and as a worker-attributed trace span. Block tasks
  /// the engine runs inside `fn` inherit the worker id for their spans.
  template <typename Fn>
  Status TimedWorker(const PlanStep& step, int worker, Fn&& fn) {
    TraceSpan span =
        TraceRecorder::Global().enabled()
            ? TraceSpan(kTraceWorker, StepSpanName(step), worker,
                        TraceArg("stage", int64_t{step.stage}))
            : TraceSpan();
    engine_.SetWorkerContext(worker);
    Timer timer;
    Status st = fn();
    stats_.AddWorkerSeconds(step.stage, worker, timer.ElapsedSeconds());
    return st;
  }

  /// Counts one shuffle round of `bytes` (stats + metrics).
  void CountShuffle(double bytes) {
    stats_.shuffle_bytes += bytes;
    ++stats_.shuffle_events;
    metric_shuffle_bytes_->Add(bytes);
    metric_shuffle_rounds_->Increment();
  }

  /// Counts one broadcast round of `bytes` (stats + metrics).
  void CountBroadcast(double bytes) {
    stats_.broadcast_bytes += bytes;
    ++stats_.broadcast_events;
    metric_broadcast_bytes_->Add(bytes);
    metric_broadcast_rounds_->Increment();
  }

  // ---- step dispatch ------------------------------------------------------

  Status ExecuteStep(const PlanStep& step) {
    switch (step.kind) {
      case StepKind::kLoad:
        return ExecLoad(step);
      case StepKind::kRandom:
        return ExecRandom(step);
      case StepKind::kPartition:
        return ExecPartition(step);
      case StepKind::kBroadcast:
        return ExecBroadcast(step);
      case StepKind::kTranspose:
        return ExecTranspose(step);
      case StepKind::kExtract:
        return ExecExtract(step);
      case StepKind::kCompute:
        return ExecCompute(step);
      case StepKind::kReduce:
        return ExecReduce(step);
      case StepKind::kScalarAssign: {
        DMAC_ASSIGN_OR_RETURN(double v, EvalScalar(step.scalar, scalars_));
        scalars_[step.scalar_out] = v;
        return Status::Ok();
      }
    }
    return Status::Internal("unknown step kind");
  }

  Status ExecLoad(const PlanStep& step) {
    auto it = bindings_.find(step.source);
    if (it == bindings_.end()) {
      return Status::NotFound("no binding for input matrix " + step.source);
    }
    const LocalMatrix& src = *it->second;
    if (src.shape() != step.decl_shape) {
      return Status::DimensionMismatch(
          "binding " + step.source + " is " + src.shape().ToString() +
          ", declared " + step.decl_shape.ToString());
    }
    auto dm = NewData(step.output, src.shape());
    const bool broadcast = dm->scheme() == Scheme::kBroadcast;
    TraceSpan span = TraceRecorder::Global().enabled()
                         ? TraceSpan(kTraceComm, "load " + step.source)
                         : TraceSpan();
    double bytes = 0;
    for (int64_t bi = 0; bi < dm->grid().block_rows(); ++bi) {
      for (int64_t bj = 0; bj < dm->grid().block_cols(); ++bj) {
        // Non-owning pointer into the binding: the caller keeps inputs
        // alive for the duration of Execute().
        DistMatrix::BlockPtr ptr(std::shared_ptr<void>(),
                                 &src.BlockAt(bi, bj));
        const double block_bytes =
            static_cast<double>(ptr->MemoryBytes());
        if (broadcast) {
          for (int w = 0; w < opts_.num_workers; ++w) dm->Put(w, bi, bj, ptr);
          bytes += block_bytes * opts_.num_workers;
        } else {
          dm->Put(dm->OwnerOf(bi, bj), bi, bj, ptr);
          bytes += block_bytes;
        }
      }
    }
    if (broadcast) {
      CountBroadcast(bytes);
    } else {
      CountShuffle(bytes);
    }
    if (span.active()) {
      span.set_args(TraceArg("bytes", bytes) + "," +
                    TraceArg("kind", broadcast ? "broadcast" : "shuffle"));
    }
    return Status::Ok();
  }

  Status ExecRandom(const PlanStep& step) {
    auto dm = NewData(step.output, step.decl_shape);
    const BlockGrid& grid = dm->grid();

    // Deterministic per-block seeds make every replica identical, so a
    // Broadcast-scheme random matrix costs no communication.
    const bool broadcast = dm->scheme() == Scheme::kBroadcast;
    for (int64_t bi = 0; bi < grid.block_rows(); ++bi) {
      for (int64_t bj = 0; bj < grid.block_cols(); ++bj) {
        const uint64_t seed =
            RandomBlockSeed(opts_.seed, step.source, bi, bj);
        const Shape s = grid.BlockShape(bi, bj);
        const int owner = broadcast ? 0 : dm->OwnerOf(bi, bj);
        Status st = TimedWorker(step, owner, [&] {
          auto ptr = std::make_shared<const Block>(
              RandomDenseBlock(s.rows, s.cols, seed));
          if (broadcast) {
            for (int w = 0; w < opts_.num_workers; ++w) {
              dm->Put(w, bi, bj, ptr);
            }
          } else {
            dm->Put(owner, bi, bj, ptr);
          }
          return Status::Ok();
        });
        DMAC_RETURN_NOT_OK(st);
      }
    }
    return Status::Ok();
  }

  Status ExecPartition(const PlanStep& step) {
    const DistMatrix& src = Data(step.inputs[0]);
    auto dst = NewData(step.output, src.grid().matrix);
    DMAC_CHECK(dst->scheme() != Scheme::kBroadcast);
    // A repartition onto the *same* scheme (SystemML-S's hash shuffle of an
    // already-aligned matrix) keeps block placement in our simulator, but on
    // a real cluster the hash shuffle still pushes an expected (N-1)/N of
    // the data across the network; charge that fraction.
    const bool same_scheme = src.scheme() == dst->scheme();
    const double hash_fraction =
        static_cast<double>(opts_.num_workers - 1) / opts_.num_workers;
    TraceSpan span(kTraceComm, "partition");
    double bytes = 0;
    for (int64_t bi = 0; bi < src.grid().block_rows(); ++bi) {
      for (int64_t bj = 0; bj < src.grid().block_cols(); ++bj) {
        const int to = dst->OwnerOf(bi, bj);
        // Under a Broadcast source every worker already holds the block.
        const int from = src.scheme() == Scheme::kBroadcast
                             ? to
                             : src.OwnerOf(bi, bj);
        auto ptr = src.Get(from, bi, bj);
        if (ptr == nullptr) {
          return Status::Internal("partition: missing source block");
        }
        if (same_scheme) {
          bytes += static_cast<double>(ptr->MemoryBytes()) * hash_fraction;
        } else if (from != to) {
          bytes += static_cast<double>(ptr->MemoryBytes());
        }
        dst->Put(to, bi, bj, std::move(ptr));
      }
    }
    CountShuffle(bytes);
    if (span.active()) {
      span.set_args(TraceArg("bytes", bytes) + "," +
                    TraceArg("kind", "shuffle"));
    }
    return Status::Ok();
  }

  Status ExecBroadcast(const PlanStep& step) {
    const DistMatrix& src = Data(step.inputs[0]);
    auto dst = NewData(step.output, src.grid().matrix);
    DMAC_CHECK(dst->scheme() == Scheme::kBroadcast);
    TraceSpan span(kTraceComm, "broadcast");
    double bytes = 0;
    for (int64_t bi = 0; bi < src.grid().block_rows(); ++bi) {
      for (int64_t bj = 0; bj < src.grid().block_cols(); ++bj) {
        const int from = src.OwnerOf(bi, bj);
        auto ptr = src.Get(from, bi, bj);
        if (ptr == nullptr) {
          return Status::Internal("broadcast: missing source block");
        }
        bytes += static_cast<double>(ptr->MemoryBytes()) *
                 (opts_.num_workers - 1);
        for (int w = 0; w < opts_.num_workers; ++w) dst->Put(w, bi, bj, ptr);
      }
    }
    CountBroadcast(bytes);
    if (span.active()) {
      span.set_args(TraceArg("bytes", bytes) + "," +
                    TraceArg("kind", "broadcast"));
    }
    return Status::Ok();
  }

  Status ExecTranspose(const PlanStep& step) {
    const DistMatrix& src = Data(step.inputs[0]);
    auto dst = NewData(step.output, src.grid().matrix.Transposed());
    const bool broadcast = src.scheme() == Scheme::kBroadcast;
    const int workers = broadcast ? 1 : opts_.num_workers;
    for (int w = 0; w < workers; ++w) {
      auto blocks = src.WorkerBlocks(w);
      StoreSink sink(dst.get(), w);
      Status st = TimedWorker(step, w, [&] {
        std::vector<std::function<Status()>> tasks;
        tasks.reserve(blocks.size());
        for (auto& [bi, bj, ptr] : blocks) {
          const int64_t tbi = bj;
          const int64_t tbj = bi;
          const Block* block = ptr.get();
          tasks.push_back([&sink, tbi, tbj, block] {
            sink(tbi, tbj, block->Transposed());
            return Status::Ok();
          });
        }
        return engine_.RunTasks(tasks, TaskKind::kTranspose);
      });
      DMAC_RETURN_NOT_OK(st);
    }
    if (broadcast) {
      // Replicas are identical: share worker 0's transposed blocks.
      for (int64_t bi = 0; bi < dst->grid().block_rows(); ++bi) {
        for (int64_t bj = 0; bj < dst->grid().block_cols(); ++bj) {
          auto ptr = dst->Get(0, bi, bj);
          if (ptr == nullptr) {
            return Status::Internal("transpose: missing block");
          }
          for (int w = 1; w < opts_.num_workers; ++w) {
            dst->Put(w, bi, bj, ptr);
          }
        }
      }
    }
    return Status::Ok();
  }

  Status ExecExtract(const PlanStep& step) {
    const DistMatrix& src = Data(step.inputs[0]);
    if (src.scheme() != Scheme::kBroadcast) {
      return Status::Internal("extract requires a Broadcast source");
    }
    auto dst = NewData(step.output, src.grid().matrix);
    // Each worker filters its owned range out of its local replica — a
    // pointer copy per block, no data movement.
    for (int64_t bi = 0; bi < dst->grid().block_rows(); ++bi) {
      for (int64_t bj = 0; bj < dst->grid().block_cols(); ++bj) {
        const int w = dst->OwnerOf(bi, bj);
        auto ptr = src.Get(w, bi, bj);
        if (ptr == nullptr) {
          return Status::Internal("extract: missing replica block");
        }
        dst->Put(w, bi, bj, std::move(ptr));
      }
    }
    return Status::Ok();
  }

  // ---- compute steps ------------------------------------------------------

  Status ExecCompute(const PlanStep& step) {
    switch (step.op_kind) {
      case OpKind::kMultiply:
        return ExecMultiply(step);
      case OpKind::kAdd:
      case OpKind::kSubtract:
      case OpKind::kCellMultiply:
      case OpKind::kCellDivide:
        return ExecCellwise(step);
      case OpKind::kScalarMultiply:
      case OpKind::kScalarAdd:
        return ExecScalarOp(step);
      case OpKind::kRowSums:
      case OpKind::kColSums:
        return ExecAggregate(step);
      case OpKind::kCellUnary:
        return ExecCellUnary(step);
      default:
        return Status::Internal("unexpected compute op kind");
    }
  }

  Status ExecMultiply(const PlanStep& step) {
    const DistMatrix& a = Data(step.inputs[0]);
    const DistMatrix& b = Data(step.inputs[1]);
    if (a.grid().matrix.cols != b.grid().matrix.rows) {
      return Status::DimensionMismatch("distributed multiply " +
                                       a.grid().matrix.ToString() + " by " +
                                       b.grid().matrix.ToString());
    }
    const Shape out_shape{a.grid().matrix.rows, b.grid().matrix.cols};
    auto c = NewData(step.output, out_shape);
    const BlockGrid& out_grid = c->grid();
    const int64_t kb = a.grid().block_cols();

    switch (step.mult_algo) {
      case MultAlgo::kRMM1: {
        // A broadcast, B column-partitioned: worker w computes the output
        // block-columns it owns.
        DMAC_CHECK(a.scheme() == Scheme::kBroadcast);
        DMAC_CHECK(b.scheme() == Scheme::kCol);
        for (int w = 0; w < opts_.num_workers; ++w) {
          std::vector<MultiplyTask> tasks;
          int64_t lo, hi;
          OwnedRange(w, out_grid.block_cols(), opts_.num_workers, &lo, &hi);
          for (int64_t bj = lo; bj < hi; ++bj) {
            for (int64_t bi = 0; bi < out_grid.block_rows(); ++bi) {
              tasks.push_back({bi, bj, 0, kb});
            }
          }
          DMAC_RETURN_NOT_OK(RunMultiplyOnWorker(step, w, out_grid, tasks,
                                                 a, b, c.get()));
        }
        return Status::Ok();
      }
      case MultAlgo::kRMM2: {
        DMAC_CHECK(a.scheme() == Scheme::kRow);
        DMAC_CHECK(b.scheme() == Scheme::kBroadcast);
        for (int w = 0; w < opts_.num_workers; ++w) {
          std::vector<MultiplyTask> tasks;
          int64_t lo, hi;
          OwnedRange(w, out_grid.block_rows(), opts_.num_workers, &lo, &hi);
          for (int64_t bi = lo; bi < hi; ++bi) {
            for (int64_t bj = 0; bj < out_grid.block_cols(); ++bj) {
              tasks.push_back({bi, bj, 0, kb});
            }
          }
          DMAC_RETURN_NOT_OK(RunMultiplyOnWorker(step, w, out_grid, tasks,
                                                 a, b, c.get()));
        }
        return Status::Ok();
      }
      case MultAlgo::kCPMM:
        return ExecCpmm(step, a, b, c.get());
      case MultAlgo::kNone:
        break;
    }
    return Status::Internal("multiply step without an algorithm");
  }

  Status RunMultiplyOnWorker(const PlanStep& step, int worker,
                             const BlockGrid& out_grid,
                             const std::vector<MultiplyTask>& tasks,
                             const DistMatrix& a, const DistMatrix& b,
                             DistMatrix* c) {
    StoreSink sink(c, worker);
    return TimedWorker(step, worker, [&] {
      return engine_.MultiplyBlocks(
          out_grid, tasks,
          [&a, worker](int64_t bi, int64_t k) { return a.Get(worker, bi, k); },
          [&b, worker](int64_t k, int64_t bj) { return b.Get(worker, k, bj); },
          [&sink](int64_t bi, int64_t bj, Block blk) {
            sink(bi, bj, std::move(blk));
          });
    });
  }

  Status ExecCpmm(const PlanStep& step, const DistMatrix& a,
                  const DistMatrix& b, DistMatrix* c) {
    DMAC_CHECK(a.scheme() == Scheme::kCol);
    DMAC_CHECK(b.scheme() == Scheme::kRow);
    const BlockGrid& out_grid = c->grid();
    const int64_t kb = a.grid().block_cols();

    // Phase 1: every worker forms its partial C over its own k-range.
    // Phase 2: partial blocks are shuffled to their final owner and summed
    // (the cross-product aggregation whose cost is N·|C|, §4.1).
    struct Partial {
      int64_t bi;
      int64_t bj;
      DistMatrix::BlockPtr block;
      int from;
    };
    std::vector<std::vector<Partial>> incoming(
        static_cast<size_t>(opts_.num_workers));
    double bytes = 0;

    for (int w = 0; w < opts_.num_workers; ++w) {
      int64_t klo, khi;
      OwnedRange(w, kb, opts_.num_workers, &klo, &khi);
      if (klo >= khi) continue;
      std::vector<MultiplyTask> tasks;
      for (int64_t bi = 0; bi < out_grid.block_rows(); ++bi) {
        for (int64_t bj = 0; bj < out_grid.block_cols(); ++bj) {
          tasks.push_back({bi, bj, klo, khi});
        }
      }
      std::mutex mu;
      std::vector<Partial> local;
      Status st = TimedWorker(step, w, [&] {
        return engine_.MultiplyBlocks(
            out_grid, tasks,
            [&a, w](int64_t bi, int64_t k) { return a.Get(w, bi, k); },
            [&b, w](int64_t k, int64_t bj) { return b.Get(w, k, bj); },
            [&](int64_t bi, int64_t bj, Block blk) {
              if (blk.nnz() == 0) return;  // nothing to ship
              auto ptr = std::make_shared<const Block>(std::move(blk));
              std::lock_guard<std::mutex> lock(mu);
              local.push_back({bi, bj, std::move(ptr), w});
            });
      });
      DMAC_RETURN_NOT_OK(st);
      for (Partial& p : local) {
        const int dst = c->OwnerOf(p.bi, p.bj);
        if (dst != p.from) {
          bytes += static_cast<double>(p.block->MemoryBytes());
        }
        incoming[static_cast<size_t>(dst)].push_back(std::move(p));
      }
    }
    CountShuffle(bytes);
    if (TraceRecorder::Global().enabled()) {
      TraceSpan span(kTraceComm, "cpmm-shuffle");
      span.set_args(TraceArg("bytes", bytes) + "," +
                    TraceArg("kind", "shuffle"));
    }

    // Phase 2: aggregation at the owners (next stage's beginning; we account
    // its compute into the step's stage for simplicity).
    for (int w = 0; w < opts_.num_workers; ++w) {
      auto& parts = incoming[static_cast<size_t>(w)];
      if (parts.empty()) continue;
      std::unordered_map<int64_t, std::vector<DistMatrix::BlockPtr>> grouped;
      for (Partial& p : parts) {
        grouped[p.bi * out_grid.block_cols() + p.bj].push_back(
            std::move(p.block));
      }
      StoreSink sink(c, w);
      Status st = TimedWorker(step, w, [&] {
        std::vector<std::function<Status()>> tasks;
        tasks.reserve(grouped.size());
        for (auto& [key, blocks] : grouped) {
          const int64_t bi = key / out_grid.block_cols();
          const int64_t bj = key % out_grid.block_cols();
          auto* blocks_ptr = &blocks;
          tasks.push_back([this, &sink, bi, bj, blocks_ptr] {
            std::vector<const Block*> parts;
            parts.reserve(blocks_ptr->size());
            for (const auto& b : *blocks_ptr) parts.push_back(b.get());
            auto result = SumBlocks(parts, opts_.density_threshold);
            if (!result.ok()) return result.status();
            sink(bi, bj, std::move(*result));
            return Status::Ok();
          });
        }
        return engine_.RunTasks(tasks, TaskKind::kAggregate);
      });
      DMAC_RETURN_NOT_OK(st);
    }

    // Output blocks with no partials anywhere are zero blocks.
    for (int64_t bi = 0; bi < out_grid.block_rows(); ++bi) {
      for (int64_t bj = 0; bj < out_grid.block_cols(); ++bj) {
        const int w = c->OwnerOf(bi, bj);
        if (c->Get(w, bi, bj) == nullptr) {
          const Shape shape = out_grid.BlockShape(bi, bj);
          c->Put(w, bi, bj,
                 std::make_shared<const Block>(
                     CscBlock(shape.rows, shape.cols)));
        }
      }
    }
    return Status::Ok();
  }

  Status ExecCellwise(const PlanStep& step) {
    const DistMatrix& a = Data(step.inputs[0]);
    const DistMatrix& b = Data(step.inputs[1]);
    if (a.grid().matrix != b.grid().matrix) {
      return Status::DimensionMismatch("distributed cell-wise op " +
                                       a.grid().matrix.ToString() + " vs " +
                                       b.grid().matrix.ToString());
    }
    DMAC_CHECK(a.scheme() == b.scheme());
    auto c = NewData(step.output, a.grid().matrix);
    const OpKind kind = step.op_kind;

    const bool broadcast = a.scheme() == Scheme::kBroadcast;
    const int workers = broadcast ? 1 : opts_.num_workers;
    for (int w = 0; w < workers; ++w) {
      auto blocks = a.WorkerBlocks(w);
      StoreSink sink(c.get(), w);
      Status st = TimedWorker(step, w, [&] {
        std::vector<std::function<Status()>> tasks;
        tasks.reserve(blocks.size());
        for (auto& [bi, bj, aptr] : blocks) {
          auto bptr = b.Get(w, bi, bj);
          if (bptr == nullptr) {
            return Status::Internal("cell-wise op: operand block missing");
          }
          tasks.push_back([&sink, kind, bi = bi, bj = bj, ablk = aptr,
                           bblk = std::move(bptr)] {
            Result<Block> res = [&]() -> Result<Block> {
              switch (kind) {
                case OpKind::kAdd:
                  return Add(*ablk, *bblk);
                case OpKind::kSubtract:
                  return Subtract(*ablk, *bblk);
                case OpKind::kCellMultiply:
                  return CellMultiply(*ablk, *bblk);
                case OpKind::kCellDivide:
                  return CellDivide(*ablk, *bblk);
                default:
                  return Status::Internal("bad cell-wise kind");
              }
            }();
            if (!res.ok()) return res.status();
            sink(bi, bj, std::move(*res));
            return Status::Ok();
          });
        }
        return engine_.RunTasks(tasks, TaskKind::kElementwise);
      });
      DMAC_RETURN_NOT_OK(st);
    }
    if (broadcast) DMAC_RETURN_NOT_OK(ReplicateFromWorkerZero(c.get()));
    return Status::Ok();
  }

  Status ExecScalarOp(const PlanStep& step) {
    const DistMatrix& a = Data(step.inputs[0]);
    DMAC_ASSIGN_OR_RETURN(double scalar, EvalScalar(step.scalar, scalars_));
    auto c = NewData(step.output, a.grid().matrix);
    const bool add = step.op_kind == OpKind::kScalarAdd;

    const bool broadcast = a.scheme() == Scheme::kBroadcast;
    const int workers = broadcast ? 1 : opts_.num_workers;
    for (int w = 0; w < workers; ++w) {
      auto blocks = a.WorkerBlocks(w);
      StoreSink sink(c.get(), w);
      Status st = TimedWorker(step, w, [&] {
        std::vector<std::function<Status()>> tasks;
        tasks.reserve(blocks.size());
        for (auto& [bi, bj, ptr] : blocks) {
          tasks.push_back([&sink, add, scalar, bi = bi, bj = bj, blk = ptr] {
            sink(bi, bj,
                 add ? ScalarAdd(*blk, static_cast<Scalar>(scalar))
                     : ScalarMultiply(*blk, static_cast<Scalar>(scalar)));
            return Status::Ok();
          });
        }
        return engine_.RunTasks(tasks, TaskKind::kElementwise);
      });
      DMAC_RETURN_NOT_OK(st);
    }
    if (broadcast) DMAC_RETURN_NOT_OK(ReplicateFromWorkerZero(c.get()));
    return Status::Ok();
  }

  Status ExecCellUnary(const PlanStep& step) {
    const DistMatrix& a = Data(step.inputs[0]);
    auto c = NewData(step.output, a.grid().matrix);
    const UnaryFnKind fn = step.unary_fn;

    const bool broadcast = a.scheme() == Scheme::kBroadcast;
    const int workers = broadcast ? 1 : opts_.num_workers;
    for (int w = 0; w < workers; ++w) {
      auto blocks = a.WorkerBlocks(w);
      StoreSink sink(c.get(), w);
      Status st = TimedWorker(step, w, [&] {
        std::vector<std::function<Status()>> tasks;
        tasks.reserve(blocks.size());
        for (auto& [bi, bj, ptr] : blocks) {
          tasks.push_back([&sink, fn, bi = bi, bj = bj, blk = ptr] {
            sink(bi, bj, CellUnary(*blk, fn));
            return Status::Ok();
          });
        }
        return engine_.RunTasks(tasks, TaskKind::kElementwise);
      });
      DMAC_RETURN_NOT_OK(st);
    }
    if (broadcast) DMAC_RETURN_NOT_OK(ReplicateFromWorkerZero(c.get()));
    return Status::Ok();
  }

  /// Row/column sums. Three layouts (mirroring the strategy set): summing
  /// along the partitioned axis is per-worker local; a Broadcast input is
  /// reduced once and re-shared; summing across the partitioned axis leaves
  /// per-worker partial vectors that are shuffled to their owners and added
  /// (the aggregation whose plan cost is N·|out|).
  Status ExecAggregate(const PlanStep& step) {
    const DistMatrix& a = Data(step.inputs[0]);
    const bool rows = step.op_kind == OpKind::kRowSums;
    const Shape out_shape =
        rows ? Shape{a.grid().matrix.rows, 1} : Shape{1, a.grid().matrix.cols};
    auto c = NewData(step.output, out_shape);
    const BlockGrid& out_grid = c->grid();

    // Sums one worker's blocks into per-output-block dense accumulators.
    auto local_partials =
        [&](int w) -> std::unordered_map<int64_t, DenseBlock> {
      std::unordered_map<int64_t, DenseBlock> acc;
      for (auto& [bi, bj, ptr] : a.WorkerBlocks(w)) {
        const int64_t out_idx = rows ? bi : bj;
        auto it = acc.find(out_idx);
        if (it == acc.end()) {
          const Shape s = rows ? out_grid.BlockShape(out_idx, 0)
                               : out_grid.BlockShape(0, out_idx);
          it = acc.emplace(out_idx, DenseBlock(s.rows, s.cols)).first;
        }
        const DenseBlock partial = rows ? RowSums(*ptr) : ColSums(*ptr);
        Status st = AddAccumulate(Block(partial), &it->second);
        DMAC_CHECK(st.ok()) << st;
      }
      return acc;
    };

    const Scheme aligned = rows ? Scheme::kRow : Scheme::kCol;
    if (a.scheme() == aligned) {
      // Local: the worker owning a row (column) range owns every block that
      // contributes to its slice of the result.
      for (int w = 0; w < opts_.num_workers; ++w) {
        Status st = TimedWorker(step, w, [&] {
          for (auto& [idx, acc] : local_partials(w)) {
            auto block = std::make_shared<const Block>(
                CompactFromDense(acc, opts_.density_threshold));
            if (rows) {
              c->Put(w, idx, 0, std::move(block));
            } else {
              c->Put(w, 0, idx, std::move(block));
            }
          }
          return Status::Ok();
        });
        DMAC_RETURN_NOT_OK(st);
      }
      return Status::Ok();
    }

    if (a.scheme() == Scheme::kBroadcast) {
      Status st = TimedWorker(step, 0, [&] {
        for (auto& [idx, acc] : local_partials(0)) {
          auto block = std::make_shared<const Block>(
              CompactFromDense(acc, opts_.density_threshold));
          if (rows) {
            c->Put(0, idx, 0, std::move(block));
          } else {
            c->Put(0, 0, idx, std::move(block));
          }
        }
        return Status::Ok();
      });
      DMAC_RETURN_NOT_OK(st);
      return ReplicateFromWorkerZero(c.get());
    }

    // Crossed: every worker holds a partial over the full output; shuffle
    // partials to their owners and sum.
    struct Partial {
      int64_t idx;
      DistMatrix::BlockPtr block;
      int from;
    };
    std::vector<std::vector<Partial>> incoming(
        static_cast<size_t>(opts_.num_workers));
    double bytes = 0;
    for (int w = 0; w < opts_.num_workers; ++w) {
      std::unordered_map<int64_t, DenseBlock> partials;
      Status st = TimedWorker(step, w, [&] {
        partials = local_partials(w);
        return Status::Ok();
      });
      DMAC_RETURN_NOT_OK(st);
      for (auto& [idx, acc] : partials) {
        auto block = std::make_shared<const Block>(
            CompactFromDense(acc, opts_.density_threshold));
        const int dst = rows ? c->OwnerOf(idx, 0) : c->OwnerOf(0, idx);
        if (dst != w) bytes += static_cast<double>(block->MemoryBytes());
        incoming[static_cast<size_t>(dst)].push_back(
            {idx, std::move(block), w});
      }
    }
    CountShuffle(bytes);
    if (TraceRecorder::Global().enabled()) {
      TraceSpan span(kTraceComm, "aggregate-shuffle");
      span.set_args(TraceArg("bytes", bytes) + "," +
                    TraceArg("kind", "shuffle"));
    }

    for (int w = 0; w < opts_.num_workers; ++w) {
      std::unordered_map<int64_t, std::vector<DistMatrix::BlockPtr>> grouped;
      for (Partial& p : incoming[static_cast<size_t>(w)]) {
        grouped[p.idx].push_back(std::move(p.block));
      }
      Status st = TimedWorker(step, w, [&] {
        for (auto& [idx, blocks] : grouped) {
          std::vector<const Block*> parts;
          parts.reserve(blocks.size());
          for (const auto& b : blocks) parts.push_back(b.get());
          auto sum = SumBlocks(parts, opts_.density_threshold);
          if (!sum.ok()) return sum.status();
          auto block = std::make_shared<const Block>(std::move(*sum));
          if (rows) {
            c->Put(w, idx, 0, std::move(block));
          } else {
            c->Put(w, 0, idx, std::move(block));
          }
        }
        return Status::Ok();
      });
      DMAC_RETURN_NOT_OK(st);
    }
    // Contributions exist for every output block (inputs cover the grid),
    // but guard against fully-empty worker shares.
    for (int64_t bi = 0; bi < out_grid.block_rows(); ++bi) {
      for (int64_t bj = 0; bj < out_grid.block_cols(); ++bj) {
        const int w = c->OwnerOf(bi, bj);
        if (c->Get(w, bi, bj) == nullptr) {
          const Shape s = out_grid.BlockShape(bi, bj);
          c->Put(w, bi, bj,
                 std::make_shared<const Block>(CscBlock(s.rows, s.cols)));
        }
      }
    }
    return Status::Ok();
  }

  /// Shares worker 0's blocks with every other replica of a Broadcast
  /// matrix (all replicas are identical by construction).
  Status ReplicateFromWorkerZero(DistMatrix* dm) {
    for (int64_t bi = 0; bi < dm->grid().block_rows(); ++bi) {
      for (int64_t bj = 0; bj < dm->grid().block_cols(); ++bj) {
        auto ptr = dm->Get(0, bi, bj);
        if (ptr == nullptr) {
          return Status::Internal("broadcast result missing block");
        }
        for (int w = 1; w < opts_.num_workers; ++w) dm->Put(w, bi, bj, ptr);
      }
    }
    return Status::Ok();
  }

  Status ExecReduce(const PlanStep& step) {
    const DistMatrix& a = Data(step.inputs[0]);
    const bool broadcast = a.scheme() == Scheme::kBroadcast;
    const int workers = broadcast ? 1 : opts_.num_workers;
    double total = 0;
    for (int w = 0; w < workers; ++w) {
      double partial = 0;
      Status st = TimedWorker(step, w, [&] {
        for (auto& [bi, bj, ptr] : a.WorkerBlocks(w)) {
          partial += step.reduce == ReduceKind::kNorm2 ? SumSquares(*ptr)
                                                       : Sum(*ptr);
        }
        return Status::Ok();
      });
      DMAC_RETURN_NOT_OK(st);
      total += partial;
    }
    if (step.reduce == ReduceKind::kNorm2) total = std::sqrt(total);
    scalars_[step.scalar_out] = total;
    // Driver aggregation: N partial doubles cross the network (bytes only,
    // no extra round — the reduce piggybacks on the stage boundary).
    stats_.shuffle_bytes += 8.0 * opts_.num_workers;
    metric_shuffle_bytes_->Add(8.0 * opts_.num_workers);
    if (TraceRecorder::Global().enabled()) {
      TraceSpan span(kTraceComm, "reduce");
      span.set_args(TraceArg("bytes", 8.0 * opts_.num_workers) + "," +
                    TraceArg("kind", "shuffle"));
    }
    return Status::Ok();
  }

  // ---- gather -------------------------------------------------------------

  Result<LocalMatrix> Gather(int node_id) {
    const DistMatrix& dm = Data(node_id);
    const BlockGrid& grid = dm.grid();
    std::vector<Block> blocks;
    blocks.reserve(static_cast<size_t>(grid.num_blocks()));
    for (int64_t bi = 0; bi < grid.block_rows(); ++bi) {
      for (int64_t bj = 0; bj < grid.block_cols(); ++bj) {
        auto ptr = dm.GetOwned(bi, bj);
        if (ptr == nullptr) {
          return Status::Internal("gather: missing block (" +
                                  std::to_string(bi) + "," +
                                  std::to_string(bj) + ")");
        }
        blocks.push_back(*ptr);
      }
    }
    return LocalMatrix::FromBlocks(grid.matrix, grid.block_size,
                                   std::move(blocks));
  }

  ExecutorOptions opts_;
  const Plan& plan_;
  const Bindings& bindings_;
  ThreadPool pool_;
  BufferPool buffers_;
  LocalEngine engine_;
  int64_t block_size_ = 0;
  std::vector<std::shared_ptr<DistMatrix>> node_data_;
  std::unordered_map<std::string, double> scalars_;
  ExecStats stats_;

  // Cached metric instruments (stable pointers; no-ops while the registry
  // is disabled).
  Counter* metric_shuffle_bytes_ =
      MetricRegistry::Global().counter(kMetricShuffleBytes);
  Counter* metric_broadcast_bytes_ =
      MetricRegistry::Global().counter(kMetricBroadcastBytes);
  Counter* metric_shuffle_rounds_ =
      MetricRegistry::Global().counter(kMetricShuffleRounds);
  Counter* metric_broadcast_rounds_ =
      MetricRegistry::Global().counter(kMetricBroadcastRounds);
  Counter* metric_steps_ = MetricRegistry::Global().counter(kMetricStepsExecuted);
  Gauge* metric_stages_ = MetricRegistry::Global().gauge(kMetricStages);
  Gauge* metric_peak_memory_ =
      MetricRegistry::Global().gauge(kMetricPeakMemoryBytes);
};

Executor::Executor(ExecutorOptions options) : options_(options) {}

Result<ExecutionResult> Executor::Execute(const Plan& plan,
                                          const Bindings& bindings) {
  Impl impl(options_, plan, bindings);
  return impl.Run();
}

}  // namespace dmac
