#include "runtime/buffer_pool.h"

#include "obs/metrics.h"

namespace dmac {

namespace {

struct PoolMetrics {
  Counter* acquires = MetricRegistry::Global().counter(kMetricPoolAcquires);
  Counter* reuses = MetricRegistry::Global().counter(kMetricPoolReuses);
  Counter* discards = MetricRegistry::Global().counter(kMetricPoolDiscards);
};

PoolMetrics& Metrics() {
  static PoolMetrics metrics;
  return metrics;
}

}  // namespace

DenseBlock BufferPool::Acquire(int64_t rows, int64_t cols) {
  Metrics().acquires->Increment();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = free_.find({rows, cols});
    if (it != free_.end() && !it->second.empty()) {
      DenseBlock block = std::move(it->second.back());
      it->second.pop_back();
      block.Clear();
      Metrics().reuses->Increment();
      return block;
    }
  }
  return DenseBlock(rows, cols);
}

void BufferPool::Release(DenseBlock block) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = free_[{block.rows(), block.cols()}];
  if (slot.size() < max_per_shape_) {
    slot.push_back(std::move(block));
  } else {
    Metrics().discards->Increment();
  }
}

size_t BufferPool::IdleBlocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [shape, blocks] : free_) n += blocks.size();
  return n;
}

}  // namespace dmac
