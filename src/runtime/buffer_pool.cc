#include "runtime/buffer_pool.h"

#include <atomic>

#include "obs/metrics.h"

namespace dmac {

namespace {

struct PoolMetrics {
  Counter* acquires = MetricRegistry::Global().counter(kMetricPoolAcquires);
  Counter* reuses = MetricRegistry::Global().counter(kMetricPoolReuses);
  Counter* discards = MetricRegistry::Global().counter(kMetricPoolDiscards);
  Gauge* outstanding = MetricRegistry::Global().gauge(kMetricPoolOutstanding);
  Gauge* peak_bytes = MetricRegistry::Global().gauge(kMetricPoolPeakBytes);
};

PoolMetrics& Metrics() {
  static PoolMetrics metrics;
  return metrics;
}

// Process-wide accounting shared by all pools; the obs gauges mirror these.
std::atomic<int64_t> g_outstanding{0};
std::atomic<int64_t> g_held_bytes{0};
std::atomic<int64_t> g_peak_bytes{0};

void AddHeldBytes(int64_t delta) {
  int64_t held = g_held_bytes.fetch_add(delta, std::memory_order_relaxed) +
                 delta;
  int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (held > peak && !g_peak_bytes.compare_exchange_weak(
                            peak, held, std::memory_order_relaxed)) {
  }
  Metrics().peak_bytes->Set(
      static_cast<double>(g_peak_bytes.load(std::memory_order_relaxed)));
}

void AddOutstanding(int64_t delta) {
  int64_t now = g_outstanding.fetch_add(delta, std::memory_order_relaxed) +
                delta;
  Metrics().outstanding->Set(static_cast<double>(now));
}

}  // namespace

BufferPool::~BufferPool() {
  // Drop the budget charge for idle blocks. Outstanding blocks must have
  // been released before the pool dies (the engine waits for idle).
  MutexLock lock(&mu_);
  int64_t idle_bytes = 0;
  for (const auto& [shape, blocks] : free_) {
    for (const auto& b : blocks) idle_bytes += b.MemoryBytes();
  }
  if (idle_bytes > 0) {
    AddHeldBytes(-idle_bytes);
    if (budget_) budget_->Release(idle_bytes);
  }
}

Result<DenseBlock> BufferPool::Acquire(int64_t rows, int64_t cols) {
  Metrics().acquires->Increment();
  std::shared_ptr<MemoryBudget> budget;
  {
    MutexLock lock(&mu_);
    auto it = free_.find({rows, cols});
    if (it != free_.end() && !it->second.empty()) {
      DenseBlock block = std::move(it->second.back());
      it->second.pop_back();
      block.Clear();
      Metrics().reuses->Increment();
      AddOutstanding(1);
      return block;  // already charged + counted when first allocated
    }
    budget = budget_;  // charge the miss path against a stable snapshot
  }
  int64_t bytes = DenseBlock::MemoryBytesFor(rows, cols);
  if (budget && budget->ExceedsWholeBudget(bytes)) {
    return Status::ResourceExhausted(
        "buffer pool: a single " + std::to_string(rows) + "x" +
        std::to_string(cols) + " block (" + std::to_string(bytes) +
        " bytes) exceeds the whole memory budget (" +
        std::to_string(budget->limit_bytes()) + " bytes)");
  }
  if (budget) budget->Charge(bytes);
  AddHeldBytes(bytes);
  AddOutstanding(1);
  return DenseBlock(rows, cols);
}

void BufferPool::Release(DenseBlock block) {
  AddOutstanding(-1);
  MutexLock lock(&mu_);
  auto& slot = free_[{block.rows(), block.cols()}];
  if (slot.size() < max_per_shape_) {
    slot.push_back(std::move(block));
  } else {
    Metrics().discards->Increment();
    int64_t bytes = block.MemoryBytes();
    AddHeldBytes(-bytes);
    if (budget_) budget_->Release(bytes);
  }
}

size_t BufferPool::IdleBlocks() const {
  MutexLock lock(&mu_);
  size_t n = 0;
  for (const auto& [shape, blocks] : free_) n += blocks.size();
  return n;
}

int64_t BufferPool::GlobalOutstandingBlocks() {
  return g_outstanding.load(std::memory_order_relaxed);
}

int64_t BufferPool::GlobalHeldBytes() {
  return g_held_bytes.load(std::memory_order_relaxed);
}

}  // namespace dmac
