#include "runtime/local_engine.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "common/sync.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmac {

namespace {

/// Kernel-time histogram for one task kind (stable instrument pointers).
Histogram* TaskHistogram(TaskKind kind) {
  static Histogram* multiply =
      MetricRegistry::Global().histogram(kMetricTaskSecondsMultiply);
  static Histogram* transpose =
      MetricRegistry::Global().histogram(kMetricTaskSecondsTranspose);
  static Histogram* elementwise =
      MetricRegistry::Global().histogram(kMetricTaskSecondsElementwise);
  static Histogram* aggregate =
      MetricRegistry::Global().histogram(kMetricTaskSecondsAggregate);
  switch (kind) {
    case TaskKind::kMultiply:
      return multiply;
    case TaskKind::kTranspose:
      return transpose;
    case TaskKind::kElementwise:
      return elementwise;
    case TaskKind::kAggregate:
      return aggregate;
  }
  return elementwise;
}

/// Feeds a task's kernel accounting into engine.gemm_flops,
/// engine.gemm.pack.seconds and engine.gemm.tasks (stable instrument
/// pointers; call only while the registry is enabled). Thread-safe —
/// instruments are atomics.
void ObserveGemmStats(const GemmStats& stats) {
  static Counter* flops = MetricRegistry::Global().counter(kMetricGemmFlops);
  static Histogram* pack =
      MetricRegistry::Global().histogram(kMetricGemmPackSeconds);
  static Counter* tiles = MetricRegistry::Global().counter(kMetricGemmTasks);
  flops->Add(stats.flops);
  pack->Observe(stats.pack_seconds);
  if (stats.tasks > 0) tiles->Add(stats.tasks);
}

/// Collects the first task failure across threads.
class StatusCollector {
 public:
  void Record(Status status) DMAC_EXCLUDES(mu_) {
    if (status.ok()) return;
    MutexLock lock(&mu_);
    if (first_.ok()) first_ = std::move(status);
  }
  Status Take() DMAC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return first_;
  }

 private:
  Mutex mu_;
  Status first_ DMAC_GUARDED_BY(mu_);
};

}  // namespace

const char* TaskKindName(TaskKind kind) {
  switch (kind) {
    case TaskKind::kMultiply:
      return "multiply";
    case TaskKind::kTranspose:
      return "transpose";
    case TaskKind::kElementwise:
      return "elementwise";
    case TaskKind::kAggregate:
      return "aggregate";
  }
  return "?";
}

Status LocalEngine::MultiplyBlocks(const BlockGrid& out_grid,
                                   const std::vector<MultiplyTask>& tasks,
                                   const BlockFn& get_a, const BlockFn& get_b,
                                   const SinkFn& sink, bool trans_a,
                                   bool trans_b) {
  MultiplyOptions opts;
  opts.trans_a = trans_a;
  opts.trans_b = trans_b;
  return MultiplyBlocks(out_grid, tasks, get_a, get_b, sink, opts);
}

Status LocalEngine::MultiplyBlocks(const BlockGrid& out_grid,
                                   const std::vector<MultiplyTask>& tasks,
                                   const BlockFn& get_a, const BlockFn& get_b,
                                   const SinkFn& sink,
                                   const MultiplyOptions& opts) {
  return mode_ == LocalMode::kInPlace
             ? MultiplyInPlace(out_grid, tasks, get_a, get_b, sink, opts)
             : MultiplyBuffered(out_grid, tasks, get_a, get_b, sink, opts);
}

GemmScratch LocalEngine::PooledScratch() {
  return GemmScratch(
      [this](int64_t rows, int64_t cols) {
        return buffers_->Acquire(rows, cols);
      },
      [this](DenseBlock block) { buffers_->Release(std::move(block)); });
}

GemmParallel LocalEngine::TileParallel() const {
  GemmParallel par;
  par.pool = pool_;
  par.abandon = cancel_ != nullptr ? cancel_->fired_flag() : nullptr;
  // The calling block task participates, so every pool thread plus the
  // caller can work one tile.
  par.max_workers = static_cast<int>(pool_->num_threads()) + 1;
  if (TraceRecorder::Global().enabled()) {
    const int worker = trace_worker_;
    par.wrap_task = [worker](const std::function<void()>& body) {
      TraceSpan span(kTraceTask, "gemm-tile", worker);
      body();
    };
  }
  return par;
}

void LocalEngine::Dispatch(size_t num_tasks,
                           const std::function<void(size_t)>& run_task,
                           TaskKind kind) {
  // Queued tasks of a cancelled query are abandoned by the pool; a chunk
  // already running re-checks the flag between its tasks.
  const std::atomic<bool>* abandon =
      cancel_ != nullptr ? cancel_->fired_flag() : nullptr;

  // Disabled path: identical to the uninstrumented engine — one relaxed
  // load per batch decides which dispatch body runs.
  const bool observe = TraceRecorder::Global().enabled() ||
                       MetricRegistry::Global().enabled();
  if (!observe) {
    if (scheduling_ == TaskScheduling::kQueue) {
      // Fig. 4: one entry per task in the shared queue; idle threads pull.
      for (size_t i = 0; i < num_tasks; ++i) {
        pool_->Submit(abandon, [&run_task, i] { run_task(i); });
      }
    } else {
      // Static ablation: contiguous chunks, no rebalancing.
      const size_t threads = pool_->num_threads();
      const size_t chunk = (num_tasks + threads - 1) / threads;
      for (size_t t = 0; t < threads; ++t) {
        const size_t lo = t * chunk;
        const size_t hi = std::min(num_tasks, lo + chunk);
        if (lo >= hi) break;
        pool_->Submit(abandon, [&run_task, abandon, lo, hi] {
          for (size_t i = lo; i < hi; ++i) {
            if (abandon != nullptr &&
                abandon->load(std::memory_order_acquire)) {
              return;
            }
            run_task(i);
          }
        });
      }
    }
    pool_->WaitIdle();
    return;
  }

  // Observed path: each task records its queue wait (submit -> first
  // instruction), a worker-attributed trace span, and its kernel time.
  // Under kStatic the whole chunk shares one submit time, so later tasks in
  // a chunk report growing waits — exactly the skew the ablation shows.
  Histogram* wait_hist =
      MetricRegistry::Global().histogram(kMetricQueueWaitSeconds);
  Histogram* task_hist = TaskHistogram(kind);
  static Counter* task_counter =
      MetricRegistry::Global().counter(kMetricEngineTasks);
  const char* name = TaskKindName(kind);
  const int worker = trace_worker_;
  auto observed = [&run_task, wait_hist, task_hist, name, worker](
                      size_t i, int64_t submit_ns) {
    const int64_t start_ns = TraceRecorder::Global().NowNs();
    wait_hist->Observe(static_cast<double>(start_ns - submit_ns) * 1e-9);
    TraceSpan span(kTraceTask, name, worker);
    Timer timer;
    run_task(i);
    task_hist->Observe(timer.ElapsedSeconds());
    task_counter->Increment();
  };

  if (scheduling_ == TaskScheduling::kQueue) {
    for (size_t i = 0; i < num_tasks; ++i) {
      const int64_t submit_ns = TraceRecorder::Global().NowNs();
      pool_->Submit(abandon,
                    [&observed, i, submit_ns] { observed(i, submit_ns); });
    }
  } else {
    const size_t threads = pool_->num_threads();
    const size_t chunk = (num_tasks + threads - 1) / threads;
    for (size_t t = 0; t < threads; ++t) {
      const size_t lo = t * chunk;
      const size_t hi = std::min(num_tasks, lo + chunk);
      if (lo >= hi) break;
      const int64_t submit_ns = TraceRecorder::Global().NowNs();
      pool_->Submit(abandon, [&observed, abandon, lo, hi, submit_ns] {
        for (size_t i = lo; i < hi; ++i) {
          if (abandon != nullptr &&
              abandon->load(std::memory_order_acquire)) {
            return;
          }
          observed(i, submit_ns);
        }
      });
    }
  }
  pool_->WaitIdle();
}

Status LocalEngine::CancelStatus() const {
  if (cancel_ == nullptr || !cancel_->active()) return Status::Ok();
  return cancel_->Check();
}

Status LocalEngine::MultiplyInPlace(const BlockGrid& out_grid,
                                    const std::vector<MultiplyTask>& tasks,
                                    const BlockFn& get_a, const BlockFn& get_b,
                                    const SinkFn& sink,
                                    const MultiplyOptions& opts) {
  const bool trans_a = opts.trans_a;
  const bool trans_b = opts.trans_b;
  // The batch's flagged dense products share one tile-parallelism context;
  // conversion caching applies when the plan marked B reused and a cache
  // is attached.
  const GemmParallel par = TileParallel();
  const bool use_csr_cache =
      opts.cache_csr_b && format_cache_ != nullptr && trans_a && !trans_b;
  StatusCollector errors;
  Dispatch(tasks.size(), [&](size_t task_index) {
    const MultiplyTask& task = tasks[task_index];
    {
      const Shape shape = out_grid.BlockShape(task.bi, task.bj);

      // Collect the task's operand pairs; an all-sparse chain takes the
      // Gustavson path (one column workspace, no dense accumulator), which
      // is what keeps In-Place memory bounded on large sparse blocks. The
      // chain kernel is flag-blind, so flagged multiplies always use the
      // dense accumulator with the transpose-aware kernels.
      std::vector<std::shared_ptr<const Block>> keep_alive;
      std::vector<std::pair<const CscBlock*, const CscBlock*>> sparse_chain;
      bool all_sparse = !trans_a && !trans_b;
      for (int64_t k = task.k_begin; k < task.k_end; ++k) {
        auto a = get_a(task.bi, k);
        auto b = get_b(k, task.bj);
        if (a == nullptr || b == nullptr) {
          errors.Record(Status::Internal("missing operand block in multiply"));
          return;
        }
        all_sparse = all_sparse && a->IsSparse() && b->IsSparse();
        if (all_sparse) {
          sparse_chain.emplace_back(&a->sparse(), &b->sparse());
        }
        keep_alive.push_back(std::move(a));
        keep_alive.push_back(std::move(b));
      }

      if (all_sparse && !sparse_chain.empty()) {
        auto result = MultiplySparseChain(sparse_chain, shape.rows,
                                          shape.cols);
        if (!result.ok()) {
          errors.Record(result.status());
          return;
        }
        sink(task.bi, task.bj,
             Block(std::move(*result)).Compacted(density_threshold_));
        return;
      }

      auto acc_or = buffers_->Acquire(shape.rows, shape.cols);
      if (!acc_or.ok()) {
        errors.Record(acc_or.status());
        return;
      }
      DenseBlock acc = std::move(*acc_or);
      const bool observe = MetricRegistry::Global().enabled();
      GemmStats stats;
      {
        GemmScratch scratch = PooledScratch();
        for (size_t i = 0; i + 1 < keep_alive.size(); i += 2) {
          const std::shared_ptr<const Block>& b_block = keep_alive[i + 1];
          // Shared converted operand: every task multiplying against this
          // B block reuses one cached CSR copy instead of re-converting.
          std::shared_ptr<const CscBlock> b_csr;
          if (use_csr_cache && keep_alive[i]->IsSparse() &&
              b_block->IsSparse()) {
            auto csr_or = format_cache_->Csr(b_block);
            // A cache refusal is not an error: the kernel converts inline.
            if (csr_or.ok()) b_csr = std::move(*csr_or);
          }
          Status st = MultiplyAccumulate(*keep_alive[i], *b_block, trans_a,
                                         trans_b, &acc, &scratch,
                                         observe ? &stats : nullptr, &par,
                                         b_csr.get());
          if (!st.ok()) {
            errors.Record(std::move(st));
            buffers_->Release(std::move(acc));
            return;
          }
        }
      }
      if (observe) ObserveGemmStats(stats);
      // Emit in the cheaper representation, then recycle the accumulator.
      Block result = CompactFromDense(acc, density_threshold_);
      buffers_->Release(std::move(acc));
      sink(task.bi, task.bj, std::move(result));
    }
  }, TaskKind::kMultiply);
  DMAC_RETURN_NOT_OK(CancelStatus());
  return errors.Take();
}

Status LocalEngine::MultiplyBuffered(const BlockGrid& out_grid,
                                     const std::vector<MultiplyTask>& tasks,
                                     const BlockFn& get_a, const BlockFn& get_b,
                                     const SinkFn& sink,
                                     const MultiplyOptions& opts) {
  const bool trans_a = opts.trans_a;
  const bool trans_b = opts.trans_b;
  const GemmParallel par = TileParallel();
  const bool use_csr_cache =
      opts.cache_csr_b && format_cache_ != nullptr && trans_a && !trans_b;
  // Phase 1: materialize every partial block product (the traditional
  // buffered implementation the paper compares against in Fig. 7).
  struct Partial {
    int64_t bi;
    int64_t bj;
    Block block;
  };
  Mutex partials_mu;
  std::vector<Partial> partials;  // guarded by partials_mu during phase 1
  StatusCollector errors;

  struct Triple {
    int64_t bi;
    int64_t bj;
    int64_t k;
  };
  std::vector<Triple> triples;
  for (const MultiplyTask& task : tasks) {
    for (int64_t k = task.k_begin; k < task.k_end; ++k) {
      triples.push_back({task.bi, task.bj, k});
    }
  }
  Dispatch(triples.size(), [&](size_t i) {
    const Triple& triple = triples[i];
    auto a = get_a(triple.bi, triple.k);
    auto b = get_b(triple.k, triple.bj);
    if (a == nullptr || b == nullptr) {
      errors.Record(Status::Internal("missing operand block in multiply"));
      return;
    }
    Block partial;
    if (a->IsSparse() && b->IsSparse() && !trans_a && !trans_b) {
      // Sparse partials stay sparse in the buffer, which is why the
      // Fig. 7 gap narrows on very sparse graphs. (MultiplySparse is
      // flag-blind; flagged sparse pairs fall through to the
      // transpose-aware kernels below.)
      auto res = MultiplySparse(a->sparse(), b->sparse());
      if (!res.ok()) {
        errors.Record(res.status());
        return;
      }
      partial = Block(std::move(*res));
    } else {
      const bool observe = MetricRegistry::Global().enabled();
      GemmStats stats;
      GemmScratch scratch = PooledScratch();
      std::shared_ptr<const CscBlock> b_csr;
      if (use_csr_cache && a->IsSparse() && b->IsSparse()) {
        auto csr_or = format_cache_->Csr(b);
        if (csr_or.ok()) b_csr = std::move(*csr_or);
      }
      auto res = Multiply(*a, *b, trans_a, trans_b, &scratch,
                          observe ? &stats : nullptr, &par, b_csr.get());
      if (!res.ok()) {
        errors.Record(res.status());
        return;
      }
      if (observe) ObserveGemmStats(stats);
      partial = std::move(*res);
    }
    MutexLock lock(&partials_mu);
    partials.push_back({triple.bi, triple.bj, std::move(partial)});
  }, TaskKind::kMultiply);
  DMAC_RETURN_NOT_OK(CancelStatus());
  DMAC_RETURN_NOT_OK(errors.Take());

  // Phase 2: aggregate the buffered partials per output block.
  std::unordered_map<int64_t, std::vector<Block>> grouped;
  for (Partial& p : partials) {
    grouped[p.bi * out_grid.block_cols() + p.bj].push_back(
        std::move(p.block));
  }
  partials.clear();

  std::vector<std::pair<int64_t, std::vector<Block>*>> group_list;
  group_list.reserve(grouped.size());
  for (auto& [key, blocks] : grouped) group_list.emplace_back(key, &blocks);
  Dispatch(group_list.size(), [&](size_t i) {
    const int64_t bi = group_list[i].first / out_grid.block_cols();
    const int64_t bj = group_list[i].first % out_grid.block_cols();
    std::vector<const Block*> parts;
    parts.reserve(group_list[i].second->size());
    for (const Block& b : *group_list[i].second) parts.push_back(&b);
    auto result = SumBlocks(parts, density_threshold_);
    if (!result.ok()) {
      errors.Record(result.status());
      return;
    }
    sink(bi, bj, std::move(*result));
  }, TaskKind::kAggregate);
  DMAC_RETURN_NOT_OK(CancelStatus());
  return errors.Take();
}

Status LocalEngine::RunTasks(const std::vector<std::function<Status()>>& tasks,
                             TaskKind kind) {
  StatusCollector errors;
  Dispatch(tasks.size(),
           [&](size_t i) { errors.Record(tasks[i]()); }, kind);
  DMAC_RETURN_NOT_OK(CancelStatus());
  return errors.Take();
}

}  // namespace dmac
