// DistMatrix: a matrix distributed across simulated worker stores.
//
// Two-level partitioning, exactly as in the paper (§5.3): the matrix is cut
// into square blocks (the compute/distribution unit), and the blocks are
// assigned to workers by the node's partition scheme — contiguous block-row
// ranges for Row, block-column ranges for Column, full replication for
// Broadcast. Blocks are shared immutably (shared_ptr), so local extended
// operators (reference/extract) copy pointers, not payloads — only the
// network layer (executor) copies across stores and counts bytes.
//
// Governance (docs/governance.md): when a query runs under a MemoryBudget,
// each store charges the budget for the blocks it *owns* (input matrices are
// aliased, not owned, and stay uncharged). Cold entries can be spilled to a
// SpillStore — the entry keeps its key and checksum but drops its payload —
// and restored before the next step that reads them. Spilling and restoring
// happen only on the driver thread, between steps, so readers never race a
// payload swap.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "common/status.h"
#include "fault/checksum.h"
#include "governor/memory_budget.h"
#include "governor/spill_store.h"
#include "matrix/block.h"
#include "plan/scheme.h"
#include "runtime/owner.h"

namespace dmac {

/// One matrix materialized on the cluster under a partition scheme.
class DistMatrix {
 public:
  using BlockPtr = std::shared_ptr<const Block>;

  DistMatrix(BlockGrid grid, Scheme scheme, int num_workers)
      : grid_(grid),
        scheme_(scheme),
        num_workers_(num_workers),
        stores_(static_cast<size_t>(num_workers)) {}

  ~DistMatrix() {
    for (auto& store : stores_) {
      for (auto& [key, entry] : store) ReleaseEntry(&entry);
    }
  }

  DistMatrix(const DistMatrix&) = delete;
  DistMatrix& operator=(const DistMatrix&) = delete;

  const BlockGrid& grid() const { return grid_; }
  Scheme scheme() const { return scheme_; }
  int num_workers() const { return num_workers_; }

  /// Attaches the query's budget and spill store (either may be null).
  /// Call before the first Put; earlier entries are not charged.
  void SetGovernor(std::shared_ptr<MemoryBudget> budget,
                   std::shared_ptr<SpillStore> spill) {
    budget_ = std::move(budget);
    spill_ = std::move(spill);
  }

  /// Owner of block (bi, bj) under this matrix's scheme. For Broadcast
  /// every worker holds the block; this returns the canonical copy (0).
  int OwnerOf(int64_t bi, int64_t bj) const {
    switch (scheme_) {
      case Scheme::kRow:
        return OwnerOfIndex(bi, grid_.block_rows(), num_workers_);
      case Scheme::kCol:
        return OwnerOfIndex(bj, grid_.block_cols(), num_workers_);
      case Scheme::kBroadcast:
        return 0;
    }
    return 0;
  }

  /// Places a block in `worker`'s store. The entry starts unverifiable
  /// (no checksum) — fault-tolerant runs stamp checksums in batch via
  /// SetChecksums() after the producing step, keeping the fault-free path
  /// free of hashing work.
  ///
  /// Owning blocks (use_count > 0) are charged to the attached budget;
  /// non-owning aliases of another matrix's payload are not — the owner
  /// already pays for them (replicas of a Broadcast matrix each own their
  /// pointer, so cluster-wide replication cost is charged N times, matching
  /// TotalStoredBytes()).
  void Put(int worker, int64_t bi, int64_t bj, BlockPtr block) {
    DMAC_CHECK(worker >= 0 && worker < num_workers_);
    Entry entry;
    if (block != nullptr && block.use_count() > 0) {
      entry.owned_bytes = block->MemoryBytes();
      if (budget_) budget_->Charge(entry.owned_bytes);
    }
    entry.block = std::move(block);
    Entry& slot = stores_[static_cast<size_t>(worker)][Key(bi, bj)];
    ReleaseEntry(&slot);
    slot = std::move(entry);
  }

  /// Block (bi, bj) from `worker`'s store; null when absent there (or
  /// currently spilled — call EnsureResident() first on governed runs).
  BlockPtr Get(int worker, int64_t bi, int64_t bj) const {
    const auto& store = stores_[static_cast<size_t>(worker)];
    auto it = store.find(Key(bi, bj));
    return it == store.end() ? nullptr : it->second.block;
  }

  /// Block (bi, bj) from its owner's store (any replica for Broadcast).
  BlockPtr GetOwned(int64_t bi, int64_t bj) const {
    return Get(OwnerOf(bi, bj), bi, bj);
  }

  /// All blocks in `worker`'s store as (bi, bj, block) triples.
  std::vector<std::tuple<int64_t, int64_t, BlockPtr>> WorkerBlocks(
      int worker) const {
    std::vector<std::tuple<int64_t, int64_t, BlockPtr>> out;
    const auto& store = stores_[static_cast<size_t>(worker)];
    out.reserve(store.size());
    for (const auto& [key, entry] : store) {
      out.emplace_back(key / grid_.block_cols(), key % grid_.block_cols(),
                       entry.block);
    }
    return out;
  }

  /// Keys of `worker`'s store in ascending order. Deterministic iteration
  /// order for fault injection and lineage capture; decompose a key with
  /// bi = key / grid().block_cols(), bj = key % grid().block_cols().
  std::vector<int64_t> SortedWorkerKeys(int worker) const {
    const auto& store = stores_[static_cast<size_t>(worker)];
    std::vector<int64_t> keys;
    keys.reserve(store.size());
    for (const auto& [key, entry] : store) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  /// Total resident payload bytes across all stores (replicas counted;
  /// spilled entries excluded — they live on disk, not in memory).
  int64_t TotalStoredBytes() const {
    int64_t total = 0;
    for (const auto& store : stores_) {
      for (const auto& [key, entry] : store) {
        if (entry.block != nullptr) total += entry.block->MemoryBytes();
      }
    }
    return total;
  }

  /// Flat store key of block (bi, bj) — the identifier used in lineage
  /// records and checkpoints.
  int64_t Key(int64_t bi, int64_t bj) const {
    DMAC_CHECK(bi >= 0 && bi < grid_.block_rows());
    DMAC_CHECK(bj >= 0 && bj < grid_.block_cols());
    return bi * grid_.block_cols() + bj;
  }

  // --- Governance (docs/governance.md) -------------------------------------

  /// Budget-relevant bytes this matrix owns, resident or spilled. This is
  /// a step's pinned working-set contribution: reading the matrix requires
  /// all of it resident at once.
  int64_t OwnedBytes() const {
    int64_t total = 0;
    for (const auto& store : stores_) {
      for (const auto& [key, entry] : store) total += entry.owned_bytes;
    }
    return total;
  }

  /// Number of entries currently spilled to disk.
  int64_t SpilledEntries() const { return spilled_entries_; }

  /// Bytes currently spilled to disk (restoring re-charges the budget by
  /// this much).
  int64_t SpilledBytes() const {
    if (spilled_entries_ == 0) return 0;
    int64_t total = 0;
    for (const auto& store : stores_) {
      for (const auto& [key, entry] : store) {
        if (entry.spill_handle != SpillStore::kNoHandle) {
          total += entry.owned_bytes;
        }
      }
    }
    return total;
  }

  /// Restores every spilled entry and re-charges the budget. Returns the
  /// bytes brought back. Driver thread only.
  Result<int64_t> EnsureResident() {
    if (spilled_entries_ == 0) return static_cast<int64_t>(0);
    int64_t restored = 0;
    for (auto& store : stores_) {
      for (auto& [key, entry] : store) {
        if (entry.spill_handle == SpillStore::kNoHandle) continue;
        DMAC_ASSIGN_OR_RETURN(Block block,
                              spill_->Restore(entry.spill_handle));
        entry.block = std::make_shared<const Block>(std::move(block));
        entry.spill_handle = SpillStore::kNoHandle;
        if (budget_) budget_->Charge(entry.owned_bytes);
        restored += entry.owned_bytes;
        --spilled_entries_;
      }
    }
    return restored;
  }

  /// Spills owned resident entries — workers ascending, keys ascending, so
  /// the eviction order is deterministic — until at least `target_bytes`
  /// were freed or no candidate remains. Returns the bytes freed and
  /// released from the budget. Driver thread only.
  Result<int64_t> SpillColdBlocks(int64_t target_bytes) {
    if (!spill_) return static_cast<int64_t>(0);
    int64_t freed = 0;
    for (int w = 0; w < num_workers_ && freed < target_bytes; ++w) {
      auto& store = stores_[static_cast<size_t>(w)];
      for (int64_t key : SortedWorkerKeys(w)) {
        if (freed >= target_bytes) break;
        Entry& entry = store[key];
        if (entry.block == nullptr || entry.owned_bytes == 0) continue;
        DMAC_ASSIGN_OR_RETURN(int64_t handle, spill_->Spill(*entry.block));
        entry.spill_handle = handle;
        entry.block = nullptr;
        if (budget_) budget_->Release(entry.owned_bytes);
        freed += entry.owned_bytes;
        ++spilled_entries_;
      }
    }
    return freed;
  }

  // --- Integrity (docs/fault_tolerance.md) ---------------------------------

  /// Stamps a checksum on every resident entry that lacks one. Shared
  /// payloads (Broadcast replicas, referenced blocks) are hashed once.
  void SetChecksums() {
    std::unordered_map<const Block*, uint64_t> cache;
    for (auto& store : stores_) {
      for (auto& [key, entry] : store) {
        if (entry.checksum != kNoChecksum || entry.block == nullptr) continue;
        auto [it, inserted] = cache.try_emplace(entry.block.get(), 0);
        if (inserted) it->second = BlockChecksum(*entry.block);
        entry.checksum = it->second;
      }
    }
  }

  /// Stored checksum of (bi, bj) at `worker`; kNoChecksum if absent or
  /// never stamped.
  uint64_t ChecksumAt(int worker, int64_t bi, int64_t bj) const {
    const auto& store = stores_[static_cast<size_t>(worker)];
    auto it = store.find(Key(bi, bj));
    return it == store.end() ? kNoChecksum : it->second.checksum;
  }

  /// Verifies (bi, bj) at `worker`: present, and — when a checksum was
  /// stamped — hashing to it. Missing or mismatching entries are DataLoss
  /// (retryable after lineage recovery); unstamped entries pass. Spilled
  /// entries pass here: the spill file carries its own checksum, verified
  /// on restore.
  Status VerifyAt(int worker, int64_t bi, int64_t bj) const {
    const auto& store = stores_[static_cast<size_t>(worker)];
    auto it = store.find(Key(bi, bj));
    if (it == store.end()) {
      return Status::DataLoss("block (" + std::to_string(bi) + ", " +
                              std::to_string(bj) + ") missing on worker " +
                              std::to_string(worker));
    }
    const Entry& entry = it->second;
    if (entry.block == nullptr) return Status::Ok();  // spilled
    if (entry.checksum != kNoChecksum &&
        BlockChecksum(*entry.block) != entry.checksum) {
      return Status::DataLoss("block (" + std::to_string(bi) + ", " +
                              std::to_string(bj) + ") corrupt on worker " +
                              std::to_string(worker));
    }
    return Status::Ok();
  }

  // --- Injector mutation hooks (fault framework only) ----------------------

  /// Drops entry (bi, bj) from `worker`'s store. True if it was present.
  bool Drop(int worker, int64_t bi, int64_t bj) {
    auto& store = stores_[static_cast<size_t>(worker)];
    auto it = store.find(Key(bi, bj));
    if (it == store.end()) return false;
    ReleaseEntry(&it->second);
    store.erase(it);
    return true;
  }

  /// Empties `worker`'s store (simulated crash). Returns entries lost.
  int64_t ClearWorker(int worker) {
    auto& store = stores_[static_cast<size_t>(worker)];
    const int64_t lost = static_cast<int64_t>(store.size());
    for (auto& [key, entry] : store) ReleaseEntry(&entry);
    store.clear();
    return lost;
  }

  /// Swaps the payload of (bi, bj) at `worker` *keeping the old checksum* —
  /// silent corruption, detectable only by VerifyAt. True if present and
  /// resident (a spilled entry has no payload to corrupt).
  bool ReplacePayload(int worker, int64_t bi, int64_t bj, BlockPtr block) {
    auto& store = stores_[static_cast<size_t>(worker)];
    auto it = store.find(Key(bi, bj));
    if (it == store.end() || it->second.block == nullptr) return false;
    it->second.block = std::move(block);
    return true;
  }

  // --- Degraded mode (permanent worker loss) -------------------------------

  /// Installs the deterministic rebalance map after a membership change:
  /// `map[w]` is the surviving worker that physically hosts virtual slot
  /// `w` (ClusterMembership::HostMap()). The *logical* layout — OwnerOf,
  /// store keys, and therefore the floating-point summation order — stays
  /// frozen at the original worker count; only timing attribution and
  /// byte accounting follow the map (a transfer between two slots hosted
  /// on the same survivor moves no bytes).
  void SetRebalanceMap(std::vector<int> map) { rebalance_ = std::move(map); }

  /// The worker physically hosting virtual slot `w` (identity until a
  /// rebalance map is installed).
  int HostOf(int w) const {
    return rebalance_.empty() || w < 0 ||
                   static_cast<size_t>(w) >= rebalance_.size()
               ? w
               : rebalance_[static_cast<size_t>(w)];
  }

 private:
  struct Entry {
    BlockPtr block;
    uint64_t checksum = kNoChecksum;
    /// Spill file handle, or SpillStore::kNoHandle when resident.
    int64_t spill_handle = SpillStore::kNoHandle;
    /// Payload bytes charged to the budget (0 for non-owning aliases).
    int64_t owned_bytes = 0;
  };

  /// Returns an entry's resources: the spill file if spilled, the budget
  /// charge if resident and owned. Leaves the entry empty.
  void ReleaseEntry(Entry* entry) {
    if (entry->spill_handle != SpillStore::kNoHandle) {
      if (spill_) spill_->Remove(entry->spill_handle);
      entry->spill_handle = SpillStore::kNoHandle;
      --spilled_entries_;
    } else if (entry->owned_bytes > 0 && budget_) {
      budget_->Release(entry->owned_bytes);
    }
    entry->block = nullptr;
    entry->owned_bytes = 0;
  }

  BlockGrid grid_;
  Scheme scheme_;
  int num_workers_;
  std::vector<std::unordered_map<int64_t, Entry>> stores_;
  std::shared_ptr<MemoryBudget> budget_;
  std::shared_ptr<SpillStore> spill_;
  int64_t spilled_entries_ = 0;
  /// Virtual slot -> hosting survivor; empty = identity (no deaths).
  std::vector<int> rebalance_;
};

}  // namespace dmac
