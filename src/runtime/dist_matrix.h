// DistMatrix: a matrix distributed across simulated worker stores.
//
// Two-level partitioning, exactly as in the paper (§5.3): the matrix is cut
// into square blocks (the compute/distribution unit), and the blocks are
// assigned to workers by the node's partition scheme — contiguous block-row
// ranges for Row, block-column ranges for Column, full replication for
// Broadcast. Blocks are shared immutably (shared_ptr), so local extended
// operators (reference/extract) copy pointers, not payloads — only the
// network layer (executor) copies across stores and counts bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "matrix/block.h"
#include "plan/scheme.h"
#include "runtime/owner.h"

namespace dmac {

/// One matrix materialized on the cluster under a partition scheme.
class DistMatrix {
 public:
  using BlockPtr = std::shared_ptr<const Block>;

  DistMatrix(BlockGrid grid, Scheme scheme, int num_workers)
      : grid_(grid),
        scheme_(scheme),
        num_workers_(num_workers),
        stores_(static_cast<size_t>(num_workers)) {}

  const BlockGrid& grid() const { return grid_; }
  Scheme scheme() const { return scheme_; }
  int num_workers() const { return num_workers_; }

  /// Owner of block (bi, bj) under this matrix's scheme. For Broadcast
  /// every worker holds the block; this returns the canonical copy (0).
  int OwnerOf(int64_t bi, int64_t bj) const {
    switch (scheme_) {
      case Scheme::kRow:
        return OwnerOfIndex(bi, grid_.block_rows(), num_workers_);
      case Scheme::kCol:
        return OwnerOfIndex(bj, grid_.block_cols(), num_workers_);
      case Scheme::kBroadcast:
        return 0;
    }
    return 0;
  }

  /// Places a block in `worker`'s store.
  void Put(int worker, int64_t bi, int64_t bj, BlockPtr block) {
    DMAC_CHECK(worker >= 0 && worker < num_workers_);
    stores_[static_cast<size_t>(worker)][Key(bi, bj)] = std::move(block);
  }

  /// Block (bi, bj) from `worker`'s store; null when absent there.
  BlockPtr Get(int worker, int64_t bi, int64_t bj) const {
    const auto& store = stores_[static_cast<size_t>(worker)];
    auto it = store.find(Key(bi, bj));
    return it == store.end() ? nullptr : it->second;
  }

  /// Block (bi, bj) from its owner's store (any replica for Broadcast).
  BlockPtr GetOwned(int64_t bi, int64_t bj) const {
    return Get(OwnerOf(bi, bj), bi, bj);
  }

  /// All blocks in `worker`'s store as (bi, bj, block) triples.
  std::vector<std::tuple<int64_t, int64_t, BlockPtr>> WorkerBlocks(
      int worker) const {
    std::vector<std::tuple<int64_t, int64_t, BlockPtr>> out;
    const auto& store = stores_[static_cast<size_t>(worker)];
    out.reserve(store.size());
    for (const auto& [key, block] : store) {
      out.emplace_back(key / grid_.block_cols(), key % grid_.block_cols(),
                       block);
    }
    return out;
  }

  /// Total payload bytes across all stores (replicas counted).
  int64_t TotalStoredBytes() const {
    int64_t total = 0;
    for (const auto& store : stores_) {
      for (const auto& [key, block] : store) total += block->MemoryBytes();
    }
    return total;
  }

 private:
  int64_t Key(int64_t bi, int64_t bj) const {
    DMAC_CHECK(bi >= 0 && bi < grid_.block_rows());
    DMAC_CHECK(bj >= 0 && bj < grid_.block_cols());
    return bi * grid_.block_cols() + bj;
  }

  BlockGrid grid_;
  Scheme scheme_;
  int num_workers_;
  std::vector<std::unordered_map<int64_t, BlockPtr>> stores_;
};

}  // namespace dmac
