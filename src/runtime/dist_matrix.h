// DistMatrix: a matrix distributed across simulated worker stores.
//
// Two-level partitioning, exactly as in the paper (§5.3): the matrix is cut
// into square blocks (the compute/distribution unit), and the blocks are
// assigned to workers by the node's partition scheme — contiguous block-row
// ranges for Row, block-column ranges for Column, full replication for
// Broadcast. Blocks are shared immutably (shared_ptr), so local extended
// operators (reference/extract) copy pointers, not payloads — only the
// network layer (executor) copies across stores and counts bytes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "fault/checksum.h"
#include "matrix/block.h"
#include "plan/scheme.h"
#include "runtime/owner.h"

namespace dmac {

/// One matrix materialized on the cluster under a partition scheme.
class DistMatrix {
 public:
  using BlockPtr = std::shared_ptr<const Block>;

  DistMatrix(BlockGrid grid, Scheme scheme, int num_workers)
      : grid_(grid),
        scheme_(scheme),
        num_workers_(num_workers),
        stores_(static_cast<size_t>(num_workers)) {}

  const BlockGrid& grid() const { return grid_; }
  Scheme scheme() const { return scheme_; }
  int num_workers() const { return num_workers_; }

  /// Owner of block (bi, bj) under this matrix's scheme. For Broadcast
  /// every worker holds the block; this returns the canonical copy (0).
  int OwnerOf(int64_t bi, int64_t bj) const {
    switch (scheme_) {
      case Scheme::kRow:
        return OwnerOfIndex(bi, grid_.block_rows(), num_workers_);
      case Scheme::kCol:
        return OwnerOfIndex(bj, grid_.block_cols(), num_workers_);
      case Scheme::kBroadcast:
        return 0;
    }
    return 0;
  }

  /// Places a block in `worker`'s store. The entry starts unverifiable
  /// (no checksum) — fault-tolerant runs stamp checksums in batch via
  /// SetChecksums() after the producing step, keeping the fault-free path
  /// free of hashing work.
  void Put(int worker, int64_t bi, int64_t bj, BlockPtr block) {
    DMAC_CHECK(worker >= 0 && worker < num_workers_);
    stores_[static_cast<size_t>(worker)][Key(bi, bj)] = {std::move(block),
                                                         kNoChecksum};
  }

  /// Block (bi, bj) from `worker`'s store; null when absent there.
  BlockPtr Get(int worker, int64_t bi, int64_t bj) const {
    const auto& store = stores_[static_cast<size_t>(worker)];
    auto it = store.find(Key(bi, bj));
    return it == store.end() ? nullptr : it->second.block;
  }

  /// Block (bi, bj) from its owner's store (any replica for Broadcast).
  BlockPtr GetOwned(int64_t bi, int64_t bj) const {
    return Get(OwnerOf(bi, bj), bi, bj);
  }

  /// All blocks in `worker`'s store as (bi, bj, block) triples.
  std::vector<std::tuple<int64_t, int64_t, BlockPtr>> WorkerBlocks(
      int worker) const {
    std::vector<std::tuple<int64_t, int64_t, BlockPtr>> out;
    const auto& store = stores_[static_cast<size_t>(worker)];
    out.reserve(store.size());
    for (const auto& [key, entry] : store) {
      out.emplace_back(key / grid_.block_cols(), key % grid_.block_cols(),
                       entry.block);
    }
    return out;
  }

  /// Keys of `worker`'s store in ascending order. Deterministic iteration
  /// order for fault injection and lineage capture; decompose a key with
  /// bi = key / grid().block_cols(), bj = key % grid().block_cols().
  std::vector<int64_t> SortedWorkerKeys(int worker) const {
    const auto& store = stores_[static_cast<size_t>(worker)];
    std::vector<int64_t> keys;
    keys.reserve(store.size());
    for (const auto& [key, entry] : store) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  /// Total payload bytes across all stores (replicas counted).
  int64_t TotalStoredBytes() const {
    int64_t total = 0;
    for (const auto& store : stores_) {
      for (const auto& [key, entry] : store) {
        total += entry.block->MemoryBytes();
      }
    }
    return total;
  }

  /// Flat store key of block (bi, bj) — the identifier used in lineage
  /// records and checkpoints.
  int64_t Key(int64_t bi, int64_t bj) const {
    DMAC_CHECK(bi >= 0 && bi < grid_.block_rows());
    DMAC_CHECK(bj >= 0 && bj < grid_.block_cols());
    return bi * grid_.block_cols() + bj;
  }

  // --- Integrity (docs/fault_tolerance.md) ---------------------------------

  /// Stamps a checksum on every entry that lacks one. Shared payloads
  /// (Broadcast replicas, referenced blocks) are hashed once.
  void SetChecksums() {
    std::unordered_map<const Block*, uint64_t> cache;
    for (auto& store : stores_) {
      for (auto& [key, entry] : store) {
        if (entry.checksum != kNoChecksum) continue;
        auto [it, inserted] = cache.try_emplace(entry.block.get(), 0);
        if (inserted) it->second = BlockChecksum(*entry.block);
        entry.checksum = it->second;
      }
    }
  }

  /// Stored checksum of (bi, bj) at `worker`; kNoChecksum if absent or
  /// never stamped.
  uint64_t ChecksumAt(int worker, int64_t bi, int64_t bj) const {
    const auto& store = stores_[static_cast<size_t>(worker)];
    auto it = store.find(Key(bi, bj));
    return it == store.end() ? kNoChecksum : it->second.checksum;
  }

  /// Verifies (bi, bj) at `worker`: present, and — when a checksum was
  /// stamped — hashing to it. Missing or mismatching entries are DataLoss
  /// (retryable after lineage recovery); unstamped entries pass.
  Status VerifyAt(int worker, int64_t bi, int64_t bj) const {
    const auto& store = stores_[static_cast<size_t>(worker)];
    auto it = store.find(Key(bi, bj));
    if (it == store.end()) {
      return Status::DataLoss("block (" + std::to_string(bi) + ", " +
                              std::to_string(bj) + ") missing on worker " +
                              std::to_string(worker));
    }
    const Entry& entry = it->second;
    if (entry.checksum != kNoChecksum &&
        BlockChecksum(*entry.block) != entry.checksum) {
      return Status::DataLoss("block (" + std::to_string(bi) + ", " +
                              std::to_string(bj) + ") corrupt on worker " +
                              std::to_string(worker));
    }
    return Status::Ok();
  }

  // --- Injector mutation hooks (fault framework only) ----------------------

  /// Drops entry (bi, bj) from `worker`'s store. True if it was present.
  bool Drop(int worker, int64_t bi, int64_t bj) {
    return stores_[static_cast<size_t>(worker)].erase(Key(bi, bj)) > 0;
  }

  /// Empties `worker`'s store (simulated crash). Returns entries lost.
  int64_t ClearWorker(int worker) {
    auto& store = stores_[static_cast<size_t>(worker)];
    const int64_t lost = static_cast<int64_t>(store.size());
    store.clear();
    return lost;
  }

  /// Swaps the payload of (bi, bj) at `worker` *keeping the old checksum* —
  /// silent corruption, detectable only by VerifyAt. True if present.
  bool ReplacePayload(int worker, int64_t bi, int64_t bj, BlockPtr block) {
    auto& store = stores_[static_cast<size_t>(worker)];
    auto it = store.find(Key(bi, bj));
    if (it == store.end()) return false;
    it->second.block = std::move(block);
    return true;
  }

 private:
  struct Entry {
    BlockPtr block;
    uint64_t checksum = kNoChecksum;
  };

  BlockGrid grid_;
  Scheme scheme_;
  int num_workers_;
  std::vector<std::unordered_map<int64_t, Entry>> stores_;
};

}  // namespace dmac
