// Worker-local block execution engine (paper §5.3, Fig. 4).
//
// Operations on one worker are packaged into independent tasks — one task
// per result block — and drained by a thread pool. Two implementations of
// blocked multiplication are provided:
//
//  * kInPlace (DMac's approach): each task acquires one dense accumulator
//    from the result buffer pool and folds every contributing block product
//    into it in place; no intermediate block is ever materialized.
//  * kBuffer (the traditional approach, the Fig. 7 ablation): all partial
//    block products are materialized first and aggregated afterwards, so
//    peak memory grows with the number of partials.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "governor/cancel_token.h"
#include "matrix/block_ops.h"
#include "matrix/format_cache.h"
#include "runtime/buffer_pool.h"

namespace dmac {

/// Local multiplication mode.
enum class LocalMode { kInPlace, kBuffer };

/// How a worker's tasks reach its threads.
///
/// kQueue is the paper's Fig. 4 design: every task enters one shared FIFO
/// and idle threads pull the next one, so skewed task costs (hub blocks of
/// power-law graphs) balance automatically. kStatic pre-assigns each thread
/// a contiguous chunk of the task list — the ablation baseline that suffers
/// under skew.
enum class TaskScheduling { kQueue, kStatic };

/// One output block a multiplication must produce: C(bi,bj) accumulated
/// over k in [k_begin, k_end).
struct MultiplyTask {
  int64_t bi;
  int64_t bj;
  int64_t k_begin;
  int64_t k_end;
};

/// What a batch of block tasks computes — the label used for their trace
/// spans and per-kind kernel-time histograms (docs/observability.md).
enum class TaskKind { kMultiply, kTranspose, kElementwise, kAggregate };

/// Per-batch options for MultiplyBlocks.
struct MultiplyOptions {
  /// Transpose-fused operand flags (see matrix/kernels.h).
  bool trans_a = false;
  bool trans_b = false;
  /// Route the Aᵀ·B sparse path's CSC→CSR conversions of B blocks through
  /// the engine's FormatCache (plan/reuse.h sets the corresponding
  /// PlanStep hint when the operand is reused). No-op unless a cache is
  /// attached and the pairing is sparse×sparse with trans_a set.
  bool cache_csr_b = false;
};

const char* TaskKindName(TaskKind kind);

/// Executes block tasks on one worker using a shared thread pool.
class LocalEngine {
 public:
  /// Fetches operand block (index pair) → block pointer (never null for
  /// valid indices).
  using BlockFn =
      std::function<std::shared_ptr<const Block>(int64_t, int64_t)>;
  /// Receives a finished result block. Called from worker threads; must be
  /// thread-safe.
  using SinkFn = std::function<void(int64_t, int64_t, Block)>;

  LocalEngine(ThreadPool* pool, BufferPool* buffers, LocalMode mode,
              double density_threshold,
              TaskScheduling scheduling = TaskScheduling::kQueue)
      : pool_(pool),
        buffers_(buffers),
        mode_(mode),
        density_threshold_(density_threshold),
        scheduling_(scheduling) {}

  /// Computes C(bi,bj) = Σ_k op(A)(bi,k)·op(B)(k,bj) for every task. Block
  /// shapes come from the output grid. Blocks denser than
  /// `density_threshold` are emitted dense, sparser ones as CSC.
  ///
  /// trans_a/trans_b apply the transpose-fused operand flags (see
  /// matrix/kernels.h): the BlockFn is still called with *logical* indices
  /// of the effective operand — the caller maps them to stored indices —
  /// and each fetched stored block is consumed through the flagged kernels
  /// without materializing its transpose.
  Status MultiplyBlocks(const BlockGrid& out_grid,
                        const std::vector<MultiplyTask>& tasks,
                        const BlockFn& get_a, const BlockFn& get_b,
                        const SinkFn& sink, bool trans_a = false,
                        bool trans_b = false);

  /// Options form: flags plus the format-conversion cache hint. Large
  /// dense products inside each block task additionally fan their GEMM
  /// tile tasks out over the same pool (GemmParallel in matrix/kernels.h);
  /// the caller-participating loop makes that nesting deadlock-free.
  Status MultiplyBlocks(const BlockGrid& out_grid,
                        const std::vector<MultiplyTask>& tasks,
                        const BlockFn& get_a, const BlockFn& get_b,
                        const SinkFn& sink, const MultiplyOptions& opts);

  /// Runs arbitrary independent block tasks (cell-wise operators, scalar
  /// ops, transposes) through the task queue. `kind` labels the tasks'
  /// trace spans and kernel-time histogram.
  Status RunTasks(const std::vector<std::function<Status()>>& tasks,
                  TaskKind kind = TaskKind::kElementwise);

  /// Sets the simulated worker the following calls run on behalf of (trace
  /// attribution only). The executor calls this; -1 means unattributed.
  /// Call only between batches — Dispatch reads it from pool threads.
  void SetWorkerContext(int worker) { trace_worker_ = worker; }

  /// Attaches the query's cancel token (may be null). Once the token fires,
  /// still-queued tasks are abandoned (never run), running GEMMs stop at
  /// their next tile-task boundary, and each engine call returns the
  /// token's status after its batch drains — the kernel-task poll boundary
  /// of docs/governance.md.
  void SetCancelToken(const CancelToken* token) { cancel_ = token; }

  /// Attaches the CSC→CSR conversion cache consulted when a multiply batch
  /// carries the cache_csr_b hint (may be null: hints are then ignored and
  /// conversions run inline per kernel call). The executor owns the cache
  /// and wires its charge hooks to the query's MemoryBudget.
  void SetFormatCache(FormatCache* cache) { format_cache_ = cache; }

 private:
  Status MultiplyInPlace(const BlockGrid& out_grid,
                         const std::vector<MultiplyTask>& tasks,
                         const BlockFn& get_a, const BlockFn& get_b,
                         const SinkFn& sink, const MultiplyOptions& opts);
  Status MultiplyBuffered(const BlockGrid& out_grid,
                          const std::vector<MultiplyTask>& tasks,
                          const BlockFn& get_a, const BlockFn& get_b,
                          const SinkFn& sink, const MultiplyOptions& opts);

  /// Intra-kernel parallelism context for this batch's dense GEMMs: the
  /// shared pool, the cancel flag, and (when tracing) a per-tile span
  /// wrapper. Valid for the duration of one Dispatch.
  GemmParallel TileParallel() const;

  /// Packing scratch drawing from the engine's buffer pool, so the
  /// governor's accounting sees GEMM panels like any other pooled block.
  GemmScratch PooledScratch();

  /// Dispatches one closure per task (kQueue) or one closure per contiguous
  /// chunk of tasks (kStatic), then waits for completion. When tracing or
  /// metrics are enabled each task additionally records a span, its queue
  /// wait, and its kernel time under `kind`.
  void Dispatch(size_t num_tasks, const std::function<void(size_t)>& run_task,
                TaskKind kind);

  /// Non-ok once the attached token fired; polled after every batch.
  Status CancelStatus() const;

  ThreadPool* pool_;
  BufferPool* buffers_;
  LocalMode mode_;
  double density_threshold_;
  TaskScheduling scheduling_;
  int trace_worker_ = -1;
  const CancelToken* cancel_ = nullptr;
  FormatCache* format_cache_ = nullptr;
};

}  // namespace dmac
