// Epoch-based cluster membership for the simulated cluster
// (docs/fault_tolerance.md).
//
// Tracks per-worker liveness (alive / suspect / dead) behind a simulated
// heartbeat failure detector, and stamps every membership change with a
// monotonically increasing epoch. Transfers carry the sender's epoch at
// send time; the executor fences any arrival from a worker that has since
// been declared dead — the classic zombie-straggler double-write.
//
// Death is permanent: a dead worker never rejoins within a query. Its
// logical partition slot is *hosted* by a deterministic survivor
// (`HostOf`), which keeps the logical block layout — and therefore the
// floating-point summation order and bit identity — frozen at the original
// worker count while timing and byte accounting follow the survivors.
//
// Driver-thread only, like the injector it pairs with: the executor applies
// verdicts between steps and at communication-round boundaries, never from
// pool threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dmac {

/// Liveness of one simulated worker.
///
/// alive --(suspect_after_missed misses)--> suspect
/// suspect --(heartbeat)--> alive
/// suspect --(dead_after_missed misses)--> dead      [terminal]
enum class WorkerState { kAlive, kSuspect, kDead };

/// Failure-detector tuning. All time is simulated seconds.
struct MembershipOptions {
  /// Interval between expected heartbeats; detection latency is
  /// `missed · heartbeat_interval_seconds`.
  double heartbeat_interval_seconds = 0.1;
  /// Consecutive missed heartbeats before alive -> suspect.
  int suspect_after_missed = 2;
  /// Consecutive missed heartbeats before -> dead (>= suspect_after_missed).
  int dead_after_missed = 4;
};

class ClusterMembership {
 public:
  explicit ClusterMembership(int num_workers,
                             MembershipOptions opts = MembershipOptions{});

  int num_workers() const { return static_cast<int>(states_.size()); }

  /// Current membership epoch. Starts at 1 and bumps on *every* state
  /// transition, in either direction — an epoch comparison is therefore a
  /// complete staleness test for anything stamped with one.
  int64_t epoch() const { return epoch_; }

  WorkerState state(int w) const { return states_[static_cast<size_t>(w)]; }
  bool IsDead(int w) const { return state(w) == WorkerState::kDead; }

  /// Workers not declared dead. Suspects count as live: quorum decisions
  /// must not flap on a single missed heartbeat.
  int live_workers() const;
  int dead_workers() const { return num_workers() - live_workers(); }

  /// A heartbeat arrived from `w`: reset its missed count; a suspect
  /// recovers to alive (epoch bump). Dead workers stay dead — a heartbeat
  /// from one is the zombie case the epoch fence exists for.
  void Heartbeat(int w);

  /// One heartbeat interval elapsed without `w` reporting. Returns true
  /// when the state changed (and the epoch bumped).
  bool MissHeartbeat(int w);

  /// Drives the detector for `w` straight to dead (permanent loss), missing
  /// heartbeats until the threshold trips. Returns the simulated detection
  /// latency: missed intervals × heartbeat_interval_seconds. No-op (0.0)
  /// when already dead.
  double DeclareDead(int w);

  /// The worker that hosts logical slot `w`: `w` itself while it lives,
  /// else the first non-dead worker scanning (w+1) % N, (w+2) % N, ...
  /// Deterministic in the membership state alone, so every store and the
  /// executor agree without coordination. Returns `w` unchanged when every
  /// worker is dead (the caller has already failed the quorum check).
  int HostOf(int w) const;

  /// HostOf for every slot — the rebalance map handed to DistMatrix.
  std::vector<int> HostMap() const;

 private:
  void Bump() { ++epoch_; }

  MembershipOptions opts_;
  std::vector<WorkerState> states_;
  std::vector<int> missed_;
  int64_t epoch_ = 1;
};

}  // namespace dmac
