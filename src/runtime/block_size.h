// Automatic block-size choice (paper §5.3, Eq. 2 and Eq. 3).
#pragma once

#include <cstdint>

#include "matrix/shape.h"

namespace dmac {

/// Memory model of Eq. 2: total bytes for an M×N matrix with sparsity S cut
/// into m×m blocks — 4·N·(M/m) column-pointer overhead + 8·M·N·S payload
/// when sparse, 4·M·N when dense.
double EstimatedPartitionedBytes(Shape matrix, double sparsity,
                                 int64_t block_size);

/// Upper bound of Eq. 3: m ≤ sqrt(M·N / (L·K)) — the largest block size
/// that still gives every one of the L threads on each of the K workers at
/// least one task under RMM-style multiplication.
int64_t BlockSizeUpperBound(Shape matrix, int workers, int threads_per_worker);

/// DMac's automatic choice: a value near the Eq. 3 upper bound (large blocks
/// minimize the duplicated Column Start Index overhead of Eq. 2 while
/// preserving full parallelism), clamped to [1, max(M, N)].
int64_t ChooseBlockSize(Shape matrix, int workers, int threads_per_worker);

}  // namespace dmac
