// Worker ownership of block ranges under the one-dimensional schemes.
#pragma once

#include <cstdint>

#include "common/logging.h"

namespace dmac {

/// Owner of index `i` when `count` indices are split into contiguous chunks
/// across `workers` workers. The trailing worker absorbs the remainder.
inline int OwnerOfIndex(int64_t i, int64_t count, int workers) {
  DMAC_CHECK(i >= 0 && i < count);
  const int64_t chunk = (count + workers - 1) / workers;
  const int64_t owner = i / chunk;
  return owner >= workers ? workers - 1 : static_cast<int>(owner);
}

/// [begin, end) index range owned by `worker`.
inline void OwnedRange(int worker, int64_t count, int workers,
                       int64_t* begin, int64_t* end) {
  const int64_t chunk = (count + workers - 1) / workers;
  *begin = chunk * worker;
  *end = *begin + chunk;
  if (*begin > count) *begin = count;
  if (*end > count) *end = count;
}

}  // namespace dmac
