// Simulated message-level network with fault injection
// (docs/fault_tolerance.md).
//
// The executor's accounting network layer, promoted to a message queue:
// every cross-worker transfer becomes a sequence-numbered message carrying
// the sender's membership epoch, buffered at Send and committed at Flush.
// Fault draws (drop / duplicate / reorder / delay / transient partition)
// happen at send time, in the executor's deterministic send order, so one
// (spec.seed, program) pair replays the identical network schedule.
//
// Delivery semantics make every injected fault invisible to results:
//  * drops are retransmitted under a RetryPolicy until delivered
//    (ack + timeout, simulated), charging backoff to fault accounting;
//  * duplicates share the original's sequence number and are deduped at
//    delivery — required, because commit callbacks push into the executor's
//    non-idempotent CPMM/reduce accumulation sites;
//  * reorders are absorbed by sorted (sender, sequence) delivery, which
//    also pins the floating-point summation order to the direct path's;
//  * a stale-epoch arrival from a dead sender is fenced (never committed)
//    and surfaces as retryable kDataLoss so lineage recovery rebuilds the
//    affected step — the zombie-straggler double-write cannot happen.
//
// Driver-thread only: Send and Flush are called from the executor's step
// loop, never from pool threads.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "fault/injector.h"
#include "fault/retry_policy.h"
#include "runtime/membership.h"

namespace dmac {

/// Counters the network layer accumulates across a run; exported into
/// ExecStats and the fault.net.* metrics after execution.
struct NetFaultStats {
  int64_t messages = 0;      ///< transfers routed through the layer
  int64_t retransmits = 0;   ///< dropped sends that were retried
  double retrans_bytes = 0;  ///< bytes moved again by retransmits
  int64_t duplicates = 0;    ///< duplicate deliveries absorbed by dedup
  int64_t reordered = 0;     ///< out-of-order arrivals absorbed by sorting
  double delay_seconds = 0;  ///< simulated latency added by delays/backoff
  int64_t partitions = 0;    ///< transient partitions opened
  int64_t stale_fenced = 0;  ///< dead-sender transfers fenced by epoch
  /// Audit counter: dead-sender transfers *applied* anyway. Structurally
  /// zero — DeclareDead bumps the epoch past anything the victim sent —
  /// and asserted zero by the degraded-mode tests.
  int64_t stale_applied = 0;
};

/// The simulated fault-injecting message layer. Null injector/membership
/// are allowed (no faults drawn / no fencing); the executor only
/// instantiates the layer at all when network faults or deaths can fire.
class SimNetwork {
 public:
  SimNetwork(FaultInjector* injector, ClusterMembership* membership,
             RetryPolicy policy)
      : injector_(injector), membership_(membership), policy_(policy) {}

  /// Queues one transfer of `bytes` from `from` to `to`; `commit` applies
  /// the payload at delivery time. Draws this message's faults immediately.
  void Send(int from, int to, double bytes, std::function<void()> commit);

  /// Delivers every queued message in (sender, sequence) order, deduping
  /// duplicates and fencing stale epochs. Returns kDataLoss naming `what`
  /// when anything was fenced (the caller's retry loop re-derives the lost
  /// data through lineage); Ok otherwise. The queue is empty afterwards.
  [[nodiscard]] Status Flush(const char* what);

  /// True when at least one message is queued.
  [[nodiscard]] bool pending() const { return !messages_.empty(); }

  /// Drops every queued message without delivering it. Called before a
  /// retry attempt so sends left over from a failed attempt cannot leak
  /// into a later step's flush.
  void Clear() { messages_.clear(); }

  const NetFaultStats& stats() const { return stats_; }

 private:
  struct Message {
    int from = 0;
    int to = 0;
    int64_t seq = 0;
    int64_t epoch = 0;
    bool duplicate = false;
    std::function<void()> commit;
  };

  FaultInjector* injector_;      // not owned; may be null
  ClusterMembership* membership_;  // not owned; may be null
  RetryPolicy policy_;
  NetFaultStats stats_;
  std::vector<Message> messages_;
  /// Per-(from, to) channel sequence counters, keyed from * N + to with a
  /// dense map — channel count is num_workers^2, tiny.
  std::vector<int64_t> next_seq_;
  int seq_stride_ = 0;
  /// Transient-partition state: while `partition_budget_ > 0`, every
  /// message involving `partition_victim_` is force-dropped once.
  int partition_victim_ = -1;
  int partition_budget_ = 0;

  int64_t NextSeq(int from, int to);
};

}  // namespace dmac
