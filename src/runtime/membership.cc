#include "runtime/membership.h"

#include <cstddef>

namespace dmac {

ClusterMembership::ClusterMembership(int num_workers, MembershipOptions opts)
    : opts_(opts),
      states_(static_cast<size_t>(num_workers), WorkerState::kAlive),
      missed_(static_cast<size_t>(num_workers), 0) {
  if (opts_.suspect_after_missed < 1) opts_.suspect_after_missed = 1;
  if (opts_.dead_after_missed < opts_.suspect_after_missed) {
    opts_.dead_after_missed = opts_.suspect_after_missed;
  }
}

int ClusterMembership::live_workers() const {
  int live = 0;
  for (WorkerState s : states_) {
    if (s != WorkerState::kDead) ++live;
  }
  return live;
}

void ClusterMembership::Heartbeat(int w) {
  const size_t i = static_cast<size_t>(w);
  if (states_[i] == WorkerState::kDead) return;  // death is permanent
  missed_[i] = 0;
  if (states_[i] == WorkerState::kSuspect) {
    states_[i] = WorkerState::kAlive;
    Bump();
  }
}

bool ClusterMembership::MissHeartbeat(int w) {
  const size_t i = static_cast<size_t>(w);
  if (states_[i] == WorkerState::kDead) return false;
  ++missed_[i];
  if (states_[i] == WorkerState::kAlive &&
      missed_[i] >= opts_.suspect_after_missed) {
    states_[i] = WorkerState::kSuspect;
    Bump();
    return true;
  }
  if (states_[i] == WorkerState::kSuspect &&
      missed_[i] >= opts_.dead_after_missed) {
    states_[i] = WorkerState::kDead;
    Bump();
    return true;
  }
  return false;
}

double ClusterMembership::DeclareDead(int w) {
  const size_t i = static_cast<size_t>(w);
  if (states_[i] == WorkerState::kDead) return 0.0;
  int intervals = 0;
  while (states_[i] != WorkerState::kDead) {
    MissHeartbeat(w);
    ++intervals;
  }
  return intervals * opts_.heartbeat_interval_seconds;
}

int ClusterMembership::HostOf(int w) const {
  const int n = num_workers();
  if (!IsDead(w)) return w;
  for (int d = 1; d < n; ++d) {
    const int candidate = (w + d) % n;
    if (!IsDead(candidate)) return candidate;
  }
  return w;  // all dead: quorum has already failed upstream
}

std::vector<int> ClusterMembership::HostMap() const {
  std::vector<int> map(static_cast<size_t>(num_workers()));
  for (int w = 0; w < num_workers(); ++w) {
    map[static_cast<size_t>(w)] = HostOf(w);
  }
  return map;
}

}  // namespace dmac
