#include "runtime/block_size.h"

#include <algorithm>
#include <cmath>

namespace dmac {

double EstimatedPartitionedBytes(Shape matrix, double sparsity,
                                 int64_t block_size) {
  const double m = static_cast<double>(matrix.rows);
  const double n = static_cast<double>(matrix.cols);
  const double dense = 4.0 * m * n;
  const double block_rows = std::ceil(m / static_cast<double>(block_size));
  const double sparse = 4.0 * n * block_rows + 8.0 * m * n * sparsity;
  return std::min(dense, sparse);
}

int64_t BlockSizeUpperBound(Shape matrix, int workers,
                            int threads_per_worker) {
  const double mn = static_cast<double>(matrix.rows) *
                    static_cast<double>(matrix.cols);
  const double lk =
      static_cast<double>(workers) * static_cast<double>(threads_per_worker);
  const double bound = std::sqrt(mn / lk);
  return std::max<int64_t>(1, static_cast<int64_t>(bound));
}

int64_t ChooseBlockSize(Shape matrix, int workers, int threads_per_worker) {
  const int64_t bound = BlockSizeUpperBound(matrix, workers,
                                            threads_per_worker);
  const int64_t max_extent = std::max(matrix.rows, matrix.cols);
  return std::clamp<int64_t>(bound, 1, std::max<int64_t>(1, max_extent));
}

}  // namespace dmac
