#include "plan/strategy.h"

namespace dmac {

const char* MultAlgoName(MultAlgo a) {
  switch (a) {
    case MultAlgo::kNone:
      return "-";
    case MultAlgo::kRMM1:
      return "RMM1";
    case MultAlgo::kRMM2:
      return "RMM2";
    case MultAlgo::kCPMM:
      return "CPMM";
  }
  return "?";
}

std::string Strategy::ToString() const {
  std::string s = "{";
  for (size_t i = 0; i < input_schemes.size(); ++i) {
    if (i > 0) s += ",";
    s += SchemeChar(input_schemes[i]);
  }
  s += "}->";
  s += SchemeSetToString(out_schemes);
  if (mult_algo != MultAlgo::kNone) {
    s += " (";
    s += MultAlgoName(mult_algo);
    s += ")";
  }
  return s;
}

std::vector<Strategy> CandidateStrategies(const Operator& op) {
  std::vector<Strategy> out;
  switch (op.kind) {
    case OpKind::kMultiply: {
      // RMM1: A broadcast, B column-partitioned → C column-partitioned.
      Strategy rmm1;
      rmm1.input_schemes = {Scheme::kBroadcast, Scheme::kCol};
      rmm1.out_schemes = SchemeBit(Scheme::kCol);
      rmm1.mult_algo = MultAlgo::kRMM1;
      out.push_back(rmm1);
      // RMM2: A row-partitioned, B broadcast → C row-partitioned.
      Strategy rmm2;
      rmm2.input_schemes = {Scheme::kRow, Scheme::kBroadcast};
      rmm2.out_schemes = SchemeBit(Scheme::kRow);
      rmm2.mult_algo = MultAlgo::kRMM2;
      out.push_back(rmm2);
      // CPMM: A column-partitioned, B row-partitioned → C row or column
      // partitioned (flexible; Heuristic 2 collapses it on demand).
      Strategy cpmm;
      cpmm.input_schemes = {Scheme::kCol, Scheme::kRow};
      cpmm.out_schemes = SchemeBit(Scheme::kRow) | SchemeBit(Scheme::kCol);
      cpmm.mult_algo = MultAlgo::kCPMM;
      cpmm.output_comm = true;
      out.push_back(cpmm);
      break;
    }
    case OpKind::kAdd:
    case OpKind::kSubtract:
    case OpKind::kCellMultiply:
    case OpKind::kCellDivide: {
      for (Scheme s : {Scheme::kRow, Scheme::kCol, Scheme::kBroadcast}) {
        Strategy st;
        st.input_schemes = {s, s};
        st.out_schemes = SchemeBit(s);
        out.push_back(st);
      }
      break;
    }
    case OpKind::kScalarMultiply:
    case OpKind::kScalarAdd:
    case OpKind::kCellUnary: {
      for (Scheme s : {Scheme::kRow, Scheme::kCol, Scheme::kBroadcast}) {
        Strategy st;
        st.input_schemes = {s};
        st.out_schemes = SchemeBit(s);
        out.push_back(st);
      }
      break;
    }
    case OpKind::kRowSums:
    case OpKind::kColSums: {
      // The aggregation axis decides communication: summing along the
      // partitioned axis is local; summing across it leaves every worker
      // with a partial result vector that must be combined (an aggregation
      // shuffle costing N·|out|, like CPMM's output).
      const bool rows = op.kind == OpKind::kRowSums;
      const Scheme aligned = rows ? Scheme::kRow : Scheme::kCol;
      const Scheme crossed = rows ? Scheme::kCol : Scheme::kRow;
      Strategy local;
      local.input_schemes = {aligned};
      local.out_schemes = SchemeBit(aligned);
      out.push_back(local);
      Strategy replicated;
      replicated.input_schemes = {Scheme::kBroadcast};
      replicated.out_schemes = SchemeBit(Scheme::kBroadcast);
      out.push_back(replicated);
      Strategy aggregate;
      aggregate.input_schemes = {crossed};
      aggregate.out_schemes =
          SchemeBit(Scheme::kRow) | SchemeBit(Scheme::kCol);
      aggregate.output_comm = true;
      out.push_back(aggregate);
      break;
    }
    case OpKind::kReduce: {
      for (Scheme s : {Scheme::kRow, Scheme::kCol, Scheme::kBroadcast}) {
        Strategy st;
        st.input_schemes = {s};
        out.push_back(st);
      }
      break;
    }
    case OpKind::kLoad: {
      // Reading from storage communicates: |A| to establish a row/column
      // partition, N·|A| for a broadcast (the planner prices this).
      for (Scheme s : {Scheme::kRow, Scheme::kCol, Scheme::kBroadcast}) {
        Strategy st;
        st.out_schemes = SchemeBit(s);
        out.push_back(st);
      }
      break;
    }
    case OpKind::kRandom: {
      // Deterministically seeded, so every worker can generate its share —
      // or all of it — without any data movement.
      for (Scheme s : {Scheme::kRow, Scheme::kCol, Scheme::kBroadcast}) {
        Strategy st;
        st.out_schemes = SchemeBit(s);
        out.push_back(st);
      }
      break;
    }
    case OpKind::kScalarAssign:
      break;
  }
  return out;
}

}  // namespace dmac
