#include "plan/plan.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace dmac {

const char* StepKindName(StepKind k) {
  switch (k) {
    case StepKind::kLoad:
      return "load";
    case StepKind::kRandom:
      return "random";
    case StepKind::kCompute:
      return "compute";
    case StepKind::kPartition:
      return "partition";
    case StepKind::kBroadcast:
      return "broadcast";
    case StepKind::kTranspose:
      return "transpose";
    case StepKind::kExtract:
      return "extract";
    case StepKind::kReduce:
      return "reduce";
    case StepKind::kScalarAssign:
      return "scalar-assign";
  }
  return "?";
}

namespace {

void CollectScalarRefs(const ScalarExprPtr& e,
                       std::unordered_set<std::string>* refs) {
  if (e == nullptr) return;
  if (e->kind == ScalarExpr::Kind::kVarRef) refs->insert(e->name);
  CollectScalarRefs(e->lhs, refs);
  CollectScalarRefs(e->rhs, refs);
}

}  // namespace

Status Plan::Finalize() {
  const size_t n = steps.size();

  // Producer maps.
  std::unordered_map<int, size_t> node_producer;       // node id -> step idx
  std::unordered_map<std::string, size_t> scalar_producer;
  for (size_t i = 0; i < n; ++i) {
    if (steps[i].output >= 0) node_producer[steps[i].output] = i;
    if (!steps[i].scalar_out.empty()) {
      scalar_producer[steps[i].scalar_out] = i;
    }
  }

  // Dependency edges.
  std::vector<std::vector<size_t>> consumers(n);
  std::vector<int> pending(n, 0);
  for (size_t i = 0; i < n; ++i) {
    std::unordered_set<size_t> deps;
    for (int node : steps[i].inputs) {
      auto it = node_producer.find(node);
      if (it == node_producer.end()) {
        return Status::Internal("plan node " + std::to_string(node) +
                                " has no producer step");
      }
      if (it->second != i) deps.insert(it->second);
    }
    std::unordered_set<std::string> scalar_refs;
    CollectScalarRefs(steps[i].scalar, &scalar_refs);
    for (const std::string& s : scalar_refs) {
      auto it = scalar_producer.find(s);
      if (it == scalar_producer.end()) {
        return Status::Internal("scalar " + s + " has no producer step");
      }
      if (it->second != i) deps.insert(it->second);
    }
    for (size_t d : deps) {
      consumers[d].push_back(i);
      ++pending[i];
    }
  }

  // Stable Kahn topological order.
  std::vector<size_t> order;
  order.reserve(n);
  std::vector<bool> emitted(n, false);
  for (size_t produced = 0; produced < n; ++produced) {
    size_t pick = n;
    for (size_t i = 0; i < n; ++i) {
      if (!emitted[i] && pending[i] == 0) {
        pick = i;
        break;
      }
    }
    if (pick == n) return Status::Internal("cycle in plan step graph");
    emitted[pick] = true;
    for (size_t c : consumers[pick]) --pending[c];
    order.push_back(pick);
  }

  // Renumber steps in topological order; remap producer references.
  std::vector<PlanStep> ordered;
  ordered.reserve(n);
  for (size_t idx : order) ordered.push_back(std::move(steps[idx]));
  steps = std::move(ordered);
  for (size_t i = 0; i < n; ++i) steps[i].id = static_cast<int>(i);

  // Stage assignment: a step starts a new stage iff it communicates; all
  // non-communicating successors join their producers' stage (§5.2).
  std::unordered_map<int, int> node_stage;      // node id -> stage
  std::unordered_map<std::string, int> scalar_stage;
  num_stages = 0;
  total_comm_bytes = 0;
  for (PlanStep& step : steps) {
    int base = 0;
    for (int node : step.inputs) {
      auto it = node_stage.find(node);
      DMAC_CHECK(it != node_stage.end());
      base = std::max(base, it->second);
    }
    std::unordered_set<std::string> scalar_refs;
    CollectScalarRefs(step.scalar, &scalar_refs);
    for (const std::string& s : scalar_refs) {
      auto it = scalar_stage.find(s);
      DMAC_CHECK(it != scalar_stage.end());
      base = std::max(base, it->second);
    }
    step.stage = std::max(1, base + (step.Communicates() ? 1 : 0));
    if (step.output >= 0) {
      node_stage[step.output] = step.stage;
      nodes[static_cast<size_t>(step.output)].stage = step.stage;
      nodes[static_cast<size_t>(step.output)].producer_step = step.id;
    }
    if (!step.scalar_out.empty()) scalar_stage[step.scalar_out] = step.stage;
    num_stages = std::max(num_stages, step.stage);
    total_comm_bytes += step.comm_bytes;
  }

  // Collapse any still-flexible node scheme (unconsumed CPMM outputs default
  // to Row).
  for (PlanNode& node : nodes) {
    if (!SchemeSetIsSingle(node.schemes) && node.schemes != kNoSchemes) {
      node.schemes = SchemeBit(SchemeSetFirst(node.schemes));
    }
  }
  return Status::Ok();
}

std::string Plan::ToString() const {
  std::string out;
  int current_stage = -1;
  for (const PlanStep& step : steps) {
    if (step.stage != current_stage) {
      current_stage = step.stage;
      out += "=== Stage " + std::to_string(current_stage) + " ===\n";
    }
    out += "  s" + std::to_string(step.id) + ": ";
    if (step.output >= 0) {
      out += nodes[static_cast<size_t>(step.output)].ToString() + " <- ";
    } else if (!step.scalar_out.empty()) {
      out += step.scalar_out + " <- ";
    }
    out += StepKindName(step.kind);
    if (step.kind == StepKind::kCompute) {
      out += "[";
      out += OpKindName(step.op_kind);
      if (step.mult_algo != MultAlgo::kNone) {
        out += ":";
        out += MultAlgoName(step.mult_algo);
      }
      if (step.trans_a) out += ":Ta";
      if (step.trans_b) out += ":Tb";
      if (step.cache_csr_b) out += ":CacheB";
      out += "]";
    }
    if (step.kind == StepKind::kReduce) {
      out += "[";
      out += ReduceName(step.reduce);
      out += "]";
    }
    for (size_t i = 0; i < step.inputs.size(); ++i) {
      out += (i == 0 ? " " : ", ");
      out += nodes[static_cast<size_t>(step.inputs[i])].ToString();
    }
    if (!step.source.empty()) out += " src=" + step.source;
    if (step.comm_bytes > 0) {
      out += " comm=" + std::to_string(static_cast<int64_t>(step.comm_bytes));
    }
    out += "\n";
  }
  out += "total_comm_bytes=" +
         std::to_string(static_cast<int64_t>(total_comm_bytes)) +
         " stages=" + std::to_string(num_stages) + "\n";
  return out;
}

}  // namespace dmac
