// Transpose fusion (the planner's kernel-flag rewrite).
//
// A kTranspose step materializes a full transposed copy of its source
// matrix, but when every consumer of that copy is a multiply the copy is
// pure overhead: the multiply kernels are transpose-aware (matrix/kernels.h)
// and can read the source in its stored layout through a TransA/TransB
// operand flag. This pass folds such steps into their consumers' flags and
// deletes the step and its output node — removing the transpose's compute,
// its memory footprint, and its block tasks from the plan.
//
// A transpose folds only when it is safe to do so:
//   * every consumer of its output node is a kCompute multiply step,
//   * the output is not a program output and carries no checkpoint hint,
//   * source and output schemes are single and opposite (Row↔Col, b→b), so
//     the flagged operand's block-ownership ranges still line up with the
//     multiply strategy's expectations.
// Folding is applied to a fixed point, so chains of transposes cancel
// (flags toggle: a double transpose leaves no flag).
//
// Runs between plan construction and Plan::Finalize(); surviving node/step
// ids are compacted and remapped, and Finalize re-derives producers,
// ordering, and stages.
#pragma once

#include "plan/plan.h"

namespace dmac {

/// Outcome of a fusion run (for logs and tests).
struct TransposeFusionResult {
  int fused_steps = 0;  // kTranspose steps deleted
};

/// Folds eligible kTranspose steps into their consuming multiplies'
/// trans_a/trans_b flags, in place. The plan must not be finalized yet
/// (node ids must equal node indices; step order is irrelevant).
TransposeFusionResult FuseTransposes(Plan* plan);

}  // namespace dmac
