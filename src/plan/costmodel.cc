#include "plan/costmodel.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

namespace dmac {

namespace {

// ---- minimal JSON reader -------------------------------------------------
// Self-contained like the trace validator's (obs/trace_check.cc): the two
// calibration schemas are flat, so a small recursive-descent parser keeps
// this layer free of external dependencies.

struct Json {
  enum Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;

  const Json* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  Result<Json> Parse() {
    DMAC_ASSIGN_OR_RETURN(Json v, Value());
    SkipSpace();
    if (p_ != end_) return Err("trailing characters");
    return v;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::Invalid("calibration JSON: " + what);
  }

  void SkipSpace() {
    while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }

  bool Consume(char c) {
    SkipSpace();
    if (p_ == end_ || *p_ != c) return false;
    ++p_;
    return true;
  }

  Result<Json> Value() {
    SkipSpace();
    if (p_ == end_) return Err("unexpected end of input");
    switch (*p_) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
      case 'f':
        return Boolean();
      case 'n':
        return Null();
      default:
        return Number();
    }
  }

  Result<Json> Object() {
    ++p_;  // '{'
    Json v;
    v.type = Json::kObject;
    if (Consume('}')) return v;
    while (true) {
      SkipSpace();
      if (p_ == end_ || *p_ != '"') return Err("expected object key");
      DMAC_ASSIGN_OR_RETURN(Json key, String());
      if (!Consume(':')) return Err("expected ':'");
      DMAC_ASSIGN_OR_RETURN(Json val, Value());
      v.object.emplace_back(std::move(key.string), std::move(val));
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return Err("expected ',' or '}'");
    }
  }

  Result<Json> Array() {
    ++p_;  // '['
    Json v;
    v.type = Json::kArray;
    if (Consume(']')) return v;
    while (true) {
      DMAC_ASSIGN_OR_RETURN(Json elem, Value());
      v.array.push_back(std::move(elem));
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return Err("expected ',' or ']'");
    }
  }

  Result<Json> String() {
    ++p_;  // '"'
    Json v;
    v.type = Json::kString;
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) break;
        switch (*p_) {
          case 'n': v.string.push_back('\n'); break;
          case 't': v.string.push_back('\t'); break;
          case 'u':
            // Calibration documents are ASCII; skip the four hex digits.
            for (int i = 0; i < 4 && p_ + 1 != end_; ++i) ++p_;
            v.string.push_back('?');
            break;
          default: v.string.push_back(*p_); break;
        }
        ++p_;
      } else {
        v.string.push_back(*p_++);
      }
    }
    if (p_ == end_) return Err("unterminated string");
    ++p_;  // closing '"'
    return v;
  }

  Result<Json> Boolean() {
    Json v;
    v.type = Json::kBool;
    if (end_ - p_ >= 4 && std::equal(p_, p_ + 4, "true")) {
      v.boolean = true;
      p_ += 4;
      return v;
    }
    if (end_ - p_ >= 5 && std::equal(p_, p_ + 5, "false")) {
      v.boolean = false;
      p_ += 5;
      return v;
    }
    return Err("bad literal");
  }

  Result<Json> Null() {
    if (end_ - p_ >= 4 && std::equal(p_, p_ + 4, "null")) {
      p_ += 4;
      Json v;
      return v;
    }
    return Err("bad literal");
  }

  Result<Json> Number() {
    const char* start = p_;
    while (p_ != end_ &&
           (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '-' ||
            *p_ == '+' || *p_ == '.' || *p_ == 'e' || *p_ == 'E')) {
      ++p_;
    }
    if (start == p_) return Err("expected a value");
    Json v;
    v.type = Json::kNumber;
    try {
      v.number = std::stod(std::string(start, p_));
    } catch (...) {
      return Err("bad number");
    }
    return v;
  }

  const char* p_;
  const char* end_;
};

double NumberField(const Json& entry, const std::string& key) {
  const Json* v = entry.Find(key);
  return (v != nullptr && v->type == Json::kNumber) ? v->number : 0;
}

std::string StringField(const Json& entry, const std::string& key) {
  const Json* v = entry.Find(key);
  return (v != nullptr && v->type == Json::kString) ? v->string : "";
}

}  // namespace

// ---- CalibrationTable ----------------------------------------------------

CalibrationTable CalibrationTable::Builtin() {
  // The shape of a BENCH_kernels.json sweep at block size 256, scaled down
  // ~2x so uncalibrated estimates err toward overpredicting compute.
  CalibrationTable t;
  t.source_ = "builtin";
  const int64_t bs = 256;
  auto gemm = [&](const char* rep, const char* trans, double gflops) {
    t.Add("gemm", rep, trans, bs, 1, {gflops, gflops * 1e9 / 8});
  };
  for (const char* trans : {"nn", "nt", "tn", "tt"}) {
    gemm("dense_dense", trans, 8.0);
    gemm("dense_sparse", trans, 1.0);
    gemm("sparse_dense", trans, 1.0);
    gemm("sparse_sparse", trans, 0.3);
  }
  auto vec = [&](const char* rep, double bps) {
    t.Add("vec", rep, "", bs, 1, {0, bps});
  };
  vec("add_accumulate", 20e9);
  vec("cell_unary_abs", 20e9);
  vec("sum", 8e9);
  vec("sum_squares", 8e9);
  vec("row_sums", 12e9);
  vec("col_sums", 12e9);
  return t;
}

void CalibrationTable::Add(const std::string& kind,
                           const std::string& representation,
                           const std::string& trans, int64_t block_size,
                           int threads, CalibrationRate rate) {
  entries_.push_back({kind, representation, trans,
                      std::max<int64_t>(block_size, 1), std::max(threads, 1),
                      rate});
}

CalibrationRate CalibrationTable::Lookup(const std::string& kind,
                                         const std::string& representation,
                                         const std::string& trans,
                                         int64_t block_size) const {
  const double target = std::log2(static_cast<double>(
      std::max<int64_t>(block_size > 0 ? block_size : 256, 1)));
  const Entry* best = nullptr;
  // (representation match, trans match) dominate; nearest block size and
  // fewest threads (per-core rates compose with the parallelism divisor)
  // break ties.
  double best_score = -1;
  for (const Entry& e : entries_) {
    if (e.kind != kind) continue;
    const double bs_dist =
        std::fabs(std::log2(static_cast<double>(e.block_size)) - target);
    double score = 0;
    if (e.representation == representation) score += 1000;
    if (e.trans == trans) score += 100;
    score -= bs_dist * 10;
    score -= e.threads;
    if (best == nullptr || score > best_score) {
      best = &e;
      best_score = score;
    }
  }
  return best != nullptr ? best->rate : CalibrationRate{};
}

Result<CalibrationTable> CalibrationTable::Parse(const std::string& json,
                                                 const std::string& source) {
  DMAC_ASSIGN_OR_RETURN(Json doc, JsonParser(json).Parse());
  if (doc.type != Json::kObject) {
    return Status::Invalid("calibration JSON: not an object");
  }
  const std::string schema = StringField(doc, "schema");
  if (schema != "dmac-calibration-v1" && schema != "dmac-kernel-bench-v2") {
    return Status::Invalid("calibration JSON: unknown schema '" +
                                   schema + "'");
  }
  const Json* entries = doc.Find("entries");
  if (entries == nullptr || entries->type != Json::kArray ||
      entries->array.empty()) {
    return Status::Invalid("calibration JSON: no entries");
  }
  CalibrationTable t;
  t.source_ = source;
  for (const Json& e : entries->array) {
    if (e.type != Json::kObject) {
      return Status::Invalid("calibration JSON: entry not an object");
    }
    const std::string kind = StringField(e, "kind");
    if (kind.empty()) {
      return Status::Invalid("calibration JSON: entry without kind");
    }
    // The seed-loop reference rows document the speedup only; the engine
    // never runs that kernel.
    if (kind == "gemm_seed_reference") continue;
    t.Add(kind, StringField(e, "representation"), StringField(e, "trans"),
          static_cast<int64_t>(NumberField(e, "block_size")),
          static_cast<int>(NumberField(e, "threads")),
          {NumberField(e, "gflops"), NumberField(e, "bytes_per_second")});
  }
  if (t.entries_.empty()) {
    return Status::Invalid("calibration JSON: no usable entries");
  }
  return t;
}

Result<CalibrationTable> CalibrationTable::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr,
                 "[costmodel] warning: calibration file '%s' unreadable; "
                 "falling back to paper-style byte costs\n",
                 path.c_str());
    CalibrationTable t;
    t.byte_cost_only_ = true;
    t.source_ = "byte-cost";
    return t;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str(), path);
}

// ---- CostModel -----------------------------------------------------------

CostModel::CostModel(CalibrationTable table, CostModelOptions options)
    : table_(std::move(table)), options_(std::move(options)) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.threads_per_worker < 1) options_.threads_per_worker = 1;
}

double CostModel::StreamSeconds(const std::string& representation,
                                double bytes) const {
  const CalibrationRate rate =
      table_.Lookup("vec", representation, "", options_.block_size);
  if (rate.bytes_per_second <= 0) return 0;
  const double cores = static_cast<double>(options_.num_workers) *
                       static_cast<double>(options_.threads_per_worker);
  return bytes / rate.bytes_per_second / cores;
}

double CostModel::MultiplySeconds(const Plan& plan,
                                  const PlanStep& step) const {
  if (step.inputs.size() != 2) return 0;
  MatrixStats a = plan.nodes[static_cast<size_t>(step.inputs[0])].stats;
  MatrixStats b = plan.nodes[static_cast<size_t>(step.inputs[1])].stats;
  if (step.trans_a) a = a.Transposed();
  if (step.trans_b) b = b.Transposed();
  const double m = static_cast<double>(a.shape.rows);
  const double k = static_cast<double>(a.shape.cols);
  const double n = static_cast<double>(b.shape.cols);
  const double flops =
      std::max(2.0 * m * k * n * a.sparsity * b.sparsity, 1.0);

  const auto rep = [&](double density) {
    return density >= options_.density_threshold ? "dense" : "sparse";
  };
  const std::string representation =
      std::string(rep(a.sparsity)) + "_" + rep(b.sparsity);
  const std::string trans =
      std::string(step.trans_a ? "t" : "n") + (step.trans_b ? "t" : "n");
  const CalibrationRate rate =
      table_.Lookup("gemm", representation, trans, options_.block_size);
  const double cores = static_cast<double>(options_.num_workers) *
                       static_cast<double>(options_.threads_per_worker);
  if (rate.gflops <= 0) {
    // No multiply rate: charge the operands + result as a stream.
    return StreamSeconds("add_accumulate",
                         a.EstimatedBytes() + b.EstimatedBytes());
  }
  return flops / (rate.gflops * 1e9) / cores;
}

StepCost CostModel::EstimateStep(const Plan& plan,
                                 const PlanStep& step) const {
  StepCost cost;
  cost.comm_bytes = step.comm_bytes;
  cost.comm_seconds =
      step.comm_bytes / options_.network.bandwidth_bytes_per_sec +
      (step.Communicates() ? options_.network.latency_sec : 0.0);
  if (table_.byte_cost_only()) return cost;

  const auto node_bytes = [&](int id) {
    return id >= 0 ? plan.nodes[static_cast<size_t>(id)].stats.EstimatedBytes()
                   : 0.0;
  };
  const auto inputs_bytes = [&] {
    double total = 0;
    for (int id : step.inputs) total += node_bytes(id);
    return total;
  };

  switch (step.kind) {
    case StepKind::kCompute:
      switch (step.op_kind) {
        case OpKind::kMultiply:
          cost.compute_seconds = MultiplySeconds(plan, step);
          break;
        case OpKind::kRowSums:
          cost.compute_seconds = StreamSeconds("row_sums", inputs_bytes());
          break;
        case OpKind::kColSums:
          cost.compute_seconds = StreamSeconds("col_sums", inputs_bytes());
          break;
        case OpKind::kCellUnary:
          cost.compute_seconds =
              StreamSeconds("cell_unary_abs", inputs_bytes());
          break;
        default:  // cell-wise binary and scalar ops: one streaming pass
          cost.compute_seconds = StreamSeconds(
              "add_accumulate", inputs_bytes() + node_bytes(step.output));
          break;
      }
      break;
    case StepKind::kTranspose:
    case StepKind::kExtract:
      cost.compute_seconds = StreamSeconds("add_accumulate", inputs_bytes());
      break;
    case StepKind::kReduce:
      cost.compute_seconds = StreamSeconds(
          step.reduce == ReduceKind::kNorm2 ? "sum_squares" : "sum",
          inputs_bytes());
      break;
    case StepKind::kLoad:
    case StepKind::kRandom:
      // Materialization: one streaming write of the produced matrix (the
      // distribution cost is already in comm_bytes for loads).
      cost.compute_seconds =
          StreamSeconds("add_accumulate", node_bytes(step.output));
      break;
    case StepKind::kPartition:
    case StepKind::kBroadcast:
    case StepKind::kScalarAssign:
      break;  // pure communication / driver-side
  }
  return cost;
}

PlanCost CostModel::EstimatePlan(const Plan& plan) const {
  PlanCost total;
  total.steps.reserve(plan.steps.size());
  for (const PlanStep& step : plan.steps) {
    StepCost c = EstimateStep(plan, step);
    total.compute_seconds += c.compute_seconds;
    total.comm_seconds += c.comm_seconds;
    total.comm_bytes += c.comm_bytes;
    total.steps.push_back(c);
  }
  return total;
}

}  // namespace dmac
