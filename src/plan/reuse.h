// Operand-reuse marking (the planner's format-conversion-cache hint pass).
//
// The Gustavson Aᵀ·B sparse kernel (matrix/spgemm.h) needs its B operand
// row-major, which costs a one-time CSC→CSR conversion per block. When the
// plan consumes the same B node from several multiply steps — an iterative
// program's constant matrix (GNMF's V) is read twice per iteration — the
// conversion should be paid once and cached, not once per step. This pass
// sets PlanStep::cache_csr_b on exactly those multiplies; the engine routes
// their conversions through its FormatCache (matrix/format_cache.h) and
// the analysis footprint pass (plan/footprint.h) accounts for the resident
// converted copy so a governed memory budget sees it coming.
//
// Operands consumed by a single flagged multiply stay unmarked: their
// conversion runs inline inside the kernel (still Gustavson, still O(nnz))
// and its memory is transient scratch. Within-step block reuse — every
// output block-row re-reading the same B block — is a runtime property of
// the block grid; once a step is marked, the engine's cache captures that
// reuse too.
//
// Only multiplies whose operands are estimated sparse (size_estimator
// density below the runtime's sparse-storage cutoff) qualify: the engine
// consults the cache solely on the sparse×sparse kernel path, and marking a
// dense product would charge the footprint estimate for a conversion that
// never happens.
//
// Runs after transpose fusion (the trans_a/trans_b flags must be final)
// and is indifferent to finalization — it only reads step inputs.
#pragma once

#include "plan/plan.h"

namespace dmac {

/// Outcome of a reuse-marking run (for logs and tests).
struct ReuseMarkResult {
  int marked_steps = 0;  // multiplies that will consult the FormatCache
};

/// Sets PlanStep::cache_csr_b on every Aᵀ·B multiply (trans_a set,
/// trans_b clear) whose B input node is consumed by at least two plan
/// steps, in place.
ReuseMarkResult MarkOperandReuse(Plan* plan);

}  // namespace dmac
