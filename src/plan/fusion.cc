#include "plan/fusion.h"

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace dmac {

namespace {

bool IsMultiply(const PlanStep& step) {
  return step.kind == StepKind::kCompute && step.op_kind == OpKind::kMultiply;
}

}  // namespace

TransposeFusionResult FuseTransposes(Plan* plan) {
  TransposeFusionResult result;
  std::vector<bool> step_dead(plan->steps.size(), false);
  std::vector<bool> node_dead(plan->nodes.size(), false);

  // Nodes the gather phase reads directly; never fold their producers.
  std::vector<bool> is_output(plan->nodes.size(), false);
  for (const PlanOutput& out : plan->outputs) {
    if (out.node >= 0) is_output[static_cast<size_t>(out.node)] = true;
  }

  // Fold to a fixed point: a fold can turn a transpose-of-transpose chain
  // fusible one link at a time (flags toggle, so chains cancel).
  bool changed = true;
  while (changed) {
    changed = false;

    // Consumer/producer lists over the live steps (rebuilt per round —
    // folds retarget inputs). A node can have several producer steps: the
    // planner re-derives zero-comm transposes per stage instead of keeping
    // them resident, so one transposed node may be produced by multiple
    // identical transpose steps.
    std::unordered_map<int, std::vector<size_t>> consumers;
    std::unordered_map<int, std::vector<size_t>> producers;
    for (size_t s = 0; s < plan->steps.size(); ++s) {
      if (step_dead[s]) continue;
      for (int node : plan->steps[s].inputs) consumers[node].push_back(s);
      if (plan->steps[s].output >= 0) {
        producers[plan->steps[s].output].push_back(s);
      }
    }

    for (size_t t = 0; t < plan->steps.size(); ++t) {
      if (step_dead[t]) continue;
      PlanStep& trans = plan->steps[t];
      if (trans.kind != StepKind::kTranspose) continue;
      if (trans.comm_bytes != 0) continue;  // never trade away comm math
      DMAC_CHECK(trans.inputs.size() == 1 && trans.output >= 0);
      const int out_id = trans.output;
      const int src_id = trans.inputs[0];
      if (src_id == out_id) continue;
      const PlanNode& out_node = plan->nodes[static_cast<size_t>(out_id)];
      const PlanNode& src_node = plan->nodes[static_cast<size_t>(src_id)];

      if (is_output[static_cast<size_t>(out_id)]) continue;
      if (out_node.checkpoint_hint) continue;
      // Scheme alignment: the consumer expects `out` under some scheme S;
      // reading src through a flag supplies it iff src is stored under
      // OppositeScheme(S). The transpose itself guarantees exactly that
      // relation between its input and output — but only when both are
      // settled single schemes.
      if (!SchemeSetIsSingle(out_node.schemes) ||
          !SchemeSetIsSingle(src_node.schemes)) {
        continue;
      }
      if (src_node.scheme() != OppositeScheme(out_node.scheme())) continue;

      const auto it = consumers.find(out_id);
      bool all_multiplies = it != consumers.end();
      if (all_multiplies) {
        for (size_t c : it->second) {
          if (c == t || !IsMultiply(plan->steps[c])) {
            all_multiplies = false;
            break;
          }
        }
      }
      if (!all_multiplies) continue;

      // Every producer of `out` must be an identical re-derivation (same
      // source, same zero-comm transpose) — then the node can vanish and
      // all its producer steps die together.
      const auto pit = producers.find(out_id);
      DMAC_CHECK(pit != producers.end());
      bool uniform_producers = true;
      for (size_t p : pit->second) {
        const PlanStep& ps = plan->steps[p];
        if (ps.kind != StepKind::kTranspose || ps.comm_bytes != 0 ||
            ps.inputs.size() != 1 || ps.inputs[0] != src_id) {
          uniform_producers = false;
          break;
        }
      }
      if (!uniform_producers) continue;

      // Fold: retarget every consumer input from `out` to `src`, toggling
      // the positional flag (toggle, not set — double transposes cancel).
      for (size_t c : it->second) {
        PlanStep& mult = plan->steps[c];
        DMAC_CHECK(mult.inputs.size() == 2);
        if (mult.inputs[0] == out_id) {
          mult.inputs[0] = src_id;
          mult.trans_a = !mult.trans_a;
        }
        if (mult.inputs[1] == out_id) {
          mult.inputs[1] = src_id;
          mult.trans_b = !mult.trans_b;
        }
      }
      for (size_t p : pit->second) {
        step_dead[p] = true;
        ++result.fused_steps;
      }
      node_dead[static_cast<size_t>(out_id)] = true;
      changed = true;
    }
  }
  if (result.fused_steps == 0) return result;

  // Compact nodes, preserving id == index; remap references.
  std::vector<int> node_remap(plan->nodes.size(), -1);
  std::vector<PlanNode> live_nodes;
  live_nodes.reserve(plan->nodes.size());
  for (size_t i = 0; i < plan->nodes.size(); ++i) {
    if (node_dead[i]) continue;
    node_remap[i] = static_cast<int>(live_nodes.size());
    live_nodes.push_back(plan->nodes[i]);
    live_nodes.back().id = node_remap[i];
  }
  plan->nodes = std::move(live_nodes);

  std::vector<PlanStep> live_steps;
  live_steps.reserve(plan->steps.size());
  for (size_t s = 0; s < plan->steps.size(); ++s) {
    if (step_dead[s]) continue;
    PlanStep step = std::move(plan->steps[s]);
    for (int& node : step.inputs) {
      node = node_remap[static_cast<size_t>(node)];
      DMAC_CHECK(node >= 0);
    }
    if (step.output >= 0) {
      step.output = node_remap[static_cast<size_t>(step.output)];
      DMAC_CHECK(step.output >= 0);
    }
    live_steps.push_back(std::move(step));
  }
  plan->steps = std::move(live_steps);
  for (size_t s = 0; s < plan->steps.size(); ++s) {
    plan->steps[s].id = static_cast<int>(s);
  }

  for (PlanOutput& out : plan->outputs) {
    if (out.node >= 0) {
      out.node = node_remap[static_cast<size_t>(out.node)];
      DMAC_CHECK(out.node >= 0);
    }
  }
  return result;
}

}  // namespace dmac
