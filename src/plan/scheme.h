// Partition schemes and the four scheme predicates (paper §3.1, Table 1).
#pragma once

#include <cstdint>
#include <string>

namespace dmac {

/// The three one-dimensional partition schemes DMac supports.
///
/// Row/Column place all elements of one row/column in the same partition;
/// Broadcast replicates every element on every worker (the paper treats it
/// as a partition scheme for uniformity since it describes data placement).
enum class Scheme : uint8_t { kRow = 0, kCol = 1, kBroadcast = 2 };

/// Bitmask over schemes; used for outputs whose scheme is still flexible
/// (e.g. CPMM can emit Row or Column, paper Fig. 2 "r|c").
using SchemeSet = uint8_t;

inline constexpr SchemeSet kNoSchemes = 0;
inline SchemeSet SchemeBit(Scheme s) {
  return static_cast<SchemeSet>(1u << static_cast<uint8_t>(s));
}
inline bool SchemeSetContains(SchemeSet set, Scheme s) {
  return (set & SchemeBit(s)) != 0;
}
inline bool SchemeSetIsSingle(SchemeSet set) {
  return set != 0 && (set & (set - 1)) == 0;
}
inline Scheme SchemeSetFirst(SchemeSet set) {
  for (uint8_t i = 0; i < 3; ++i) {
    if (set & (1u << i)) return static_cast<Scheme>(i);
  }
  return Scheme::kRow;
}

/// "pi and pj are both Broadcast scheme."
inline bool EqualB(Scheme pi, Scheme pj) {
  return pi == Scheme::kBroadcast && pj == Scheme::kBroadcast;
}

/// "pi and pj are the same, either Row scheme or Column scheme."
inline bool EqualRC(Scheme pi, Scheme pj) {
  return pi == pj && pi != Scheme::kBroadcast;
}

/// "pi is Row scheme while pj is Column scheme and vice versa."
inline bool Oppose(Scheme pi, Scheme pj) {
  return (pi == Scheme::kRow && pj == Scheme::kCol) ||
         (pi == Scheme::kCol && pj == Scheme::kRow);
}

/// "pi is Broadcast scheme while pj is either Row scheme or Column scheme."
inline bool Contain(Scheme pi, Scheme pj) {
  return pi == Scheme::kBroadcast && pj != Scheme::kBroadcast;
}

/// Row ↔ Col; Broadcast maps to itself.
inline Scheme OppositeScheme(Scheme s) {
  switch (s) {
    case Scheme::kRow:
      return Scheme::kCol;
    case Scheme::kCol:
      return Scheme::kRow;
    case Scheme::kBroadcast:
      return Scheme::kBroadcast;
  }
  return s;
}

inline char SchemeChar(Scheme s) {
  switch (s) {
    case Scheme::kRow:
      return 'r';
    case Scheme::kCol:
      return 'c';
    case Scheme::kBroadcast:
      return 'b';
  }
  return '?';
}

inline std::string SchemeSetToString(SchemeSet set) {
  std::string out;
  for (uint8_t i = 0; i < 3; ++i) {
    if (set & (1u << i)) {
      if (!out.empty()) out += '|';
      out += SchemeChar(static_cast<Scheme>(i));
    }
  }
  return out.empty() ? "-" : out;
}

}  // namespace dmac
