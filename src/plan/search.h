// Cost-based candidate plan search (ROADMAP item 2).
//
// Algorithm 1 is greedy: every operator commits to the locally cheapest
// strategy. This layer enumerates whole-plan alternatives over the axes the
// planner already exposes — the multiply algorithm per multiplication
// (RMM1/RMM2/CPMM), the partition scheme per load/random leaf (row, column,
// broadcast), and the two global toggles (heuristics, transpose fusion) —
// and ranks complete candidates with the calibrated cost model
// (plan/costmodel.h). The greedy plan is always one of the candidates, so
// the searched winner never estimates worse than Algorithm 1's choice.
//
// Unrolled iterative programs repeat the same operator shape once per
// iteration; decisions are therefore made per *signature* (operator kind +
// base SSA names of its operands), so GNMF costs ~10 decisions regardless
// of the iteration count. Beam search scores partial assignments on a
// representative window of the program (through the second occurrence of
// every signature); complete candidates are re-planned over the full
// program and pass the static verifier (src/analysis) before ranking.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "lang/op.h"
#include "plan/costmodel.h"
#include "plan/planner.h"

namespace dmac {

enum class PlanSearchMode : uint8_t { kOff, kBeam, kExhaustive };

const char* PlanSearchModeName(PlanSearchMode mode);
/// Parses "off" / "beam" / "exhaustive" (tool flags).
Result<PlanSearchMode> ParsePlanSearchMode(const std::string& name);

/// Search configuration.
struct SearchOptions {
  PlanSearchMode mode = PlanSearchMode::kBeam;
  /// Partial assignments kept per decision level in beam mode.
  int beam_width = 8;
  /// Hard cap on complete assignments enumerated in exhaustive mode; a
  /// larger space is an error (use beam mode for big programs).
  int64_t max_exhaustive = 4096;
};

/// One fully planned, verified candidate.
struct PlanCandidate {
  Plan plan;
  PlanCost cost;
  /// Human-readable decision vector, e.g. "heur=on fuse=on W'V=CPMM ...".
  std::string decisions;
  /// True for the unforced Algorithm-1 plan.
  bool greedy = false;
};

/// Search-run accounting (exported as planner.search.* metrics).
struct SearchStats {
  int64_t decisions = 0;  // decision axes (2 toggles + signature groups)
  int64_t planned = 0;    // GeneratePlan calls (window + full)
  int64_t verified = 0;   // complete candidates passed to the verifier
  int64_t rejected = 0;   // candidates dropped (planning or verify failure)
  double seconds = 0;     // wall time of the whole search
};

/// Ranked candidates, best first (estimated seconds, ties on comm bytes).
struct SearchResult {
  std::vector<PlanCandidate> candidates;
  SearchStats stats;
  const PlanCandidate& best() const { return candidates.front(); }
};

/// Enumerates, verifies, and ranks candidate plans for `ops`.
/// `base` supplies the planner configuration the candidates vary around
/// (its forced_strategies must be empty); `model` prices each candidate.
/// At least one candidate (the greedy plan) always survives, or an error
/// is returned.
Result<SearchResult> SearchPlans(const OperatorList& ops,
                                 const PlannerOptions& base,
                                 const SearchOptions& options,
                                 const CostModel& model);

}  // namespace dmac
