// Calibrated plan cost model (ROADMAP item 2).
//
// The planner's Equation 1 ranks strategies by communication bytes alone
// (paper §4.1). This layer turns a finalized plan into estimated *seconds*:
// per-kernel compute rates (GFLOP/s for multiplies, bytes/s for streaming
// kernels) measured by bench_kernels, combined with the simulated network's
// bandwidth/latency model. The plan search layer (plan/search.h) ranks
// whole candidate plans with it; dmac_lint --cost prints it per step.
//
// Rates come from a CalibrationTable: loaded from a `dmac-calibration-v1`
// document (CALIBRATION.json, scripts/gen_calibration.py) or directly from
// a `dmac-kernel-bench-v2` sweep (BENCH_kernels.json), with conservative
// built-in defaults when no file is given. An unreadable path degrades to
// the paper's byte-only cost (compute terms zero) with a one-line warning,
// so plan ranking still works — it just reproduces Equation 1's order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "plan/plan.h"
#include "runtime/exec_stats.h"

namespace dmac {

/// Measured throughput of one kernel class.
struct CalibrationRate {
  double gflops = 0;            // useful FLOP/s (multiply kernels), 1e9 units
  double bytes_per_second = 0;  // payload throughput (streaming kernels)
};

/// Kernel-rate table keyed by (kind, representation, trans), holding one
/// entry per measured block size / thread count.
class CalibrationTable {
 public:
  /// Conservative single-thread rates baked into the binary — the shape of
  /// a real BENCH_kernels.json sweep, scaled down so estimates err toward
  /// overpredicting compute.
  static CalibrationTable Builtin();

  /// Loads a `dmac-calibration-v1` or `dmac-kernel-bench-v2` document.
  /// Unreadable path → byte-cost-only table plus one warning line (the
  /// paper-style fallback); malformed content is an error.
  static Result<CalibrationTable> Load(const std::string& path);

  /// Parses a document from JSON text (exposed for tests).
  static Result<CalibrationTable> Parse(const std::string& json,
                                        const std::string& source);

  /// Byte-cost mode: no compute rates; estimates carry only the §4.1
  /// communication terms.
  bool byte_cost_only() const { return byte_cost_only_; }
  /// Where the rates came from: "builtin", a file path, or "byte-cost".
  const std::string& source() const { return source_; }
  size_t num_entries() const { return entries_.size(); }

  void Add(const std::string& kind, const std::string& representation,
           const std::string& trans, int64_t block_size, int threads,
           CalibrationRate rate);

  /// Best-matching rate: exact (kind, representation, trans) at the nearest
  /// block size with the fewest threads, falling back to any representation
  /// of the kind, then to a zero rate (caller treats 0 as "unknown").
  CalibrationRate Lookup(const std::string& kind,
                         const std::string& representation,
                         const std::string& trans, int64_t block_size) const;

 private:
  struct Entry {
    std::string kind;
    std::string representation;
    std::string trans;
    int64_t block_size = 0;
    int threads = 1;
    CalibrationRate rate;
  };
  std::vector<Entry> entries_;
  bool byte_cost_only_ = false;
  std::string source_ = "builtin";
};

/// Cost estimate of one plan step.
struct StepCost {
  double compute_seconds = 0;
  double comm_seconds = 0;
  double comm_bytes = 0;
  double seconds() const { return compute_seconds + comm_seconds; }
};

/// Cost estimate of a whole plan. `steps` is aligned with Plan::steps.
struct PlanCost {
  double compute_seconds = 0;
  double comm_seconds = 0;
  double comm_bytes = 0;
  std::vector<StepCost> steps;
  double seconds() const { return compute_seconds + comm_seconds; }
};

/// Cluster configuration the estimate is for.
struct CostModelOptions {
  int num_workers = 4;
  int threads_per_worker = 2;
  /// Block side used to pick the nearest calibration entry. 0 = the
  /// table's entries are matched at 256 (the bench default).
  int64_t block_size = 0;
  /// Engine representation switch: densities at or above this execute on
  /// the dense kernels (ExecutorOptions::density_threshold).
  double density_threshold = 0.5;
  NetworkModel network;
};

/// Combines §4.1 communication formulas with calibrated compute rates.
class CostModel {
 public:
  CostModel(CalibrationTable table, CostModelOptions options);

  StepCost EstimateStep(const Plan& plan, const PlanStep& step) const;
  PlanCost EstimatePlan(const Plan& plan) const;

  const CalibrationTable& table() const { return table_; }
  const CostModelOptions& options() const { return options_; }

 private:
  double MultiplySeconds(const Plan& plan, const PlanStep& step) const;
  double StreamSeconds(const std::string& representation,
                       double bytes) const;

  CalibrationTable table_;
  CostModelOptions options_;
};

}  // namespace dmac
