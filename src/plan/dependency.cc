#include "plan/dependency.h"

namespace dmac {

const char* DependencyTypeName(DependencyType t) {
  switch (t) {
    case DependencyType::kPartition:
      return "Partition";
    case DependencyType::kTransposePartition:
      return "Transpose-Partition";
    case DependencyType::kBroadcast:
      return "Broadcast";
    case DependencyType::kTransposeBroadcast:
      return "Transpose-Broadcast";
    case DependencyType::kReference:
      return "Reference";
    case DependencyType::kTranspose:
      return "Transpose";
    case DependencyType::kExtract:
      return "Extract";
    case DependencyType::kExtractTranspose:
      return "Extract-Transpose";
    case DependencyType::kNone:
      return "None";
  }
  return "?";
}

DependencyType ClassifyDependency(bool transposed, Scheme pi, Scheme pj) {
  if (!transposed) {
    // A = B rows of Table 2.
    if (Oppose(pi, pj)) return DependencyType::kPartition;
    if (EqualRC(pi, pj) || EqualB(pi, pj)) return DependencyType::kReference;
    if (Contain(pj, pi)) return DependencyType::kBroadcast;
    if (Contain(pi, pj)) return DependencyType::kExtract;
  } else {
    // A = Bᵀ rows of Table 2.
    if (EqualRC(pi, pj)) return DependencyType::kTransposePartition;
    if (Oppose(pi, pj) || EqualB(pi, pj)) return DependencyType::kTranspose;
    if (Contain(pj, pi)) return DependencyType::kTransposeBroadcast;
    if (Contain(pi, pj)) return DependencyType::kExtractTranspose;
  }
  return DependencyType::kNone;
}

double DependencyCommBytes(DependencyType t, double bytes, int num_workers) {
  switch (t) {
    case DependencyType::kPartition:
    case DependencyType::kTransposePartition:
      return bytes;  // Situation 2
    case DependencyType::kBroadcast:
    case DependencyType::kTransposeBroadcast:
      return static_cast<double>(num_workers) * bytes;  // Situation 3
    default:
      return 0;  // Situation 1
  }
}

}  // namespace dmac
