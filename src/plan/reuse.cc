#include "plan/reuse.h"

#include <vector>

#include "lang/op.h"

namespace dmac {

namespace {

// Estimated-density cutoff below which a node's blocks are stored CSC
// (ExecutorOptions::density_threshold's default; the engine consults the
// cache only when both operand blocks actually arrive sparse, so a
// mis-estimate here costs nothing at runtime — the hint is just ignored).
constexpr double kSparseStorageThreshold = 0.5;

bool IsMultiply(const PlanStep& step) {
  return step.kind == StepKind::kCompute && step.op_kind == OpKind::kMultiply;
}

bool EstimatedSparse(const Plan& plan, int node) {
  if (node < 0 || static_cast<size_t>(node) >= plan.nodes.size()) return false;
  return plan.nodes[static_cast<size_t>(node)].stats.sparsity <
         kSparseStorageThreshold;
}

}  // namespace

ReuseMarkResult MarkOperandReuse(Plan* plan) {
  ReuseMarkResult result;
  // Distinct consuming steps per node. Within-step repetition (Aᵀ·A reads
  // its node twice) is not reuse for the cache's purposes: one step pays
  // one conversion either way.
  std::vector<int> uses(plan->nodes.size(), 0);
  for (const PlanStep& step : plan->steps) {
    int prev = -1;  // inputs are short; dedupe the common repeated pair
    for (int input : step.inputs) {
      if (input < 0 || static_cast<size_t>(input) >= uses.size()) continue;
      if (input == prev) continue;
      ++uses[static_cast<size_t>(input)];
      prev = input;
    }
  }
  for (PlanStep& step : plan->steps) {
    if (!IsMultiply(step) || !step.trans_a || step.trans_b) continue;
    if (step.inputs.size() < 2) continue;
    // The cache serves only the sparse×sparse Gustavson path; marking a
    // multiply whose operands will materialize dense would make the
    // footprint pass charge for a conversion that never happens.
    if (!EstimatedSparse(*plan, step.inputs[0]) ||
        !EstimatedSparse(*plan, step.inputs[1])) {
      continue;
    }
    const int b = step.inputs[1];
    if (uses[static_cast<size_t>(b)] < 2) continue;
    step.cache_csr_b = true;
    ++result.marked_steps;
  }
  return result;
}

}  // namespace dmac
