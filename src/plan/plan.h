// Execution plan IR (paper §4.2, Fig. 3).
//
// A plan is a DAG whose nodes are materialized matrices annotated with a
// partition scheme, and whose steps are either compute operators or the five
// extended operators (partition, broadcast, transpose, reference, extract)
// that express matrix dependencies. Reference dependencies are null
// operations and produce no step — the consumer simply reuses the node.
//
// After construction the plan is finalized: steps are topologically ordered
// and cut into un-interleaved stages at communication boundaries (§5.2), so
// that everything inside one stage runs on the cluster without any network
// traffic.
#pragma once

#include <string>
#include <vector>

#include "lang/op.h"
#include "plan/scheme.h"
#include "plan/size_estimator.h"
#include "plan/strategy.h"

namespace dmac {

/// Kind of a plan step.
enum class StepKind : uint8_t {
  kLoad,       // read + distribute an input matrix
  kRandom,     // generate a random matrix in place
  kCompute,    // one of the five binary operators or a scalar op
  kPartition,  // extended: repartition to Row/Col        (communicates)
  kBroadcast,  // extended: replicate to all workers      (communicates)
  kTranspose,  // extended: local transpose
  kExtract,    // extended: local filter from a broadcast copy
  kReduce,     // matrix → scalar at the driver
  kScalarAssign,  // driver-side scalar computation
};

const char* StepKindName(StepKind k);

/// A materialized matrix instance in the plan.
struct PlanNode {
  int id = -1;
  /// Base SSA matrix name this node holds (possibly transposed).
  std::string matrix;
  bool transposed = false;
  /// Scheme(s); more than one bit only while the producer's output is still
  /// flexible (CPMM r|c) — collapsed by Heuristic 2 or at finalization.
  SchemeSet schemes = kNoSchemes;
  MatrixStats stats;
  int producer_step = -1;
  int stage = -1;
  /// Program-level checkpoint hint (ProgramBuilder::CheckpointHint): the
  /// executor's periodic checkpointing snapshots only hinted nodes when any
  /// exist in the plan (docs/fault_tolerance.md).
  bool checkpoint_hint = false;

  Scheme scheme() const { return SchemeSetFirst(schemes); }
  std::string ToString() const {
    return (transposed ? matrix + "^T" : matrix) + "(" +
           SchemeSetToString(schemes) + ")";
  }
};

/// One step of the plan.
struct PlanStep {
  int id = -1;
  StepKind kind = StepKind::kCompute;

  /// For kCompute / kReduce: the originating operator semantics.
  OpKind op_kind = OpKind::kLoad;
  MultAlgo mult_algo = MultAlgo::kNone;

  /// kCompute multiply only: consume inputs[0]/inputs[1] transposed (the
  /// operand is stored untransposed; the kernel reads it through the flag —
  /// matrix/kernels.h). Set by the transpose-fusion pass (plan/fusion.h)
  /// when it folds a kTranspose step into its consuming multiply.
  bool trans_a = false;
  bool trans_b = false;

  /// kCompute multiply with trans_a only: route the B operand's CSC→CSR
  /// conversions (the Gustavson Aᵀ·B sparse path, matrix/spgemm.h) through
  /// the engine's FormatCache. Set by the operand-reuse pass
  /// (plan/reuse.h) when the plan consumes the operand more than once;
  /// the footprint pass then accounts for the cached converted copy.
  bool cache_csr_b = false;

  std::vector<int> inputs;  // node ids
  int output = -1;          // node id, or -1 (reduce / scalar-assign)

  /// Plan-time communication estimate of this step (cost-model bytes).
  double comm_bytes = 0;

  /// True when the strategy's own execution shuffles its output (CPMM's
  /// cross-product aggregation, row/column-sum aggregation).
  bool output_comm = false;

  int stage = -1;

  /// kLoad / kRandom: binding key and declared metadata.
  std::string source;
  Shape decl_shape;
  double decl_sparsity = 1.0;

  /// kCompute scalar ops / kScalarAssign: resolved scalar expression.
  ScalarExprPtr scalar;
  /// kReduce / kScalarAssign: produced SSA scalar.
  ReduceKind reduce = ReduceKind::kSum;
  std::string scalar_out;

  /// kCompute with op_kind kCellUnary: the function applied.
  UnaryFnKind unary_fn = UnaryFnKind::kAbs;

  /// True when this step moves data between workers.
  bool Communicates() const {
    return kind == StepKind::kLoad || kind == StepKind::kPartition ||
           kind == StepKind::kBroadcast || output_comm;
  }
};

/// Binding of a program output variable to a plan node.
struct PlanOutput {
  std::string variable;
  int node = -1;
  bool transposed = false;  // gather must transpose the node's matrix
};

/// A finalized execution plan.
struct Plan {
  std::vector<PlanNode> nodes;
  std::vector<PlanStep> steps;  // topologically ordered after Finalize()
  std::vector<PlanOutput> outputs;
  /// Scalar outputs as (program variable, SSA scalar name) pairs.
  std::vector<std::pair<std::string, std::string>> scalar_outputs;
  int num_stages = 0;
  double total_comm_bytes = 0;

  /// Topologically orders steps, assigns stages (cut at communication
  /// boundaries), and accumulates total communication.
  Status Finalize();

  /// Human-readable rendering: one line per step, grouped by stage
  /// (the textual analogue of Fig. 3).
  std::string ToString() const;
};

}  // namespace dmac
