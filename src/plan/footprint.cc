#include "plan/footprint.h"

#include <algorithm>
#include <vector>

namespace dmac {

int64_t EstimatePlanFootprintBytes(const Plan& plan, int num_workers) {
  if (num_workers < 1) num_workers = 1;
  const size_t num_nodes = plan.nodes.size();
  const size_t num_steps = plan.steps.size();

  // Last step (by position in the topologically ordered step list) that
  // reads each node; program outputs stay live to the end.
  std::vector<size_t> last_use(num_nodes, 0);
  for (size_t s = 0; s < num_steps; ++s) {
    for (int input : plan.steps[s].inputs) {
      if (input >= 0 && static_cast<size_t>(input) < num_nodes) {
        last_use[static_cast<size_t>(input)] = s;
      }
    }
  }
  for (const PlanOutput& out : plan.outputs) {
    if (out.node >= 0 && static_cast<size_t>(out.node) < num_nodes) {
      last_use[static_cast<size_t>(out.node)] = num_steps;
    }
  }

  // Nodes whose CSC→CSR conversion the engine caches (PlanStep::cache_csr_b,
  // plan/reuse.h): the converted copy is the same order of bytes as the
  // source — structural transpose, identical nnz — and stays resident in
  // the FormatCache while the node does, so such nodes count double.
  std::vector<bool> csr_cached(num_nodes, false);
  for (const PlanStep& step : plan.steps) {
    if (step.cache_csr_b && step.inputs.size() >= 2 && step.inputs[1] >= 0 &&
        static_cast<size_t>(step.inputs[1]) < num_nodes) {
      csr_cached[static_cast<size_t>(step.inputs[1])] = true;
    }
  }

  auto node_bytes = [&](int id) -> int64_t {
    const PlanNode& node = plan.nodes[static_cast<size_t>(id)];
    const int64_t replicas =
        node.scheme() == Scheme::kBroadcast ? num_workers : 1;
    const int64_t copies = csr_cached[static_cast<size_t>(id)] ? 2 : 1;
    return static_cast<int64_t>(node.stats.EstimatedBytes()) * replicas *
           copies;
  };

  int64_t live = 0;
  int64_t peak = 0;
  std::vector<bool> resident(num_nodes, false);
  for (size_t s = 0; s < num_steps; ++s) {
    const PlanStep& step = plan.steps[s];
    if (step.output >= 0 && static_cast<size_t>(step.output) < num_nodes &&
        !resident[static_cast<size_t>(step.output)]) {
      resident[static_cast<size_t>(step.output)] = true;
      live += node_bytes(step.output);
    }
    peak = std::max(peak, live);
    for (size_t id = 0; id < num_nodes; ++id) {
      if (resident[id] && last_use[id] <= s) {
        resident[id] = false;
        live -= node_bytes(static_cast<int>(id));
      }
    }
  }
  return std::max(peak, live);
}

}  // namespace dmac
