#include "plan/size_estimator.h"

#include <algorithm>

namespace dmac {

double MatrixStats::EstimatedBytes() const {
  const double m = static_cast<double>(shape.rows);
  const double n = static_cast<double>(shape.cols);
  const double dense = 4.0 * m * n;
  const double sparse = 4.0 * n + 8.0 * m * n * sparsity;
  return std::min(dense, sparse);
}

Result<MatrixStats> StatsForRef(const StatsMap& stats, const MatrixRef& ref) {
  auto it = stats.find(ref.name);
  if (it == stats.end()) {
    return Status::NotFound("no stats for matrix " + ref.name);
  }
  return ref.transposed ? it->second.Transposed() : it->second;
}

Result<StatsMap> EstimateSizes(const OperatorList& ops) {
  StatsMap stats;
  for (const Operator& op : ops.ops) {
    switch (op.kind) {
      case OpKind::kLoad:
      case OpKind::kRandom:
        stats[op.output] = {op.decl_shape, op.decl_sparsity};
        break;
      case OpKind::kMultiply: {
        DMAC_ASSIGN_OR_RETURN(MatrixStats a, StatsForRef(stats, op.inputs[0]));
        DMAC_ASSIGN_OR_RETURN(MatrixStats b, StatsForRef(stats, op.inputs[1]));
        if (a.shape.cols != b.shape.rows) {
          return Status::DimensionMismatch(
              op.ToString() + ": " + a.shape.ToString() + " %*% " +
              b.shape.ToString());
        }
        // Worst case: the product is fully dense.
        stats[op.output] = {{a.shape.rows, b.shape.cols}, 1.0};
        break;
      }
      case OpKind::kAdd:
      case OpKind::kSubtract:
      case OpKind::kCellMultiply:
      case OpKind::kCellDivide: {
        DMAC_ASSIGN_OR_RETURN(MatrixStats a, StatsForRef(stats, op.inputs[0]));
        DMAC_ASSIGN_OR_RETURN(MatrixStats b, StatsForRef(stats, op.inputs[1]));
        if (a.shape != b.shape) {
          return Status::DimensionMismatch(
              op.ToString() + ": " + a.shape.ToString() + " vs " +
              b.shape.ToString());
        }
        stats[op.output] = {a.shape, std::min(a.sparsity + b.sparsity, 1.0)};
        break;
      }
      case OpKind::kScalarMultiply:
      case OpKind::kScalarAdd: {
        DMAC_ASSIGN_OR_RETURN(MatrixStats a, StatsForRef(stats, op.inputs[0]));
        // Unary operators preserve sparsity (paper §5.1).
        stats[op.output] = a;
        break;
      }
      case OpKind::kCellUnary: {
        DMAC_ASSIGN_OR_RETURN(MatrixStats a, StatsForRef(stats, op.inputs[0]));
        // Zero-preserving functions keep the sparsity; others densify.
        stats[op.output] = {a.shape, UnaryFnPreservesZero(op.unary_fn)
                                         ? a.sparsity
                                         : 1.0};
        break;
      }
      case OpKind::kRowSums:
      case OpKind::kColSums: {
        DMAC_ASSIGN_OR_RETURN(MatrixStats a, StatsForRef(stats, op.inputs[0]));
        // Worst case: every aggregated row/column has a non-zero.
        if (op.kind == OpKind::kRowSums) {
          stats[op.output] = {{a.shape.rows, 1}, 1.0};
        } else {
          stats[op.output] = {{1, a.shape.cols}, 1.0};
        }
        break;
      }
      case OpKind::kReduce: {
        DMAC_ASSIGN_OR_RETURN(MatrixStats a, StatsForRef(stats, op.inputs[0]));
        if (op.reduce == ReduceKind::kValue &&
            (a.shape.rows != 1 || a.shape.cols != 1)) {
          return Status::DimensionMismatch(op.ToString() +
                                           ": .value requires a 1x1 matrix, "
                                           "got " +
                                           a.shape.ToString());
        }
        break;
      }
      case OpKind::kScalarAssign:
        break;
    }
  }
  return stats;
}

}  // namespace dmac
