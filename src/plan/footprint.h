// Pre-execution memory-footprint estimation (docs/governance.md).
//
// Walks a finalized plan in step order and tracks the estimated live set:
// a node's bytes (worst-case, from the size estimator that annotated the
// plan) enter when its producer step runs and leave after its last consumer
// — Broadcast nodes are charged once per worker, matching what the stores
// charge a MemoryBudget at run time. The peak of that walk is the number a
// query needs admitted against, and the number the memory-footprint
// analysis pass checks against a configured budget.
#pragma once

#include <cstdint>

#include "plan/plan.h"

namespace dmac {

/// Estimated peak bytes simultaneously resident across all worker stores
/// while `plan` executes on `num_workers` workers. Worst-case (sparsity
/// rules of §5.1), so a run may use less — never meaningfully more.
int64_t EstimatePlanFootprintBytes(const Plan& plan, int num_workers);

}  // namespace dmac
