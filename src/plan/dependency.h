// Matrix dependency classification (paper §3, Definition 1 and Table 2).
//
// An input event In(B, pj, opj) depends on an output event Out(A, pi, opi)
// when B = A or B = Aᵀ and opi precedes opj. The combination of the
// transpose relationship and the two partition schemes determines which of
// eight matrix processes reconciles producer and consumer — four of them
// communicate, four are worker-local.
#pragma once

#include "plan/scheme.h"

namespace dmac {

/// The eight dependency types of Table 2, plus kNone for unrelated events.
enum class DependencyType : uint8_t {
  // --- Communication Dependency category ---
  kPartition,           // A = B,  Oppose(pi, pj): repartition
  kTransposePartition,  // A = Bᵀ, EqualRC(pi, pj): transpose + repartition
  kBroadcast,           // A = B,  Contain(pj, pi): broadcast
  kTransposeBroadcast,  // A = Bᵀ, Contain(pj, pi): transpose + broadcast
  // --- Non-Communication Dependency category ---
  kReference,           // A = B,  EqualRC or EqualB: reuse as-is
  kTranspose,           // A = Bᵀ, Oppose or EqualB: local transpose
  kExtract,             // A = B,  Contain(pi, pj): local filter
  kExtractTranspose,    // A = Bᵀ, Contain(pi, pj): local filter + transpose
  kNone,
};

const char* DependencyTypeName(DependencyType t);

/// True for the Communication Dependency category.
inline bool IsCommunicationDependency(DependencyType t) {
  return t == DependencyType::kPartition ||
         t == DependencyType::kTransposePartition ||
         t == DependencyType::kBroadcast ||
         t == DependencyType::kTransposeBroadcast;
}

/// Classifies the dependency between Out(A, pi, ·) and In(B, pj, ·).
///
/// `transposed` states the relationship between the matrices: false for
/// B = A, true for B = Aᵀ. Exactly one of the eight types matches every
/// (transposed, pi, pj) combination — the 18 combinations of Table 2.
DependencyType ClassifyDependency(bool transposed, Scheme pi, Scheme pj);

/// Communication cost situation of §4.1 for a dependency type `t` moving a
/// matrix of `bytes` size across `num_workers` workers:
///   Situation 1 (non-communication): 0
///   Situation 2 (partition-like):    |A|
///   Situation 3 (broadcast-like):    N · |A|
double DependencyCommBytes(DependencyType t, double bytes, int num_workers);

}  // namespace dmac
