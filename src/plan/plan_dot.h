// Graphviz DOT rendering of execution plans — the visual analogue of the
// paper's Fig. 3: matrices as ellipses annotated with their partition
// scheme, operators as edges, stages as clusters, communication edges
// highlighted.
#pragma once

#include <string>

#include "plan/plan.h"

namespace dmac {

/// Renders the plan as a Graphviz digraph. Pipe through `dot -Tsvg` to get
/// a figure directly comparable to the paper's Fig. 3.
std::string PlanToDot(const Plan& plan);

}  // namespace dmac
