// Execution plan generation (paper §4, Algorithm 1).
#pragma once

#include <map>

#include "common/result.h"
#include "lang/op.h"
#include "plan/plan.h"

namespace dmac {

/// Default of PlannerOptions::verify_plan: the static plan verifier runs
/// after every GeneratePlan in assert-enabled builds.
#ifdef NDEBUG
inline constexpr bool kVerifyPlanDefault = false;
#else
inline constexpr bool kVerifyPlanDefault = true;
#endif

/// Planner configuration.
struct PlannerOptions {
  /// N in the cost model: number of workers in the cluster.
  int num_workers = 4;

  /// When false, the planner emulates SystemML-S (paper §6.1): the same
  /// operator strategies and cost formulas, but matrix dependencies are
  /// ignored — every input event pays its full repartition/broadcast price
  /// and repartitioned copies are never reused across operators.
  bool exploit_dependencies = true;

  /// Heuristic 1 (Pull-Up Broadcast, §4.2.2): when an input needs a
  /// broadcast of a matrix that an earlier operator already paid to
  /// repartition, convert that earlier repartition into a broadcast and
  /// derive the earlier requirement by a local extract.
  bool pull_up_broadcast = true;

  /// Heuristic 2 (Re-assignment, §4.2.2): outputs with flexible schemes
  /// (CPMM r|c) are collapsed to whichever scheme a dependent input needs.
  bool reassignment = true;

  /// Number of future consumer edges examined to break cost ties between
  /// strategies (e.g. the RMM1/RMM2 tie on B·Bᵀ the paper discusses, and
  /// the Row/Column tie when loading an input). 0 disables lookahead.
  int lookahead_edges = 8;

  /// Transpose fusion (plan/fusion.h): fold a local kTranspose step whose
  /// consumers are all multiplies into those multiplies' operand flags, so
  /// the transposed matrix is never materialized. Applies in both
  /// dependency modes — local transposes are zero-comm, so the baseline's
  /// communication figures are unchanged.
  bool fuse_transposes = true;

  /// Run the static plan verifier (src/analysis) over the finalized plan
  /// and fail planning on any error-severity diagnostic. Mandatory in
  /// assert-enabled (debug) builds, where a planner bug should fail loudly
  /// instead of becoming a wrong answer; off by default in release builds.
  bool verify_plan = kVerifyPlanDefault;

  /// Degraded-mode quorum the run will enforce (executor min_workers),
  /// forwarded to the verifier so the lineage-completeness pass can flag
  /// a quorum the cluster cannot satisfy before execution starts.
  int min_workers = 1;

  /// Plan-search override (plan/search.h): operator id → index into
  /// CandidateStrategies(op). A forced operator skips Equation 1's argmin
  /// and commits the indexed candidate; out-of-range indices are an error.
  /// Empty (the default) reproduces the pure greedy Algorithm 1.
  std::map<int, int> forced_strategies;

  /// The run will maintain / restore durable checkpoints (executor
  /// checkpoint_dir / resume), forwarded to the verifier so the lineage
  /// pass can warn when a hint-free plan makes every producing step commit
  /// a durable epoch.
  bool resume = false;
};

/// Runs Algorithm 1 over the decomposed program and returns a finalized,
/// stage-annotated execution plan.
Result<Plan> GeneratePlan(const OperatorList& ops,
                          const PlannerOptions& options);

}  // namespace dmac
