#include "plan/plan_dot.h"

#include <unordered_map>
#include <vector>

namespace dmac {

namespace {

std::string EscapeLabel(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string PlanToDot(const Plan& plan) {
  std::string dot = "digraph plan {\n  rankdir=TB;\n  node [fontsize=10];\n";

  // Group node declarations by stage, like the horizontal stage bands of
  // Fig. 3.
  std::unordered_map<int, std::vector<int>> stage_nodes;
  for (const PlanNode& node : plan.nodes) {
    stage_nodes[node.stage].push_back(node.id);
  }
  for (auto& [stage, ids] : stage_nodes) {
    dot += "  subgraph cluster_stage" + std::to_string(stage) + " {\n";
    dot += "    label=\"Stage " + std::to_string(stage) + "\";\n";
    dot += "    style=dashed; color=gray;\n";
    for (int id : ids) {
      const PlanNode& node = plan.nodes[static_cast<size_t>(id)];
      dot += "    n" + std::to_string(id) + " [shape=ellipse,label=\"" +
             EscapeLabel(node.ToString()) + "\"];\n";
    }
    dot += "  }\n";
  }

  // Steps become edges (binary operators get a small junction point so both
  // inputs visibly join). Communication steps are drawn bold red; local
  // dependency operators dashed blue, like the paper's dashed arrows.
  for (const PlanStep& step : plan.steps) {
    if (step.output < 0) continue;  // reduces/scalar assigns: skip edges
    std::string attrs;
    std::string label = StepKindName(step.kind);
    if (step.kind == StepKind::kCompute) {
      label = OpKindName(step.op_kind);
      if (step.mult_algo != MultAlgo::kNone) {
        label += std::string(":") + MultAlgoName(step.mult_algo);
      }
    }
    if (step.Communicates()) {
      attrs = ",color=red,penwidth=2";
    } else if (step.kind == StepKind::kTranspose ||
               step.kind == StepKind::kExtract) {
      attrs = ",color=blue,style=dashed";
    }

    const std::string target = "n" + std::to_string(step.output);
    if (step.inputs.size() <= 1) {
      const std::string src =
          step.inputs.empty()
              ? ("src_" + std::to_string(step.id))
              : "n" + std::to_string(step.inputs[0]);
      if (step.inputs.empty()) {
        dot += "  " + src + " [shape=box,label=\"" +
               EscapeLabel(step.source) + "\"];\n";
      }
      dot += "  " + src + " -> " + target + " [label=\"" +
             EscapeLabel(label) + "\"" + attrs + "];\n";
    } else {
      const std::string junction = "op" + std::to_string(step.id);
      dot += "  " + junction + " [shape=point,width=0.06];\n";
      for (int in : step.inputs) {
        dot += "  n" + std::to_string(in) + " -> " + junction +
               " [dir=none" + attrs + "];\n";
      }
      dot += "  " + junction + " -> " + target + " [label=\"" +
             EscapeLabel(label) + "\"" + attrs + "];\n";
    }
  }
  dot += "}\n";
  return dot;
}

}  // namespace dmac
