// Candidate execution strategies per operator (paper §4.1, Fig. 2).
#pragma once

#include <vector>

#include "lang/op.h"
#include "plan/scheme.h"

namespace dmac {

/// Multiplication algorithms (paper Fig. 2). kNone for non-multiplies.
enum class MultAlgo : uint8_t { kNone, kRMM1, kRMM2, kCPMM };

const char* MultAlgoName(MultAlgo a);

/// One candidate execution strategy of an operator: the partition schemes it
/// requires on its inputs, the scheme(s) its output can carry, and whether
/// its own execution communicates (only CPMM's aggregation does).
struct Strategy {
  std::vector<Scheme> input_schemes;  // aligned with Operator::inputs
  SchemeSet out_schemes = kNoSchemes;
  MultAlgo mult_algo = MultAlgo::kNone;
  /// CPMM shuffles its size-|C| partial results from all N workers
  /// (Cost(out) = N·|C|, §4.1).
  bool output_comm = false;

  std::string ToString() const;
};

/// Enumerates the candidate strategies of `op`:
///  * multiply: RMM1 {b,c}→c, RMM2 {r,b}→r, CPMM {c,r}→r|c (+output comm)
///  * cell-wise / add / subtract: {r,r}→r, {c,c}→c, {b,b}→b
///  * scalar ops: {r}→r, {c}→c, {b}→b
///  * reduce: {r}, {c}, {b} (no matrix output)
///  * load: →r, →c (cost |A|), →b (cost N·|A|)
///  * random: →r, →c, →b (generated in place, no communication)
/// kScalarAssign has no strategies (driver-side only).
std::vector<Strategy> CandidateStrategies(const Operator& op);

}  // namespace dmac
