#include "plan/planner.h"

#include <algorithm>
#include <array>
#include <limits>
#include <unordered_map>

#include "analysis/analyzer.h"
#include "common/logging.h"
#include "plan/dependency.h"
#include "plan/fusion.h"
#include "plan/reuse.h"

namespace dmac {

namespace {

/// Availability of one (matrix, transposed) pair: the node currently
/// materialized under each scheme (-1 when absent). This is the planner's
/// view of the paper's OutputSet.
struct Availability {
  std::array<int, 3> per_scheme = {-1, -1, -1};
};

/// A costly repartition recorded for Heuristic 1 (the paper's InputSet
/// entries with Cost > 0).
struct CostlyPartition {
  int step_id;  // the kPartition (or kLoad) step that paid the cost
  int node_id;  // the row/column partitioned node it produced
};

/// Outcome of resolving one required input against the OutputSet.
struct Resolution {
  DependencyType dep = DependencyType::kNone;
  int source_node = -1;
  double cost = std::numeric_limits<double>::infinity();
  bool collapses_source = false;  // Heuristic 2 applies on commit
};

class Planner {
 public:
  Planner(const OperatorList& ops, const PlannerOptions& options)
      : ops_(ops), opts_(options) {}

  Result<Plan> Run() {
    // Shape-inference gate: reject malformed operator lists (wrong arity,
    // undefined names, non-conforming shapes) with a Status instead of
    // letting the strategy/estimation code index past operand arrays.
    DMAC_RETURN_NOT_OK(CheckOperators(ops_));
    DMAC_ASSIGN_OR_RETURN(stats_, EstimateSizes(ops_));

    for (const Operator& op : ops_.ops) {
      DMAC_RETURN_NOT_OK(PlanOperator(op));
    }
    DMAC_RETURN_NOT_OK(BindOutputs());
    MarkCheckpointHints();
    if (opts_.fuse_transposes) {
      // Kernel-flag rewrite: local transposes feeding only multiplies are
      // folded into TransA/TransB operand flags (plan/fusion.h) — the
      // transposed copy is never materialized.
      FuseTransposes(&plan_);
    }
    // Conversion-cache hints: Aᵀ·B multiplies over a reused B operand get
    // their CSC→CSR conversions cached by the engine (plan/reuse.h). Runs
    // after fusion so the operand flags it keys on are final.
    MarkOperandReuse(&plan_);
    DMAC_RETURN_NOT_OK(plan_.Finalize());
    if (opts_.verify_plan) {
      // Post-pass: the static verifier re-derives every invariant Algorithm 1
      // is supposed to establish and fails planning on any violation.
      DMAC_RETURN_NOT_OK(VerifyPlan(ops_, plan_, opts_.num_workers,
                                    opts_.min_workers, opts_.resume));
    }
    return std::move(plan_);
  }

 private:
  /// Stamps PlanNode::checkpoint_hint on every SSA version of a hinted
  /// program variable ("W#3" inherits a hint on "W"). Temps ("_tN") carry
  /// no '#' and never match. Transpose views ("W#3^T") are exempt: they are
  /// derivable from the hinted primary at zero communication, so
  /// checkpointing them is redundant — and the exemption leaves them
  /// eligible for the transpose-fusion rewrite (plan/fusion.h).
  void MarkCheckpointHints() {
    if (ops_.checkpoint_vars.empty()) return;
    for (PlanNode& node : plan_.nodes) {
      if (node.transposed) continue;
      const size_t hash = node.matrix.find('#');
      if (hash == std::string::npos) continue;
      const std::string base = node.matrix.substr(0, hash);
      for (const std::string& var : ops_.checkpoint_vars) {
        if (base == var) {
          node.checkpoint_hint = true;
          break;
        }
      }
    }
  }

  // ---- node/step construction ------------------------------------------

  int NewNode(const std::string& matrix, bool transposed, SchemeSet schemes,
              const MatrixStats& stats) {
    PlanNode node;
    node.id = static_cast<int>(plan_.nodes.size());
    node.matrix = matrix;
    node.transposed = transposed;
    node.schemes = schemes;
    node.stats = stats;
    plan_.nodes.push_back(node);
    return node.id;
  }

  PlanStep& NewStep(StepKind kind) {
    PlanStep step;
    step.id = static_cast<int>(plan_.steps.size());
    step.kind = kind;
    plan_.steps.push_back(std::move(step));
    return plan_.steps.back();
  }

  void Register(int node_id) {
    const PlanNode& node = plan_.nodes[static_cast<size_t>(node_id)];
    Availability& a = avail_[node.transposed ? 1 : 0][node.matrix];
    for (uint8_t s = 0; s < 3; ++s) {
      if (node.schemes & (1u << s)) a.per_scheme[s] = node_id;
    }
  }

  void Unregister(int node_id) {
    const PlanNode& node = plan_.nodes[static_cast<size_t>(node_id)];
    Availability& a = avail_[node.transposed ? 1 : 0][node.matrix];
    for (uint8_t s = 0; s < 3; ++s) {
      if (a.per_scheme[s] == node_id) a.per_scheme[s] = -1;
    }
  }

  /// Collapses a flexible node to a single scheme (Heuristic 2 /
  /// Re-assignment) and fixes the availability map.
  void CollapseNode(int node_id, Scheme to) {
    PlanNode& node = plan_.nodes[static_cast<size_t>(node_id)];
    if (SchemeSetIsSingle(node.schemes)) return;
    Unregister(node_id);
    node.schemes = SchemeBit(to);
    Register(node_id);
  }

  Result<MatrixStats> BaseStats(const std::string& name) const {
    auto it = stats_.find(name);
    if (it == stats_.end()) {
      return Status::NotFound("no stats for matrix " + name);
    }
    return it->second;
  }

  // ---- dependency resolution -------------------------------------------

  /// Finds the cheapest way to satisfy In(ref, required) from the
  /// OutputSet. In SystemML-S mode every dependency pays its repartition
  /// price even if the schemes align.
  Resolution Resolve(const MatrixRef& ref, Scheme required) const {
    Resolution best;
    auto base_it = stats_.find(ref.name);
    if (base_it == stats_.end()) return best;
    const double bytes = base_it->second.EstimatedBytes();

    for (int trans = 0; trans < 2; ++trans) {
      auto it = avail_[trans].find(ref.name);
      if (it == avail_[trans].end()) continue;
      const bool relation_transposed = (trans == 1) != ref.transposed;
      for (uint8_t s = 0; s < 3; ++s) {
        const int node_id = it->second.per_scheme[s];
        if (node_id < 0) continue;
        const Scheme pi = static_cast<Scheme>(s);
        DependencyType dep = ClassifyDependency(relation_transposed, pi,
                                                required);
        double cost = DependencyCommBytes(dep, bytes, opts_.num_workers);
        if (!opts_.exploit_dependencies) {
          // SystemML-S: the cached layout never satisfies the operator's
          // requirement; a repartition (or broadcast) is always performed.
          if (required == Scheme::kBroadcast) {
            dep = relation_transposed ? DependencyType::kTransposeBroadcast
                                      : DependencyType::kBroadcast;
          } else {
            dep = relation_transposed ? DependencyType::kTransposePartition
                                      : DependencyType::kPartition;
          }
          cost = DependencyCommBytes(dep, bytes, opts_.num_workers);
        }
        const PlanNode& node = plan_.nodes[static_cast<size_t>(node_id)];
        const bool collapses = !SchemeSetIsSingle(node.schemes);
        if (collapses && !opts_.reassignment && dep == DependencyType::kReference) {
          // Without Heuristic 2 a flexible output cannot be steered toward
          // the consumer; assume it materialized in the other scheme.
          continue;
        }
        // Prefer lower cost; among equals prefer non-collapsing references.
        if (cost < best.cost ||
            (cost == best.cost && !collapses && best.collapses_source)) {
          best.dep = dep;
          best.source_node = node_id;
          best.cost = cost;
          best.collapses_source = collapses;
        }
      }
    }
    return best;
  }

  /// Materializes the resolution: emits the extended-operator steps and
  /// returns the node id satisfying In(ref, required).
  Result<int> CommitResolution(const MatrixRef& ref, Scheme required,
                               const Resolution& res) {
    if (res.source_node < 0) {
      return Status::Internal("unresolvable input " + ref.ToString());
    }
    if (res.collapses_source) {
      // Heuristic 2: steer the flexible producer toward the needed scheme.
      const PlanNode& src = plan_.nodes[static_cast<size_t>(res.source_node)];
      Scheme to = required;
      if (res.dep != DependencyType::kReference) {
        // Collapse to any member; keep the first.
        to = SchemeSetFirst(src.schemes);
      }
      CollapseNode(res.source_node, to);
    }

    DMAC_ASSIGN_OR_RETURN(MatrixStats base, BaseStats(ref.name));
    const MatrixStats target_stats =
        ref.transposed ? base.Transposed() : base;
    const PlanNode& src = plan_.nodes[static_cast<size_t>(res.source_node)];
    const double bytes = base.EstimatedBytes();
    const MatrixStats src_stats = src.stats;

    switch (res.dep) {
      case DependencyType::kReference:
        return res.source_node;

      case DependencyType::kTranspose: {
        const int target = NewNode(ref.name, ref.transposed,
                                   SchemeBit(required), target_stats);
        PlanStep& step = NewStep(StepKind::kTranspose);
        step.inputs = {res.source_node};
        step.output = target;
        if (opts_.exploit_dependencies) Register(target);
        return target;
      }

      case DependencyType::kExtract: {
        const int target = NewNode(ref.name, ref.transposed,
                                   SchemeBit(required), target_stats);
        PlanStep& step = NewStep(StepKind::kExtract);
        step.inputs = {res.source_node};
        step.output = target;
        if (opts_.exploit_dependencies) Register(target);
        return target;
      }

      case DependencyType::kExtractTranspose: {
        // Local filter to the opposite scheme, then a local transpose.
        const int mid =
            NewNode(src.matrix, src.transposed,
                    SchemeBit(OppositeScheme(required)), src_stats);
        PlanStep& extract = NewStep(StepKind::kExtract);
        extract.inputs = {res.source_node};
        extract.output = mid;
        const int target = NewNode(ref.name, ref.transposed,
                                   SchemeBit(required), target_stats);
        PlanStep& transpose = NewStep(StepKind::kTranspose);
        transpose.inputs = {mid};
        transpose.output = target;
        if (opts_.exploit_dependencies) {
          Register(mid);
          Register(target);
        }
        return target;
      }

      case DependencyType::kPartition: {
        const int target = NewNode(ref.name, ref.transposed,
                                   SchemeBit(required), target_stats);
        PlanStep& step = NewStep(StepKind::kPartition);
        step.inputs = {res.source_node};
        step.output = target;
        step.comm_bytes = bytes;
        if (opts_.exploit_dependencies) {
          Register(target);  // Algorithm 1 line 19: add Out to OutputSet
          costly_partitions_[ref.name].push_back({step.id, target});
        }
        return target;
      }

      case DependencyType::kTransposePartition: {
        // Local transpose first, then the repartition.
        const Scheme src_scheme = SchemeSetFirst(src.schemes);
        const int mid = NewNode(ref.name, ref.transposed,
                                SchemeBit(OppositeScheme(src_scheme)),
                                target_stats);
        PlanStep& transpose = NewStep(StepKind::kTranspose);
        transpose.inputs = {res.source_node};
        transpose.output = mid;
        const int target = NewNode(ref.name, ref.transposed,
                                   SchemeBit(required), target_stats);
        PlanStep& part = NewStep(StepKind::kPartition);
        part.inputs = {mid};
        part.output = target;
        part.comm_bytes = bytes;
        if (opts_.exploit_dependencies) {
          Register(mid);
          Register(target);
          costly_partitions_[ref.name].push_back({part.id, target});
        }
        return target;
      }

      case DependencyType::kBroadcast:
      case DependencyType::kTransposeBroadcast: {
        // Heuristic 1: pull the broadcast up to an earlier costly
        // repartition of the same matrix.
        if (opts_.exploit_dependencies && opts_.pull_up_broadcast) {
          DMAC_ASSIGN_OR_RETURN(int pulled, TryPullUpBroadcast(ref));
          if (pulled >= 0) return FinishBroadcastFrom(pulled, ref, required);
        }
        int from = res.source_node;
        if (res.dep == DependencyType::kTransposeBroadcast) {
          // Transpose locally, then broadcast.
          const Scheme src_scheme = SchemeSetFirst(src.schemes);
          const int mid = NewNode(ref.name, ref.transposed,
                                  SchemeBit(OppositeScheme(src_scheme)),
                                  target_stats);
          PlanStep& transpose = NewStep(StepKind::kTranspose);
          transpose.inputs = {res.source_node};
          transpose.output = mid;
          if (opts_.exploit_dependencies) Register(mid);
          from = mid;
        }
        const int target = NewNode(ref.name, ref.transposed,
                                   SchemeBit(Scheme::kBroadcast),
                                   target_stats);
        PlanStep& step = NewStep(StepKind::kBroadcast);
        step.inputs = {from};
        step.output = target;
        step.comm_bytes = static_cast<double>(opts_.num_workers) * bytes;
        if (opts_.exploit_dependencies) Register(target);
        return target;
      }

      case DependencyType::kNone:
        break;
    }
    return Status::Internal("unhandled dependency type");
  }

  /// Heuristic 1 body: rewrites the earlier costly repartition step into a
  /// broadcast and re-derives its output by a local extract. Returns the
  /// new broadcast node id, or -1 when no candidate exists.
  Result<int> TryPullUpBroadcast(const MatrixRef& ref) {
    auto it = costly_partitions_.find(ref.name);
    if (it == costly_partitions_.end() || it->second.empty()) return -1;
    const CostlyPartition entry = it->second.back();
    it->second.pop_back();

    PlanStep& step = plan_.steps[static_cast<size_t>(entry.step_id)];
    PlanNode& old_out = plan_.nodes[static_cast<size_t>(entry.node_id)];
    DMAC_CHECK(step.kind == StepKind::kPartition ||
               step.kind == StepKind::kLoad);

    DMAC_ASSIGN_OR_RETURN(MatrixStats base, BaseStats(ref.name));
    MatrixStats bstats =
        old_out.transposed ? base.Transposed() : base;
    const int bnode = NewNode(old_out.matrix, old_out.transposed,
                              SchemeBit(Scheme::kBroadcast), bstats);
    step.output = bnode;
    step.kind = step.kind == StepKind::kLoad ? StepKind::kLoad
                                             : StepKind::kBroadcast;
    step.comm_bytes =
        static_cast<double>(opts_.num_workers) * base.EstimatedBytes();
    Register(bnode);

    // Re-derive the original row/column partitioned node locally.
    PlanStep& extract = NewStep(StepKind::kExtract);
    extract.inputs = {bnode};
    extract.output = entry.node_id;
    return bnode;
  }

  /// Satisfies In(ref, required=b) from an existing broadcast node,
  /// transposing locally if the orientation differs.
  Result<int> FinishBroadcastFrom(int bnode_id, const MatrixRef& ref,
                                  Scheme required) {
    DMAC_CHECK(required == Scheme::kBroadcast);
    const PlanNode& bnode = plan_.nodes[static_cast<size_t>(bnode_id)];
    if (bnode.transposed == ref.transposed) return bnode_id;
    DMAC_ASSIGN_OR_RETURN(MatrixStats base, BaseStats(ref.name));
    const MatrixStats target_stats =
        ref.transposed ? base.Transposed() : base;
    const int target = NewNode(ref.name, ref.transposed,
                               SchemeBit(Scheme::kBroadcast), target_stats);
    PlanStep& step = NewStep(StepKind::kTranspose);
    step.inputs = {bnode_id};
    step.output = target;
    Register(target);
    return target;
  }

  // ---- strategy selection ----------------------------------------------

  /// Cost of executing `op` with strategy `st` given the current OutputSet
  /// (Equation 1's objective).
  Result<double> StrategyCost(const Operator& op, const Strategy& st) const {
    double cost = 0;
    for (size_t i = 0; i < op.inputs.size(); ++i) {
      const Resolution r = Resolve(op.inputs[i], st.input_schemes[i]);
      if (r.source_node < 0) {
        return Status::Internal("input " + op.inputs[i].ToString() +
                                " of " + op.ToString() + " is unavailable");
      }
      cost += r.cost;
    }
    if (st.output_comm) {
      DMAC_ASSIGN_OR_RETURN(MatrixStats out, BaseStats(op.output));
      cost += static_cast<double>(opts_.num_workers) * out.EstimatedBytes();
    }
    if (op.kind == OpKind::kLoad) {
      DMAC_ASSIGN_OR_RETURN(MatrixStats out, BaseStats(op.output));
      const double factor =
          SchemeSetContains(st.out_schemes, Scheme::kBroadcast)
              ? static_cast<double>(opts_.num_workers)
              : 1.0;
      cost += factor * out.EstimatedBytes();
    }
    return cost;
  }

  /// Tie-break score: how well does producing `name` with `out_schemes`
  /// serve the next few consumers of `name`? Sums, over up to
  /// `lookahead_edges` future input edges on this matrix, the cheapest
  /// dependency cost any of the consumer's strategies could achieve.
  double LookaheadScore(int op_index, const std::string& name,
                        SchemeSet out_schemes) const {
    if (opts_.lookahead_edges <= 0 || !opts_.exploit_dependencies) return 0;
    auto stats_it = stats_.find(name);
    if (stats_it == stats_.end()) return 0;
    const double bytes = stats_it->second.EstimatedBytes();

    double score = 0;
    int edges = 0;
    for (size_t j = static_cast<size_t>(op_index) + 1;
         j < ops_.ops.size() && edges < opts_.lookahead_edges; ++j) {
      const Operator& future = ops_.ops[j];
      for (size_t k = 0; k < future.inputs.size(); ++k) {
        const MatrixRef& ref = future.inputs[k];
        if (ref.name != name) continue;
        ++edges;
        double best = std::numeric_limits<double>::infinity();
        for (const Strategy& fs : CandidateStrategies(future)) {
          if (k >= fs.input_schemes.size()) continue;
          const Scheme need = fs.input_schemes[k];
          for (uint8_t s = 0; s < 3; ++s) {
            if (!(out_schemes & (1u << s))) continue;
            const DependencyType dep = ClassifyDependency(
                ref.transposed, static_cast<Scheme>(s), need);
            best = std::min(
                best, DependencyCommBytes(dep, bytes, opts_.num_workers));
          }
        }
        if (best < std::numeric_limits<double>::infinity()) score += best;
      }
    }
    return score;
  }

  // ---- per-operator planning (Algorithm 1 body) -------------------------

  Status PlanOperator(const Operator& op) {
    if (op.kind == OpKind::kScalarAssign) {
      PlanStep& step = NewStep(StepKind::kScalarAssign);
      step.scalar = op.scalar;
      step.scalar_out = op.scalar_out;
      return Status::Ok();
    }

    const std::vector<Strategy> candidates = CandidateStrategies(op);
    DMAC_CHECK(!candidates.empty());

    // Plan-search override: a forced operator commits the indexed candidate
    // directly (plan/search.h enumerates these assignments).
    const Strategy* best = nullptr;
    double best_cost = std::numeric_limits<double>::infinity();
    double best_look = std::numeric_limits<double>::infinity();
    const auto forced = opts_.forced_strategies.find(op.id);
    if (forced != opts_.forced_strategies.end()) {
      if (forced->second < 0 ||
          static_cast<size_t>(forced->second) >= candidates.size()) {
        return Status::Invalid("forced strategy index " +
                               std::to_string(forced->second) + " for " +
                               op.ToString() + " out of range");
      }
      best = &candidates[static_cast<size_t>(forced->second)];
      DMAC_ASSIGN_OR_RETURN(best_cost, StrategyCost(op, *best));
    }

    // Equation 1: pick the strategy with minimum communication; ties are
    // broken by the lookahead score over future consumers.
    for (const Strategy& st : candidates) {
      if (forced != opts_.forced_strategies.end()) break;  // forced above
      DMAC_ASSIGN_OR_RETURN(double cost, StrategyCost(op, st));
      double look = 0;
      if (!op.output.empty()) {
        look = LookaheadScore(op.id, op.output, st.out_schemes);
      }
      if (cost < best_cost ||
          (cost == best_cost && look < best_look)) {
        best = &st;
        best_cost = cost;
        best_look = look;
      }
    }
    DMAC_CHECK(best != nullptr);

    // Commit the chosen strategy: resolve inputs (emitting dependency
    // steps), then emit the operator step itself.
    std::vector<int> input_nodes;
    for (size_t i = 0; i < op.inputs.size(); ++i) {
      const Resolution r = Resolve(op.inputs[i], best->input_schemes[i]);
      DMAC_ASSIGN_OR_RETURN(
          int node, CommitResolution(op.inputs[i], best->input_schemes[i], r));
      input_nodes.push_back(node);
    }

    switch (op.kind) {
      case OpKind::kLoad:
      case OpKind::kRandom: {
        DMAC_ASSIGN_OR_RETURN(MatrixStats out_stats, BaseStats(op.output));
        const int out = NewNode(op.output, false, best->out_schemes,
                                out_stats);
        PlanStep& step = NewStep(op.kind == OpKind::kLoad ? StepKind::kLoad
                                                          : StepKind::kRandom);
        step.output = out;
        step.source = op.source;
        step.decl_shape = op.decl_shape;
        step.decl_sparsity = op.decl_sparsity;
        if (op.kind == OpKind::kLoad) {
          const double factor =
              SchemeSetContains(best->out_schemes, Scheme::kBroadcast)
                  ? static_cast<double>(opts_.num_workers)
                  : 1.0;
          step.comm_bytes = factor * out_stats.EstimatedBytes();
          if (opts_.exploit_dependencies &&
              !SchemeSetContains(best->out_schemes, Scheme::kBroadcast)) {
            costly_partitions_[op.output].push_back({step.id, out});
          }
        }
        Register(out);
        return Status::Ok();
      }

      case OpKind::kReduce: {
        PlanStep& step = NewStep(StepKind::kReduce);
        step.inputs = input_nodes;
        step.reduce = op.reduce;
        step.scalar_out = op.scalar_out;
        return Status::Ok();
      }

      default: {  // the five binary operators and scalar ops
        DMAC_ASSIGN_OR_RETURN(MatrixStats out_stats, BaseStats(op.output));
        const int out =
            NewNode(op.output, false, best->out_schemes, out_stats);
        PlanStep& step = NewStep(StepKind::kCompute);
        step.op_kind = op.kind;
        step.mult_algo = best->mult_algo;
        step.inputs = input_nodes;
        step.output = out;
        step.scalar = op.scalar;
        step.unary_fn = op.unary_fn;
        step.output_comm = best->output_comm;
        if (best->output_comm) {
          step.comm_bytes = static_cast<double>(opts_.num_workers) *
                            out_stats.EstimatedBytes();
        }
        Register(out);
        return Status::Ok();
      }
    }
  }

  Status BindOutputs() {
    for (const auto& [var, ref] : ops_.output_bindings) {
      int node = -1;
      bool transposed = false;
      for (int trans = 0; trans < 2 && node < 0; ++trans) {
        auto it = avail_[trans].find(ref.name);
        if (it == avail_[trans].end()) continue;
        // Prefer the orientation matching the binding; any scheme works.
        for (uint8_t s = 0; s < 3; ++s) {
          if (it->second.per_scheme[s] >= 0) {
            node = it->second.per_scheme[s];
            transposed = (trans == 1) != ref.transposed;
            break;
          }
        }
      }
      if (node < 0) {
        return Status::NotFound("no materialization of output matrix " +
                                ref.name);
      }
      plan_.outputs.push_back({var, node, transposed});
    }
    for (const auto& [var, ssa] : ops_.scalar_output_bindings) {
      plan_.scalar_outputs.emplace_back(var, ssa);
    }
    return Status::Ok();
  }

  const OperatorList& ops_;
  PlannerOptions opts_;
  StatsMap stats_;
  Plan plan_;
  // OutputSet: [transposed] -> matrix name -> per-scheme node.
  std::unordered_map<std::string, Availability> avail_[2];
  // InputSet entries with cost > 0 (Heuristic 1 candidates).
  std::unordered_map<std::string, std::vector<CostlyPartition>>
      costly_partitions_;
};

}  // namespace

Result<Plan> GeneratePlan(const OperatorList& ops,
                          const PlannerOptions& options) {
  return Planner(ops, options).Run();
}

}  // namespace dmac
