// Worst-case matrix size estimation (paper §5.1).
//
// Dimensions are inferred exactly from the operator semantics; sparsity is
// propagated with the paper's worst-case rules:
//   * multiplication:        s_C = 1
//   * other binary operator: s_C = min(s_A + s_B, 1)
//   * unary operator:        sparsity preserved
// Input sparsities come from the Load declarations (pre-computed offline or
// user-specified, per the paper).
#pragma once

#include <unordered_map>

#include "common/result.h"
#include "lang/op.h"
#include "matrix/shape.h"

namespace dmac {

/// Estimated characteristics of one (SSA) matrix.
struct MatrixStats {
  Shape shape;
  double sparsity = 1.0;

  MatrixStats Transposed() const { return {shape.Transposed(), sparsity}; }

  /// Estimated payload bytes: the cheaper of the dense encoding (4·m·n) and
  /// the CSC encoding (4·n + 8·m·n·s), mirroring Eq. 2.
  double EstimatedBytes() const;
};

/// Map from SSA matrix name to its estimated stats.
using StatsMap = std::unordered_map<std::string, MatrixStats>;

/// Runs worst-case estimation over a decomposed program, validating all
/// operator shapes along the way.
Result<StatsMap> EstimateSizes(const OperatorList& ops);

/// Stats of a (possibly transposed) matrix reference.
Result<MatrixStats> StatsForRef(const StatsMap& stats, const MatrixRef& ref);

}  // namespace dmac
