#include "plan/search.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "analysis/analyzer.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmac {

namespace {

/// One axis of the search space.
struct Decision {
  enum class Kind : uint8_t { kHeuristics, kFusion, kGroup };
  Kind kind = Kind::kGroup;
  /// kGroup: operators sharing this signature, in program order. All of
  /// them are forced to the same candidate index.
  std::vector<int> op_ids;
  int num_options = 2;
  std::string label;
  std::vector<std::string> option_names;
};

/// SSA base: "W#3" → "W" (iteration versions share a decision). Compiler
/// temporaries ("_t12", "_s3") are numbered fresh every unrolled iteration,
/// so their digits are stripped too — "_t12" → "_t" — or no two iterations
/// would ever share a signature.
std::string BaseName(const std::string& ssa) {
  std::string base = ssa.substr(0, ssa.find('#'));
  if (base.size() > 2 && base[0] == '_' &&
      (base[1] == 't' || base[1] == 's') &&
      base.find_first_not_of("0123456789", 2) == std::string::npos) {
    base.resize(2);
  }
  return base;
}

/// Operators with the same signature repeat the same computation in later
/// iterations of an unrolled loop and share one strategy decision.
std::string SignatureOf(const Operator& op) {
  std::string sig = std::to_string(static_cast<int>(op.kind));
  sig += '|';
  sig += BaseName(op.output);
  for (const MatrixRef& in : op.inputs) {
    sig += '|';
    sig += BaseName(in.name);
    if (in.transposed) sig += '\'';
  }
  if (!op.source.empty()) {
    sig += '|';
    sig += op.source;
  }
  return sig;
}

const char* SchemeWord(Scheme s) {
  switch (s) {
    case Scheme::kRow: return "row";
    case Scheme::kCol: return "col";
    case Scheme::kBroadcast: return "bcast";
  }
  return "?";
}

/// True for operators whose strategy choice the search enumerates: every
/// multiplication (RMM1/RMM2/CPMM) and every leaf placement (load/random:
/// row, column, broadcast).
bool Searchable(const Operator& op) {
  return op.kind == OpKind::kMultiply || op.kind == OpKind::kLoad ||
         op.kind == OpKind::kRandom;
}

std::vector<Decision> BuildDecisions(const OperatorList& ops) {
  std::vector<Decision> decisions;
  {
    Decision heur;
    heur.kind = Decision::Kind::kHeuristics;
    heur.num_options = 2;
    heur.label = "heur";
    heur.option_names = {"on", "off"};
    decisions.push_back(std::move(heur));
    Decision fuse;
    fuse.kind = Decision::Kind::kFusion;
    fuse.num_options = 2;
    fuse.label = "fuse";
    fuse.option_names = {"on", "off"};
    decisions.push_back(std::move(fuse));
  }
  std::unordered_map<std::string, size_t> group_of;
  for (const Operator& op : ops.ops) {
    if (!Searchable(op)) continue;
    const std::vector<Strategy> candidates = CandidateStrategies(op);
    if (candidates.size() < 2) continue;
    // Same-signature ops must also agree on the candidate count (digit
    // stripping can merge same-shaped expressions over different-shaped
    // operands) or a forced index could fall out of range for one of them.
    const std::string sig =
        SignatureOf(op) + '|' + std::to_string(candidates.size());
    auto it = group_of.find(sig);
    if (it != group_of.end()) {
      decisions[it->second].op_ids.push_back(op.id);
      continue;
    }
    Decision d;
    d.kind = Decision::Kind::kGroup;
    d.op_ids = {op.id};
    d.num_options = static_cast<int>(candidates.size());
    if (op.kind == OpKind::kMultiply) {
      d.label = BaseName(op.output) + "=" + BaseName(op.inputs[0].name) +
                (op.inputs[0].transposed ? "'" : "") + "*" +
                BaseName(op.inputs[1].name) +
                (op.inputs[1].transposed ? "'" : "");
      for (const Strategy& st : candidates) {
        d.option_names.push_back(MultAlgoName(st.mult_algo));
      }
    } else {
      d.label = BaseName(op.output);
      for (const Strategy& st : candidates) {
        d.option_names.push_back(SchemeWord(SchemeSetFirst(st.out_schemes)));
      }
    }
    group_of.emplace(sig, decisions.size());
    decisions.push_back(std::move(d));
  }
  return decisions;
}

/// Scoring window: the prefix through the second occurrence of every
/// signature (first when a signature occurs once). An unrolled iterative
/// program is scored on its first ~two iterations — the steady state every
/// later iteration repeats — which keeps beam scoring O(window), not
/// O(program). Non-repetitive programs get the whole program.
size_t WindowLength(const OperatorList& ops) {
  std::unordered_map<std::string, int> occurrences;
  size_t cut = 0;
  for (size_t i = 0; i < ops.ops.size(); ++i) {
    const int n = ++occurrences[SignatureOf(ops.ops[i])];
    if (n <= 2) cut = i + 1;
  }
  return cut;
}

/// A partial or complete assignment of options to decisions (prefix order).
using Assignment = std::vector<int>;

struct ScoredState {
  Assignment assignment;
  double seconds = 0;
  double comm_bytes = 0;
};

bool BetterScore(const ScoredState& a, const ScoredState& b) {
  if (a.seconds != b.seconds) return a.seconds < b.seconds;
  return a.comm_bytes < b.comm_bytes;
}

class Searcher {
 public:
  Searcher(const OperatorList& ops, const PlannerOptions& base,
           const SearchOptions& options, const CostModel& model)
      : ops_(ops), base_(base), options_(options), model_(model) {}

  Result<SearchResult> Run() {
    Timer timer;
    TraceSpan span(kTraceSearch, "plan-search");
    decisions_ = BuildDecisions(ops_);
    stats_.decisions = static_cast<int64_t>(decisions_.size());

    window_.ops.assign(ops_.ops.begin(),
                       ops_.ops.begin() +
                           static_cast<ptrdiff_t>(WindowLength(ops_)));

    DMAC_ASSIGN_OR_RETURN(std::vector<Assignment> finalists, Enumerate());

    SearchResult result;
    result.stats = stats_;

    // The unforced Algorithm-1 plan is always candidate #0 before ranking:
    // the stable sort below keeps it ahead on exact cost ties, so a search
    // that finds nothing better returns the greedy plan itself (and racing
    // or executing the winner is then bit-identical to a search-off run).
    DMAC_ASSIGN_OR_RETURN(PlanCandidate greedy,
                          Finalize(Assignment(), /*greedy=*/true));
    result.candidates.push_back(std::move(greedy));
    std::unordered_set<std::string> seen;
    seen.insert(result.candidates[0].plan.ToString());

    for (const Assignment& a : finalists) {
      Result<PlanCandidate> cand = Finalize(a, /*greedy=*/false);
      if (!cand.ok()) {
        ++stats_.rejected;
        continue;
      }
      if (!seen.insert(cand->plan.ToString()).second) continue;
      result.candidates.push_back(*std::move(cand));
    }
    std::stable_sort(result.candidates.begin(), result.candidates.end(),
                     [](const PlanCandidate& a, const PlanCandidate& b) {
                       if (a.cost.seconds() != b.cost.seconds()) {
                         return a.cost.seconds() < b.cost.seconds();
                       }
                       return a.cost.comm_bytes < b.cost.comm_bytes;
                     });

    stats_.seconds = timer.ElapsedSeconds();
    result.stats = stats_;
    ExportMetrics(result);
    return result;
  }

 private:
  /// Planner options realizing `assignment` (decisions beyond its length
  /// stay at the base/greedy behavior).
  PlannerOptions Materialize(const Assignment& assignment) const {
    PlannerOptions opts = base_;
    opts.verify_plan = false;  // finalists go through VerifyPlan explicitly
    for (size_t i = 0; i < assignment.size(); ++i) {
      const Decision& d = decisions_[i];
      switch (d.kind) {
        case Decision::Kind::kHeuristics:
          opts.pull_up_broadcast = assignment[i] == 0;
          opts.reassignment = assignment[i] == 0;
          break;
        case Decision::Kind::kFusion:
          opts.fuse_transposes = assignment[i] == 0;
          break;
        case Decision::Kind::kGroup:
          for (int id : d.op_ids) opts.forced_strategies[id] = assignment[i];
          break;
      }
    }
    return opts;
  }

  /// Scores a partial assignment on the window program. Returns an error
  /// when the forced combination cannot be planned at all.
  Result<ScoredState> Score(Assignment assignment) {
    ++stats_.planned;
    DMAC_ASSIGN_OR_RETURN(Plan plan,
                          GeneratePlan(window_, Materialize(assignment)));
    const PlanCost cost = model_.EstimatePlan(plan);
    ScoredState s;
    s.assignment = std::move(assignment);
    s.seconds = cost.seconds();
    s.comm_bytes = cost.comm_bytes;
    return s;
  }

  /// Beam or exhaustive enumeration over the decision axes; returns
  /// complete assignments ranked by window score, best first, at most
  /// beam_width of them.
  Result<std::vector<Assignment>> Enumerate() {
    std::vector<ScoredState> frontier;
    {
      DMAC_ASSIGN_OR_RETURN(ScoredState root, Score(Assignment()));
      frontier.push_back(std::move(root));
    }
    const bool exhaustive = options_.mode == PlanSearchMode::kExhaustive;
    if (exhaustive) {
      double space = 1;
      for (const Decision& d : decisions_) space *= d.num_options;
      if (space > static_cast<double>(options_.max_exhaustive)) {
        return Status::Invalid(
            "plan search: exhaustive space of " +
            std::to_string(static_cast<int64_t>(space)) +
            " assignments exceeds the cap of " +
            std::to_string(options_.max_exhaustive) + "; use beam mode");
      }
    }
    const size_t keep =
        static_cast<size_t>(std::max(options_.beam_width, 1));

    for (size_t level = 0; level < decisions_.size(); ++level) {
      std::vector<ScoredState> next;
      for (const ScoredState& state : frontier) {
        for (int opt = 0; opt < decisions_[level].num_options; ++opt) {
          Assignment extended = state.assignment;
          extended.push_back(opt);
          Result<ScoredState> scored = Score(std::move(extended));
          if (!scored.ok()) {
            ++stats_.rejected;
            continue;
          }
          next.push_back(*std::move(scored));
        }
      }
      if (next.empty()) {
        return Status::Internal(
            "plan search: no candidate survived decision level " +
            std::to_string(level) + " (" + decisions_[level].label + ")");
      }
      std::stable_sort(next.begin(), next.end(), BetterScore);
      if (!exhaustive && next.size() > keep) next.resize(keep);
      frontier = std::move(next);
    }

    // Exhaustive mode ranks the full cross product by the same window
    // score, then hands the identical top slice to full-program costing —
    // on programs the window covers entirely, beam and exhaustive agree
    // whenever beam kept the optimum in its frontier.
    if (frontier.size() > keep) frontier.resize(keep);
    std::vector<Assignment> finalists;
    finalists.reserve(frontier.size());
    for (ScoredState& s : frontier) {
      finalists.push_back(std::move(s.assignment));
    }
    return finalists;
  }

  /// Full-program plan + static verification + cost for one assignment.
  Result<PlanCandidate> Finalize(const Assignment& assignment, bool greedy) {
    ++stats_.planned;
    DMAC_ASSIGN_OR_RETURN(Plan plan,
                          GeneratePlan(ops_, Materialize(assignment)));
    ++stats_.verified;
    DMAC_RETURN_NOT_OK(VerifyPlan(ops_, plan, base_.num_workers,
                                  base_.min_workers, base_.resume));
    PlanCandidate cand;
    cand.cost = model_.EstimatePlan(plan);
    cand.plan = std::move(plan);
    cand.greedy = greedy;
    cand.decisions = Describe(assignment);
    return cand;
  }

  std::string Describe(const Assignment& assignment) const {
    if (assignment.empty()) return "greedy";
    std::string out;
    for (size_t i = 0; i < assignment.size(); ++i) {
      if (!out.empty()) out += ' ';
      out += decisions_[i].label + "=" +
             decisions_[i].option_names[static_cast<size_t>(assignment[i])];
    }
    return out;
  }

  void ExportMetrics(const SearchResult& result) const {
    auto& registry = MetricRegistry::Global();
    static Counter* candidates =
        registry.counter(kMetricPlanSearchCandidates);
    static Counter* planned = registry.counter(kMetricPlanSearchPlanned);
    static Counter* rejected = registry.counter(kMetricPlanSearchRejected);
    static Gauge* seconds = registry.gauge(kMetricPlanSearchSeconds);
    candidates->Add(static_cast<int64_t>(result.candidates.size()));
    planned->Add(stats_.planned);
    rejected->Add(stats_.rejected);
    seconds->Set(stats_.seconds);
  }

  const OperatorList& ops_;
  const PlannerOptions& base_;
  const SearchOptions& options_;
  const CostModel& model_;
  std::vector<Decision> decisions_;
  OperatorList window_;
  SearchStats stats_;
};

}  // namespace

const char* PlanSearchModeName(PlanSearchMode mode) {
  switch (mode) {
    case PlanSearchMode::kOff: return "off";
    case PlanSearchMode::kBeam: return "beam";
    case PlanSearchMode::kExhaustive: return "exhaustive";
  }
  return "?";
}

Result<PlanSearchMode> ParsePlanSearchMode(const std::string& name) {
  if (name == "off") return PlanSearchMode::kOff;
  if (name == "beam") return PlanSearchMode::kBeam;
  if (name == "exhaustive") return PlanSearchMode::kExhaustive;
  return Status::Invalid("unknown plan-search mode '" + name +
                         "' (expected off, beam, or exhaustive)");
}

Result<SearchResult> SearchPlans(const OperatorList& ops,
                                 const PlannerOptions& base,
                                 const SearchOptions& options,
                                 const CostModel& model) {
  if (!base.forced_strategies.empty()) {
    return Status::Invalid(
        "plan search: base PlannerOptions already force strategies");
  }
  if (options.mode == PlanSearchMode::kOff) {
    return Status::Invalid("plan search invoked with mode=off");
  }
  return Searcher(ops, base, options, model).Run();
}

}  // namespace dmac
