// Netflix-shaped rating matrix generator.
//
// The Netflix Prize dataset (480,189 users × 17,770 movies, ~100.5M ratings
// in {1..5}) is proprietary; the paper's GNMF/CF/SVD results depend on it
// only through its dimensions and sparsity (~1.18%), which this generator
// preserves. `scale` divides both dimensions (and keeps sparsity fixed) for
// laptop-sized runs.
#pragma once

#include <algorithm>
#include <cstdint>

#include "matrix/local_matrix.h"

namespace dmac {

/// Shape/sparsity constants of the Netflix Prize dataset.
struct NetflixSpec {
  int64_t users = 480189;
  int64_t movies = 17770;
  double sparsity = 0.0118;

  /// Users × movies matrix with both dimensions divided by `factor`.
  NetflixSpec Scaled(double factor) const {
    NetflixSpec out = *this;
    out.users = std::max<int64_t>(1, static_cast<int64_t>(users / factor));
    out.movies = std::max<int64_t>(1, static_cast<int64_t>(movies / factor));
    return out;
  }
};

/// Users × movies rating matrix with ratings uniform in {1..5}.
LocalMatrix NetflixRatings(const NetflixSpec& spec, int64_t block_size,
                           uint64_t seed);

}  // namespace dmac
