#include "data/synthetic.h"

namespace dmac {

LocalMatrix SyntheticSparse(int64_t rows, int64_t cols, double sparsity,
                            int64_t block_size, uint64_t seed) {
  return LocalMatrix::RandomSparse({rows, cols}, block_size, sparsity, seed);
}

LocalMatrix SyntheticDense(int64_t rows, int64_t cols, int64_t block_size,
                           uint64_t seed) {
  return LocalMatrix::RandomDense({rows, cols}, block_size, seed);
}

LocalMatrix ConstantMatrix(Shape shape, int64_t block_size, Scalar value) {
  LocalMatrix m = LocalMatrix::Zeros(shape, block_size);
  return m.ScalarAdd(value);
}

}  // namespace dmac
