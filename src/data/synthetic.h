// The paper's synthetic workload generator (§6.1): "a random data generator
// which can produce a sparse matrix V with d rows and w columns in s
// sparsity". Deterministic per seed.
#pragma once

#include <cstdint>

#include "matrix/local_matrix.h"

namespace dmac {

/// Random sparse d×w matrix with expected sparsity s; uniform placement,
/// values in (0, 1].
LocalMatrix SyntheticSparse(int64_t rows, int64_t cols, double sparsity,
                            int64_t block_size, uint64_t seed);

/// Random dense matrix with values in [0, 1).
LocalMatrix SyntheticDense(int64_t rows, int64_t cols, int64_t block_size,
                           uint64_t seed);

/// Dense column/row vector of a constant value (e.g. PageRank's teleport
/// matrix D, or a regression target).
LocalMatrix ConstantMatrix(Shape shape, int64_t block_size, Scalar value);

}  // namespace dmac
