// Matrix Market (.mtx) I/O — lets the library run on real datasets (the
// SNAP/KONECT graphs the paper uses are distributed in convertible edge-list
// or MatrixMarket form).
//
// Supported: `matrix coordinate real|integer|pattern general|symmetric`
// and `matrix array real|integer general`.
#pragma once

#include <string>

#include "common/result.h"
#include "matrix/local_matrix.h"

namespace dmac {

/// Parses MatrixMarket text into a blocked LocalMatrix.
Result<LocalMatrix> ReadMatrixMarket(const std::string& path,
                                     int64_t block_size);

/// Parses MatrixMarket from an in-memory string (testing, embedding).
Result<LocalMatrix> ParseMatrixMarket(const std::string& content,
                                      int64_t block_size);

/// Writes a LocalMatrix in coordinate format (sparse blocks) — always
/// `matrix coordinate real general` with 1-based indices.
Status WriteMatrixMarket(const LocalMatrix& matrix, const std::string& path);

}  // namespace dmac
