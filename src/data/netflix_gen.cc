#include "data/netflix_gen.h"

#include "common/rng.h"
#include "data/triplets.h"

namespace dmac {

LocalMatrix NetflixRatings(const NetflixSpec& spec, int64_t block_size,
                           uint64_t seed) {
  Rng rng(seed);
  const int64_t target = static_cast<int64_t>(
      spec.sparsity * static_cast<double>(spec.users) *
      static_cast<double>(spec.movies));
  std::vector<Triplet> ratings;
  ratings.reserve(static_cast<size_t>(target));
  for (int64_t i = 0; i < target; ++i) {
    const int64_t user = static_cast<int64_t>(rng.NextBounded(
        static_cast<uint64_t>(spec.users)));
    const int64_t movie = static_cast<int64_t>(rng.NextBounded(
        static_cast<uint64_t>(spec.movies)));
    const Scalar rating = static_cast<Scalar>(1 + rng.NextBounded(5));
    ratings.push_back({user, movie, rating});
  }
  return MatrixFromTriplets({spec.users, spec.movies}, block_size, ratings);
}

}  // namespace dmac
