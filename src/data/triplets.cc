#include "data/triplets.h"

#include <unordered_map>

#include "common/logging.h"
#include "matrix/csc_block.h"

namespace dmac {

LocalMatrix MatrixFromTriplets(Shape shape, int64_t block_size,
                               const std::vector<Triplet>& triplets) {
  const BlockGrid grid{shape, block_size};
  // Bucket triplets per block, then build each block's CSC.
  std::unordered_map<int64_t, std::vector<Triplet>> buckets;
  for (const Triplet& t : triplets) {
    DMAC_CHECK(t.row >= 0 && t.row < shape.rows);
    DMAC_CHECK(t.col >= 0 && t.col < shape.cols);
    const int64_t bi = t.row / block_size;
    const int64_t bj = t.col / block_size;
    buckets[bi * grid.block_cols() + bj].push_back(t);
  }

  std::vector<Block> blocks;
  blocks.reserve(static_cast<size_t>(grid.num_blocks()));
  for (int64_t bi = 0; bi < grid.block_rows(); ++bi) {
    for (int64_t bj = 0; bj < grid.block_cols(); ++bj) {
      const Shape s = grid.BlockShape(bi, bj);
      CscBuilder builder(s.rows, s.cols);
      auto it = buckets.find(bi * grid.block_cols() + bj);
      if (it != buckets.end()) {
        builder.Reserve(it->second.size());
        for (const Triplet& t : it->second) {
          builder.Add(t.row - bi * block_size, t.col - bj * block_size,
                      t.value);
        }
      }
      blocks.emplace_back(builder.Build());
    }
  }
  return LocalMatrix::FromBlocks(shape, block_size, std::move(blocks));
}

}  // namespace dmac
