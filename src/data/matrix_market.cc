#include "data/matrix_market.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "data/triplets.h"

namespace dmac {

namespace {

struct Header {
  bool coordinate = true;   // else: array
  bool pattern = false;     // entries have no value (treated as 1)
  bool symmetric = false;
};

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

Result<Header> ParseHeader(const std::string& line) {
  std::istringstream in(line);
  std::string banner, object, format, field, symmetry;
  in >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") {
    return Status::Invalid("not a MatrixMarket file (missing banner)");
  }
  if (ToLower(object) != "matrix") {
    return Status::Unsupported("MatrixMarket object '" + object + "'");
  }
  Header h;
  const std::string fmt = ToLower(format);
  if (fmt == "coordinate") {
    h.coordinate = true;
  } else if (fmt == "array") {
    h.coordinate = false;
  } else {
    return Status::Unsupported("MatrixMarket format '" + format + "'");
  }
  const std::string fld = ToLower(field);
  if (fld == "pattern") {
    h.pattern = true;
  } else if (fld != "real" && fld != "integer") {
    return Status::Unsupported("MatrixMarket field '" + field + "'");
  }
  const std::string sym = ToLower(symmetry);
  if (sym == "symmetric") {
    h.symmetric = true;
  } else if (sym != "general") {
    return Status::Unsupported("MatrixMarket symmetry '" + symmetry + "'");
  }
  if (!h.coordinate && h.pattern) {
    return Status::Invalid("array format cannot be pattern");
  }
  return h;
}

}  // namespace

Result<LocalMatrix> ParseMatrixMarket(const std::string& content,
                                      int64_t block_size) {
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::Invalid("empty MatrixMarket input");
  }
  DMAC_ASSIGN_OR_RETURN(Header header, ParseHeader(line));

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  int64_t rows = 0, cols = 0, nnz = 0;
  if (header.coordinate) {
    if (!(dims >> rows >> cols >> nnz)) {
      return Status::Invalid("bad coordinate size line: " + line);
    }
  } else {
    if (!(dims >> rows >> cols)) {
      return Status::Invalid("bad array size line: " + line);
    }
  }
  if (rows <= 0 || cols <= 0) {
    return Status::Invalid("non-positive MatrixMarket dimensions");
  }

  std::vector<Triplet> triplets;
  if (header.coordinate) {
    triplets.reserve(static_cast<size_t>(header.symmetric ? 2 * nnz : nnz));
    for (int64_t k = 0; k < nnz; ++k) {
      if (!std::getline(in, line)) {
        return Status::Invalid("truncated MatrixMarket entries (expected " +
                               std::to_string(nnz) + ")");
      }
      std::istringstream entry(line);
      int64_t r, c;
      double v = 1.0;
      if (!(entry >> r >> c)) {
        return Status::Invalid("bad MatrixMarket entry: " + line);
      }
      if (!header.pattern && !(entry >> v)) {
        return Status::Invalid("missing value in entry: " + line);
      }
      if (r < 1 || r > rows || c < 1 || c > cols) {
        return Status::OutOfRange("MatrixMarket index out of bounds: " +
                                  line);
      }
      triplets.push_back({r - 1, c - 1, static_cast<Scalar>(v)});
      if (header.symmetric && r != c) {
        triplets.push_back({c - 1, r - 1, static_cast<Scalar>(v)});
      }
    }
  } else {
    // Array format: column-major dense values.
    triplets.reserve(static_cast<size_t>(rows * cols));
    for (int64_t c = 0; c < cols; ++c) {
      for (int64_t r = 0; r < rows; ++r) {
        double v;
        if (!(in >> v)) {
          return Status::Invalid("truncated MatrixMarket array data");
        }
        if (v != 0) triplets.push_back({r, c, static_cast<Scalar>(v)});
      }
    }
  }
  LocalMatrix m = MatrixFromTriplets({rows, cols}, block_size, triplets);
  return m.Compacted();
}

Result<LocalMatrix> ReadMatrixMarket(const std::string& path,
                                     int64_t block_size) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ParseMatrixMarket(buffer.str(), block_size);
}

Status WriteMatrixMarket(const LocalMatrix& matrix, const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::Invalid("cannot write " + path);
  file << "%%MatrixMarket matrix coordinate real general\n";
  file << "% written by DMac\n";
  file << matrix.rows() << " " << matrix.cols() << " " << matrix.Nnz()
       << "\n";
  const int64_t bs = matrix.block_size();
  for (int64_t bi = 0; bi < matrix.grid().block_rows(); ++bi) {
    for (int64_t bj = 0; bj < matrix.grid().block_cols(); ++bj) {
      const Block& block = matrix.BlockAt(bi, bj);
      const CscBlock sparse = block.ToSparse();
      for (int64_t c = 0; c < sparse.cols(); ++c) {
        for (int32_t p = sparse.ColStart(c); p < sparse.ColEnd(c); ++p) {
          file << (bi * bs + sparse.row_idx()[p] + 1) << " "
               << (bj * bs + c + 1) << " " << sparse.values()[p] << "\n";
        }
      }
    }
  }
  return file.good() ? Status::Ok()
                     : Status::Internal("I/O error writing " + path);
}

}  // namespace dmac
