// Power-law graph generator standing in for the paper's real-world graphs
// (Table 3: soc-pokec, cit-Patents, LiveJournal, Wikipedia).
//
// The paper's experiments depend on the graphs only through dimension,
// edge count (nnz), and degree skew; a Chung–Lu style generator with a
// power-law target degree sequence preserves all three, so the multiply /
// PageRank behaviour (block density distribution, intermediate sizes) is
// representative. Presets carry the published node/edge counts and a
// `Scaled()` helper shrinks them proportionally for laptop runs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "matrix/local_matrix.h"

namespace dmac {

/// Description of a graph workload.
struct GraphSpec {
  std::string name;
  int64_t nodes = 0;
  int64_t edges = 0;
  /// Power-law skew: endpoint rank sampled as floor(nodes · u^skew); larger
  /// values concentrate edges on few hub nodes.
  double skew = 2.0;

  /// Returns a copy with node and edge counts divided by `factor`.
  GraphSpec Scaled(double factor) const;
};

/// Paper Table 3 datasets.
GraphSpec SocPokec();     // 1,632,803 nodes, 30,622,564 edges
GraphSpec CitPatents();   // 3,774,768 nodes, 16,518,978 edges
GraphSpec LiveJournal();  // 4,847,571 nodes, 68,993,773 edges
GraphSpec Wikipedia();    // 25,942,254 nodes, 601,038,301 edges

/// Adjacency matrix (entries 1.0) of a generated power-law graph.
LocalMatrix AdjacencyMatrix(const GraphSpec& spec, int64_t block_size,
                            uint64_t seed);

/// Row-normalized link matrix for PageRank: entry (i, j) = 1/outdeg(i) for
/// each edge i→j. Dangling rows are left empty (standard practice).
LocalMatrix RowNormalizedLink(const GraphSpec& spec, int64_t block_size,
                              uint64_t seed);

}  // namespace dmac
