// Building blocked matrices from coordinate triplets.
#pragma once

#include <cstdint>
#include <vector>

#include "matrix/local_matrix.h"

namespace dmac {

/// One (row, col, value) entry of a sparse matrix under construction.
struct Triplet {
  int64_t row;
  int64_t col;
  Scalar value;
};

/// Builds a blocked LocalMatrix from triplets (duplicates are summed).
/// Every block is emitted in CSC form; call Compacted() afterwards if dense
/// re-encoding of heavy blocks is wanted.
LocalMatrix MatrixFromTriplets(Shape shape, int64_t block_size,
                               const std::vector<Triplet>& triplets);

}  // namespace dmac
