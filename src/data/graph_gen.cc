#include "data/graph_gen.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/rng.h"
#include "data/triplets.h"

namespace dmac {

GraphSpec GraphSpec::Scaled(double factor) const {
  GraphSpec out = *this;
  out.nodes = std::max<int64_t>(1, static_cast<int64_t>(nodes / factor));
  out.edges = std::max<int64_t>(1, static_cast<int64_t>(edges / factor));
  return out;
}

GraphSpec SocPokec() { return {"soc-pokec", 1632803, 30622564, 2.0}; }
GraphSpec CitPatents() { return {"cit-Patents", 3774768, 16518978, 1.6}; }
GraphSpec LiveJournal() { return {"LiveJournal", 4847571, 68993773, 2.0}; }
GraphSpec Wikipedia() { return {"Wikipedia", 25942254, 601038301, 2.4}; }

namespace {

/// Power-law endpoint sampling: node = floor(n · u^skew) concentrates mass
/// on low indices with an approximately power-law frequency profile.
int64_t SampleNode(Rng& rng, int64_t n, double skew) {
  const double u = rng.NextDouble();
  const int64_t node = static_cast<int64_t>(std::pow(u, skew) *
                                            static_cast<double>(n));
  return node >= n ? n - 1 : node;
}

std::vector<Triplet> GenerateEdges(const GraphSpec& spec, uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> edges;
  edges.reserve(static_cast<size_t>(spec.edges));
  for (int64_t e = 0; e < spec.edges; ++e) {
    const int64_t src = SampleNode(rng, spec.nodes, spec.skew);
    const int64_t dst = SampleNode(rng, spec.nodes, spec.skew);
    edges.push_back({src, dst, 1.0f});
  }
  return edges;
}

}  // namespace

LocalMatrix AdjacencyMatrix(const GraphSpec& spec, int64_t block_size,
                            uint64_t seed) {
  std::vector<Triplet> edges = GenerateEdges(spec, seed);
  // Duplicate edges collapse to 1.0 (adjacency, not multiplicity).
  for (Triplet& t : edges) t.value = 1.0f;
  LocalMatrix m = MatrixFromTriplets({spec.nodes, spec.nodes}, block_size,
                                     edges);
  // Clamp summed duplicates back to 1.
  for (int64_t bi = 0; bi < m.grid().block_rows(); ++bi) {
    for (int64_t bj = 0; bj < m.grid().block_cols(); ++bj) {
      Block& b = m.BlockAt(bi, bj);
      CscBlock& s = b.sparse();
      std::vector<Scalar> values(s.values().size(), 1.0f);
      b = Block(CscBlock(s.rows(), s.cols(), s.col_ptr(), s.row_idx(),
                         std::move(values)));
    }
  }
  return m;
}

LocalMatrix RowNormalizedLink(const GraphSpec& spec, int64_t block_size,
                              uint64_t seed) {
  std::vector<Triplet> edges = GenerateEdges(spec, seed);
  std::unordered_map<int64_t, int64_t> outdeg;
  outdeg.reserve(edges.size());
  for (const Triplet& t : edges) ++outdeg[t.row];
  for (Triplet& t : edges) {
    t.value = 1.0f / static_cast<Scalar>(outdeg[t.row]);
  }
  // Duplicate edges: their normalized weights sum, keeping row sums at 1.
  return MatrixFromTriplets({spec.nodes, spec.nodes}, block_size, edges);
}

}  // namespace dmac
