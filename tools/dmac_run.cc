// dmac_run — run a matrix-language script on the simulated cluster.
//
//   dmac_run SCRIPT.dmac [options]
//
// Options:
//   --workers N       simulated workers (default 4)
//   --threads L       local threads per worker (default 2)
//   --block B         block side (default: Eq. 3 choice for the largest load)
//   --baseline        plan with the SystemML-S (dependency-oblivious) planner
//   --bind NAME=FILE  bind a load to a MatrixMarket file
//   --plan-only       print the plan and exit
//   --dot             with --plan-only: emit Graphviz instead of text
//   --stats           print a per-stage compute breakdown after execution
//   --compare         run both planners and print a side-by-side summary
//   --verify-plan     run the static plan verifier (src/analysis) after
//                     planning; abort on any error diagnostic
//   --trace-out F     enable tracing; write a Chrome-trace JSON file to F
//                     after the run (open in Perfetto / chrome://tracing)
//   --metrics-out F   enable metrics; write the metric dump to F after the
//                     run (.csv suffix selects CSV, anything else JSON)
//   --seed S          RNG seed (default 42)
//   --fault-spec F    enable fault injection from a key=value spec file
//                     (docs/fault_tolerance.md); recovery statistics are
//                     printed on a [fault] summary line, permanent-death
//                     and network-fault accounting on [membership] and
//                     [fault.net] lines
//   --min-workers N   quorum for degraded mode (default 1): permanent
//                     worker deaths that would leave fewer than N live
//                     workers fail the run with kUnavailable instead of
//                     rebalancing
//   --checkpoint-every K
//                     checkpoint hinted matrices every K producing steps
//   --checkpoint-dir DIR
//                     durable checkpoints: commit every in-memory checkpoint
//                     to DIR as a crash-consistent epoch (write-temp, fsync,
//                     atomic rename); --checkpoint-every 0 then defaults to 1
//   --resume          restore the last committed epoch from --checkpoint-dir
//                     before executing; the resumed run is bit-identical to
//                     an uninterrupted one. A fresh/empty directory is a
//                     plain full run, so a crash-restart loop can always
//                     pass --resume
//   --crash-at N      simulate a crash at the N-th durable write point
//                     (1-based, counted across the run); the process exits
//                     with code 42 unless the spec sets crash_soft
//   --deadline-ms MS  wall-clock deadline (docs/governance.md); 0 is already
//                     expired, so the run fails with kDeadlineExceeded
//                     before any work happens
//   --mem-budget-mb MB
//                     per-query memory budget; cold partitions spill to disk
//                     past it, kResourceExhausted when spilling cannot help
//   --concurrency N   run the script as N concurrent queries through the
//                     admission-controlled QuerySession (all must succeed)
//   --help            print usage plus the exit-code table and exit 0
//
// Loads without a --bind are synthesized from their declared shape and
// sparsity, so any script runs out of the box:
//
//   dmac_run scripts/gnmf.dmac
//   dmac_run scripts/gnmf.dmac --bind V=ratings.mtx --workers 8
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "apps/runner.h"
#include "data/matrix_market.h"
#include "data/synthetic.h"
#include "governor/query_session.h"
#include "lang/parser.h"
#include "obs/session.h"
#include "plan/plan_dot.h"
#include "runtime/block_size.h"

using namespace dmac;

namespace {

/// Collects every load declaration (name → shape, sparsity) in the program.
void CollectLoads(const MatrixExprPtr& e,
                  std::map<std::string, std::pair<Shape, double>>* loads);

void CollectLoadsScalar(const ScalarExprPtr& e,
                        std::map<std::string, std::pair<Shape, double>>* l) {
  if (e == nullptr) return;
  CollectLoads(e->matrix, l);
  CollectLoadsScalar(e->lhs, l);
  CollectLoadsScalar(e->rhs, l);
}

void CollectLoads(const MatrixExprPtr& e,
                  std::map<std::string, std::pair<Shape, double>>* loads) {
  if (e == nullptr) return;
  if (e->kind == MatrixExpr::Kind::kLoad) {
    (*loads)[e->name] = {e->shape, e->sparsity};
  }
  CollectLoads(e->lhs, loads);
  CollectLoads(e->rhs, loads);
  CollectLoadsScalar(e->scalar, loads);
}

void PrintUsage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s SCRIPT.dmac [--workers N] [--threads L] "
               "[--block B] [--baseline] [--bind NAME=FILE] [--plan-only] "
               "[--dot] [--trace-out FILE] [--metrics-out FILE] [--seed S] "
               "[--fault-spec FILE] [--min-workers N] "
               "[--checkpoint-every K] [--checkpoint-dir DIR] [--resume] "
               "[--crash-at N] "
               "[--deadline-ms MS] [--mem-budget-mb MB] [--concurrency N] "
               "[--plan-search MODE] [--beam-width W] [--calibration FILE] "
               "[--race-top2] [--help]\n"
               "\n"
               "plan search (docs/planner.md):\n"
               "  --plan-search off|beam|exhaustive  cost-based candidate\n"
               "      plan search; beam keeps --beam-width partial\n"
               "      assignments (default 8)\n"
               "  --calibration FILE   kernel rates (CALIBRATION.json or\n"
               "      BENCH_kernels.json); default: built-in rates\n"
               "  --race-top2          race the top two finalists for one\n"
               "      probe iteration and execute the measured winner\n"
               "\n"
               "exit codes (docs/governance.md):\n"
               "  0  success\n"
               "  1  error (parse, I/O, planning, execution)\n"
               "  2  bad usage\n"
               "  3  cancelled            (kCancelled)\n"
               "  4  deadline exceeded    (kDeadlineExceeded)\n"
               "  5  resource exhausted   (kResourceExhausted: admission "
               "rejected, or spilling cannot fit the budget)\n"
               "  6  unavailable          (kUnavailable: unrecovered fault, "
               "or permanent deaths broke the --min-workers quorum)\n"
               "  7  data loss            (kDataLoss: corruption detected)\n"
               "  42 simulated crash      (--crash-at / crash_at write point "
               "reached; restart with --resume)\n",
               argv0);
}

int Usage(const char* argv0) {
  PrintUsage(stderr, argv0);
  return 2;
}

/// Maps a terminal Status to the documented process exit code.
int ExitCodeFor(const Status& st) {
  switch (st.code()) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kCancelled:
      return 3;
    case StatusCode::kDeadlineExceeded:
      return 4;
    case StatusCode::kResourceExhausted:
      return 5;
    case StatusCode::kUnavailable:
      return 6;
    case StatusCode::kDataLoss:
      return 7;
    default:
      return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--help") == 0) {
    PrintUsage(stdout, argv[0]);
    return 0;
  }
  if (argc < 2) return Usage(argv[0]);
  const std::string script_path = argv[1];

  RunConfig config;
  bool plan_only = false, dot = false, stats_flag = false, compare = false;
  double deadline_ms = -1;  // < 0 = no deadline (0 is already expired)
  int64_t mem_budget_mb = 0;
  int concurrency = 1;
  // Applied after --fault-spec so the flag wins over a spec-file crash_at.
  int crash_at = 0;
  std::string trace_out, metrics_out, fault_spec_path;
  std::map<std::string, std::string> file_bindings;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    // Accepts both "--flag VALUE" and "--flag=VALUE" for the output paths.
    auto path_flag = [&](const char* flag, std::string* out) -> bool {
      if (arg == flag) {
        const char* v = next_value();
        if (v) *out = v;
        return true;
      }
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) {
        *out = arg.substr(prefix.size());
        return true;
      }
      return false;
    };
    if (path_flag("--trace-out", &trace_out)) {
      if (trace_out.empty()) return Usage(argv[0]);
    } else if (path_flag("--metrics-out", &metrics_out)) {
      if (metrics_out.empty()) return Usage(argv[0]);
    } else if (path_flag("--fault-spec", &fault_spec_path)) {
      if (fault_spec_path.empty()) return Usage(argv[0]);
    } else if (arg == "--min-workers") {
      const char* v = next_value();
      if (!v) return Usage(argv[0]);
      config.min_workers = std::atoi(v);
      if (config.min_workers < 1) return Usage(argv[0]);
    } else if (arg == "--checkpoint-every") {
      const char* v = next_value();
      if (!v) return Usage(argv[0]);
      config.checkpoint_every = std::atoi(v);
    } else if (path_flag("--checkpoint-dir", &config.checkpoint_dir)) {
      if (config.checkpoint_dir.empty()) return Usage(argv[0]);
    } else if (arg == "--resume") {
      config.resume = true;
    } else if (arg == "--crash-at") {
      const char* v = next_value();
      if (!v) return Usage(argv[0]);
      crash_at = std::atoi(v);
      if (crash_at < 1) return Usage(argv[0]);
    } else if (arg == "--deadline-ms") {
      const char* v = next_value();
      if (!v) return Usage(argv[0]);
      deadline_ms = std::atof(v);
      if (deadline_ms < 0) return Usage(argv[0]);
    } else if (arg == "--mem-budget-mb") {
      const char* v = next_value();
      if (!v) return Usage(argv[0]);
      mem_budget_mb = std::atoll(v);
      if (mem_budget_mb <= 0) return Usage(argv[0]);
    } else if (arg == "--concurrency") {
      const char* v = next_value();
      if (!v) return Usage(argv[0]);
      concurrency = std::atoi(v);
      if (concurrency < 1) return Usage(argv[0]);
    } else if (arg == "--help") {
      PrintUsage(stdout, argv[0]);
      return 0;
    } else if (arg == "--workers") {
      const char* v = next_value();
      if (!v) return Usage(argv[0]);
      config.num_workers = std::atoi(v);
    } else if (arg == "--threads") {
      const char* v = next_value();
      if (!v) return Usage(argv[0]);
      config.threads_per_worker = std::atoi(v);
    } else if (arg == "--block") {
      const char* v = next_value();
      if (!v) return Usage(argv[0]);
      config.block_size = std::atoll(v);
    } else if (arg == "--seed") {
      const char* v = next_value();
      if (!v) return Usage(argv[0]);
      config.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (path_flag("--calibration", &config.calibration_path)) {
      if (config.calibration_path.empty()) return Usage(argv[0]);
    } else if (arg == "--plan-search" ||
               arg.rfind("--plan-search=", 0) == 0) {
      std::string mode;
      if (arg == "--plan-search") {
        const char* v = next_value();
        if (!v) return Usage(argv[0]);
        mode = v;
      } else {
        mode = arg.substr(std::string("--plan-search=").size());
      }
      auto parsed = ParsePlanSearchMode(mode);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return Usage(argv[0]);
      }
      config.plan_search = *parsed;
    } else if (arg == "--beam-width") {
      const char* v = next_value();
      if (!v) return Usage(argv[0]);
      config.beam_width = std::atoi(v);
      if (config.beam_width < 1) return Usage(argv[0]);
    } else if (arg == "--race-top2") {
      config.race_top2 = true;
    } else if (arg == "--baseline") {
      config.exploit_dependencies = false;
    } else if (arg == "--verify-plan") {
      config.verify_plan = true;
    } else if (arg == "--plan-only") {
      plan_only = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--stats") {
      stats_flag = true;
    } else if (arg == "--compare") {
      compare = true;
    } else if (arg == "--bind") {
      const char* v = next_value();
      if (!v) return Usage(argv[0]);
      const std::string spec = v;
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) return Usage(argv[0]);
      file_bindings[spec.substr(0, eq)] = spec.substr(eq + 1);
    } else {
      return Usage(argv[0]);
    }
  }

  std::ifstream file(script_path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", script_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  auto program = ParseProgram(buffer.str());
  if (!program.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  if (!fault_spec_path.empty()) {
    auto spec = LoadFaultSpecFile(fault_spec_path);
    if (!spec.ok()) {
      std::fprintf(stderr, "--fault-spec: %s\n",
                   spec.status().ToString().c_str());
      return 1;
    }
    config.fault = *spec;
  }
  if (crash_at > 0) config.fault.disk.crash_at = crash_at;
  if ((config.resume || crash_at > 0) && config.checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume / --crash-at require --checkpoint-dir\n");
    return 2;
  }

  const bool obs = !trace_out.empty() || !metrics_out.empty();
  if (obs) EnableObservability();
  // Writes the requested trace / metrics files. Every successful path
  // returns this, so a failed write turns into a nonzero exit code.
  auto finish_obs = [&]() -> int {
    if (!trace_out.empty()) {
      Status st = WriteTraceFile(trace_out);
      if (!st.ok()) {
        std::fprintf(stderr, "--trace-out: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    if (!metrics_out.empty()) {
      Status st = WriteMetricsFile(metrics_out);
      if (!st.ok()) {
        std::fprintf(stderr, "--metrics-out: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    return 0;
  };

  if (plan_only) {
    auto plan = PlanProgram(*program, config);
    if (!plan.ok()) {
      std::fprintf(stderr, "plan error: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", dot ? PlanToDot(*plan).c_str()
                          : plan->ToString().c_str());
    return finish_obs();
  }

  // Assemble the input data: --bind files, synthetic for the rest.
  std::map<std::string, std::pair<Shape, double>> loads;
  for (const Statement& st : program->statements) {
    CollectLoads(st.matrix, &loads);
    CollectLoadsScalar(st.scalar, &loads);
  }
  int64_t block_size = config.block_size;
  if (block_size == 0) {
    auto chosen = ChooseProgramBlockSize(*program, config.num_workers,
                                         config.threads_per_worker);
    if (!chosen.ok()) {
      std::fprintf(stderr, "block-size inference: %s\n",
                   chosen.status().ToString().c_str());
      return 1;
    }
    block_size = *chosen;
    config.block_size = block_size;
  }

  std::vector<std::pair<std::string, LocalMatrix>> data;
  for (const auto& [name, decl] : loads) {
    auto it = file_bindings.find(name);
    if (it != file_bindings.end()) {
      auto m = ReadMatrixMarket(it->second, block_size);
      if (!m.ok()) {
        std::fprintf(stderr, "loading %s: %s\n", it->second.c_str(),
                     m.status().ToString().c_str());
        return 1;
      }
      data.emplace_back(name, std::move(*m));
    } else {
      std::fprintf(stderr, "note: synthesizing %s (%s, sparsity %g)\n",
                   name.c_str(), decl.first.ToString().c_str(), decl.second);
      data.emplace_back(name,
                        decl.second < 1.0
                            ? SyntheticSparse(decl.first.rows,
                                              decl.first.cols, decl.second,
                                              block_size, config.seed + 1)
                            : SyntheticDense(decl.first.rows, decl.first.cols,
                                             block_size, config.seed + 1));
    }
  }
  Bindings bindings;
  for (auto& [name, m] : data) bindings.emplace(name, &m);

  // ---- governance (docs/governance.md) ----
  if (concurrency > 1) {
    // Run the script as N concurrent queries through the admission-
    // controlled session; every query gets its own token/budget/spill.
    AdmissionQuota quota;
    quota.max_concurrent = concurrency;
    quota.max_queued = concurrency;
    QuerySession session(quota, config);
    QueryOptions qopts;
    // The session treats 0 as "no deadline": an explicit 0 ms deadline
    // becomes a tiny positive one, which is already expired.
    if (deadline_ms >= 0) qopts.deadline_seconds =
        std::max(deadline_ms / 1e3, 1e-9);
    qopts.memory_budget_bytes = mem_budget_mb << 20;
    std::vector<int64_t> ids;
    for (int i = 0; i < concurrency; ++i) {
      ids.push_back(session.Submit(*program, bindings, qopts));
    }
    int exit_code = 0;
    for (int64_t id : ids) {
      QueryOutcome q = session.Wait(id);
      std::printf("[query %lld] %s\n", static_cast<long long>(id),
                  q.status.ToString().c_str());
      if (!q.status.ok() && exit_code == 0) {
        exit_code = ExitCodeFor(q.status);
      }
    }
    const int obs_code = finish_obs();
    return exit_code != 0 ? exit_code : obs_code;
  }
  if (deadline_ms >= 0) {
    config.governor.token = CancelToken::WithDeadline(deadline_ms / 1e3);
  }
  if (mem_budget_mb > 0) {
    config.governor.budget =
        std::make_shared<MemoryBudget>(mem_budget_mb << 20);
    auto spill = SpillStore::Create();
    if (!spill.ok()) {
      std::fprintf(stderr, "spill store: %s\n",
                   spill.status().ToString().c_str());
      return 1;
    }
    config.governor.spill = *spill;
  }

  if (compare) {
    std::printf("%-11s | %7s | %12s | %7s | %10s | %12s\n", "planner",
                "stages", "comm", "events", "compute(s)", "cluster-eq(s)");
    std::printf("------------+---------+--------------+---------+------------+-------------\n");
    for (bool exploit : {true, false}) {
      RunConfig c2 = config;
      c2.exploit_dependencies = exploit;
      auto run = RunProgram(*program, bindings, c2);
      if (!run.ok()) {
        std::fprintf(stderr, "execution error: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }
      const ExecStats& s = run->result.stats;
      std::printf("%-11s | %7d | %9.2f MB | %7lld | %10.3f | %12.3f\n",
                  exploit ? "DMac" : "SystemML-S", run->plan.num_stages,
                  s.comm_bytes() / 1e6,
                  static_cast<long long>(s.comm_events()),
                  s.ComputeWallSeconds(),
                  s.SimulatedSeconds(NetworkModel{}));
    }
    return finish_obs();
  }

  auto outcome = RunProgram(*program, bindings, config);
  if (!outcome.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 outcome.status().ToString().c_str());
    finish_obs();  // governance failures still flush traces/metrics
    return ExitCodeFor(outcome.status());
  }

  for (const auto& [name, m] : outcome->result.matrices) {
    std::printf("%s: %lld x %lld, nnz %lld, sum %.6g\n", name.c_str(),
                static_cast<long long>(m.rows()),
                static_cast<long long>(m.cols()),
                static_cast<long long>(m.Nnz()), m.Sum());
  }
  for (const auto& [name, v] : outcome->result.scalars) {
    std::printf("%s = %.10g\n", name.c_str(), v);
  }
  const ExecStats& stats = outcome->result.stats;
  std::printf(
      "[%s] %d stages, comm %.2f MB (%lld events), compute %.3fs, "
      "cluster-equivalent %.3fs, plan %.1fms\n",
      config.exploit_dependencies ? "DMac" : "SystemML-S",
      outcome->plan.num_stages, stats.comm_bytes() / 1e6,
      static_cast<long long>(stats.comm_events()),
      stats.ComputeWallSeconds(), stats.SimulatedSeconds(NetworkModel{}),
      outcome->plan_seconds * 1e3);
  if (outcome->search.ran) {
    const RunSearchInfo& s = outcome->search;
    std::string race;
    if (s.raced) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), ", race winner=%d (probes %.3fs)",
                    s.race_winner, s.race_probe_seconds);
      race = buf;
    }
    std::printf(
        "[search] mode=%s candidates=%lld rejected=%lld est %.3fs "
        "(greedy %.3fs), comm %.2f MB (greedy %.2f MB), search %.1fms, "
        "plan: %s%s\n",
        PlanSearchModeName(config.plan_search),
        static_cast<long long>(s.candidates),
        static_cast<long long>(s.rejected), s.best_seconds,
        s.greedy_seconds, s.best_comm_bytes / 1e6,
        s.greedy_comm_bytes / 1e6, s.seconds * 1e3,
        s.best_decisions.c_str(), race.c_str());
  }
  if (config.fault.enabled || config.checkpoint_every > 0) {
    std::printf(
        "[fault] %lld injected, %lld retries, %lld recomputed / %lld "
        "restored blocks, %lld speculated tasks, checkpoint %.2f MB, "
        "recovery %.3fs (+%.2f MB moved)\n",
        static_cast<long long>(stats.faults_injected),
        static_cast<long long>(stats.retries),
        static_cast<long long>(stats.recomputed_blocks),
        static_cast<long long>(stats.restored_blocks),
        static_cast<long long>(stats.speculated_tasks),
        static_cast<double>(stats.checkpoint_bytes) / 1e6,
        stats.TotalRecoverySeconds(), stats.recovery_bytes / 1e6);
  }
  if (!config.checkpoint_dir.empty()) {
    std::string resumed;
    if (stats.resumed) {
      resumed = "; resumed after step " + std::to_string(stats.resume_step) +
                " (" + std::to_string(stats.resume_restored_blocks) +
                " blocks restored)";
    }
    std::printf(
        "[checkpoint] %lld epochs committed (%.2f MB durable), %lld commit "
        "failures, %lld disk faults%s\n",
        static_cast<long long>(stats.durable_epochs),
        static_cast<double>(stats.durable_checkpoint_bytes) / 1e6,
        static_cast<long long>(stats.checkpoint_failures),
        static_cast<long long>(stats.disk_faults_injected), resumed.c_str());
  }
  if (stats.workers_dead > 0) {
    std::printf(
        "[membership] %lld permanent deaths, epoch %lld, detection %.3fs, "
        "%d/%d workers live (quorum %d)\n",
        static_cast<long long>(stats.workers_dead),
        static_cast<long long>(stats.membership_epoch),
        stats.detection_seconds,
        config.num_workers - static_cast<int>(stats.workers_dead),
        config.num_workers, config.min_workers);
  }
  if (stats.net_messages > 0) {
    std::printf(
        "[fault.net] %lld messages, %lld retransmits (%.2f MB), %lld dups, "
        "%lld reordered, %lld partitions, delay %.3fs, stale fenced %lld / "
        "applied %lld\n",
        static_cast<long long>(stats.net_messages),
        static_cast<long long>(stats.net_retransmits),
        stats.net_retrans_bytes / 1e6,
        static_cast<long long>(stats.net_duplicates),
        static_cast<long long>(stats.net_reordered),
        static_cast<long long>(stats.net_partitions),
        stats.net_delay_seconds,
        static_cast<long long>(stats.net_stale_fenced),
        static_cast<long long>(stats.net_stale_applied));
  }
  if (config.governor.budgeted()) {
    std::printf(
        "[governor] budget %lld MB, peak %.2f MB, spilled %.2f MB, "
        "restored %.2f MB\n",
        static_cast<long long>(mem_budget_mb),
        config.governor.budget->peak_bytes() / 1e6,
        config.governor.spill->spilled_bytes() / 1e6,
        config.governor.spill->restored_bytes() / 1e6);
  }

  if (stats_flag) {
    std::printf("\nper-stage compute (seconds per worker):\n");
    std::printf("%6s | %10s | %10s | per-worker\n", "stage", "max", "total");
    for (size_t s = 0; s < stats.stage_worker_seconds.size(); ++s) {
      const auto& workers = stats.stage_worker_seconds[s];
      double mx = 0, total = 0;
      for (double v : workers) {
        mx = std::max(mx, v);
        total += v;
      }
      std::printf("%6zu | %10.4f | %10.4f |", s + 1, mx, total);
      for (double v : workers) std::printf(" %.4f", v);
      std::printf("\n");
    }
  }
  return finish_obs();
}
