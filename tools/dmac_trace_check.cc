// dmac_trace_check — validate a Chrome-trace JSON file emitted by
// `dmac_run --trace-out` (or any obs exporter).
//
//   dmac_trace_check TRACE.json [--require-spans]
//
// Exits 0 and prints a one-line summary when the file satisfies the Trace
// Event Format contract. With --require-spans it additionally demands at
// least one stage, comm, and task span with worker attribution — the CI
// smoke contract for an executed script.
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/trace_check.h"

using namespace dmac;

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: %s TRACE.json [--require-spans]\n", argv[0]);
    return 2;
  }
  bool require_spans = false;
  if (argc == 3) {
    if (std::strcmp(argv[2], "--require-spans") != 0) {
      std::fprintf(stderr, "usage: %s TRACE.json [--require-spans]\n",
                   argv[0]);
      return 2;
    }
    require_spans = true;
  }

  Result<TraceCheckSummary> summary = CheckChromeTraceFile(argv[1]);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv[1],
                 summary.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: %s\n", argv[1], summary->ToString().c_str());

  if (require_spans) {
    auto require = [&](const char* what, int64_t n) {
      if (n > 0) return true;
      std::fprintf(stderr, "%s: no %s spans\n", argv[1], what);
      return false;
    };
    bool ok = require("stage", summary->stage_spans);
    ok = require("comm", summary->comm_spans) && ok;
    ok = require("task", summary->task_spans) && ok;
    ok = require("worker-attributed", summary->worker_attributed) && ok;
    if (!ok) return 1;
  }
  return 0;
}
