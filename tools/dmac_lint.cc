// dmac_lint — static analysis of a matrix-language script and its plan.
//
//   dmac_lint SCRIPT.dmac [options]
//
// Runs the src/analysis pass pipeline twice: once over the decomposed
// operator list (shape conformance, def-before-use, aliasing) and — when
// that is clean enough to plan — once over the finalized execution plan
// (scheme consistency, communication cost cross-check, dead nodes).
//
// Options:
//   --workers N        simulated workers for the cost cross-check (default 4)
//   --baseline         lint the SystemML-S (dependency-oblivious) plan
//   --no-plan          operator-level checks only; skip planning
//   --werror           treat warnings as errors for the exit code
//   --corrupt-node ID  deliberately flip node ID's partition scheme after
//                      planning (testing hook: proves the verifier catches
//                      a corrupted plan)
//
// Exit status: 0 clean, 1 diagnostics at error severity (or any finding
// with --werror), 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/analyzer.h"
#include "lang/decompose.h"
#include "lang/parser.h"
#include "plan/planner.h"

using namespace dmac;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s SCRIPT.dmac [--workers N] [--baseline] [--no-plan] "
               "[--werror] [--corrupt-node ID]\n",
               argv0);
  return 2;
}

/// Exit code for a report under the --werror policy.
int ExitCode(const AnalysisReport& report, bool werror) {
  if (report.HasErrors()) return 1;
  if (werror && !report.diagnostics.empty()) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string script_path = argv[1];

  int num_workers = 4;
  bool baseline = false, no_plan = false, werror = false;
  int corrupt_node = -1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--workers") {
      const char* v = next_value();
      if (!v) return Usage(argv[0]);
      num_workers = std::atoi(v);
    } else if (arg == "--baseline") {
      baseline = true;
    } else if (arg == "--no-plan") {
      no_plan = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--corrupt-node") {
      const char* v = next_value();
      if (!v) return Usage(argv[0]);
      corrupt_node = std::atoi(v);
    } else {
      return Usage(argv[0]);
    }
  }

  std::ifstream file(script_path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", script_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  auto program = ParseProgram(buffer.str());
  if (!program.ok()) {
    std::fprintf(stderr, "%s: parse error: %s\n", script_path.c_str(),
                 program.status().ToString().c_str());
    return 1;
  }
  auto ops = Decompose(*program);
  if (!ops.ok()) {
    std::fprintf(stderr, "%s: decompose error: %s\n", script_path.c_str(),
                 ops.status().ToString().c_str());
    return 1;
  }

  // Operator-level analysis first: if the program itself is malformed the
  // planner cannot run, so report what the passes found and stop.
  AnalysisReport ops_report = AnalyzeProgram(&*ops, nullptr, num_workers);
  if (no_plan || ops_report.HasErrors()) {
    std::printf("%s (operators): %s", script_path.c_str(),
                ops_report.ToString().c_str());
    return ExitCode(ops_report, werror);
  }

  PlannerOptions popts;
  popts.num_workers = num_workers;
  popts.exploit_dependencies = !baseline;
  popts.verify_plan = false;  // lint reports diagnostics itself
  auto plan = GeneratePlan(*ops, popts);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s: plan error: %s\n", script_path.c_str(),
                 plan.status().ToString().c_str());
    return 1;
  }

  if (corrupt_node >= 0) {
    if (corrupt_node >= static_cast<int>(plan->nodes.size())) {
      std::fprintf(stderr, "--corrupt-node %d: plan has only %zu nodes\n",
                   corrupt_node, plan->nodes.size());
      return 2;
    }
    PlanNode& node = plan->nodes[corrupt_node];
    const Scheme old_scheme = SchemeSetFirst(node.schemes);
    const Scheme new_scheme = old_scheme == Scheme::kBroadcast
                                  ? Scheme::kRow
                                  : OppositeScheme(old_scheme);
    node.schemes = SchemeBit(new_scheme);
    std::fprintf(stderr, "note: corrupted node %d (%s): scheme %c -> %c\n",
                 corrupt_node, node.matrix.c_str(), SchemeChar(old_scheme),
                 SchemeChar(new_scheme));
  }

  AnalysisReport report = AnalyzeProgram(&*ops, &*plan, num_workers);
  std::printf("%s: %s", script_path.c_str(), report.ToString().c_str());
  return ExitCode(report, werror);
}
