// dmac_lint — static analysis of a matrix-language script and its plan.
//
//   dmac_lint SCRIPT.dmac [options]
//
// Runs the src/analysis pass pipeline twice: once over the decomposed
// operator list (shape conformance, def-before-use, aliasing) and — when
// that is clean enough to plan — once over the finalized execution plan
// (scheme consistency, communication cost cross-check, dead nodes).
//
// Options:
//   --workers N        simulated workers for the cost cross-check (default 4)
//   --baseline         lint the SystemML-S (dependency-oblivious) plan
//   --no-plan          operator-level checks only; skip planning
//   --werror           treat warnings as errors for the exit code
//   --format=FORMAT    `text` (default, human-readable) or `json`: one
//                      machine-consumable object with file/line/severity/
//                      pass records per diagnostic, for CI and editors
//   --corrupt-node ID  deliberately flip node ID's partition scheme after
//                      planning (testing hook: proves the verifier catches
//                      a corrupted plan)
//   --cost             append the calibrated cost estimate (plan/costmodel.h):
//                      per-step estimated comm bytes + seconds, and totals.
//                      In JSON mode this adds a "cost" object to the report.
//   --plan-search MODE run the cost-based plan search (off|beam|exhaustive,
//                      plan/search.h) and print the ranked candidate table;
//                      JSON mode adds a "search" object
//   --beam-width W     beam width / finalist cap of the search (default 8)
//   --calibration FILE kernel rates for --cost / --plan-search
//                      (CALIBRATION.json or BENCH_kernels.json)
//
// Exit status: 0 clean, 1 diagnostics at error severity (or any finding
// with --werror), 2 usage error. The exit code is format-independent.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "lang/decompose.h"
#include "lang/parser.h"
#include "plan/costmodel.h"
#include "plan/planner.h"
#include "plan/search.h"

using namespace dmac;

namespace {

enum class Format { kText, kJson };

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s SCRIPT.dmac [--workers N] [--baseline] [--no-plan] "
               "[--werror] [--format=text|json] [--corrupt-node ID] "
               "[--cost] [--plan-search off|beam|exhaustive] [--beam-width W] "
               "[--calibration FILE]\n",
               argv0);
  return 2;
}

/// Exit code for a report under the --werror policy.
int ExitCode(const AnalysisReport& report, bool werror) {
  if (report.HasErrors()) return 1;
  if (werror && !report.diagnostics.empty()) return 1;
  return 0;
}

/// Renders a JSON string literal with escapes.
std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

/// One diagnostic as a JSON record. The script has no per-op source
/// positions, so `line` is 0 (whole file) and `op` carries the operator /
/// plan-step id the finding is tied to (-1 when global).
std::string DiagnosticJson(const std::string& file, const Diagnostic& d) {
  std::string out = "    {\"file\":" + JsonString(file) + ",\"line\":0";
  out += ",\"severity\":" + JsonString(SeverityName(d.severity));
  out += ",\"pass\":" + JsonString(d.pass);
  out += ",\"op\":" + std::to_string(d.op_id);
  out += ",\"message\":" + JsonString(d.message);
  if (!d.fixit_hint.empty()) {
    out += ",\"fixit\":" + JsonString(d.fixit_hint);
  }
  out += "}";
  return out;
}

/// Emits the whole run as one JSON object:
///   {"schema":"dmac-lint-v1","file":...,"phase":"operators"|"plan",
///    "errors":N,"warnings":N,"diagnostics":[{file,line,severity,pass,op,
///    message,fixit?}, ...]}
/// `extra` is spliced in before the closing brace — the "cost" / "search"
/// objects of --cost / --plan-search (empty otherwise); consumers that only
/// know the base schema ignore the additional keys.
void PrintJson(const std::string& file, const char* phase,
               const AnalysisReport& report, const std::string& extra = "") {
  std::string out = "{\"schema\":\"dmac-lint-v1\"";
  out += ",\"file\":" + JsonString(file);
  out += ",\"phase\":\"";
  out += phase;
  out += "\"";
  out += ",\"errors\":" + std::to_string(report.ErrorCount());
  out += ",\"warnings\":" + std::to_string(report.WarningCount());
  out += ",\"diagnostics\":[";
  for (size_t i = 0; i < report.diagnostics.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += DiagnosticJson(file, report.diagnostics[i]);
  }
  if (!report.diagnostics.empty()) out += "\n  ";
  out += "]";
  out += extra;
  out += "}\n";
  std::fputs(out.c_str(), stdout);
}

/// Short human label of a plan step: "Compute[Multiply:RMM2:Ta]".
std::string StepCostLabel(const PlanStep& step) {
  std::string out = StepKindName(step.kind);
  if (step.kind == StepKind::kCompute) {
    out += "[";
    out += OpKindName(step.op_kind);
    if (step.mult_algo != MultAlgo::kNone) {
      out += ":";
      out += MultAlgoName(step.mult_algo);
    }
    if (step.trans_a) out += ":Ta";
    if (step.trans_b) out += ":Tb";
    out += "]";
  }
  if (step.kind == StepKind::kReduce) {
    out += "[";
    out += ReduceName(step.reduce);
    out += "]";
  }
  return out;
}

/// --cost, text mode: a per-step estimate table plus a totals line.
void PrintCostText(const Plan& plan, const CostModel& model,
                   const PlanCost& cost) {
  std::printf("cost (calibration=%s, %zu entries%s):\n",
              model.table().source().c_str(), model.table().num_entries(),
              model.table().byte_cost_only() ? ", byte-cost only" : "");
  std::printf("  %-5s %-5s %14s %12s  %s\n", "step", "stage", "est-bytes",
              "est-seconds", "kind");
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const PlanStep& step = plan.steps[i];
    const StepCost& sc = cost.steps[i];
    std::printf("  s%-4d %-5d %14.0f %12.6f  %s\n", step.id, step.stage,
                sc.comm_bytes, sc.seconds(), StepCostLabel(step).c_str());
  }
  std::printf(
      "  total: %.2f MB comm, est %.3fs (compute %.3fs + comm %.3fs)\n",
      cost.comm_bytes / 1e6, cost.seconds(), cost.compute_seconds,
      cost.comm_seconds);
}

/// --cost, JSON mode: the "cost" object spliced into the report.
std::string CostJson(const Plan& plan, const CostModel& model,
                     const PlanCost& cost) {
  char buf[160];
  std::string out = ",\"cost\":{";
  out += "\"calibration\":" + JsonString(model.table().source());
  out += ",\"byte_cost_only\":";
  out += model.table().byte_cost_only() ? "true" : "false";
  std::snprintf(buf, sizeof(buf),
                ",\"comm_bytes\":%.0f,\"compute_seconds\":%.6f,"
                "\"comm_seconds\":%.6f,\"seconds\":%.6f",
                cost.comm_bytes, cost.compute_seconds, cost.comm_seconds,
                cost.seconds());
  out += buf;
  out += ",\"steps\":[";
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const StepCost& sc = cost.steps[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"id\":%d,\"stage\":%d,\"comm_bytes\":%.0f,"
                  "\"seconds\":%.6f,\"kind\":",
                  i == 0 ? "" : ",", plan.steps[i].id, plan.steps[i].stage,
                  sc.comm_bytes, sc.seconds());
    out += buf;
    out += JsonString(StepCostLabel(plan.steps[i]));
    out += "}";
  }
  out += "]}";
  return out;
}

/// --plan-search, text mode: the ranked candidate table.
void PrintSearchText(const SearchResult& sres, PlanSearchMode mode,
                     int beam_width) {
  std::printf("plan-search (%s, width %d): %zu candidates, %lld rejected, "
              "%.1fms\n",
              PlanSearchModeName(mode), beam_width, sres.candidates.size(),
              static_cast<long long>(sres.stats.rejected),
              sres.stats.seconds * 1e3);
  for (size_t i = 0; i < sres.candidates.size(); ++i) {
    const PlanCandidate& c = sres.candidates[i];
    std::printf("  #%zu%s est %.3fs, comm %.2f MB  %s\n", i,
                c.greedy ? " [greedy]" : "", c.cost.seconds(),
                c.cost.comm_bytes / 1e6, c.decisions.c_str());
  }
}

/// --plan-search, JSON mode: the "search" object spliced into the report.
std::string SearchJson(const SearchResult& sres, PlanSearchMode mode,
                       int beam_width) {
  char buf[160];
  std::string out = ",\"search\":{";
  out += "\"mode\":" + JsonString(PlanSearchModeName(mode));
  std::snprintf(buf, sizeof(buf),
                ",\"beam_width\":%d,\"rejected\":%lld,\"seconds\":%.6f",
                beam_width, static_cast<long long>(sres.stats.rejected),
                sres.stats.seconds);
  out += buf;
  out += ",\"candidates\":[";
  for (size_t i = 0; i < sres.candidates.size(); ++i) {
    const PlanCandidate& c = sres.candidates[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"rank\":%zu,\"greedy\":%s,\"seconds\":%.6f,"
                  "\"comm_bytes\":%.0f,\"decisions\":",
                  i == 0 ? "" : ",", i, c.greedy ? "true" : "false",
                  c.cost.seconds(), c.cost.comm_bytes);
    out += buf;
    out += JsonString(c.decisions);
    out += "}";
  }
  out += "]}";
  return out;
}

/// Front-end failures (parse/decompose/plan) still produce a JSON object in
/// JSON mode so consumers never have to scrape stderr.
int FrontendError(Format format, const std::string& file, const char* pass,
                  const Status& status) {
  if (format == Format::kJson) {
    AnalysisReport report;
    Diagnostic d;
    d.severity = Severity::kError;
    d.pass = pass;
    d.message = status.ToString();
    report.diagnostics.push_back(std::move(d));
    PrintJson(file, pass, report);
  } else {
    std::fprintf(stderr, "%s: %s error: %s\n", file.c_str(), pass,
                 status.ToString().c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string script_path = argv[1];

  int num_workers = 4;
  bool baseline = false, no_plan = false, werror = false;
  Format format = Format::kText;
  int corrupt_node = -1;
  bool cost = false;
  PlanSearchMode search_mode = PlanSearchMode::kOff;
  int beam_width = 8;
  std::string calibration_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--workers") {
      const char* v = next_value();
      if (!v) return Usage(argv[0]);
      num_workers = std::atoi(v);
    } else if (arg == "--cost") {
      cost = true;
    } else if (arg == "--plan-search" || arg.rfind("--plan-search=", 0) == 0) {
      std::string mode;
      if (arg == "--plan-search") {
        const char* v = next_value();
        if (!v) return Usage(argv[0]);
        mode = v;
      } else {
        mode = arg.substr(std::string("--plan-search=").size());
      }
      auto parsed = ParsePlanSearchMode(mode);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return Usage(argv[0]);
      }
      search_mode = *parsed;
    } else if (arg == "--beam-width") {
      const char* v = next_value();
      if (!v) return Usage(argv[0]);
      beam_width = std::atoi(v);
      if (beam_width < 1) return Usage(argv[0]);
    } else if (arg == "--calibration") {
      const char* v = next_value();
      if (!v) return Usage(argv[0]);
      calibration_path = v;
    } else if (arg == "--baseline") {
      baseline = true;
    } else if (arg == "--no-plan") {
      no_plan = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--format=text") {
      format = Format::kText;
    } else if (arg == "--format=json") {
      format = Format::kJson;
    } else if (arg == "--corrupt-node") {
      const char* v = next_value();
      if (!v) return Usage(argv[0]);
      corrupt_node = std::atoi(v);
    } else {
      return Usage(argv[0]);
    }
  }

  std::ifstream file(script_path);
  if (!file) {
    if (format == Format::kJson) {
      return FrontendError(format, script_path, "io",
                           Status::NotFound("cannot open " + script_path));
    }
    std::fprintf(stderr, "cannot open %s\n", script_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  auto program = ParseProgram(buffer.str());
  if (!program.ok()) {
    return FrontendError(format, script_path, "parse", program.status());
  }
  auto ops = Decompose(*program);
  if (!ops.ok()) {
    return FrontendError(format, script_path, "decompose", ops.status());
  }

  // Operator-level analysis first: if the program itself is malformed the
  // planner cannot run, so report what the passes found and stop.
  AnalysisReport ops_report = AnalyzeProgram(&*ops, nullptr, num_workers);
  if (no_plan || ops_report.HasErrors()) {
    if (format == Format::kJson) {
      PrintJson(script_path, "operators", ops_report);
    } else {
      std::printf("%s (operators): %s", script_path.c_str(),
                  ops_report.ToString().c_str());
    }
    return ExitCode(ops_report, werror);
  }

  PlannerOptions popts;
  popts.num_workers = num_workers;
  popts.exploit_dependencies = !baseline;
  popts.verify_plan = false;  // lint reports diagnostics itself
  auto plan = GeneratePlan(*ops, popts);
  if (!plan.ok()) {
    return FrontendError(format, script_path, "plan", plan.status());
  }

  if (corrupt_node >= 0) {
    if (corrupt_node >= static_cast<int>(plan->nodes.size())) {
      std::fprintf(stderr, "--corrupt-node %d: plan has only %zu nodes\n",
                   corrupt_node, plan->nodes.size());
      return 2;
    }
    PlanNode& node = plan->nodes[corrupt_node];
    const Scheme old_scheme = SchemeSetFirst(node.schemes);
    const Scheme new_scheme = old_scheme == Scheme::kBroadcast
                                  ? Scheme::kRow
                                  : OppositeScheme(old_scheme);
    node.schemes = SchemeBit(new_scheme);
    std::fprintf(stderr, "note: corrupted node %d (%s): scheme %c -> %c\n",
                 corrupt_node, node.matrix.c_str(), SchemeChar(old_scheme),
                 SchemeChar(new_scheme));
  }

  AnalysisReport report = AnalyzeProgram(&*ops, &*plan, num_workers);

  // --cost / --plan-search ride the lint run: text renders after the
  // diagnostics, JSON splices extra objects into the same document.
  std::string extra;
  CalibrationTable table = CalibrationTable::Builtin();
  if (cost || search_mode != PlanSearchMode::kOff) {
    if (!calibration_path.empty()) {
      auto loaded = CalibrationTable::Load(calibration_path);
      if (!loaded.ok()) {
        return FrontendError(format, script_path, "calibration",
                             loaded.status());
      }
      table = std::move(*loaded);
    }
  }
  CostModelOptions mopts;
  mopts.num_workers = num_workers;
  CostModel model(std::move(table), mopts);
  PlanCost plan_cost;
  SearchResult sres;
  if (cost) plan_cost = model.EstimatePlan(*plan);
  if (search_mode != PlanSearchMode::kOff) {
    SearchOptions sopts;
    sopts.mode = search_mode;
    sopts.beam_width = beam_width;
    auto searched = SearchPlans(*ops, popts, sopts, model);
    if (!searched.ok()) {
      return FrontendError(format, script_path, "plan-search",
                           searched.status());
    }
    sres = std::move(*searched);
  }

  if (format == Format::kJson) {
    if (cost) extra += CostJson(*plan, model, plan_cost);
    if (search_mode != PlanSearchMode::kOff) {
      extra += SearchJson(sres, search_mode, beam_width);
    }
    PrintJson(script_path, "plan", report, extra);
  } else {
    std::printf("%s: %s", script_path.c_str(), report.ToString().c_str());
    if (cost) PrintCostText(*plan, model, plan_cost);
    if (search_mode != PlanSearchMode::kOff) {
      PrintSearchText(sres, search_mode, beam_width);
    }
  }
  return ExitCode(report, werror);
}
