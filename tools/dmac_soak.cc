// dmac_soak — chaos soak harness for resource governance
// (docs/governance.md).
//
//   dmac_soak [--queries N] [--seed S] [--mem-budget-mb MB]
//             [--concurrency C] [--fault-spec FILE]
//
// Runs N randomized queries concurrently through the admission-controlled
// QuerySession while fault injection and memory pressure are active, and
// asserts the whole governance contract:
//
//   1. every query terminates with exactly one status from
//      {OK, kCancelled, kDeadlineExceeded, kResourceExhausted,
//       kUnavailable, kDataLoss};
//   2. every *successful* query's outputs are bit-identical to a clean
//      (fault-free, ungoverned) run of the same workload;
//   3. zero buffer-pool blocks remain outstanding after the session ends;
//   4. zero spill files are left on disk.
//
// The randomization is fully determined by --seed: workload choice,
// per-query deadlines, budgets, mid-flight cancels, and fault schedules
// all derive from it, so a failing soak replays exactly.
//
// On top of any --fault-spec schedule, a slice of the queries carries its
// own fault override: permanent worker deaths (rebalanced in degraded
// mode under a min-workers quorum), message-level network faults
// (drops, dups, reorders, delays, transient partitions), or a
// crash-restart scenario — a solo prologue run soft-crashes at a
// pre-drawn durable write point, then the submitted query resumes from
// the surviving checkpoint epoch. Successful queries must stay
// bit-identical under all of them.
//
// Exit code: 0 when every assertion holds, 1 otherwise.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/gnmf.h"
#include "apps/pagerank.h"
#include "apps/runner.h"
#include "data/graph_gen.h"
#include "data/synthetic.h"
#include "fault/checksum.h"
#include "governor/query_session.h"
#include "runtime/buffer_pool.h"

using namespace dmac;

namespace {

constexpr int64_t kBlockSize = 16;

/// A workload with owned input data, small enough that a soak of dozens of
/// queries finishes in seconds.
struct Workload {
  std::string name;
  Program program;
  std::vector<std::pair<std::string, LocalMatrix>> inputs;
  /// Oracle: the clean run's outputs (fault-free, ungoverned).
  ExecutionResult reference;

  Bindings MakeBindings() const {
    Bindings b;
    for (const auto& [n, m] : inputs) b.emplace(n, &m);
    return b;
  }
};

Workload MakeSmallGnmf() {
  GnmfConfig config{48, 32, 0.25, 4, 3};
  Workload w{"gnmf", BuildGnmfProgram(config), {}, {}};
  w.inputs.emplace_back("V", SyntheticSparse(48, 32, 0.25, kBlockSize, 31));
  return w;
}

Workload MakeSmallPageRank() {
  const GraphSpec spec = SocPokec().Scaled(30000);
  PageRankConfig config{spec.nodes, 0.02, 3, 0.85};
  Workload w{"pagerank", BuildPageRankProgram(config), {}, {}};
  w.inputs.emplace_back("link", RowNormalizedLink(spec, kBlockSize, 3));
  w.inputs.emplace_back(
      "D", ConstantMatrix({1, spec.nodes}, kBlockSize,
                          1.0f / static_cast<Scalar>(spec.nodes)));
  return w;
}

/// Bit identity, the same oracle tests/fault uses: every output block must
/// hash to the clean run's checksum, every scalar must compare exactly.
bool BitIdentical(const ExecutionResult& want, const ExecutionResult& got,
                  std::string* why) {
  if (want.matrices.size() != got.matrices.size()) {
    *why = "matrix count differs";
    return false;
  }
  for (const auto& [name, w] : want.matrices) {
    auto it = got.matrices.find(name);
    if (it == got.matrices.end()) {
      *why = "missing output " + name;
      return false;
    }
    const LocalMatrix& g = it->second;
    if (w.rows() != g.rows() || w.cols() != g.cols() ||
        w.block_size() != g.block_size()) {
      *why = "shape of " + name + " differs";
      return false;
    }
    for (int64_t bi = 0; bi < w.grid().block_rows(); ++bi) {
      for (int64_t bj = 0; bj < w.grid().block_cols(); ++bj) {
        if (BlockChecksum(w.BlockAt(bi, bj)) !=
            BlockChecksum(g.BlockAt(bi, bj))) {
          *why = name + " block (" + std::to_string(bi) + "," +
                 std::to_string(bj) + ") diverged";
          return false;
        }
      }
    }
  }
  if (want.scalars.size() != got.scalars.size()) {
    *why = "scalar count differs";
    return false;
  }
  for (const auto& [name, v] : want.scalars) {
    auto it = got.scalars.find(name);
    if (it == got.scalars.end() || it->second != v) {
      *why = "scalar " + name + " diverged";
      return false;
    }
  }
  return true;
}

int64_t CountFilesUnder(const std::filesystem::path& root) {
  std::error_code ec;
  if (!std::filesystem::exists(root, ec)) return 0;
  int64_t n = 0;
  for (auto it = std::filesystem::recursive_directory_iterator(root, ec);
       !ec && it != std::filesystem::recursive_directory_iterator(); ++it) {
    if (it->is_regular_file(ec)) ++n;
  }
  return n;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--queries N] [--seed S] [--mem-budget-mb MB] "
               "[--concurrency C] [--fault-spec FILE]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int queries = 16;
  uint64_t seed = 1;
  int64_t mem_budget_mb = 64;
  int concurrency = 4;
  std::string fault_spec_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--queries" && (v = next_value())) {
      queries = std::atoi(v);
    } else if (arg == "--seed" && (v = next_value())) {
      seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--mem-budget-mb" && (v = next_value())) {
      mem_budget_mb = std::atoll(v);
    } else if (arg == "--concurrency" && (v = next_value())) {
      concurrency = std::atoi(v);
    } else if (arg == "--fault-spec" && (v = next_value())) {
      fault_spec_path = v;
    } else {
      return Usage(argv[0]);
    }
  }
  if (queries < 1 || concurrency < 1 || mem_budget_mb < 1) {
    return Usage(argv[0]);
  }

  FaultSpec fault;
  if (!fault_spec_path.empty()) {
    auto spec = LoadFaultSpecFile(fault_spec_path);
    if (!spec.ok()) {
      std::fprintf(stderr, "--fault-spec: %s\n",
                   spec.status().ToString().c_str());
      return 1;
    }
    fault = *spec;
  }

  RunConfig base;
  base.num_workers = 3;
  base.threads_per_worker = 2;
  base.block_size = kBlockSize;
  base.seed = seed;

  // Clean oracle runs: fault-free, ungoverned, solo.
  std::vector<Workload> workloads;
  workloads.push_back(MakeSmallGnmf());
  workloads.push_back(MakeSmallPageRank());
  for (Workload& w : workloads) {
    auto clean = RunProgram(w.program, w.MakeBindings(), base);
    if (!clean.ok()) {
      std::fprintf(stderr, "oracle run of %s failed: %s\n", w.name.c_str(),
                   clean.status().ToString().c_str());
      return 1;
    }
    w.reference = std::move(clean->result);
  }

  const std::filesystem::path spill_root =
      std::filesystem::temp_directory_path() /
      ("dmac_soak_" + std::to_string(seed));
  std::filesystem::create_directories(spill_root);
  // Checkpoint dirs live under their own root: committed epochs
  // legitimately persist after a successful run, so the zero-files
  // assertion on spill_root must not see them.
  const std::filesystem::path ckpt_root =
      std::filesystem::temp_directory_path() /
      ("dmac_soak_ckpt_" + std::to_string(seed));
  std::filesystem::create_directories(ckpt_root);

  int failures = 0;
  std::map<std::string, int> tally;
  {
    AdmissionQuota quota;
    quota.max_concurrent = concurrency;
    quota.max_queued = queries;  // queue everything; reject only over-quota
    quota.total_memory_bytes = mem_budget_mb << 20;
    RunConfig governed = base;
    governed.fault = fault;
    // One death fits the quorum: degraded runs rebalance instead of failing.
    governed.min_workers = base.num_workers - 1;
    QuerySession session(quota, governed);

    // Derive every per-query decision from one master RNG up front so the
    // schedule does not depend on execution timing.
    std::mt19937_64 rng(seed);
    struct Planned {
      int workload;
      QueryOptions opts;
      bool cancel_midflight;
      int cancel_after_ms;
      /// Crash-restart scenario: a solo prologue run soft-crashes at
      /// `crash_point`; the submitted query then resumes from the epoch
      /// that survived.
      bool restart = false;
      int crash_point = 0;
    };
    std::vector<Planned> planned;
    for (int i = 0; i < queries; ++i) {
      Planned p{};
      p.workload = static_cast<int>(rng() % workloads.size());
      // Memory pressure: half the queries get a budget of a few blocks —
      // forced to spill or be refused — the rest draw from the full range.
      p.opts.memory_budget_bytes =
          rng() % 2 == 0
              ? static_cast<int64_t>(2 * 1024 + rng() % (16 * 1024))
              : static_cast<int64_t>(
                    8 * 1024 + rng() % static_cast<uint64_t>(mem_budget_mb
                                                             << 20));
      p.opts.spill_dir = (spill_root / ("q" + std::to_string(i))).string();
      // A quarter of the queries race a tight deadline; one in eight gets
      // cancelled mid-flight from the outside.
      if (rng() % 4 == 0) {
        p.opts.deadline_seconds = 1e-4 * static_cast<double>(1 + rng() % 500);
      }
      p.cancel_midflight = rng() % 8 == 0;
      p.cancel_after_ms = static_cast<int>(rng() % 20);
      // A slice of the mix exercises the robustness layer: every third
      // query carries its own fault override — permanent worker death
      // (quorum-budgeted, rebalanced) or message-level network chaos.
      switch (rng() % 6) {
        case 0: {
          FaultSpec death;
          death.enabled = true;
          death.seed = rng();
          death.death_prob = 0.05;
          p.opts.fault = death;
          break;
        }
        case 1: {
          FaultSpec net;
          net.enabled = true;
          net.seed = rng();
          net.net.drop_prob = 0.1;
          net.net.dup_prob = 0.1;
          net.net.reorder_prob = 0.1;
          net.net.delay_prob = 0.05;
          net.net.delay_seconds = 0.005;
          net.net.partition_prob = 0.01;
          p.opts.fault = net;
          break;
        }
        case 2: {
          p.restart = true;
          p.crash_point = static_cast<int>(1 + rng() % 40);
          p.opts.checkpoint_dir =
              (ckpt_root / ("q" + std::to_string(i))).string();
          p.opts.resume = true;
          break;
        }
        default:
          break;
      }
      if (std::getenv("DMAC_SOAK_VERBOSE") != nullptr) {
        std::fprintf(stderr,
                     "plan: query %d workload=%s budget=%lld deadline=%g "
                     "cancel=%d fault=%s\n",
                     i, workloads[p.workload].name.c_str(),
                     static_cast<long long>(p.opts.memory_budget_bytes),
                     p.opts.deadline_seconds, p.cancel_midflight ? 1 : 0,
                     p.restart                      ? "restart"
                     : !p.opts.fault.has_value()    ? "base"
                     : p.opts.fault->death_prob > 0 ? "death"
                                                    : "net");
      }
      planned.push_back(p);
    }

    // Crash prologues run solo (serially, ungoverned) before the storm:
    // each soft-crashes mid-run at its pre-drawn durable write point,
    // leaving a checkpoint dir the submitted query must resume from. A
    // crash point past the run's last write just completes the prologue —
    // the resume then re-serves the committed outputs.
    for (const Planned& p : planned) {
      if (!p.restart) continue;
      RunConfig crash = base;
      crash.checkpoint_dir = p.opts.checkpoint_dir;
      crash.fault.disk.crash_at = p.crash_point;
      crash.fault.disk.crash_soft = true;
      auto prologue = RunProgram(workloads[p.workload].program,
                                 workloads[p.workload].MakeBindings(), crash);
      if (!prologue.ok() &&
          prologue.status().code() != StatusCode::kInternal) {
        std::fprintf(stderr, "FAIL: crash prologue (%s) died abnormally: %s\n",
                     workloads[p.workload].name.c_str(),
                     prologue.status().ToString().c_str());
        ++failures;
      }
    }

    std::vector<int64_t> ids;
    for (const Planned& p : planned) {
      ids.push_back(session.Submit(workloads[p.workload].program,
                                   workloads[p.workload].MakeBindings(),
                                   p.opts));
    }
    std::vector<std::thread> cancellers;
    for (int i = 0; i < queries; ++i) {
      if (!planned[i].cancel_midflight) continue;
      cancellers.emplace_back([&session, id = ids[i],
                               ms = planned[i].cancel_after_ms] {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        session.Cancel(id);
      });
    }

    for (int i = 0; i < queries; ++i) {
      QueryOutcome out = session.Wait(ids[i]);
      const StatusCode code = out.status.code();
      tally[StatusCodeName(code)]++;
      const bool allowed =
          code == StatusCode::kOk || code == StatusCode::kCancelled ||
          code == StatusCode::kDeadlineExceeded ||
          code == StatusCode::kResourceExhausted ||
          code == StatusCode::kUnavailable || code == StatusCode::kDataLoss;
      if (!allowed) {
        std::fprintf(stderr,
                     "FAIL: query %d (%s) ended outside the governance "
                     "status set: %s\n",
                     i, workloads[planned[i].workload].name.c_str(),
                     out.status.ToString().c_str());
        ++failures;
        continue;
      }
      if (code == StatusCode::kOk) {
        std::string why;
        if (!BitIdentical(workloads[planned[i].workload].reference,
                          out.run.result, &why)) {
          std::fprintf(stderr,
                       "FAIL: query %d (%s) succeeded but diverged from "
                       "the clean run: %s\n",
                       i, workloads[planned[i].workload].name.c_str(),
                       why.c_str());
          ++failures;
        }
      }
    }
    for (std::thread& t : cancellers) t.join();
  }  // session destroyed: every query joined, every spill store gone

  const int64_t outstanding = BufferPool::GlobalOutstandingBlocks();
  if (outstanding != 0) {
    std::fprintf(stderr, "FAIL: %lld buffer-pool blocks leaked\n",
                 static_cast<long long>(outstanding));
    ++failures;
  }
  const int64_t leaked_spill = CountFilesUnder(spill_root);
  if (leaked_spill != 0) {
    std::fprintf(stderr, "FAIL: %lld spill files leaked under %s\n",
                 static_cast<long long>(leaked_spill), spill_root.c_str());
    ++failures;
  }
  std::error_code ec;
  std::filesystem::remove_all(spill_root, ec);
  std::filesystem::remove_all(ckpt_root, ec);

  std::printf("[soak] %d queries, concurrency %d, seed %llu:", queries,
              concurrency, static_cast<unsigned long long>(seed));
  for (const auto& [name, count] : tally) {
    std::printf(" %s=%d", name.c_str(), count);
  }
  std::printf("%s\n", failures == 0 ? " -- OK" : " -- FAILED");
  return failures == 0 ? 0 : 1;
}
