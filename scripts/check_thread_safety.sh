#!/usr/bin/env sh
# Clang thread-safety gate (docs/static_analysis.md).
#
# Two checks, both requiring clang (the annotations are no-ops under gcc):
#
#   1. Every library/tool translation unit must compile cleanly under
#      -Wthread-safety -Wthread-safety-beta -Werror.
#   2. Compile-fail proofs: a caller that touches a DMAC_GUARDED_BY member
#      of the annotated ThreadPool job pattern without holding the lock
#      must be REJECTED, and the properly locked twin must be accepted —
#      so the annotations demonstrably bite.
#
# Without clang on PATH the script reports SKIPPED and exits 0 (the gcc
# build cannot evaluate the annotations); CI installs clang and runs this
# for real. Usage: check_thread_safety.sh [repo-root] [clang++-binary]
set -eu

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cxx="${2:-clang++}"
cd "$root"

if ! command -v "$cxx" >/dev/null 2>&1; then
  echo "SKIPPED: $cxx not found; thread-safety analysis needs clang" \
       "(CI runs this gate)"
  exit 0
fi

flags="-std=c++20 -fsyntax-only -Isrc -Wthread-safety -Wthread-safety-beta -Werror"

# ---- 1. the whole library + tools must analyze clean ---------------------
echo "== thread-safety: analyzing library sources with $cxx"
fail=0
for f in $(find src tools -name '*.cc' | sort); do
  if ! "$cxx" $flags "$f"; then
    echo "error: $f fails -Wthread-safety -Wthread-safety-beta -Werror"
    fail=1
  fi
done
[ "$fail" -eq 0 ] || exit 1

# ---- 2. compile-fail proof: misannotated callers are rejected ------------
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

cat > "$tmp/good.cc" <<'EOF'
#include "common/sync.h"
#include "common/thread_pool.h"
struct Job {
  dmac::Mutex mu;
  bool done DMAC_GUARDED_BY(mu) = false;
};
int main() {
  dmac::ThreadPool pool(1);
  Job job;
  pool.Submit([&job] {
    dmac::MutexLock lock(&job.mu);
    job.done = true;
  });
  pool.WaitIdle();
  dmac::MutexLock lock(&job.mu);
  return job.done ? 0 : 1;
}
EOF

# Identical, except the final read drops the lock: must NOT compile.
cat > "$tmp/bad.cc" <<'EOF'
#include "common/sync.h"
#include "common/thread_pool.h"
struct Job {
  dmac::Mutex mu;
  bool done DMAC_GUARDED_BY(mu) = false;
};
int main() {
  dmac::ThreadPool pool(1);
  Job job;
  pool.Submit([&job] {
    dmac::MutexLock lock(&job.mu);
    job.done = true;
  });
  pool.WaitIdle();
  return job.done ? 0 : 1;  // unguarded read of a GUARDED_BY member
}
EOF

echo "== thread-safety: positive control (locked caller must compile)"
"$cxx" $flags "$tmp/good.cc"

echo "== thread-safety: compile-fail proof (unguarded caller must be rejected)"
if "$cxx" $flags "$tmp/bad.cc" 2>"$tmp/bad.err"; then
  echo "error: unguarded access to a DMAC_GUARDED_BY member compiled —"
  echo "       the thread-safety annotations are not biting"
  exit 1
fi
if ! grep -q 'thread-safety\|guarded_by\|requires holding' "$tmp/bad.err"; then
  echo "error: rejection was not a thread-safety diagnostic:"
  cat "$tmp/bad.err"
  exit 1
fi

echo "thread-safety gate ok"
