#!/usr/bin/env python3
"""Documentation link checker (the docs_links_check ctest).

Validates, for README.md and every docs/*.md:

  1. Markdown links `[text](target)` with relative targets resolve to a
     file or directory in the tree (anchors and absolute URLs skipped).
  2. Backtick-quoted repo paths like `src/matrix/kernels.h` or
     `docs/governance.md` point at real files/directories, so renames
     cannot silently strand the prose. Paths with glob/placeholder
     characters and `a/{b,c}` brace shorthand are expanded or skipped
     conservatively.

Usage: check_docs_links.py [repo-root]
Exit 0 when everything resolves, 1 with a per-reference report otherwise.
"""

import os
import re
import sys

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# `...` spans that look like repo paths: start with a known top-level
# directory or file, contain a slash or .md suffix, no spaces.
CODE_SPAN = re.compile(r"`([^`\s]+)`")
TOP_LEVEL = (
    "src/", "docs/", "tests/", "tools/", "bench/", "scripts/",
    ".github/", "cmake/",
)
# Characters that mark a span as a pattern/expression, not a literal path.
NON_LITERAL = re.compile(r"[*?<>$|=(]|\.\.\.")


def expand_braces(path):
    """`a/kernels.{h,cc}` -> [a/kernels.h, a/kernels.cc]; no nesting."""
    m = re.search(r"\{([^{}]*)\}", path)
    if not m:
        return [path]
    head, tail = path[: m.start()], path[m.end():]
    out = []
    for piece in m.group(1).split(","):
        out.extend(expand_braces(head + piece + tail))
    return out


def check_file(root, md_path):
    problems = []
    rel_dir = os.path.dirname(md_path)
    text = open(os.path.join(root, md_path), encoding="utf-8").read()
    # Fenced code blocks keep their backtick spans out of scope, but links
    # inside them are rare and intentional; strip fences entirely.
    text = re.sub(r"```.*?```", "", text, flags=re.S)

    for m in MD_LINK.finditer(text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        # Relative to the markdown file's own directory, like a renderer.
        resolved = os.path.normpath(os.path.join(root, rel_dir, target))
        if not os.path.exists(resolved):
            # README-style links are repo-root relative in some files.
            if not os.path.exists(os.path.normpath(os.path.join(root, target))):
                problems.append((md_path, "link", m.group(1)))

    for m in CODE_SPAN.finditer(text):
        span = m.group(1).rstrip(".,;:")
        if not span.startswith(TOP_LEVEL) and span not in (
            "README.md", "CHANGES.md", "ROADMAP.md", "Doxyfile",
            "CONTRIBUTING.md", "BENCH_kernels.json",
        ):
            continue
        if NON_LITERAL.search(span):
            continue
        ok = False
        for candidate in expand_braces(span):
            p = os.path.normpath(os.path.join(root, candidate))
            # `tools/dmac_run` names the built binary; its source is
            # tools/dmac_run.cc — accept either spelling.
            if os.path.exists(p) or os.path.exists(p + ".cc"):
                ok = True
            else:
                ok = False
                break
        if not ok:
            problems.append((md_path, "path", m.group(1)))
    return problems


def main():
    root = os.path.abspath(
        sys.argv[1] if len(sys.argv) > 1
        else os.path.join(os.path.dirname(__file__), "..")
    )
    files = ["README.md"] + sorted(
        os.path.join("docs", f)
        for f in os.listdir(os.path.join(root, "docs"))
        if f.endswith(".md")
    )
    problems = []
    for f in files:
        problems.extend(check_file(root, f))

    if problems:
        for md, kind, ref in problems:
            print(f"{md}: broken {kind}: {ref}")
        print(f"\n{len(problems)} broken reference(s) in {len(files)} files")
        return 1
    print(f"OK: all links and code paths resolve across {len(files)} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
