#!/usr/bin/env sh
# Sync-discipline guard (docs/static_analysis.md).
#
# Every mutex/condition-variable in the tree must go through the annotated
# wrappers in src/common/sync.h so clang's -Wthread-safety analysis can see
# it. This guard fails on any new raw primitive outside that header, and on
# any DMAC_NO_THREAD_SAFETY_ANALYSIS without a justifying comment nearby.
#
# Runs as a ctest (sync_discipline_guard) and as a CI step; takes the repo
# root as an optional argument.
set -eu

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root"

fail=0

# 1) Raw synchronization primitives outside common/sync.h.
raw=$(grep -rn \
        -e 'std::mutex' \
        -e 'std::recursive_mutex' \
        -e 'std::shared_mutex' \
        -e 'std::timed_mutex' \
        -e 'std::lock_guard' \
        -e 'std::unique_lock' \
        -e 'std::scoped_lock' \
        -e 'std::condition_variable' \
        --include='*.h' --include='*.cc' --include='*.cpp' \
        src tests tools bench examples 2>/dev/null \
      | grep -v '^src/common/sync\.h:' || true)
if [ -n "$raw" ]; then
  echo "error: raw synchronization primitives outside src/common/sync.h"
  echo "       (use dmac::Mutex / MutexLock / CondVar; docs/static_analysis.md):"
  echo "$raw"
  fail=1
fi

# 2) Escape hatch hygiene: every DMAC_NO_THREAD_SAFETY_ANALYSIS use (outside
#    its definition) must carry a comment on the same or preceding line.
hatches=$(grep -rn 'DMAC_NO_THREAD_SAFETY_ANALYSIS' \
            --include='*.h' --include='*.cc' --include='*.cpp' \
            src tests tools bench examples 2>/dev/null \
          | grep -v '^src/common/sync\.h:' || true)
if [ -n "$hatches" ]; then
  echo "$hatches" | while IFS=: read -r file line _; do
    prev=$((line - 1))
    if ! sed -n "${prev}p;${line}p" "$file" | grep -q '//'; then
      echo "error: $file:$line: DMAC_NO_THREAD_SAFETY_ANALYSIS without a" \
           "justifying comment"
      exit 1
    fi
  done || fail=1
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "sync discipline ok: no raw primitives outside src/common/sync.h"
