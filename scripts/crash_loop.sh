#!/bin/sh
# Crash-restart loop harness (docs/fault_tolerance.md, "Durability &
# restart").
#
#   crash_loop.sh DMAC_RUN SCRIPT [extra dmac_run flags...]
#
# Runs SCRIPT once cleanly, then re-runs it under --checkpoint-dir/--resume
# with --crash-at N for N = 1, 2, ... — killing the process (exit 42) at
# every durable write point in turn — until a run completes. The completed
# run's program output (stdout minus the bracketed summary lines) must be
# byte-identical to the clean run's, the checkpoint directory must hold no
# partial (*.tmp) files, and exactly one committed manifest may remain.
#
# Exit 0 when the contract holds, 1 otherwise.
set -u

if [ "$#" -lt 2 ]; then
  echo "usage: $0 DMAC_RUN SCRIPT [extra flags...]" >&2
  exit 1
fi
run="$1"
script="$2"
shift 2

work=$(mktemp -d "${TMPDIR:-/tmp}/dmac_crash_loop.XXXXXX") || exit 1
ckpt="$work/ckpt"
trap 'rm -rf "$work"' EXIT

# The summary lines ([DMac], [checkpoint], [fault], ...) legitimately
# differ between a clean and a resumed run (a resumed run re-counts only
# the work it actually did); the program outputs may not.
filter() { grep -v '^\[' ; }

"$run" "$script" "$@" 2>/dev/null | filter > "$work/clean.out"

n=1
cap=500
while :; do
  "$run" "$script" "$@" \
      --checkpoint-dir "$ckpt" --resume --crash-at "$n" \
      2>/dev/null > "$work/raw.out"
  code=$?
  if [ "$code" -eq 0 ]; then
    break
  elif [ "$code" -eq 7 ]; then
    # kDataLoss: a read-side fault (e.g. an injected bit flip) corrupted
    # the only committed epoch. The contract is a *clean* failure — the
    # operator's move is to wipe the directory and start over, which is
    # exactly what a fresh --resume run does.
    rm -rf "$ckpt"
  elif [ "$code" -ne 42 ]; then
    echo "FAIL: crash point $n exited $code (want 42, 7, or 0)" >&2
    exit 1
  fi
  n=$((n + 1))
  if [ "$n" -gt "$cap" ]; then
    echo "FAIL: crash loop did not converge within $cap write points" >&2
    exit 1
  fi
done

if [ "$n" -le 1 ]; then
  echo "FAIL: the run never crashed — no durable write points enumerated" >&2
  exit 1
fi

filter < "$work/raw.out" > "$work/resumed.out"
if ! diff -u "$work/clean.out" "$work/resumed.out" >&2; then
  echo "FAIL: resumed output diverged from the clean run" >&2
  exit 1
fi

leftover=$(find "$ckpt" -name '*.tmp' | wc -l)
if [ "$leftover" -ne 0 ]; then
  echo "FAIL: $leftover partial (*.tmp) files leaked in $ckpt" >&2
  exit 1
fi
manifests=$(find "$ckpt" -name 'manifest-*' | wc -l)
if [ "$manifests" -ne 1 ]; then
  echo "FAIL: expected exactly one committed manifest, found $manifests" >&2
  exit 1
fi

echo "OK: converged after $((n - 1)) injected crashes, outputs bit-identical"
exit 0
