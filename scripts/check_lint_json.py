#!/usr/bin/env python3
"""Validates dmac_lint --format=json output (docs/static_analysis.md).

Usage: check_lint_json.py LINT_BINARY SCRIPT [extra lint args...]

Runs `LINT_BINARY SCRIPT --format=json <extra args>` and checks that stdout
is a single well-formed dmac-lint-v1 document:

  * top level carries schema/file/phase/errors/warnings/diagnostics;
  * every diagnostic record has file, line, severity, pass, op, message
    with the right types and a known severity;
  * the errors/warnings counters agree with the records; and
  * the process exit code matches the error count (non-zero iff errors,
    since this harness never passes --werror).

Exits 0 when everything holds, 1 with a message otherwise.
"""
import json
import subprocess
import sys

SEVERITIES = {"note", "warning", "error"}
PHASES = {"operators", "plan", "io", "parse", "decompose"}


def fail(msg):
    print(f"check_lint_json: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    if len(argv) < 3:
        fail(f"usage: {argv[0]} LINT_BINARY SCRIPT [lint args...]")
    cmd = [argv[1], argv[2], "--format=json"] + argv[3:]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode not in (0, 1):
        fail(f"unexpected exit code {proc.returncode}; stderr: {proc.stderr}")

    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        fail(f"stdout is not valid JSON ({e}):\n{proc.stdout}")

    if doc.get("schema") != "dmac-lint-v1":
        fail(f"bad schema field: {doc.get('schema')!r}")
    if doc.get("file") != argv[2]:
        fail(f"file field {doc.get('file')!r} != script path {argv[2]!r}")
    if doc.get("phase") not in PHASES:
        fail(f"unknown phase {doc.get('phase')!r}")
    diags = doc.get("diagnostics")
    if not isinstance(diags, list):
        fail("diagnostics is not a list")

    errors = warnings = 0
    for i, d in enumerate(diags):
        for key, want in (("file", str), ("line", int), ("severity", str),
                          ("pass", str), ("op", int), ("message", str)):
            if not isinstance(d.get(key), want):
                fail(f"diagnostic {i}: field {key!r} missing or not "
                     f"{want.__name__}: {d!r}")
        if d["severity"] not in SEVERITIES:
            fail(f"diagnostic {i}: unknown severity {d['severity']!r}")
        if "fixit" in d and not isinstance(d["fixit"], str):
            fail(f"diagnostic {i}: fixit is not a string")
        errors += d["severity"] == "error"
        warnings += d["severity"] == "warning"

    if doc.get("errors") != errors:
        fail(f"errors counter {doc.get('errors')} != {errors} error records")
    if doc.get("warnings") != warnings:
        fail(f"warnings counter {doc.get('warnings')} != {warnings} records")
    if (proc.returncode != 0) != (errors > 0):
        fail(f"exit code {proc.returncode} inconsistent with {errors} errors")

    print(f"lint json ok: phase={doc['phase']} errors={errors} "
          f"warnings={warnings} diagnostics={len(diags)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
