#!/usr/bin/env sh
# Doxygen documentation gate (docs/kernels.md satellite of the threaded
# kernel layer): the matrix kernel headers and the annotated sync layer
# must generate warning-free API docs, so stale @param names, broken
# /// references, and undocumented public entry points fail CI instead of
# rotting silently.
#
# Scope is deliberately narrow — src/matrix plus src/common/sync.h — the
# layers whose doc comments double as the threading/ownership contract.
# Widening the INPUT is welcome once a directory is warning-clean.
#
# Without doxygen on PATH the script reports SKIPPED and exits 0 (CI
# installs doxygen and runs this for real).
# Usage: check_docs_warnings.sh [repo-root] [doxygen-binary]
set -eu

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
doxygen="${2:-doxygen}"
cd "$root"

if ! command -v "$doxygen" >/dev/null 2>&1; then
  echo "SKIPPED: $doxygen not found; the docs gate needs doxygen" \
       "(CI runs this gate)"
  exit 0
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# Derive the gate config from the checked-in Doxyfile so project settings
# stay in one place; override scope + warning behavior for the gate.
{
  cat Doxyfile
  cat <<EOF
INPUT                  = src/matrix src/common/sync.h
USE_MDFILE_AS_MAINPAGE =
OUTPUT_DIRECTORY       = $tmpdir/api
WARNINGS               = YES
WARN_IF_DOC_ERROR      = YES
WARN_NO_PARAMDOC       = NO
WARN_AS_ERROR          = YES
EOF
} > "$tmpdir/Doxyfile.gate"

echo "== docs: doxygen over src/matrix + src/common/sync.h (warnings are errors)"
if ! "$doxygen" "$tmpdir/Doxyfile.gate" > "$tmpdir/doxygen.log" 2>&1; then
  cat "$tmpdir/doxygen.log"
  echo "error: doxygen reported warnings (WARN_AS_ERROR=YES)"
  exit 1
fi
echo "OK: kernel-layer API docs are warning-free"
