#!/usr/bin/env python3
"""Derive CALIBRATION.json (dmac-calibration-v1) from a BENCH_kernels.json
kernel sweep (dmac-kernel-bench-v2).

The calibration document is the distilled form the cost model
(src/plan/costmodel.h) consumes: one rate entry per
(kind, representation, trans, block_size, threads), with the seed-loop
reference rows dropped and derived speedup fields removed. Keeping it as
a separate committed artifact lets the bench file evolve (extra kinds,
diagnostic fields) without perturbing plan-search results, and gives CI a
single schema to validate.

Usage:
  scripts/gen_calibration.py [BENCH_kernels.json] [-o CALIBRATION.json]
  scripts/gen_calibration.py --check CALIBRATION.json   # schema validation
"""

import argparse
import json
import sys

ENTRY_FIELDS = {
    "kind": str,
    "representation": str,
    "trans": str,
    "block_size": int,
    "threads": int,
    "gflops": (int, float),
    "bytes_per_second": (int, float),
}

KNOWN_KINDS = {"gemm", "vec"}


def fail(msg):
    print(f"gen_calibration: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(doc, path):
    """Validates a dmac-calibration-v1 document; exits nonzero on errors."""
    errors = []
    if doc.get("schema") != "dmac-calibration-v1":
        errors.append(f"schema is {doc.get('schema')!r}, "
                      "want 'dmac-calibration-v1'")
    entries = doc.get("entries")
    if not isinstance(entries, list) or not entries:
        errors.append("entries must be a non-empty array")
        entries = []
    seen = set()
    for i, e in enumerate(entries):
        if not isinstance(e, dict):
            errors.append(f"entries[{i}] is not an object")
            continue
        for field, types in ENTRY_FIELDS.items():
            if field not in e:
                errors.append(f"entries[{i}] missing field {field!r}")
            elif not isinstance(e[field], types) or isinstance(e[field], bool):
                errors.append(f"entries[{i}].{field} has type "
                              f"{type(e[field]).__name__}")
        kind = e.get("kind")
        if kind is not None and kind not in KNOWN_KINDS:
            errors.append(f"entries[{i}].kind {kind!r} unknown "
                          f"(want one of {sorted(KNOWN_KINDS)})")
        if e.get("gflops", 1) <= 0 and e.get("bytes_per_second", 1) <= 0:
            errors.append(f"entries[{i}] has neither a positive gflops "
                          "nor bytes_per_second rate")
        key = (e.get("kind"), e.get("representation"), e.get("trans"),
               e.get("block_size"), e.get("threads"))
        if key in seen:
            errors.append(f"entries[{i}] duplicates {key}")
        seen.add(key)
    for err in errors:
        print(f"gen_calibration: {path}: {err}", file=sys.stderr)
    if errors:
        sys.exit(1)
    print(f"gen_calibration: {path} ok "
          f"({len(entries)} entries, block size "
          f"{doc.get('default_block_size')})")


def derive(bench_path):
    try:
        with open(bench_path) as f:
            bench = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {bench_path}: {e}")
    if bench.get("schema") != "dmac-kernel-bench-v2":
        fail(f"{bench_path}: schema is {bench.get('schema')!r}, "
             "want 'dmac-kernel-bench-v2'")
    entries = []
    for e in bench.get("entries", []):
        if e.get("kind") == "gemm_seed_reference":
            continue  # seed-loop documentation rows; never executed
        entries.append({
            "kind": e["kind"],
            "representation": e["representation"],
            "trans": e.get("trans", ""),
            "block_size": int(e["block_size"]),
            "threads": int(e.get("threads", 1)),
            "gflops": float(e.get("gflops", 0.0)),
            "bytes_per_second": float(e.get("bytes_per_second", 0.0)),
        })
    if not entries:
        fail(f"{bench_path}: no usable entries")
    entries.sort(key=lambda e: (e["kind"], e["representation"], e["trans"],
                                e["block_size"], e["threads"]))
    return {
        "schema": "dmac-calibration-v1",
        "source": bench_path,
        "default_block_size": int(bench.get("default_block_size", 256)),
        "entries": entries,
    }


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench", nargs="?", default="BENCH_kernels.json",
                    help="kernel sweep to distill (or file to --check)")
    ap.add_argument("-o", "--output", default="CALIBRATION.json")
    ap.add_argument("--check", action="store_true",
                    help="validate an existing calibration file instead")
    args = ap.parse_args()

    if args.check:
        try:
            with open(args.bench) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(f"cannot read {args.bench}: {e}")
        validate(doc, args.bench)
        return

    doc = derive(args.bench)
    validate(doc, f"<derived from {args.bench}>")
    with open(args.output, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    print(f"gen_calibration: wrote {args.output} "
          f"({len(doc['entries'])} entries)")


if __name__ == "__main__":
    main()
