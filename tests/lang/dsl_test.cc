#include <gtest/gtest.h>

#include "lang/program.h"

namespace dmac {
namespace {

TEST(DslTest, LoadDeclaresStatementAndReturnsVarRef) {
  ProgramBuilder pb;
  Mat v = pb.Load("V", {10, 20}, 0.5);
  EXPECT_EQ(v.expr()->kind, MatrixExpr::Kind::kVarRef);
  EXPECT_EQ(v.expr()->name, "V");
  Program p = pb.Build();
  ASSERT_EQ(p.statements.size(), 1u);
  EXPECT_EQ(p.statements[0].target, "V");
  EXPECT_EQ(p.statements[0].matrix->kind, MatrixExpr::Kind::kLoad);
  EXPECT_EQ(p.statements[0].matrix->shape, (Shape{10, 20}));
  EXPECT_DOUBLE_EQ(p.statements[0].matrix->sparsity, 0.5);
}

TEST(DslTest, OperatorsBuildExpectedTrees) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {2, 2}, 1.0);
  Mat b = pb.Load("B", {2, 2}, 1.0);

  Mat mm = a.mm(b);
  EXPECT_EQ(mm.expr()->kind, MatrixExpr::Kind::kBinary);
  EXPECT_EQ(mm.expr()->bin_op, BinOpKind::kMultiply);

  EXPECT_EQ((a + b).expr()->bin_op, BinOpKind::kAdd);
  EXPECT_EQ((a - b).expr()->bin_op, BinOpKind::kSubtract);
  EXPECT_EQ((a * b).expr()->bin_op, BinOpKind::kCellMultiply);
  EXPECT_EQ((a / b).expr()->bin_op, BinOpKind::kCellDivide);
  EXPECT_EQ(a.t().expr()->kind, MatrixExpr::Kind::kTranspose);
}

TEST(DslTest, ScalarOperatorsOnMatrices) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {2, 2}, 1.0);
  Mat scaled = a * 0.85;
  EXPECT_EQ(scaled.expr()->kind, MatrixExpr::Kind::kScalarMul);
  EXPECT_EQ(scaled.expr()->scalar->kind, ScalarExpr::Kind::kLiteral);
  EXPECT_DOUBLE_EQ(scaled.expr()->scalar->literal, 0.85);

  Mat shifted = a + 1.5;
  EXPECT_EQ(shifted.expr()->kind, MatrixExpr::Kind::kScalarAdd);
  Mat shifted_down = a - 1.5;
  EXPECT_EQ(shifted_down.expr()->kind, MatrixExpr::Kind::kScalarAdd);
  EXPECT_DOUBLE_EQ(shifted_down.expr()->scalar->literal, -1.5);

  Mat left = 2.0 * a;
  EXPECT_EQ(left.expr()->kind, MatrixExpr::Kind::kScalarMul);
}

TEST(DslTest, ReductionsProduceScalarExprs) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {2, 2}, 1.0);
  EXPECT_EQ(a.Sum().expr()->reduce, ReduceKind::kSum);
  EXPECT_EQ(a.Norm2().expr()->reduce, ReduceKind::kNorm2);
  EXPECT_EQ(a.Value().expr()->reduce, ReduceKind::kValue);
}

TEST(DslTest, ScalarArithmetic) {
  Scl a(2.0), b(3.0);
  EXPECT_EQ((a + b).expr()->op, '+');
  EXPECT_EQ((a - b).expr()->op, '-');
  EXPECT_EQ((a * b).expr()->op, '*');
  EXPECT_EQ((a / b).expr()->op, '/');
  EXPECT_EQ(a.Sqrt().expr()->kind, ScalarExpr::Kind::kSqrt);
}

TEST(DslTest, AssignAppendsStatements) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {2, 2}, 1.0);
  Mat b = pb.Var("B");
  pb.Assign(b, a.mm(a));
  pb.Output(b);
  Program p = pb.Build();
  ASSERT_EQ(p.statements.size(), 2u);
  EXPECT_EQ(p.statements[1].target, "B");
  ASSERT_EQ(p.outputs.size(), 1u);
  EXPECT_EQ(p.outputs[0], "B");
}

TEST(DslTest, ScalarVarAndOutputs) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {2, 2}, 1.0);
  Scl s = pb.ScalarVar("s", 1.5);
  pb.Assign(s, a.Sum() * s);
  pb.OutputScalar(s);
  Program p = pb.Build();
  ASSERT_EQ(p.statements.size(), 3u);  // load, s=1.5, s=sum*s
  EXPECT_EQ(p.statements[1].kind, Statement::Kind::kAssignScalar);
  ASSERT_EQ(p.scalar_outputs.size(), 1u);
  EXPECT_EQ(p.scalar_outputs[0], "s");
}

TEST(DslTest, RandomDeclares) {
  ProgramBuilder pb;
  Mat w = pb.Random("W", {5, 3});
  (void)w;
  Program p = pb.Build();
  ASSERT_EQ(p.statements.size(), 1u);
  EXPECT_EQ(p.statements[0].matrix->kind, MatrixExpr::Kind::kRandom);
  EXPECT_EQ(p.statements[0].matrix->shape, (Shape{5, 3}));
}

}  // namespace
}  // namespace dmac
