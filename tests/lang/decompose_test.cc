#include "lang/decompose.h"

#include <gtest/gtest.h>

#include "lang/program.h"

namespace dmac {
namespace {

OperatorList MustDecompose(const Program& p) {
  auto r = Decompose(p);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

TEST(DecomposeTest, SimpleMultiplyYieldsThreeOps) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {4, 6}, 1.0);
  Mat b = pb.Load("B", {6, 3}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, a.mm(b));
  pb.Output(c);
  OperatorList ops = MustDecompose(pb.Build());
  ASSERT_EQ(ops.ops.size(), 3u);
  EXPECT_EQ(ops.ops[0].kind, OpKind::kLoad);
  EXPECT_EQ(ops.ops[1].kind, OpKind::kLoad);
  EXPECT_EQ(ops.ops[2].kind, OpKind::kMultiply);
  EXPECT_EQ(ops.ops[2].output, "C#1");
  ASSERT_TRUE(ops.output_bindings.count("C"));
  EXPECT_EQ(ops.output_bindings.at("C").name, "C#1");
}

TEST(DecomposeTest, TransposeIsARefModifierNotAnOp) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {4, 4}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, a.t().mm(a));
  pb.Output(c);
  OperatorList ops = MustDecompose(pb.Build());
  ASSERT_EQ(ops.ops.size(), 2u);  // load + multiply; no transpose op
  const Operator& mul = ops.ops[1];
  EXPECT_TRUE(mul.inputs[0].transposed);
  EXPECT_FALSE(mul.inputs[1].transposed);
  EXPECT_EQ(mul.inputs[0].name, mul.inputs[1].name);
}

TEST(DecomposeTest, ReassignmentCreatesNewVersions) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {4, 4}, 1.0);
  Mat x = pb.Var("X");
  pb.Assign(x, a.mm(a));
  pb.Assign(x, x.mm(a));
  pb.Output(x);
  OperatorList ops = MustDecompose(pb.Build());
  ASSERT_EQ(ops.ops.size(), 3u);
  EXPECT_EQ(ops.ops[1].output, "X#1");
  EXPECT_EQ(ops.ops[2].output, "X#2");
  EXPECT_EQ(ops.ops[2].inputs[0].name, "X#1");
  EXPECT_EQ(ops.output_bindings.at("X").name, "X#2");
}

TEST(DecomposeTest, AliasAssignmentEmitsNoOperator) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {4, 5}, 1.0);
  Mat b = pb.Var("B");
  pb.Assign(b, a);        // pure alias
  Mat c = pb.Var("C");
  pb.Assign(c, b.t());    // alias of transpose
  pb.Output(c);
  OperatorList ops = MustDecompose(pb.Build());
  ASSERT_EQ(ops.ops.size(), 1u);  // just the load
  EXPECT_EQ(ops.output_bindings.at("C").name, "A#1");
  EXPECT_TRUE(ops.output_bindings.at("C").transposed);
}

TEST(DecomposeTest, MultiplicationsOrderedFirstWithinStatement) {
  // H * (Wt V) / (Wt W H): all three multiplies must precede the
  // cell-wise ops (paper §4.2.3).
  ProgramBuilder pb;
  Mat v = pb.Load("V", {30, 20}, 0.5);
  Mat w = pb.Random("W", {30, 4});
  Mat h = pb.Random("H", {4, 20});
  pb.Assign(h, h * (w.t().mm(v)) / (w.t().mm(w).mm(h)));
  pb.Output(h);
  OperatorList ops = MustDecompose(pb.Build());
  bool seen_cellwise = false;
  for (const Operator& op : ops.ops) {
    if (op.kind == OpKind::kCellMultiply || op.kind == OpKind::kCellDivide) {
      seen_cellwise = true;
    }
    if (op.kind == OpKind::kMultiply) {
      EXPECT_FALSE(seen_cellwise)
          << "multiplication scheduled after a cell-wise op";
    }
  }
}

TEST(DecomposeTest, MultiplyChainReassociated) {
  // W(1000x4) %*% H(4x800) %*% Ht(800x4): evaluating (W H) Ht would create
  // a 1000x800 intermediate; the chain optimizer must group (H Ht) first.
  ProgramBuilder pb;
  Mat w = pb.Random("W", {1000, 4});
  Mat h = pb.Random("H", {4, 800});
  Mat out = pb.Var("out");
  pb.Assign(out, w.mm(h).mm(h.t()));
  pb.Output(out);
  OperatorList ops = MustDecompose(pb.Build());
  // Find the first multiply: it must be H x H^T (4x800 by 800x4).
  for (const Operator& op : ops.ops) {
    if (op.kind == OpKind::kMultiply) {
      EXPECT_EQ(op.inputs[0].name, op.inputs[1].name);
      EXPECT_FALSE(op.inputs[0].transposed);
      EXPECT_TRUE(op.inputs[1].transposed);
      break;
    }
  }
}

TEST(DecomposeTest, ChainDimensionMismatchReported) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {3, 4}, 1.0);
  Mat b = pb.Load("B", {5, 6}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, a.mm(b));
  pb.Output(c);
  auto r = Decompose(pb.Build());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDimensionMismatch);
}

TEST(DecomposeTest, UseBeforeAssignmentReported) {
  ProgramBuilder pb;
  Mat ghost = pb.Var("ghost");
  Mat c = pb.Var("C");
  pb.Assign(c, ghost.mm(ghost));
  auto r = Decompose(pb.Build());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(DecomposeTest, ScalarReduceBecomesReduceOp) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {4, 4}, 1.0);
  Scl s = pb.ScalarVar("s", 0.0);
  pb.Assign(s, (a * a).Sum());
  pb.OutputScalar(s);
  OperatorList ops = MustDecompose(pb.Build());
  // load, cell-multiply, reduce, scalar-assign; the dead initial `s = 0`
  // is eliminated.
  ASSERT_EQ(ops.ops.size(), 4u);
  int reduces = 0, assigns = 0;
  for (const Operator& op : ops.ops) {
    reduces += op.kind == OpKind::kReduce;
    assigns += op.kind == OpKind::kScalarAssign;
  }
  EXPECT_EQ(reduces, 1);
  EXPECT_EQ(assigns, 1);
  EXPECT_TRUE(ops.scalar_output_bindings.count("s"));
}

TEST(DecomposeTest, ScalarVarResolvedToLatestVersion) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {4, 4}, 1.0);
  Scl s = pb.ScalarVar("s", 2.0);
  Mat b1 = pb.Var("B1");
  pb.Assign(b1, s * a);
  pb.Assign(s, Scl(3.0));
  Mat b2 = pb.Var("B2");
  pb.Assign(b2, s * a);
  pb.Output(b1);
  pb.Output(b2);
  OperatorList ops = MustDecompose(pb.Build());
  // Two scalar-multiply ops must reference different scalar versions.
  std::vector<std::string> refs;
  for (const Operator& op : ops.ops) {
    if (op.kind == OpKind::kScalarMultiply) {
      refs.push_back(op.scalar->name);
    }
  }
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_NE(refs[0], refs[1]);
}

TEST(DecomposeTest, GnmfIterationOpCount) {
  ProgramBuilder pb;
  Mat v = pb.Load("V", {100, 80}, 0.1);
  Mat w = pb.Random("W", {100, 8});
  Mat h = pb.Random("H", {8, 80});
  pb.Assign(h, h * (w.t().mm(v)) / (w.t().mm(w).mm(h)));
  pb.Assign(w, w * (v.mm(h.t())) / (w.mm(h).mm(h.t())));
  pb.Output(w);
  pb.Output(h);
  OperatorList ops = MustDecompose(pb.Build());
  // 3 leaves + per statement: 3 multiplies + 2 cell-wise = 13 total.
  EXPECT_EQ(ops.ops.size(), 13u);
}

TEST(DecomposeTest, DeadComputationEliminated) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {8, 8}, 1.0);
  Mat unused = pb.Var("unused");
  pb.Assign(unused, a.mm(a).mm(a));  // never output
  Mat b = pb.Var("B");
  pb.Assign(b, a + a);
  pb.Output(b);
  OperatorList ops = MustDecompose(pb.Build());
  // Only the load and the add survive.
  ASSERT_EQ(ops.ops.size(), 2u);
  EXPECT_EQ(ops.ops[0].kind, OpKind::kLoad);
  EXPECT_EQ(ops.ops[1].kind, OpKind::kAdd);
}

TEST(DecomposeTest, DeadLoadEliminated) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {8, 8}, 1.0);
  Mat ghost = pb.Load("Ghost", {100, 100}, 1.0);  // never used
  (void)ghost;
  Mat b = pb.Var("B");
  pb.Assign(b, a * 2.0);
  pb.Output(b);
  OperatorList ops = MustDecompose(pb.Build());
  for (const Operator& op : ops.ops) {
    EXPECT_NE(op.source, "Ghost");
  }
}

TEST(DecomposeTest, ScalarChainKeptAliveThroughMatrixUse) {
  // s feeds a scalar-multiply; the reduce producing s must survive DCE.
  ProgramBuilder pb;
  Mat a = pb.Load("A", {8, 8}, 1.0);
  Scl s = pb.ScalarVar("s", 0.0);
  pb.Assign(s, a.Sum());
  Mat b = pb.Var("B");
  pb.Assign(b, s * a);
  pb.Output(b);
  OperatorList ops = MustDecompose(pb.Build());
  int reduces = 0;
  for (const Operator& op : ops.ops) reduces += op.kind == OpKind::kReduce;
  EXPECT_EQ(reduces, 1);
}

TEST(DecomposeTest, IntermediateIterationsStayLiveInLoops) {
  // Every iteration's ops feed the next; nothing may be eliminated.
  ProgramBuilder pb;
  Mat a = pb.Load("A", {8, 8}, 1.0);
  Mat x = pb.Var("X");
  pb.Assign(x, a);
  for (int i = 0; i < 4; ++i) pb.Assign(x, x.mm(a));
  pb.Output(x);
  OperatorList ops = MustDecompose(pb.Build());
  EXPECT_EQ(ops.ops.size(), 5u);  // load + 4 multiplies
}

TEST(DecomposeTest, OutputNeverAssignedReported) {
  ProgramBuilder pb;
  Mat ghost = pb.Var("ghost");
  pb.Output(ghost);
  auto r = Decompose(pb.Build());
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace dmac
