#include "lang/parser.h"

#include <gtest/gtest.h>

#include "apps/local_interpreter.h"
#include "apps/runner.h"
#include "data/synthetic.h"
#include "lang/decompose.h"

namespace dmac {
namespace {

Program MustParse(const std::string& src) {
  auto p = ParseProgram(src);
  EXPECT_TRUE(p.ok()) << p.status();
  return p.ok() ? *p : Program{};
}

TEST(ParserTest, LoadAssignOutput) {
  Program p = MustParse(
      "V = load(\"V\", 10, 20, 0.5)\n"
      "output(V)\n");
  ASSERT_EQ(p.statements.size(), 1u);
  EXPECT_EQ(p.statements[0].target, "V");
  EXPECT_EQ(p.statements[0].matrix->kind, MatrixExpr::Kind::kLoad);
  EXPECT_EQ(p.statements[0].matrix->shape, (Shape{10, 20}));
  EXPECT_DOUBLE_EQ(p.statements[0].matrix->sparsity, 0.5);
  ASSERT_EQ(p.outputs.size(), 1u);
  EXPECT_EQ(p.outputs[0], "V");
}

TEST(ParserTest, OperatorPrecedence) {
  // %*% binds tighter than *, which binds tighter than +.
  Program p = MustParse(
      "A = load(\"A\", 4, 4, 1)\n"
      "B = A + A * A %*% A\n"
      "output(B)\n");
  const MatrixExprPtr& root = p.statements[1].matrix;
  ASSERT_EQ(root->kind, MatrixExpr::Kind::kBinary);
  EXPECT_EQ(root->bin_op, BinOpKind::kAdd);
  ASSERT_EQ(root->rhs->kind, MatrixExpr::Kind::kBinary);
  EXPECT_EQ(root->rhs->bin_op, BinOpKind::kCellMultiply);
  EXPECT_EQ(root->rhs->rhs->bin_op, BinOpKind::kMultiply);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  Program p = MustParse(
      "A = load(\"A\", 4, 4, 1)\n"
      "B = (A + A) * A\n"
      "output(B)\n");
  const MatrixExprPtr& root = p.statements[1].matrix;
  EXPECT_EQ(root->bin_op, BinOpKind::kCellMultiply);
  EXPECT_EQ(root->lhs->bin_op, BinOpKind::kAdd);
}

TEST(ParserTest, TransposeAndReductions) {
  Program p = MustParse(
      "A = load(\"A\", 4, 6, 1)\n"
      "G = t(A) %*% A\n"
      "s = sum(G)\n"
      "n = norm2(G)\n"
      "output_scalar(s)\n"
      "output_scalar(n)\n");
  EXPECT_EQ(p.statements[1].matrix->lhs->kind, MatrixExpr::Kind::kTranspose);
  EXPECT_EQ(p.statements[2].scalar->kind, ScalarExpr::Kind::kReduce);
  EXPECT_EQ(p.statements[2].scalar->reduce, ReduceKind::kSum);
  EXPECT_EQ(p.statements[3].scalar->reduce, ReduceKind::kNorm2);
  EXPECT_EQ(p.scalar_outputs.size(), 2u);
}

TEST(ParserTest, MatrixScalarMixing) {
  Program p = MustParse(
      "A = load(\"A\", 4, 4, 1)\n"
      "B = A * 0.85 + 0.15\n"
      "C = A / 2\n"
      "D = 3 * A\n"
      "output(B)\noutput(C)\noutput(D)\n");
  EXPECT_EQ(p.statements[1].matrix->kind, MatrixExpr::Kind::kScalarAdd);
  EXPECT_EQ(p.statements[1].matrix->lhs->kind, MatrixExpr::Kind::kScalarMul);
  EXPECT_EQ(p.statements[2].matrix->kind, MatrixExpr::Kind::kScalarMul);
  EXPECT_EQ(p.statements[3].matrix->kind, MatrixExpr::Kind::kScalarMul);
}

TEST(ParserTest, ForLoopUnrolls) {
  Program p = MustParse(
      "A = load(\"A\", 4, 4, 1)\n"
      "for i in 0:3 { A = A %*% A }\n"
      "output(A)\n");
  // 1 load + 3 unrolled assignments.
  EXPECT_EQ(p.statements.size(), 4u);
}

TEST(ParserTest, LoopBoundFromConstant) {
  Program p = MustParse(
      "iters = 2\n"
      "A = load(\"A\", 4, 4, 1)\n"
      "for i in 0:iters { A = A + A }\n"
      "output(A)\n");
  EXPECT_EQ(p.statements.size(), 4u);  // iters=, load, 2 adds
}

TEST(ParserTest, NestedLoops) {
  Program p = MustParse(
      "A = load(\"A\", 4, 4, 1)\n"
      "for i in 0:2 { for j in 0:2 { A = A + A } }\n"
      "output(A)\n");
  EXPECT_EQ(p.statements.size(), 5u);  // load + 4 adds
}

TEST(ParserTest, LoopVariableReadsAsLiteral) {
  Program p = MustParse(
      "A = load(\"A\", 4, 4, 1)\n"
      "for i in 1:3 { A = A * i }\n"
      "output(A)\n");
  // Two unrolled iterations with literals 1 and 2.
  EXPECT_DOUBLE_EQ(p.statements[1].matrix->scalar->literal, 1.0);
  EXPECT_DOUBLE_EQ(p.statements[2].matrix->scalar->literal, 2.0);
}

TEST(ParserTest, CommentsAndSeparators) {
  Program p = MustParse(
      "# a comment\n"
      "A = load(\"A\", 2, 2, 1); B = A + A  // trailing comment\n"
      "output(B)\n");
  EXPECT_EQ(p.statements.size(), 2u);
}

TEST(ParserTest, UnaryMinus) {
  Program p = MustParse(
      "A = load(\"A\", 2, 2, 1)\n"
      "B = -A\n"
      "s = -sum(A)\n"
      "output(B)\noutput_scalar(s)\n");
  EXPECT_EQ(p.statements[1].matrix->kind, MatrixExpr::Kind::kScalarMul);
  EXPECT_DOUBLE_EQ(p.statements[1].matrix->scalar->literal, -1.0);
}

TEST(ParserTest, ErrorsCarryLocation) {
  auto r = ParseProgram("A = load(\"A\", 2, 2, 1)\nB = A %% A\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(ParserTest, RejectsBadConstructs) {
  EXPECT_FALSE(ParseProgram("A = ").ok());
  EXPECT_FALSE(ParseProgram("output(missing)\n").ok());
  EXPECT_FALSE(ParseProgram("A = unknown_fn(1)\n").ok());
  EXPECT_FALSE(ParseProgram("x = 1\nA = x %*% x\n").ok());  // scalar %*%
  EXPECT_FALSE(ParseProgram("A = load(\"A\", 2, 2, 1)\nA = 5\n").ok());
  EXPECT_FALSE(
      ParseProgram("A = load(\"A\", 2, 2, 1)\nB = 1 / A\noutput(B)\n").ok());
  EXPECT_FALSE(ParseProgram("for i in 0:2 { x = 1 ").ok());  // unterminated
}

TEST(ParserTest, ParsedGnmfMatchesBuilderGnmf) {
  // The script front end and the C++ DSL must produce the same decomposed
  // operator sequence for the paper's Code 1.
  const std::string script =
      "V = load(\"V\", 100, 80, 0.1)\n"
      "W = random(100, 8)\n"
      "H = random(8, 80)\n"
      "for i in 0:2 {\n"
      "  H = H * (t(W) %*% V) / (t(W) %*% W %*% H)\n"
      "  W = W * (V %*% t(H)) / (W %*% H %*% t(H))\n"
      "}\n"
      "output(W)\noutput(H)\n";
  Program parsed = MustParse(script);
  auto parsed_ops = Decompose(parsed);
  ASSERT_TRUE(parsed_ops.ok());

  ProgramBuilder pb;
  Mat v = pb.Load("V", {100, 80}, 0.1);
  Mat w = pb.Random("W", {100, 8});
  Mat h = pb.Random("H", {8, 80});
  for (int i = 0; i < 2; ++i) {
    pb.Assign(h, h * (w.t().mm(v)) / (w.t().mm(w).mm(h)));
    pb.Assign(w, w * (v.mm(h.t())) / (w.mm(h).mm(h.t())));
  }
  pb.Output(w);
  pb.Output(h);
  auto built_ops = Decompose(pb.Build());
  ASSERT_TRUE(built_ops.ok());

  ASSERT_EQ(parsed_ops->ops.size(), built_ops->ops.size());
  for (size_t i = 0; i < parsed_ops->ops.size(); ++i) {
    EXPECT_EQ(parsed_ops->ops[i].kind, built_ops->ops[i].kind) << i;
  }
}

TEST(ParserTest, ParsedScriptExecutesCorrectly) {
  const std::string script =
      "A = load(\"A\", 24, 24, 0.3)\n"
      "B = A %*% A + A * 2\n"
      "total = sum(B)\n"
      "output(B)\noutput_scalar(total)\n";
  Program p = MustParse(script);
  LocalMatrix a = SyntheticSparse(24, 24, 0.3, 8, 3);
  Bindings bindings{{"A", &a}};
  RunConfig config;
  config.block_size = 8;
  auto dist = RunProgram(p, bindings, config);
  ASSERT_TRUE(dist.ok()) << dist.status();
  auto local = InterpretLocally(p, bindings, 8, config.seed);
  ASSERT_TRUE(local.ok());
  EXPECT_TRUE(
      dist->result.matrices.at("B").ApproxEqual(local->matrices.at("B"),
                                                1e-2));
  EXPECT_NEAR(dist->result.scalars.at("total"), local->scalars.at("total"),
              std::abs(local->scalars.at("total")) * 1e-4);
}

}  // namespace
}  // namespace dmac
