// Program fuzzing: random well-shaped matrix programs must compute the same
// results under the DMac planner, the SystemML-S planner, and the
// single-machine interpreter, for every seed.
#include <gtest/gtest.h>

#include <vector>

#include "apps/local_interpreter.h"
#include "apps/runner.h"
#include "common/rng.h"
#include "data/synthetic.h"

namespace dmac {
namespace {

constexpr int64_t kBs = 8;

/// A matrix variable tracked by the generator.
struct Var {
  Mat handle;
  Shape shape;
};

/// Generates a random program of `num_ops` well-shaped statements over a
/// small set of dimensions (so operands frequently align), keeping value
/// magnitudes near 1 to avoid float blow-up.
Program GenerateProgram(uint64_t seed, int num_ops) {
  Rng rng(seed);
  ProgramBuilder pb;
  const int64_t dims[] = {12, 20, 28};
  auto dim = [&] { return dims[rng.NextBounded(3)]; };

  std::vector<Var> pool;
  for (int i = 0; i < 3; ++i) {
    const Shape shape{dim(), dim()};
    const std::string name = "in" + std::to_string(i);
    const double sparsity = 0.2 + 0.2 * rng.NextDouble();
    pool.push_back({pb.Load(name, shape, sparsity), shape});
  }

  auto pick = [&]() -> Var& {
    return pool[rng.NextBounded(pool.size())];
  };
  auto pick_with_shape = [&](Shape shape) -> Var* {
    std::vector<Var*> matches;
    for (Var& v : pool) {
      if (v.shape == shape) matches.push_back(&v);
    }
    if (matches.empty()) return nullptr;
    return matches[rng.NextBounded(matches.size())];
  };

  int produced = 0;
  for (int i = 0; i < num_ops; ++i) {
    const uint64_t choice = rng.NextBounded(8);
    Mat expr;
    Shape out_shape;
    switch (choice) {
      case 0: {  // multiply: find b with b.rows == a.cols (maybe transposed)
        Var& a = pick();
        Var* b = pick_with_shape({a.shape.cols, dim()});
        if (b != nullptr) {
          // Normalize by the inner dimension to keep magnitudes ~1.
          expr = a.handle.mm(b->handle) * (1.0 / a.shape.cols);
          out_shape = {a.shape.rows, b->shape.cols};
        } else {
          // Fall back to the always-available Gram product Aᵀ·A.
          expr = a.handle.t().mm(a.handle) * (1.0 / a.shape.rows);
          out_shape = {a.shape.cols, a.shape.cols};
        }
        break;
      }
      case 1: {  // element-wise with a same-shaped partner
        Var& a = pick();
        Var* b = pick_with_shape(a.shape);
        Var& rhs = b != nullptr ? *b : a;
        const uint64_t kind = rng.NextBounded(3);
        expr = kind == 0   ? a.handle + rhs.handle
               : kind == 1 ? a.handle - rhs.handle
                           : a.handle * rhs.handle;
        out_shape = a.shape;
        break;
      }
      case 2: {  // safe cell division: denominator bounded away from zero
        Var& a = pick();
        Var* b = pick_with_shape(a.shape);
        Var& rhs = b != nullptr ? *b : a;
        expr = a.handle / (rhs.handle * rhs.handle + 0.5);
        out_shape = a.shape;
        break;
      }
      case 3: {  // transpose combined with addition
        Var& a = pick();
        expr = a.handle.t() + a.handle.t();
        out_shape = a.shape.Transposed();
        break;
      }
      case 4: {  // scalar scale
        Var& a = pick();
        expr = a.handle * (0.25 + rng.NextDouble());
        out_shape = a.shape;
        break;
      }
      case 5: {  // row aggregation
        Var& a = pick();
        expr = a.handle.RowSums() * (1.0 / a.shape.cols);
        out_shape = {a.shape.rows, 1};
        break;
      }
      case 6: {  // column aggregation
        Var& a = pick();
        expr = a.handle.ColSums() * (1.0 / a.shape.rows);
        out_shape = {1, a.shape.cols};
        break;
      }
      default: {  // scalar round trip: scale a matrix by a reduction
        Var& a = pick();
        Scl s = pb.ScalarVar("s" + std::to_string(i), 0.0);
        pb.Assign(s, a.handle.Sum() * (1.0 / a.shape.NumElements()) + 0.1);
        expr = s * a.handle;
        out_shape = a.shape;
        break;
      }
    }
    Mat var = pb.Var("v" + std::to_string(produced++));
    pb.Assign(var, expr);
    pool.push_back({var, out_shape});
  }

  // Output the last few produced variables.
  const size_t outputs = std::min<size_t>(3, pool.size());
  for (size_t i = pool.size() - outputs; i < pool.size(); ++i) {
    pb.Output(pool[i].handle);
  }
  return pb.Build();
}

class RandomProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramTest, AllThreeEnginesAgree) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Program program = GenerateProgram(seed, 8);

  // Bind the three inputs.
  Rng rng(seed);
  std::vector<std::pair<std::string, LocalMatrix>> data;
  for (const Statement& st : program.statements) {
    if (st.kind == Statement::Kind::kAssignMatrix &&
        st.matrix->kind == MatrixExpr::Kind::kLoad) {
      data.emplace_back(st.matrix->name,
                        SyntheticSparse(st.matrix->shape.rows,
                                        st.matrix->shape.cols,
                                        st.matrix->sparsity, kBs,
                                        seed * 100 + data.size()));
    }
  }
  Bindings bindings;
  for (auto& [name, m] : data) bindings.emplace(name, &m);

  RunConfig dmac_cfg;
  dmac_cfg.block_size = kBs;
  dmac_cfg.num_workers = 3;
  RunConfig sysml_cfg = dmac_cfg;
  sysml_cfg.exploit_dependencies = false;

  auto local = InterpretLocally(program, bindings, kBs, dmac_cfg.seed);
  ASSERT_TRUE(local.ok()) << "seed " << seed << ": " << local.status();
  auto dmac_run = RunProgram(program, bindings, dmac_cfg);
  ASSERT_TRUE(dmac_run.ok()) << "seed " << seed << ": " << dmac_run.status();
  auto sysml_run = RunProgram(program, bindings, sysml_cfg);
  ASSERT_TRUE(sysml_run.ok()) << "seed " << seed << ": "
                              << sysml_run.status();

  for (auto& [name, expected] : local->matrices) {
    EXPECT_TRUE(dmac_run->result.matrices.at(name).ApproxEqual(expected,
                                                               5e-2))
        << "seed " << seed << " matrix " << name << " (DMac)";
    EXPECT_TRUE(sysml_run->result.matrices.at(name).ApproxEqual(expected,
                                                                5e-2))
        << "seed " << seed << " matrix " << name << " (SystemML-S)";
  }
}

TEST_P(RandomProgramTest, DmacPlanNeverCostsMore) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Program program = GenerateProgram(seed, 8);
  RunConfig dmac_cfg;
  RunConfig sysml_cfg;
  sysml_cfg.exploit_dependencies = false;
  auto dmac_plan = PlanProgram(program, dmac_cfg);
  auto sysml_plan = PlanProgram(program, sysml_cfg);
  ASSERT_TRUE(dmac_plan.ok() && sysml_plan.ok()) << "seed " << seed;
  EXPECT_LE(dmac_plan->total_comm_bytes, sysml_plan->total_comm_bytes)
      << "seed " << seed;
  EXPECT_LE(dmac_plan->num_stages, sysml_plan->num_stages)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, RandomProgramTest,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace dmac
